(* Command-line front end for the DHDL framework: estimate single design
   points, explore design spaces, dump DHDL / MaxJ, run the functional
   interpreter, and regenerate the paper's experiments. *)

open Cmdliner

module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Profile = Dhdl_dse.Profile
module Experiments = Dhdl_core.Experiments
module Lint = Dhdl_lint.Lint
module Absint = Dhdl_absint.Absint
module Symbolic = Dhdl_absint.Symbolic
module Symgate = Dhdl_dse.Symgate
module Diag = Dhdl_ir.Diag
module Obs = Dhdl_obs.Obs

let parse_params strs =
  List.map
    (fun s ->
      match String.split_on_char '=' s with
      | [ k; v ] -> (
        match int_of_string_opt v with
        | Some n -> (k, n)
        | None -> failwith (Printf.sprintf "bad parameter %S (%S is not an integer)" s v))
      | _ -> failwith (Printf.sprintf "bad parameter %S (expected name=value)" s))
    strs

let lookup_app name =
  try Registry.find name
  with Not_found ->
    failwith
      (Printf.sprintf "unknown benchmark %S (available: %s)" name
         (String.concat ", " Registry.names))

(* [quiet] routes the setup chatter to stderr so machine-readable stdout
   (e.g. [dhdl profile --json]) stays one clean JSON document. *)
let make_estimator ?cache ?(quiet = false) ~seed ~train_samples () =
  let say fmt =
    if quiet then Printf.eprintf (fmt ^^ "%!") else Printf.printf (fmt ^^ "%!")
  in
  match Option.bind cache Estimator.load with
  | Some est ->
    say "[setup] loaded trained estimator from %s\n" (Option.get cache);
    est
  | None ->
    say "[setup] characterizing templates and training correction networks...\n";
    let t0 = Unix.gettimeofday () in
    let est = Estimator.create ~seed ~train_samples () in
    say "[setup] ready in %.1f s (one-time cost per device/toolchain)\n"
      (Unix.gettimeofday () -. t0);
    Option.iter
      (fun path ->
        Estimator.save est path;
        say "[setup] cached to %s\n" path)
      cache;
    est

(* Every command that estimates goes through one [Eval.t]: the keyed,
   memoizing pipeline. [no_cache] (from [--no-cache]) creates it with both
   caps at 0, which disables the caches without changing any result. *)
let make_eval ?cache ?quiet ?(no_cache = false) ~seed ~train_samples () =
  let est = make_estimator ?cache ?quiet ~seed ~train_samples () in
  if no_cache then Eval.create ~analysis_cap:0 ~estimate_cap:0 est else Eval.create est

(* Resolve the CLI's positional parameters to the concrete binding the
   generator will see — the defaults with each given [name=value]
   overriding its entry — without elaborating. Generators tolerate
   partial bindings, but the symbolic predicate routes on the full
   point (pinned parameters included), so the merge matters. *)
let resolved_point ~app ~params =
  let app = lookup_app app in
  let sizes = app.App.paper_sizes in
  let overrides = parse_params params in
  let merged =
    List.map
      (fun (k, v) ->
        (k, match List.assoc_opt k overrides with Some v' -> v' | None -> v))
      (app.App.default_params sizes)
  in
  let extra = List.filter (fun (k, _) -> not (List.mem_assoc k merged)) overrides in
  (app, merged @ extra)

let design_of ~app ~params =
  let app, params = resolved_point ~app ~params in
  (app, app.App.generate ~sizes:app.App.paper_sizes ~params)

(* --- common args ---------------------------------------------------- *)

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")

let params_arg =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"PARAMS" ~doc:"Design parameters, name=value.")

let seed_arg = Arg.(value & opt int 2016 & info [ "seed" ] ~doc:"Random seed.")

let train_arg =
  Arg.(value & opt int 200 & info [ "train-samples" ] ~doc:"NN training corpus size.")

let points_arg =
  Arg.(value & opt int 2000 & info [ "points"; "n" ] ~doc:"Design points to sample.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE" ~doc:"Cache the trained estimator in FILE (load if present).")

(* --- telemetry ------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run to FILE (load it in \
           chrome://tracing or https://ui.perfetto.dev).")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE" ~doc:"Write the telemetry event log to FILE as JSON Lines.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the telemetry summary (counters, histograms, span rollups) after the run.")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Enable the sink when any telemetry output was requested, run the command
   body, then export. The sink stays disabled (and the instrumented paths
   stay on their no-op fast path) when no flag is given. *)
let with_obs ~trace ~jsonl ~metrics f =
  let wanted = metrics || trace <> None || jsonl <> None in
  if not wanted then f ()
  else begin
    Obs.enable ();
    let finish () =
      let snap = Obs.snapshot () in
      Option.iter
        (fun path ->
          write_file path (Obs.to_chrome_trace snap);
          Printf.eprintf "[obs] Chrome trace written to %s\n%!" path)
        trace;
      Option.iter
        (fun path ->
          write_file path (Obs.to_jsonl snap);
          Printf.eprintf "[obs] JSONL event log written to %s\n%!" path)
        jsonl;
      if metrics then begin
        print_newline ();
        print_string (Obs.render_summary snap)
      end;
      Obs.disable ()
    in
    Fun.protect ~finally:finish f
  end

(* --- commands ------------------------------------------------------- *)

let estimate_cmd =
  let run app params seed train cache trace jsonl metrics =
    with_obs ~trace ~jsonl ~metrics @@ fun () ->
    let ev = make_eval ?cache ~seed ~train_samples:train () in
    let est = Eval.estimator ev in
    let _, design = design_of ~app ~params in
    let t0 = Unix.gettimeofday () in
    let e = Eval.estimate ev design in
    let elapsed = Unix.gettimeofday () -. t0 in
    let a = e.Estimator.area in
    let alm, dsp, bram = Estimator.utilization est a in
    Printf.printf "design %s\n" design.Dhdl_ir.Ir.d_name;
    Printf.printf "  parameters : %s\n"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) design.Dhdl_ir.Ir.d_params));
    Printf.printf "  cycles     : %s (%.4f s at 150 MHz)\n"
      (Dhdl_util.Texttable.fmt_int_commas (int_of_float e.Estimator.cycles))
      e.Estimator.seconds;
    Printf.printf "  ALMs       : %d (%.1f%%)\n" a.Estimator.alms alm;
    Printf.printf "  DSPs       : %d (%.1f%%)\n" a.Estimator.dsps dsp;
    Printf.printf "  BRAMs      : %d (%.1f%%)\n" a.Estimator.brams bram;
    Printf.printf "  registers  : %d\n" a.Estimator.regs;
    Printf.printf "  fits       : %b\n" (Estimator.fits est a);
    Printf.printf "  estimation : %.4f ms\n" (elapsed *. 1000.0)
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate area and cycles of one design point.")
    Term.(
      const run $ app_arg $ params_arg $ seed_arg $ train_arg $ cache_arg $ trace_arg $ jsonl_arg
      $ metrics_arg)

let synth_cmd =
  let run app params trace jsonl metrics =
    with_obs ~trace ~jsonl ~metrics @@ fun () ->
    let _, design = design_of ~app ~params in
    let rpt = Dhdl_synth.Toolchain.synthesize design in
    let sim = Dhdl_sim.Perf_sim.simulate design in
    let wall = Dhdl_synth.Toolchain.synthesis_wall_seconds (Dhdl_synth.Toolchain.netlist design) in
    Printf.printf "post-place-and-route report for %s:\n  %s\n" design.Dhdl_ir.Ir.d_name
      (Dhdl_synth.Report.to_string rpt);
    Printf.printf "cycle-accurate simulation: %s cycles (%.4f s), %.1f MB off-chip traffic\n"
      (Dhdl_util.Texttable.fmt_int_commas (int_of_float sim.Dhdl_sim.Perf_sim.cycles))
      sim.Dhdl_sim.Perf_sim.seconds
      (sim.Dhdl_sim.Perf_sim.dram_bytes /. 1e6);
    Printf.printf "(a real toolchain run would take ~%.0f minutes)\n" (wall /. 60.0);
    Printf.printf "runtime breakdown (share of total):\n";
    List.iter
      (fun (label, own, share) ->
        if share > 0.5 then
          Printf.printf "  %-24s %12.0f cycles/activation  %5.1f%%\n" label own share)
      (Dhdl_sim.Perf_sim.breakdown design)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Run the simulated vendor toolchain and performance simulator.")
    Term.(const run $ app_arg $ params_arg $ trace_arg $ jsonl_arg $ metrics_arg)

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically write completed evaluations and sweep metadata to FILE (JSONL, atomic \
           temp-file + rename) so an interrupted sweep can be resumed with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Continue an interrupted sweep from the $(b,--checkpoint) file, skipping every point \
           already evaluated there. The checkpoint must match the sweep (benchmark space, seed, \
           point budget).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Stop the sweep gracefully after SECONDS, reporting the partial result as truncated \
           (resumable via $(b,--checkpoint)).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run the sweep on N worker domains (default 1 = sequential). Results, Pareto \
           frontier, and checkpoint files are bit-identical at every jobs level, so \
           $(b,--resume) works across jobs settings and $(b,--deadline) still yields a \
           resumable truncated result; only wall-clock time changes.")

let inject_faults_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-faults" ] ~docv:"P"
        ~doc:
          "(dev) Deterministically inject faults into the generator, lint, and estimator stages \
           with probability P per point per stage, to exercise the failure barriers.")

let faults_seed_arg =
  Arg.(value & opt int 42 & info [ "faults-seed" ] ~doc:"(dev) Seed for $(b,--inject-faults).")

let profile_flag_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attribute every worker-second of the sweep to \
           {generate, lint/absint, estimate, send-block, idle} and every collector-second to \
           {recv-block, reorder-stall, write, merge}, and print the attribution report after the \
           sweep. Results and checkpoints stay bit-identical; see $(b,dhdl profile) for the \
           multi-level scaling report.")

let chunk_arg =
  Arg.(
    value & opt int 16
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Points per worker claim in the parallel engine (default 16). Workers take index \
           ranges of N points from the shared cursor and send each completed range to the \
           collector as one message; results and checkpoints are bit-identical at every \
           chunk size.")

let no_eval_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the evaluation cache (analysis verdicts and estimates keyed by canonical \
           design hash). Results are bit-identical either way; only time changes.")

let no_absint_arg =
  Arg.(
    value & flag
    & info [ "no-absint" ]
        ~doc:
          "Disable proof-backed pruning: points refuted by the proof passes (L009 out-of-bounds, \
           L010 bank conflict, L013 unsafe pipelining) are estimated instead of dropped.")

let no_symbolic_arg =
  Arg.(
    value & flag
    & info [ "no-symbolic" ]
        ~doc:
          "Disable the pre-elaboration symbolic legality gate: every point is generated and \
           analyzed concretely, even ones the derived parameter constraints refute. Results are \
           identical modulo pruned-outcome kind; only elaboration work changes.")

let dse_cmd =
  let run app seed train points cache trace jsonl metrics jobs chunk no_cache checkpoint resume
      deadline inject faults_seed no_absint no_symbolic profile =
    with_obs ~trace ~jsonl ~metrics @@ fun () ->
    let cfg =
      Explore.Config.make ~seed ~max_points:points ~absint:(not no_absint)
        ~symbolic:(not no_symbolic) ~jobs ~chunk ?checkpoint ~resume ?deadline_seconds:deadline
        ~profile ()
    in
    Option.iter
      (fun p ->
        Dhdl_util.Faults.configure ~seed:faults_seed ~p ();
        Printf.printf "[dev] injecting faults at p=%g (seed %d)\n%!" p faults_seed)
      inject;
    let ev = make_eval ?cache ~no_cache ~seed ~train_samples:train () in
    let a = lookup_app app in
    let result =
      Explore.run cfg ev
        ~space:(a.App.space a.App.paper_sizes)
        ~generate:(fun p -> a.App.generate ~sizes:a.App.paper_sizes ~params:p)
    in
    print_string
      (Experiments.render_fig5 [ { Experiments.app_name = a.App.name; result } ]);
    if result.Explore.jobs > 1 then
      Printf.printf
        "\n%.2f ms per design point wall-clock on %d domains (%.2f ms CPU; %d points in %.2f s)\n"
        (Explore.seconds_per_design result *. 1000.0)
        result.Explore.jobs
        (Explore.cpu_seconds_per_design result *. 1000.0)
        result.Explore.sampled result.Explore.elapsed_seconds
    else
      Printf.printf "\n%.2f ms per design point (%d points in %.2f s)\n"
        (Explore.seconds_per_design result *. 1000.0)
        result.Explore.sampled result.Explore.elapsed_seconds;
    Printf.printf
      "pruned by lint errors: %d point(s); refuted by abstract interpretation: %d point(s); \
       refuted by dependence analysis: %d point(s); refuted symbolically before elaboration: %d \
       point(s); estimated but over device capacity: %d point(s)\n"
      result.Explore.lint_pruned result.Explore.absint_pruned result.Explore.dep_pruned
      result.Explore.sym_pruned
      (Explore.unfit_count result);
    if result.Explore.cache_hits + result.Explore.cache_misses > 0 then
      Printf.printf "evaluation cache: %d hit(s), %d miss(es) (%.1f%% hit rate)\n"
        result.Explore.cache_hits result.Explore.cache_misses
        (100.0
        *. float_of_int result.Explore.cache_hits
        /. float_of_int (result.Explore.cache_hits + result.Explore.cache_misses));
    if result.Explore.resumed > 0 then
      Printf.printf "resumed from checkpoint: %d point(s) reused, %d recomputed\n"
        result.Explore.resumed
        (result.Explore.processed - result.Explore.resumed);
    if Explore.failed_count result > 0 then begin
      Printf.printf "failed points (isolated, sweep continued): %d\n"
        (Explore.failed_count result);
      List.iter
        (fun (stage, n) ->
          if n > 0 then
            Printf.printf "  %-12s %d point(s)\n" (Dhdl_dse.Outcome.stage_name stage) n)
        (Explore.failure_counts result)
    end;
    if result.Explore.truncated then
      Printf.printf
        "deadline hit: stopped after %d of %d point(s)%s\n" result.Explore.processed
        result.Explore.sampled
        (match checkpoint with
        | Some f -> Printf.sprintf "; resume with --checkpoint %s --resume" f
        | None -> " (no checkpoint; use --checkpoint FILE to make this resumable)");
    Option.iter
      (fun attr ->
        print_newline ();
        print_string (Profile.render attr))
      result.Explore.attribution
  in
  Cmd.v
    (Cmd.info "dse" ~doc:"Explore a benchmark's design space and print the Pareto frontier.")
    Term.(
      const run $ app_arg $ seed_arg $ train_arg $ points_arg $ cache_arg $ trace_arg $ jsonl_arg
      $ metrics_arg $ jobs_arg $ chunk_arg $ no_eval_cache_arg $ checkpoint_arg $ resume_arg
      $ deadline_arg $ inject_faults_arg $ faults_seed_arg $ no_absint_arg $ no_symbolic_arg
      $ profile_flag_arg)

let codegen_cmd =
  let manager =
    Arg.(value & flag & info [ "manager" ] ~doc:"Emit the MaxJ manager instead of the kernel.")
  in
  let run app params manager =
    let _, design = design_of ~app ~params in
    let text =
      if manager then Dhdl_codegen.Maxj.emit_manager design else Dhdl_codegen.Maxj.emit design
    in
    print_string text
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Generate MaxJ hardware source for a design point.")
    Term.(const run $ app_arg $ params_arg $ manager)

let compare_cmd =
  let run app params seed train cache =
    let ev = make_eval ?cache ~seed ~train_samples:train () in
    let _, design = design_of ~app ~params in
    let e = Eval.estimate ev design in
    let rpt = Dhdl_synth.Toolchain.synthesize design in
    let sim = Dhdl_sim.Perf_sim.simulate design in
    let err actual predicted = Dhdl_util.Stats.percent_error ~actual ~predicted in
    let f = float_of_int in
    let a = e.Estimator.area in
    print_string
      (Dhdl_util.Texttable.render
         ~header:[ "metric"; "estimated"; "actual (toolchain/sim)"; "error" ]
         [
           [ "ALMs"; string_of_int a.Estimator.alms; string_of_int rpt.Dhdl_synth.Report.alms;
             Dhdl_util.Texttable.fmt_pct (err (f rpt.Dhdl_synth.Report.alms) (f a.Estimator.alms)) ];
           [ "DSPs"; string_of_int a.Estimator.dsps; string_of_int rpt.Dhdl_synth.Report.dsps;
             Dhdl_util.Texttable.fmt_pct (err (f rpt.Dhdl_synth.Report.dsps) (f a.Estimator.dsps)) ];
           [ "BRAMs"; string_of_int a.Estimator.brams; string_of_int rpt.Dhdl_synth.Report.brams;
             Dhdl_util.Texttable.fmt_pct (err (f rpt.Dhdl_synth.Report.brams) (f a.Estimator.brams)) ];
           [ "registers"; string_of_int a.Estimator.regs; string_of_int rpt.Dhdl_synth.Report.regs;
             Dhdl_util.Texttable.fmt_pct (err (f rpt.Dhdl_synth.Report.regs) (f a.Estimator.regs)) ];
           [ "cycles";
             Dhdl_util.Texttable.fmt_int_commas (int_of_float e.Estimator.cycles);
             Dhdl_util.Texttable.fmt_int_commas (int_of_float sim.Dhdl_sim.Perf_sim.cycles);
             Dhdl_util.Texttable.fmt_pct (err sim.Dhdl_sim.Perf_sim.cycles e.Estimator.cycles) ];
         ])
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Estimate one design point and validate against the toolchain and simulator.")
    Term.(const run $ app_arg $ params_arg $ seed_arg $ train_arg $ cache_arg)

let dot_cmd =
  let run app params =
    let _, design = design_of ~app ~params in
    print_string (Dhdl_codegen.Dot.emit design)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the design's dataflow graph as Graphviz DOT.")
    Term.(const run $ app_arg $ params_arg)

let print_cmd =
  let run app params =
    let _, design = design_of ~app ~params in
    print_endline (Dhdl_ir.Pretty.design design)
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Pretty-print the DHDL IR of a design point.")
    Term.(const run $ app_arg $ params_arg)

let experiments_cmd =
  let which =
    Arg.(
      value
      & pos 0 (enum [ ("table2", `T2); ("table3", `T3); ("table4", `T4); ("fig5", `F5); ("fig6", `F6); ("ablations", `Abl); ("all", `All) ]) `All
      & info [] ~docv:"WHICH" ~doc:"table2|table3|table4|fig5|fig6|ablations|all")
  in
  let run which seed train points cache =
    let need_estimator = which <> `T2 in
    let ev =
      if need_estimator then Some (make_eval ?cache ~seed ~train_samples:train ())
      else None
    in
    (* All experiments share one pipeline, so overlapping sweeps (fig5's
       points recur in fig6 and the ablations) hit the cache. *)
    let est () = Option.get ev in
    (match which with
    | `T2 -> print_string (Experiments.render_table2 ())
    | `T3 -> print_string (Experiments.render_table3 (Experiments.table3 ~seed (est ())))
    | `T4 -> print_string (Experiments.render_table4 (Experiments.table4 ~seed (est ())))
    | `F5 -> print_string (Experiments.render_fig5 (Experiments.fig5 ~seed ~max_points:points (est ())))
    | `F6 -> print_string (Experiments.render_fig6 (Experiments.fig6 ~seed ~max_points:points (est ())))
    | `Abl ->
      print_string
        (Experiments.render_ablations
           (Experiments.ablation_metapipe ~seed (est ()))
           (Experiments.ablation_nn_correction ~seed (est ())));
      print_string
        (Experiments.render_sampling "gda" (Experiments.ablation_sampling ~seed (est ())));
      print_string (Experiments.render_device (Experiments.ablation_device ~seed (est ())));
      print_string (Experiments.render_bandwidth (Experiments.ablation_bandwidth ~seed (est ())))
    | `All ->
      print_string (Experiments.render_table2 ());
      print_newline ();
      print_string (Experiments.render_table3 (Experiments.table3 ~seed (est ())));
      print_newline ();
      print_string (Experiments.render_table4 (Experiments.table4 ~seed (est ())));
      print_newline ();
      print_string (Experiments.render_fig5 (Experiments.fig5 ~seed ~max_points:points (est ())));
      print_newline ();
      print_string (Experiments.render_fig6 (Experiments.fig6 ~seed ~max_points:points (est ())));
      print_newline ();
      print_string
        (Experiments.render_ablations
           (Experiments.ablation_metapipe ~seed (est ()))
           (Experiments.ablation_nn_correction ~seed (est ()))))
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ which $ seed_arg $ train_arg $ points_arg $ cache_arg)

let interpret_cmd =
  let run app =
    let a = lookup_app app in
    let sizes = a.App.test_sizes in
    let design = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
    let rng = Dhdl_util.Rng.create 7 in
    let inputs =
      List.filter_map
        (fun m ->
          match m.Dhdl_ir.Ir.mem_kind with
          | Dhdl_ir.Ir.Offchip ->
            let words = Dhdl_ir.Ir.mem_words m in
            Some (m.Dhdl_ir.Ir.mem_name, Array.init words (fun _ -> Dhdl_util.Rng.float_in rng 0.1 2.0))
          | _ -> None)
        design.Dhdl_ir.Ir.d_mems
    in
    let env = Dhdl_sim.Interp.run design ~inputs in
    Printf.printf "interpreted %s at test sizes (%s)\n" a.App.name
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sizes));
    List.iter
      (fun m ->
        match m.Dhdl_ir.Ir.mem_kind with
        | Dhdl_ir.Ir.Reg ->
          Printf.printf "  register %s = %g\n" m.Dhdl_ir.Ir.mem_name
            (Dhdl_sim.Interp.reg env m.Dhdl_ir.Ir.mem_name)
        | Dhdl_ir.Ir.Offchip ->
          let data = Dhdl_sim.Interp.offchip env m.Dhdl_ir.Ir.mem_name in
          let n = Array.length data in
          Printf.printf "  offchip %s: %d words, first = %g, sum = %g\n" m.Dhdl_ir.Ir.mem_name n
            data.(0)
            (Array.fold_left ( +. ) 0.0 data)
        | _ -> ())
      design.Dhdl_ir.Ir.d_mems
  in
  Cmd.v
    (Cmd.info "interpret" ~doc:"Run a benchmark's design through the functional interpreter.")
    Term.(const run $ app_arg)

let lint_cmd =
  let app_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (omit with $(b,--all)).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.") in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every registered benchmark at paper sizes.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [ ("error", Diag.Error); ("warning", Diag.Warning); ("info", Diag.Info) ])
          Diag.Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit non-zero when diagnostics at or above SEVERITY are present (error|warning|info).")
  in
  let run app_opt params json all fail_on =
    let targets =
      if all then
        List.map
          (fun (a : App.t) ->
            let sizes = a.App.paper_sizes in
            a.App.generate ~sizes ~params:(a.App.default_params sizes))
          Registry.all
      else
        match app_opt with
        | None -> failwith "expected a BENCHMARK name (or --all)"
        | Some app -> [ snd (design_of ~app ~params) ]
    in
    let reports = List.map (fun design -> (design, Lint.check design)) targets in
    if json then
      match reports with
      | [ (design, diags) ] when not all -> print_endline (Lint.render_json ~design diags)
      | _ ->
        print_endline
          ("["
          ^ String.concat ",\n "
              (List.map (fun (design, diags) -> Lint.render_json ~design diags) reports)
          ^ "]")
    else List.iter (fun (design, diags) -> print_endline (Lint.render_text ~design diags)) reports;
    let code = Lint.exit_code ~fail_on (List.concat_map snd reports) in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis passes (races, hazards, capacity, dead code) on a design.")
    Term.(const run $ app_opt $ params_arg $ json $ all $ fail_on)

let analyze_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.") in
  let symbolic =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:
            "Instead of analyzing this one point concretely, derive the app's symbolic \
             constraint system (one per design-family skeleton, over the named design \
             parameters), print it, and report this point's pre-elaboration verdict. Exit 2 when \
             the point is symbolically refuted.")
  in
  let run app params json symbolic =
    if symbolic then begin
      let a, point = resolved_point ~app ~params in
      let sizes = a.App.paper_sizes in
      let gate =
        Symgate.derive ~space:(a.App.space sizes)
          ~generate:(fun p -> a.App.generate ~sizes ~params:p)
          ()
      in
      let verdict = Symgate.verdict gate point in
      let point_str =
        String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) point)
      in
      if json then begin
        let verdict_json =
          match verdict with
          | Symbolic.Legal -> "{\"kind\":\"legal\"}"
          | Symbolic.Refuted { code; witness } ->
            Printf.sprintf "{\"kind\":\"refuted\",\"code\":%S,\"witness\":%S}" code witness
          | Symbolic.Unknown why -> Printf.sprintf "{\"kind\":\"unknown\",\"why\":%S}" why
        in
        print_endline
          (Printf.sprintf "{\"systems\":[%s],\"point\":{%s},\"verdict\":%s}"
             (String.concat ","
                (List.map Symbolic.render_json (Symgate.systems gate)))
             (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) point))
             verdict_json)
      end
      else begin
        List.iter (fun sys -> print_string (Symbolic.render_text sys)) (Symgate.systems gate);
        (match verdict with
        | Symbolic.Legal ->
          Printf.printf "point %s: Legal (concrete analysis provably clean)\n" point_str
        | Symbolic.Refuted { code; witness } ->
          Printf.printf "point %s: Refuted [%s] %s\n" point_str code witness
        | Symbolic.Unknown why -> Printf.printf "point %s: Unknown (%s)\n" point_str why)
      end;
      match verdict with Symbolic.Refuted _ -> exit 2 | Symbolic.Legal | Symbolic.Unknown _ -> ()
    end
    else begin
      let _, design = design_of ~app ~params in
      let report = Absint.analyze design in
      let deps = Dhdl_absint.Dependence.analyze design in
      if json then
        print_endline
          (Printf.sprintf "{\"absint\":%s,\"dependence\":%s}" (Absint.render_json report)
             (Dhdl_absint.Dependence.render_json deps))
      else begin
        print_string (Absint.render_text report);
        print_string (Dhdl_absint.Dependence.render_text deps)
      end;
      (* Mirror lint's convention: exit 2 when a proven violation (out-of-
         bounds access, bank conflict, illegal vectorization, or cross-stage
         overlap) is present. *)
      if not (Absint.clean report && Dhdl_absint.Dependence.clean deps) then exit 2
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Abstract-interpret a design point: prove every on-chip access in bounds, every \
          vectorized access conflict-free under a banking scheme, every double buffer justified \
          by a stage crossing, and every loop-carried dependence consistent with the chosen \
          initiation interval and parallelization (or print concrete counterexamples). With \
          $(b,--symbolic), derive the parametric constraint system instead and decide the point \
          without elaborating it.")
    Term.(const run $ app_arg $ params_arg $ json $ symbolic)

(* Amdahl's-law serial fraction inferred from a measured speedup at j
   workers: solving speedup = 1 / (s + (1 - s)/j) for s gives
   s = (j/speedup - 1)/(j - 1). On a machine where adding domains slows
   the sweep down (speedup < 1 — e.g. a single-core container), s exceeds
   1: coordination costs more than the parallelized work saves. *)
let amdahl_serial ~jobs ~speedup =
  if jobs <= 1 || speedup <= 0.0 then None
  else Some ((float_of_int jobs /. speedup -. 1.0) /. float_of_int (jobs - 1))

let profile_cmd =
  let app_opt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "app" ] ~docv:"BENCHMARK" ~doc:"Benchmark whose sweep to profile.")
  in
  let jobs_list_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "jobs"; "j" ] ~docv:"N,N,..."
          ~doc:
            "Comma-separated worker-domain counts to sweep at, in order. The first level is the \
             speedup baseline (use 1 for textbook Amdahl numbers).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the whole scaling report as one JSON object (per-level throughput, speedup, \
             efficiency, Amdahl serial fraction, and the full time attribution).")
  in
  let run app jobs_list seed train points cache json trace jsonl metrics =
    with_obs ~trace ~jsonl ~metrics @@ fun () ->
    if jobs_list = [] then failwith "expected at least one --jobs level";
    let ev = make_eval ?cache ~quiet:json ~seed ~train_samples:train () in
    let a = lookup_app app in
    let space = a.App.space a.App.paper_sizes in
    let generate p = a.App.generate ~sizes:a.App.paper_sizes ~params:p in
    let levels =
      List.map
        (fun jobs ->
          let cfg = Explore.Config.make ~seed ~max_points:points ~jobs ~profile:true () in
          let r = Explore.run cfg ev ~space ~generate in
          let attr =
            match r.Explore.attribution with
            | Some attr -> attr
            | None -> failwith "profiled sweep returned no attribution"
          in
          (jobs, r, attr))
        jobs_list
    in
    let pts_per_sec (r : Explore.result) =
      if r.Explore.elapsed_seconds > 0.0 then
        float_of_int r.Explore.processed /. r.Explore.elapsed_seconds
      else 0.0
    in
    let base_pps = match levels with (_, r, _) :: _ -> pts_per_sec r | [] -> 0.0 in
    let speedup r = if base_pps > 0.0 then pts_per_sec r /. base_pps else 0.0 in
    if json then begin
      let level_json (jobs, r, attr) =
        let su = speedup r in
        Printf.sprintf
          "{\"jobs\":%d,\"wall_s\":%.6f,\"points_per_sec\":%.3f,\"speedup\":%.4f,\"efficiency\":%.4f,\"amdahl_serial_frac\":%s,\"attribution\":%s}"
          jobs r.Explore.elapsed_seconds (pts_per_sec r) su
          (su /. float_of_int jobs)
          (match amdahl_serial ~jobs ~speedup:su with
          | Some s -> Printf.sprintf "%.4f" s
          | None -> "null")
          (Profile.to_json attr)
      in
      print_endline
        (Printf.sprintf
           "{\"app\":\"%s\",\"points\":%d,\"seed\":%d,\"recommended_domain_count\":%d,\"levels\":[%s]}"
           a.App.name points seed
           (Domain.recommended_domain_count ())
           (String.concat "," (List.map level_json levels)))
    end
    else begin
      Printf.printf "scaling report for %s (%d points per level, seed %d)\n" a.App.name points seed;
      Printf.printf "host recommends %d domain(s)\n\n" (Domain.recommended_domain_count ());
      print_string
        (Dhdl_util.Texttable.render
           ~header:
             [ "jobs"; "wall s"; "points/s"; "speedup"; "ideal"; "efficiency"; "serial frac" ]
           (List.map
              (fun (jobs, r, _) ->
                let su = speedup r in
                [ string_of_int jobs;
                  Printf.sprintf "%.3f" r.Explore.elapsed_seconds;
                  Printf.sprintf "%.1f" (pts_per_sec r);
                  Printf.sprintf "%.2fx" su;
                  Printf.sprintf "%dx" jobs;
                  Printf.sprintf "%.1f%%" (100.0 *. su /. float_of_int jobs);
                  (match amdahl_serial ~jobs ~speedup:su with
                  | Some s -> Printf.sprintf "%.2f" s
                  | None -> "-") ])
              levels));
      print_newline ();
      List.iter
        (fun (_, _, attr) ->
          print_string (Profile.render attr);
          print_newline ())
        levels;
      match levels with
      | (_, _, first) :: (_ :: _ as rest) ->
        let last = match List.rev rest with (_, _, l) :: _ -> l | [] -> first in
        let name, secs = Profile.top_contender last in
        if secs > 0.0 then
          Printf.printf "at %d jobs the dominant contended resource is the %s (%.4f s)\n"
            last.Profile.jobs name secs
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Sweep a benchmark's design space at several worker-domain counts and print an \
          Amdahl-style scaling report: throughput, speedup, efficiency, inferred serial \
          fraction, and a full attribution of worker and collector time (work vs contention vs \
          stall).")
    Term.(
      const run $ app_opt_arg $ jobs_list_arg $ seed_arg $ train_arg $ points_arg $ cache_arg
      $ json_arg $ trace_arg $ jsonl_arg $ metrics_arg)

let metrics_cmd =
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Instead of running a workload, re-render the telemetry summary from a JSONL event \
             log previously recorded with $(b,--jsonl) (here or on another machine).")
  in
  let run app params seed train points cache trace jsonl from =
    match from with
    | Some path -> (
      match Obs.summary_of_jsonl (read_file path) with
      | Ok summary ->
        Printf.printf "telemetry from %s\n\n%!" path;
        print_string summary
      | Error msg -> failwith (Printf.sprintf "%s: %s" path msg))
    | None ->
    let app =
      match app with
      | Some app -> app
      | None -> failwith "expected a BENCHMARK name (or --from FILE)"
    in
    Obs.enable ();
    let ev = make_eval ?cache ~seed ~train_samples:train () in
    let a, design = design_of ~app ~params in
    let e = Eval.estimate ev design in
    ignore (Dhdl_sim.Perf_sim.simulate design);
    let result =
      Explore.run
        Explore.Config.(default |> with_seed seed |> with_max_points points)
        ev
        ~space:(a.App.space a.App.paper_sizes)
        ~generate:(fun p -> a.App.generate ~sizes:a.App.paper_sizes ~params:p)
    in
    Printf.printf "instrumented run of %s: %s cycles at default point, %d DSE point(s) explored\n"
      a.App.name
      (Dhdl_util.Texttable.fmt_int_commas (int_of_float e.Estimator.cycles))
      result.Explore.sampled;
    let snap = Obs.snapshot () in
    Option.iter (fun path -> write_file path (Obs.to_chrome_trace snap)) trace;
    Option.iter (fun path -> write_file path (Obs.to_jsonl snap)) jsonl;
    print_newline ();
    print_string (Obs.render_summary snap);
    Option.iter (Printf.printf "\nChrome trace written to %s\n") trace;
    Option.iter (Printf.printf "JSONL event log written to %s\n") jsonl;
    Obs.disable ()
  in
  let app_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (omit with $(b,--from)).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run an instrumented workload (setup, one estimate, one simulation, a DSE sweep) and \
          dump the telemetry sink: counters, histograms, span rollups, optional trace exports — \
          or, with $(b,--from), summarize a previously recorded JSONL event log post hoc.")
    Term.(
      const run $ app_opt $ params_arg $ seed_arg $ train_arg $ points_arg $ cache_arg $ trace_arg
      $ jsonl_arg $ from_arg)

(* --- DSE-as-a-service ------------------------------------------------ *)

module Serve_protocol = Dhdl_serve.Protocol
module Serve_client = Dhdl_serve.Client

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/dhdl.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket the server listens on.")

let serve_cmd =
  let sessions_arg =
    Arg.(
      value
      & opt string "/tmp/dhdl-sessions"
      & info [ "sessions" ] ~docv:"DIR"
          ~doc:
            "Directory holding crash-only DSE session state (one subdirectory per session; the \
             checkpoint file is the state, so $(b,kill -9) loses at most the points since the \
             last periodic write).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound: requests beyond N pending are shed with a typed \
             $(i,overloaded) reply carrying a retry_after_ms hint.")
  in
  let degrade_arg =
    Arg.(
      value & opt int 16
      & info [ "degrade-depth" ] ~docv:"N"
          ~doc:
            "Queue depth at which estimate requests degrade to the raw analytical model \
             (flagged $(i,degraded:true) in replies).")
  in
  let quarantine_arg =
    Arg.(
      value & opt int 3
      & info [ "quarantine" ] ~docv:"N"
          ~doc:
            "Crashes before a poisoned request is parked with a $(i,quarantined) reply \
             carrying its error chain.")
  in
  let run socket sessions queue_cap degrade quarantine seed train cache jobs inject faults_seed
      trace jsonl metrics =
    with_obs ~trace ~jsonl ~metrics @@ fun () ->
    Option.iter
      (fun p ->
        Dhdl_util.Faults.configure ~seed:faults_seed ~p ();
        Printf.eprintf "[dev] injecting faults at p=%g (seed %d)\n%!" p faults_seed)
      inject;
    let estimator = lazy (make_estimator ?cache ~quiet:true ~seed ~train_samples:train ()) in
    let cfg =
      {
        (Dhdl_serve.Supervisor.default_config ~sessions_root:sessions ~estimator) with
        Dhdl_serve.Supervisor.queue_capacity = queue_cap;
        degrade_depth = degrade;
        quarantine_threshold = quarantine;
        dse_jobs = jobs;
      }
    in
    Dhdl_serve.Server.run ~socket_path:socket cfg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the DSE server: a supervised daemon multiplexing estimate/lint/analyze/dse \
          requests over a Unix domain socket, with admission control, per-request deadlines, \
          graceful degradation, quarantine, and crash-recoverable sweep sessions (SIGTERM \
          drains; sessions survive $(b,kill -9) via their checkpoints).")
    Term.(
      const run $ socket_arg $ sessions_arg $ queue_cap_arg $ degrade_arg $ quarantine_arg
      $ seed_arg $ train_arg $ cache_arg $ jobs_arg $ inject_faults_arg $ faults_seed_arg
      $ trace_arg $ jsonl_arg $ metrics_arg)

let client_cmd =
  let verb_arg =
    let verbs =
      List.map
        (fun v -> (Serve_protocol.verb_name v, v))
        Serve_protocol.
          [ Ping; Estimate; Estimate_batch; Lint; Analyze; Dse_start; Dse_status; Dse_cancel;
            Shutdown ]
    in
    Arg.(
      required
      & pos 0 (some (enum verbs)) None
      & info [] ~docv:"VERB"
          ~doc:
            "ping|estimate|estimate_batch|lint|analyze|dse_start|dse_status|dse_cancel|shutdown")
  in
  let app_opt_arg =
    Arg.(
      value & pos 1 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let client_params_arg =
    Arg.(value & pos_right 1 string [] & info [] ~docv:"PARAMS" ~doc:"Design parameters, name=value.")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Request id. Replies are cached by id, so re-running with the same id after a lost \
             reply returns the original result instead of re-executing. Default: a fresh \
             pid-derived id.")
  in
  let deadline_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Whole-request budget; expired work answers $(i,deadline_exceeded), and a \
             dse_start's remaining budget bounds the sweep (truncated + resumable).")
  in
  let session_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "session" ] ~docv:"ID" ~doc:"Session id (dse_start/dse_status/dse_cancel).")
  in
  let points_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "points"; "n" ] ~docv:"N" ~doc:"Sweep budget for dse_start (default 2000).")
  in
  let seed_opt_arg =
    Arg.(
      value & opt (some int) None & info [ "sweep-seed" ] ~docv:"N" ~doc:"Sweep seed for dse_start.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"S" ~doc:"Per-attempt reply timeout.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Retry budget (same id each time, jittered exponential backoff; overloaded replies \
             honor the server's retry_after_ms hint).")
  in
  let wait_arg =
    Arg.(value & flag & info [ "wait" ] ~doc:"Wait for the server to answer ping before sending.")
  in
  let batch_arg =
    Arg.(
      value & opt_all string []
      & info [ "batch" ] ~docv:"SPEC"
          ~doc:
            "One estimate_batch item as \"BENCHMARK,name=value,...\" (repeatable, order \
             preserved). The whole batch travels as one request sharing one $(b,--deadline-ms); \
             items reached after it expires get per-item deadline_exceeded entries inside a \
             successful reply.")
  in
  let parse_batch_spec spec =
    match String.split_on_char ',' spec with
    | [] | [ "" ] -> failwith (Printf.sprintf "bad --batch %S (expected BENCHMARK,name=value,...)" spec)
    | app :: params -> (app, parse_params params)
  in
  let run verb app params batch id deadline_ms session points sweep_seed socket timeout attempts
      wait =
    let client =
      Serve_client.create ~timeout_s:timeout ~max_attempts:attempts ~socket_path:socket ()
    in
    if wait && not (Serve_client.wait_ready client) then
      failwith (Printf.sprintf "server at %s did not become ready" socket);
    let id =
      match id with
      | Some id -> id
      | None -> Printf.sprintf "cli-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e3)
    in
    let specs = List.map parse_batch_spec batch in
    let req =
      Serve_protocol.request ?deadline_ms ?app ~params:(parse_params params) ~specs ?session
        ?seed:sweep_seed ?max_points:points ~id verb
    in
    match Serve_client.call client req with
    | Error msg -> failwith msg
    | Ok reply ->
      print_endline (Serve_protocol.render_reply reply);
      (match reply.Serve_protocol.r_body with Ok _ -> () | Error _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,dhdl serve) daemon and print the JSON reply \
          (exit 1 on a typed error reply).")
    Term.(
      const run $ verb_arg $ app_opt_arg $ client_params_arg $ batch_arg $ id_arg $ deadline_ms_arg
      $ session_arg $ points_opt_arg $ seed_opt_arg $ socket_arg $ timeout_arg $ attempts_arg
      $ wait_arg)

let list_cmd =
  let run () =
    print_string (Experiments.render_table2 ());
    List.iter
      (fun (a : App.t) ->
        let space = a.App.space a.App.paper_sizes in
        Printf.printf "%-14s raw design space: %s points\n" a.App.name
          (Dhdl_util.Texttable.fmt_int_commas (Dhdl_dse.Space.raw_size space)))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and their design-space sizes.") Term.(const run $ const ())

(* Every user-facing error leaves through one door: `dhdl: error: <msg>`
   on stderr, a one-line usage hint, exit 1. Command bodies signal with
   `failwith`/`Sys_error` (unknown benchmark, bad name=value parameters,
   unreadable files, mismatched checkpoints); cmdliner's own parse errors
   (unknown subcommands, unknown flags, bad option values) are captured
   off its error formatter and re-rendered the same way instead of
   surfacing cmdliner's multi-line report with exit 124. *)
let () =
  let doc = "DHDL: automatic generation of efficient accelerators for reconfigurable hardware" in
  let info = Cmd.info "dhdl" ~version:"1.0.0" ~doc in
  let group = Cmd.group info [ estimate_cmd; compare_cmd; synth_cmd; dse_cmd; profile_cmd; lint_cmd; analyze_cmd; metrics_cmd; codegen_cmd; dot_cmd; print_cmd; experiments_cmd; interpret_cmd; list_cmd; serve_cmd; client_cmd ] in
  let fail msg =
    Printf.eprintf "dhdl: error: %s\n(run 'dhdl --help' for usage)\n%!" msg;
    exit 1
  in
  let err_buf = Buffer.create 256 in
  let err_fmt = Format.formatter_of_buffer err_buf in
  match Cmd.eval ~catch:false ~err:err_fmt group with
  | code when code = Cmd.Exit.cli_error ->
    Format.pp_print_flush err_fmt ();
    (* First line of cmdliner's report, minus its own "dhdl: " prefix. *)
    let first_line =
      match String.split_on_char '\n' (String.trim (Buffer.contents err_buf)) with
      | line :: _ -> line
      | [] -> "invalid command line"
    in
    let msg =
      let prefix = "dhdl: " in
      if String.length first_line > String.length prefix
         && String.sub first_line 0 (String.length prefix) = prefix
      then String.sub first_line (String.length prefix) (String.length first_line - String.length prefix)
      else first_line
    in
    fail msg
  | code ->
    Format.pp_print_flush err_fmt ();
    prerr_string (Buffer.contents err_buf);
    exit code
  | exception (Failure msg | Sys_error msg) -> fail msg
