(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V) at full dataset sizes, prints paper-vs-measured
   values, and runs Bechamel microbenchmarks of the framework's hot paths
   (one per table/figure).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table3     # one section
     dune exec bench/main.exe -- --quick # scaled-down sizes

   Sections: table2 table3 table4 fig5 fig6 ablations micro all
   Named-only (excluded from `all`): serve-soak — long fault soak of the
   DSE server over its Unix socket. *)

module E = Dhdl_core.Experiments
module Estimator = Dhdl_model.Estimator
module App = Dhdl_apps.App
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Obs = Dhdl_obs.Obs

let seed = 2016

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 78 '=') title (String.make 78 '=')

let section_time name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s completed in %.1f s]\n%!" name (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                 *)
(* ------------------------------------------------------------------ *)

(* One evaluation pipeline (estimator + caches) shared by every section:
   sections running after fig5 hit the cache on the points it already
   explored, exactly as the CLI's `experiments all` does. Sections that
   time estimation (table4's loop, the microbenches, dseperf's cold runs)
   either force the cache off per call or build a fresh [Eval.t] around
   the same trained estimator. *)
let eval_ref : Eval.t option ref = ref None

let the_eval ~quick () =
  match !eval_ref with
  | Some ev -> ev
  | None ->
    Printf.printf
      "[setup] characterizing templates and training the correction networks\n";
    Printf.printf "[setup] (one-time per device/toolchain; Section IV.B)\n%!";
    let t0 = Unix.gettimeofday () in
    let train_samples = if quick then 100 else 200 in
    let ev = Eval.create (Estimator.create ~seed ~train_samples ()) in
    Printf.printf "[setup] done in %.1f s\n%!" (Unix.gettimeofday () -. t0);
    eval_ref := Some ev;
    ev

let run_table2 ~quick:_ () =
  banner "Table II: evaluation benchmarks and dataset sizes";
  print_string (E.render_table2 ())

let run_table3 ~quick () =
  banner "Table III: estimation accuracy vs. simulated toolchain (post-P&R + cycle sim)";
  let ev = the_eval ~quick () in
  let sample = if quick then 80 else 300 in
  print_string (E.render_table3 (E.table3 ~seed ~sample ~pareto_points:5 ev))

let run_table4 ~quick () =
  banner "Table IV: estimation speed, DHDL estimator vs. simulated HLS (GDA)";
  let ev = the_eval ~quick () in
  let r =
    if quick then E.table4 ~seed ~ours_points:50 ~restricted_points:8 ~full_points:1 ~hls_cols:48 ev
    else E.table4 ~seed ~ours_points:250 ~restricted_points:40 ~full_points:3 ev
  in
  print_string (E.render_table4 r)

let paper_scale = ref false

let run_fig5 ~quick () =
  banner "Figure 5: design-space exploration scatter plots and Pareto frontiers";
  let ev = the_eval ~quick () in
  let max_points = if !paper_scale then 75_000 else if quick then 250 else 2_000 in
  let apps = E.fig5 ~seed ~max_points ev in
  print_string (E.render_fig5 apps);
  let written = E.write_fig5_csvs ~dir:(Filename.get_temp_dir_name ()) apps in
  Printf.printf "raw exploration data written to:\n";
  List.iter (fun p -> Printf.printf "  %s\n" p) written

let run_fig6 ~quick () =
  banner "Figure 6: best-design speedup over the 6-core CPU baseline";
  let ev = the_eval ~quick () in
  let max_points = if quick then 400 else 2_000 in
  print_string (E.render_fig6 (E.fig6 ~seed ~max_points ev))

let run_ablations ~quick () =
  banner "Ablations: MetaPipe pipelining and the hybrid NN correction";
  let ev = the_eval ~quick () in
  let max_points = if quick then 150 else 800 in
  let sample = if quick then 60 else 300 in
  print_string
    (E.render_ablations
       (E.ablation_metapipe ~seed ~max_points ev)
       (E.ablation_nn_correction ~seed ~sample ev));
  let budgets = if quick then [ 50; 150; 400 ] else [ 100; 300; 1_000; 3_000 ] in
  print_string (E.render_sampling "gda" (E.ablation_sampling ~seed ~app:"gda" ~budgets ev));
  print_newline ();
  print_string (E.render_device (E.ablation_device ~seed ~max_points ev));
  print_newline ();
  print_string (E.render_bandwidth (E.ablation_bandwidth ~seed ~max_points ev))

(* ------------------------------------------------------------------ *)
(* DSE throughput: the start of the perf trajectory                    *)
(* ------------------------------------------------------------------ *)

(* Writes BENCH_dse.json (schema 4) from GDA sweeps plus a kmeans
   symbolic-gate A/B. Four axes:

   - jobs_sweep: cold wall-clock timing at jobs = 1, 2, 4 (a fresh
     evaluation cache per level, telemetry on, no profiler — comparable
     with every historical entry), plus a contention attribution from a
     second, *warm-cache* profiled repeat at the same level. Warm on
     purpose: with the evaluated work memoized away the attribution
     isolates pure coordination overhead (channel waits, GC barriers,
     chunk merging), which is the quantity the parallel engine is
     accountable for on any host — including a single-core container
     where cold jobs>1 walls are dominated by time-sliced estimation.
   - cache_ab: the same sequential sweep cold then again on the warm
     cache — the memoization headline.
   - chunk_sweep: warm profiled jobs=4 sweeps across chunk sizes, showing
     how per-claim batching trades collector wakeups against tail skew.
   - symbolic_ab: a cold kmeans sweep (the app with a large symbolically
     refutable region at paper sizes) with the pre-elaboration legality
     gate on vs [--no-symbolic], counting generate calls directly — the
     gate's headline is elaborations never performed, which wall-clock
     alone understates on a warm cache. *)
let run_label = ref "dev"

let run_dseperf ~quick () =
  banner "DSE throughput (telemetry-derived): points/sec per jobs level, cache A/B, chunk sweep";
  let est = Eval.estimator (the_eval ~quick ()) in
  let fresh_eval () = Eval.create est in
  let app = Dhdl_apps.Registry.find "gda" in
  let sizes = app.App.paper_sizes in
  let points = if quick then 200 else 1_000 in
  let space = app.App.space sizes in
  let generate p = app.App.generate ~sizes ~params:p in
  let sweep ?(jobs = 1) ?(chunk = 16) ?(profile = false) ?(obs = false) ev =
    if obs then Obs.enable ();
    let cfg =
      Explore.Config.(
        default |> with_seed seed |> with_max_points points |> with_jobs jobs |> with_chunk chunk
        |> with_profile profile)
    in
    let r = Explore.run cfg ev ~space ~generate in
    let snap = if obs then Some (Obs.snapshot ()) else None in
    if obs then Obs.disable ();
    (r, snap)
  in
  let pps (r : Explore.result) =
    if r.Explore.elapsed_seconds > 0.0 then
      float_of_int r.Explore.sampled /. r.Explore.elapsed_seconds
    else 0.0
  in
  let attr_of (r : Explore.result) =
    match r.Explore.attribution with
    | Some attr -> attr
    | None -> failwith "profiled sweep returned no attribution"
  in
  (* Cold sequential baseline (top-level fields, comparable with history),
     then the warm repeat on the same cache for the A/B. *)
  let ev_seq = fresh_eval () in
  let r1, snap1 = sweep ~obs:true ev_seq in
  let rwarm, _ = sweep ev_seq in
  (* Cold timing + warm profiled attribution per jobs level. The warm
     repeats share [ev_seq]'s cache (every level evaluates the same seeded
     point set, so it is fully warm after the sequential sweep). *)
  let jobs_levels = [ 1; 2; 4 ] in
  let levels =
    List.map
      (fun jobs ->
        let rc, _ = if jobs = 1 then (r1, snap1) else sweep ~jobs ~obs:true (fresh_eval ()) in
        let rw, _ = sweep ~jobs ~profile:true ev_seq in
        (jobs, rc, attr_of rw))
      jobs_levels
  in
  let chunk_levels = [ 1; 4; 16; 64 ] in
  let chunks =
    List.map
      (fun chunk ->
        let r, _ = sweep ~jobs:4 ~chunk ~profile:true ev_seq in
        (chunk, r, attr_of r))
      chunk_levels
  in
  (* Symbolic-gate A/B on kmeans: fresh caches both sides so the only
     difference is the gate. Generate calls are counted at the source —
     gate on pays the probe elaborations up front and then skips every
     symbolically refuted point. *)
  let sym_app = Dhdl_apps.Registry.find "kmeans" in
  let sym_sizes = sym_app.App.paper_sizes in
  let sym_space = sym_app.App.space sym_sizes in
  let sym_run ~symbolic =
    let calls = ref 0 in
    let generate p =
      incr calls;
      sym_app.App.generate ~sizes:sym_sizes ~params:p
    in
    let cfg = Explore.Config.make ~seed ~max_points:points ~symbolic () in
    let r = Explore.run cfg (fresh_eval ()) ~space:sym_space ~generate in
    (r, !calls)
  in
  let sym_on, gen_on = sym_run ~symbolic:true in
  let sym_off, gen_off = sym_run ~symbolic:false in
  let sym_side (r : Explore.result) calls =
    Printf.sprintf
      "{\"elapsed_s\":%.3f,\"points_per_sec\":%.1f,\"generate_calls\":%d,\"sym_pruned\":%d,\"lint_pruned\":%d,\"absint_pruned\":%d,\"dep_pruned\":%d}"
      r.Explore.elapsed_seconds (pps r) calls r.Explore.sym_pruned r.Explore.lint_pruned
      r.Explore.absint_pruned r.Explore.dep_pruned
  in
  let symbolic_ab =
    Printf.sprintf "{\"app\":\"kmeans\",\"points\":%d,\"gate_on\":%s,\"gate_off\":%s,\"generate_calls_saved\":%d}"
      sym_on.Explore.sampled (sym_side sym_on gen_on) (sym_side sym_off gen_off)
      (gen_off - gen_on)
  in
  let ms = try List.assoc "dse.ms_per_design" (Option.get snap1).Obs.snap_hists with Not_found -> [||] in
  let estimated = r1.Explore.sampled - r1.Explore.lint_pruned in
  let p50 = Obs.percentile ms 50.0 and p95 = Obs.percentile ms 95.0 in
  let recv_block attr = attr.Dhdl_dse.Profile.collector.Dhdl_dse.Profile.c_recv_block_s in
  let level_json (_jobs, (rc : Explore.result), attr) =
    Printf.sprintf
      "{\"jobs\":%d,\"elapsed_s\":%.3f,\"points_per_sec\":%.1f,\"wall_ms_per_design\":%.4f,\"cpu_ms_per_design\":%.4f,\"warm_attribution\":%s}"
      rc.Explore.jobs rc.Explore.elapsed_seconds (pps rc)
      (Explore.seconds_per_design rc *. 1000.0)
      (Explore.cpu_seconds_per_design rc *. 1000.0)
      (Dhdl_dse.Profile.to_json attr)
  in
  let chunk_json (chunk, (r : Explore.result), attr) =
    Printf.sprintf
      "{\"chunk\":%d,\"jobs\":4,\"elapsed_s\":%.3f,\"points_per_sec\":%.1f,\"recv_block_s\":%.6f}"
      chunk r.Explore.elapsed_seconds (pps r) (recv_block attr)
  in
  let cache_ab =
    Printf.sprintf
      "{\"jobs\":1,\"cold_elapsed_s\":%.3f,\"cold_points_per_sec\":%.1f,\"warm_elapsed_s\":%.3f,\"warm_points_per_sec\":%.1f,\"warm_speedup\":%.2f,\"warm_cache_hits\":%d,\"warm_cache_misses\":%d}"
      r1.Explore.elapsed_seconds (pps r1) rwarm.Explore.elapsed_seconds (pps rwarm)
      (if pps r1 > 0.0 then pps rwarm /. pps r1 else 0.0)
      rwarm.Explore.cache_hits rwarm.Explore.cache_misses
  in
  let json =
    Printf.sprintf
      "{\"schema\":4,\"label\":%S,\"app\":\"gda\",\"points\":%d,\"estimated\":%d,\"lint_pruned\":%d,\"recommended_domain_count\":%d,\"host_note\":\"points_per_sec and scaling depend on the host; a recommended_domain_count of 1 (e.g. a single-core container) makes every jobs>1 level pure coordination overhead. Cold levels use a fresh evaluation cache; warm_attribution and chunk_sweep are profiled repeats on a warm cache, isolating coordination from estimation work. symbolic_ab is a cold kmeans sweep with the pre-elaboration legality gate on vs off, counting generate calls.\",\"elapsed_s\":%.3f,\"points_per_sec\":%.1f,\"ms_per_design_p50\":%.4f,\"ms_per_design_p95\":%.4f,\"cache_ab\":%s,\"symbolic_ab\":%s,\"chunk_sweep\":[%s],\"jobs_sweep\":[%s]}\n"
      !run_label r1.Explore.sampled estimated r1.Explore.lint_pruned
      (Domain.recommended_domain_count ())
      r1.Explore.elapsed_seconds (pps r1) p50 p95 cache_ab symbolic_ab
      (String.concat "," (List.map chunk_json chunks))
      (String.concat "," (List.map level_json levels))
  in
  let oc = open_out "BENCH_dse.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "%d points (%d estimated, %d lint-pruned) in %.2f s sequential: %.0f points/sec\n"
    r1.Explore.sampled estimated r1.Explore.lint_pruned r1.Explore.elapsed_seconds (pps r1);
  Printf.printf
    "warm-cache repeat: %.2f s, %.0f points/sec (%.0fx; %d hits, %d misses)\n"
    rwarm.Explore.elapsed_seconds (pps rwarm)
    (if pps r1 > 0.0 then pps rwarm /. pps r1 else 0.0)
    rwarm.Explore.cache_hits rwarm.Explore.cache_misses;
  List.iter
    (fun (_, (rc : Explore.result), attr) ->
      let module P = Dhdl_dse.Profile in
      let top_name, top_s = P.top_contender attr in
      Printf.printf
        "  jobs=%d: cold %.2f s wall, %.0f points/sec; warm attribution: work %.1f%%, \
         contention %.1f%%, stall %.1f%% (top: %s %.4f s; recv-block %.4f s)\n"
        rc.Explore.jobs rc.Explore.elapsed_seconds (pps rc)
        (100.0 *. P.work_fraction attr)
        (100.0 *. P.contention_fraction attr)
        (100.0 *. P.stall_fraction attr)
        top_name top_s (recv_block attr))
    levels;
  List.iter
    (fun (chunk, (r : Explore.result), attr) ->
      Printf.printf "  chunk=%-3d (jobs=4, warm): %.3f s, %.0f points/sec, recv-block %.4f s\n"
        chunk r.Explore.elapsed_seconds (pps r) (recv_block attr))
    chunks;
  Printf.printf
    "symbolic gate A/B (kmeans, cold): on %d generate calls (%d sym-pruned, %.2f s), off %d \
     generate calls (%.2f s) — %d elaborations saved\n"
    gen_on sym_on.Explore.sym_pruned sym_on.Explore.elapsed_seconds gen_off
    sym_off.Explore.elapsed_seconds (gen_off - gen_on);
  Printf.printf "ms per design (sequential, cold): p50 %.4f, p95 %.4f\n" p50 p95;
  Printf.printf "written to BENCH_dse.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one per table/figure                      *)
(* ------------------------------------------------------------------ *)

let run_micro ~quick () =
  banner "Microbenchmarks (Bechamel): per-call cost of each experiment's hot path";
  let open Bechamel in
  let ev = the_eval ~quick () in
  let est = Eval.estimator ev in
  let gda = Dhdl_apps.Registry.find "gda" in
  let sizes = gda.App.paper_sizes in
  let design = App.generate_default gda sizes in
  let space = gda.App.space sizes in
  let hls_small = Dhdl_hls.Gda_c.build ~cols:24 Dhdl_hls.Gda_c.default in
  let tests =
    [
      (* Table III's unit of work: one hybrid estimate plus one toolchain
         ground-truth run. Cache off — the per-call cost is the point. *)
      Test.make ~name:"table3.estimate"
        (Staged.stage (fun () -> Eval.estimate ~cache:false ev design));
      Test.make ~name:"table3.synthesize"
        (Staged.stage (fun () -> Dhdl_synth.Toolchain.synthesize design));
      Test.make ~name:"table3.simulate" (Staged.stage (fun () -> Dhdl_sim.Perf_sim.simulate design));
      (* Table IV's two sides. *)
      Test.make ~name:"table4.our_estimator"
        (Staged.stage (fun () -> Estimator.estimate_cycles est design));
      Test.make ~name:"table4.hls_restricted"
        (Staged.stage (fun () -> Dhdl_hls.Scheduler.estimate hls_small));
      (* Figure 5's unit: sample + generate + estimate one design point. *)
      Test.make ~name:"fig5.dse_point"
        (Staged.stage (fun () ->
             let p = List.hd (Dhdl_dse.Space.sample space ~seed ~max_points:1) in
             Eval.estimate ~cache:false ev (gda.App.generate ~sizes ~params:p)));
      (* Figure 6's unit: the CPU cost model. *)
      Test.make ~name:"fig6.cpu_model"
        (Staged.stage (fun () -> Dhdl_cpu.Cost_model.seconds (gda.App.cpu_workload sizes)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"dhdl" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-28s %12.1f ns/run (%9.3f ms)\n" name ns (ns /. 1e6)
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Long-running robustness soak of the DSE server (ISSUE 8). Sustained
   mixed traffic over the Unix socket against an in-process server, with
   the serve fault sites firing at 5%; every request must come back as
   exactly one typed reply — lost replies abort the soak. Excluded from
   the default `all` run (it is a robustness soak, not a paper figure):
     dune exec bench/main.exe serve-soak [-- --quick]                  *)
(* ------------------------------------------------------------------ *)

let run_serve_soak ~quick () =
  let module Server = Dhdl_serve.Server in
  let module Client = Dhdl_serve.Client in
  let module Sup = Dhdl_serve.Supervisor in
  let module P = Dhdl_serve.Protocol in
  let module Faults = Dhdl_util.Faults in
  banner "Serve soak: sustained mixed traffic under 5% injected faults";
  let est = Eval.estimator (the_eval ~quick ()) in
  let tmpdir = Filename.get_temp_dir_name () in
  let socket = Filename.concat tmpdir "dhdl_bench_soak.sock" in
  let root = Filename.concat tmpdir "dhdl_bench_soak_sessions" in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let cfg = Sup.default_config ~sessions_root:root ~estimator:(Lazy.from_val est) in
  Faults.configure ~seed ~p:0.0 ();
  List.iter
    (fun s -> Faults.set_site s 0.05)
    [ "serve.handler"; "serve.sock_read"; "serve.sock_write"; "serve.session_store" ];
  let server =
    Domain.spawn (fun () -> Server.run ~install_signals:false ~socket_path:socket cfg)
  in
  let client = Client.create ~timeout_s:30.0 ~socket_path:socket () in
  if not (Client.wait_ready ~timeout_s:60.0 client) then failwith "soak server did not come up";
  let n = if quick then 200 else 2_000 in
  let ok = ref 0 and typed_errors = ref 0 and quarantined = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let id = Printf.sprintf "soak-%d" i in
    let req =
      match i mod 4 with
      | 0 -> P.request ~id P.Ping
      | 1 -> P.request ~id ~app:"dotproduct" P.Estimate
      | 2 -> P.request ~id ~app:"gda" P.Lint
      | _ -> P.request ~id ~app:"nosuchapp" P.Estimate
    in
    match Client.call client req with
    | Ok reply -> (
      match reply.P.r_body with
      | Ok _ -> incr ok
      | Error { P.err_code = P.Quarantined; _ } ->
        incr quarantined;
        incr typed_errors
      | Error _ -> incr typed_errors)
    | Error msg -> failwith (Printf.sprintf "request %s got no reply: %s" id msg)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (* A sweep session runs to completion through the same fault stream. *)
  let sid = "bench-soak" in
  (match
     Client.call client
       (P.request ~id:"soak-dse" ~app:"dotproduct" ~session:sid ~seed ~max_points:25 P.Dse_start)
   with
  | Ok _ -> ()
  | Error msg -> failwith ("dse_start got no reply: " ^ msg));
  let rec wait_done k =
    if k > 3000 then failwith "soak sweep did not finish"
    else
      match Client.call client (P.request ~id:(Printf.sprintf "soak-st-%d" k) ~session:sid P.Dse_status) with
      | Ok { P.r_body = Ok p; _ }
        when Dhdl_serve.Json.member "state" p = Some (Dhdl_serve.Json.Str "done") ->
        ()
      | _ ->
        Unix.sleepf 0.05;
        wait_done (k + 1)
  in
  wait_done 0;
  ignore (Client.call client (P.request ~id:"soak-bye" P.Shutdown));
  Domain.join server;
  Faults.reset ();
  Printf.printf
    "%d requests under 5%%-per-site faults: %d ok, %d typed errors (%d quarantined), 0 lost\n"
    n !ok !typed_errors !quarantined;
  Printf.printf "sustained %.0f req/s end-to-end over the socket (%.1f s)\n" (float_of_int n /. dt) dt;
  Printf.printf "plus one 25-point sweep session driven to completion through the same faults\n";
  assert (!ok + !typed_errors = n)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table2", run_table2);
    ("table3", run_table3);
    ("table4", run_table4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("ablations", run_ablations);
    ("dseperf", run_dseperf);
    ("micro", run_micro);
  ]

(* Named-only sections: runnable by name, excluded from `all` — the serve
   soak is a long robustness exercise, not part of the paper's evaluation. *)
let extra_sections = [ ("serve-soak", run_serve_soak) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  paper_scale := List.mem "--paper-scale" args;
  List.iter
    (fun a ->
      match String.index_opt a '=' with
      | Some i when String.length a > 8 && String.sub a 0 8 = "--label=" ->
        run_label := String.sub a (i + 1) (String.length a - i - 1)
      | _ -> ())
    args;
  let wanted =
    List.filter
      (fun a ->
        a <> "--quick" && a <> "--paper-scale" && a <> "--"
        && not (String.length a > 8 && String.sub a 0 8 = "--label="))
      args
  in
  let sections =
    match wanted with
    | [] | [ "all" ] -> all_sections
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n (all_sections @ extra_sections) with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown section %S (have: %s)\n" n
              (String.concat " " (List.map fst (all_sections @ extra_sections)));
            exit 2)
        names
  in
  Printf.printf
    "DHDL benchmark harness — reproducing the evaluation of\n\
     \"Automatic Generation of Efficient Accelerators for Reconfigurable Hardware\" (ISCA 2016)\n";
  if quick then Printf.printf "(quick mode: scaled-down sampling)\n";
  if !paper_scale then
    Printf.printf "(paper scale: up to 75,000 sampled points per design space)\n";
  let t0 = Unix.gettimeofday () in
  List.iter (fun (name, f) -> section_time name (fun () -> f ~quick ())) sections;
  Printf.printf "\nTotal: %.1f s\n" (Unix.gettimeofday () -. t0)
