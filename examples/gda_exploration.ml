(* Design-space exploration of the paper's running example (GDA, Figures
   2-4): sample the legal space of tile sizes, parallelization factors and
   MetaPipe toggles, print the Pareto frontier, and validate the best design
   against the simulated toolchain — the full Figure 1 flow for one app.

     dune exec examples/gda_exploration.exe
*)

module App = Dhdl_apps.App
module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval

let () =
  let app = Dhdl_apps.Registry.find "gda" in
  let sizes = app.App.paper_sizes in
  let space = app.App.space sizes in
  Printf.printf "GDA design space: %s raw points across %d parameters\n"
    (Dhdl_util.Texttable.fmt_int_commas (Dhdl_dse.Space.raw_size space))
    (List.length (Dhdl_dse.Space.dims space));

  Printf.printf "setting up the estimator (characterization + NN training)...\n%!";
  let ev = Eval.create (Estimator.create ~train_samples:160 ~epochs:300 ()) in

  let result =
    Explore.run
      Explore.Config.(default |> with_seed 2016 |> with_max_points 1500)
      ev ~space
      ~generate:(fun p -> app.App.generate ~sizes ~params:p)
  in
  Printf.printf "explored %d legal points in %.2f s (%.2f ms per design)\n\n"
    result.Explore.sampled result.Explore.elapsed_seconds
    (Explore.seconds_per_design result *. 1000.0);

  print_string
    (Dhdl_core.Experiments.render_fig5
       [ { Dhdl_core.Experiments.app_name = "gda"; result } ]);

  (* Ground-truth the best design. *)
  match Explore.best result with
  | None -> print_endline "no valid design found"
  | Some best ->
    let design = app.App.generate ~sizes ~params:best.Explore.point in
    let report = Dhdl_synth.Toolchain.synthesize design in
    let sim = Dhdl_sim.Perf_sim.simulate design in
    let e = best.Explore.estimate in
    Printf.printf "\nbest design: %s\n"
      (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) best.Explore.point));
    Printf.printf "  estimated: %d ALMs, %.3e cycles\n"
      e.Estimator.area.Estimator.alms e.Estimator.cycles;
    Printf.printf "  actual   : %d ALMs, %.3e cycles (%.1f%% / %.1f%% error)\n"
      report.Dhdl_synth.Report.alms sim.Dhdl_sim.Perf_sim.cycles
      (Dhdl_util.Stats.percent_error
         ~actual:(float_of_int report.Dhdl_synth.Report.alms)
         ~predicted:(float_of_int e.Estimator.area.Estimator.alms))
      (Dhdl_util.Stats.percent_error ~actual:sim.Dhdl_sim.Perf_sim.cycles
         ~predicted:e.Estimator.cycles);
    let cpu = Dhdl_cpu.Cost_model.seconds (app.App.cpu_workload sizes) in
    Printf.printf "  speedup over the 6-core CPU baseline: %.2fx (paper: 4.55x)\n"
      (cpu /. sim.Dhdl_sim.Perf_sim.seconds)
