(* The complete Figure 1 flow, starting from step 1: write the application
   as parallel patterns (the paper's high-level input [16, 19, 20]), fuse
   and tile it into DHDL, optimize the IR, then estimate, explore and
   ground-truth it — no hand-written hardware at all.

   The program: an outlier-robust "trimmed energy" kernel
       sum over i of clamp(x_i * w_i + b, -1, 1)^2

     dune exec examples/patterns_frontend.exe
*)

module P = Dhdl_patterns.Pattern
module Op = Dhdl_ir.Op
module Transform = Dhdl_ir.Transform
module Estimator = Dhdl_model.Estimator
module Eval = Dhdl_dse.Eval
module Rng = Dhdl_util.Rng

let program =
  let clamp v = P.(prim Op.Min [ prim Op.Max [ v; constf (-1.0) ]; constf 1.0 ]) in
  P.(
    reduce Op.Add
      (map
         (fun v -> v *% v)
         (map clamp (zip2 (fun x w -> (x *% w) +% constf 0.1) (input "x") (input "w")))))

let () =
  Printf.printf "pattern program:\n  %s\n\n" (P.to_string program);

  (* Step 1a: fusion. *)
  (match P.fuse program with
  | P.Fused_reduce { op; f; srcs } ->
    Printf.printf "fused into one reduce(%s) over %d inputs, %d primitive ops:\n  %s\n\n"
      (Op.name op) (List.length srcs) (P.fused_ops (P.fuse program)) (P.elt_to_string f)
  | P.Fused_map _ | P.Fused_outer _ -> assert false);

  (* Step 1b: tiling + lowering to DHDL, then IR cleanup. *)
  let n = 1_048_576 in
  let design = Transform.optimize (P.lower ~name:"trimmed_energy" ~n ~tile:1024 ~par:8 program) in
  Dhdl_ir.Analysis.validate_exn design;
  Printf.printf "lowered DHDL design:\n%s\n\n" (Dhdl_ir.Pretty.design design);

  (* Functional check against the pattern's reference semantics. *)
  let n_small = 2048 in
  let small = Transform.optimize (P.lower ~name:"small" ~n:n_small ~tile:256 ~par:4 program) in
  let rng = Rng.create 3 in
  let x = Array.init n_small (fun _ -> Rng.float_in rng (-3.0) 3.0) in
  let w = Array.init n_small (fun _ -> Rng.float_in rng (-1.0) 1.0) in
  let env = Dhdl_sim.Interp.run small ~inputs:[ ("x", x); ("w", w) ] in
  let expect = (P.eval program ~env:[ ("x", x); ("w", w) ]).(0) in
  let got = Dhdl_sim.Interp.reg env "out" in
  assert (Float.abs (got -. expect) < 1e-3 *. Float.abs expect);
  Printf.printf "interpreter matches the pattern semantics: %.4f\n\n" got;

  (* Steps 2-4: estimate and ground-truth the full-size instance. *)
  let ev = Eval.create (Estimator.create ~train_samples:120 ~epochs:200 ()) in
  let e = Eval.estimate ev design in
  let rpt = Dhdl_synth.Toolchain.synthesize design in
  let sim = Dhdl_sim.Perf_sim.simulate design in
  Printf.printf "estimated: %d ALMs, %.0f cycles\n" e.Estimator.area.Estimator.alms
    e.Estimator.cycles;
  Printf.printf "actual   : %d ALMs, %.0f cycles (%.1f%% / %.1f%% error)\n"
    rpt.Dhdl_synth.Report.alms sim.Dhdl_sim.Perf_sim.cycles
    (Dhdl_util.Stats.percent_error
       ~actual:(float_of_int rpt.Dhdl_synth.Report.alms)
       ~predicted:(float_of_int e.Estimator.area.Estimator.alms))
    (Dhdl_util.Stats.percent_error ~actual:sim.Dhdl_sim.Perf_sim.cycles
       ~predicted:e.Estimator.cycles);

  (* Step 5: hardware generation. *)
  let maxj = Dhdl_codegen.Maxj.emit design in
  Printf.printf "\ngenerated %d lines of MaxJ (kernel class %s)\n"
    (List.length (String.split_on_char '\n' maxj))
    (Dhdl_codegen.Maxj.kernel_class_name design)
