(* Tests for the Dhdl_lint pass framework: one hand-built ill-formed design
   per diagnostic code (positive), plus the guarantee that every registered
   benchmark at paper sizes is lint-clean at error severity (negative). *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Diag = Dhdl_ir.Diag
module Lint = Dhdl_lint.Lint
module Passes = Dhdl_lint.Passes
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Estimator = Dhdl_model.Estimator
module Space = Dhdl_dse.Space
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let codes diags = List.map (fun g -> g.Diag.code) diags

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let has_code code diags = List.mem code (codes diags)

let has_error code diags =
  List.exists (fun g -> g.Diag.code = code && g.Diag.severity = Diag.Error) diags

(* ------------------------- fixtures -------------------------------- *)

(* Two Parallel stages storing into the same BRAM: a write-write race. *)
let race_design () =
  let b = B.create "race" in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let stage label =
    B.pipe ~label ~counters:[ ("i", 0, 16, 1) ] (fun pb ->
        B.store pb xt [ B.iter "i" ] (B.const 1.0))
  in
  B.finish b ~top:(B.parallel ~label:"fork" [ stage "a"; stage "b" ])

(* One stage writes the buffer another reads: a read-write race. *)
let rw_race_design () =
  let b = B.create "rwrace" in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let yt = B.bram b "yT" Dtype.float32 [ 16 ] in
  let writer =
    B.pipe ~label:"w" ~counters:[ ("i", 0, 16, 1) ] (fun pb ->
        B.store pb xt [ B.iter "i" ] (B.const 1.0))
  in
  let reader =
    B.pipe ~label:"r" ~counters:[ ("i", 0, 16, 1) ] (fun pb ->
        B.store pb yt [ B.iter "i" ] (B.load pb xt [ B.iter "i" ]))
  in
  B.finish b ~top:(B.parallel ~label:"fork" [ writer; reader ])

(* A tile buffer flowing between MetaPipe stages; Builder.finish sets
   mem_double, so the hazard is injected by clearing the flag. *)
let metapipe_design () =
  let b = B.create "meta" in
  let x = B.offchip b "x" Dtype.float32 [ 64 ] in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let out = B.reg b "out" Dtype.float32 in
  let inner =
    B.reduce_pipe ~label:"sum" ~counters:[ ("i", 0, 16, 1) ] ~par:2 ~op:Op.Add ~out (fun pb ->
        B.load pb xt [ B.iter "i" ])
  in
  let top =
    B.metapipe ~label:"outer"
      ~counters:[ ("t", 0, 64, 16) ]
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par:2 (); inner ]
  in
  (B.finish b ~top, xt)

let queue_design ~depth ~push ~pop =
  let b = B.create "queues" in
  let q = B.queue b "q" Dtype.float32 ~depth in
  let out = B.reg b "out" Dtype.float32 in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        if push then B.push pb q (B.const 1.0);
        if pop then B.write_reg pb out (B.pop pb q))
  in
  B.finish b ~top

(* ------------------------- positive cases -------------------------- *)

let test_l001_write_write () =
  let diags = Lint.check (race_design ()) in
  check_bool "L001 error" true (has_error "L001" diags);
  check_bool "nonzero exit" true (Lint.exit_code diags = 2)

let test_l001_read_write () =
  check_bool "L001 error" true (has_error "L001" (Lint.check (rw_race_design ())))

let test_l002_metapipe_hazard () =
  let d, xt = metapipe_design () in
  check_bool "clean after inference" false (has_code "L002" (Lint.check d));
  xt.Ir.mem_double <- false;
  let diags = Lint.check d in
  check_bool "L002 error after clearing mem_double" true (has_error "L002" diags);
  check_int "exit 2" 2 (Lint.exit_code diags)

let test_l003_banking_mismatch () =
  let d, xt = metapipe_design () in
  check_bool "clean after inference" false (has_code "L003" (Lint.check d));
  xt.Ir.mem_banks <- 1;
  check_bool "L003 error after shrinking banks" true (has_error "L003" (Lint.check d))

let test_l004_dead_memory () =
  let b = B.create "dead" in
  let used = B.bram b "used" Dtype.float32 [ 8 ] in
  let _unused = B.bram b "unused" Dtype.float32 [ 8 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        B.store pb used [ B.iter "i" ] (B.const 1.0))
  in
  let diags = Lint.check (B.finish b ~top) in
  let l4 = List.filter (fun g -> g.Diag.code = "L004") diags in
  check_int "never-accessed and write-only" 2 (List.length l4);
  List.iter (fun g -> check_bool "warning" true (g.Diag.severity = Diag.Warning)) l4

let test_l005_dead_value () =
  let b = B.create "deadval" in
  let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
  let out = B.reg b "out" Dtype.float32 in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        let _dead = B.mul pb v v in
        B.write_reg pb out v)
  in
  let diags = Lint.check (B.finish b ~top) in
  check_bool "L005 warning" true (has_code "L005" diags);
  check_bool "not an error" false (has_error "L005" diags)

let test_l006_capacity () =
  let b = B.create "huge" in
  let big = B.bram b "big" Dtype.float32 [ 2_000_000 ] in
  let out = B.reg b "out" Dtype.float32 in
  let top =
    B.reduce_pipe ~label:"p" ~counters:[ ("i", 0, 2_000_000, 1) ] ~op:Op.Add ~out (fun pb ->
        B.load pb big [ B.iter "i" ])
  in
  let diags = Lint.check (B.finish b ~top) in
  check_bool "L006 device-overflow error" true (has_error "L006" diags);
  check_bool "L006 tiling warning" true
    (List.exists (fun g -> g.Diag.code = "L006" && g.Diag.severity = Diag.Warning) diags)

let test_l007_queue_protocol () =
  let push_only = Lint.check (queue_design ~depth:8 ~push:true ~pop:false) in
  check_bool "push-without-pop warning" true (has_code "L007" push_only);
  check_bool "push-without-pop not error" false (has_error "L007" push_only);
  let pop_only = Lint.check (queue_design ~depth:8 ~push:false ~pop:true) in
  check_bool "pop-without-push error" true (has_error "L007" pop_only);
  let zero = Lint.check (queue_design ~depth:0 ~push:true ~pop:true) in
  check_bool "zero-capacity error" true (has_error "L007" zero)

let test_l008_degenerate_loops () =
  let build ~counters ~par =
    let b = B.create "loops" in
    let out = B.reg b "out" Dtype.float32 in
    let top = B.reduce_pipe ~label:"p" ~counters ~par ~op:Op.Add ~out (fun _ -> B.const 1.0) in
    B.finish b ~top
  in
  let nondiv = Passes.loop_pass (build ~counters:[ ("i", 0, 10, 1) ] ~par:4) in
  check_bool "non-divisor info" true
    (List.exists (fun g -> g.Diag.code = "L008" && g.Diag.severity = Diag.Info) nondiv);
  let idle = Passes.loop_pass (build ~counters:[ ("i", 0, 10, 1) ] ~par:16) in
  check_bool "par > trip warning" true
    (List.exists (fun g -> g.Diag.code = "L008" && g.Diag.severity = Diag.Warning) idle);
  let zero = Passes.loop_pass (build ~counters:[ ("i", 0, 0, 1) ] ~par:1) in
  check_bool "zero-trip warning" true
    (List.exists (fun g -> g.Diag.code = "L008" && g.Diag.severity = Diag.Warning) zero)

(* ------------------------- framework ------------------------------- *)

let test_registry () =
  let ps = Lint.passes () in
  check_int "thirteen passes" 13 (List.length ps);
  Alcotest.(check (list string))
    "codes in order"
    [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L007"; "L008"; "L009"; "L010"; "L011";
      "L012"; "L013" ]
    (List.map (fun p -> p.Lint.code) ps);
  Alcotest.(check (list string))
    "proof codes"
    [ "L009"; "L010"; "L011"; "L012"; "L013" ]
    Lint.proof_codes;
  (* [only] restricts the registry without touching the validator. *)
  let d = race_design () in
  check_bool "only=L001 keeps the race" true (has_code "L001" (Lint.check ~only:[ "L001" ] d));
  check_bool "only=L004 drops it" false (has_code "L001" (Lint.check ~only:[ "L004" ] d))

let test_sorted_and_deduped () =
  let diags = Lint.check (race_design ()) in
  let ranks = List.map (fun g -> Diag.severity_rank g.Diag.severity) diags in
  check_bool "sorted by severity" true (List.sort compare ranks = ranks);
  check_int "no duplicates" (List.length diags)
    (List.length (List.sort_uniq Diag.compare diags))

let test_exit_codes () =
  check_int "clean" 0 (Lint.exit_code []);
  let warn = Diag.make ~code:"L004" ~severity:Diag.Warning "w" in
  let info = Diag.make ~code:"L008" ~severity:Diag.Info "i" in
  let err = Diag.make ~code:"L001" ~severity:Diag.Error "e" in
  check_int "warnings pass by default" 0 (Lint.exit_code [ warn; info ]);
  check_int "warnings fail under --fail-on warning" 1
    (Lint.exit_code ~fail_on:Diag.Warning [ warn; info ]);
  check_int "info fails only under --fail-on info" 1 (Lint.exit_code ~fail_on:Diag.Info [ info ]);
  check_int "info passes under --fail-on warning" 0
    (Lint.exit_code ~fail_on:Diag.Warning [ info ]);
  check_int "warning fails under --fail-on info" 1 (Lint.exit_code ~fail_on:Diag.Info [ warn ]);
  check_int "empty is clean under --fail-on info" 0 (Lint.exit_code ~fail_on:Diag.Info []);
  check_int "errors always 2" 2 (Lint.exit_code ~fail_on:Diag.Info [ err; warn ])

let test_render_text () =
  let d = race_design () in
  let text = Lint.render_text ~design:d (Lint.check d) in
  check_bool "names design" true
    (String.length text > 0 && String.sub text 0 4 = "race");
  check_bool "mentions code" true (contains ~needle:"error[L001]" text)

let test_render_json () =
  let d = race_design () in
  let json = Lint.render_json ~design:d (Lint.check d) in
  check_bool "object" true (json.[0] = '{' && json.[String.length json - 1] = '}');
  check_bool "has diagnostics array" true (contains ~needle:"\"diagnostics\": [" json);
  check_bool "has code field" true (contains ~needle:"\"code\": \"L001\"" json);
  (* Escaping: quotes and newlines must not leak into the JSON raw. *)
  Alcotest.(check string)
    "escape" "a\\\"b\\\\c\\nd" (Diag.json_escape "a\"b\\c\nd")

(* A design whose name carries quotes, newlines and a raw control char must
   still render to JSON with every byte escaped. *)
let test_render_json_escaping () =
  let b = B.create "quo\"te\n\001name" in
  let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
  let out = B.reg b "out" Dtype.float32 in
  let top =
    B.reduce_pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] ~op:Op.Add ~out (fun pb ->
        B.load pb xt [ B.iter "i" ])
  in
  let d = B.finish b ~top in
  let json = Lint.render_json ~design:d (Lint.check d) in
  check_bool "quote escaped" true (contains ~needle:"quo\\\"te" json);
  check_bool "newline escaped" true (contains ~needle:"\\n" json);
  check_bool "control char escaped" true (contains ~needle:"\\u0001" json);
  check_bool "no raw control bytes" true
    (not (String.exists (fun c -> Char.code c < 32) json))

(* ------------------------- benchmarks are clean -------------------- *)

let test_benchmarks_error_clean () =
  List.iter
    (fun (a : App.t) ->
      let sizes = a.App.paper_sizes in
      let design = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
      Alcotest.(check (list string))
        (a.App.name ^ " has no error-level diagnostics")
        []
        (List.map Diag.to_string (Lint.errors (Lint.check design))))
    Registry.all

(* ------------------------- DSE integration ------------------------- *)

let test_explore_prunes_lint_errors () =
  let est = Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 () in
  let space = Space.make ~name:"toy" ~dims:[ ("racy", [ 0; 1 ]) ] () in
  let clean () =
    let b = B.create "clean" in
    let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
    let out = B.reg b "out" Dtype.float32 in
    let top =
      B.reduce_pipe ~label:"sum" ~counters:[ ("i", 0, 16, 1) ] ~op:Op.Add ~out (fun pb ->
          B.load pb xt [ B.iter "i" ])
    in
    B.finish b ~top
  in
  let generate p = if List.assoc "racy" p = 1 then race_design () else clean () in
  let r =
    Explore.run
      Explore.Config.(default |> with_seed 3 |> with_max_points 10)
      (Eval.create est) ~space ~generate
  in
  check_int "sampled both points" 2 r.Explore.sampled;
  check_int "racy point pruned" 1 r.Explore.lint_pruned;
  check_int "clean point evaluated" 1 (List.length r.Explore.evaluations);
  let r' =
    Explore.run
      Explore.Config.(default |> with_seed 3 |> with_max_points 10 |> with_lint false)
      (Eval.create est) ~space ~generate
  in
  check_int "lint off evaluates everything" 2 (List.length r'.Explore.evaluations);
  check_int "lint off prunes nothing" 0 r'.Explore.lint_pruned

let () =
  Alcotest.run "lint"
    [
      ( "passes",
        [
          Alcotest.test_case "L001 write-write race" `Quick test_l001_write_write;
          Alcotest.test_case "L001 read-write race" `Quick test_l001_read_write;
          Alcotest.test_case "L002 metapipe hazard" `Quick test_l002_metapipe_hazard;
          Alcotest.test_case "L003 banking mismatch" `Quick test_l003_banking_mismatch;
          Alcotest.test_case "L004 dead memory" `Quick test_l004_dead_memory;
          Alcotest.test_case "L005 dead value" `Quick test_l005_dead_value;
          Alcotest.test_case "L006 capacity" `Quick test_l006_capacity;
          Alcotest.test_case "L007 queue protocol" `Quick test_l007_queue_protocol;
          Alcotest.test_case "L008 degenerate loops" `Quick test_l008_degenerate_loops;
        ] );
      ( "framework",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "sorted and deduped" `Quick test_sorted_and_deduped;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "render text" `Quick test_render_text;
          Alcotest.test_case "render json" `Quick test_render_json;
          Alcotest.test_case "render json escaping" `Quick test_render_json_escaping;
        ] );
      ( "benchmarks",
        [ Alcotest.test_case "all error-clean at paper sizes" `Quick test_benchmarks_error_clean ] );
      ( "dse",
        [ Alcotest.test_case "lint pruning in Explore.run" `Quick test_explore_prunes_lint_errors ] );
    ]
