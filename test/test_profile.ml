(* Contention-profiler suite: bounded histogram reservoirs, multi-domain
   telemetry merging with per-track identity, the JSONL re-import path,
   and the sweep time-attribution record — including the guarantee that
   profiling never perturbs results or checkpoint bytes. Runs under both
   `dune runtest` and the focused `dune build @profile` pre-merge alias. *)

module Obs = Dhdl_obs.Obs
module Explore = Dhdl_dse.Explore
module Profile = Dhdl_dse.Profile
module Eval = Dhdl_dse.Eval
module Estimator = Dhdl_model.Estimator
module App = Dhdl_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fake = ref 0.0
let advance_ms ms = fake := !fake +. (ms /. 1000.0)

let with_sink ?hist_cap ?(fake_clock = false) f =
  fake := 0.0;
  if fake_clock then Obs.enable ~clock:(fun () -> !fake) ?hist_cap ()
  else Obs.enable ?hist_cap ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------- bounded reservoirs ------------------------- *)

let test_reservoir_cap () =
  with_sink ~hist_cap:8 @@ fun () ->
  for i = 1 to 100 do
    Obs.observe "h" (float_of_int i)
  done;
  let snap = Obs.snapshot () in
  let kept = List.assoc "h" snap.Obs.snap_hists in
  check_int "kept samples bounded by cap" 8 (Array.length kept);
  check_int "true total exact" 100 (List.assoc "h" snap.Obs.snap_hist_totals);
  (* Every kept sample is a genuine member of the stream. *)
  Array.iter (fun v -> check_bool "kept sample from stream" true (v >= 1.0 && v <= 100.0)) kept;
  let jsonl = Obs.to_jsonl snap in
  check_bool "jsonl exports true count" true (contains jsonl "\"count\":100");
  check_bool "jsonl exports kept size" true (contains jsonl "\"sampled\":8")

let test_reservoir_below_cap_keeps_all () =
  with_sink ~hist_cap:8 @@ fun () ->
  List.iter (Obs.observe "h") [ 3.0; 1.0; 4.0 ];
  let snap = Obs.snapshot () in
  Alcotest.(check (array (float 1e-9)))
    "insertion order, nothing dropped" [| 3.0; 1.0; 4.0 |]
    (List.assoc "h" snap.Obs.snap_hists);
  check_int "total equals kept" 3 (List.assoc "h" snap.Obs.snap_hist_totals)

let test_reservoir_deterministic () =
  let run () =
    with_sink ~hist_cap:8 @@ fun () ->
    for i = 1 to 1000 do
      Obs.observe "h" (float_of_int i)
    done;
    List.assoc "h" (Obs.snapshot ()).Obs.snap_hists
  in
  (* The reservoir RNG is seeded from the histogram name, so two identical
     streams keep identical samples — summaries are reproducible. *)
  Alcotest.(check (array (float 1e-9))) "same stream, same reservoir" (run ()) (run ())

let test_reservoir_merges_across_buffers () =
  with_sink ~hist_cap:8 @@ fun () ->
  Obs.with_domain_buffer ~track:1 (fun () ->
      for i = 1 to 100 do
        Obs.observe "h" (float_of_int i)
      done);
  Obs.with_domain_buffer ~track:2 (fun () ->
      for i = 101 to 200 do
        Obs.observe "h" (float_of_int i)
      done);
  let snap = Obs.snapshot () in
  check_bool "kept bounded" true (Array.length (List.assoc "h" snap.Obs.snap_hists) <= 8);
  check_int "true total survives both merges" 200 (List.assoc "h" snap.Obs.snap_hist_totals)

(* ---------------------- multi-domain telemetry ------------------------ *)

let domains = 4
let per_domain = 500

let concurrent_snapshot () =
  with_sink @@ fun () ->
  let doms =
    List.init domains (fun k ->
        Domain.spawn (fun () ->
            Obs.with_domain_buffer ~track:(k + 1) (fun () ->
                for i = 1 to per_domain do
                  Obs.count "mt.events";
                  Obs.observe "mt.val" (float_of_int i);
                  Obs.span "mt.span" (fun () -> ())
                done)))
  in
  List.iter Domain.join doms;
  Obs.snapshot ()

let test_concurrent_merge_no_loss () =
  let snap = concurrent_snapshot () in
  check_int "counter total: no lost or duplicated increments" (domains * per_domain)
    (List.assoc "mt.events" snap.Obs.snap_counters);
  check_int "histogram true total exact" (domains * per_domain)
    (List.assoc "mt.val" snap.Obs.snap_hist_totals);
  check_int "every span flushed exactly once" (domains * per_domain)
    (List.length snap.Obs.snap_spans)

let test_concurrent_merge_tracks () =
  let snap = concurrent_snapshot () in
  List.iter
    (fun k ->
      let track = k + 1 in
      let spans = List.filter (fun sp -> sp.Obs.sp_track = track) snap.Obs.snap_spans in
      check_int (Printf.sprintf "track %d span count" track) per_domain (List.length spans);
      (* Sequence numbers are assigned at flush under the sink lock, so
         within a track they are strictly increasing in snapshot order. *)
      ignore
        (List.fold_left
           (fun prev sp ->
             check_bool "per-track seq strictly monotone" true (sp.Obs.sp_seq > prev);
             sp.Obs.sp_seq)
           (-1) spans))
    (List.init domains Fun.id)

let test_concurrent_equals_single_domain () =
  let par = concurrent_snapshot () in
  let seq =
    with_sink @@ fun () ->
    for _ = 1 to domains do
      for i = 1 to per_domain do
        Obs.count "mt.events";
        Obs.observe "mt.val" (float_of_int i)
      done
    done;
    Obs.snapshot ()
  in
  check_int "counter total matches a single-domain run"
    (List.assoc "mt.events" seq.Obs.snap_counters)
    (List.assoc "mt.events" par.Obs.snap_counters);
  check_int "histogram total matches a single-domain run"
    (List.assoc "mt.val" seq.Obs.snap_hist_totals)
    (List.assoc "mt.val" par.Obs.snap_hist_totals)

(* Tracks are parameters of [with_domain_buffer], so the per-lane trace
   layout is checked deterministically under a fake clock without racing
   real domains. *)
let test_chrome_trace_tracks_golden () =
  let snap =
    with_sink ~fake_clock:true @@ fun () ->
    Obs.span "collect" (fun () -> advance_ms 1.0);
    Obs.with_domain_buffer ~track:1 (fun () -> Obs.span "point" (fun () -> advance_ms 2.0));
    Obs.with_domain_buffer ~track:2 (fun () -> Obs.span "point" (fun () -> advance_ms 3.0));
    Obs.snapshot ()
  in
  let expected =
    "{\"traceEvents\":[\n"
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dhdl\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"main\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"worker 1\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"worker 2\"}},\n"
    ^ "{\"name\":\"collect\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":1000.000,\"args\":{}},\n"
    ^ "{\"name\":\"point\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000.000,\"dur\":2000.000,\"args\":{}},\n"
    ^ "{\"name\":\"point\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":3000.000,\"dur\":3000.000,\"args\":{}}\n"
    ^ "],\"displayTimeUnit\":\"ms\"}\n"
  in
  check_string "per-domain tid lanes" expected (Obs.to_chrome_trace snap)

(* ------------------------- JSONL re-import ---------------------------- *)

let test_summary_from_jsonl_roundtrip () =
  let snap =
    with_sink ~fake_clock:true @@ fun () ->
    Obs.span "work" (fun () -> advance_ms 2.0);
    Obs.count ~by:3 "c";
    Obs.gauge "g" 1.5;
    List.iter (Obs.observe "lat") [ 1.0; 2.0; 9.0 ];
    Obs.snapshot ()
  in
  let live = Obs.render_summary snap in
  match Obs.summary_of_jsonl (Obs.to_jsonl snap) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok rendered ->
    (* The post-hoc summary reproduces every aggregate table of the live
       one (span rollups rebuild from the exported span events). *)
    check_string "summary identical to live render" live rendered

let test_summary_from_jsonl_rejects_garbage () =
  (match Obs.summary_of_jsonl "{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\nnot json\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg -> check_bool "error names the line" true (contains msg "line 2"));
  match Obs.summary_of_jsonl "{\"type\":\"histogram\",\"name\":\"h\"}\n" with
  | Ok _ -> Alcotest.fail "missing fields accepted"
  | Error msg -> check_bool "error mentions the field" true (contains msg "line 1")

(* ------------------------- sweep attribution -------------------------- *)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

let run_sweep ?checkpoint ?(jobs = 1) ?(profile = true) ?(max_points = 60) est =
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 65_536) ] in
  let cfg = Explore.Config.make ~seed:11 ~max_points ?checkpoint ~jobs ~profile () in
  Explore.run cfg (Eval.create est)
    ~space:(app.App.space sizes)
    ~generate:(fun p -> app.App.generate ~sizes ~params:p)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_profile_" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let attr_of (r : Explore.result) =
  match r.Explore.attribution with
  | Some a -> a
  | None -> Alcotest.fail "profiled sweep returned no attribution"

let check_fractions attr =
  let sum =
    Profile.work_fraction attr +. Profile.contention_fraction attr +. Profile.stall_fraction attr
  in
  Alcotest.(check (float 1e-9)) "work + contention + stall = 1" 1.0 sum

let test_off_by_default () =
  let r = run_sweep ~profile:false (Lazy.force estimator) in
  check_bool "no attribution unless asked" true (r.Explore.attribution = None)

let test_sequential_attribution () =
  (* Note: the Obs sink is disabled here — attribution must not depend on
     telemetry being on. *)
  let r = run_sweep (Lazy.force estimator) in
  let attr = attr_of r in
  check_int "one worker at jobs=1" 1 (List.length attr.Profile.workers);
  let w = List.hd attr.Profile.workers in
  check_int "worker owns every processed point" r.Explore.processed w.Profile.w_points;
  check_bool "no channel at jobs=1" true (w.Profile.w_send_block_s = 0.0);
  check_bool "stages measured" true
    (w.Profile.w_generate_s +. w.Profile.w_analyze_s +. w.Profile.w_estimate_s > 0.0);
  check_fractions attr

let test_parallel_attribution () =
  let r = run_sweep ~jobs:3 (Lazy.force estimator) in
  let attr = attr_of r in
  check_int "one record per worker domain" 3 (List.length attr.Profile.workers);
  check_int "cursor claims partition the points" r.Explore.processed
    (List.fold_left (fun acc w -> acc + w.Profile.w_points) 0 attr.Profile.workers);
  check_bool "collector wall measured" true (attr.Profile.collector.Profile.c_wall_s > 0.0);
  check_bool "reorder occupancy sane" true
    (attr.Profile.max_reorder_occupancy >= 0
    && attr.Profile.max_reorder_occupancy <= r.Explore.processed);
  check_fractions attr

let test_profiling_keeps_checkpoints_bit_identical () =
  let est = Lazy.force estimator in
  let plain = tmp "plain.jsonl" and p1 = tmp "prof1.jsonl" and p4 = tmp "prof4.jsonl" in
  let a = run_sweep ~checkpoint:plain ~profile:false est in
  let b = run_sweep ~checkpoint:p1 est in
  let c = run_sweep ~checkpoint:p4 ~jobs:4 est in
  check_bool "evaluations unchanged by profiling" true
    (a.Explore.evaluations = b.Explore.evaluations
    && b.Explore.evaluations = c.Explore.evaluations);
  check_string "profiled jobs=1 checkpoint matches unprofiled" (read_file plain) (read_file p1);
  check_string "profiled jobs=4 checkpoint matches unprofiled" (read_file plain) (read_file p4)

let test_attribution_with_obs_instrumentation () =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let r = run_sweep ~jobs:2 (Lazy.force estimator) in
  let attr = attr_of r in
  check_fractions attr;
  (* With both profiling and the sink on, cursor claims surface as
     per-domain counters that partition the processed points. *)
  check_int "claim counters partition the points" r.Explore.processed
    (Obs.counter_value "dse.claims.w1" + Obs.counter_value "dse.claims.w2");
  let snap = Obs.snapshot () in
  check_bool "wait histograms recorded" true
    (List.mem_assoc "dse.chan.recv_wait_us" snap.Obs.snap_hists);
  check_bool "queue-depth gauge recorded" true
    (List.mem_assoc "dse.chan.max_queue_depth" snap.Obs.snap_gauges)

let test_attribution_json () =
  let r = run_sweep ~jobs:2 (Lazy.force estimator) in
  let json = Profile.to_json (attr_of r) in
  List.iter
    (fun needle -> check_bool ("json has " ^ needle) true (contains json needle))
    [ "\"jobs\":2"; "\"work_frac\":"; "\"contention_frac\":"; "\"stall_frac\":";
      "\"top_contender\":"; "\"workers\":["; "\"collector\":{"; "\"max_queue_depth\":";
      "\"max_reorder_occupancy\":" ]

let () =
  Alcotest.run "profile"
    [
      ( "reservoir",
        [
          Alcotest.test_case "cap and true total" `Quick test_reservoir_cap;
          Alcotest.test_case "below cap keeps all" `Quick test_reservoir_below_cap_keeps_all;
          Alcotest.test_case "deterministic" `Quick test_reservoir_deterministic;
          Alcotest.test_case "merges across buffers" `Quick test_reservoir_merges_across_buffers;
        ] );
      ( "multi-domain",
        [
          Alcotest.test_case "no lost or duplicated events" `Quick test_concurrent_merge_no_loss;
          Alcotest.test_case "per-track identity and order" `Quick test_concurrent_merge_tracks;
          Alcotest.test_case "totals equal single-domain run" `Quick
            test_concurrent_equals_single_domain;
          Alcotest.test_case "chrome trace lanes golden" `Quick test_chrome_trace_tracks_golden;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "summary roundtrip" `Quick test_summary_from_jsonl_roundtrip;
          Alcotest.test_case "malformed input rejected" `Quick
            test_summary_from_jsonl_rejects_garbage;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "off by default" `Quick test_off_by_default;
          Alcotest.test_case "sequential split" `Quick test_sequential_attribution;
          Alcotest.test_case "parallel split" `Quick test_parallel_attribution;
          Alcotest.test_case "checkpoints bit-identical" `Quick
            test_profiling_keeps_checkpoints_bit_identical;
          Alcotest.test_case "obs instrumentation" `Quick test_attribution_with_obs_instrumentation;
          Alcotest.test_case "json payload" `Quick test_attribution_json;
        ] );
    ]
