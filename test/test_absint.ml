(* Tests for the Dhdl_absint abstract-interpretation framework: the interval
   and affine domains, the fixpoint engine, bounds proofs (with concrete
   refutation witnesses), banking-scheme search (with concrete conflicting
   lane pairs), stage-liveness double-buffering facts, the L009-L011 lint
   passes they back, and the DSE [absint_pruned] wiring.

   The registry sweep at the end is the infer_banking cross-check: every
   sampled legal point of every benchmark space must either prove its
   banked accesses conflict-free or pinpoint the one known-conflicting
   configuration (kmeans with parDist wider than the cluster count). *)

module Ir = Dhdl_ir.Ir
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Diag = Dhdl_ir.Diag
module Interval = Dhdl_absint.Interval
module Affine = Dhdl_absint.Affine
module Liveness = Dhdl_absint.Liveness
module Absint = Dhdl_absint.Absint
module Lint = Dhdl_lint.Lint
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Space = Dhdl_dse.Space
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Estimator = Dhdl_model.Estimator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let has_error code diags =
  List.exists (fun g -> g.Diag.code = code && g.Diag.severity = Diag.Error) diags

let has_warning code diags =
  List.exists (fun g -> g.Diag.code = code && g.Diag.severity = Diag.Warning) diags

let message_of code diags =
  match List.find_opt (fun g -> g.Diag.code = code) diags with
  | Some g -> g.Diag.message
  | None -> Alcotest.failf "no %s diagnostic emitted" code

let mem_info (r : Absint.report) name =
  match List.find_opt (fun (m : Absint.mem_info) -> m.Absint.mi_mem.Ir.mem_name = name) r.Absint.r_mems with
  | Some mi -> mi
  | None -> Alcotest.failf "memory %s missing from report" name

(* ------------------------- domains --------------------------------- *)

let test_interval_ops () =
  let i05 = Interval.of_bounds 0 5 and i34 = Interval.of_bounds 3 4 in
  check_bool "within" true (Interval.within ~lo:0 ~hi:10 i05);
  check_bool "not within" false (Interval.within ~lo:0 ~hi:4 i05);
  check_bool "bottom vacuously within" true (Interval.within ~lo:0 ~hi:0 Interval.bottom);
  (match Interval.bounds (Interval.add i05 i34) with
  | Some (lo, hi) ->
    check_int "add lo" 3 lo;
    check_int "add hi" 9 hi
  | None -> Alcotest.fail "add collapsed to bottom");
  (match Interval.bounds (Interval.mul i05 (Interval.of_bounds (-2) (-2))) with
  | Some (lo, hi) ->
    check_int "mul lo" (-10) lo;
    check_int "mul hi" 0 hi
  | None -> Alcotest.fail "mul collapsed to bottom");
  (match Interval.bounds (Interval.join i05 (Interval.of_bounds 8 9)) with
  | Some (lo, hi) ->
    check_int "join lo" 0 lo;
    check_int "join hi" 9 hi
  | None -> Alcotest.fail "join collapsed to bottom");
  (* widening jumps a growing bound to infinity, so fixpoints terminate *)
  check_bool "widen kills growing hi" false
    (Interval.within ~lo:0 ~hi:1000 (Interval.widen i05 (Interval.of_bounds 0 6)));
  let c = { Ir.ctr_name = "i"; ctr_start = 2; ctr_stop = 11; ctr_step = 3 } in
  (match Interval.bounds (Interval.of_counter c) with
  | Some (lo, hi) ->
    check_int "counter lo" 2 lo;
    check_int "counter hi is last value, not stop" 8 hi
  | None -> Alcotest.fail "counter interval bottom");
  check_bool "empty counter is bottom" true
    (Interval.is_bottom (Interval.of_counter { c with Ir.ctr_stop = 2 }))

let test_affine_forms () =
  let c = { Ir.ctr_name = "i"; ctr_start = 0; ctr_stop = 8; ctr_step = 1 } in
  let i = Affine.of_counter c in
  let two_i_plus_3 = Affine.add (Affine.mul (Affine.of_const 2.0) i) (Affine.of_const 3.0) in
  (match Affine.exact two_i_plus_3 with
  | Some (c0, [ ("i", 2) ]) -> check_int "constant term" 3 c0
  | _ -> Alcotest.fail "2*i+3 not recognized as exact affine");
  (* i*i is not affine: the form degrades to a residue, never a wrong answer *)
  check_bool "i*i inexact" true (Affine.exact (Affine.mul i i) = None);
  check_bool "i*i still depends on i" true (Affine.depends_on_any [ "i" ] (Affine.mul i i));
  check_bool "constant independent of i" false (Affine.depends_on_any [ "i" ] (Affine.of_const 7.0));
  check_bool "top depends on everything" true (Affine.depends_on_any [ "zz" ] Affine.top)

(* ------------------------- fixtures -------------------------------- *)

(* One BRAM, one pipe storing xT[i] for i in [0, stop). *)
let linear_store_design ?(name = "lin") ?(par = 1) ~words ~stop () =
  let b = B.create name in
  let xt = B.bram b "xT" Dtype.float32 [ words ] in
  let body =
    B.pipe ~label:"fill" ~counters:[ ("i", 0, stop, 1) ] ~par (fun p ->
        B.store p xt [ B.iter "i" ] (B.const 1.0))
  in
  B.finish b ~top:(B.sequential_block ~label:"main" [ body ])

let test_engine_register_fixpoint () =
  (* An accumulator register feeding itself forces iteration to a fixpoint:
     the engine must terminate via widening and still produce a report. *)
  let b = B.create "fix" in
  let acc = B.reg b "acc" Dtype.float32 in
  let body =
    B.pipe ~label:"inc" ~counters:[ ("i", 0, 8, 1) ] (fun p ->
        B.write_reg p acc (B.add p (B.read_reg p acc) (B.const 1.0)))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ body ]) in
  let r = Absint.analyze d in
  check_bool "iterated at least twice" true (r.Absint.r_rounds >= 2);
  check_bool "terminated well before the cap" true (r.Absint.r_rounds < 50);
  check_bool "self-incrementing register is not an error" true (Absint.clean r)

(* ------------------------- bounds ---------------------------------- *)

let test_inbounds_proved () =
  let d = linear_store_design ~words:16 ~stop:16 () in
  let r = Absint.analyze d in
  let mi = mem_info r "xT" in
  List.iter
    (fun (a : Absint.access_info) ->
      check_bool "access proved in bounds" true (a.Absint.ai_bounds = Absint.Bounds_proved))
    mi.Absint.mi_accesses;
  check_int "no diagnostics" 0 (List.length (Absint.diags r));
  check_bool "clean" true (Absint.clean r)

let test_oob_store_witness () =
  (* i runs to 16 inclusive but xT has 16 words: refuted with the exact
     iteration vector that falls off the end. *)
  let d = linear_store_design ~words:16 ~stop:17 () in
  let r = Absint.analyze d in
  let mi = mem_info r "xT" in
  (match (List.hd mi.Absint.mi_accesses).Absint.ai_bounds with
  | Absint.Bounds_refuted w ->
    check_int "offending dimension" 0 w.Absint.w_dim;
    check_int "offending index value" 16 w.Absint.w_value;
    check_int "valid low" 0 w.Absint.w_lo;
    check_int "valid high" 15 w.Absint.w_hi;
    check_bool "witness iteration vector" true (w.Absint.w_iters = [ ("i", 16) ])
  | _ -> Alcotest.fail "out-of-bounds store not refuted");
  let ds = Absint.diags r in
  check_bool "L009 error emitted" true (has_error "L009" ds);
  let msg = message_of "L009" ds in
  check_bool "names the memory" true (contains ~needle:"out-of-bounds access on xT" msg);
  check_bool "cites the witness iteration" true (contains ~needle:"i=16" msg);
  check_bool "not clean" false (Absint.clean r)

let test_oob_address_expression () =
  (* The address is i+1, so the last in-range iteration i=15 overflows:
     the witness must name the iteration, not the index value. *)
  let b = B.create "expr" in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let body =
    B.pipe ~label:"shift" ~counters:[ ("i", 0, 16, 1) ] (fun p ->
        let j = B.add p (B.iter "i") (B.const 1.0) in
        B.store p xt [ j ] (B.const 0.0))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ body ]) in
  let r = Absint.analyze d in
  let mi = mem_info r "xT" in
  match (List.hd mi.Absint.mi_accesses).Absint.ai_bounds with
  | Absint.Bounds_refuted w ->
    check_int "index value 16" 16 w.Absint.w_value;
    check_bool "reached at i=15" true (w.Absint.w_iters = [ ("i", 15) ])
  | _ -> Alcotest.fail "i+1 overflow not refuted"

let test_tile_divisibility () =
  let b = B.create "tiles" in
  let src = B.offchip b "src" Dtype.float32 [ 10 ] in
  let dst = B.bram b "dst" Dtype.float32 [ 4 ] in
  let tl = B.tile_load ~src ~dst ~offsets:[ B.const 0.0 ] () in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ tl ]) in
  let r = Absint.analyze d in
  let ds = Absint.diags r in
  check_bool "L009 error" true (has_error "L009" ds);
  check_bool "cites the divisibility failure" true
    (contains ~needle:"does not divide" (message_of "L009" ds))

let test_tile_offset_overrun () =
  (* Offsets 0, 8, 16 over a 16-word extent with an 8-word tile: the last
     tile starts at 16 but the highest legal base is 8. *)
  let b = B.create "overrun" in
  let src = B.offchip b "src" Dtype.float32 [ 16 ] in
  let dst = B.bram b "dst" Dtype.float32 [ 8 ] in
  let top =
    B.metapipe ~label:"outer" ~counters:[ ("t", 0, 24, 8) ]
      [ B.tile_load ~src ~dst ~offsets:[ B.iter "t" ] () ]
  in
  let d = B.finish b ~top in
  let r = Absint.analyze d in
  let ds = Absint.diags r in
  check_bool "L009 error" true (has_error "L009" ds);
  check_bool "cites the tile offset" true (contains ~needle:"tile offset" (message_of "L009" ds))

let test_data_dependent_address_unknown () =
  (* An indirect access (address loaded from another BRAM) is beyond both
     domains: the analysis must answer "unknown", never a false refutation. *)
  let b = B.create "indirect" in
  let idx = B.bram b "idx" Dtype.int32 [ 16 ] in
  let data = B.bram b "data" Dtype.float32 [ 16 ] in
  let body =
    B.pipe ~label:"gather" ~counters:[ ("i", 0, 16, 1) ] (fun p ->
        let j = B.load p idx [ B.iter "i" ] in
        B.store p data [ j ] (B.const 1.0))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ body ]) in
  let r = Absint.analyze d in
  let mi = mem_info r "data" in
  let st = List.find (fun (a : Absint.access_info) -> a.Absint.ai_write) mi.Absint.mi_accesses in
  (match st.Absint.ai_bounds with
  | Absint.Bounds_unknown _ -> ()
  | Absint.Bounds_proved -> Alcotest.fail "indirect address wrongly proved"
  | Absint.Bounds_refuted _ -> Alcotest.fail "indirect address wrongly refuted");
  check_bool "unknown is not an error" true (Absint.clean r)

(* ------------------------- banking --------------------------------- *)

let test_bank_conflict_linear () =
  let d = linear_store_design ~par:4 ~words:16 ~stop:16 () in
  let xt = List.find (fun m -> m.Ir.mem_name = "xT") d.Ir.d_mems in
  check_bool "infer_banking banked for the vector width" true (xt.Ir.mem_banks >= 4);
  check_bool "inferred banking proves out" true (Absint.clean (Absint.analyze d));
  (* Sabotage the banking: two banks cannot serve four adjacent lanes. *)
  xt.Ir.mem_banks <- 2;
  let r = Absint.analyze d in
  let mi = mem_info r "xT" in
  (match (List.hd mi.Absint.mi_accesses).Absint.ai_banks with
  | Absint.Bank_conflict k ->
    check_int "lane a" 0 k.Absint.k_lane_a;
    check_int "lane b" 2 k.Absint.k_lane_b;
    check_bool "distinct words on one bank" true (k.Absint.k_index_a <> k.Absint.k_index_b)
  | _ -> Alcotest.fail "under-banked vector access not refuted");
  let ds = Absint.diags r in
  check_bool "L010 error" true (has_error "L010" ds);
  check_bool "cites both lanes" true
    (contains ~needle:"lanes 0 and 2" (message_of "L010" ds))

let test_stride_two_needs_block_cyclic () =
  (* Addresses 2i hit only even words: cyclic(4) serves at most 2 distinct
     banks, but block-cyclic with block 2 restores full throughput. The
     solver must find that scheme, not report a conflict. *)
  let b = B.create "stride" in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let body =
    B.pipe ~label:"even" ~counters:[ ("i", 0, 8, 1) ] ~par:4 (fun p ->
        let j = B.mul p (B.const 2.0) (B.iter "i") in
        B.store p xt [ j ] (B.const 0.0))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ body ]) in
  let r = Absint.analyze d in
  let mi = mem_info r "xT" in
  check_bool "conflict-free" true (Absint.clean r);
  check_bool "found the block-cyclic scheme" true
    (mi.Absint.mi_scheme = Some "block-cyclic(4, block 2)")

let test_broadcast_read_and_write () =
  let mk write =
    let b = B.create "bcast" in
    let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
    let out = B.reg b "out" Dtype.float32 in
    let body =
      B.pipe ~label:"lanes" ~counters:[ ("i", 0, 16, 1) ] ~par:4 (fun p ->
          if write then B.store p xt [ B.const 0.0 ] (B.iter "i")
          else B.write_reg p out (B.load p xt [ B.const 0.0 ]))
    in
    Absint.analyze (B.finish b ~top:(B.sequential_block ~label:"main" [ body ]))
  in
  (* Four lanes reading one word is a broadcast: always servable. *)
  check_bool "broadcast read proved" true (Absint.clean (mk false));
  (* Four lanes writing one word is a structural hazard whatever the banks. *)
  let r = mk true in
  let ds = Absint.diags r in
  check_bool "write broadcast refuted" true (has_error "L010" ds);
  check_bool "same word cited for both lanes" true
    (contains ~needle:"[0] and [0]" (message_of "L010" ds))

let test_grid_access_blocked_scheme () =
  (* kmeans' centroid read: counters (dd, c), address [c; dd], eight lanes.
     No cyclic scheme serves it, but splitting banks across the two
     dimensions (4 x 2) does. *)
  let b = B.create "grid" in
  let ct = B.bram b "centT" Dtype.float32 [ 4; 8 ] in
  let out = B.reg b "out" Dtype.float32 in
  let body =
    B.pipe ~label:"dist" ~counters:[ ("dd", 0, 8, 1); ("c", 0, 4, 1) ] ~par:8 (fun p ->
        B.write_reg p out (B.load p ct [ B.iter "c"; B.iter "dd" ]))
  in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ body ]) in
  let r = Absint.analyze d in
  let mi = mem_info r "centT" in
  check_bool "grid access proved" true (Absint.clean r);
  (match mi.Absint.mi_scheme with
  | Some s -> check_bool "multidimensional scheme" true (contains ~needle:"dims(" s)
  | None -> Alcotest.fail "no banking scheme found for the grid access")

let test_stream_bank_conflict () =
  let b = B.create "stream" in
  let src = B.offchip b "src" Dtype.float32 [ 64 ] in
  let dst = B.bram b "dst" Dtype.float32 [ 16 ] in
  let tl = B.tile_load ~src ~dst ~offsets:[ B.const 0.0 ] ~par:4 () in
  let d = B.finish b ~top:(B.sequential_block ~label:"main" [ tl ]) in
  check_bool "inferred banking serves the stream" true (Absint.clean (Absint.analyze d));
  let dstm = List.find (fun m -> m.Ir.mem_name = "dst") d.Ir.d_mems in
  dstm.Ir.mem_banks <- 2;
  let r = Absint.analyze d in
  check_bool "under-banked stream refuted" true (has_error "L010" (Absint.diags r))

(* kmeans' distance pipe writes distB[c] under par lanes that sweep the dd
   counter too: once parDist exceeds k, two lanes of one vector write the
   same word. The checker must find that concrete pair, and infer_banking's
   own default (parDist = 4 = k at test sizes) must stay conflict-free. *)
let kmeans_at ~par_dist =
  let app = Registry.find "kmeans" in
  let sizes = app.App.test_sizes in
  let params = ("parDist", par_dist) :: List.remove_assoc "parDist" (app.App.default_params sizes) in
  app.App.generate ~sizes ~params

let test_kmeans_wide_par_conflicts () =
  let r = Absint.analyze (kmeans_at ~par_dist:8) in
  let ds = Absint.diags r in
  check_bool "L010 error at parDist 8 > k 4" true (has_error "L010" ds);
  check_bool "the distance buffer is the culprit" true
    (List.exists (fun g -> g.Diag.code = "L010" && contains ~needle:"distB" g.Diag.message) ds);
  let s = Absint.summarize r in
  check_bool "conflict counted" true (s.Absint.s_banks_conflict > 0);
  check_int "bounds all still proved" 0 s.Absint.s_bounds_refuted;
  (* The default configuration proves out end to end. *)
  check_bool "parDist 4 clean" true (Absint.clean (Absint.analyze (kmeans_at ~par_dist:4)))

(* ------------------------- liveness -------------------------------- *)

let producer_consumer ~metapipe () =
  let b = B.create "mp" in
  let buf = B.bram b "buf" Dtype.float32 [ 8 ] in
  let out = B.bram b "out" Dtype.float32 [ 8 ] in
  let s1 =
    B.pipe ~label:"produce" ~counters:[ ("i", 0, 8, 1) ] (fun p ->
        B.store p buf [ B.iter "i" ] (B.const 1.0))
  in
  let s2 =
    B.pipe ~label:"consume" ~counters:[ ("i", 0, 8, 1) ] (fun p ->
        B.store p out [ B.iter "i" ] (B.load p buf [ B.iter "i" ]))
  in
  let top =
    if metapipe then B.metapipe ~label:"outer" ~counters:[ ("t", 0, 4, 1) ] [ s1; s2 ]
    else B.sequential_block ~label:"outer" [ s1; s2 ]
  in
  B.finish b ~top

let test_missing_double_buffer () =
  let d = producer_consumer ~metapipe:true () in
  let buf = List.find (fun m -> m.Ir.mem_name = "buf") d.Ir.d_mems in
  check_bool "inference double-buffered the crossing value" true buf.Ir.mem_double;
  check_bool "analysis agrees with inference" true (Absint.clean (Absint.analyze d));
  buf.Ir.mem_double <- false;
  let r = Absint.analyze d in
  let mi = mem_info r "buf" in
  check_bool "double buffering required" true mi.Absint.mi_double_required;
  (match mi.Absint.mi_crossing with
  | Some c ->
    check_int "written in stage 0" 0 (fst c.Liveness.cr_writer);
    check_bool "read by a later stage" true
      (match c.Liveness.cr_reader with Liveness.Stage (1, _) -> true | _ -> false)
  | None -> Alcotest.fail "no crossing recorded for a required double buffer");
  let ds = Lint.check ~validate:false d in
  check_bool "L002 backs the proof" true (has_error "L002" ds);
  check_bool "message names the hazard" true
    (contains ~needle:"crosses pipelined stages without double buffering" (message_of "L002" ds))

let test_spurious_double_buffer () =
  let d = producer_consumer ~metapipe:false () in
  let buf = List.find (fun m -> m.Ir.mem_name = "buf") d.Ir.d_mems in
  check_bool "sequential schedule needs no double buffer" false buf.Ir.mem_double;
  buf.Ir.mem_double <- true;
  let r = Absint.analyze d in
  check_bool "flagged spurious" true (mem_info r "buf").Absint.mi_spurious_double;
  let ds = Absint.diags r in
  check_bool "L011 warning, not error" true
    (has_warning "L011" ds && not (has_error "L011" ds));
  check_bool "message explains the cost" true
    (contains ~needle:"single buffering halves its BRAM" (message_of "L011" ds));
  check_bool "warnings keep the report clean" true (Absint.clean r);
  let s = Absint.summarize r in
  check_int "spurious counted" 1 s.Absint.s_double_spurious

(* ------------------------- registry -------------------------------- *)

let test_registry_apps_prove_out () =
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun sizes ->
          let d = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
          let r = Absint.analyze d in
          let s = Absint.summarize r in
          check_bool (a.App.name ^ " clean") true (Absint.clean r);
          check_bool (a.App.name ^ " proves some bounds") true (s.Absint.s_bounds_proved > 0);
          check_int (a.App.name ^ " refuted bounds") 0 s.Absint.s_bounds_refuted;
          check_int (a.App.name ^ " bank conflicts") 0 s.Absint.s_banks_conflict;
          check_int (a.App.name ^ " missing double buffers") 0 s.Absint.s_double_missing;
          check_int (a.App.name ^ " spurious double buffers") 0 s.Absint.s_double_spurious)
        [ a.App.test_sizes; a.App.paper_sizes ])
    Registry.all

(* Satellite: cross-check Analysis.infer_banking against the affine checker
   over sampled legal points of every benchmark space. The inferred banking
   must prove out everywhere except kmeans points whose parDist exceeds k,
   where the checker must produce the conflict instead. *)
let test_registry_par_sweep () =
  List.iter
    (fun (a : App.t) ->
      let sizes = a.App.test_sizes in
      let k = Option.value (List.assoc_opt "k" sizes) ~default:max_int in
      let pts = Space.sample (a.App.space sizes) ~seed:42 ~max_points:12 in
      check_bool (a.App.name ^ " sampled points") true (pts <> []);
      List.iter
        (fun p ->
          let d = a.App.generate ~sizes ~params:p in
          let s = Absint.summarize (Absint.analyze d) in
          let label =
            Printf.sprintf "%s at %s" a.App.name
              (String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) p))
          in
          check_int (label ^ ": no refuted bounds") 0 s.Absint.s_bounds_refuted;
          check_int (label ^ ": no missing double buffers") 0 s.Absint.s_double_missing;
          let expect_conflict = a.App.name = "kmeans" && App.get p "parDist" 1 > k in
          check_bool
            (label ^ if expect_conflict then ": conflict expected" else ": conflict-free")
            expect_conflict (s.Absint.s_banks_conflict > 0))
        pts)
    Registry.all

(* ------------------------- DSE wiring ------------------------------ *)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:40 ~epochs:60 ())

let absint_space = Space.make ~name:"absint-toy" ~dims:[ ("oob", [ 0; 1 ]) ] ()

let absint_generate p =
  let oob = App.get p "oob" 0 = 1 in
  linear_store_design
    ~name:(if oob then "bad" else "good")
    ~words:16
    ~stop:(if oob then 17 else 16)
    ()

let run_absint_sweep config =
  Explore.run config (Eval.create (Lazy.force estimator)) ~space:absint_space
    ~generate:absint_generate

(* The symbolic gate (on by default) would refute the bad point before
   elaboration; these tests exercise the *concrete* classification
   machinery, so they run with the gate off. *)
let test_explore_absint_pruning () =
  let base =
    Explore.Config.(default |> with_seed 1 |> with_max_points 10 |> with_symbolic false)
  in
  let r = run_absint_sweep base in
  check_int "sampled both points" 2 r.Explore.sampled;
  check_int "proof refutation pruned the bad point" 1 r.Explore.absint_pruned;
  check_int "no heuristic pruning" 0 r.Explore.lint_pruned;
  check_int "good point estimated" 1 (List.length r.Explore.evaluations);
  (* Proof passes alone (lint off) find the same refutation. *)
  let r2 = run_absint_sweep (Explore.Config.with_lint false base) in
  check_int "absint alone still prunes" 1 r2.Explore.absint_pruned;
  (* Turning the proofs off estimates provably broken hardware. *)
  let r3 = run_absint_sweep (Explore.Config.with_absint false base) in
  check_int "no proof pruning when disabled" 0 r3.Explore.absint_pruned;
  check_int "both points estimated" 2 (List.length r3.Explore.evaluations)

let test_checkpoint_roundtrips_absint_pruned () =
  let path = Filename.temp_file "absint" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  let base =
    Explore.Config.(default |> with_seed 1 |> with_max_points 10 |> with_symbolic false)
  in
  let r = run_absint_sweep Explore.Config.(base |> with_checkpoint path) in
  check_int "pruned on first run" 1 r.Explore.absint_pruned;
  let r2 = run_absint_sweep Explore.Config.(base |> with_checkpoint path |> with_resume true) in
  check_int "every point resumed" 2 r2.Explore.resumed;
  check_int "absint_pruned survives the checkpoint" 1 r2.Explore.absint_pruned;
  check_int "evaluations survive too" 1 (List.length r2.Explore.evaluations)

(* ------------------------- report output --------------------------- *)

let test_render_json_shape () =
  let r = Absint.analyze (linear_store_design ~words:16 ~stop:17 ()) in
  let js = Absint.render_json r in
  check_bool "names the design" true (contains ~needle:"\"design\"" js);
  check_bool "has a mems array" true (contains ~needle:"\"mems\"" js);
  check_bool "refutation serialized" true (contains ~needle:"refuted" js);
  check_bool "balanced braces" true
    (String.fold_left (fun n c -> n + (if c = '{' then 1 else if c = '}' then -1 else 0)) 0 js = 0);
  let txt = Absint.render_text r in
  check_bool "text report names the memory" true (contains ~needle:"xT" txt)

let () =
  Alcotest.run "absint"
    [
      ( "domains",
        [
          Alcotest.test_case "interval ops" `Quick test_interval_ops;
          Alcotest.test_case "affine forms" `Quick test_affine_forms;
          Alcotest.test_case "register fixpoint" `Quick test_engine_register_fixpoint;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "in bounds proved" `Quick test_inbounds_proved;
          Alcotest.test_case "oob store witness" `Quick test_oob_store_witness;
          Alcotest.test_case "oob address expression" `Quick test_oob_address_expression;
          Alcotest.test_case "tile divisibility" `Quick test_tile_divisibility;
          Alcotest.test_case "tile offset overrun" `Quick test_tile_offset_overrun;
          Alcotest.test_case "data-dependent address unknown" `Quick
            test_data_dependent_address_unknown;
        ] );
      ( "banking",
        [
          Alcotest.test_case "linear conflict" `Quick test_bank_conflict_linear;
          Alcotest.test_case "stride two block-cyclic" `Quick test_stride_two_needs_block_cyclic;
          Alcotest.test_case "broadcast read and write" `Quick test_broadcast_read_and_write;
          Alcotest.test_case "grid blocked scheme" `Quick test_grid_access_blocked_scheme;
          Alcotest.test_case "stream conflict" `Quick test_stream_bank_conflict;
          Alcotest.test_case "kmeans wide par" `Quick test_kmeans_wide_par_conflicts;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "missing double buffer" `Quick test_missing_double_buffer;
          Alcotest.test_case "spurious double buffer" `Quick test_spurious_double_buffer;
        ] );
      ( "registry",
        [
          Alcotest.test_case "apps prove out" `Quick test_registry_apps_prove_out;
          Alcotest.test_case "banking sweep" `Quick test_registry_par_sweep;
        ] );
      ( "dse",
        [
          Alcotest.test_case "absint pruning" `Quick test_explore_absint_pruning;
          Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrips_absint_pruned;
        ] );
      ( "report",
        [ Alcotest.test_case "render json" `Quick test_render_json_shape ] );
    ]
