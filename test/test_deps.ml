(* Tests for the loop-carried dependence analysis (Dhdl_absint.Dependence):
   the single-source-of-truth II wiring (estimator == simulator on every
   registry point, and no local II logic left in either consumer), the
   differential oracle against enumerated iteration spaces, the L012/L013
   lint passes, the Dep_pruned DSE classification with its checkpoint
   round-trip, the dependence JSON payload of `dhdl analyze`, and the
   ragged-tile row-coalescing fix in Cycle_model.transfer_estimate. *)

module Ir = Dhdl_ir.Ir
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Diag = Dhdl_ir.Diag
module Traverse = Dhdl_ir.Traverse
module Target = Dhdl_device.Target
module Dependence = Dhdl_absint.Dependence
module Cycle_model = Dhdl_model.Cycle_model
module Estimator = Dhdl_model.Estimator
module Perf_sim = Dhdl_sim.Perf_sim
module Interp = Dhdl_sim.Interp
module Lint = Dhdl_lint.Lint
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Space = Dhdl_dse.Space
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Outcome = Dhdl_dse.Outcome
module Checkpoint = Dhdl_dse.Checkpoint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let has_error code diags =
  List.exists (fun g -> g.Diag.code = code && g.Diag.severity = Diag.Error) diags

let has_warning code diags =
  List.exists (fun g -> g.Diag.code = code && g.Diag.severity = Diag.Warning) diags

(* ------------------------- fixtures -------------------------------- *)

(* A distance-1 shift: iteration i stores the word iteration i+1 loads.
   Legal sequentially (II = recurrence latency), but any par > 1 issues a
   producing store and the consuming load in the same cycle. *)
let shift_design ?(par = 1) () =
  let b = B.create "shift" in
  let m = B.bram b "m" Dtype.float32 [ 17 ] in
  let body =
    B.pipe ~label:"shift" ~counters:[ ("i", 0, 16, 1) ] ~par (fun p ->
        B.store p m [ B.add p (B.iter "i") (B.const 1.0) ] (B.load p m [ B.iter "i" ]))
  in
  B.finish b ~top:(B.sequential_block ~label:"main" [ body ])

(* A feed-forward body: independent iterations, II = 1 at any par. *)
let stream_design () =
  let b = B.create "stream" in
  let m = B.bram b "m" Dtype.float32 [ 16 ] in
  let body =
    B.pipe ~label:"fill" ~counters:[ ("i", 0, 16, 1) ] (fun p ->
        B.store p m [ B.iter "i" ] (B.const 2.0))
  in
  B.finish b ~top:(B.sequential_block ~label:"main" [ body ])

(* ------------------------- one II source of truth ------------------ *)

(* The test/dune stanza declares both consumer sources as deps, so they are
   present in the sandbox at the same relative location. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_no_local_ii_logic () =
  List.iter
    (fun path ->
      let src = read_file path in
      check_bool (path ^ " routes through Dependence.ii") true
        (contains ~needle:"Dependence.ii" src);
      (* The old syntactic heuristic lived on these identifiers; its only
         remaining home is Dependence.heuristic_ii (the L012 comparator). *)
      List.iter
        (fun needle ->
          check_bool
            (Printf.sprintf "%s has no local II logic (%s)" path needle)
            false (contains ~needle src))
        [ "unsafe_rmw"; "rotating" ])
    [ "../lib/model/cycle_model.ml"; "../lib/sim/perf_sim.ml" ]

let test_registry_ii_agreement () =
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun sizes ->
          let pts = Space.sample (a.App.space sizes) ~seed:11 ~max_points:6 in
          let pts = a.App.default_params sizes :: pts in
          List.iter
            (fun p ->
              let d = a.App.generate ~sizes ~params:p in
              List.iter
                (fun c ->
                  let label =
                    Printf.sprintf "%s %s: estimator II == simulator II" a.App.name
                      (Ir.ctrl_label c)
                  in
                  check_int label (Cycle_model.pipe_ii c) (Perf_sim.initiation_interval c);
                  match c with
                  | Ir.Pipe _ -> check_bool (label ^ " >= 1") true (Cycle_model.pipe_ii c >= 1)
                  | _ -> check_int (label ^ " non-pipe is 0") 0 (Cycle_model.pipe_ii c))
                (Traverse.all_ctrls d))
            pts)
        [ a.App.test_sizes; a.App.paper_sizes ])
    Registry.all

(* ------------------------- differential oracle --------------------- *)

(* Replay a pair's exposed per-dimension affine address functions over the
   pipe's enumerated iteration space. The exposure precondition (both
   sides affine with identical loop-invariant parts) makes comparing the
   affine parts exact, so this is a runtime aliasing oracle for the static
   verdicts: proved-independent pairs must never collide across distinct
   iterations, and carried witnesses must be real in-range collisions. *)
let oracle_box_cap = 512

let eval_dims dims idx =
  List.map
    (fun (c0, terms) ->
      List.fold_left (fun acc (name, coef) -> acc + (coef * List.assoc name idx)) c0 terms)
    dims

let enumerate counters =
  let trips = List.map (fun (c : Ir.counter) -> Ir.counter_trip c) counters in
  let total = List.fold_left ( * ) 1 trips in
  if total <= 0 || total > oracle_box_cap then None
  else begin
    let rec go acc = function
      | [] -> [ List.rev acc ]
      | (c : Ir.counter) :: rest ->
        List.concat_map
          (fun i -> go ((c.Ir.ctr_name, i) :: acc) rest)
          (List.init (Ir.counter_trip c) Fun.id)
    in
    Some (go [] counters)
  end

let pipe_counters d label =
  let found =
    List.find_map
      (fun c ->
        match c with
        | Ir.Pipe { loop; _ } when loop.Ir.lp_label = label -> Some loop.Ir.lp_counters
        | _ -> None)
      (Traverse.all_ctrls d)
  in
  match found with Some cs -> cs | None -> Alcotest.failf "pipe %s not found" label

let index_of_iters counters iters =
  List.map
    (fun (c : Ir.counter) ->
      let v = List.assoc c.Ir.ctr_name iters in
      let step = if c.Ir.ctr_step = 0 then 1 else c.Ir.ctr_step in
      (c.Ir.ctr_name, (v - c.Ir.ctr_start) / step))
    counters

let oracle_check_design name d =
  (* The interpreter is the runtime: it must execute the whole design
     without tripping its dynamic bounds checker. *)
  (try ignore (Interp.run d ~inputs:[])
   with Failure msg -> Alcotest.failf "%s: interpreter failed: %s" name msg);
  let rep = Dependence.analyze d in
  List.iter
    (fun (p : Dependence.pipe_dep) ->
      let counters = pipe_counters d p.Dependence.pd_label in
      List.iter
        (fun (pr : Dependence.pair) ->
          match (pr.Dependence.p_src_affine, pr.Dependence.p_dst_affine) with
          | Some sa, Some sb -> (
            let label =
              Printf.sprintf "%s/%s %s s%d->s%d" name p.Dependence.pd_label
                (Dependence.kind_str pr.Dependence.p_kind)
                pr.Dependence.p_src pr.Dependence.p_dst
            in
            match pr.Dependence.p_status with
            | Dependence.Independent -> (
              match enumerate counters with
              | None -> ()
              | Some points ->
                (* Bucket source tuples; a hit from a strictly later
                   destination iteration refutes the independence proof.
                   Earlier-iteration collisions belong to the pair in the
                   opposite direction, which is reported separately. *)
                let flat idx =
                  List.fold_left
                    (fun acc (c : Ir.counter) ->
                      (acc * Ir.counter_trip c) + List.assoc c.Ir.ctr_name idx)
                    0 counters
                in
                let tbl = Hashtbl.create 64 in
                List.iter (fun x -> Hashtbl.add tbl (eval_dims sa x) x) points;
                List.iter
                  (fun y ->
                    let hits = Hashtbl.find_all tbl (eval_dims sb y) in
                    check_bool
                      (label ^ ": proved-independent pair never aliases at runtime")
                      false
                      (List.exists (fun x -> flat x < flat y) hits))
                  points)
            | Dependence.Carried { distance; witness } ->
              let w = witness in
              let xi = index_of_iters counters w.Dependence.wt_src_iters in
              let yi = index_of_iters counters w.Dependence.wt_dst_iters in
              List.iter
                (fun (c : Ir.counter) ->
                  let inb i =
                    let v = List.assoc c.Ir.ctr_name i in
                    v >= 0 && v < Ir.counter_trip c
                  in
                  check_bool (label ^ ": witness iterations in range") true (inb xi && inb yi))
                counters;
              check_bool (label ^ ": witness iterations distinct") true (xi <> yi);
              check_bool
                (label ^ ": witness pair actually collides")
                true
                (eval_dims sa xi = eval_dims sb yi);
              check_bool (label ^ ": positive distance") true (distance > 0)
            | Dependence.Unknown _ -> ())
          | _ -> ())
        p.Dependence.pd_pairs)
    rep.Dependence.r_pipes

let test_oracle_registry () =
  List.iter
    (fun (a : App.t) ->
      let sizes = a.App.test_sizes in
      let d = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
      oracle_check_design a.App.name d)
    Registry.all

let test_oracle_fixtures () =
  oracle_check_design "shift" (shift_design ());
  oracle_check_design "stream" (stream_design ());
  (* The shift fixture's RAW pair must be proved carried at distance 1. *)
  let rep = Dependence.analyze (shift_design ()) in
  let pairs = List.concat_map (fun p -> p.Dependence.pd_pairs) rep.Dependence.r_pipes in
  check_bool "shift has a distance-1 RAW" true
    (List.exists
       (fun (pr : Dependence.pair) ->
         pr.Dependence.p_kind = Dependence.Raw
         &&
         match pr.Dependence.p_status with
         | Dependence.Carried { distance; _ } -> distance = 1
         | _ -> false)
       pairs)

(* ------------------------- L012 / L013 ----------------------------- *)

(* The paper-size kmeans centroid-count pipe is the motivating L012 case:
   it loads one invariant-addressed buffer cell and stores another, which
   the syntactic rule reads as an unsafe read-modify-write (II = chain
   latency) but the dependence analysis proves independent (II = 1). *)
let test_l012_kmeans_regression () =
  let a = List.find (fun (a : App.t) -> a.App.name = "kmeans") Registry.all in
  let sizes = a.App.test_sizes in
  let d = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
  let rep = Dependence.analyze d in
  check_bool "a pipe is proved II=1 where the heuristic charged a recurrence" true
    (List.exists
       (fun (p : Dependence.pipe_dep) ->
         p.Dependence.pd_ii = 1 && p.Dependence.pd_heuristic_ii > 1)
       rep.Dependence.r_pipes);
  let diags = Lint.check d in
  check_bool "L012 warning emitted" true (has_warning "L012" diags);
  check_bool "L012 is not an error" false (has_error "L012" diags);
  check_bool "no L013 at the default point" false (has_error "L013" diags)

let test_l013_witness () =
  let diags = Lint.check (shift_design ~par:4 ()) in
  check_bool "L013 error on par=4 shift" true (has_error "L013" diags);
  let msg =
    match List.find_opt (fun g -> g.Diag.code = "L013") diags with
    | Some g -> g.Diag.message
    | None -> Alcotest.failf "no L013 diagnostic"
  in
  check_bool "witness names the memory" true (contains ~needle:"m[" msg);
  check_bool "witness cites lanes" true (contains ~needle:"lanes" msg);
  check_bool "witness cites the dependence kind" true (contains ~needle:"dependence)" msg);
  (* The same design at par=1 is legal: sequential recurrences are fine. *)
  check_bool "no L013 at par=1" false (has_error "L013" (Lint.check (shift_design ())));
  (* The proved II is the full chain latency over distance 1. *)
  let ii = Perf_sim.initiation_interval (List.hd (Traverse.children (shift_design ()).Ir.d_top)) in
  check_bool "shift II is the recurrence latency" true (ii > 1)

let test_benchmarks_l013_clean () =
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun sizes ->
          let d = a.App.generate ~sizes ~params:(a.App.default_params sizes) in
          let rep = Dependence.analyze d in
          check_bool (a.App.name ^ " vectorization legal") true
            (List.for_all
               (fun (p : Dependence.pipe_dep) -> p.Dependence.pd_conflict = None)
               rep.Dependence.r_pipes);
          check_bool (a.App.name ^ " dependence-clean") true (Dependence.clean rep))
        [ a.App.test_sizes; a.App.paper_sizes ])
    Registry.all

(* ------------------------- DSE wiring ------------------------------ *)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:40 ~epochs:60 ())
let dep_space = Space.make ~name:"dep-toy" ~dims:[ ("par", [ 1; 4 ]) ] ()
let dep_generate p = shift_design ~par:(App.get p "par" 1) ()

let run_dep_sweep config =
  Explore.run config (Eval.create (Lazy.force estimator)) ~space:dep_space
    ~generate:dep_generate

(* The symbolic gate (on by default) would refute the bad point before
   elaboration; these tests exercise the *concrete* classification
   machinery, so they run with the gate off. *)
let test_explore_dep_pruning () =
  let base =
    Explore.Config.(default |> with_seed 1 |> with_max_points 10 |> with_symbolic false)
  in
  let r = run_dep_sweep base in
  check_int "sampled both points" 2 r.Explore.sampled;
  check_int "refuted par pruned as dep_pruned" 1 r.Explore.dep_pruned;
  check_int "not counted as absint_pruned" 0 r.Explore.absint_pruned;
  check_int "not counted as lint_pruned" 0 r.Explore.lint_pruned;
  check_int "legal point estimated" 1 (List.length r.Explore.evaluations);
  (* --no-absint estimates the refuted point instead of dropping it. *)
  let r2 = run_dep_sweep (Explore.Config.with_absint false base) in
  check_int "no dep pruning when proofs are off" 0 r2.Explore.dep_pruned;
  check_int "both points estimated" 2 (List.length r2.Explore.evaluations)

let test_checkpoint_roundtrips_dep_pruned () =
  let path = Filename.temp_file "deps" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  let base =
    Explore.Config.(default |> with_seed 1 |> with_max_points 10 |> with_symbolic false)
  in
  let r = run_dep_sweep Explore.Config.(base |> with_checkpoint path) in
  check_int "pruned on first run" 1 r.Explore.dep_pruned;
  (* The serialized entry round-trips through the JSONL parser... *)
  (match Checkpoint.load ~path with
  | Error msg -> Alcotest.failf "checkpoint load failed: %s" msg
  | Ok c ->
    check_bool "dep_pruned entry serialized" true
      (List.exists (fun (_, e) -> e = Outcome.Dep_pruned) c.Checkpoint.entries));
  (* ...and a resumed sweep reuses it without reclassifying. *)
  let r2 = run_dep_sweep Explore.Config.(base |> with_checkpoint path |> with_resume true) in
  check_int "every point resumed" 2 r2.Explore.resumed;
  check_int "dep_pruned survives the checkpoint" 1 r2.Explore.dep_pruned

(* ------------------------- report output --------------------------- *)

(* The dependence payload embedded by `dhdl analyze --json`. *)
let test_render_json_payload () =
  let rep = Dependence.analyze (shift_design ~par:4 ()) in
  let js = Dependence.render_json rep in
  List.iter
    (fun needle -> check_bool ("payload has " ^ needle) true (contains ~needle js))
    [
      "\"design\":\"shift\"";
      "\"summary\":";
      "\"pipes\":";
      "\"ii\":";
      "\"heuristic_ii\":";
      "\"status\":\"carried\"";
      "\"distance\":1";
      "\"witness\":";
      "\"conflict\":";
      "\"lane_a\":";
      "\"races\":";
    ];
  check_bool "balanced braces" true
    (String.fold_left (fun n c -> n + (if c = '{' then 1 else if c = '}' then -1 else 0)) 0 js = 0);
  check_bool "balanced brackets" true
    (String.fold_left (fun n c -> n + (if c = '[' then 1 else if c = ']' then -1 else 0)) 0 js = 0);
  (* A refuted design is not clean (drives analyze's exit code), a pure
     feed-forward one is. *)
  check_bool "refuted design not clean" false (Dependence.clean rep);
  check_bool "stream design clean" true (Dependence.clean (Dependence.analyze (stream_design ())));
  let txt = Dependence.render_text rep in
  check_bool "text report shows the conflict" true (contains ~needle:"UNSAFE PIPELINING" txt);
  check_bool "text report has the summary" true (contains ~needle:"summary:" txt)

(* ------------------------- transfer estimate ----------------------- *)

let board = Target.max4_maia

(* Closed-form expectation with an explicit command count. *)
let expected_transfer ~words ~ncmds =
  let bytes = float_of_int (words * 4) in
  float_of_int board.Target.dram_latency_cycles
  +. (4.0 *. float_of_int ncmds)
  +. (bytes /. Target.bytes_per_cycle board)

let test_transfer_ragged_tiles () =
  let b = B.create "xfer" in
  let off3 = B.offchip b "x3" Dtype.float32 [ 4; 6; 8 ] in
  let off2 = B.offchip b "x2" Dtype.float32 [ 16; 8 ] in
  let est offchip tile =
    Cycle_model.transfer_estimate board ~contention:1 ~offchip ~ty:Dtype.float32 ~tile
  in
  let check label offchip tile ~ncmds =
    Alcotest.(check (float 1e-9))
      label
      (expected_transfer ~words:(List.fold_left ( * ) 1 tile) ~ncmds)
      (est offchip tile)
  in
  (* Fully contiguous tiles coalesce into one command. *)
  check "3d full tile" off3 [ 4; 6; 8 ] ~ncmds:1;
  check "2d full-width rows" off2 [ 4; 8 ] ~ncmds:1;
  (* A ragged innermost dimension gives one command per row. *)
  check "2d ragged rows" off2 [ 4; 6 ] ~ncmds:4;
  check "3d ragged inner" off3 [ 2; 3; 4 ] ~ncmds:6;
  (* The 3D ragged-middle case the old row_words overstated: the run stops
     at the first partial dimension (3 of 6), so the 48-word tile needs
     two 24-word commands, not one 48-word command. *)
  check "3d ragged middle" off3 [ 2; 3; 8 ] ~ncmds:2;
  check "3d full inner planes" off3 [ 1; 6; 8 ] ~ncmds:1

(* ------------------------------------------------------------------- *)

let () =
  Alcotest.run "deps"
    [
      ( "single-source",
        [
          Alcotest.test_case "no local II logic" `Quick test_no_local_ii_logic;
          Alcotest.test_case "registry II agreement" `Quick test_registry_ii_agreement;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "registry apps" `Quick test_oracle_registry;
          Alcotest.test_case "fixtures" `Quick test_oracle_fixtures;
        ] );
      ( "lint",
        [
          Alcotest.test_case "L012 kmeans regression" `Quick test_l012_kmeans_regression;
          Alcotest.test_case "L013 witness" `Quick test_l013_witness;
          Alcotest.test_case "benchmarks legal" `Quick test_benchmarks_l013_clean;
        ] );
      ( "dse",
        [
          Alcotest.test_case "dep pruning" `Quick test_explore_dep_pruning;
          Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrips_dep_pruned;
        ] );
      ( "report",
        [ Alcotest.test_case "render json payload" `Quick test_render_json_payload ] );
      ( "transfer",
        [ Alcotest.test_case "ragged tiles" `Quick test_transfer_ragged_tiles ] );
    ]
