(* Parallel-sweep suite: Explore.Config validation and the tentpole
   guarantee that a [jobs > 1] sweep — run on real worker domains, with 5%
   mixed faults injected — produces results and checkpoint files
   bit-identical to the sequential sweep, including across resume and
   deadline truncation. Runs under both `dune runtest` and the focused
   `dune build @par` pre-merge alias. *)

module Faults = Dhdl_util.Faults
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Checkpoint = Dhdl_dse.Checkpoint
module Estimator = Dhdl_model.Estimator
module Obs = Dhdl_obs.Obs
module App = Dhdl_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

let with_faults f = Fun.protect ~finally:Faults.reset f

(* Same 5% mixed-stage fault recipe as the test_faults acceptance tests:
   the determinism claim has to hold on sweeps where points fail, not just
   on clean ones. *)
let mixed_faults () =
  Faults.configure ~seed:5 ~p:0.0 ();
  List.iter (fun s -> Faults.set_site s 0.05) [ "dse.generator"; "dse.lint"; "dse.estimator" ]

let run_sweep ?checkpoint ?checkpoint_every ?resume ?deadline_seconds ?(jobs = 1) ?(seed = 11)
    ?(max_points = 80) est =
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 65_536) ] in
  let cfg =
    Explore.Config.make ~seed ~max_points ?checkpoint ?checkpoint_every ?resume ?deadline_seconds
      ~jobs ()
  in
  Explore.run cfg (Eval.create est)
    ~space:(app.App.space sizes)
    ~generate:(fun p -> app.App.generate ~sizes ~params:p)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_par_" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fails_with_failure f =
  match f () with _ -> false | exception Failure _ -> true

(* ------------------------- Config validation ------------------------- *)

let test_config_defaults () =
  let d = Explore.Config.default in
  check_int "paper seed" 2016 d.Explore.Config.seed;
  check_int "paper budget" 75_000 d.Explore.Config.max_points;
  check_int "sequential by default" 1 d.Explore.Config.jobs;
  check_bool "lint on by default" true d.Explore.Config.lint;
  check_bool "no checkpoint by default" true (d.Explore.Config.checkpoint = None)

let test_config_rejects () =
  check_bool "jobs 0 rejected" true
    (fails_with_failure (fun () -> Explore.Config.(default |> with_jobs 0)));
  check_bool "negative jobs rejected" true
    (fails_with_failure (fun () -> Explore.Config.make ~jobs:(-3) ()));
  check_bool "jobs above max_jobs rejected" true
    (fails_with_failure (fun () ->
         Explore.Config.(default |> with_jobs (Explore.Config.max_jobs + 1))));
  check_bool "negative budget rejected" true
    (fails_with_failure (fun () -> Explore.Config.(default |> with_max_points (-1))));
  check_bool "nan deadline rejected" true
    (fails_with_failure (fun () -> Explore.Config.(default |> with_deadline Float.nan)));
  check_bool "resume without checkpoint rejected by make" true
    (fails_with_failure (fun () -> Explore.Config.make ~resume:true ()))

let test_config_builder_order () =
  (* The resume/checkpoint pairing is checked at consumption time, so
     setting resume before the checkpoint path must not raise mid-chain. *)
  let cfg =
    Explore.Config.(default |> with_resume true |> with_checkpoint ~every:10 (tmp "order.jsonl"))
  in
  check_bool "resume retained" true cfg.Explore.Config.resume;
  check_int "cadence retained" 10 cfg.Explore.Config.checkpoint_every;
  check_bool "jobs accepted up to max" true
    (Explore.Config.(default |> with_jobs max_jobs).Explore.Config.jobs = Explore.Config.max_jobs)

(* --------------- the tentpole: parallel == sequential ---------------- *)

let same_result (a : Explore.result) (b : Explore.result) =
  check_bool "evaluations identical" true (a.Explore.evaluations = b.Explore.evaluations);
  check_bool "pareto identical" true (a.Explore.pareto = b.Explore.pareto);
  check_bool "failures identical" true (a.Explore.failures = b.Explore.failures);
  check_int "lint_pruned equal" a.Explore.lint_pruned b.Explore.lint_pruned;
  check_int "processed equal" a.Explore.processed b.Explore.processed;
  check_int "sampled equal" a.Explore.sampled b.Explore.sampled;
  check_bool "truncated equal" true (a.Explore.truncated = b.Explore.truncated)

let test_parallel_determinism () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  let p1 = tmp "seq.jsonl" and p4 = tmp "par.jsonl" in
  mixed_faults ();
  let seq = run_sweep ~checkpoint:p1 est in
  mixed_faults ();
  let par = run_sweep ~checkpoint:p4 ~jobs:4 est in
  check_int "ran on 4 domains" 4 par.Explore.jobs;
  check_bool "faults actually fired" true (Explore.failed_count seq > 0);
  same_result seq par;
  Alcotest.(check string) "checkpoint bytes identical" (read_file p1) (read_file p4)

let test_parallel_clean_determinism () =
  (* Also without faults: lint pruning and Pareto extraction must land
     identically when outcomes arrive out of completion order. *)
  let est = Lazy.force estimator in
  let seq = run_sweep est in
  let par = run_sweep ~jobs:3 est in
  same_result seq par;
  check_bool "something evaluated" true (seq.Explore.evaluations <> [])

let test_parallel_resume () =
  let est = Lazy.force estimator in
  let full = tmp "resume_full.jsonl" and kill = tmp "resume_kill.jsonl" in
  with_faults @@ fun () ->
  mixed_faults ();
  let reference = run_sweep ~checkpoint:full ~jobs:2 est in
  (* Simulate a mid-sweep kill: keep the first 30 checkpoint entries. *)
  (match Checkpoint.load ~path:full with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Checkpoint.save ~path:kill
      { c with Checkpoint.entries = List.filteri (fun i _ -> i < 30) c.Checkpoint.entries });
  (* Resume a sequential checkpoint in parallel: the jobs level is not
     part of the sweep identity, so any worker count may pick it up. *)
  mixed_faults ();
  let resumed = run_sweep ~checkpoint:kill ~resume:true ~jobs:4 est in
  check_int "30 points reused" 30 resumed.Explore.resumed;
  check_bool "evaluations bit-identical to uninterrupted sweep" true
    (resumed.Explore.evaluations = reference.Explore.evaluations);
  check_bool "failures bit-identical" true
    (resumed.Explore.failures = reference.Explore.failures);
  Alcotest.(check string) "final checkpoints byte-identical" (read_file full) (read_file kill)

let test_parallel_deadline () =
  let est = Lazy.force estimator in
  let path = tmp "deadline.jsonl" in
  let truncated = run_sweep ~checkpoint:path ~deadline_seconds:0.0 ~jobs:4 est in
  check_bool "deadline trips" true truncated.Explore.truncated;
  check_bool "stopped early" true (truncated.Explore.processed < truncated.Explore.sampled);
  (* The truncated parallel run still wrote a resumable checkpoint; a
     sequential resume finishes the job and matches a from-scratch sweep. *)
  let finished = run_sweep ~checkpoint:path ~resume:true est in
  let reference = run_sweep est in
  check_bool "resumed sweep completes" true
    ((not finished.Explore.truncated) && finished.Explore.processed = finished.Explore.sampled);
  check_bool "evaluations match from-scratch sweep" true
    (finished.Explore.evaluations = reference.Explore.evaluations)

(* ---------------------- telemetry under domains ---------------------- *)

let counters_of () =
  List.filter (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "dse.")
    (Obs.snapshot ()).Obs.snap_counters

let test_parallel_counters () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  mixed_faults ();
  Obs.enable ();
  ignore (run_sweep est);
  let seq_counters = counters_of () in
  let seq_samples =
    Array.length (List.assoc "dse.ms_per_design" (Obs.snapshot ()).Obs.snap_hists)
  in
  Obs.disable ();
  mixed_faults ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  ignore (run_sweep ~jobs:4 est);
  let par_counters = counters_of () in
  let par_samples =
    Array.length (List.assoc "dse.ms_per_design" (Obs.snapshot ()).Obs.snap_hists)
  in
  check_bool "counters nonempty" true (seq_counters <> []);
  Alcotest.(check (list (pair string int)))
    "per-domain buffers merge to the sequential counter totals" seq_counters par_counters;
  check_int "histogram sample counts equal" seq_samples par_samples

let test_result_reports_cost_split () =
  let est = Lazy.force estimator in
  let r = run_sweep ~jobs:2 est in
  check_bool "wall-clock recorded" true (r.Explore.elapsed_seconds > 0.0);
  check_bool "cpu seconds recorded" true (r.Explore.cpu_seconds > 0.0);
  check_bool "per-design wall metric positive" true (Explore.seconds_per_design r > 0.0);
  check_bool "per-design cpu metric positive" true (Explore.cpu_seconds_per_design r > 0.0)

let () =
  Alcotest.run "par"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "rejects bad fields" `Quick test_config_rejects;
          Alcotest.test_case "builder order" `Quick test_config_builder_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=4 with 5% faults == sequential" `Quick
            test_parallel_determinism;
          Alcotest.test_case "clean sweep jobs=3 == sequential" `Quick
            test_parallel_clean_determinism;
          Alcotest.test_case "parallel resume" `Quick test_parallel_resume;
          Alcotest.test_case "parallel deadline" `Quick test_parallel_deadline;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counter totals across jobs" `Quick test_parallel_counters;
          Alcotest.test_case "wall vs cpu cost split" `Quick test_result_reports_cost_split;
        ] );
    ]
