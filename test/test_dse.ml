(* Tests for the design-space exploration layer: parameter spaces, the
   pruning heuristics, sampling, and Pareto extraction over estimates. *)

module Space = Dhdl_dse.Space
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Estimator = Dhdl_model.Estimator
module Pareto = Dhdl_util.Pareto
module App = Dhdl_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_space =
  Space.make ~name:"toy"
    ~dims:[ ("a", [ 1; 2; 3 ]); ("b", [ 10; 20 ]); ("c", [ 0; 1 ]) ]
    ~legal:(fun p -> App.get p "a" 0 + App.get p "c" 0 <> 4)
    ()

let test_raw_size () = check_int "3*2*2" 12 (Space.raw_size small_space)

let test_enumerate () =
  let pts = Space.enumerate small_space in
  (* a=3, c=1 is illegal: 12 - 2 = 10 points. *)
  check_int "legal points" 10 (List.length pts);
  check_bool "all legal" true (List.for_all (fun p -> App.get p "a" 0 + App.get p "c" 0 <> 4) pts);
  check_bool "all distinct" true (List.length (List.sort_uniq compare pts) = 10)

let test_point_order () =
  let pts = Space.enumerate small_space in
  List.iter
    (fun p -> Alcotest.(check (list string)) "param order" [ "a"; "b"; "c" ] (List.map fst p))
    pts

let test_sample_small_space_full () =
  let pts = Space.sample small_space ~seed:1 ~max_points:100 in
  check_int "full enumeration" 10 (List.length pts)

let test_sample_deterministic () =
  let big =
    Space.make ~name:"big"
      ~dims:(List.init 6 (fun i -> (Printf.sprintf "p%d" i, [ 1; 2; 3; 4; 5; 6; 7; 8 ])))
      ()
  in
  let a = Space.sample big ~seed:9 ~max_points:500 in
  let b = Space.sample big ~seed:9 ~max_points:500 in
  check_bool "same sample" true (a = b);
  check_int "requested size" 500 (List.length a);
  check_bool "distinct" true (List.length (List.sort_uniq compare a) = 500);
  let c = Space.sample big ~seed:10 ~max_points:500 in
  check_bool "different seed differs" true (a <> c)

let test_sample_hostile_legality () =
  (* A space where almost everything is illegal still terminates. *)
  let hostile =
    Space.make ~name:"hostile"
      ~dims:[ ("a", List.init 100 (fun i -> i)); ("b", List.init 100 (fun i -> i)) ]
      ~legal:(fun p -> App.get p "a" 0 = 0 && App.get p "b" 0 = 0)
      ()
  in
  let pts = Space.sample hostile ~seed:3 ~max_points:50 in
  check_bool "terminates with few points" true (List.length pts <= 1)

let test_divisor_helpers () =
  Alcotest.(check (list int)) "divisors_for" [ 1; 2; 4; 8 ] (Space.divisors_for 8);
  check_bool "par candidates capped" true (List.for_all (fun p -> p <= 64) (Space.par_candidates 1024))

let test_mem_limit () = check_bool "64k words" true (Space.mem_limit_words = 65_536)

(* ------------------------- Explore --------------------------------- *)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:80 ~epochs:150 ())

let run_explore () =
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 65_536) ] in
  Explore.run
    Explore.Config.(default |> with_seed 11 |> with_max_points 120)
    (Eval.create (Lazy.force estimator))
    ~space:(app.App.space sizes)
    ~generate:(fun p -> app.App.generate ~sizes ~params:p)

let result = lazy (run_explore ())

let test_explore_counts () =
  let r = Lazy.force result in
  check_int "one outcome per sampled point" r.Explore.sampled
    (List.length r.Explore.evaluations + r.Explore.lint_pruned + Explore.failed_count r);
  check_int "clean sweep has no failures" 0 (Explore.failed_count r);
  check_int "processed everything" r.Explore.sampled r.Explore.processed;
  check_bool "not truncated" false r.Explore.truncated;
  check_int "nothing resumed" 0 r.Explore.resumed;
  check_bool "sampled something" true (r.Explore.sampled > 20);
  check_bool "timing recorded" true (r.Explore.elapsed_seconds > 0.0);
  check_bool "per-design seconds" true (Explore.seconds_per_design r > 0.0)

(* Satellite: failed points must not count as "estimated" — neither in the
   Table IV ms/design denominator nor in the unfit count. *)
let test_metrics_exclude_failed_points () =
  Fun.protect ~finally:Dhdl_util.Faults.reset @@ fun () ->
  Dhdl_util.Faults.configure ~seed:9 ~p:0.0 ();
  Dhdl_util.Faults.set_site "dse.generator" 0.3;
  let r = run_explore () in
  check_bool "some failures" true (Explore.failed_count r > 0);
  check_bool "some evaluations" true (r.Explore.evaluations <> []);
  let estimated = List.length r.Explore.evaluations in
  check_bool "denominator is successful estimates only" true
    (abs_float
       (Explore.seconds_per_design r -. (r.Explore.elapsed_seconds /. float_of_int estimated))
    < 1e-12);
  check_bool "unfit counts only evaluated points" true (Explore.unfit_count r <= estimated);
  check_int "accounting"
    r.Explore.sampled
    (estimated + r.Explore.lint_pruned + Explore.failed_count r)

let test_metrics_all_points_failed () =
  Fun.protect ~finally:Dhdl_util.Faults.reset @@ fun () ->
  Dhdl_util.Faults.set_site "dse.generator" 1.0;
  let r = run_explore () in
  check_int "no evaluations" 0 (List.length r.Explore.evaluations);
  check_int "no unfit points without estimates" 0 (Explore.unfit_count r);
  Alcotest.(check (float 0.0)) "ms/design undefined, reported as 0" 0.0
    (Explore.seconds_per_design r)

let test_explore_pareto_valid () =
  let r = Lazy.force result in
  check_bool "pareto nonempty" true (r.Explore.pareto <> []);
  List.iter
    (fun (e : Explore.evaluation) -> check_bool "pareto member valid" true e.Explore.valid)
    r.Explore.pareto

let test_explore_pareto_nondominated () =
  let r = Lazy.force result in
  let proj (e : Explore.evaluation) = (e.Explore.estimate.Estimator.cycles, e.Explore.alm_pct) in
  List.iter
    (fun m ->
      check_bool "not dominated" false
        (List.exists
           (fun e -> e.Explore.valid && Pareto.dominates (proj e) (proj m))
           r.Explore.evaluations))
    r.Explore.pareto

let test_explore_best () =
  let r = Lazy.force result in
  match Explore.best r with
  | None -> Alcotest.fail "expected a best design"
  | Some b ->
    List.iter
      (fun (e : Explore.evaluation) ->
        if e.Explore.valid then
          check_bool "best is fastest" true
            (b.Explore.estimate.Estimator.cycles <= e.Explore.estimate.Estimator.cycles))
      r.Explore.evaluations

let test_explore_utilizations_recorded () =
  let r = Lazy.force result in
  List.iter
    (fun (e : Explore.evaluation) ->
      check_bool "alm pct" true (e.Explore.alm_pct >= 0.0);
      check_bool "bram pct" true (e.Explore.bram_pct >= 0.0))
    r.Explore.evaluations

let test_to_csv () =
  let r = Lazy.force result in
  let csv = Explore.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + one row per point" (r.Explore.sampled + 1) (List.length lines);
  let header = List.hd lines in
  check_bool "has cycles column" true
    (List.exists (( = ) "cycles") (String.split_on_char ',' header));
  check_bool "has param columns" true
    (List.exists (( = ) "tile") (String.split_on_char ',' header));
  (* Pareto rows are flagged. *)
  check_bool "some pareto flags" true
    (List.exists (fun l -> String.length l > 2 && String.sub l (String.length l - 2) 2 = ",1")
       (List.tl lines))

let test_pareto_of_empty () =
  Alcotest.(check int) "no valid points, no pareto" 0 (List.length (Explore.pareto_of []))

let () =
  Alcotest.run "dse"
    [
      ( "space",
        [
          Alcotest.test_case "raw size" `Quick test_raw_size;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "point order" `Quick test_point_order;
          Alcotest.test_case "small space full" `Quick test_sample_small_space_full;
          Alcotest.test_case "sample deterministic" `Quick test_sample_deterministic;
          Alcotest.test_case "hostile legality" `Quick test_sample_hostile_legality;
          Alcotest.test_case "divisor helpers" `Quick test_divisor_helpers;
          Alcotest.test_case "mem limit" `Quick test_mem_limit;
        ] );
      ( "explore",
        [
          Alcotest.test_case "counts" `Quick test_explore_counts;
          Alcotest.test_case "failed points excluded from metrics" `Quick
            test_metrics_exclude_failed_points;
          Alcotest.test_case "all points failed" `Quick test_metrics_all_points_failed;
          Alcotest.test_case "pareto valid" `Quick test_explore_pareto_valid;
          Alcotest.test_case "pareto nondominated" `Quick test_explore_pareto_nondominated;
          Alcotest.test_case "best is fastest" `Quick test_explore_best;
          Alcotest.test_case "utilizations" `Quick test_explore_utilizations_recorded;
          Alcotest.test_case "empty pareto" `Quick test_pareto_of_empty;
          Alcotest.test_case "csv export" `Quick test_to_csv;
        ] );
    ]
