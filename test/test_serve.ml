(* The DSE server: protocol codecs, supervisor robustness layers
   (admission control, deadlines, degradation, idempotent retries,
   quarantine), crash-only sessions, the socket front end, and the two
   ISSUE acceptance proofs — SIGKILL + restart + resume is byte-identical
   to an uninterrupted sweep, and under injected faults every request
   gets exactly one typed reply. Runs under `dune runtest` and the
   focused `dune build @serve` pre-merge alias.

   Ordering matters: the suites that fork (the kill/recovery integration
   test and the CLI exit-code checks) run first, before any test spawns
   a domain in this process — forking a multi-domain OCaml runtime is
   not safe. *)

module Sjson = Dhdl_serve.Json
module P = Dhdl_serve.Protocol
module Session = Dhdl_serve.Session
module Supervisor = Dhdl_serve.Supervisor
module Server = Dhdl_serve.Server
module Client = Dhdl_serve.Client
module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs
module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Checkpoint = Dhdl_dse.Checkpoint
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

let with_faults f = Fun.protect ~finally:Faults.reset f

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_serve_" ^ name)

let counter = ref 0

let fresh_id prefix =
  incr counter;
  Printf.sprintf "%s-%d" prefix !counter

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_root name =
  let dir = tmp (fresh_id name) in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  dir

let poll_until ?(timeout_s = 60.0) f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match f () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "timed out waiting for condition"
      else begin
        Unix.sleepf 0.01;
        go ()
      end
  in
  go ()

(* ---- reply plumbing ------------------------------------------------ *)

let payload reply =
  match reply.P.r_body with
  | Ok j -> j
  | Error e ->
    Alcotest.failf "expected ok reply for %s, got %s: %s" reply.P.r_id
      (P.error_code_name e.P.err_code) e.P.err_message

let err_of reply =
  match reply.P.r_body with
  | Error e -> e
  | Ok j -> Alcotest.failf "expected error reply for %s, got ok %s" reply.P.r_id (Sjson.render j)

let field name j =
  match Sjson.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" name (Sjson.render j)

let sfield name j =
  match Sjson.to_string (field name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string in %s" name (Sjson.render j)

let ifield name j =
  match Sjson.to_int (field name j) with
  | Some n -> n
  | None -> Alcotest.failf "field %S is not an int in %s" name (Sjson.render j)

let bfield name j =
  match Sjson.to_bool (field name j) with
  | Some b -> b
  | None -> Alcotest.failf "field %S is not a bool in %s" name (Sjson.render j)

(* One-shot mailbox for a reply delivered from the worker domain. *)
let inbox () =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  let put reply =
    Mutex.lock m;
    slot := Some reply;
    Condition.signal c;
    Mutex.unlock m
  in
  let wait () =
    Mutex.lock m;
    while Option.is_none !slot do
      Condition.wait c m
    done;
    let v = Option.get !slot in
    slot := None;
    Mutex.unlock m;
    v
  in
  (put, wait)

(* Submit one request and wait for its reply, round-tripped through the
   wire codec so Raw payload fragments come back as parsed JSON and every
   in-process test also exercises render/parse. *)
let rpc sup req =
  let put, wait = inbox () in
  Supervisor.submit sup req ~reply_to:put;
  let reply = wait () in
  match P.parse_reply (P.render_reply reply) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "reply for %s does not round-trip: %s" req.P.q_id msg

let sup_config ?root ?(queue_capacity = 64) ?(degrade_depth = 16) ?(quarantine_threshold = 3)
    ?(nn_fallback_limit = 25) ?(checkpoint_every = 8) () =
  let root = match root with Some r -> r | None -> fresh_root "sup" in
  {
    Supervisor.sessions_root = root;
    estimator = Lazy.from_val (Lazy.force estimator);
    queue_capacity;
    degrade_depth;
    quarantine_threshold;
    nn_fallback_limit;
    dse_jobs = 1;
    dse_checkpoint_every = checkpoint_every;
  }

let with_sup ?(start = true) cfg f =
  let sup = Supervisor.create cfg in
  if start then Supervisor.start sup;
  Fun.protect ~finally:(fun () -> Supervisor.drain sup) (fun () -> f sup)

let must_call client req =
  match Client.call client req with
  | Ok reply -> reply
  | Error msg -> Alcotest.failf "request %s got no reply: %s" req.P.q_id msg

(* In-process socket server on its own domain. The finally block always
   sends a shutdown (a no-op if the test already did) so a failed
   assertion cannot leave the server domain spinning forever. *)
let with_server ~socket cfg f =
  let server = Domain.spawn (fun () -> Server.run ~install_signals:false ~socket_path:socket cfg) in
  Fun.protect
    ~finally:(fun () ->
      let stopper = Client.create ~timeout_s:2.0 ~max_attempts:1 ~socket_path:socket () in
      ignore (Client.call stopper (P.request ~id:(fresh_id "stop") P.Shutdown));
      Domain.join server)
    (fun () ->
      let client = Client.create ~timeout_s:10.0 ~socket_path:socket () in
      if not (Client.wait_ready ~timeout_s:60.0 client) then
        Alcotest.fail "server did not come up";
      f client)

(* ==================================================================== *)
(* 1. Crash recovery over the real server: fork, SIGKILL, restart,      *)
(*    resume — final checkpoint byte-identical to an uninterrupted run. *)
(* ==================================================================== *)

let spawn_server ~socket ~root ~cache () =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        Unix.dup2 devnull Unix.stdin;
        Unix.dup2 devnull Unix.stdout;
        Unix.dup2 devnull Unix.stderr;
        Unix.close devnull;
        let estimator =
          lazy
            (match Estimator.load cache with
            | Some est -> est
            | None -> Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())
        in
        let cfg =
          {
            (Supervisor.default_config ~sessions_root:root ~estimator) with
            Supervisor.dse_checkpoint_every = 4;
          }
        in
        Server.run ~socket_path:socket cfg;
        0
      with _ -> 2
    in
    Unix._exit code
  | pid -> pid

let test_kill_resume_byte_identical () =
  let socket = tmp "kill.sock" in
  let root = fresh_root "kill_sessions" in
  let cache = tmp "kill_est.cache" in
  (* Train once and share the weights through the marshal cache, so both
     server processes and the golden run estimate bit-identically. *)
  let est = Lazy.force estimator in
  Estimator.save est cache;
  let seed = 11 and max_points = 200 in
  let sid = "kill-test" in
  let cp = Session.checkpoint_path ~root sid in
  let entries_on_disk () =
    match Checkpoint.load ~path:cp with
    | Ok c -> List.length c.Checkpoint.entries
    | Error _ -> 0
  in
  let start_req id = P.request ~id ~app:"dotproduct" ~session:sid ~seed ~max_points P.Dse_start in
  let client = Client.create ~timeout_s:10.0 ~socket_path:socket () in
  (* Server #1: start the sweep, wait for two checkpoint writes, then
     kill -9 — no drain, no final checkpoint, crash-only residue only. *)
  let pid1 = spawn_server ~socket ~root ~cache () in
  check_bool "server 1 came up" true (Client.wait_ready ~timeout_s:60.0 client);
  let p = payload (must_call client (start_req "kr-start")) in
  check_bool "sweep started" true (bfield "started" p);
  poll_until ~timeout_s:120.0 (fun () -> if entries_on_disk () >= 8 then Some () else None);
  Unix.kill pid1 Sys.sigkill;
  let _, st1 = Unix.waitpid [] pid1 in
  check_bool "died by signal, not exit" true (st1 = Unix.WSIGNALED Sys.sigkill);
  let survivors = entries_on_disk () in
  check_bool "checkpoint survived the kill" true (survivors >= 8);
  check_bool "killed mid-sweep" true (survivors < max_points);
  (match Session.status ~root sid with
  | Session.Interrupted _ -> ()
  | st ->
    Alcotest.failf "expected an interrupted session after kill -9, got %s"
      (match st with
      | Session.Unknown -> "unknown"
      | Session.Fresh _ -> "fresh"
      | Session.Interrupted _ -> "interrupted"
      | Session.Failed _ -> "failed"
      | Session.Done _ -> "done"));
  (* Server #2: same socket, same root. Re-issuing the same dse_start
     resumes from the surviving checkpoint and runs to completion. *)
  let pid2 = spawn_server ~socket ~root ~cache () in
  check_bool "server 2 came up" true (Client.wait_ready ~timeout_s:60.0 client);
  let p2 = payload (must_call client (start_req "kr-resume")) in
  check_bool "resume started" true (bfield "started" p2);
  check_bool "resumed from the surviving prefix" true (ifield "resumed_entries" p2 >= 8);
  let summary =
    poll_until ~timeout_s:300.0 (fun () ->
        match
          (must_call client (P.request ~id:(fresh_id "kr-st") ~session:sid P.Dse_status)).P.r_body
        with
        | Ok p when sfield "state" p = "done" -> Some (field "summary" p)
        | _ -> None)
  in
  check_int "every point processed" max_points (ifield "processed" summary);
  check_bool "summary counts the reused prefix" true (ifield "resumed" summary >= 8);
  ignore (must_call client (P.request ~id:"kr-bye" P.Shutdown));
  let _, st2 = Unix.waitpid [] pid2 in
  check_bool "server 2 drained and exited cleanly" true (st2 = Unix.WEXITED 0);
  (* The acceptance proof: the recovered checkpoint is byte-identical to
     one written by an uninterrupted run with the same configuration. *)
  let golden = tmp "kill_golden.jsonl" in
  (try Sys.remove golden with Sys_error _ -> ());
  let app = Registry.find "dotproduct" in
  let sizes = app.App.paper_sizes in
  let cfg =
    Explore.Config.make ~seed ~max_points ~jobs:1 ~checkpoint:golden ~checkpoint_every:4
      ~tick_every:0 ()
  in
  ignore
    (Explore.run cfg (Eval.create est)
       ~space:(app.App.space sizes)
       ~generate:(fun pt -> app.App.generate ~sizes ~params:pt));
  check_str "kill + restart + resume converges to the uninterrupted golden bytes"
    (read_file golden) (read_file cp);
  Sys.remove golden;
  Sys.remove cache;
  rm_rf root

(* ==================================================================== *)
(* 2. CLI consistency: errors and exit codes                            *)
(* ==================================================================== *)

let dhdl_exe = Filename.concat (Filename.concat ".." "bin") "dhdl.exe"

let run_cli args =
  let base = tmp (fresh_id "cli") in
  let out_path = base ^ ".out" and err_path = base ^ ".err" in
  let openw p = Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out_fd = openw out_path and err_fd = openw err_path in
  let pid = Unix.create_process dhdl_exe (Array.of_list (dhdl_exe :: args)) devnull out_fd err_fd in
  Unix.close devnull;
  Unix.close out_fd;
  Unix.close err_fd;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  let out = read_file out_path and err = read_file err_path in
  Sys.remove out_path;
  Sys.remove err_path;
  (code, out, err)

let expect_cli_error args fragment =
  let code, _, err = run_cli args in
  check_int (String.concat " " args ^ " exits 1") 1 code;
  check_bool "stderr is prefixed dhdl: error:" true (contains err "dhdl: error:");
  check_bool "stderr hints at --help" true (contains err "dhdl --help");
  check_bool (Printf.sprintf "stderr mentions %S" fragment) true (contains err fragment)

let test_cli_unknown_subcommand () = expect_cli_error [ "frobnicate" ] "frobnicate"
(* cmdliner reports a bare unknown top-level flag as a missing COMMAND;
   the consistent part is the prefix, the hint, and the exit code. *)
let test_cli_unknown_flag () = expect_cli_error [ "--frobnicate" ] "COMMAND"
let test_cli_unknown_sub_flag () = expect_cli_error [ "list"; "--frobnicate" ] "frobnicate"
let test_cli_unknown_benchmark () = expect_cli_error [ "lint"; "nosuchapp" ] "unknown benchmark"

let test_cli_client_unreachable () =
  expect_cli_error
    [ "client"; "--attempts"; "1"; "--socket"; tmp "nosock.sock"; "ping" ]
    "dhdl: error:"

let test_cli_success_still_zero () =
  let code, out, _ = run_cli [ "list" ] in
  check_int "dhdl list exits 0" 0 code;
  check_bool "lists the paper benchmarks" true (contains out "dotproduct")

(* ==================================================================== *)
(* 3. JSON codec                                                        *)
(* ==================================================================== *)

let test_json_roundtrip () =
  let values =
    [
      Sjson.Null;
      Sjson.Bool true;
      Sjson.Bool false;
      Sjson.Int 0;
      Sjson.Int (-12);
      Sjson.Float 3.5;
      Sjson.Float 2.0;
      Sjson.Str "";
      Sjson.Str "with \"quotes\", \\slashes\\ and\nnewlines\tplus\rreturns";
      Sjson.List [];
      Sjson.List [ Sjson.Int 1; Sjson.Str "two"; Sjson.Null ];
      Sjson.Obj [];
      Sjson.Obj
        [
          ("a", Sjson.Int 1);
          ("b", Sjson.List [ Sjson.Bool true; Sjson.Obj [ ("c", Sjson.Str "d") ] ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let rendered = Sjson.render v in
      check_bool "single line" false (contains rendered "\n");
      match Sjson.parse rendered with
      | Error msg -> Alcotest.failf "%s does not parse back: %s" rendered msg
      | Ok v' -> check_bool (rendered ^ " round-trips") true (v = v'))
    values

let test_json_raw_splice () =
  check_str "raw fragments splice verbatim" "{\"r\":{\"x\":1},\"n\":2}"
    (Sjson.render (Sjson.Obj [ ("r", Sjson.Raw "{\"x\":1}"); ("n", Sjson.Int 2) ]))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Sjson.parse s with
      | Ok v -> Alcotest.failf "%S should not parse, got %s" s (Sjson.render v)
      | Error msg -> check_bool "error has an offset" true (contains msg "offset"))
    [ ""; "{"; "[1,"; "nul"; "{\"a\"}"; "1 2"; "{\"a\":1} trailing"; "\"unterminated" ]

let test_json_accessors () =
  let j = Sjson.Obj [ ("i", Sjson.Int 3); ("f", Sjson.Float 4.0); ("s", Sjson.Str "x") ] in
  check_bool "member present" true (Sjson.member "i" j = Some (Sjson.Int 3));
  check_bool "member missing" true (Sjson.member "nope" j = None);
  check_bool "member on non-object" true (Sjson.member "i" (Sjson.Int 1) = None);
  check_bool "to_int on int" true (Sjson.to_int (Sjson.Int 3) = Some 3);
  check_bool "to_int on integral float" true (Sjson.to_int (Sjson.Float 4.0) = Some 4);
  check_bool "to_int on fractional float" true (Sjson.to_int (Sjson.Float 4.5) = None);
  check_bool "obj_or_empty on list" true (Sjson.obj_or_empty (Sjson.List []) = [])

(* ==================================================================== *)
(* 4. Wire protocol                                                     *)
(* ==================================================================== *)

let all_verbs =
  [ P.Ping; P.Estimate; P.Lint; P.Analyze; P.Dse_start; P.Dse_status; P.Dse_cancel; P.Shutdown ]

let all_codes =
  [
    P.Overloaded; P.Draining; P.Deadline_exceeded; P.Quarantined; P.Bad_request;
    P.Unknown_session; P.Internal;
  ]

let test_verb_and_code_names () =
  List.iter
    (fun v -> check_bool (P.verb_name v ^ " round-trips") true (P.verb_of_name (P.verb_name v) = Some v))
    all_verbs;
  List.iter
    (fun c ->
      check_bool
        (P.error_code_name c ^ " round-trips")
        true
        (P.error_code_of_name (P.error_code_name c) = Some c))
    all_codes;
  check_bool "unknown verb" true (P.verb_of_name "explode" = None);
  check_bool "unknown code" true (P.error_code_of_name "explode" = None)

let test_request_roundtrip () =
  let reqs =
    [
      P.request ~id:"a" P.Ping;
      P.request ~id:"b" ~deadline_ms:250 ~app:"dotproduct" ~params:[ ("par", 4); ("tile", 8) ]
        P.Estimate;
      P.request ~id:"c" ~session:"s1" ~seed:3 ~max_points:9 P.Dse_start;
      P.request ~id:"d" ~deadline_ms:0 ~session:"s1" P.Dse_status;
    ]
  in
  List.iter
    (fun r ->
      match P.parse_request (P.render_request r) with
      | Error msg -> Alcotest.failf "%s does not parse back: %s" (P.render_request r) msg
      | Ok r' -> check_bool (P.render_request r ^ " round-trips") true (r = r'))
    reqs

let test_batch_request_roundtrip () =
  let r =
    P.request ~id:"bb" ~deadline_ms:500
      ~specs:[ ("dotproduct", [ ("tile", 128); ("par", 4) ]); ("gemm", []) ]
      P.Estimate_batch
  in
  (match P.parse_request (P.render_request r) with
  | Error msg -> Alcotest.failf "batch request does not parse back: %s" msg
  | Ok r' -> check_bool "batch request round-trips" true (r = r'));
  (* The wire shape is the documented one: a "specs" list of objects,
     only present when non-empty. *)
  check_bool "renders a specs list" true (contains (P.render_request r) "\"specs\":[");
  check_bool "empty specs stays off the wire" false
    (contains (P.render_request (P.request ~id:"p" P.Ping)) "specs");
  let expect_error line fragment =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "%S should be rejected" line
    | Error msg ->
      check_bool (Printf.sprintf "%S error mentions %S" line fragment) true (contains msg fragment)
  in
  expect_error "{\"id\":\"x\",\"verb\":\"estimate_batch\",\"specs\":{}}" "must be a list";
  expect_error "{\"id\":\"x\",\"verb\":\"estimate_batch\",\"specs\":[{\"params\":{}}]}"
    "string field \"app\"";
  expect_error
    "{\"id\":\"x\",\"verb\":\"estimate_batch\",\"specs\":[{\"app\":\"d\",\"params\":{\"p\":\"q\"}}]}"
    "not an integer"

let test_request_parse_errors () =
  let expect_error line fragment =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "%S should be rejected" line
    | Error msg ->
      check_bool (Printf.sprintf "%S error mentions %S" line fragment) true (contains msg fragment)
  in
  expect_error "not json" "malformed JSON";
  expect_error "{\"verb\":\"ping\"}" "\"id\"";
  expect_error "{\"id\":\"x\"}" "\"verb\"";
  expect_error "{\"id\":\"x\",\"verb\":\"explode\"}" "unknown verb";
  (* The unknown-verb error enumerates what the server does speak. *)
  expect_error "{\"id\":\"x\",\"verb\":\"explode\"}" "dse_start";
  expect_error "{\"id\":\"x\",\"verb\":\"ping\",\"params\":{\"a\":\"b\"}}" "not an integer";
  expect_error "{\"id\":\"x\",\"verb\":\"ping\",\"deadline_ms\":-5}" ">= 0"

let test_reply_roundtrip () =
  let replies =
    [
      P.ok ~id:"r1" (Sjson.Obj [ ("pong", Sjson.Bool true) ]);
      P.error ~id:"r2" ~retry_after_ms:75 P.Overloaded "queue full";
      P.error ~id:"r3" ~chain:[ "crash one"; "crash two" ] P.Quarantined "parked";
      P.error ~id:"r4" P.Draining "bye";
    ]
  in
  List.iter
    (fun r ->
      match P.parse_reply (P.render_reply r) with
      | Error msg -> Alcotest.failf "%s does not parse back: %s" (P.render_reply r) msg
      | Ok r' -> check_bool (P.render_reply r ^ " round-trips") true (r = r'))
    replies;
  check_bool "overloaded is retryable" true
    (P.is_retryable (P.error ~id:"x" P.Overloaded ""));
  check_bool "draining is retryable" true (P.is_retryable (P.error ~id:"x" P.Draining ""));
  check_bool "quarantined is final" false (P.is_retryable (P.error ~id:"x" P.Quarantined ""));
  check_bool "ok is final" false (P.is_retryable (P.ok ~id:"x" Sjson.Null));
  (match P.parse_reply "{\"id\":\"x\",\"ok\":{},\"error\":{\"code\":\"internal\"}}" with
  | Ok _ -> Alcotest.fail "a reply with both ok and error must be rejected"
  | Error msg -> check_bool "mentions exclusivity" true (contains msg "exactly one"));
  match P.parse_reply "{\"id\":\"x\",\"error\":{\"message\":\"m\"}}" with
  | Ok _ -> Alcotest.fail "an error reply without a code must be rejected"
  | Error msg -> check_bool "mentions code" true (contains msg "code")

(* ==================================================================== *)
(* 5. Session store                                                     *)
(* ==================================================================== *)

let spec = { Session.s_app = "dotproduct"; s_seed = 1; s_max_points = 10; s_jobs = 1 }

let test_session_ids () =
  List.iter
    (fun id -> check_bool (Printf.sprintf "%S accepted" id) true (Session.id_ok id))
    [ "s1"; "a.b-c_d"; "ABC123"; String.make 64 'x' ];
  List.iter
    (fun id -> check_bool (Printf.sprintf "%S rejected" id) false (Session.id_ok id))
    [ ""; "."; ".."; "a/b"; "../x"; "a b"; "a\nb"; String.make 65 'x' ]

let test_session_states_from_disk () =
  let root = fresh_root "states" in
  check_bool "missing directory is unknown" true (Session.status ~root "none" = Session.Unknown);
  Session.write_spec ~root "a" spec;
  check_bool "spec alone is fresh" true (Session.status ~root "a" = Session.Fresh spec);
  check_bool "spec round-trips" true (Session.load_spec ~root "a" = Some spec);
  Session.mark_failed ~root "a" "boom";
  check_bool "error.json means failed" true (Session.status ~root "a" = Session.Failed (spec, "boom"));
  Session.mark_done ~root "a" (Sjson.Obj [ ("x", Sjson.Int 1) ]);
  check_bool "done.json wins over error.json" true
    (Session.status ~root "a" = Session.Done (spec, Sjson.Obj [ ("x", Sjson.Int 1) ]));
  Session.write_spec ~root "b" spec;
  check_bool "sessions listed sorted" true (Session.list ~root = [ "a"; "b" ]);
  rm_rf root

let test_store_retry_absorbs_faults () =
  with_faults @@ fun () ->
  (* Even a certain transient-store fault cannot lose session state: the
     bounded retry's final attempt always performs the real write. *)
  Faults.set_site "serve.session_store" 1.0;
  let root = fresh_root "store" in
  Session.write_spec ~root "r1" spec;
  check_bool "spec written through the faults" true (Session.load_spec ~root "r1" = Some spec);
  Session.mark_done ~root "r1" Sjson.Null;
  check_bool "done.json written through the faults" true
    (match Session.status ~root "r1" with Session.Done _ -> true | _ -> false);
  rm_rf root

(* ==================================================================== *)
(* 6. Supervisor robustness layers                                      *)
(* ==================================================================== *)

let test_basic_verbs () =
  with_sup (sup_config ()) @@ fun sup ->
  let p = payload (rpc sup (P.request ~id:"b-ping" P.Ping)) in
  check_bool "pong" true (bfield "pong" p);
  let p = payload (rpc sup (P.request ~id:"b-est" ~app:"dotproduct" P.Estimate)) in
  check_str "app echoed" "dotproduct" (sfield "app" p);
  check_bool "full fidelity when idle" false (bfield "degraded" p);
  check_bool "defaulted params echoed" true (Sjson.obj_or_empty (field "params" p) <> []);
  check_bool "area present" true (ifield "alms" (field "area" p) >= 0);
  ignore (bfield "fits" p);
  let p = payload (rpc sup (P.request ~id:"b-lint" ~app:"dotproduct" P.Lint)) in
  ignore (bfield "clean" p);
  check_bool "lint report embedded" true (Sjson.member "report" p <> None);
  let p = payload (rpc sup (P.request ~id:"b-an" ~app:"dotproduct" P.Analyze)) in
  ignore (bfield "clean" p);
  check_bool "absint report embedded" true (Sjson.member "absint" p <> None);
  check_bool "dependence report embedded" true (Sjson.member "dependence" p <> None)

let test_estimate_batch () =
  with_sup (sup_config ()) @@ fun sup ->
  let specs =
    [
      ("dotproduct", [ ("tile", 128); ("par", 4) ]);
      ("dotproduct", [ ("tile", 128); ("par", 4) ]);
      ("nosuchapp", []);
    ]
  in
  let p = payload (rpc sup (P.request ~id:"batch-1" ~specs P.Estimate_batch)) in
  check_int "count covers every spec" 3 (ifield "count" p);
  check_int "only the bad spec failed" 1 (ifield "failed" p);
  (match Sjson.to_list (field "items" p) with
  | Some [ ok1; ok2; bad ] ->
    let e1 = field "ok" ok1 and e2 = field "ok" ok2 in
    check_str "item app echoed" "dotproduct" (sfield "app" e1);
    check_bool "item carries area" true (ifield "alms" (field "area" e1) >= 0);
    check_bool "item carries fidelity flag" false (bfield "degraded" e1);
    (* Same design twice in one batch: the second answer comes from the
       shared Eval cache and must be byte-identical to the first. *)
    check_str "identical specs answer identically" (Sjson.render e1) (Sjson.render e2);
    let err = field "error" bad in
    check_str "bad item is typed per-item" "bad_request" (sfield "code" err);
    check_bool "item error names the benchmark" true
      (contains (sfield "message" err) "unknown benchmark")
  | Some items -> Alcotest.failf "expected 3 items, got %d" (List.length items)
  | None -> Alcotest.fail "items is not a list");
  (* One bad item never fails the envelope, but an empty batch does. *)
  let e = err_of (rpc sup (P.request ~id:"batch-2" P.Estimate_batch)) in
  check_bool "empty specs is a typed bad_request" true
    (e.P.err_code = P.Bad_request && contains e.P.err_message "specs")

let test_bad_requests_are_typed () =
  with_sup (sup_config ()) @@ fun sup ->
  let e = err_of (rpc sup (P.request ~id:"bad-1" P.Estimate)) in
  check_bool "missing app" true (e.P.err_code = P.Bad_request && contains e.P.err_message "app");
  let e = err_of (rpc sup (P.request ~id:"bad-2" ~app:"nosuchapp" P.Estimate)) in
  check_bool "unknown benchmark" true
    (e.P.err_code = P.Bad_request && contains e.P.err_message "unknown benchmark");
  let e = err_of (rpc sup (P.request ~id:"bad-3" ~session:"../evil" P.Dse_status)) in
  check_bool "bad session id" true
    (e.P.err_code = P.Bad_request && contains e.P.err_message "session id");
  let e = err_of (rpc sup (P.request ~id:"bad-4" ~session:"ghost" P.Dse_status)) in
  check_bool "unknown session is typed" true (e.P.err_code = P.Unknown_session)

let test_idempotent_reply_cache () =
  with_sup (sup_config ()) @@ fun sup ->
  let req = P.request ~id:"dup-1" ~app:"dotproduct" P.Estimate in
  let r1 = rpc sup req in
  let r2 = rpc sup req in
  check_str "a retried id returns the cached bytes" (P.render_reply r1) (P.render_reply r2)

let test_admission_control () =
  with_sup ~start:false (sup_config ~queue_capacity:2 ()) @@ fun sup ->
  let put1, wait1 = inbox () and put2, wait2 = inbox () and put3, wait3 = inbox () in
  Supervisor.submit sup (P.request ~id:"adm-1" P.Ping) ~reply_to:put1;
  Supervisor.submit sup (P.request ~id:"adm-2" P.Ping) ~reply_to:put2;
  check_int "queue holds the capacity" 2 (Supervisor.queue_depth sup);
  Supervisor.submit sup (P.request ~id:"adm-3" P.Ping) ~reply_to:put3;
  let e = err_of (wait3 ()) in
  check_bool "third is shed, typed" true (e.P.err_code = P.Overloaded);
  check_bool "shed reply carries a backoff hint" true (e.P.err_retry_after_ms = Some 75);
  check_bool "message says full" true (contains e.P.err_message "full");
  Supervisor.start sup;
  check_bool "first queued request completes" true (bfield "pong" (payload (wait1 ())));
  check_bool "second queued request completes" true (bfield "pong" (payload (wait2 ())));
  (* A shed is never cached against the id: once the queue drains, the
     same id is admitted and executed. *)
  let put3b, wait3b = inbox () in
  Supervisor.submit sup (P.request ~id:"adm-3" P.Ping) ~reply_to:put3b;
  check_bool "shed id succeeds on retry" true (bfield "pong" (payload (wait3b ())))

let test_deadline_exceeded () =
  with_sup ~start:false (sup_config ()) @@ fun sup ->
  let put, wait = inbox () in
  let req = P.request ~id:"dl-1" ~deadline_ms:5 ~app:"dotproduct" P.Estimate in
  Supervisor.submit sup req ~reply_to:put;
  Unix.sleepf 0.05;
  Supervisor.start sup;
  let e = err_of (wait ()) in
  check_bool "expired work answers deadline_exceeded" true (e.P.err_code = P.Deadline_exceeded);
  check_bool "names the budget" true (contains e.P.err_message "5 ms");
  (* Expiry is a final reply: the retried id gets the cached verdict. *)
  let put2, wait2 = inbox () in
  Supervisor.submit sup req ~reply_to:put2;
  check_bool "expiry is cached" true ((err_of (wait2 ())).P.err_code = P.Deadline_exceeded);
  (* A generous deadline is not in the way. *)
  let put3, wait3 = inbox () in
  Supervisor.submit sup (P.request ~id:"dl-2" ~deadline_ms:60_000 P.Ping) ~reply_to:put3;
  check_bool "live deadline passes" true (bfield "pong" (payload (wait3 ())))

let test_degraded_under_queue_depth () =
  with_sup ~start:false (sup_config ~degrade_depth:1 ()) @@ fun sup ->
  let put1, wait1 = inbox () and put2, wait2 = inbox () in
  Supervisor.submit sup (P.request ~id:"dg-1" ~app:"dotproduct" P.Estimate) ~reply_to:put1;
  Supervisor.submit sup (P.request ~id:"dg-2" ~app:"dotproduct" P.Estimate) ~reply_to:put2;
  Supervisor.start sup;
  let p1 = payload (wait1 ()) and p2 = payload (wait2 ()) in
  (* dg-1 dispatched with dg-2 still queued: depth 1 >= degrade_depth. *)
  check_bool "deep queue degrades to the analytical model" true (bfield "degraded" p1);
  check_bool "drained queue restores full fidelity" false (bfield "degraded" p2);
  check_bool "degraded estimate is still usable" true (ifield "alms" (field "area" p1) >= 0)

let test_degraded_on_nn_fallback () =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  with_faults @@ fun () ->
  Faults.set_site "estimator.nn_correction" 1.0;
  with_sup (sup_config ~nn_fallback_limit:1 ()) @@ fun sup ->
  let p1 = payload (rpc sup (P.request ~id:"nn-1" ~app:"dotproduct" P.Estimate)) in
  check_bool "first estimate precedes the trip" false (bfield "degraded" p1);
  let p2 = payload (rpc sup (P.request ~id:"nn-2" ~app:"dotproduct" P.Estimate)) in
  check_bool "fallback trip degrades later estimates" true (bfield "degraded" p2);
  (* Both answered from the raw analytical model (the first through the
     estimator's own fallback), so the areas agree. *)
  check_str "areas agree across the degradation paths"
    (Sjson.render (field "area" p1))
    (Sjson.render (field "area" p2))

let test_quarantine_after_repeated_crashes () =
  with_faults @@ fun () ->
  with_sup (sup_config ~quarantine_threshold:3 ()) @@ fun sup ->
  Faults.set_site "serve.handler" 1.0;
  let r = rpc sup (P.request ~id:"poison" P.Ping) in
  let e = err_of r in
  check_bool "parked as quarantined" true (e.P.err_code = P.Quarantined);
  check_int "one chain entry per crash" 3 (List.length e.P.err_chain);
  List.iter
    (fun m -> check_bool "chain names the crash site" true (contains m "serve.handler"))
    e.P.err_chain;
  check_bool "message says parked" true (contains e.P.err_message "parked");
  Faults.reset ();
  (* The verdict is final: retrying the id returns the cached park, it
     does not re-execute even now that the handler would succeed. *)
  let r2 = rpc sup (P.request ~id:"poison" P.Ping) in
  check_str "quarantine is cached" (P.render_reply r) (P.render_reply r2);
  (* Other ids were never poisoned. *)
  check_bool "healthy traffic unaffected" true
    (bfield "pong" (payload (rpc sup (P.request ~id:"healthy" P.Ping))))

let test_draining_refuses_new_work () =
  let root = fresh_root "drainsess" in
  let sup = Supervisor.create (sup_config ~root ~checkpoint_every:3 ()) in
  Supervisor.start sup;
  ignore
    (payload
       (rpc sup
          (P.request ~id:"dr-1" ~app:"dotproduct" ~session:"d1" ~seed:11 ~max_points:150
             P.Dse_start)));
  let p = payload (rpc sup (P.request ~id:"dr-2" P.Shutdown)) in
  check_bool "shutdown acknowledges" true (bfield "draining" p);
  check_bool "flag visible" true (Supervisor.draining sup);
  let put, wait = inbox () in
  Supervisor.submit sup (P.request ~id:"dr-3" P.Ping) ~reply_to:put;
  check_bool "new work refused while draining" true ((err_of (wait ())).P.err_code = P.Draining);
  Supervisor.drain sup;
  (* Graceful shutdown cancelled the sweep; its state is on disk and the
     session is resumable, not lost and not marked done. *)
  (match Session.status ~root "d1" with
  | Session.Interrupted (_, n, torn) ->
    check_bool "entries non-negative" true (n >= 0);
    check_bool "checkpoint not torn" false torn
  | Session.Fresh _ -> ()
  | st ->
    Alcotest.failf "expected a resumable session after drain, got %s"
      (match st with
      | Session.Done _ -> "done"
      | Session.Failed _ -> "failed"
      | Session.Unknown -> "unknown"
      | _ -> "?"));
  rm_rf root

(* ==================================================================== *)
(* 7. Sessions end to end through the supervisor                        *)
(* ==================================================================== *)

let wait_done sup sid =
  poll_until ~timeout_s:120.0 (fun () ->
      match (rpc sup (P.request ~id:(fresh_id "st") ~session:sid P.Dse_status)).P.r_body with
      | Ok p when sfield "state" p = "done" -> Some (field "summary" p)
      | _ -> None)

let test_session_lifecycle_and_golden () =
  let root = fresh_root "sess" in
  with_sup (sup_config ~root ~checkpoint_every:5 ()) @@ fun sup ->
  let seed = 11 and max_points = 40 in
  let sid = "s1" in
  let start id = P.request ~id ~app:"dotproduct" ~session:sid ~seed ~max_points P.Dse_start in
  let p = payload (rpc sup (start "sl-1")) in
  check_str "starts running" "running" (sfield "state" p);
  check_bool "started" true (bfield "started" p);
  check_int "nothing to resume" 0 (ifield "resumed_entries" p);
  let summary = wait_done sup sid in
  check_int "sampled the budget" max_points (ifield "sampled" summary);
  check_int "processed everything" max_points (ifield "processed" summary);
  check_bool "summary has a best point" true (Sjson.member "best_cycles" summary <> None);
  (* Starting a finished session replies from disk without re-running. *)
  let p = payload (rpc sup (start "sl-2")) in
  check_str "already done" "done" (sfield "state" p);
  check_bool "not restarted" false (bfield "started" p);
  (* A conflicting spec for the same session id is refused. *)
  let e =
    err_of (rpc sup (P.request ~id:"sl-3" ~app:"dotproduct" ~session:sid ~seed:99 ~max_points P.Dse_start))
  in
  check_bool "spec mismatch refused" true
    (e.P.err_code = P.Bad_request && contains e.P.err_message "already exists");
  (* Cancel on a finished sweep is a reported no-op. *)
  let p = payload (rpc sup (P.request ~id:"sl-4" ~session:sid P.Dse_cancel)) in
  check_bool "nothing to cancel" false (bfield "cancelled" p);
  check_str "still done" "done" (sfield "state" p);
  (* The sweep the server ran left exactly the bytes a direct run of the
     engine leaves: serving adds no nondeterminism. *)
  let golden = tmp "sess_golden.jsonl" in
  (try Sys.remove golden with Sys_error _ -> ());
  let app = Registry.find "dotproduct" in
  let sizes = app.App.paper_sizes in
  let cfg =
    Explore.Config.make ~seed ~max_points ~jobs:1 ~checkpoint:golden ~checkpoint_every:5
      ~tick_every:0 ()
  in
  ignore
    (Explore.run cfg (Eval.create (Lazy.force estimator))
       ~space:(app.App.space sizes)
       ~generate:(fun pt -> app.App.generate ~sizes ~params:pt));
  check_str "server checkpoint matches the direct-run golden bytes" (read_file golden)
    (read_file (Session.checkpoint_path ~root sid));
  Sys.remove golden;
  rm_rf root

let test_cancel_then_resume () =
  let root = fresh_root "cancel" in
  with_sup (sup_config ~root ~checkpoint_every:3 ()) @@ fun sup ->
  let seed = 11 and max_points = 150 in
  let sid = "c1" in
  let start id = P.request ~id ~app:"dotproduct" ~session:sid ~seed ~max_points P.Dse_start in
  ignore (payload (rpc sup (start "cr-1")));
  let p = payload (rpc sup (P.request ~id:"cr-2" ~session:sid P.Dse_cancel)) in
  check_bool "cancelled the running sweep" true (bfield "cancelled" p);
  let state = sfield "state" p in
  check_bool "parked, not done" true (state = "interrupted" || state = "fresh");
  let p = payload (rpc sup (start "cr-3")) in
  check_bool "resume restarts" true (bfield "started" p);
  let resumed_entries = ifield "resumed_entries" p in
  let summary = wait_done sup sid in
  check_int "processed the full budget after resume" max_points (ifield "processed" summary);
  check_int "reused exactly the cancelled prefix" resumed_entries (ifield "resumed" summary);
  rm_rf root

(* ==================================================================== *)
(* 8. The socket front end                                              *)
(* ==================================================================== *)

let raw_roundtrip socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let data = Bytes.of_string (line ^ "\n") in
      let sent = ref 0 in
      while !sent < Bytes.length data do
        sent := !sent + Unix.write fd data !sent (Bytes.length data - !sent)
      done;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec read_line () =
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> String.sub (Buffer.contents buf) 0 i
        | None ->
          if Unix.gettimeofday () > deadline then Alcotest.fail "no reply line within 30 s"
          else (
            match Unix.select [ fd ] [] [] 1.0 with
            | [], _, _ -> read_line ()
            | _ ->
              (match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Alcotest.fail "connection closed before reply"
              | n -> Buffer.add_subbytes buf chunk 0 n);
              read_line ())
      in
      read_line ())

let test_socket_end_to_end () =
  let socket = tmp "e2e.sock" in
  let root = fresh_root "e2e" in
  with_server ~socket (sup_config ~root ()) @@ fun client ->
  let p = payload (must_call client (P.request ~id:"e2e-ping" P.Ping)) in
  check_bool "pong over the wire" true (bfield "pong" p);
  let r = must_call client (P.request ~id:"e2e-est" ~app:"dotproduct" P.Estimate) in
  let p = payload r in
  check_str "estimate over the wire" "dotproduct" (sfield "app" p);
  ignore (bfield "fits" p);
  (* A malformed line cannot be attributed to an id, but still gets a
     typed reply instead of silence or a dropped connection. *)
  (match P.parse_reply (raw_roundtrip socket "this is not json") with
  | Ok { P.r_id = "?"; r_body = Error e } ->
    check_bool "malformed line answers bad_request" true (e.P.err_code = P.Bad_request)
  | Ok r -> Alcotest.failf "unexpected reply to garbage: %s" (P.render_reply r)
  | Error msg -> Alcotest.failf "reply to garbage does not parse: %s" msg);
  (* Idempotency holds across connections: a retried id returns the
     original bytes without re-executing. *)
  let r2 = must_call client (P.request ~id:"e2e-est" ~app:"dotproduct" P.Estimate) in
  check_str "retry across connections is cached" (P.render_reply r) (P.render_reply r2);
  let p = payload (must_call client (P.request ~id:"e2e-bye" P.Shutdown)) in
  check_bool "shutdown acknowledged" true (bfield "draining" p);
  rm_rf root

let test_socket_stale_file_replaced () =
  let socket = tmp "stale.sock" in
  let root = fresh_root "stale" in
  (* Crash residue: a dead socket file where the server wants to bind. *)
  (try Sys.remove socket with Sys_error _ -> ());
  let oc = open_out socket in
  close_out oc;
  with_server ~socket (sup_config ~root ()) @@ fun client ->
  check_bool "server replaced the stale socket file" true
    (bfield "pong" (payload (must_call client (P.request ~id:"stale-1" P.Ping))));
  ignore (must_call client (P.request ~id:"stale-bye" P.Shutdown));
  rm_rf root

(* ==================================================================== *)
(* 9. Acceptance soak: 5% mixed faults, exactly one typed reply each    *)
(* ==================================================================== *)

let test_fault_soak_exactly_one_reply () =
  with_faults @@ fun () ->
  let socket = tmp "soak.sock" in
  let root = fresh_root "soak" in
  Faults.configure ~seed:9 ~p:0.0 ();
  List.iter
    (fun s -> Faults.set_site s 0.05)
    [ "serve.handler"; "serve.sock_read"; "serve.sock_write"; "serve.session_store" ];
  with_server ~socket (sup_config ~root ~checkpoint_every:3 ()) @@ fun client ->
  let n = 50 in
  let replies = Hashtbl.create n in
  for i = 0 to n - 1 do
    let id = Printf.sprintf "soak-%d" i in
    let req, expected =
      match i mod 5 with
      | 0 -> (P.request ~id P.Ping, `Ok)
      | 1 -> (P.request ~id ~app:"dotproduct" P.Estimate, `Ok)
      | 2 -> (P.request ~id ~app:"dotproduct" P.Lint, `Ok)
      | 3 -> (P.request ~id ~app:"nosuchapp" P.Estimate, `Err P.Bad_request)
      | _ -> (P.request ~id ~session:(Printf.sprintf "missing-%d" i) P.Dse_status, `Err P.Unknown_session)
    in
    let reply = must_call client req in
    Hashtbl.replace replies id (Option.value (Hashtbl.find_opt replies id) ~default:0 + 1);
    check_str (id ^ " echoes its id") id reply.P.r_id;
    match (expected, reply.P.r_body) with
    | `Ok, Ok _ -> ()
    | `Err code, Error e when e.P.err_code = code -> ()
    (* A request whose handler the fault stream crashed three times in a
       row is parked — still exactly one typed reply, never silence. *)
    | _, Error e when e.P.err_code = P.Quarantined -> ()
    | `Ok, Error e ->
      Alcotest.failf "%s: expected ok, got %s: %s" id (P.error_code_name e.P.err_code)
        e.P.err_message
    | `Err want, Error e ->
      Alcotest.failf "%s: expected %s, got %s" id (P.error_code_name want)
        (P.error_code_name e.P.err_code)
    | `Err want, Ok _ -> Alcotest.failf "%s: expected %s, got ok" id (P.error_code_name want)
  done;
  check_int "every request got exactly one reply" n (Hashtbl.length replies);
  Hashtbl.iter
    (fun id c -> if c <> 1 then Alcotest.failf "id %s got %d replies" id c)
    replies;
  (* A session runs to completion through the same fault stream — the
     store faults cost retries, never state. *)
  let sid = "soak-session" in
  ignore
    (must_call client
       (P.request ~id:"soak-dse" ~app:"dotproduct" ~session:sid ~seed:11 ~max_points:15
          P.Dse_start));
  poll_until ~timeout_s:120.0 (fun () ->
      match
        (must_call client (P.request ~id:(fresh_id "soak-st") ~session:sid P.Dse_status)).P.r_body
      with
      | Ok p when sfield "state" p = "done" -> Some ()
      | _ -> None);
  let p = payload (must_call client (P.request ~id:"soak-bye" P.Shutdown)) in
  check_bool "drained under faults" true (bfield "draining" p);
  rm_rf root

(* ==================================================================== *)

let () =
  Alcotest.run "serve"
    [
      (* Forking suites first: see the header comment. *)
      ( "recovery",
        [
          Alcotest.test_case "SIGKILL + restart + resume is byte-identical" `Quick
            test_kill_resume_byte_identical;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unknown subcommand" `Quick test_cli_unknown_subcommand;
          Alcotest.test_case "unknown flag" `Quick test_cli_unknown_flag;
          Alcotest.test_case "unknown subcommand flag" `Quick test_cli_unknown_sub_flag;
          Alcotest.test_case "unknown benchmark" `Quick test_cli_unknown_benchmark;
          Alcotest.test_case "client without a server" `Quick test_cli_client_unreachable;
          Alcotest.test_case "valid command still exits 0" `Quick test_cli_success_still_zero;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "raw splice" `Quick test_json_raw_splice;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "verb and code names" `Quick test_verb_and_code_names;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "batch request roundtrip" `Quick test_batch_request_roundtrip;
          Alcotest.test_case "request parse errors" `Quick test_request_parse_errors;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
        ] );
      ( "session",
        [
          Alcotest.test_case "id validation" `Quick test_session_ids;
          Alcotest.test_case "states derived from disk" `Quick test_session_states_from_disk;
          Alcotest.test_case "store retry absorbs faults" `Quick test_store_retry_absorbs_faults;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "basic verbs" `Quick test_basic_verbs;
          Alcotest.test_case "estimate batch" `Quick test_estimate_batch;
          Alcotest.test_case "bad requests are typed" `Quick test_bad_requests_are_typed;
          Alcotest.test_case "idempotent reply cache" `Quick test_idempotent_reply_cache;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "degraded under queue depth" `Quick test_degraded_under_queue_depth;
          Alcotest.test_case "degraded on nn fallback" `Quick test_degraded_on_nn_fallback;
          Alcotest.test_case "quarantine after crashes" `Quick test_quarantine_after_repeated_crashes;
          Alcotest.test_case "draining refuses new work" `Quick test_draining_refuses_new_work;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "lifecycle + golden bytes" `Quick test_session_lifecycle_and_golden;
          Alcotest.test_case "cancel then resume" `Quick test_cancel_then_resume;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "stale socket file replaced" `Quick test_socket_stale_file_replaced;
        ] );
      ( "soak",
        [
          Alcotest.test_case "5% faults, one typed reply each" `Quick
            test_fault_soak_exactly_one_reply;
        ] );
    ]
