(* The symbolic legality layer: expression/fit/predicate unit laws, the
   differential oracle (no symbolic [Legal]/[Refuted] verdict may ever
   contradict concrete analysis, over every registry app and seeded
   random bindings), the [Sym_pruned] checkpoint round-trip, parallel /
   chunked byte-identity with the gate on, and the gate's point: a cold
   sweep with the gate on elaborates measurably fewer designs than
   [--no-symbolic] on an app with refutable regions.

   Runs under both `dune runtest` and the focused `dune build @symbolic`. *)

module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Outcome = Dhdl_dse.Outcome
module Space = Dhdl_dse.Space
module Symgate = Dhdl_dse.Symgate
module Symbolic = Dhdl_absint.Symbolic
module Absint = Dhdl_absint.Absint
module Dependence = Dhdl_absint.Dependence
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_symbolic_" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let app name = Registry.find name
let space_of a = a.App.space a.App.paper_sizes
let generate_of a p = a.App.generate ~sizes:a.App.paper_sizes ~params:p

(* ------------------------------------------------------------------ *)
(* Expression and predicate laws                                       *)
(* ------------------------------------------------------------------ *)

let test_expr_laws () =
  let open Symbolic in
  let x = Expr.var "x" and y = Expr.var "y" in
  let e = Expr.add (Expr.scale (Q.of_int 3) x) (Expr.sub y (Expr.of_int 7)) in
  (* 3x + y - 7 at x=5, y=2 *)
  (match Expr.eval_int e [ ("x", 5); ("y", 2) ] with
  | Some v -> check_int "3x + y - 7 evaluates" 10 v
  | None -> Alcotest.fail "eval returned None on fully bound expr");
  check_bool "missing param evaluates to None" true (Expr.eval e [ ("x", 5) ] = None);
  check_bool "x + y = y + x" true (Expr.equal (Expr.add x y) (Expr.add y x));
  check_bool "x - x = 0" true (Expr.equal (Expr.sub x x) Expr.zero);
  (* Rational coefficients stay exact: (1/2)x at x=4 is 2. *)
  let half_x = Expr.scale (Q.make 1 2) x in
  check_bool "(1/2)x at x=4" true (Expr.eval_int half_x [ ("x", 4) ] = Some 2);
  check_bool "(1/2)x at x=3 is not integral" true (Expr.eval_int half_x [ ("x", 3) ] = None)

let test_fit_recovers_affine () =
  let open Symbolic in
  (* Observations of 2a + 3b + 5 over a probe grid. *)
  let obs =
    List.concat_map
      (fun a -> List.map (fun b -> ([ ("a", a); ("b", b) ], (2 * a) + (3 * b) + 5)) [ 1; 2; 7 ])
      [ 0; 3; 10 ]
  in
  (match fit ~params:[ "a"; "b" ] obs with
  | None -> Alcotest.fail "fit failed on an exactly affine slot"
  | Some e ->
    List.iter
      (fun (b, v) ->
        check_bool "fitted expr reproduces every observation" true
          (Expr.eval_int e b = Some v))
      obs;
    check_bool "fitted expr extrapolates" true
      (Expr.eval_int e [ ("a", 100); ("b", 1) ] = Some 208));
  (* A non-affine slot (a*b) must be rejected, not approximated. *)
  let bad =
    List.concat_map
      (fun a -> List.map (fun b -> ([ ("a", a); ("b", b) ], a * b)) [ 1; 2; 5 ])
      [ 1; 3; 4 ]
  in
  check_bool "fit rejects a non-affine slot" true (fit ~params:[ "a"; "b" ] bad = None)

let test_predicate_semantics () =
  let open Symbolic in
  let p = Expr.var "p" and k = Expr.of_int 8 in
  let sys =
    {
      sy_skeleton = "test";
      sy_params = [ "p"; "t" ];
      sy_pinned = [ ("meta", 1) ];
      sy_checks =
        [
          {
            ck_code = "L013";
            ck_site = "pipe t";
            ck_legal = Some [ Pos (Le (p, k)) ];
            ck_refutes =
              [ { cl_desc = "window shares a cell"; cl_lits = [ Pos (Le (Expr.of_int 9, p)) ] } ];
            ck_assumed = false;
          };
          {
            ck_code = "L009";
            ck_site = "tiling";
            ck_legal = Some [ Pos (Divides (Expr.var "t", Expr.of_int 96)) ];
            ck_refutes =
              [
                {
                  cl_desc = "tile does not divide extent";
                  cl_lits = [ Neg (Divides (Expr.var "t", Expr.of_int 96)) ];
                };
              ];
            ck_assumed = false;
          };
        ];
      sy_legal_capable = true;
      sy_probes = 9;
      sy_note = "";
    }
  in
  let v b = Predicate.eval sys b in
  (match v [ ("p", 4); ("t", 32); ("meta", 1) ] with
  | Legal -> ()
  | _ -> Alcotest.fail "in-bounds dividing point must be Legal");
  (match v [ ("p", 12); ("t", 32); ("meta", 1) ] with
  | Refuted { code; _ } -> Alcotest.(check string) "refuted with the check's code" "L013" code
  | _ -> Alcotest.fail "p=12 must be Refuted");
  (match v [ ("p", 4); ("t", 7); ("meta", 1) ] with
  | Refuted { code; _ } -> Alcotest.(check string) "divisibility refutes" "L009" code
  | _ -> Alcotest.fail "t=7 must be Refuted");
  (* Pinned mismatch and missing params both fall to Unknown, never to a
     decided verdict. *)
  (match v [ ("p", 4); ("t", 32); ("meta", 0) ] with
  | Unknown _ -> ()
  | _ -> Alcotest.fail "pinned mismatch must be Unknown");
  (match v [ ("p", 4); ("meta", 1) ] with
  | Unknown _ -> ()
  | _ -> Alcotest.fail "missing param must be Unknown");
  (* An incapable system still refutes but never proves. *)
  let sys' = { sys with sy_legal_capable = false; sy_note = "limited" } in
  (match Predicate.eval sys' [ ("p", 4); ("t", 32); ("meta", 1) ] with
  | Unknown _ -> ()
  | _ -> Alcotest.fail "incapable system must not answer Legal");
  match Predicate.eval sys' [ ("p", 12); ("t", 32); ("meta", 1) ] with
  | Refuted _ -> ()
  | _ -> Alcotest.fail "incapable system still refutes"

(* ------------------------------------------------------------------ *)
(* The differential oracle                                             *)
(* ------------------------------------------------------------------ *)

(* Replay symbolic verdicts against the concrete passes: [Refuted
   {code}] must be confirmed by a concrete error with that code, [Legal]
   by a fully clean concrete analysis. [Unknown] promises nothing.
   Soundness of the whole PR rests here, so every registry app is
   sworn in over a seed disjoint from the probe seed. *)
let oracle_points = 220
let oracle_seed = 90210

let concrete_flags d =
  let asum = Absint.summarize (Absint.analyze d) in
  let dsum = Dependence.summarize (Dependence.analyze d) in
  ( asum.Absint.s_bounds_refuted > 0,
    asum.Absint.s_banks_conflict > 0,
    dsum.Dependence.s_refuted > 0 )

let test_differential_oracle () =
  let legal_total = ref 0 and refuted_total = ref 0 and unknown_total = ref 0 in
  let per_app = Hashtbl.create 8 in
  List.iter
    (fun (a : App.t) ->
      let space = space_of a in
      let generate = generate_of a in
      let gate = Symgate.derive ~space ~generate () in
      let pts = Space.sample space ~seed:oracle_seed ~max_points:oracle_points in
      check_bool
        (Printf.sprintf "%s: oracle has a non-trivial sample" a.App.name)
        true
        (List.length pts >= 50);
      let legal = ref 0 and refuted = ref 0 in
      List.iter
        (fun p ->
          match Symgate.verdict gate p with
          | Symbolic.Unknown _ -> incr unknown_total
          | Symbolic.Refuted { code; witness } -> (
            incr refuted;
            incr refuted_total;
            let oob, bank, dep = concrete_flags (generate p) in
            let confirmed =
              match code with
              | "L009" -> oob
              | "L010" -> bank
              | "L013" -> dep
              | _ -> false
            in
            if not confirmed then
              Alcotest.fail
                (Printf.sprintf "%s: symbolic Refuted [%s] (%s) not confirmed concretely"
                   a.App.name code witness))
          | Symbolic.Legal ->
            incr legal;
            incr legal_total;
            let oob, bank, dep = concrete_flags (generate p) in
            if oob || bank || dep then
              Alcotest.fail
                (Printf.sprintf
                   "%s: symbolic Legal contradicted concretely (oob=%b bank=%b dep=%b)"
                   a.App.name oob bank dep))
        pts;
      Hashtbl.replace per_app a.App.name (!legal, !refuted))
    Registry.all;
  check_int "all seven registry apps sworn in" 7 (Hashtbl.length per_app);
  (* Non-vacuity: the oracle must have exercised both decided verdicts —
     kmeans has a refutable region (parDist beyond k), and the streaming
     apps prove Legal outright. *)
  let legal_of n = fst (Hashtbl.find per_app n) in
  let refuted_of n = snd (Hashtbl.find per_app n) in
  check_bool "kmeans has symbolically refuted points" true (refuted_of "kmeans" > 0);
  check_bool "dotproduct has symbolically proved points" true (legal_of "dotproduct" > 0);
  check_bool "oracle saw Legal verdicts" true (!legal_total > 0);
  check_bool "oracle saw Refuted verdicts" true (!refuted_total > 0)

(* ------------------------------------------------------------------ *)
(* Sweep integration: Sym_pruned, checkpoints, byte identity           *)
(* ------------------------------------------------------------------ *)

let kmeans_sweep ?(points = 120) ?(jobs = 1) ?(chunk = 16) ?(symbolic = true) ?checkpoint
    ?(resume = false) ev =
  let a = app "kmeans" in
  let cfg =
    Explore.Config.make ~seed:2016 ~max_points:points ~symbolic ~jobs ~chunk ?checkpoint ~resume
      ()
  in
  Explore.run cfg ev ~space:(space_of a) ~generate:(generate_of a)

let eval_points (r : Explore.result) = List.map (fun e -> e.Outcome.point) r.Explore.evaluations

let test_sym_pruned_checkpoint_roundtrip () =
  let ev = Eval.create (Lazy.force estimator) in
  let path = tmp "roundtrip.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let r1 = kmeans_sweep ~checkpoint:path ev in
  check_bool "gate prunes points before elaboration" true (r1.Explore.sym_pruned > 0);
  check_bool "checkpoint mentions sym_pruned entries" true
    (let s = read_file path in
     let needle = "\"kind\":\"sym_pruned\"" in
     let nlen = String.length needle in
     let rec find i =
       i + nlen <= String.length s && (String.sub s i nlen = needle || find (i + 1))
     in
     find 0);
  (* Resuming replays every entry (including Sym_pruned) from the file
     and recomputes nothing. *)
  let r2 = kmeans_sweep ~checkpoint:path ~resume:true ev in
  check_int "resume reuses every entry" r2.Explore.processed r2.Explore.resumed;
  check_int "resume keeps sym_pruned" r1.Explore.sym_pruned r2.Explore.sym_pruned;
  check_bool "resume reproduces the evaluations" true (eval_points r1 = eval_points r2);
  Sys.remove path

let test_gate_byte_identity_across_jobs_chunk () =
  let ev = Eval.create (Lazy.force estimator) in
  let files =
    List.map
      (fun (jobs, chunk) ->
        let path = tmp (Printf.sprintf "ident_j%d_c%d.jsonl" jobs chunk) in
        if Sys.file_exists path then Sys.remove path;
        let r = kmeans_sweep ~jobs ~chunk ~checkpoint:path ev in
        check_bool "parallel sweep still sym-prunes" true (r.Explore.sym_pruned > 0);
        path)
      [ (1, 16); (2, 16); (2, 7); (4, 3) ]
  in
  match List.map read_file files with
  | [] -> assert false
  | first :: rest ->
    List.iteri
      (fun i other ->
        check_bool
          (Printf.sprintf "checkpoint %d is byte-identical to the sequential one" (i + 1))
          true (String.equal first other))
      rest;
    List.iter Sys.remove files

let test_gate_reduces_elaborations () =
  let ev = Eval.create (Lazy.force estimator) in
  let count = ref 0 in
  let a = app "kmeans" in
  let counted p =
    incr count;
    generate_of a p
  in
  let run ~symbolic =
    count := 0;
    let cfg = Explore.Config.make ~seed:2016 ~max_points:300 ~symbolic () in
    let r = Explore.run cfg ev ~space:(space_of a) ~generate:counted in
    (r, !count)
  in
  let r_on, gen_on = run ~symbolic:true in
  let r_off, gen_off = run ~symbolic:false in
  (* The gate's entire point: strictly fewer elaborations, identical
     survivors. Probe elaborations count against the gate, so this also
     checks that derivation amortizes at sweep scale. *)
  check_bool
    (Printf.sprintf "gate on generates less (on=%d off=%d)" gen_on gen_off)
    true (gen_on < gen_off);
  check_bool "gate on sym-prunes" true (r_on.Explore.sym_pruned > 0);
  check_int "gate off never sym-prunes" 0 r_off.Explore.sym_pruned;
  check_bool "same evaluated points either way" true (eval_points r_on = eval_points r_off);
  check_int "same total pruned either way"
    (r_off.Explore.lint_pruned + r_off.Explore.absint_pruned + r_off.Explore.dep_pruned)
    (r_on.Explore.lint_pruned + r_on.Explore.absint_pruned + r_on.Explore.dep_pruned
   + r_on.Explore.sym_pruned)

let test_gate_requires_both_passes () =
  (* With either analysis pass off the gate must stand down: pruning
     points the concrete pipeline would have kept changes results. *)
  let ev = Eval.create (Lazy.force estimator) in
  let a = app "kmeans" in
  let run cfg = Explore.run cfg ev ~space:(space_of a) ~generate:(generate_of a) in
  let no_absint =
    run (Explore.Config.make ~seed:2016 ~max_points:80 ~absint:false ~symbolic:true ())
  in
  check_int "no absint => no symbolic pruning" 0 no_absint.Explore.sym_pruned;
  let no_lint =
    run (Explore.Config.make ~seed:2016 ~max_points:80 ~lint:false ~symbolic:true ())
  in
  check_int "no lint => no symbolic pruning" 0 no_lint.Explore.sym_pruned

let () =
  Alcotest.run "symbolic"
    [
      ( "domain",
        [
          Alcotest.test_case "expression laws" `Quick test_expr_laws;
          Alcotest.test_case "fit recovers affine slots exactly" `Quick test_fit_recovers_affine;
          Alcotest.test_case "predicate semantics" `Quick test_predicate_semantics;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "symbolic never contradicts concrete" `Quick
            test_differential_oracle;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "sym_pruned checkpoint roundtrip + resume" `Quick
            test_sym_pruned_checkpoint_roundtrip;
          Alcotest.test_case "byte identity across jobs x chunk" `Quick
            test_gate_byte_identity_across_jobs_chunk;
          Alcotest.test_case "gate reduces elaborations" `Quick test_gate_reduces_elaborations;
          Alcotest.test_case "gate requires both passes" `Quick test_gate_requires_both_passes;
        ] );
    ]
