(* Tests for the DHDL IR: data types, primitive operations, counters, the
   builder eDSL, traversals, banking/double-buffering inference and the
   well-formedness validator. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Analysis = Dhdl_ir.Analysis
module Diag = Dhdl_ir.Diag
module Traverse = Dhdl_ir.Traverse
module Pretty = Dhdl_ir.Pretty

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Dtype ----------------------------------- *)

let test_dtype_bits () =
  check_int "f32" 32 (Dtype.bits Dtype.float32);
  check_int "f64" 64 (Dtype.bits Dtype.float64);
  check_int "i32" 32 (Dtype.bits Dtype.int32);
  check_int "i16" 16 (Dtype.bits Dtype.int16);
  check_int "bool" 1 (Dtype.bits Dtype.bool_t);
  check_int "fixed 10.6" 16 (Dtype.bits (Dtype.fixed ~int_bits:10 ~frac_bits:6 ()))

let test_dtype_predicates () =
  check_bool "float" true (Dtype.is_float Dtype.float32);
  check_bool "fixed" true (Dtype.is_fixed Dtype.int32);
  check_bool "bool" true (Dtype.is_bool Dtype.bool_t);
  check_bool "not float" false (Dtype.is_float Dtype.int32)

let test_dtype_equal () =
  check_bool "same" true (Dtype.equal Dtype.float32 Dtype.float32);
  check_bool "diff class" false (Dtype.equal Dtype.float32 Dtype.int32);
  check_bool "diff width" false (Dtype.equal Dtype.float32 Dtype.float64)

let test_dtype_strings () =
  Alcotest.(check string) "f32" "Float(8,24)" (Dtype.to_string Dtype.float32);
  Alcotest.(check string) "bool" "Bool" (Dtype.to_string Dtype.bool_t);
  Alcotest.(check string) "u32" "UFix(32.0)" (Dtype.to_string Dtype.uint32)

(* ------------------------- Op -------------------------------------- *)

let test_op_arity_eval_consistent () =
  List.iter
    (fun op ->
      let args = List.init (Op.arity op) (fun i -> 0.5 +. float_of_int i) in
      ignore (Op.eval op args);
      Alcotest.check_raises "wrong arity"
        (Invalid_argument
           (Printf.sprintf "Op.eval: %s expects %d args" (Op.name op) (Op.arity op)))
        (fun () -> ignore (Op.eval op (1.0 :: args))))
    Op.all

let test_op_semantics () =
  check_float "add" 5.0 (Op.eval Op.Add [ 2.0; 3.0 ]);
  check_float "sub" (-1.0) (Op.eval Op.Sub [ 2.0; 3.0 ]);
  check_float "mul" 6.0 (Op.eval Op.Mul [ 2.0; 3.0 ]);
  check_float "div" 2.5 (Op.eval Op.Div [ 5.0; 2.0 ]);
  check_float "min" 2.0 (Op.eval Op.Min [ 2.0; 3.0 ]);
  check_float "max" 3.0 (Op.eval Op.Max [ 2.0; 3.0 ]);
  check_float "mux true" 7.0 (Op.eval Op.Mux [ 1.0; 7.0; 9.0 ]);
  check_float "mux false" 9.0 (Op.eval Op.Mux [ 0.0; 7.0; 9.0 ]);
  check_float "lt" 1.0 (Op.eval Op.Lt [ 1.0; 2.0 ]);
  check_float "ge" 0.0 (Op.eval Op.Ge [ 1.0; 2.0 ]);
  check_float "and" 1.0 (Op.eval Op.And [ 1.0; 3.0 ]);
  check_float "not" 1.0 (Op.eval Op.Not [ 0.0 ]);
  check_float "abs" 4.0 (Op.eval Op.Abs [ -4.0 ]);
  check_float "floor" 3.0 (Op.eval Op.Floor [ 3.9 ]);
  check_float "neg" (-2.0) (Op.eval Op.Neg [ 2.0 ])

let test_op_identity () =
  check_float "add" 0.0 (Op.identity_element Op.Add);
  check_float "mul" 1.0 (Op.identity_element Op.Mul);
  check_float "min" infinity (Op.identity_element Op.Min);
  check_float "max" neg_infinity (Op.identity_element Op.Max);
  Alcotest.check_raises "non-reduction"
    (Invalid_argument "Op.identity_element: sub is not a reduction op") (fun () ->
      ignore (Op.identity_element Op.Sub))

let prop_reduction_identity =
  (* Arithmetic reductions are neutral on all floats; the logical ones only
     on the boolean encoding. *)
  QCheck.Test.make ~name:"identity element is neutral" ~count:200
    QCheck.(pair (int_range 0 5) (float_range (-100.0) 100.0))
    (fun (i, x) ->
      let op = List.nth (List.filter Op.is_reduction_op Op.all) i in
      let x = if Op.is_logical op then (if x > 0.0 then 1.0 else 0.0) else x in
      let id = Op.identity_element op in
      Op.eval op [ id; x ] = x)

(* ------------------------- Counters and loops ---------------------- *)

let ctr name start stop step = { Ir.ctr_name = name; ctr_start = start; ctr_stop = stop; ctr_step = step }

let test_counter_trip () =
  check_int "unit step" 10 (Ir.counter_trip (ctr "i" 0 10 1));
  check_int "strided" 4 (Ir.counter_trip (ctr "i" 0 10 3));
  check_int "offset" 5 (Ir.counter_trip (ctr "i" 5 10 1));
  (* Degenerate counters clamp to zero instead of going negative. *)
  check_int "zero step" 0 (Ir.counter_trip (ctr "i" 0 10 0));
  check_int "negative step" 0 (Ir.counter_trip (ctr "i" 0 10 (-2)));
  check_int "empty range" 0 (Ir.counter_trip (ctr "i" 10 10 1));
  check_int "inverted range" 0 (Ir.counter_trip (ctr "i" 10 0 1))

let test_loop_trip () =
  let loop =
    { Ir.lp_label = "l"; lp_counters = [ ctr "i" 0 8 1; ctr "j" 0 4 1 ]; lp_par = 4; lp_pattern = Ir.Map_pattern }
  in
  check_int "trip" 32 (Ir.loop_trip loop);
  check_int "vectorized" 8 (Ir.loop_trip_vectorized loop);
  let odd = { loop with Ir.lp_par = 5 } in
  check_int "ceil" 7 (Ir.loop_trip_vectorized odd)

(* ------------------------- Builder --------------------------------- *)

let small_design ?(par = 2) () =
  let b = B.create ~params:[ ("tile", 16) ] "small" in
  let x = B.offchip b "x" Dtype.float32 [ 64 ] in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let acc = B.reg b "acc" Dtype.float32 in
  let partial = B.reg b "partial" Dtype.float32 in
  let inner =
    B.reduce_pipe ~label:"sum" ~counters:[ ("i", 0, 16, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        B.mul pb v v)
  in
  let top =
    B.metapipe ~label:"outer" ~counters:[ ("t", 0, 64, 16) ] ~reduce:(Op.Add, partial, acc)
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par (); inner ]
  in
  B.finish b ~top

let test_builder_mems () =
  let d = small_design () in
  check_int "mem count" 4 (List.length d.Ir.d_mems);
  let ids = List.map (fun m -> m.Ir.mem_id) d.Ir.d_mems in
  check_int "unique ids" 4 (List.length (List.sort_uniq compare ids));
  check_int "param" 16 (Ir.param d "tile");
  check_bool "find_mem" true ((Ir.find_mem d "xT").Ir.mem_name = "xT")

let test_builder_valid () =
  Alcotest.(check (list string)) "no errors" [] (Analysis.validate (small_design ()))

let test_builder_banking () =
  let d = small_design ~par:8 () in
  let xt = Ir.find_mem d "xT" in
  check_int "banks follow par" 8 xt.Ir.mem_banks

let test_builder_double_buffering () =
  let d = small_design () in
  let xt = Ir.find_mem d "xT" in
  check_bool "tile buffer double" true xt.Ir.mem_double;
  check_bool "reduce source double" true (Ir.find_mem d "partial").Ir.mem_double

let test_sequential_no_double () =
  let b = B.create "seq" in
  let x = B.offchip b "x" Dtype.float32 [ 64 ] in
  let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
  let yt = B.bram b "yT" Dtype.float32 [ 16 ] in
  let compute =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 16, 1) ] (fun pb ->
        B.store pb yt [ B.iter "i" ] (B.load pb xt [ B.iter "i" ]))
  in
  let top =
    B.metapipe ~label:"outer" ~counters:[ ("t", 0, 64, 16) ] ~pipelined:false
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] (); compute ]
  in
  let d = B.finish b ~top in
  check_bool "sequential loop: no double buffering" false (Ir.find_mem d "xT").Ir.mem_double

let test_mem_words_bits () =
  let d = small_design () in
  let xt = Ir.find_mem d "xT" in
  check_int "words" 16 (Ir.mem_words xt);
  check_int "bits" 512 (Ir.mem_bits xt);
  check_int "reg words" 1 (Ir.mem_words (Ir.find_mem d "acc"))

let test_design_hash_stable () =
  let a = small_design () and b = small_design () in
  check_int "identical builds hash equal" (Ir.design_hash a) (Ir.design_hash b);
  let c = small_design ~par:8 () in
  check_bool "different par hashes differ" true (Ir.design_hash a <> Ir.design_hash c)

(* ------------------------- Traverse -------------------------------- *)

let test_traverse_counts () =
  let d = small_design () in
  check_int "controllers" 3 (List.length (Traverse.all_ctrls d));
  check_int "pipes" 1 (List.length (Traverse.pipes d));
  check_int "transfers" 1 (List.length (Traverse.tile_transfers d));
  check_int "depth" 2 (Traverse.depth d.Ir.d_top);
  check_int "stmts" 2 (Traverse.stmt_count d)

let test_traverse_replication () =
  let b = B.create "repl" in
  let inner =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        ignore (B.op pb ~ty:Dtype.int32 Op.Add [ B.iter "i"; B.const 1.0 ]))
  in
  let mid = B.metapipe ~label:"mid" ~counters:[ ("j", 0, 16, 1) ] ~par:4 ~pipelined:false [ inner ] in
  let top = B.metapipe ~label:"top" ~counters:[ ("k", 0, 16, 1) ] ~par:2 ~pipelined:false [ mid ] in
  let d = B.finish b ~top in
  let factors = Traverse.ctrls_with_replication d in
  let factor_of label =
    let _, f = List.find (fun (c, _) -> Ir.ctrl_label c = label) factors in
    f
  in
  check_int "top unreplicated" 1 (factor_of "top");
  check_int "mid by outer par" 2 (factor_of "mid");
  check_int "pipe by both" 8 (factor_of "p")

let test_mem_replication () =
  let b = B.create "memrepl" in
  let buf = B.bram b "buf" Dtype.float32 [ 8 ] in
  let inner =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        B.store pb buf [ B.iter "i" ] (B.const 1.0))
  in
  let top = B.metapipe ~label:"top" ~counters:[ ("k", 0, 16, 1) ] ~par:4 ~pipelined:false [ inner ] in
  let d = B.finish b ~top in
  check_int "buffer duplicated per replica" 4 (Traverse.mem_replication d buf)

let test_iterators_in_scope () =
  let d = small_design () in
  let pipe = List.hd (Traverse.pipes d) in
  Alcotest.(check (list string)) "scoped" [ "t"; "i" ] (Traverse.iterators_in_scope d pipe)

(* ------------------------- Banking fixpoint ------------------------ *)

let test_banking_reduce_chain () =
  let b = B.create "chain" in
  let work = B.bram b "work" Dtype.float32 [ 8; 8 ] in
  let blk = B.bram b "blk" Dtype.float32 [ 8; 8 ] in
  let acc = B.bram b "acc" Dtype.float32 [ 8; 8 ] in
  let compute =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1); ("j", 0, 8, 1) ] ~par:16 (fun pb ->
        B.store pb work [ B.iter "i"; B.iter "j" ] (B.const 2.0))
  in
  let inner =
    B.metapipe ~label:"in" ~counters:[ ("r", 0, 4, 1) ] ~reduce:(Op.Add, work, blk) [ compute ]
  in
  let top =
    B.metapipe ~label:"out" ~counters:[ ("t", 0, 4, 1) ] ~reduce:(Op.Add, blk, acc) [ inner ]
  in
  let d = B.finish b ~top in
  check_int "work banks from pipe" 16 (Ir.find_mem d "work").Ir.mem_banks;
  check_int "blk inherits" 16 (Ir.find_mem d "blk").Ir.mem_banks;
  check_int "acc inherits transitively" 16 (Ir.find_mem d "acc").Ir.mem_banks

(* ------------------------- Validation ------------------------------ *)

let expect_invalid build =
  let d = build () in
  Alcotest.(check bool) "rejected" true (Analysis.validate d <> [])

let test_invalid_unbound_iterator () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
      let top =
        B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
            B.store pb xt [ B.iter "nope" ] (B.const 1.0))
      in
      B.finish b ~top)

let test_invalid_undeclared_mem () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let other = B.create "other" in
      let foreign = B.bram other "foreign" Dtype.float32 [ 8 ] in
      let top =
        B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
            B.store pb foreign [ B.iter "i" ] (B.const 1.0))
      in
      B.finish b ~top)

let test_invalid_arity () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let top =
        Ir.Pipe
          {
            loop = { lp_label = "p"; lp_counters = [ ctr "i" 0 8 1 ]; lp_par = 1; lp_pattern = Ir.Map_pattern };
            body = [ Ir.Sop { dst = 0; op = Op.Add; args = [ Ir.Const 1.0 ]; ty = Dtype.float32 } ];
            reduce = None;
          }
      in
      B.finish b ~top)

let test_invalid_forward_ref () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let top =
        Ir.Pipe
          {
            loop = { lp_label = "p"; lp_counters = [ ctr "i" 0 8 1 ]; lp_par = 1; lp_pattern = Ir.Map_pattern };
            body = [ Ir.Sop { dst = 0; op = Op.Neg; args = [ Ir.Value 99 ]; ty = Dtype.float32 } ];
            reduce = None;
          }
      in
      B.finish b ~top)

let test_invalid_addr_arity () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let m = B.bram b "m" Dtype.float32 [ 8; 8 ] in
      let top =
        B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
            B.store pb m [ B.iter "i" ] (B.const 1.0))
      in
      B.finish b ~top)

let test_invalid_reduce_target () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let m = B.bram b "m" Dtype.float32 [ 8 ] in
      let top =
        Ir.Pipe
          {
            loop = { lp_label = "p"; lp_counters = [ ctr "i" 0 8 1 ]; lp_par = 1; lp_pattern = Ir.Reduce_pattern };
            body = [];
            reduce = Some { Ir.sr_op = Op.Add; sr_out = m; sr_value = Ir.Const 1.0 };
          }
      in
      B.finish b ~top)

let test_invalid_nonreduction_op () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let r = B.reg b "r" Dtype.float32 in
      let top =
        Ir.Pipe
          {
            loop = { lp_label = "p"; lp_counters = [ ctr "i" 0 8 1 ]; lp_par = 1; lp_pattern = Ir.Reduce_pattern };
            body = [];
            reduce = Some { Ir.sr_op = Op.Sub; sr_out = r; sr_value = Ir.Const 1.0 };
          }
      in
      B.finish b ~top)

let test_invalid_empty_counter () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let top = B.pipe ~label:"p" ~counters:[ ("i", 5, 5, 1) ] (fun _ -> ()) in
      B.finish b ~top)

let test_invalid_tile_shape () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let x = B.offchip b "x" Dtype.float32 [ 64 ] in
      let xt = B.bram b "xT" Dtype.float32 [ 16 ] in
      let top =
        B.sequential_block ~label:"s"
          [ Ir.Tile_load { src = x; dst = xt; offsets = [ Ir.Const 0.0 ]; tile = [ 32 ]; par = 1 } ]
      in
      B.finish b ~top)

let test_invalid_tile_endpoints () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let x = B.bram b "x" Dtype.float32 [ 16 ] in
      let y = B.bram b "y" Dtype.float32 [ 16 ] in
      let top =
        B.sequential_block ~label:"s"
          [ Ir.Tile_load { src = x; dst = y; offsets = [ Ir.Const 0.0 ]; tile = [ 16 ]; par = 1 } ]
      in
      B.finish b ~top)

let test_invalid_mismatched_reduce_shapes () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let s = B.bram b "s" Dtype.float32 [ 8 ] in
      let d = B.bram b "d" Dtype.float32 [ 16 ] in
      let inner = B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun _ -> ()) in
      let top = B.metapipe ~label:"m" ~counters:[ ("t", 0, 4, 1) ] ~reduce:(Op.Add, s, d) [ inner ] in
      B.finish b ~top)

let test_invalid_empty_stages () =
  expect_invalid (fun () ->
      let b = B.create "bad" in
      let top = B.sequential_block ~label:"s" [] in
      B.finish b ~top)

let test_invalid_duplicate_mem_name () =
  expect_invalid (fun () ->
      let b = B.create "dupname" in
      let x1 = B.bram b "x" Dtype.float32 [ 8 ] in
      let _x2 = B.bram b "x" Dtype.float32 [ 8 ] in
      let top =
        B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
            B.store pb x1 [ B.iter "i" ] (B.const 1.0))
      in
      B.finish b ~top)

let test_invalid_duplicate_mem_id () =
  let b = B.create "dupid" in
  let x = B.bram b "x" Dtype.float32 [ 8 ] in
  let top =
    B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
        B.store pb x [ B.iter "i" ] (B.const 1.0))
  in
  let d = B.finish b ~top in
  let d = { d with Ir.d_mems = d.Ir.d_mems @ [ { x with Ir.mem_name = "y" } ] } in
  check_bool "flagged V002" true
    (List.exists (fun g -> g.Diag.code = "V002") (Analysis.validate_diags d));
  check_bool "string shim rejects too" true (Analysis.validate d <> [])

let test_validate_exn () =
  Alcotest.check_raises "raises on invalid"
    (Failure "invalid design bad:\np: iterator nope is not in scope") (fun () ->
      let b = B.create "bad" in
      let xt = B.bram b "xT" Dtype.float32 [ 8 ] in
      let top =
        B.pipe ~label:"p" ~counters:[ ("i", 0, 8, 1) ] (fun pb ->
            B.store pb xt [ B.iter "nope" ] (B.const 1.0))
      in
      Analysis.validate_exn (B.finish b ~top))

(* ------------------------- Pretty ----------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pretty_design () =
  let s = Pretty.design (small_design ()) in
  check_bool "has design name" true (contains ~needle:"design small" s);
  check_bool "has offchip" true (contains ~needle:"OffChipMem" s);
  check_bool "has metapipe" true (contains ~needle:"MetaPipe outer" s);
  check_bool "has reduce" true (contains ~needle:"reduce(add)" s);
  check_bool "has banks annotation" true (contains ~needle:"banks=2" s)

let test_pretty_stmt () =
  Alcotest.(check string) "op" "v1 : Float(8,24) = mul(v0, 3)"
    (Pretty.stmt (Ir.Sop { dst = 1; op = Op.Mul; args = [ Ir.Value 0; Ir.Const 3.0 ]; ty = Dtype.float32 }))

(* ------------------------- Access analysis ------------------------- *)

let test_accesses () =
  let d = small_design () in
  let xt = Ir.find_mem d "xT" in
  let accs = Analysis.accesses_of_mem d xt in
  check_bool "has write from tile load" true (List.exists (fun a -> a.Analysis.acc_write) accs);
  check_bool "has read from pipe" true (List.exists (fun a -> not a.Analysis.acc_write) accs)

let test_written_read_mems () =
  let d = small_design () in
  let written = Analysis.written_mems d.Ir.d_top in
  let read = Analysis.read_mems d.Ir.d_top in
  check_bool "xT written" true (List.exists (fun m -> m.Ir.mem_name = "xT") written);
  check_bool "xT read" true (List.exists (fun m -> m.Ir.mem_name = "xT") read);
  check_bool "x read (offchip)" true (List.exists (fun m -> m.Ir.mem_name = "x") read)

let () =
  Alcotest.run "ir"
    [
      ( "dtype",
        [
          Alcotest.test_case "bits" `Quick test_dtype_bits;
          Alcotest.test_case "predicates" `Quick test_dtype_predicates;
          Alcotest.test_case "equal" `Quick test_dtype_equal;
          Alcotest.test_case "strings" `Quick test_dtype_strings;
        ] );
      ( "op",
        [
          Alcotest.test_case "arity/eval consistent" `Quick test_op_arity_eval_consistent;
          Alcotest.test_case "semantics" `Quick test_op_semantics;
          Alcotest.test_case "identity elements" `Quick test_op_identity;
          qtest prop_reduction_identity;
        ] );
      ( "loops",
        [
          Alcotest.test_case "counter trip" `Quick test_counter_trip;
          Alcotest.test_case "loop trip" `Quick test_loop_trip;
        ] );
      ( "builder",
        [
          Alcotest.test_case "memories" `Quick test_builder_mems;
          Alcotest.test_case "valid design" `Quick test_builder_valid;
          Alcotest.test_case "banking" `Quick test_builder_banking;
          Alcotest.test_case "double buffering" `Quick test_builder_double_buffering;
          Alcotest.test_case "sequential no double" `Quick test_sequential_no_double;
          Alcotest.test_case "mem words/bits" `Quick test_mem_words_bits;
          Alcotest.test_case "hash stable" `Quick test_design_hash_stable;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "counts" `Quick test_traverse_counts;
          Alcotest.test_case "replication factors" `Quick test_traverse_replication;
          Alcotest.test_case "mem replication" `Quick test_mem_replication;
          Alcotest.test_case "iterator scope" `Quick test_iterators_in_scope;
        ] );
      ( "banking", [ Alcotest.test_case "reduce chain fixpoint" `Quick test_banking_reduce_chain ] );
      ( "validation",
        [
          Alcotest.test_case "unbound iterator" `Quick test_invalid_unbound_iterator;
          Alcotest.test_case "undeclared memory" `Quick test_invalid_undeclared_mem;
          Alcotest.test_case "op arity" `Quick test_invalid_arity;
          Alcotest.test_case "forward reference" `Quick test_invalid_forward_ref;
          Alcotest.test_case "address arity" `Quick test_invalid_addr_arity;
          Alcotest.test_case "reduce target kind" `Quick test_invalid_reduce_target;
          Alcotest.test_case "non-reduction op" `Quick test_invalid_nonreduction_op;
          Alcotest.test_case "empty counter" `Quick test_invalid_empty_counter;
          Alcotest.test_case "tile shape" `Quick test_invalid_tile_shape;
          Alcotest.test_case "tile endpoints" `Quick test_invalid_tile_endpoints;
          Alcotest.test_case "reduce shapes" `Quick test_invalid_mismatched_reduce_shapes;
          Alcotest.test_case "empty stages" `Quick test_invalid_empty_stages;
          Alcotest.test_case "duplicate mem name" `Quick test_invalid_duplicate_mem_name;
          Alcotest.test_case "duplicate mem id" `Quick test_invalid_duplicate_mem_id;
          Alcotest.test_case "validate_exn" `Quick test_validate_exn;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "design listing" `Quick test_pretty_design;
          Alcotest.test_case "statement" `Quick test_pretty_stmt;
        ] );
      ( "accesses",
        [
          Alcotest.test_case "per-mem accesses" `Quick test_accesses;
          Alcotest.test_case "written/read sets" `Quick test_written_read_mems;
        ] );
    ]
