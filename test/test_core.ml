(* Integration tests for the experiment drivers (one per table/figure).
   These run scaled-down versions of each experiment; the full-size runs
   live in the benchmark harness (bench/main.exe). *)

module E = Dhdl_core.Experiments
module Estimator = Dhdl_model.Estimator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let estimator = lazy (Dhdl_dse.Eval.create (Estimator.create ~seed:55 ~train_samples:80 ~epochs:150 ()))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table2 () =
  let s = E.render_table2 () in
  List.iter
    (fun name -> check_bool name true (contains ~needle:name s))
    Dhdl_apps.Registry.names;
  check_bool "paper sizes shown" true (contains ~needle:"187,200,000" s)

let table3 = lazy (E.table3 ~seed:21 ~sample:60 ~pareto_points:3 (Lazy.force estimator))

let test_table3_rows () =
  let rows = Lazy.force table3 in
  check_int "one row per benchmark" 7 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.E.bench ^ " points") true (r.E.points > 0 && r.E.points <= 3);
      check_bool (r.E.bench ^ " alm err finite") true (r.E.alm_err >= 0.0 && r.E.alm_err < 60.0);
      check_bool (r.E.bench ^ " runtime err") true (r.E.runtime_err >= 0.0 && r.E.runtime_err < 40.0))
    rows

let test_table3_render () =
  let s = E.render_table3 (Lazy.force table3) in
  check_bool "has average row" true (contains ~needle:"Average" s);
  check_bool "mentions paper" true (contains ~needle:"4.8%" s)

let test_table4 () =
  (* Tiny configuration: the point is the ordering, not the magnitudes. *)
  let r =
    E.table4 ~seed:21 ~ours_points:20 ~restricted_points:4 ~full_points:1 ~hls_cols:24
      (Lazy.force estimator)
  in
  check_bool "ours fastest" true (r.E.ours_sec_per_design < r.E.hls_restricted_sec_per_design);
  check_bool "full slowest" true
    (r.E.hls_restricted_sec_per_design < r.E.hls_full_sec_per_design);
  check_bool "speedups consistent" true (r.E.full_speedup > r.E.restricted_speedup);
  check_int "ours points" 20 r.E.ours_points;
  check_bool "renders" true (contains ~needle:"Our estimator" (E.render_table4 r))

let test_fig5 () =
  let apps = E.fig5 ~seed:21 ~max_points:60 ~apps:[ "dotproduct"; "gda" ] (Lazy.force estimator) in
  check_int "two apps" 2 (List.length apps);
  List.iter
    (fun a ->
      check_bool (a.E.app_name ^ " explored") true (a.E.result.Dhdl_dse.Explore.sampled > 10))
    apps;
  let s = E.render_fig5 apps in
  check_bool "plots rendered" true (contains ~needle:"Pareto" s && contains ~needle:"ALM" s)

let fig6 = lazy (E.fig6 ~seed:21 ~max_points:150 (Lazy.force estimator))

let test_fig6_rows () =
  let rows = Lazy.force fig6 in
  check_int "seven rows" 7 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.E.s_bench ^ " fpga time") true (r.E.fpga_seconds > 0.0);
      check_bool (r.E.s_bench ^ " cpu time") true (r.E.cpu_seconds > 0.0);
      check_bool (r.E.s_bench ^ " speedup") true (r.E.speedup > 0.0))
    rows

let test_fig6_shape () =
  (* The qualitative Figure 6 claims that must survive any seed: gemm loses
     badly; blackscholes wins by the largest margin. *)
  let rows = Lazy.force fig6 in
  let speedup name = (List.find (fun r -> r.E.s_bench = name) rows).E.speedup in
  check_bool "gemm loses" true (speedup "gemm" < 0.7);
  check_bool "blackscholes wins big" true (speedup "blackscholes" > 5.0);
  check_bool "blackscholes is the best" true
    (List.for_all (fun r -> r.E.speedup <= speedup "blackscholes") rows);
  check_bool "gemm is the worst" true (List.for_all (fun r -> r.E.speedup >= speedup "gemm") rows)

let test_fig6_render () =
  let s = E.render_fig6 (Lazy.force fig6) in
  check_bool "paper column" true (contains ~needle:"16.73x" s)

let test_ablation_metapipe () =
  let rows = E.ablation_metapipe ~seed:21 ~max_points:80 (Lazy.force estimator) in
  check_bool "has rows" true (List.length rows >= 5);
  (* Forcing Sequential can never beat the chosen pipelined design. *)
  List.iter (fun m -> check_bool (m.E.m_bench ^ " benefit") true (m.E.benefit >= 0.99)) rows;
  (* At least some benchmarks benefit substantially from MetaPipes. *)
  check_bool "pipelining matters somewhere" true (List.exists (fun m -> m.E.benefit > 1.2) rows)

let test_ablation_nn () =
  let rows = E.ablation_nn_correction ~seed:21 ~sample:40 (Lazy.force estimator) in
  check_int "seven rows" 7 (List.length rows);
  let mean f = Dhdl_util.Stats.mean (List.map f rows) in
  check_bool "corrections reduce mean error" true
    (mean (fun r -> r.E.corrected_alm_err) < mean (fun r -> r.E.raw_alm_err));
  let s = E.render_ablations (E.ablation_metapipe ~seed:21 ~max_points:40 (Lazy.force estimator)) rows in
  check_bool "renders" true (contains ~needle:"Ablation" s)

let test_ablation_sampling () =
  let rows = E.ablation_sampling ~seed:21 ~app:"gda" ~budgets:[ 40; 120; 300 ] (Lazy.force estimator) in
  check_int "three budgets" 3 (List.length rows);
  (* Best-found cycles are monotonically non-increasing with budget. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.E.sa_best_cycles >= b.E.sa_best_cycles && monotone rest
    | _ -> true
  in
  check_bool "monotone improvement" true (monotone rows);
  check_bool "renders" true (String.length (E.render_sampling "gda" rows) > 50)

let test_ablation_device () =
  let rows = E.ablation_device ~seed:21 ~max_points:120 (Lazy.force estimator) in
  check_int "seven rows" 7 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.E.d_bench ^ " validity shrinks") true (r.E.valid_d5 <= r.E.valid_d8);
      check_bool (r.E.d_bench ^ " best slows") true (r.E.best_cycles_d5 >= r.E.best_cycles_d8))
    rows;
  check_bool "renders" true (String.length (E.render_device rows) > 50)

let test_ablation_bandwidth () =
  let rows = E.ablation_bandwidth ~seed:21 ~max_points:120 (Lazy.force estimator) in
  check_int "seven rows" 7 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.E.b_bench ^ " never hurts") true (r.E.speedup_75 >= r.E.speedup_37 *. 0.999))
    rows;
  (* At least one memory-bound benchmark gains substantially. *)
  check_bool "bandwidth matters somewhere" true
    (List.exists (fun r -> r.E.speedup_75 > r.E.speedup_37 *. 1.2) rows);
  check_bool "renders" true (String.length (E.render_bandwidth rows) > 50)

let test_fig5_csv_files () =
  let apps = E.fig5 ~seed:21 ~max_points:40 ~apps:[ "dotproduct" ] (Lazy.force estimator) in
  let dir = Filename.get_temp_dir_name () in
  let paths = E.write_fig5_csvs ~dir apps in
  check_int "one file" 1 (List.length paths);
  List.iter
    (fun p ->
      check_bool "exists" true (Sys.file_exists p);
      let ic = open_in p in
      let header = input_line ic in
      close_in ic;
      check_bool "csv header" true (String.length header > 10);
      Sys.remove p)
    paths

let () =
  Alcotest.run "core"
    [
      ( "experiments",
        [
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "table3 rows" `Slow test_table3_rows;
          Alcotest.test_case "table3 render" `Slow test_table3_render;
          Alcotest.test_case "table4" `Slow test_table4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6 rows" `Slow test_fig6_rows;
          Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
          Alcotest.test_case "fig6 render" `Slow test_fig6_render;
          Alcotest.test_case "ablation metapipe" `Slow test_ablation_metapipe;
          Alcotest.test_case "ablation nn" `Slow test_ablation_nn;
          Alcotest.test_case "ablation sampling" `Slow test_ablation_sampling;
          Alcotest.test_case "ablation device" `Slow test_ablation_device;
          Alcotest.test_case "ablation bandwidth" `Slow test_ablation_bandwidth;
          Alcotest.test_case "fig5 csv files" `Slow test_fig5_csv_files;
        ] );
    ]
