(* Fault-injection suite: the deterministic Faults registry itself, the
   per-stage exception barriers in Explore.run, estimator NN-correction
   degradation, checkpoint golden files, and crash/resume equivalence.
   Runs under both `dune runtest` and the focused `dune build @faults`
   pre-merge alias. *)

module Faults = Dhdl_util.Faults
module Space = Dhdl_dse.Space
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Outcome = Dhdl_dse.Outcome
module Checkpoint = Dhdl_dse.Checkpoint
module Estimator = Dhdl_model.Estimator
module Obs = Dhdl_obs.Obs
module App = Dhdl_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

(* Every test that configures faults runs under this wrapper so a failing
   assertion cannot leak an active fault registry into later tests. *)
let with_faults f = Fun.protect ~finally:Faults.reset f

let run_sweep ?checkpoint ?checkpoint_every ?resume ?deadline_seconds ?jobs ?(seed = 11)
    ?(max_points = 80) est =
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 65_536) ] in
  let cfg =
    Explore.Config.make ~seed ~max_points ?checkpoint ?checkpoint_every ?resume ?deadline_seconds
      ?jobs ()
  in
  Explore.run cfg (Eval.create est)
    ~space:(app.App.space sizes)
    ~generate:(fun p -> app.App.generate ~sizes ~params:p)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_test_" ^ name)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ----------------------- the Faults registry ------------------------- *)

let test_off_by_default () =
  Faults.reset ();
  check_bool "inactive" false (Faults.active ());
  check_bool "never fires" false
    (List.exists (fun k -> Faults.fires ~key:k "anything") (List.init 100 Fun.id))

let test_deterministic () =
  with_faults @@ fun () ->
  let decisions () = List.map (fun k -> Faults.fires ~key:k "site") (List.init 200 Fun.id) in
  Faults.configure ~seed:1 ~p:0.5 ();
  let a = decisions () in
  Faults.configure ~seed:1 ~p:0.5 ();
  check_bool "same seed, same decisions" true (a = decisions ());
  Faults.configure ~seed:2 ~p:0.5 ();
  check_bool "different seed differs" true (a <> decisions ());
  check_bool "roughly half fire" true
    (let hits = List.length (List.filter Fun.id a) in
     hits > 50 && hits < 150)

let test_keyless_counter_sequence () =
  with_faults @@ fun () ->
  Faults.configure ~seed:3 ~p:0.5 ();
  let a = List.init 100 (fun _ -> Faults.fires "walk") in
  Faults.configure ~seed:3 ~p:0.5 ();
  let b = List.init 100 (fun _ -> Faults.fires "walk") in
  check_bool "counter-keyed walk is reproducible" true (a = b)

let test_per_site_override () =
  with_faults @@ fun () ->
  Faults.set_site "always" 1.0;
  check_bool "implicit configure" true (Faults.active ());
  check_bool "p=1 always fires" true
    (List.for_all (fun k -> Faults.fires ~key:k "always") (List.init 50 Fun.id));
  check_bool "other sites stay at default p=0" false
    (List.exists (fun k -> Faults.fires ~key:k "other") (List.init 50 Fun.id));
  check_bool "fired total counted" true (Faults.injected_total () >= 50)

let test_inject_raises () =
  with_faults @@ fun () ->
  Faults.set_site "boom" 1.0;
  (match Faults.inject ~key:0 "boom" with
  | () -> Alcotest.fail "expected Injected"
  | exception Faults.Injected site -> Alcotest.(check string) "site payload" "boom" site);
  check_bool "printer registered" true
    (contains (Printexc.to_string (Faults.Injected "x")) "injected fault at x")

(* ----------------------- per-stage barriers -------------------------- *)

let all_failures_in_stage r stage =
  r.Explore.failures <> []
  && List.for_all (fun f -> f.Explore.f_stage = stage) r.Explore.failures

let barrier_test site stage () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  Faults.set_site site 1.0;
  let r = run_sweep est in
  check_bool "sweep completed" true (r.Explore.processed = r.Explore.sampled);
  check_int "every point failed" r.Explore.sampled (Explore.failed_count r);
  check_bool "classified" true (all_failures_in_stage r stage);
  check_int "no evaluations survive" 0 (List.length r.Explore.evaluations);
  check_bool "pareto empty" true (r.Explore.pareto = [])

let test_generator_barrier = barrier_test "dse.generator" Explore.Generator_error
let test_lint_barrier = barrier_test "dse.lint" Explore.Lint_error
let test_estimator_barrier = barrier_test "dse.estimator" Explore.Estimator_error

let test_non_finite_barrier () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  Faults.set_site "dse.non_finite" 1.0;
  let r = run_sweep est in
  check_bool "classified non-finite" true (all_failures_in_stage r Explore.Non_finite_estimate);
  List.iter
    (fun f -> check_bool "detail in message" true (contains f.Explore.f_message "not finite"))
    r.Explore.failures

let test_failed_counters_registered () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  Faults.set_site "dse.generator" 1.0;
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let r = run_sweep est in
  check_int "generator failures counted" r.Explore.sampled
    (Obs.counter_value "dse.failed.generator");
  (* The other stages never fired but are pre-registered at zero, as is
     dse.unfit — the satellite fix for clean sweeps. *)
  let snap = Obs.snapshot () in
  List.iter
    (fun name ->
      check_bool (name ^ " registered") true
        (List.mem_assoc name snap.Obs.snap_counters))
    [ "dse.failed.lint"; "dse.failed.estimator"; "dse.failed.non_finite"; "dse.unfit";
      "dse.points_sampled"; "dse.lint_pruned"; "dse.estimated" ]

(* --------------------- acceptance: 5% mixed faults ------------------- *)

let mixed_faults () =
  Faults.configure ~seed:5 ~p:0.0 ();
  List.iter (fun s -> Faults.set_site s 0.05) [ "dse.generator"; "dse.lint"; "dse.estimator" ]

let test_mixed_faults_sweep_completes () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  mixed_faults ();
  let r = run_sweep est in
  check_bool "sweep completed" true ((not r.Explore.truncated) && r.Explore.processed = r.Explore.sampled);
  check_bool "some faults fired" true (Explore.failed_count r > 0);
  check_bool "some points survived" true (r.Explore.evaluations <> []);
  check_int "every point accounted for" r.Explore.sampled
    (List.length r.Explore.evaluations + r.Explore.lint_pruned + Explore.failed_count r);
  (* Every failure is classified and the buckets sum to the total. *)
  check_int "buckets sum" (Explore.failed_count r)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Explore.failure_counts r))

(* ------------------- checkpoint golden + resume ---------------------- *)

let test_checkpoint_roundtrip_and_golden () =
  let est = Lazy.force estimator in
  let path = tmp "roundtrip.jsonl" in
  with_faults @@ fun () ->
  mixed_faults ();
  let r = run_sweep ~checkpoint:path est in
  let golden = read_file path in
  (match Checkpoint.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    check_int "entry per processed point" r.Explore.processed (List.length c.Checkpoint.entries);
    check_int "total recorded" r.Explore.sampled c.Checkpoint.total;
    Alcotest.(check (list string)) "params recorded" r.Explore.param_names c.Checkpoint.params;
    Alcotest.(check string) "render is the golden file" golden (Checkpoint.render c));
  (* A second identical sweep checkpoints byte-identically. *)
  mixed_faults ();
  let path2 = tmp "roundtrip2.jsonl" in
  ignore (run_sweep ~checkpoint:path2 est);
  Alcotest.(check string) "re-run matches golden bytes" golden (read_file path2);
  Sys.remove path;
  Sys.remove path2

let test_resume_bit_identical_after_kill () =
  let est = Lazy.force estimator in
  let full_path = tmp "full.jsonl" in
  let kill_path = tmp "killed.jsonl" in
  with_faults @@ fun () ->
  (* Uninterrupted reference sweep, faults active at 5% in all stages. *)
  mixed_faults ();
  let reference = run_sweep ~checkpoint:full_path est in
  (* Simulate a mid-sweep kill: keep only the first 30 checkpoint entries,
     exactly what an interrupted run's last atomic write would hold. *)
  (match Checkpoint.load ~path:full_path with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Checkpoint.save ~path:kill_path
      { c with Checkpoint.entries = List.filteri (fun i _ -> i < 30) c.Checkpoint.entries });
  (* Resume with an identically configured fault registry. *)
  mixed_faults ();
  let resumed = run_sweep ~checkpoint:kill_path ~resume:true est in
  check_int "30 points reused" 30 resumed.Explore.resumed;
  check_bool "evaluations bit-identical" true
    (resumed.Explore.evaluations = reference.Explore.evaluations);
  check_bool "failures identical" true (resumed.Explore.failures = reference.Explore.failures);
  check_int "lint_pruned identical" reference.Explore.lint_pruned resumed.Explore.lint_pruned;
  check_bool "pareto identical" true (resumed.Explore.pareto = reference.Explore.pareto);
  (* The resumed run's final checkpoint matches the uninterrupted golden. *)
  Alcotest.(check string) "checkpoint converges to golden" (read_file full_path)
    (read_file kill_path);
  Sys.remove full_path;
  Sys.remove kill_path

let test_torn_tail_every_cut () =
  let est = Lazy.force estimator in
  let golden_path = tmp "torn_golden.jsonl" in
  let torn_path = tmp "torn.jsonl" in
  ignore (run_sweep ~checkpoint:golden_path est);
  let golden = read_file golden_path in
  let n =
    match Checkpoint.load ~path:golden_path with
    | Ok c -> List.length c.Checkpoint.entries
    | Error msg -> Alcotest.fail msg
  in
  (* Length of the final entry line, including its newline. *)
  let last_len =
    let body = String.sub golden 0 (String.length golden - 1) in
    String.length golden - String.rindex body '\n' - 1
  in
  check_bool "final line long enough to tear" true (last_len > 2);
  let write_cut cut =
    let oc = open_out_bin torn_path in
    output_string oc (String.sub golden 0 (String.length golden - cut));
    close_out oc
  in
  (* A kill -9 (or a torn copy) can truncate the file at any byte. Every
     cut of the final line must still load: the complete prefix survives,
     and [truncated_tail] fires exactly when a partial line was dropped —
     a 1-byte cut only loses the trailing newline (the line is still
     whole), and a cut of the entire line is just a shorter clean file. *)
  for cut = 1 to last_len do
    write_cut cut;
    match Checkpoint.load ~path:torn_path with
    | Error msg -> Alcotest.failf "cut of %d bytes failed to load: %s" cut msg
    | Ok c ->
      let expect_entries = if cut = 1 then n else n - 1 in
      let expect_torn = cut > 1 && cut < last_len in
      check_int (Printf.sprintf "entries after %d-byte cut" cut) expect_entries
        (List.length c.Checkpoint.entries);
      check_bool (Printf.sprintf "torn flag after %d-byte cut" cut) expect_torn
        c.Checkpoint.truncated_tail
  done;
  (* Resuming from a torn checkpoint reuses the surviving prefix and
     converges to the golden bytes. *)
  write_cut ((last_len / 2) + 1);
  let resumed = run_sweep ~checkpoint:torn_path ~resume:true est in
  check_int "surviving prefix reused" (n - 1) resumed.Explore.resumed;
  Alcotest.(check string) "torn checkpoint converges to golden" golden (read_file torn_path);
  Sys.remove golden_path;
  Sys.remove torn_path

let test_resume_rejects_mismatched_checkpoint () =
  let est = Lazy.force estimator in
  let path = tmp "mismatch.jsonl" in
  let r = run_sweep ~checkpoint:path est in
  check_bool "wrote checkpoint" true (r.Explore.processed > 0);
  (match run_sweep ~seed:12 ~checkpoint:path ~resume:true est with
  | _ -> Alcotest.fail "expected resume to reject a different sweep's checkpoint"
  | exception Failure msg -> check_bool "mentions mismatch" true (contains msg "cannot resume"));
  Sys.remove path

let test_resume_rejects_corrupt_checkpoint () =
  let path = tmp "corrupt.jsonl" in
  let oc = open_out path in
  output_string oc "this is not a checkpoint\n";
  close_out oc;
  (match Checkpoint.load ~path with
  | Ok _ -> Alcotest.fail "expected load to fail"
  | Error msg -> check_bool "mentions corruption" true (contains msg "corrupt"));
  let est = Lazy.force estimator in
  (match run_sweep ~checkpoint:path ~resume:true est with
  | _ -> Alcotest.fail "expected resume to fail on a corrupt checkpoint"
  | exception Failure _ -> ());
  Sys.remove path

let test_deadline_truncates_then_resume_completes () =
  let est = Lazy.force estimator in
  let path = tmp "deadline.jsonl" in
  let reference = run_sweep est in
  let partial = run_sweep ~checkpoint:path ~deadline_seconds:0.0 est in
  check_bool "flagged truncated" true partial.Explore.truncated;
  check_bool "stopped early" true (partial.Explore.processed < partial.Explore.sampled);
  check_bool "partial result still consistent" true
    (List.length partial.Explore.evaluations + partial.Explore.lint_pruned
     + Explore.failed_count partial
    = partial.Explore.processed);
  let finished = run_sweep ~checkpoint:path ~resume:true est in
  check_bool "finished after resume" true
    ((not finished.Explore.truncated) && finished.Explore.processed = finished.Explore.sampled);
  check_int "reused the truncated prefix" partial.Explore.processed finished.Explore.resumed;
  check_bool "same evaluations as uninterrupted" true
    (finished.Explore.evaluations = reference.Explore.evaluations);
  Sys.remove path

(* -------------------- estimator degradation -------------------------- *)

let test_nn_fallback () =
  let est = Lazy.force estimator in
  let app = Dhdl_apps.Registry.find "dotproduct" in
  let sizes = [ ("n", 65_536) ] in
  let design = app.App.generate ~sizes ~params:(app.App.default_params sizes) in
  let clean = Estimator.estimate est design in
  let uncorrected = Estimator.estimate_area_uncorrected est design in
  with_faults @@ fun () ->
  Faults.set_site "estimator.nn_correction" 1.0;
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let degraded = Estimator.estimate est design in
  check_bool "falls back to the raw analytical model" true
    (degraded.Estimator.area = uncorrected);
  check_bool "cycles unaffected by the fallback" true
    (degraded.Estimator.cycles = clean.Estimator.cycles);
  check_bool "fallback counted" true (Obs.counter_value "estimator.nn_fallback" >= 1);
  (* The degraded estimate is still finite and usable by the sweep. *)
  check_bool "finite" true
    (Float.is_finite degraded.Estimator.cycles && degraded.Estimator.area.Estimator.alms >= 0)

let test_nn_fallback_in_sweep () =
  let est = Lazy.force estimator in
  with_faults @@ fun () ->
  Faults.set_site "estimator.nn_correction" 1.0;
  let r = run_sweep est in
  (* Degradation, not failure: every point still evaluates. *)
  check_int "no failures" 0 (Explore.failed_count r);
  check_int "all points evaluated" (r.Explore.sampled - r.Explore.lint_pruned)
    (List.length r.Explore.evaluations)

let () =
  Alcotest.run "faults"
    [
      ( "registry",
        [
          Alcotest.test_case "off by default" `Quick test_off_by_default;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "keyless counter walk" `Quick test_keyless_counter_sequence;
          Alcotest.test_case "per-site override" `Quick test_per_site_override;
          Alcotest.test_case "inject raises" `Quick test_inject_raises;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "generator" `Quick test_generator_barrier;
          Alcotest.test_case "lint" `Quick test_lint_barrier;
          Alcotest.test_case "estimator" `Quick test_estimator_barrier;
          Alcotest.test_case "non-finite estimate" `Quick test_non_finite_barrier;
          Alcotest.test_case "failed counters" `Quick test_failed_counters_registered;
          Alcotest.test_case "5% mixed faults" `Quick test_mixed_faults_sweep_completes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip + golden" `Quick test_checkpoint_roundtrip_and_golden;
          Alcotest.test_case "resume bit-identical" `Quick test_resume_bit_identical_after_kill;
          Alcotest.test_case "torn tail tolerated at every cut" `Quick test_torn_tail_every_cut;
          Alcotest.test_case "mismatch rejected" `Quick test_resume_rejects_mismatched_checkpoint;
          Alcotest.test_case "corrupt rejected" `Quick test_resume_rejects_corrupt_checkpoint;
          Alcotest.test_case "deadline + resume" `Quick test_deadline_truncates_then_resume_completes;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "nn fallback" `Quick test_nn_fallback;
          Alcotest.test_case "nn fallback in sweep" `Quick test_nn_fallback_in_sweep;
        ] );
    ]
