(* The keyed Eval API: canonical design keys, the memoizing pipeline's
   extensional equality with a direct (cache-free) pipeline, byte-identical
   checkpoints across {jobs} x {cache temperature} x {profile}, warm-cache
   resume, deterministic eviction, fault-injection cache bypass, and a
   grep-level pin that no caller outside Eval still wires
   Estimator.estimate into a pipeline by hand.

   Runs under both `dune runtest` and the focused `dune build @eval`. *)

module Estimator = Dhdl_model.Estimator
module Design_key = Dhdl_model.Design_key
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Outcome = Dhdl_dse.Outcome
module Space = Dhdl_dse.Space
module Checkpoint = Dhdl_dse.Checkpoint
module Lint = Dhdl_lint.Lint
module Diag = Dhdl_ir.Diag
module Faults = Dhdl_util.Faults
module App = Dhdl_apps.App
module Obs = Dhdl_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let estimator = lazy (Estimator.create ~seed:7 ~train_samples:60 ~epochs:100 ())

let app = lazy (Dhdl_apps.Registry.find "dotproduct")
let sizes = [ ("n", 65_536) ]
let space () = (Lazy.force app).App.space sizes
let generate p = (Lazy.force app).App.generate ~sizes ~params:p
let points n = Space.sample (space ()) ~seed:11 ~max_points:n

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("dhdl_eval_" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_faults f = Fun.protect ~finally:Faults.reset f

let mixed_faults () =
  Faults.configure ~seed:5 ~p:0.0 ();
  List.iter (fun s -> Faults.set_site s 0.05) [ "dse.generator"; "dse.lint"; "dse.estimator" ]

(* ------------------------------------------------------------------ *)
(* Design keys                                                         *)
(* ------------------------------------------------------------------ *)

let test_key_laws () =
  let pts = points 40 in
  (* Regenerating the same point gives the same design, hence equal keys. *)
  List.iter
    (fun p ->
      let k1 = Design_key.of_design (generate p) in
      let k2 = Design_key.of_design (generate p) in
      check_bool "equal designs have equal keys" true (Design_key.equal k1 k2))
    pts;
  (* Numeric parameters (tile sizes, par factors) are bindings, not
     structure: varying them must keep the skeleton and move the binding.
     MetaPipe toggles, by contrast, change the control hierarchy and so
     may change the skeleton — that is structural by design. *)
  let base = (Lazy.force app).App.default_params sizes in
  let key_with k v =
    Design_key.of_design (generate (List.map (fun (n, x) -> if n = k then (n, v) else (n, x)) base))
  in
  let k0 = Design_key.of_design (generate base) in
  List.iter
    (fun (name, v) ->
      let k = key_with name v in
      check_str
        (Printf.sprintf "%s=%d is a binding, not structure" name v)
        (Design_key.skeleton k0) (Design_key.skeleton k);
      check_bool
        (Printf.sprintf "%s=%d moves the binding" name v)
        false
        (String.equal (Design_key.binding k0) (Design_key.binding k)))
    [ ("tile", 128); ("par", 4) ];
  let keyed = List.map (fun p -> (p, Design_key.of_design (generate p))) pts in
  List.iteri
    (fun i (pi, ki) ->
      List.iteri
        (fun j (pj, kj) ->
          if i < j && pi <> pj then
            check_bool "distinct points have distinct keys" false (Design_key.equal ki kj))
        keyed)
    keyed

let test_key_separates_outcomes () =
  (* The law the caches rely on: designs with different estimates must
     have different keys (key equality => outcome equality). *)
  let est = Lazy.force estimator in
  let pts = points 25 in
  let rows =
    List.map
      (fun p ->
        let d = generate p in
        (Design_key.to_string (Design_key.of_design d), Estimator.estimate est d))
      pts
  in
  List.iteri
    (fun i (ki, ei) ->
      List.iteri
        (fun j (kj, ej) -> if i < j && ei <> ej then
            check_bool "different estimate, different key" false (String.equal ki kj))
        rows)
    rows

let test_key_sees_structure () =
  (* Apps with different dataflow must never collide on skeleton. *)
  let sk name app_sizes =
    let a = Dhdl_apps.Registry.find name in
    let d = a.App.generate ~sizes:app_sizes ~params:(a.App.default_params app_sizes) in
    Design_key.skeleton (Design_key.of_design d)
  in
  let s1 = sk "dotproduct" sizes in
  let s2 = sk "gda" (Dhdl_apps.Registry.find "gda").App.paper_sizes in
  check_bool "different apps, different skeletons" false (String.equal s1 s2)

(* ------------------------------------------------------------------ *)
(* Extensional equality: cached pipeline = direct pipeline             *)
(* ------------------------------------------------------------------ *)

(* The pre-Eval inline pipeline, reconstructed: lint + absint verdict by
   diagnostic class, then estimate + fit + utilization. Any divergence
   from [Eval.evaluate] is an API-migration bug. *)
let direct_pipeline est ~index:_ point =
  match generate point with
  | exception _ -> Alcotest.fail "generator raised on a legal point"
  | design ->
    let diags = Lint.check ~dev:(Estimator.device est) design in
    let proof, heuristic =
      List.partition (fun g -> List.mem g.Diag.code Lint.proof_codes) (Lint.errors diags)
    in
    if heuristic <> [] then Outcome.Pruned
    else if proof <> [] then
      if List.for_all (fun g -> g.Diag.code = "L013") proof then Outcome.Dep_pruned
      else Outcome.Absint_pruned
    else
      let e = Estimator.estimate est design in
      let alm, dsp, bram = Estimator.utilization est e.Estimator.area in
      Outcome.Evaluated
        {
          Outcome.point;
          estimate = e;
          valid = Estimator.fits est e.Estimator.area;
          alm_pct = alm;
          dsp_pct = dsp;
          bram_pct = bram;
        }

let eval_all ev pts =
  List.mapi (fun i p -> Eval.evaluate ev ~lint:true ~absint:true ~index:i ~generate p) pts

let test_extensional_equality () =
  let est = Lazy.force estimator in
  let pts = points 30 in
  let direct = List.mapi (fun i p -> direct_pipeline est ~index:i p) pts in
  let cached_ev = Eval.create est in
  let cold = eval_all cached_ev pts in
  let warm = eval_all cached_ev pts in
  let off = eval_all (Eval.create ~analysis_cap:0 ~estimate_cap:0 est) pts in
  check_bool "cold cache = direct pipeline" true (cold = direct);
  check_bool "warm cache = direct pipeline" true (warm = direct);
  check_bool "cache disabled = direct pipeline" true (off = direct);
  let s = Eval.stats cached_ev in
  check_bool "warm pass hit the caches" true (s.Eval.hits > 0)

let test_warm_pass_is_all_hits () =
  let ev = Eval.create (Lazy.force estimator) in
  let pts = points 20 in
  ignore (eval_all ev pts);
  let s1 = Eval.stats ev in
  ignore (eval_all ev pts);
  let s2 = Eval.stats ev in
  check_int "no new misses when warm" s1.Eval.misses s2.Eval.misses;
  check_bool "every warm probe hit" true (s2.Eval.hits > s1.Eval.hits)

let test_eviction_is_deterministic () =
  let pts = points 25 in
  let run () = eval_all (Eval.create ~analysis_cap:0 ~estimate_cap:3 (Lazy.force estimator)) pts in
  let r1 = run () and r2 = run () in
  check_bool "tiny cache, identical outcomes" true (r1 = r2);
  let ev = Eval.create ~analysis_cap:0 ~estimate_cap:3 (Lazy.force estimator) in
  ignore (eval_all ev pts);
  check_bool "capacity 3 under 25 designs evicts" true ((Eval.stats ev).Eval.evictions > 0)

let test_faults_bypass_cache () =
  (* Armed fault sites must bypass the caches outright: the estimator's
     own nn_correction site fires under the ambient per-point key, so a
     memoized estimate would replay another point's fault decision. *)
  with_faults @@ fun () ->
  mixed_faults ();
  let ev = Eval.create (Lazy.force estimator) in
  ignore (eval_all ev (points 20));
  ignore (eval_all ev (points 20));
  let s = Eval.stats ev in
  check_int "no hits under faults" 0 s.Eval.hits;
  check_int "no misses under faults" 0 s.Eval.misses

(* ------------------------------------------------------------------ *)
(* Sweep-level identity across jobs x cache x profile                  *)
(* ------------------------------------------------------------------ *)

let sweep ?(jobs = 1) ?(chunk = 16) ?(profile = false) ?checkpoint ?(resume = false) ev =
  let cfg =
    Explore.Config.make ~seed:11 ~max_points:60 ~jobs ~chunk ~profile ?checkpoint ~resume
      ~checkpoint_every:4 ~tick_every:0 ()
  in
  Explore.run cfg ev ~space:(space ()) ~generate

let strip (r : Explore.result) =
  (r.Explore.evaluations, r.Explore.pareto, r.Explore.failures, r.Explore.sampled,
   r.Explore.lint_pruned, r.Explore.absint_pruned, r.Explore.dep_pruned)

let test_checkpoint_identity_matrix () =
  let est = Lazy.force estimator in
  let warm_ev = Eval.create est in
  ignore (sweep warm_ev);
  let golden = tmp "matrix_golden.jsonl" in
  let reference = sweep ~checkpoint:golden (Eval.create est) in
  let golden_bytes = read_file golden in
  let cell ~jobs ~profile temperature =
    let ev =
      match temperature with
      | `Cold -> Eval.create est
      | `Off -> Eval.create ~analysis_cap:0 ~estimate_cap:0 est
      | `Warm -> warm_ev
    in
    let cp = tmp (Printf.sprintf "matrix_j%d_p%b_%s.jsonl" jobs profile
                    (match temperature with `Cold -> "cold" | `Off -> "off" | `Warm -> "warm"))
    in
    let r = sweep ~jobs ~profile ~checkpoint:cp ev in
    check_bool
      (Printf.sprintf "results identical (jobs=%d profile=%b)" jobs profile)
      true
      (strip r = strip reference);
    check_str
      (Printf.sprintf "checkpoint bytes identical (jobs=%d profile=%b)" jobs profile)
      golden_bytes (read_file cp);
    Sys.remove cp
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun profile -> List.iter (cell ~jobs ~profile) [ `Cold; `Off; `Warm ])
        [ false; true ])
    [ 1; 4 ];
  Sys.remove golden

let test_chunked_parallel_under_faults () =
  (* The chunked engine must keep the bit-identity contract with 5%
     injected faults at every pipeline stage, at extreme chunk sizes. *)
  with_faults @@ fun () ->
  let est = Lazy.force estimator in
  mixed_faults ();
  let p1 = tmp "faults_seq.jsonl" in
  let seq = sweep ~checkpoint:p1 (Eval.create est) in
  check_bool "faults actually fired" true (Explore.failed_count seq > 0);
  List.iter
    (fun chunk ->
      mixed_faults ();
      let pc = tmp (Printf.sprintf "faults_c%d.jsonl" chunk) in
      let par = sweep ~jobs:4 ~chunk ~checkpoint:pc (Eval.create est) in
      check_bool (Printf.sprintf "chunk=%d identical to sequential" chunk) true
        (strip par = strip seq);
      check_str (Printf.sprintf "chunk=%d checkpoint bytes" chunk) (read_file p1) (read_file pc);
      Sys.remove pc)
    [ 1; 3; 64 ];
  Sys.remove p1

let test_warm_resume_determinism () =
  (* Killing a sweep and resuming it on an already-warm cache must
     reconstruct the uninterrupted bytes exactly. *)
  let ev = Eval.create (Lazy.force estimator) in
  let golden = tmp "resume_golden.jsonl" and kill = tmp "resume_kill.jsonl" in
  let reference = sweep ~checkpoint:golden ev in
  (match Checkpoint.load ~path:golden with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Checkpoint.save ~path:kill
      { c with Checkpoint.entries = List.filteri (fun i _ -> i < 25) c.Checkpoint.entries });
  let resumed = sweep ~jobs:4 ~checkpoint:kill ~resume:true ev in
  check_int "25 points reused" 25 resumed.Explore.resumed;
  check_bool "warm resume reconstructs the result" true (strip resumed = strip reference);
  check_str "warm resume reconstructs the bytes" (read_file golden) (read_file kill);
  Sys.remove golden;
  Sys.remove kill

let test_cache_counters_surfaced () =
  let est = Lazy.force estimator in
  let ev = Eval.create est in
  let cold = sweep ev in
  let warm = sweep ev in
  check_int "cold sweep has no hits" 0 cold.Explore.cache_hits;
  check_bool "cold sweep records misses" true (cold.Explore.cache_misses > 0);
  check_int "warm sweep has no misses" 0 warm.Explore.cache_misses;
  check_bool "warm sweep records hits" true (warm.Explore.cache_hits > 0);
  (* And the Obs counters mirror them when the sink is on. *)
  Obs.enable ();
  let obs_ev = Eval.create est in
  ignore (sweep obs_ev);
  ignore (sweep obs_ev);
  let snap = Obs.snapshot () in
  Obs.disable ();
  let counter name = try List.assoc name snap.Obs.snap_counters with Not_found -> 0 in
  check_bool "dse.cache.hit counted" true (counter "dse.cache.hit" > 0);
  check_bool "dse.cache.miss counted" true (counter "dse.cache.miss" > 0);
  check_int "dse.cache.evict stays zero uncapped" 0 (counter "dse.cache.evict")

(* ------------------------------------------------------------------ *)
(* Grep pin: Eval is the only evaluation pipeline                      *)
(* ------------------------------------------------------------------ *)

(* Shared scanner for the API-boundary pins below: find call-chain uses
   of [needle] (an ident-boundary match) in every .ml under the
   production directories, minus per-directory exemptions. Type
   annotations ([e : Estimator.estimate]) name a type, not a function; a
   match whose nearest preceding non-space character is ':' is one of
   those, not a call. *)
let scan_offenders ~needle dirs =
  let ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
  let offenders = ref [] in
  let scan_file path =
    let s = read_file path in
    let nlen = String.length needle in
    let annotation i =
      let rec back j =
        if j < 0 then false
        else if s.[j] = ' ' || s.[j] = '\n' then back (j - 1)
        else s.[j] = ':'
      in
      back (i - 1)
    in
    let rec go from =
      match String.index_from_opt s from needle.[0] with
      | None -> ()
      | Some i ->
        if i + nlen <= String.length s && String.sub s i nlen = needle then begin
          (* The trailing boundary only matters when the needle ends in an
             ident char (so "Estimator.estimate" skips "…estimates"); a
             needle ending in '.' pins a whole module's namespace. *)
          if
            ((not (ident needle.[nlen - 1]))
            || i + nlen >= String.length s
            || not (ident s.[i + nlen]))
            && (i = 0 || not (ident s.[i - 1]))
            && not (annotation i)
          then offenders := path :: !offenders;
          go (i + nlen)
        end
        else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (dir, except) ->
      match Sys.readdir dir with
      | exception Sys_error _ -> Alcotest.fail (Printf.sprintf "cannot read %s" dir)
      | names ->
        Array.iter
          (fun n ->
            if Filename.check_suffix n ".ml" && not (List.mem n except) then
              scan_file (Filename.concat dir n))
          names)
    dirs;
  List.sort_uniq compare !offenders

(* [Estimator.estimate] (the corrected-model entry point, not
   estimate_cycles / estimate_area_uncorrected / timed_estimate) may
   appear in exactly one production file: lib/dse/eval.ml. Everything
   else — the explorer, the serve supervisor, the CLI, the experiment
   drivers, the benches, the examples — must go through Eval. *)
let test_no_direct_estimator_pipelines () =
  let offenders =
    scan_offenders ~needle:"Estimator.estimate"
      [
        ("../lib/dse", [ "eval.ml" ]);
        ("../lib/serve", []);
        ("../lib/core", []);
        ("../bin", []);
        ("../bench", []);
        ("../examples", []);
      ]
  in
  Alcotest.(check (list string))
    "no direct Estimator.estimate call-chains outside Eval" [] offenders

(* Same discipline for the concrete analysis passes: [Absint.analyze] /
   [Dependence.analyze] (and anything else on those modules) may only be
   reached through [Eval]'s cached pipeline or the two deliberate
   analysis surfaces — [dhdl analyze] (bin/dhdl.ml) and the serve
   supervisor's [analyze] verb. A new caller that invoked them directly
   would silently bypass the symbolic pre-elaboration gate (and the
   analysis cache), so the boundary is pinned here. *)
let test_no_direct_analysis_pipelines () =
  let dirs =
    [
      ("../lib/dse", [ "eval.ml" ]);
      ("../lib/serve", [ "supervisor.ml" ]);
      ("../lib/core", []);
      ("../bin", [ "dhdl.ml" ]);
      ("../bench", []);
      ("../examples", []);
    ]
  in
  List.iter
    (fun needle ->
      Alcotest.(check (list string))
        (Printf.sprintf "no direct %s call-chains outside Eval and dhdl analyze" needle)
        []
        (scan_offenders ~needle dirs))
    [ "Absint."; "Dependence." ]

let () =
  Alcotest.run "eval"
    [
      ( "design keys",
        [
          Alcotest.test_case "key laws" `Quick test_key_laws;
          Alcotest.test_case "keys separate outcomes" `Quick test_key_separates_outcomes;
          Alcotest.test_case "keys see structure" `Quick test_key_sees_structure;
        ] );
      ( "pipeline equality",
        [
          Alcotest.test_case "cached = direct, cold/warm/off" `Quick test_extensional_equality;
          Alcotest.test_case "warm pass is all hits" `Quick test_warm_pass_is_all_hits;
          Alcotest.test_case "eviction is deterministic" `Quick test_eviction_is_deterministic;
          Alcotest.test_case "faults bypass the caches" `Quick test_faults_bypass_cache;
        ] );
      ( "sweep identity",
        [
          Alcotest.test_case "checkpoints across jobs x cache x profile" `Quick
            test_checkpoint_identity_matrix;
          Alcotest.test_case "chunked parallel under 5% faults" `Quick
            test_chunked_parallel_under_faults;
          Alcotest.test_case "warm resume determinism" `Quick test_warm_resume_determinism;
          Alcotest.test_case "cache counters surfaced" `Quick test_cache_counters_surfaced;
        ] );
      ( "api boundary",
        [
          Alcotest.test_case "no direct pipelines outside Eval" `Quick
            test_no_direct_estimator_pipelines;
          Alcotest.test_case "no direct analysis outside Eval / dhdl analyze" `Quick
            test_no_direct_analysis_pipelines;
        ] );
    ]
