(* Tests for the telemetry core: nested span timing against an injected
   clock, counter/gauge/histogram aggregation, the disabled-sink no-op
   fast path, and golden-file checks of the JSONL and Chrome trace_event
   exporters. *)

module Obs = Dhdl_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A hand-cranked clock, in seconds (the Unix.gettimeofday convention). *)
let fake = ref 0.0
let advance_ms ms = fake := !fake +. (ms /. 1000.0)

let with_fake_sink f =
  fake := 0.0;
  Obs.enable ~clock:(fun () -> !fake) ();
  Fun.protect ~finally:Obs.disable f

let span_named snap name =
  match List.find_opt (fun sp -> sp.Obs.sp_name = name) snap.Obs.snap_spans with
  | Some sp -> sp
  | None -> Alcotest.failf "no span named %s" name

(* ------------------------- spans ------------------------------------- *)

let test_nested_span_timing () =
  with_fake_sink @@ fun () ->
  Obs.span "outer" (fun () ->
      advance_ms 2.0;
      Obs.span "inner" (fun () -> advance_ms 4.0);
      advance_ms 1.0);
  let snap = Obs.snapshot () in
  check_int "two spans" 2 (List.length snap.Obs.snap_spans);
  (* Snapshot is in start order even though inner finishes first. *)
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner" ]
    (List.map (fun sp -> sp.Obs.sp_name) snap.Obs.snap_spans);
  let outer = span_named snap "outer" and inner = span_named snap "inner" in
  check_float "outer start" 0.0 outer.Obs.sp_start_us;
  check_float "outer duration" 7000.0 outer.Obs.sp_dur_us;
  check_float "inner start" 2000.0 inner.Obs.sp_start_us;
  check_float "inner duration" 4000.0 inner.Obs.sp_dur_us;
  check_int "outer depth" 0 outer.Obs.sp_depth;
  check_int "inner depth" 1 inner.Obs.sp_depth

let test_span_records_on_exception () =
  with_fake_sink @@ fun () ->
  (try Obs.span "boom" (fun () -> advance_ms 3.0; failwith "boom") with Failure _ -> ());
  let snap = Obs.snapshot () in
  let sp = span_named snap "boom" in
  check_float "duration up to the raise" 3000.0 sp.Obs.sp_dur_us;
  (* Depth unwinds so the next root span is depth 0 again. *)
  Obs.span "after" (fun () -> ());
  check_int "depth restored" 0 (span_named (Obs.snapshot ()) "after").Obs.sp_depth

let test_span_sampled () =
  with_fake_sink @@ fun () ->
  for i = 0 to 9 do
    Obs.span_sampled ~every:5 ~i "sampled" (fun () -> ())
  done;
  check_int "every 5th point recorded" 2 (List.length (Obs.snapshot ()).Obs.snap_spans);
  for i = 0 to 9 do
    Obs.span_sampled ~every:0 ~i "never" (fun () -> ())
  done;
  check_int "rate 0 records nothing" 2 (List.length (Obs.snapshot ()).Obs.snap_spans)

(* ------------------------- counters / gauges / histograms ------------- *)

let test_counter_aggregation () =
  with_fake_sink @@ fun () ->
  Obs.count "hits";
  Obs.count "hits";
  Obs.count ~by:5 "hits";
  Obs.count ~by:0 "registered_only";
  check_int "accumulated" 7 (Obs.counter_value "hits");
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("hits", 7); ("registered_only", 0) ]
    snap.Obs.snap_counters

let test_gauge_latest_wins () =
  with_fake_sink @@ fun () ->
  Obs.gauge "speed" 1.0;
  Obs.gauge "speed" 2.5;
  match (Obs.snapshot ()).Obs.snap_gauges with
  | [ ("speed", v) ] -> check_float "latest value" 2.5 v
  | _ -> Alcotest.fail "expected one gauge"

let test_histogram_aggregation () =
  with_fake_sink @@ fun () ->
  List.iter (fun v -> Obs.observe "ms" (float_of_int v)) [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 10 ];
  match (Obs.snapshot ()).Obs.snap_hists with
  | [ ("ms", vs) ] ->
    check_int "all samples kept" 10 (Array.length vs);
    (* Insertion order preserved in the snapshot... *)
    check_float "first sample" 3.0 vs.(0);
    (* ...and nearest-rank percentiles over the sorted copy. *)
    check_float "p50" 4.0 (Obs.percentile vs 50.0);
    check_float "p95" 10.0 (Obs.percentile vs 95.0);
    check_float "p100" 10.0 (Obs.percentile vs 100.0)
  | _ -> Alcotest.fail "expected one histogram"

let test_percentile_empty () = check_float "empty" 0.0 (Obs.percentile [||] 50.0)

(* ------------------------- disabled fast path ------------------------- *)

let test_disabled_noop () =
  Obs.disable ();
  check_bool "disabled" false (Obs.enabled ());
  let ran = ref false in
  let v = Obs.span "ignored" (fun () -> ran := true; 42) in
  check_bool "body still runs" true !ran;
  check_int "value passed through" 42 v;
  Obs.count "ignored";
  Obs.gauge "ignored" 1.0;
  Obs.observe "ignored" 1.0;
  check_int "counter reads zero" 0 (Obs.counter_value "ignored");
  let snap = Obs.snapshot () in
  check_bool "empty snapshot" true
    (snap.Obs.snap_spans = [] && snap.Obs.snap_counters = [] && snap.Obs.snap_gauges = []
   && snap.Obs.snap_hists = []);
  check_string "empty summary" "telemetry summary\n(no events recorded)\n"
    (Obs.render_summary snap)

let test_enable_resets () =
  with_fake_sink @@ fun () ->
  Obs.count "old";
  Obs.enable ~clock:(fun () -> !fake) ();
  check_int "fresh sink" 0 (Obs.counter_value "old")

(* ------------------------- exporters ---------------------------------- *)

(* One deterministic scenario shared by both golden checks. *)
let golden_snapshot () =
  with_fake_sink @@ fun () ->
  Obs.span "a" ~attrs:[ ("k", "v") ] (fun () -> advance_ms 1.0);
  Obs.count ~by:2 "c";
  Obs.gauge "g" 1.5;
  Obs.observe "h" 1.0;
  Obs.observe "h" 3.0;
  Obs.snapshot ()

let test_jsonl_golden () =
  let expected =
    "{\"type\":\"span\",\"name\":\"a\",\"start_us\":0.000,\"dur_us\":1000.000,\"depth\":0,\"track\":0,\"attrs\":{\"k\":\"v\"}}\n"
    ^ "{\"type\":\"counter\",\"name\":\"c\",\"value\":2}\n"
    ^ "{\"type\":\"gauge\",\"name\":\"g\",\"value\":1.500}\n"
    ^ "{\"type\":\"histogram\",\"name\":\"h\",\"count\":2,\"sampled\":2,\"mean\":2.000,\"p50\":1.000,\"p95\":3.000,\"max\":3.000}\n"
  in
  check_string "jsonl" expected (Obs.to_jsonl (golden_snapshot ()))

let test_chrome_trace_golden () =
  let expected =
    "{\"traceEvents\":[\n"
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dhdl\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"main\"}},\n"
    ^ "{\"name\":\"a\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":1000.000,\"args\":{\"k\":\"v\"}},\n"
    ^ "{\"name\":\"c\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1000.000,\"args\":{\"value\":2}},\n"
    ^ "{\"name\":\"g\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1000.000,\"args\":{\"value\":1.500}}\n"
    ^ "],\"displayTimeUnit\":\"ms\"}\n"
  in
  check_string "chrome trace" expected (Obs.to_chrome_trace (golden_snapshot ()))

let test_json_escaping () =
  let snap =
    with_fake_sink @@ fun () ->
    Obs.span "quote\"and\nnewline" ~attrs:[ ("back\\slash", "tab\there") ] (fun () -> ());
    Obs.snapshot ()
  in
  let jsonl = Obs.to_jsonl snap in
  check_bool "escaped quote" true
    (String.length jsonl > 0
    && contains jsonl "quote\\\"and\\nnewline"
    && contains jsonl "back\\\\slash"
    && contains jsonl "tab\\there")

let test_summary_sections () =
  let s = Obs.render_summary (golden_snapshot ()) in
  List.iter
    (fun needle -> check_bool ("summary mentions " ^ needle) true (contains s needle))
    [ "counters"; "gauges"; "histograms"; "spans"; "p95"; "a"; "c"; "g"; "h" ]

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nested timing" `Quick test_nested_span_timing;
          Alcotest.test_case "exception safety" `Quick test_span_records_on_exception;
          Alcotest.test_case "sampling" `Quick test_span_sampled;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "gauge latest" `Quick test_gauge_latest_wins;
          Alcotest.test_case "histogram aggregation" `Quick test_histogram_aggregation;
          Alcotest.test_case "empty percentile" `Quick test_percentile_empty;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "enable resets" `Quick test_enable_resets;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "summary sections" `Quick test_summary_sections;
        ] );
    ]
