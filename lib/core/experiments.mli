(** Experiment drivers: one entry point per table and figure of the paper's
    evaluation (Section V), each returning structured data plus a plain-text
    rendering used by the benchmark harness and the CLI.

    Every experiment is deterministic given its seed, with the cache
    cold or warm (see {!Dhdl_dse.Eval}). Experiments share one
    {!Dhdl_dse.Eval.t}, so running several in sequence reuses analysis
    verdicts and estimates across them; the one timing loop (Table IV)
    forces the cache off. Estimation and exploration run at the paper's
    full dataset sizes (Table II); functional validation uses scaled-down
    data (the interpreter is the only data-proportional component). *)

module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval

(** {1 Table II — benchmark suite} *)

val render_table2 : unit -> string

(** {1 Table III — estimation accuracy} *)

type accuracy_row = {
  bench : string;
  alm_err : float;  (** Mean abs. ALM error (%) over selected Pareto designs. *)
  dsp_err : float;
  bram_err : float;
  runtime_err : float;
  points : int;  (** Number of Pareto designs synthesized and simulated. *)
  dsp_rank_preserved : bool;  (** Estimates order designs correctly (Section V.B). *)
}

val table3 :
  ?seed:int -> ?sample:int -> ?pareto_points:int -> Eval.t -> accuracy_row list
(** For each benchmark: explore [sample] legal points (default 300), select
    up to [pareto_points] (default 5) spread along the Pareto frontier, push
    each through the full synthesis toolchain and the cycle-accurate
    simulator, and compare against the estimates. *)

val render_table3 : accuracy_row list -> string

(** {1 Table IV — estimation speed vs. high-level synthesis} *)

type speed_result = {
  ours_sec_per_design : float;
  hls_restricted_sec_per_design : float;
  hls_full_sec_per_design : float;
  ours_points : int;
  restricted_points : int;
  full_points : int;
  restricted_speedup : float;  (** restricted / ours. *)
  full_speedup : float;  (** full / ours. *)
}

val table4 :
  ?seed:int ->
  ?ours_points:int ->
  ?restricted_points:int ->
  ?full_points:int ->
  ?hls_cols:int ->
  Eval.t ->
  speed_result
(** GDA design points through our estimator (default 250, as in the paper)
    vs. the simulated HLS flow on Figure 2's GDA: [restricted_points]
    (default 40) without outer-loop pipelining, [full_points] (default 4)
    with it. [hls_cols] scales the HLS kernel's C dimension (default the
    paper's 96). *)

val render_table4 : speed_result -> string

(** {1 Figure 5 — design-space exploration} *)

type dse_app = { app_name : string; result : Explore.result }

val fig5 : ?seed:int -> ?max_points:int -> ?apps:string list -> Eval.t -> dse_app list
(** Explore each benchmark's space (default 2,000 sampled points per app —
    the paper samples up to 75,000; raise [max_points] to match). *)

val render_fig5 : dse_app list -> string
(** Per app: the three scatter plots (ALM / DSP / BRAM utilization vs. log
    cycles, valid and Pareto points distinguished) plus the Pareto table. *)

(** {1 Figure 6 — speedup over the CPU baseline} *)

type speedup_row = {
  s_bench : string;
  fpga_seconds : float;  (** Cycle-accurate simulation of the best design. *)
  cpu_seconds : float;  (** Roofline model of the 6-core Xeon baseline. *)
  speedup : float;
  best_params : (string * int) list;
}

val fig6 : ?seed:int -> ?max_points:int -> Eval.t -> speedup_row list
val render_fig6 : speedup_row list -> string

(** {1 Ablations (design decisions called out in DESIGN.md)} *)

type metapipe_ablation = {
  m_bench : string;
  cycles_pipelined : float;  (** Best design with MetaPipe toggles on. *)
  cycles_sequential : float;  (** Same parameters, toggles forced off. *)
  benefit : float;  (** sequential / pipelined. *)
}

val ablation_metapipe : ?seed:int -> ?max_points:int -> Eval.t -> metapipe_ablation list
(** Quantifies coarse-grained pipelining: re-estimate each benchmark's best
    design with every MetaPipe toggle forced to Sequential. *)

type correction_ablation = {
  c_bench : string;
  raw_alm_err : float;  (** Error with NN corrections disabled. *)
  corrected_alm_err : float;  (** Error of the full hybrid estimator. *)
}

val ablation_nn_correction : ?seed:int -> ?sample:int -> Eval.t -> correction_ablation list
(** Quantifies the hybrid scheme: ALM error using raw template counts only
    (packing assumed, no P&R corrections) vs. the NN-corrected estimate. *)

val render_ablations : metapipe_ablation list -> correction_ablation list -> string

type sampling_ablation = {
  sa_points : int;  (** Sample budget. *)
  sa_best_cycles : float;  (** Best valid design found at that budget. *)
  sa_pareto_size : int;
}

val ablation_sampling :
  ?seed:int -> ?app:string -> ?budgets:int list -> Eval.t -> sampling_ablation list
(** Random-sampling convergence (the paper samples up to 75,000 points;
    §IV.C): how the best discovered design improves with sample budget on
    one benchmark (default gda, budgets 100/300/1000/3000). *)

val render_sampling : string -> sampling_ablation list -> string

val best_per_area : Explore.result -> Explore.evaluation option
(** The valid design minimizing cycles x ALM% — the performance-per-area
    winner the paper also tracks alongside pure performance. *)

type device_ablation = {
  d_bench : string;
  sampled : int;
  valid_d8 : int;  (** Designs fitting the paper's Stratix V GS D8. *)
  valid_d5 : int;  (** The same estimates re-checked against the smaller D5. *)
  best_cycles_d8 : float;
  best_cycles_d5 : float;
}

val ablation_device : ?seed:int -> ?max_points:int -> Eval.t -> device_ablation list
(** Target-agnosticism (Section II's "Representation" requirement): the same
    estimates re-validated against a smaller device of the same family —
    validity shrinks and the best feasible design slows where the space is
    capacity-bound. *)

val render_device : device_ablation list -> string

type bandwidth_ablation = {
  b_bench : string;
  speedup_37 : float;  (** Figure 6 speedup at the MAIA's achievable 37.5 GB/s. *)
  speedup_75 : float;  (** The same best design re-simulated at ~75 GB/s. *)
}

val ablation_bandwidth : ?seed:int -> ?max_points:int -> Eval.t -> bandwidth_ablation list
(** Off-chip bandwidth sensitivity: re-simulate each benchmark's best design
    on a board with twice the achievable DRAM bandwidth. Memory-bound
    benchmarks (dotproduct, tpchq6, outerprod) roughly double their speedup;
    compute-bound ones (gda, gemm) barely move — the roofline structure
    behind Section V.C. *)

val render_bandwidth : bandwidth_ablation list -> string

val write_fig5_csvs : dir:string -> dse_app list -> string list
(** Write one CSV of raw exploration data per benchmark (see
    {!Explore.to_csv}); returns the paths written. *)
