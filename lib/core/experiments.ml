module Estimator = Dhdl_model.Estimator
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Toolchain = Dhdl_synth.Toolchain
module Report = Dhdl_synth.Report
module Perf_sim = Dhdl_sim.Perf_sim
module Cost_model = Dhdl_cpu.Cost_model
module Stats = Dhdl_util.Stats
module Texttable = Dhdl_util.Texttable
module Asciiplot = Dhdl_util.Asciiplot
module Rng = Dhdl_util.Rng
module Obs = Dhdl_obs.Obs

let explore_app ?(seed = 2016) ?(jobs = 1) ~max_points ev (app : App.t) =
  Obs.span "experiment.explore" ~attrs:[ ("app", app.App.name) ] @@ fun () ->
  let sizes = app.App.paper_sizes in
  let cfg =
    Explore.Config.default
    |> Explore.Config.with_seed seed
    |> Explore.Config.with_max_points max_points
    |> Explore.Config.with_jobs jobs
  in
  Explore.run cfg ev ~space:(app.App.space sizes)
    ~generate:(fun point -> app.App.generate ~sizes ~params:point)

(* Pick up to [k] evaluations spread evenly along a Pareto frontier. *)
let spread k items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n <= k then items
  else
    List.init k (fun i ->
        let idx = if k = 1 then 0 else i * (n - 1) / (k - 1) in
        arr.(idx))

let best_per_area (r : Explore.result) =
  match List.filter (fun (e : Explore.evaluation) -> e.Explore.valid) r.Explore.evaluations with
  | [] -> None
  | valid ->
    let score (e : Explore.evaluation) = e.Explore.estimate.Estimator.cycles *. e.Explore.alm_pct in
    Some (List.fold_left (fun acc e -> if score e < score acc then e else acc) (List.hd valid) valid)

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let render_table2 () =
  let rows =
    List.map
      (fun (a : App.t) ->
        let dims =
          String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Texttable.fmt_int_commas v))
               a.App.paper_sizes)
        in
        [ a.App.name; a.App.description; dims ])
      Registry.all
  in
  "Table II: evaluation benchmarks\n"
  ^ Texttable.render
      ~aligns:[ Texttable.Left; Texttable.Left; Texttable.Left ]
      ~header:[ "Benchmark"; "Description"; "Dataset size" ]
      rows

(* ------------------------------------------------------------------ *)
(* Table III                                                           *)
(* ------------------------------------------------------------------ *)

type accuracy_row = {
  bench : string;
  alm_err : float;
  dsp_err : float;
  bram_err : float;
  runtime_err : float;
  points : int;
  dsp_rank_preserved : bool;
}

let table3 ?(seed = 2016) ?(sample = 300) ?(pareto_points = 5) ev =
  Obs.span "experiment.table3" @@ fun () ->
  List.map
    (fun (app : App.t) ->
      let result = explore_app ~seed ~max_points:sample ev app in
      let chosen = spread pareto_points result.Explore.pareto in
      let chosen = if chosen = [] then spread pareto_points result.Explore.evaluations else chosen in
      let dev = Estimator.device (Eval.estimator ev) in
      let evalse =
        List.map
          (fun (e : Explore.evaluation) ->
            let design = app.App.generate ~sizes:app.App.paper_sizes ~params:e.Explore.point in
            let rpt = Toolchain.synthesize ~dev design in
            let sim = Perf_sim.simulate ~dev design in
            (e.Explore.estimate, rpt, sim))
          chosen
      in
      let errs proj_est proj_act =
        Stats.mean
          (List.map
             (fun (e, rpt, _) ->
               Stats.percent_error ~actual:(proj_act rpt) ~predicted:(proj_est e))
             evalse)
      in
      let f = float_of_int in
      let alm_err =
        errs (fun (e : Estimator.estimate) -> f e.Estimator.area.Estimator.alms) (fun r -> f r.Report.alms)
      in
      let dsp_err =
        errs (fun e -> f e.Estimator.area.Estimator.dsps) (fun r -> f r.Report.dsps)
      in
      let bram_err =
        errs (fun e -> f e.Estimator.area.Estimator.brams) (fun r -> f r.Report.brams)
      in
      let runtime_err =
        Stats.mean
          (List.map
             (fun ((e : Estimator.estimate), _, (sim : Perf_sim.result)) ->
               Stats.percent_error ~actual:sim.Perf_sim.cycles ~predicted:e.Estimator.cycles)
             evalse)
      in
      let dsp_rank_preserved =
        Stats.rank_preserved
          (List.map (fun (_, (r : Report.t), _) -> f r.Report.dsps) evalse)
          (List.map (fun ((e : Estimator.estimate), _, _) -> f e.Estimator.area.Estimator.dsps) evalse)
      in
      {
        bench = app.App.name;
        alm_err;
        dsp_err;
        bram_err;
        runtime_err;
        points = List.length evalse;
        dsp_rank_preserved;
      })
    Registry.all

let render_table3 rows =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          Texttable.fmt_pct r.alm_err;
          Texttable.fmt_pct r.dsp_err;
          Texttable.fmt_pct r.bram_err;
          Texttable.fmt_pct r.runtime_err;
          string_of_int r.points;
          (if r.dsp_rank_preserved then "yes" else "no");
        ])
      rows
  in
  let avg proj = Stats.mean (List.map proj rows) in
  let footer =
    [
      "Average";
      Texttable.fmt_pct (avg (fun r -> r.alm_err));
      Texttable.fmt_pct (avg (fun r -> r.dsp_err));
      Texttable.fmt_pct (avg (fun r -> r.bram_err));
      Texttable.fmt_pct (avg (fun r -> r.runtime_err));
      "";
      "";
    ]
  in
  "Table III: average absolute error of estimates vs. post-place-and-route reports\n"
  ^ "(paper: ALM 4.8%, DSP 7.5%, BRAM 12.3%, runtime 6.1%)\n"
  ^ Texttable.render
      ~header:[ "Benchmark"; "ALMs"; "DSPs"; "BRAM"; "Runtime"; "Designs"; "DSP order kept" ]
      (body @ [ footer ])

(* ------------------------------------------------------------------ *)
(* Table IV                                                            *)
(* ------------------------------------------------------------------ *)

type speed_result = {
  ours_sec_per_design : float;
  hls_restricted_sec_per_design : float;
  hls_full_sec_per_design : float;
  ours_points : int;
  restricted_points : int;
  full_points : int;
  restricted_speedup : float;
  full_speedup : float;
}

let table4 ?(seed = 2016) ?(ours_points = 250) ?(restricted_points = 40) ?(full_points = 4)
    ?(hls_cols = 96) ev =
  Obs.span "experiment.table4" @@ fun () ->
  (* Our estimator on GDA design points. *)
  let app = Registry.find "gda" in
  let sizes = app.App.paper_sizes in
  let points = Dhdl_dse.Space.sample (app.App.space sizes) ~seed ~max_points:ours_points in
  let t0 = Unix.gettimeofday () in
  (* Timing path: cache off, so repeated structures never flatter the
     paper's seconds-per-design comparison. *)
  List.iter
    (fun p -> ignore (Eval.estimate ~cache:false ev (app.App.generate ~sizes ~params:p)))
    points;
  let ours_elapsed = Unix.gettimeofday () -. t0 in
  let ours_sec = ours_elapsed /. float_of_int (max 1 (List.length points)) in
  (* Simulated HLS flow on Figure 2's kernel. *)
  let rng = Rng.create seed in
  let measure dirs limit =
    let sampled = Rng.sample rng dirs limit in
    let times =
      List.map
        (fun d ->
          let f = Dhdl_hls.Gda_c.build ~cols:hls_cols d in
          (Dhdl_hls.Scheduler.estimate f).Dhdl_hls.Scheduler.elapsed_seconds)
        sampled
    in
    (Stats.mean times, List.length sampled)
  in
  let restricted_sec, restricted_n =
    measure (Dhdl_hls.Gda_c.design_points ~restricted:true) restricted_points
  in
  let full_dirs =
    List.filter
      (fun d -> d.Dhdl_hls.Gda_c.pipeline_l1)
      (Dhdl_hls.Gda_c.design_points ~restricted:false)
  in
  let full_sec, full_n = measure full_dirs full_points in
  {
    ours_sec_per_design = ours_sec;
    hls_restricted_sec_per_design = restricted_sec;
    hls_full_sec_per_design = full_sec;
    ours_points = List.length points;
    restricted_points = restricted_n;
    full_points = full_n;
    restricted_speedup = (if ours_sec > 0.0 then restricted_sec /. ours_sec else 0.0);
    full_speedup = (if ours_sec > 0.0 then full_sec /. ours_sec else 0.0);
  }

let render_table4 r =
  "Table IV: average estimation time per design point (GDA)\n"
  ^ "(paper: 0.017 s/design vs 4.75 s restricted HLS vs 111.06 s full HLS; 279x / 6533x)\n"
  ^ Texttable.render
      ~header:[ "Tool"; "sec/design"; "points"; "slowdown vs ours" ]
      [
        [ "Our estimator"; Printf.sprintf "%.6f" r.ours_sec_per_design; string_of_int r.ours_points; "1x" ];
        [
          "HLS (restricted: no outer pipelining)";
          Printf.sprintf "%.4f" r.hls_restricted_sec_per_design;
          string_of_int r.restricted_points;
          Printf.sprintf "%.0fx" r.restricted_speedup;
        ];
        [
          "HLS (full: outer loop pipelined)";
          Printf.sprintf "%.2f" r.hls_full_sec_per_design;
          string_of_int r.full_points;
          Printf.sprintf "%.0fx" r.full_speedup;
        ];
      ]

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

type dse_app = { app_name : string; result : Explore.result }

let fig5 ?(seed = 2016) ?(max_points = 2_000) ?apps ev =
  Obs.span "experiment.fig5" @@ fun () ->
  let selected =
    match apps with
    | None -> Registry.all
    | Some names -> List.map Registry.find names
  in
  List.map
    (fun (app : App.t) ->
      { app_name = app.App.name; result = explore_app ~seed ~max_points ev app })
    selected

let render_fig5_app { app_name; result } =
  let evals = result.Explore.evaluations in
  let pareto = result.Explore.pareto in
  let valid = List.filter (fun (e : Explore.evaluation) -> e.Explore.valid) evals in
  let invalid = List.filter (fun (e : Explore.evaluation) -> not e.Explore.valid) evals in
  let series proj =
    [
      {
        Asciiplot.label = 'x';
        points = List.map (fun e -> (proj e, e.Explore.estimate.Estimator.cycles)) invalid;
      };
      {
        Asciiplot.label = '.';
        points = List.map (fun e -> (proj e, e.Explore.estimate.Estimator.cycles)) valid;
      };
      {
        Asciiplot.label = '*';
        points = List.map (fun e -> (proj e, e.Explore.estimate.Estimator.cycles)) pareto;
      };
    ]
  in
  let plot name proj =
    Printf.sprintf "%s — cycles (log10) vs %s%%  [. valid, x invalid, * Pareto]\n%s" app_name name
      (Asciiplot.render ~x_label:(name ^ " %") ~y_label:"cycles" ~log_y:true (series proj))
  in
  let pareto_rows =
    List.map
      (fun (e : Explore.evaluation) ->
        [
          String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) e.Explore.point);
          Texttable.fmt_int_commas (int_of_float e.Explore.estimate.Estimator.cycles);
          Texttable.fmt_float ~decimals:1 e.Explore.alm_pct;
          Texttable.fmt_float ~decimals:1 e.Explore.dsp_pct;
          Texttable.fmt_float ~decimals:1 e.Explore.bram_pct;
        ])
      (spread 8 pareto)
  in
  String.concat "\n"
    [
      Printf.sprintf "=== %s: %d sampled legal points (raw space %s), %d valid, %d Pareto ==="
        app_name result.Explore.sampled
        (Texttable.fmt_int_commas result.Explore.raw_space)
        (List.length valid) (List.length pareto);
      plot "ALM" (fun e -> e.Explore.alm_pct);
      plot "DSP" (fun e -> e.Explore.dsp_pct);
      plot "BRAM" (fun e -> e.Explore.bram_pct);
      "Pareto designs (subset):";
      Texttable.render
        ~aligns:[ Texttable.Left ]
        ~header:[ "parameters"; "cycles"; "ALM%"; "DSP%"; "BRAM%" ]
        pareto_rows;
      (match best_per_area result with
      | Some e ->
        Printf.sprintf "best performance-per-area: %s (%s cycles at %.1f%% ALM)"
          (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) e.Explore.point))
          (Texttable.fmt_int_commas (int_of_float e.Explore.estimate.Estimator.cycles))
          e.Explore.alm_pct
      | None -> "no valid designs");
    ]

let render_fig5 apps =
  "Figure 5: design space exploration (per-benchmark scatter + Pareto front)\n\n"
  ^ String.concat "\n" (List.map render_fig5_app apps)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

type speedup_row = {
  s_bench : string;
  fpga_seconds : float;
  cpu_seconds : float;
  speedup : float;
  best_params : (string * int) list;
}

let fig6 ?(seed = 2016) ?(max_points = 2_000) ev =
  Obs.span "experiment.fig6" @@ fun () ->
  List.map
    (fun (app : App.t) ->
      let result = explore_app ~seed ~max_points ev app in
      let best =
        match Explore.best result with
        | Some b -> b
        | None -> (
          match result.Explore.evaluations with
          | e :: _ -> e
          | [] -> failwith ("fig6: no design points for " ^ app.App.name))
      in
      let design = app.App.generate ~sizes:app.App.paper_sizes ~params:best.Explore.point in
      let sim = Perf_sim.simulate ~dev:(Estimator.device (Eval.estimator ev)) design in
      let cpu = Cost_model.seconds (app.App.cpu_workload app.App.paper_sizes) in
      {
        s_bench = app.App.name;
        fpga_seconds = sim.Perf_sim.seconds;
        cpu_seconds = cpu;
        speedup = cpu /. sim.Perf_sim.seconds;
        best_params = best.Explore.point;
      })
    Registry.all

let paper_fig6 =
  [
    ("dotproduct", 1.07);
    ("outerprod", 2.42);
    ("gemm", 0.10);
    ("tpchq6", 1.11);
    ("blackscholes", 16.73);
    ("gda", 4.55);
    ("kmeans", 1.15);
  ]

let render_fig6 rows =
  let body =
    List.map
      (fun r ->
        let paper = List.assoc_opt r.s_bench paper_fig6 in
        [
          r.s_bench;
          Printf.sprintf "%.4f" r.fpga_seconds;
          Printf.sprintf "%.4f" r.cpu_seconds;
          Printf.sprintf "%.2fx" r.speedup;
          (match paper with Some p -> Printf.sprintf "%.2fx" p | None -> "-");
          String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.best_params);
        ])
      rows
  in
  "Figure 6: speedup of best generated design over the 6-core CPU baseline\n"
  ^ Texttable.render
      ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Left ]
      ~header:[ "Benchmark"; "FPGA (s)"; "CPU (s)"; "Speedup"; "Paper"; "Best design" ]
      body

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

type metapipe_ablation = {
  m_bench : string;
  cycles_pipelined : float;
  cycles_sequential : float;
  benefit : float;
}

let force_sequential params =
  List.map
    (fun (k, v) ->
      if String.length k >= 4 && String.sub k 0 4 = "meta" then (k, 0) else (k, v))
    params

let ablation_metapipe ?(seed = 2016) ?(max_points = 800) ev =
  let est = Eval.estimator ev in
  List.filter_map
    (fun (app : App.t) ->
      let result = explore_app ~seed ~max_points ev app in
      match Explore.best result with
      | None -> None
      | Some best ->
        let sizes = app.App.paper_sizes in
        let seq_params = force_sequential best.Explore.point in
        let pipelined = Estimator.estimate_cycles est (app.App.generate ~sizes ~params:best.Explore.point) in
        let sequential = Estimator.estimate_cycles est (app.App.generate ~sizes ~params:seq_params) in
        Some
          {
            m_bench = app.App.name;
            cycles_pipelined = pipelined;
            cycles_sequential = sequential;
            benefit = sequential /. pipelined;
          })
    Registry.all

type correction_ablation = {
  c_bench : string;
  raw_alm_err : float;
  corrected_alm_err : float;
}

let ablation_nn_correction ?(seed = 2016) ?(sample = 300) ev =
  let est = Eval.estimator ev in
  List.map
    (fun (app : App.t) ->
      let result = explore_app ~seed ~max_points:sample ev app in
      let chosen = spread 3 (if result.Explore.pareto <> [] then result.Explore.pareto else result.Explore.evaluations) in
      let dev = Estimator.device est in
      let errors =
        List.map
          (fun (e : Explore.evaluation) ->
            let design = app.App.generate ~sizes:app.App.paper_sizes ~params:e.Explore.point in
            let rpt = Toolchain.synthesize ~dev design in
            let raw_area = Estimator.estimate_area_uncorrected est design in
            let actual = float_of_int rpt.Report.alms in
            ( Stats.percent_error ~actual ~predicted:(float_of_int raw_area.Estimator.alms),
              Stats.percent_error ~actual
                ~predicted:(float_of_int e.Explore.estimate.Estimator.area.Estimator.alms) ))
          chosen
      in
      {
        c_bench = app.App.name;
        raw_alm_err = Stats.mean (List.map fst errors);
        corrected_alm_err = Stats.mean (List.map snd errors);
      })
    Registry.all

type sampling_ablation = {
  sa_points : int;
  sa_best_cycles : float;
  sa_pareto_size : int;
}

let ablation_sampling ?(seed = 2016) ?(app = "gda") ?(budgets = [ 100; 300; 1_000; 3_000 ]) ev =
  let a = Registry.find app in
  List.map
    (fun budget ->
      let r = explore_app ~seed ~max_points:budget ev a in
      let best =
        match Explore.best r with
        | Some b -> b.Explore.estimate.Estimator.cycles
        | None -> nan
      in
      { sa_points = r.Explore.sampled; sa_best_cycles = best; sa_pareto_size = List.length r.Explore.pareto })
    budgets

let render_sampling app rows =
  Printf.sprintf "Ablation 3: random-sampling convergence on %s (SS IV.C)
" app
  ^ Texttable.render
      ~header:[ "sampled points"; "best cycles found"; "Pareto size" ]
      (List.map
         (fun r ->
           [
             string_of_int r.sa_points;
             Texttable.fmt_int_commas (int_of_float r.sa_best_cycles);
             string_of_int r.sa_pareto_size;
           ])
         rows)

type device_ablation = {
  d_bench : string;
  sampled : int;
  valid_d8 : int;
  valid_d5 : int;
  best_cycles_d8 : float;
  best_cycles_d5 : float;
}

let ablation_device ?(seed = 2016) ?(max_points = 800) ev =
  let d5 = Dhdl_device.Target.stratix_v_d5 in
  let fits_d5 (a : Estimator.area) =
    a.Estimator.alms <= d5.Dhdl_device.Target.alms
    && a.Estimator.dsps <= d5.Dhdl_device.Target.dsps
    && a.Estimator.brams <= d5.Dhdl_device.Target.brams
  in
  List.map
    (fun (app : App.t) ->
      let r = explore_app ~seed ~max_points ev app in
      let valid_d8 = List.filter (fun (e : Explore.evaluation) -> e.Explore.valid) r.Explore.evaluations in
      let valid_d5 =
        List.filter (fun (e : Explore.evaluation) -> fits_d5 e.Explore.estimate.Estimator.area)
          r.Explore.evaluations
      in
      let best evals =
        List.fold_left
          (fun acc (e : Explore.evaluation) -> Float.min acc e.Explore.estimate.Estimator.cycles)
          infinity evals
      in
      {
        d_bench = app.App.name;
        sampled = r.Explore.sampled;
        valid_d8 = List.length valid_d8;
        valid_d5 = List.length valid_d5;
        best_cycles_d8 = best valid_d8;
        best_cycles_d5 = best valid_d5;
      })
    Registry.all

let render_device rows =
  "Ablation 4: device sensitivity (same estimates, Stratix V D8 vs smaller D5)\n"
  ^ Texttable.render
      ~header:[ "Benchmark"; "sampled"; "valid on D8"; "valid on D5"; "best cycles D8"; "best cycles D5"; "slowdown" ]
      (List.map
         (fun r ->
           [
             r.d_bench;
             string_of_int r.sampled;
             string_of_int r.valid_d8;
             string_of_int r.valid_d5;
             Texttable.fmt_int_commas (int_of_float r.best_cycles_d8);
             Texttable.fmt_int_commas (int_of_float r.best_cycles_d5);
             Printf.sprintf "%.2fx" (r.best_cycles_d5 /. r.best_cycles_d8);
           ])
         rows)

type bandwidth_ablation = {
  b_bench : string;
  speedup_37 : float;
  speedup_75 : float;
}

let ablation_bandwidth ?(seed = 2016) ?(max_points = 800) ev =
  let fast_board =
    { Dhdl_device.Target.max4_maia with Dhdl_device.Target.achievable_bw_gbs = 75.0 }
  in
  List.map
    (fun (app : App.t) ->
      let r = explore_app ~seed ~max_points ev app in
      let best =
        match Explore.best r with
        | Some b -> b.Explore.point
        | None -> app.App.default_params app.App.paper_sizes
      in
      let design = app.App.generate ~sizes:app.App.paper_sizes ~params:best in
      let cpu = Cost_model.seconds (app.App.cpu_workload app.App.paper_sizes) in
      let s board = cpu /. (Perf_sim.simulate ~board design).Perf_sim.seconds in
      {
        b_bench = app.App.name;
        speedup_37 = s Dhdl_device.Target.max4_maia;
        speedup_75 = s fast_board;
      })
    Registry.all

let render_bandwidth rows =
  "Ablation 5: off-chip bandwidth sensitivity (best design, 37.5 vs 75 GB/s)\n"
  ^ Texttable.render
      ~header:[ "Benchmark"; "speedup @37.5 GB/s"; "speedup @75 GB/s"; "gain" ]
      (List.map
         (fun r ->
           [
             r.b_bench;
             Printf.sprintf "%.2fx" r.speedup_37;
             Printf.sprintf "%.2fx" r.speedup_75;
             Printf.sprintf "%.2fx" (r.speedup_75 /. r.speedup_37);
           ])
         rows)

let write_fig5_csvs ~dir apps =
  List.map
    (fun { app_name; result } ->
      let path = Filename.concat dir (Printf.sprintf "fig5_%s.csv" app_name) in
      let oc = open_out path in
      output_string oc (Explore.to_csv result);
      close_out oc;
      path)
    apps

let render_ablations metapipe nn =
  let mp_rows =
    List.map
      (fun m ->
        [
          m.m_bench;
          Texttable.fmt_int_commas (int_of_float m.cycles_pipelined);
          Texttable.fmt_int_commas (int_of_float m.cycles_sequential);
          Printf.sprintf "%.2fx" m.benefit;
        ])
      metapipe
  in
  let nn_rows =
    List.map
      (fun c ->
        [ c.c_bench; Texttable.fmt_pct c.raw_alm_err; Texttable.fmt_pct c.corrected_alm_err ])
      nn
  in
  "Ablation 1: MetaPipe coarse-grained pipelining (best design vs toggles forced Sequential)\n"
  ^ Texttable.render
      ~header:[ "Benchmark"; "pipelined cycles"; "sequential cycles"; "benefit" ]
      mp_rows
  ^ "\nAblation 2: hybrid estimation (raw template counts vs NN-corrected), ALM error\n"
  ^ Texttable.render ~header:[ "Benchmark"; "raw-only error"; "corrected error" ] nn_rows
