module Estimator = Dhdl_model.Estimator

type failure_stage = Generator_error | Lint_error | Estimator_error | Non_finite_estimate

type failure = {
  f_index : int;
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;
}

type evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type entry =
  | Evaluated of evaluation
  | Pruned
  | Absint_pruned
  | Dep_pruned
  | Sym_pruned
  | Failed of failure_stage * string

let stage_name = function
  | Generator_error -> "generator"
  | Lint_error -> "lint"
  | Estimator_error -> "estimator"
  | Non_finite_estimate -> "non_finite"

let stage_of_name = function
  | "generator" -> Some Generator_error
  | "lint" -> Some Lint_error
  | "estimator" -> Some Estimator_error
  | "non_finite" -> Some Non_finite_estimate
  | _ -> None
