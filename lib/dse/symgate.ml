(* The pre-elaboration legality gate.

   [derive] elaborates a small fixed-seed sample of a space's points,
   groups them by [Design_key] skeleton hash (one app space can contain
   several skeletons when meta-flags switch the generated graph shape),
   and hands each group to [Symbolic.derive] as its probe set. The
   result is a list of per-skeleton constraint systems; [verdict] routes
   a fresh binding to the unique system whose pinned parameters it
   satisfies and evaluates the predicate — microseconds, no generation.

   Routing is sound because a system's pinned parameters are exactly the
   ones constant across its probes: registry app generators branch on
   structure only via such flag parameters, so a binding that matches
   one group's pinned set elaborates to that group's skeleton. A binding
   matching zero or several groups (possible when the probe sample
   missed a flag combination) gets [Unknown] and the full pipeline. *)

module Symbolic = Dhdl_absint.Symbolic
module Design_key = Dhdl_model.Design_key

type t = { g_systems : Symbolic.system list }

let probe_seed = 0x5eed

let derive ?(probe_points = 48) ~space ~generate () =
  let points = Space.sample space ~seed:probe_seed ~max_points:probe_points in
  let params = List.map fst (Space.dims space) in
  let probes =
    List.filter_map
      (fun p -> match generate p with d -> Some (p, d) | exception _ -> None)
      points
  in
  let groups : (string, (Space.point * Dhdl_ir.Ir.design) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let order = ref [] in
  List.iter
    (fun ((_, d) as probe) ->
      let sk = Design_key.skeleton_hash d in
      match Hashtbl.find_opt groups sk with
      | Some l -> l := probe :: !l
      | None ->
        Hashtbl.add groups sk (ref [ probe ]);
        order := sk :: !order)
    probes;
  let systems =
    List.rev_map
      (fun sk ->
        let probes = List.rev !(Hashtbl.find groups sk) in
        Symbolic.derive ~skeleton:sk ~params ~probes)
      !order
  in
  { g_systems = systems }

let systems t = t.g_systems

let verdict t (point : Space.point) =
  match List.filter (fun sys -> Symbolic.Predicate.applies sys point) t.g_systems with
  | [ sys ] -> Symbolic.Predicate.eval sys point
  | [] -> Symbolic.Unknown "no derived system covers this binding"
  | _ :: _ :: _ -> Symbolic.Unknown "several derived systems claim this binding"
