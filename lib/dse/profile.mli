(** Contention-aware sweep attribution: where every worker-second and
    collector-second of a profiled {!Explore.run} went.

    The taxonomy (see DESIGN.md):
    {ul
    {- worker time splits into [generate] (design elaboration),
       [cache-probe] (deriving design keys and probing/filling the
       {!Eval} caches), [analyze] (lint + abstract interpretation),
       [estimate] (the area/cycle/NN estimator), [send-block] (blocked acquiring the
       collector-channel mutex — {e contention}), and [idle] (the residual:
       cursor claims, fault-key bookkeeping, loop overhead — {e stall});}
    {- collector time splits into [recv-block] (blocked waiting for worker
       messages), [checkpoint write], and [merge] (releasing outcomes and
       accounting — the residual);}
    {- the reorder buffer reports the total latency outcomes spent parked
       out of sampling-index order (this {e overlaps} recv-block: the
       collector is usually blocked while an entry is parked) plus its
       peak occupancy.}}

    Attribution is measured with plain [Unix.gettimeofday] stamps
    accumulated into per-worker records that only the owning domain
    writes, so profiling itself adds no cross-domain contention; it is
    entirely independent of the {!Dhdl_obs.Obs} sink (which, when also
    enabled, additionally receives wait histograms and per-domain
    counters). *)

type worker = {
  w_domain : int;  (** Worker index, 0-based ([jobs = 1] has exactly one). *)
  w_points : int;  (** Points this worker computed (over chunked claims). *)
  w_wall_s : float;  (** The worker's own wall-clock span. *)
  w_generate_s : float;
  w_probe_s : float;
      (** Design-key derivation + {!Eval} cache probes and fills — kept
          apart from [w_analyze_s] so memoization overhead never
          masquerades as analysis work. *)
  w_analyze_s : float;  (** Lint + absint + dependence checking (misses only). *)
  w_estimate_s : float;
  w_send_block_s : float;  (** Blocked sending to the collector channel. *)
  w_idle_s : float;  (** Residual: [wall - (the five above)], clamped at 0. *)
}

type collector = {
  c_wall_s : float;
  c_recv_block_s : float;  (** Blocked waiting on the channel. *)
  c_reorder_stall_s : float;
      (** Total time outcomes sat parked in the reorder buffer waiting for
          a preceding index; overlaps [c_recv_block_s]. *)
  c_write_s : float;  (** Checkpoint serialization + atomic rename. *)
  c_merge_s : float;  (** Residual: releasing/accounting outcomes. *)
}

type t = {
  jobs : int;
  wall_s : float;  (** Whole-sweep wall clock. *)
  workers : worker list;  (** One per worker domain, in index order. *)
  collector : collector;
  max_queue_depth : int;  (** Peak collector-channel queue length. *)
  max_reorder_occupancy : int;  (** Peak parked entries in the reorder buffer. *)
}

val worker_seconds : t -> float
(** Sum of per-worker wall spans (the denominator of scaling math). *)

val work_fraction : t -> float
(** Share of accounted worker time doing real work
    (generate + cache-probe + analyze + estimate). *)

val contention_fraction : t -> float
(** Share of accounted worker time blocked on shared resources
    (send-block). *)

val stall_fraction : t -> float
(** Share of accounted worker time idle (the residual category).
    [work_fraction + contention_fraction + stall_fraction = 1.0] exactly
    (fractions are taken over the accounted sum, not raw wall time). *)

val contenders : t -> (string * float) list
(** Seconds lost per contended resource: collector-channel send / recv,
    reorder buffer, checkpoint write. *)

val top_contender : t -> string * float
(** The {!contenders} entry with the most seconds ([("none", 0.)] when
    nothing waited). *)

val render : t -> string
(** Human-readable attribution report: headline fractions, top contended
    resource, a per-worker table, and the collector breakdown. *)

val to_json : t -> string
(** The whole record as one JSON object (fractions included), embeddable
    in [dhdl profile --json] and BENCH_dse.json. *)
