(** The one way to turn a design (or a design-space point) into an
    outcome.

    [Eval] owns the generate -> lint/absint -> estimate pipeline that
    used to be spliced inline into [Explore], the serve supervisor,
    [bin/dhdl] and the benches. Every caller now goes through a shared
    [Eval.t], which keys each elaborated design by its canonical
    {!Dhdl_model.Design_key} and memoizes the two expensive stages behind
    bounded content-addressed caches:

    - {b analysis} verdicts (lint + abstract-interpretation pruning) are
      keyed by the design key plus the enabled analysis set, so any two
      points that elaborate to the same graph share one proof effort —
      across sweeps, resumed sessions and server requests alike;
    - {b estimates} (area/cycles plus fit and utilization) are keyed by
      the full design key, which makes repeated, overlapping or resumed
      sweeps near-free once warm.

    Cached values are pure functions of their key (one [Eval.t] wraps one
    estimator, hence one device and one trained correction), so results
    are bit-identical with the cache cold, warm, or disabled; eviction is
    deterministic FIFO in insertion order. When fault injection is armed
    ([Faults.active ()]) both caches are bypassed entirely — injected
    faults are keyed per call site and per point, and serving a memoized
    result would replay another point's fault decision.

    Thread-safety: an [Eval.t] may be shared freely across domains (the
    parallel sweep engine and the serve supervisor both do); the caches
    are mutex-guarded and hit/miss accounting is atomic. *)

module Estimator = Dhdl_model.Estimator

(** Per-pipeline-stage wall-second accumulators, written only when a
    caller passes [?stages] (the profiled sweep path). [s_probe] is the
    time spent deriving keys and probing/filling the caches — kept apart
    from [s_analyze] so cache overhead never masquerades as analysis
    work in [Profile]'s attribution. *)
type stages = {
  mutable s_generate : float;
  mutable s_probe : float;
  mutable s_analyze : float;
  mutable s_estimate : float;
}

val fresh_stages : unit -> stages

type t

(** Cumulative cache accounting across both caches since [create]. *)
type stats = { hits : int; misses : int; evictions : int }

(** [create est] wraps an estimator in an evaluation pipeline.
    [analysis_cap] and [estimate_cap] bound the two caches (entries, not
    bytes); a cap of [0] disables that cache. Defaults hold a full
    paper-scale sweep (75k points) without eviction. *)
val create : ?analysis_cap:int -> ?estimate_cap:int -> Estimator.t -> t

(** The wrapped estimator, for callers that need device/board facts or
    the uncorrected model (degraded serve replies, utilization math). *)
val estimator : t -> Estimator.t

val stats : t -> stats

(** [evaluate t ~lint ~absint ~index ~generate point] runs the full
    barriered pipeline for one design-space point: every failure mode
    becomes a classified {!Outcome.entry} instead of an exception.
    [index] keys the deterministic fault-injection sites
    ([dse.generator] / [dse.lint] / [dse.estimator] / [dse.non_finite])
    so a resumed or parallel sweep replays the same faults at the same
    points. *)
val evaluate :
  t ->
  ?stages:stages ->
  lint:bool ->
  absint:bool ->
  index:int ->
  generate:(Space.point -> Dhdl_ir.Ir.design) ->
  Space.point ->
  Outcome.entry

(** [estimate t design] is the single-design entry point (CLI estimate /
    compare, serve requests, benches): a corrected estimate through the
    estimate cache. [~cache:false] forces a fresh run of the estimator —
    measurement paths (Table IV timings, microbenches) use it so cached
    repeats never flatter the paper's ms-per-design numbers. *)
val estimate : ?cache:bool -> t -> Dhdl_ir.Ir.design -> Estimator.estimate

(** [evaluation t point design] is {!estimate} plus fit and utilization,
    packaged as an {!Outcome.evaluation} (no fault sites, no exception
    barrier — callers that need those use {!evaluate}). *)
val evaluation :
  ?cache:bool -> t -> Space.point -> Dhdl_ir.Ir.design -> Outcome.evaluation
