module Estimator = Dhdl_model.Estimator
module Design_key = Dhdl_model.Design_key
module Lint = Dhdl_lint.Lint
module Diag = Dhdl_ir.Diag
module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs

type stages = {
  mutable s_generate : float;
  mutable s_probe : float;
  mutable s_analyze : float;
  mutable s_estimate : float;
}

let fresh_stages () = { s_generate = 0.0; s_probe = 0.0; s_analyze = 0.0; s_estimate = 0.0 }

(* Time one stage into [acc] via [add] when profiling; exactly [f ()]
   otherwise, so the unprofiled pipeline pays one option match per stage
   and no clock reads. *)
let timed stages add f =
  match stages with
  | None -> f ()
  | Some acc ->
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add acc (Unix.gettimeofday () -. t0)) f

let add_generate a d = a.s_generate <- a.s_generate +. d
let add_probe a d = a.s_probe <- a.s_probe +. d
let add_analyze a d = a.s_analyze <- a.s_analyze +. d
let add_estimate a d = a.s_estimate <- a.s_estimate +. d

(* Analysis verdict for one design, as cached: which prune class (if any)
   the enabled lint/absint passes put it in. Error-level diagnostics split
   three ways: heuristic lint errors prune the point (counted as lint);
   points whose errors include an abstract-interpretation proof
   (L009/L010, each carrying a concrete witness) are [Absint_refuted] —
   they describe hardware that provably corrupts data, so estimating them
   would pollute the frontier; and points whose only errors are
   dependence refutations of the chosen parallelization (L013) are
   [Dep_refuted] — the design is sound at par=1 but the sampled par is
   proven illegal. *)
type verdict = Clean | Heuristic_errors | Absint_refuted | Dep_refuted

(* Everything the estimate stage derives from one design, as cached. The
   fit bit and utilization percentages ride along so a cache hit skips
   the whole stage, not just the model evaluation. *)
type cached_eval = {
  ce_estimate : Estimator.estimate;
  ce_valid : bool;
  ce_alm : float;
  ce_dsp : float;
  ce_bram : float;
}

(* Bounded content-addressed memo table. FIFO eviction in insertion order:
   deterministic, and cheap enough to run under the same mutex as the
   probe. Hit/miss/eviction counts are atomics so the accounting itself
   never extends the critical section or races across domains. *)
module Cache = struct
  type 'a t = {
    cap : int;
    m : Mutex.t;
    tbl : (string, 'a) Hashtbl.t;
    fifo : string Queue.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    evictions : int Atomic.t;
  }

  let create cap =
    {
      cap;
      m = Mutex.create ();
      tbl = Hashtbl.create (max 16 (min 4096 cap));
      fifo = Queue.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
    }

  let enabled c = c.cap > 0

  let find c k =
    Mutex.lock c.m;
    let r = Hashtbl.find_opt c.tbl k in
    Mutex.unlock c.m;
    (match r with
    | Some _ ->
      Atomic.incr c.hits;
      if Obs.enabled () then Obs.count "dse.cache.hit"
    | None ->
      Atomic.incr c.misses;
      if Obs.enabled () then Obs.count "dse.cache.miss");
    r

  (* Two domains can race the same miss; the second [add] is a no-op so
     the FIFO never holds a key twice. *)
  let add c k v =
    let evicted = ref 0 in
    Mutex.lock c.m;
    if not (Hashtbl.mem c.tbl k) then begin
      Hashtbl.replace c.tbl k v;
      Queue.push k c.fifo;
      while Hashtbl.length c.tbl > c.cap do
        Hashtbl.remove c.tbl (Queue.pop c.fifo);
        incr evicted
      done
    end;
    Mutex.unlock c.m;
    if !evicted > 0 then begin
      ignore (Atomic.fetch_and_add c.evictions !evicted);
      if Obs.enabled () then Obs.count ~by:!evicted "dse.cache.evict"
    end
end

type t = {
  est : Estimator.t;
  analysis : verdict Cache.t;
  estimates : cached_eval Cache.t;
}

type stats = { hits : int; misses : int; evictions : int }

(* Big enough that a paper-scale sweep (75k points) never evicts; small
   enough (verdicts are words, estimates a few hundred bytes) that a
   long-running server stays bounded. *)
let default_cap = 131_072

let create ?(analysis_cap = default_cap) ?(estimate_cap = default_cap) est =
  if analysis_cap < 0 then
    failwith (Printf.sprintf "analysis_cap must be >= 0 (got %d)" analysis_cap);
  if estimate_cap < 0 then
    failwith (Printf.sprintf "estimate_cap must be >= 0 (got %d)" estimate_cap);
  { est; analysis = Cache.create analysis_cap; estimates = Cache.create estimate_cap }

let estimator t = t.est

let stats t =
  let get c =
    Cache.(Atomic.get c.hits, Atomic.get c.misses, Atomic.get c.evictions)
  in
  let ah, am, ae = get t.analysis in
  let eh, em, ee = get t.estimates in
  { hits = ah + eh; misses = am + em; evictions = ae + ee }

(* Render the exception behind a barrier without letting one bad message
   take the sweep down too. *)
let describe exn = try Printexc.to_string exn with _ -> "<unprintable exception>"

let finite_evaluation (e : Outcome.evaluation) =
  let ok f = Float.is_finite f && f >= 0.0 in
  ok e.Outcome.estimate.Estimator.cycles
  && ok e.Outcome.estimate.Estimator.seconds
  && ok e.Outcome.alm_pct && ok e.Outcome.dsp_pct && ok e.Outcome.bram_pct

let non_finite_detail (e : Outcome.evaluation) =
  Printf.sprintf "cycles=%h seconds=%h alm_pct=%h dsp_pct=%h bram_pct=%h"
    e.Outcome.estimate.Estimator.cycles e.Outcome.estimate.Estimator.seconds e.Outcome.alm_pct
    e.Outcome.dsp_pct e.Outcome.bram_pct

(* The analysis cache key: full design key plus the enabled analysis set
   (a lint-only verdict must never answer a lint+absint probe). The
   device is deliberately absent — one [Eval.t] wraps one estimator and
   therefore one device, so it is constant per cache. *)
let analysis_cache_key ~lint ~absint key =
  Design_key.to_string key ^ (if lint then "/l" else "/-") ^ if absint then "a" else "-"

let run_analysis t ?stages ~lint ~absint design =
  timed stages add_analyze @@ fun () ->
  let dev = Estimator.device t.est in
  let diags =
    if lint && absint then Lint.check ~dev design
    else if lint then Lint.check ~dev ~only:Lint.heuristic_codes design
    else if absint then Lint.check ~dev ~validate:false ~only:Lint.proof_codes design
    else []
  in
  let proof, heuristic =
    List.partition (fun g -> List.mem g.Diag.code Lint.proof_codes) (Lint.errors diags)
  in
  if heuristic <> [] then Heuristic_errors
  else if proof = [] then Clean
  else if List.for_all (fun g -> g.Diag.code = "L013") proof then Dep_refuted
  else Absint_refuted

let analysis_verdict t ?stages ~bypass ~lint ~absint ~key design =
  if (not lint) && not absint then Clean
  else if bypass || not (Cache.enabled t.analysis) then run_analysis t ?stages ~lint ~absint design
  else begin
    let ck =
      timed stages add_probe @@ fun () -> analysis_cache_key ~lint ~absint (Lazy.force key)
    in
    match timed stages add_probe (fun () -> Cache.find t.analysis ck) with
    | Some v -> v
    | None ->
      let v = run_analysis t ?stages ~lint ~absint design in
      timed stages add_probe (fun () -> Cache.add t.analysis ck v);
      v
  end

let run_estimate t ?stages design =
  timed stages add_estimate @@ fun () ->
  let e = Estimator.estimate t.est design in
  let alm, dsp, bram = Estimator.utilization t.est e.Estimator.area in
  {
    ce_estimate = e;
    ce_valid = Estimator.fits t.est e.Estimator.area;
    ce_alm = alm;
    ce_dsp = dsp;
    ce_bram = bram;
  }

let cached_estimate t ?stages ~bypass ~key design =
  if bypass || not (Cache.enabled t.estimates) then run_estimate t ?stages design
  else begin
    let ck = timed stages add_probe @@ fun () -> Design_key.to_string (Lazy.force key) in
    match timed stages add_probe (fun () -> Cache.find t.estimates ck) with
    | Some v -> v
    | None ->
      let v = run_estimate t ?stages design in
      timed stages add_probe (fun () -> Cache.add t.estimates ck v);
      v
  end

(* The exception barrier around one point's generate -> analyze ->
   estimate pipeline: every failure mode becomes a classified entry
   instead of killing the sweep. [Faults.inject] sites (keyed by point
   index so a resumed sweep replays the same faults) let tests exercise
   each arm. When any fault site is armed the caches are bypassed
   outright: the [estimator.nn_correction] site fires *inside*
   [Estimator.estimate] under the ambient per-point key, so a memoized
   estimate would replay another point's fault decision and break the
   bit-identical-under-faults guarantee the fault tests pin. *)
let evaluate t ?stages ~lint ~absint ~index ~generate point =
  match
    try
      Faults.inject ~key:index "dse.generator";
      Ok (timed stages add_generate (fun () -> generate point))
    with exn -> Error (Outcome.Generator_error, describe exn)
  with
  | Error (stage, msg) -> Outcome.Failed (stage, msg)
  | Ok design -> (
    let bypass = Faults.active () in
    (* Shared lazily between the two cached stages: the estimate probe
       reuses the key the analysis probe derived, and cache-off or
       bypassed runs never pay for a key at all. *)
    let key = lazy (Design_key.of_design design) in
    match
      try
        Faults.inject ~key:index "dse.lint";
        Ok (analysis_verdict t ?stages ~bypass ~lint ~absint ~key design)
      with exn -> Error (Outcome.Lint_error, describe exn)
    with
    | Error (stage, msg) -> Outcome.Failed (stage, msg)
    | Ok Heuristic_errors -> Outcome.Pruned
    | Ok Absint_refuted -> Outcome.Absint_pruned
    | Ok Dep_refuted -> Outcome.Dep_pruned
    | Ok Clean -> (
      try
        Faults.inject ~key:index "dse.estimator";
        let ce = cached_estimate t ?stages ~bypass ~key design in
        let e =
          {
            Outcome.point;
            estimate = ce.ce_estimate;
            valid = ce.ce_valid;
            alm_pct = ce.ce_alm;
            dsp_pct = ce.ce_dsp;
            bram_pct = ce.ce_bram;
          }
        in
        let e =
          if Faults.fires ~key:index "dse.non_finite" then
            { e with Outcome.estimate = { e.Outcome.estimate with Estimator.cycles = Float.nan } }
          else e
        in
        if finite_evaluation e then Outcome.Evaluated e
        else
          Outcome.Failed
            (Outcome.Non_finite_estimate, "estimate not finite: " ^ non_finite_detail e)
      with exn -> Outcome.Failed (Outcome.Estimator_error, describe exn)))

let cached_eval_of ?(cache = true) t design =
  let bypass = (not cache) || Faults.active () in
  cached_estimate t ~bypass ~key:(lazy (Design_key.of_design design)) design

let estimate ?cache t design = (cached_eval_of ?cache t design).ce_estimate

let evaluation ?cache t point design =
  let ce = cached_eval_of ?cache t design in
  {
    Outcome.point;
    estimate = ce.ce_estimate;
    valid = ce.ce_valid;
    alm_pct = ce.ce_alm;
    dsp_pct = ce.ce_dsp;
    bram_pct = ce.ce_bram;
  }
