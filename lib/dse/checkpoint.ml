module Estimator = Dhdl_model.Estimator
module Area_model = Dhdl_model.Area_model
module R = Dhdl_device.Resources

type t = {
  space_name : string;
  seed : int;
  max_points : int;
  total : int;
  params : string list;
  entries : (int * Outcome.entry) list;
  truncated_tail : bool;
}

let version = 1

(* ------------------------------------------------------------------ *)
(* Rendering.  Floats are written as C99 hex literals ("%h") so that a
   loaded checkpoint reproduces the original values bit-for-bit — the
   resume guarantee is that a resumed sweep equals an uninterrupted one
   structurally, floats included. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let hex f = Printf.sprintf "\"%h\"" f
let ints xs = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]"

let render_entry i (e : Outcome.entry) =
  match e with
  | Outcome.Pruned -> Printf.sprintf "{\"kind\":\"pruned\",\"i\":%d}" i
  | Outcome.Absint_pruned -> Printf.sprintf "{\"kind\":\"absint_pruned\",\"i\":%d}" i
  | Outcome.Dep_pruned -> Printf.sprintf "{\"kind\":\"dep_pruned\",\"i\":%d}" i
  | Outcome.Sym_pruned -> Printf.sprintf "{\"kind\":\"sym_pruned\",\"i\":%d}" i
  | Outcome.Failed (stage, msg) ->
    Printf.sprintf "{\"kind\":\"failed\",\"i\":%d,\"stage\":\"%s\",\"msg\":\"%s\"}" i
      (Outcome.stage_name stage) (escape msg)
  | Outcome.Evaluated ev ->
    let est = ev.Outcome.estimate in
    let a = est.Estimator.area in
    let raw = est.Estimator.raw in
    let res = raw.Area_model.resources in
    Printf.sprintf
      "{\"kind\":\"eval\",\"i\":%d,\"point\":%s,\"valid\":%b,\"alm_pct\":%s,\"dsp_pct\":%s,\"bram_pct\":%s,\"cycles\":%s,\"seconds\":%s,\"area\":%s,\"raw\":%s,\"avg_fanout\":%s}"
      i
      (ints (List.map snd ev.Outcome.point))
      ev.Outcome.valid (hex ev.Outcome.alm_pct) (hex ev.Outcome.dsp_pct) (hex ev.Outcome.bram_pct)
      (hex est.Estimator.cycles) (hex est.Estimator.seconds)
      (ints
         [ a.Estimator.alms; a.Estimator.luts; a.Estimator.regs; a.Estimator.dsps;
           a.Estimator.brams; a.Estimator.routing_luts; a.Estimator.unavailable_luts;
           a.Estimator.duplicated_regs; a.Estimator.duplicated_brams ])
      (ints
         [ res.R.lut_packable; res.R.lut_unpackable; res.R.regs; res.R.dsps; res.R.brams;
           raw.Area_model.nets; raw.Area_model.tree_depth; raw.Area_model.streams;
           raw.Area_model.ctrl_count; raw.Area_model.double_buffers; raw.Area_model.prim_count ])
      (hex raw.Area_model.avg_fanout)

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"kind\":\"header\",\"version\":%d,\"space\":\"%s\",\"seed\":%d,\"max_points\":%d,\"total\":%d,\"params\":[%s]}\n"
       version (escape t.space_name) t.seed t.max_points t.total
       (String.concat "," (List.map (fun p -> "\"" ^ escape p ^ "\"") t.params)));
  List.iter
    (fun (i, e) ->
      Buffer.add_string buf (render_entry i e);
      Buffer.add_char buf '\n')
    t.entries;
  Buffer.contents buf

(* Atomic write: the checkpoint on disk is always a complete, parseable
   snapshot — a crash mid-write leaves the previous checkpoint intact. *)
let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render t));
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Parsing: a minimal JSON reader covering exactly the subset above. *)

exception Bad of string

type json =
  | Null
  | Bool of bool
  | Num of string  (** Raw lexeme; converted on access. *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\r') do incr pos done
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let h = String.init 4 (fun _ -> next ()) in
          let code = try int_of_string ("0x" ^ h) with _ -> fail "bad \\u escape" in
          Buffer.add_char buf (if code < 256 then Char.chr code else '?')
        | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then (incr pos; Arr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elements (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | Some c when is_num_char c ->
      let start = !pos in
      while !pos < n && is_num_char s.[!pos] do incr pos done;
      Num (String.sub s start (!pos - start))
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad ("expected an object with field " ^ name))

let as_int = function
  | Num raw -> (try int_of_string raw with _ -> raise (Bad ("bad integer " ^ raw)))
  | _ -> raise (Bad "expected an integer")

let as_float_hex = function
  | Str raw -> (try float_of_string raw with _ -> raise (Bad ("bad float " ^ raw)))
  | _ -> raise (Bad "expected a hex-float string")

let as_string = function Str s -> s | _ -> raise (Bad "expected a string")
let as_bool = function Bool b -> b | _ -> raise (Bad "expected a bool")
let as_list = function Arr xs -> xs | _ -> raise (Bad "expected an array")
let int_list v = List.map as_int (as_list v)

let entry_of_json ~params j : int * Outcome.entry =
  let i = as_int (member "i" j) in
  match as_string (member "kind" j) with
  | "pruned" -> (i, Outcome.Pruned)
  | "absint_pruned" -> (i, Outcome.Absint_pruned)
  | "dep_pruned" -> (i, Outcome.Dep_pruned)
  | "sym_pruned" -> (i, Outcome.Sym_pruned)
  | "failed" ->
    let stage =
      let name = as_string (member "stage" j) in
      match Outcome.stage_of_name name with
      | Some s -> s
      | None -> raise (Bad ("unknown failure stage " ^ name))
    in
    (i, Outcome.Failed (stage, as_string (member "msg" j)))
  | "eval" ->
    let point_vals = int_list (member "point" j) in
    if List.length point_vals <> List.length params then
      raise (Bad "point arity does not match header params");
    let point = List.combine params point_vals in
    let area =
      match int_list (member "area" j) with
      | [ alms; luts; regs; dsps; brams; routing_luts; unavailable_luts; duplicated_regs;
          duplicated_brams ] ->
        { Estimator.alms; luts; regs; dsps; brams; routing_luts; unavailable_luts;
          duplicated_regs; duplicated_brams }
      | _ -> raise (Bad "area must have 9 fields")
    in
    let raw =
      match int_list (member "raw" j) with
      | [ lut_packable; lut_unpackable; regs; dsps; brams; nets; tree_depth; streams; ctrl_count;
          double_buffers; prim_count ] ->
        { Area_model.resources = { R.lut_packable; lut_unpackable; regs; dsps; brams };
          nets; avg_fanout = as_float_hex (member "avg_fanout" j); tree_depth; streams;
          ctrl_count; double_buffers; prim_count }
      | _ -> raise (Bad "raw must have 11 fields")
    in
    let estimate =
      { Estimator.area; cycles = as_float_hex (member "cycles" j);
        seconds = as_float_hex (member "seconds" j); raw }
    in
    ( i,
      Outcome.Evaluated
        { Outcome.point; estimate; valid = as_bool (member "valid" j);
          alm_pct = as_float_hex (member "alm_pct" j);
          dsp_pct = as_float_hex (member "dsp_pct" j);
          bram_pct = as_float_hex (member "bram_pct" j) } )
  | kind -> raise (Bad ("unknown entry kind " ^ kind))

let load ~path =
  try
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    match lines with
    | [] -> Error (path ^ ": empty checkpoint")
    | header :: rest ->
      let h = parse_json header in
      if as_string (member "kind" h) <> "header" then raise (Bad "first line is not a header");
      let v = as_int (member "version" h) in
      if v <> version then raise (Bad (Printf.sprintf "unsupported checkpoint version %d" v));
      let params = List.map as_string (as_list (member "params" h)) in
      (* A crash mid-append can tear the final line (the atomic temp-file +
         rename protocol makes this impossible for [save], but other
         writers — or a torn copy — may hand us such a file). A torn tail
         carries no information the sweep cannot recompute, so drop it and
         flag the load instead of rejecting the whole checkpoint; a parse
         error on any non-final line is still real corruption. *)
      let rec parse_entries acc = function
        | [] -> (List.rev acc, false)
        | [ last ] -> (
          match entry_of_json ~params (parse_json last) with
          | e -> (List.rev (e :: acc), false)
          | exception Bad _ -> (List.rev acc, true))
        | line :: rest -> parse_entries (entry_of_json ~params (parse_json line) :: acc) rest
      in
      let entries, truncated_tail = parse_entries [] rest in
      Ok
        {
          space_name = as_string (member "space" h);
          seed = as_int (member "seed" h);
          max_points = as_int (member "max_points" h);
          total = as_int (member "total" h);
          params;
          entries = List.sort (fun (a, _) (b, _) -> compare a b) entries;
          truncated_tail;
        }
  with
  | Bad msg -> Error (Printf.sprintf "%s: corrupt checkpoint (%s)" path msg)
  | Sys_error msg -> Error msg
