(** Crash-safe JSONL checkpoints for DSE sweeps.

    A checkpoint is a single JSONL file: a header line carrying the sweep
    identity (space name, seed, max_points, sampled total, parameter names
    in point order), then one line per processed point in sampling order —
    [eval] (the full evaluation, floats as bit-exact C99 hex literals),
    [pruned] (dropped by an error-level lint diagnostic) or [failed]
    (classified {!Outcome.failure_stage} plus message).

    {!save} writes atomically (temp file + rename), so the file on disk is
    always a complete snapshot: a sweep killed mid-write resumes from the
    previous checkpoint rather than a torn one. Hex-float round-tripping
    makes a resumed sweep's evaluations structurally equal to an
    uninterrupted run's.

    {!load} additionally tolerates a {e torn tail}: when only the final
    JSONL line fails to parse (a crash truncated an append from a
    non-atomic writer, or a copy was cut short), the line is dropped, the
    complete prefix loads normally, and [truncated_tail] flags the loss so
    resume reports can surface it. Corruption anywhere before the final
    line is still rejected. *)

type t = {
  space_name : string;
  seed : int;
  max_points : int;
  total : int;  (** Points sampled by the sweep being checkpointed. *)
  params : string list;  (** Parameter names, in point order. *)
  entries : (int * Outcome.entry) list;  (** Ascending by point index. *)
  truncated_tail : bool;
      (** Set by {!load} when a torn final line was dropped; [false] for
          checkpoints built in memory, and ignored by {!render}/{!save}. *)
}

val version : int
(** Format version written in the header; {!load} rejects others. *)

val render : t -> string
(** The JSONL text. Deterministic: two identical sweeps render
    byte-identical checkpoints (used by the golden-file tests). *)

val save : path:string -> t -> unit
(** Atomically replace [path] with [render t] (writes [path ^ ".tmp"],
    then renames). *)

val load : path:string -> (t, string) result
(** Parse a checkpoint; [Error] describes a missing, unreadable, corrupt,
    or wrong-version file. *)
