module Estimator = Dhdl_model.Estimator
module Lint = Dhdl_lint.Lint
module Pareto = Dhdl_util.Pareto
module Obs = Dhdl_obs.Obs

type evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type result = {
  space_name : string;
  param_names : string list;
  evaluations : evaluation list;
  pareto : evaluation list;
  raw_space : int;
  sampled : int;
  lint_pruned : int;
  elapsed_seconds : float;
}

let evaluate est point design =
  let e = Estimator.estimate est design in
  let alm_pct, dsp_pct, bram_pct = Estimator.utilization est e.Estimator.area in
  {
    point;
    estimate = e;
    valid = Estimator.fits est e.Estimator.area;
    alm_pct;
    dsp_pct;
    bram_pct;
  }

let pareto_of evals =
  let valid = List.filter (fun e -> e.valid) evals in
  Pareto.frontier (fun e -> (e.estimate.Estimator.cycles, e.alm_pct)) valid

let run ?(seed = 2016) ?(max_points = 75_000) ?(lint = true) ?(span_every = 100)
    ?(tick_every = 1000) est ~space ~generate () =
  Obs.span "dse.run" ~attrs:[ ("space", Space.name space) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let points = Obs.span "dse.sample" (fun () -> Space.sample space ~seed ~max_points) in
  let total = List.length points in
  if Obs.enabled () then begin
    (* Register the pruning counters up front so reports show them at zero
       for sweeps where nothing gets pruned. *)
    Obs.count ~by:total "dse.points_sampled";
    Obs.count ~by:0 "dse.lint_pruned";
    Obs.count ~by:0 "dse.estimated"
  end;
  let dev = Estimator.device est in
  let lint_pruned = ref 0 in
  let idx = ref 0 in
  let evaluations =
    List.filter_map
      (fun p ->
        let i = !idx in
        incr idx;
        Obs.tick ~every:tick_every ~label:("dse " ^ Space.name space) ~total i;
        Obs.span_sampled ~every:span_every ~i "dse.point" @@ fun () ->
        let design = generate p in
        (* Error-level diagnostics (races, hazards, provable capacity
           overflow) mean the point can never produce working hardware, so
           skip the estimator entirely — the paper's pre-estimation pruning
           (Section IV.C). *)
        if lint && Lint.has_errors (Lint.check ~dev design) then begin
          incr lint_pruned;
          Obs.count "dse.lint_pruned";
          None
        end
        else if Obs.enabled () then begin
          Obs.count "dse.estimated";
          let t0 = Unix.gettimeofday () in
          let e = evaluate est p design in
          Obs.observe "dse.ms_per_design" ((Unix.gettimeofday () -. t0) *. 1000.0);
          Some e
        end
        else Some (evaluate est p design))
      points
  in
  let pareto = Obs.span "dse.pareto" (fun () -> pareto_of evaluations) in
  let elapsed = Unix.gettimeofday () -. t0 in
  if Obs.enabled () then begin
    Obs.count ~by:(List.length (List.filter (fun e -> not e.valid) evaluations)) "dse.unfit";
    Obs.gauge "dse.points_per_sec"
      (if elapsed > 0.0 then float_of_int total /. elapsed else 0.0)
  end;
  {
    space_name = Space.name space;
    param_names = List.map fst (Space.dims space);
    evaluations;
    pareto;
    raw_space = Space.raw_size space;
    sampled = total;
    lint_pruned = !lint_pruned;
    elapsed_seconds = elapsed;
  }

let unfit_count r = List.length (List.filter (fun e -> not e.valid) r.evaluations)

let best r =
  match r.pareto with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc e -> if e.estimate.Estimator.cycles < acc.estimate.Estimator.cycles then e else acc)
         first rest)

(* Lint-pruned points never reach the estimator, so the paper's ms/design
   metric (Table IV) divides by the points actually estimated. *)
let seconds_per_design r =
  let estimated = r.sampled - r.lint_pruned in
  if estimated <= 0 then 0.0 else r.elapsed_seconds /. float_of_int estimated

let to_csv r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," r.param_names);
  Buffer.add_string buf ",cycles,alm_pct,dsp_pct,bram_pct,valid,pareto\n";
  let pareto_set = Hashtbl.create (2 * List.length r.pareto) in
  List.iter (fun e -> Hashtbl.replace pareto_set e.point ()) r.pareto;
  List.iter
    (fun e ->
      List.iter (fun (_, v) -> Buffer.add_string buf (string_of_int v ^ ",")) e.point;
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.3f,%.3f,%.3f,%d,%d\n" e.estimate.Estimator.cycles e.alm_pct
           e.dsp_pct e.bram_pct
           (if e.valid then 1 else 0)
           (if Hashtbl.mem pareto_set e.point then 1 else 0)))
    r.evaluations;
  Buffer.contents buf
