module Estimator = Dhdl_model.Estimator
module Pareto = Dhdl_util.Pareto
module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs
module Symbolic = Dhdl_absint.Symbolic

type evaluation = Outcome.evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type failure_stage = Outcome.failure_stage =
  | Generator_error
  | Lint_error
  | Estimator_error
  | Non_finite_estimate

type failure = Outcome.failure = {
  f_index : int;
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;
}

type result = {
  space_name : string;
  param_names : string list;
  evaluations : evaluation list;
  pareto : evaluation list;
  failures : failure list;
  raw_space : int;
  sampled : int;
  processed : int;
  lint_pruned : int;
  absint_pruned : int;
  dep_pruned : int;
  sym_pruned : int;
  resumed : int;
  truncated : bool;
  jobs : int;
  elapsed_seconds : float;
  cpu_seconds : float;
  cache_hits : int;
  cache_misses : int;
  attribution : Profile.t option;
}

(* ------------------------------------------------------------------ *)
(* Sweep configuration.  One record replaces the labelled-optional
   argument soup the old [run] signature had accreted: every knob has a
   validated default, call sites spell out only what they change, and new
   knobs (like [jobs]) stop rippling through every caller's signature. *)

module Config = struct
  type t = {
    seed : int;
    max_points : int;
    lint : bool;
    absint : bool;
    symbolic : bool;
    jobs : int;
    chunk : int;
    span_every : int;
    tick_every : int;
    checkpoint : string option;
    checkpoint_every : int;
    resume : bool;
    deadline_seconds : float option;
    profile : bool;
    stop_requested : (unit -> bool) option;
  }

  (* OCaml's runtime caps live domains well above this, but a sweep gains
     nothing past the core count; reject absurd values early with the same
     [Failure]-based message style the CLI's error handler renders. *)
  let max_jobs = 64

  (* A chunk is one claim and one collector message; past a few thousand
     points per message the reorder buffer holds most of the sweep. *)
  let max_chunk = 65_536

  let validate t =
    if t.jobs < 1 then failwith (Printf.sprintf "jobs must be >= 1 (got %d)" t.jobs);
    if t.jobs > max_jobs then
      failwith (Printf.sprintf "jobs must be <= %d (got %d)" max_jobs t.jobs);
    if t.chunk < 1 then failwith (Printf.sprintf "chunk must be >= 1 (got %d)" t.chunk);
    if t.chunk > max_chunk then
      failwith (Printf.sprintf "chunk must be <= %d (got %d)" max_chunk t.chunk);
    if t.max_points < 0 then
      failwith (Printf.sprintf "max_points must be >= 0 (got %d)" t.max_points);
    if t.checkpoint_every < 0 then
      failwith (Printf.sprintf "checkpoint_every must be >= 0 (got %d)" t.checkpoint_every);
    (match t.deadline_seconds with
    | Some d when not (Float.is_finite d && d >= 0.0) ->
      failwith (Printf.sprintf "deadline must be a finite number of seconds >= 0 (got %g)" d)
    | _ -> ());
    t

  (* Cross-field check, applied when the config is consumed (not in every
     [with_*] builder, so builder order never matters). *)
  let validate_run t =
    if t.resume && t.checkpoint = None then failwith "--resume requires --checkpoint FILE";
    validate t

  let default =
    {
      seed = 2016;
      max_points = 75_000;
      lint = true;
      absint = true;
      symbolic = true;
      jobs = 1;
      chunk = 16;
      span_every = 100;
      tick_every = 1000;
      checkpoint = None;
      checkpoint_every = 500;
      resume = false;
      deadline_seconds = None;
      profile = false;
      stop_requested = None;
    }

  let make ?(seed = default.seed) ?(max_points = default.max_points) ?(lint = default.lint)
      ?(absint = default.absint) ?(symbolic = default.symbolic) ?(jobs = default.jobs)
      ?(chunk = default.chunk) ?(span_every = default.span_every)
      ?(tick_every = default.tick_every) ?checkpoint
      ?(checkpoint_every = default.checkpoint_every) ?(resume = default.resume)
      ?deadline_seconds ?(profile = default.profile) ?stop_requested () =
    validate_run
      { seed; max_points; lint; absint; symbolic; jobs; chunk; span_every; tick_every;
        checkpoint; checkpoint_every; resume; deadline_seconds; profile; stop_requested }

  let with_seed seed t = validate { t with seed }
  let with_max_points max_points t = validate { t with max_points }
  let with_lint lint t = validate { t with lint }
  let with_absint absint t = validate { t with absint }
  let with_symbolic symbolic t = validate { t with symbolic }
  let with_jobs jobs t = validate { t with jobs }
  let with_chunk chunk t = validate { t with chunk }
  let with_span_every span_every t = validate { t with span_every }
  let with_tick_every tick_every t = validate { t with tick_every }

  let with_checkpoint ?(every = default.checkpoint_every) path t =
    validate { t with checkpoint = Some path; checkpoint_every = every }

  let with_resume resume t = validate { t with resume }
  let with_deadline deadline t = validate { t with deadline_seconds = Some deadline }
  let with_profile profile t = validate { t with profile }
  let with_stop_check stop t = validate { t with stop_requested = Some stop }
end

let pareto_of evals =
  let valid = List.filter (fun e -> e.valid) evals in
  Pareto.frontier (fun e -> (e.estimate.Estimator.cycles, e.alm_pct)) valid

let stage_counter stage = "dse.failed." ^ Outcome.stage_name stage

let load_resume ~path ~space ~seed ~max_points ~total ~param_names =
  if not (Sys.file_exists path) then Hashtbl.create 1
  else
    match Checkpoint.load ~path with
    | Error msg -> failwith ("cannot resume: " ^ msg)
    | Ok c ->
      if
        c.Checkpoint.space_name <> Space.name space
        || c.Checkpoint.seed <> seed
        || c.Checkpoint.max_points <> max_points
        || c.Checkpoint.total <> total
        || c.Checkpoint.params <> param_names
      then
        failwith
          (Printf.sprintf
             "cannot resume: checkpoint %s was taken for sweep (space=%s seed=%d max_points=%d \
              total=%d), not (space=%s seed=%d max_points=%d total=%d)"
             path c.Checkpoint.space_name c.Checkpoint.seed c.Checkpoint.max_points
             c.Checkpoint.total (Space.name space) seed max_points total)
      else begin
        if c.Checkpoint.truncated_tail then
          Printf.eprintf
            "warning: checkpoint %s had a torn final line (dropped); resuming from %d complete \
             entr%s\n\
             %!"
            path
            (List.length c.Checkpoint.entries)
            (if List.length c.Checkpoint.entries = 1 then "y" else "ies");
        let tbl = Hashtbl.create (2 * List.length c.Checkpoint.entries) in
        List.iter (fun (i, e) -> Hashtbl.replace tbl i e) c.Checkpoint.entries;
        tbl
      end

(* One worker-to-collector message: a contiguous run of outcomes starting
   at sampling index [lo] (each with its resume flag and pipeline CPU
   seconds), or a worker signing off. One message per *chunk* — not per
   point — is what keeps the channel off the contention profile. *)
type msg = Chunk of int * (Outcome.entry * bool * float) array | Worker_done

(* Minimal mutex/condition channel between worker domains and the
   collector. Unbounded: the collector's per-message work (merging a
   chunk and an occasional checkpoint) is far cheaper than the chunk's
   pipeline, so the queue stays shallow. [max_depth] tracks the
   high-water mark under the lock (one compare per push); when profiling,
   [?wait] accumulates the seconds a caller spent blocked — lock
   acquisition on the send side, lock + condition wait on the receive
   side — into a caller-owned ref, so the measurement itself shares no
   state between domains. *)
module Chan = struct
  type 'a t = {
    m : Mutex.t;
    nonempty : Condition.t;
    q : 'a Queue.t;
    mutable max_depth : int;
  }

  let create () =
    { m = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); max_depth = 0 }

  let push ?wait t x =
    (match wait with
    | None -> Mutex.lock t.m
    | Some acc ->
      let t0 = Unix.gettimeofday () in
      Mutex.lock t.m;
      acc := !acc +. (Unix.gettimeofday () -. t0));
    Queue.push x t.q;
    let d = Queue.length t.q in
    if d > t.max_depth then t.max_depth <- d;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let pop ?wait t =
    let t0 = match wait with None -> 0.0 | Some _ -> Unix.gettimeofday () in
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.nonempty t.m
    done;
    (match wait with
    | None -> ()
    | Some acc -> acc := !acc +. (Unix.gettimeofday () -. t0));
    let x = Queue.pop t.q in
    Mutex.unlock t.m;
    x
end

let run (cfg : Config.t) (ev : Eval.t) ~space ~generate =
  let cfg = Config.validate_run cfg in
  let { Config.seed; max_points; lint; absint; symbolic; jobs; chunk; span_every; tick_every;
        checkpoint; checkpoint_every; resume; deadline_seconds; profile; stop_requested } =
    cfg
  in
  Obs.span "dse.run"
    ~attrs:[ ("space", Space.name space); ("jobs", string_of_int jobs) ]
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let points = Obs.span "dse.sample" (fun () -> Space.sample space ~seed ~max_points) in
  let total = List.length points in
  let param_names = List.map fst (Space.dims space) in
  if Obs.enabled () then begin
    (* Register every counter up front so reports show the full set at
       zero even for clean or empty sweeps. *)
    Obs.count ~by:total "dse.points_sampled";
    Obs.count ~by:0 "dse.lint_pruned";
    Obs.count ~by:0 "dse.absint_pruned";
    Obs.count ~by:0 "dse.dep_pruned";
    Obs.count ~by:0 "dse.sym_pruned";
    Obs.count ~by:0 "dse.estimated";
    Obs.count ~by:0 "dse.unfit";
    Obs.count ~by:0 "dse.cache.hit";
    Obs.count ~by:0 "dse.cache.miss";
    Obs.count ~by:0 "dse.cache.evict";
    List.iter
      (fun stage -> Obs.count ~by:0 (stage_counter stage))
      [ Generator_error; Lint_error; Estimator_error; Non_finite_estimate ]
  end;
  let prior =
    match checkpoint with
    | Some path when resume ->
      load_resume ~path ~space ~seed ~max_points ~total ~param_names
    | _ -> Hashtbl.create 1
  in
  (* The symbolic gate is derived once, before any worker starts, from a
     fixed-seed probe sample — so every point (on every domain, at every
     chunk size) consults the identical constraint system and the
     bit-identical-checkpoint guarantee survives. It only runs when both
     analysis passes it fronts for are on (otherwise pruning points the
     concrete pipeline would have kept changes results), and stands down
     while fault injection is armed, because its probe elaborations
     would consume fault sites the per-point replay expects. *)
  let gate =
    if symbolic && lint && absint && not (Faults.active ()) then
      Some (Obs.span "dse.symgate" (fun () -> Symgate.derive ~space ~generate ()))
    else None
  in
  let stats0 = Eval.stats ev in
  let past_deadline () =
    match deadline_seconds with
    | None -> false
    | Some d -> Unix.gettimeofday () -. t0 >= d
  in
  (* Cancellation rides the deadline-truncation machinery: a [true] from
     the hook stops the sweep exactly like an expired deadline — the result
     is flagged [truncated] and the final checkpoint still lands, so a
     cancelled sweep is resumable. A hook that raises counts as a stop
     request rather than killing the sweep. *)
  let should_stop () =
    past_deadline ()
    || (match stop_requested with None -> false | Some f -> ( try f () with _ -> true))
  in
  (* One point's work: reuse the resume entry or run [Eval]'s barriered
     pipeline. Pure in the point index (sampling is seeded, fault sites
     are keyed by [with_key i], and [Eval]'s caches memoize pure functions
     of the design key — and stand down entirely while fault injection is
     armed), which is what lets the parallel path promise results
     bit-identical to the sequential one at any cache temperature. *)
  let compute ?stages i p =
    match Hashtbl.find_opt prior i with
    | Some e ->
      if Obs.enabled () then Obs.count "dse.resumed";
      (e, true, 0.0)
    | None ->
      let start = Unix.gettimeofday () in
      let e =
        Faults.with_key i @@ fun () ->
        Obs.span_sampled ~every:span_every ~i "dse.point" @@ fun () ->
        (* Pre-elaboration gate: a refuted point never generates, a
           proved-legal one skips the concrete absint re-proof (the
           lint-only path still runs the heuristic passes), and anything
           unknown pays the full pipeline as before. Verdict time is
           attributed to the probe stage when profiling. *)
        let verdict =
          match gate with
          | None -> Symbolic.Unknown "gate off"
          | Some g ->
            let t0 = if stages <> None then Unix.gettimeofday () else 0.0 in
            let v = Symgate.verdict g p in
            (match stages with
            | Some s -> s.Eval.s_probe <- s.Eval.s_probe +. (Unix.gettimeofday () -. t0)
            | None -> ());
            v
        in
        match verdict with
        | Symbolic.Refuted _ ->
          if Obs.enabled () then Obs.count "dse.sym_pruned";
          Outcome.Sym_pruned
        | Symbolic.Legal | Symbolic.Unknown _ ->
          let absint =
            match verdict with Symbolic.Legal -> false | _ -> absint
          in
          if Obs.enabled () then begin
            let e = Eval.evaluate ev ?stages ~lint ~absint ~index:i ~generate p in
            (match e with
            | Outcome.Evaluated _ ->
              Obs.count "dse.estimated";
              Obs.observe "dse.ms_per_design" ((Unix.gettimeofday () -. start) *. 1000.0)
            | Outcome.Pruned -> Obs.count "dse.lint_pruned"
            | Outcome.Absint_pruned -> Obs.count "dse.absint_pruned"
            | Outcome.Dep_pruned -> Obs.count "dse.dep_pruned"
            | Outcome.Sym_pruned -> Obs.count "dse.sym_pruned"
            | Outcome.Failed (stage, _) -> Obs.count (stage_counter stage));
            e
          end
          else Eval.evaluate ev ?stages ~lint ~absint ~index:i ~generate p
      in
      (e, false, Unix.gettimeofday () -. start)
  in
  (* Collector state. Only the domain running the collector touches any of
     this — in particular the checkpoint file has a single writer, so the
     atomic temp-file + rename protocol (and PR 3's resume guarantees) are
     untouched by parallelism. *)
  let entries = ref [] (* (index, entry), newest first *) in
  let lint_pruned = ref 0 in
  let absint_pruned = ref 0 in
  let dep_pruned = ref 0 in
  let sym_pruned = ref 0 in
  let resumed = ref 0 in
  let failures = ref [] in
  let processed = ref 0 in
  let cpu_seconds = ref 0.0 in
  (* Profiled checkpoint writes accumulate into the collector's [write]
     category; only the collector (or the sequential loop) calls this. *)
  let write_seconds = ref 0.0 in
  let write_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Obs.span "dse.checkpoint" @@ fun () ->
      let t0 = if profile then Unix.gettimeofday () else 0.0 in
      Checkpoint.save ~path
        {
          Checkpoint.space_name = Space.name space;
          seed;
          max_points;
          total;
          params = param_names;
          entries = List.rev !entries;
          truncated_tail = false;
        };
      if profile then write_seconds := !write_seconds +. (Unix.gettimeofday () -. t0)
  in
  (* Merge one point's outcome, in sampling-index order. *)
  let record i p (entry, was_resumed, dt) =
    Obs.tick ~every:tick_every ~label:("dse " ^ Space.name space) ~total i;
    if was_resumed then incr resumed;
    (match entry with
    | Outcome.Pruned -> incr lint_pruned
    | Outcome.Absint_pruned -> incr absint_pruned
    | Outcome.Dep_pruned -> incr dep_pruned
    | Outcome.Sym_pruned -> incr sym_pruned
    | Outcome.Failed (f_stage, f_message) ->
      failures := { f_index = i; f_point = p; f_stage; f_message } :: !failures
    | Outcome.Evaluated _ -> ());
    entries := (i, entry) :: !entries;
    incr processed;
    cpu_seconds := !cpu_seconds +. dt;
    if checkpoint_every > 0 && !processed mod checkpoint_every = 0 then write_checkpoint ()
  in
  let truncated, attribution =
    if jobs <= 1 then begin
      (* Sequential path: exactly the pre-parallel sweep loop. When
         profiling, the loop is accounted as one worker (stage split,
         no send-block) and checkpoint writes as the collector. *)
      let stages = if profile then Some (Eval.fresh_stages ()) else None in
      let t_loop0 = if profile then Unix.gettimeofday () else 0.0 in
      let truncated = ref false in
      List.iteri
        (fun i p ->
          if not !truncated then begin
            record i p (compute ?stages i p);
            if should_stop () then truncated := true
          end)
        points;
      let attribution =
        match stages with
        | None -> None
        | Some a ->
          let loop_wall = Unix.gettimeofday () -. t_loop0 in
          let w_wall_s = Float.max 0.0 (loop_wall -. !write_seconds) in
          let accounted = a.Eval.s_generate +. a.Eval.s_probe +. a.Eval.s_analyze +. a.Eval.s_estimate in
          Some
            {
              Profile.jobs = 1;
              wall_s = loop_wall;
              workers =
                [
                  {
                    Profile.w_domain = 0;
                    w_points = !processed - !resumed;
                    w_wall_s;
                    w_generate_s = a.Eval.s_generate;
                    w_probe_s = a.Eval.s_probe;
                    w_analyze_s = a.Eval.s_analyze;
                    w_estimate_s = a.Eval.s_estimate;
                    w_send_block_s = 0.0;
                    w_idle_s = Float.max 0.0 (w_wall_s -. accounted);
                  };
                ];
              collector =
                {
                  Profile.c_wall_s = !write_seconds;
                  c_recv_block_s = 0.0;
                  c_reorder_stall_s = 0.0;
                  c_write_s = !write_seconds;
                  c_merge_s = 0.0;
                };
              max_queue_depth = 0;
              max_reorder_occupancy = 0;
            }
      in
      (!truncated, attribution)
    end
    else begin
      (* Parallel path: [jobs] worker domains claim contiguous index
         *ranges* (of [Config.chunk] points) from a shared atomic cursor,
         run the pipeline into a buffer only they own, and send the
         collector one message per chunk; the collector merges whole
         chunks in sampling-index order through a reorder buffer. Chunked
         claims keep the claim protocol a single fetch-and-add while
         cutting channel traffic (and its condition-variable wakeups) by
         the chunk factor — the contention Profile attributed the jobs>1
         collapse to. When profiling, every accumulator below is either
         owned by exactly one domain (stage/claims/send-block slots by
         worker index, collector refs by the collector) or updated under
         a lock that already exists, so the profiler adds no contention
         of its own. *)
      let points_arr = Array.of_list points in
      let cursor = Atomic.make 0 in
      let stop = Atomic.make false in
      let chan : msg Chan.t = Chan.create () in
      let obs_prof = profile && Obs.enabled () in
      let stage_slots = Array.init jobs (fun _ -> Eval.fresh_stages ()) in
      let claim_slots = Array.make jobs 0 in
      let send_slots = Array.make jobs 0.0 in
      let wall_slots = Array.make jobs 0.0 in
      let worker k () =
        Obs.with_domain_buffer ~track:(k + 1) @@ fun () ->
        let stages = if profile then Some stage_slots.(k) else None in
        let wait = if profile then Some (ref 0.0) else None in
        let t_w0 = if profile then Unix.gettimeofday () else 0.0 in
        (* Ship the first [n] outcomes of the chunk at [lo]. A chunk cut
           short by a stop request ships as a shorter run; a chunk the
           stop emptied entirely ships nothing (the collector's post-join
           sweep releases past the gap). *)
        let send lo buf n =
          if n > 0 then begin
            let payload = if n = Array.length buf then buf else Array.sub buf 0 n in
            match wait with
            | None -> Chan.push chan (Chunk (lo, payload))
            | Some acc ->
              let before = !acc in
              Chan.push ~wait:acc chan (Chunk (lo, payload));
              if obs_prof then Obs.observe "dse.chan.send_wait_us" ((!acc -. before) *. 1e6)
          end
        in
        let rec loop () =
          if not (Atomic.get stop) then begin
            let lo = Atomic.fetch_and_add cursor chunk in
            if lo < total then begin
              let hi = min total (lo + chunk) in
              let buf = Array.make (hi - lo) (Outcome.Pruned, false, 0.0) in
              let n = ref 0 in
              while lo + !n < hi && not (Atomic.get stop) do
                let i = lo + !n in
                buf.(!n) <- compute ?stages i points_arr.(i);
                incr n;
                if profile then claim_slots.(k) <- claim_slots.(k) + 1;
                (* Mirror the sequential loop: the deadline (or a cancel
                   request) is checked after each consumed point, and
                   tripping it stops every worker from pulling further
                   points. *)
                if should_stop () then Atomic.set stop true
              done;
              send lo buf !n;
              loop ()
            end
          end
        in
        loop ();
        if profile then begin
          wall_slots.(k) <- Unix.gettimeofday () -. t_w0;
          (match wait with Some acc -> send_slots.(k) <- !acc | None -> ());
          if obs_prof then Obs.count ~by:claim_slots.(k) (Printf.sprintf "dse.claims.w%d" (k + 1))
        end
      in
      let recv_block = ref 0.0 in
      let reorder_stall = ref 0.0 in
      let max_pending = ref 0 in
      let t_col0 = if profile then Unix.gettimeofday () else 0.0 in
      let domains =
        List.init jobs (fun k ->
            Domain.spawn (fun () ->
                Fun.protect ~finally:(fun () -> Chan.push chan Worker_done) (worker k)))
      in
      (* Reorder buffer, now chunk-granular: chunks arrive in completion
         order, keyed by their first index; release them in index order so
         entries, failures, counters and every periodic checkpoint match
         the sequential run's byte for byte. Arrival stamps (profiling
         only) measure how long out-of-order chunks sit parked before
         their predecessor completes. *)
      let pending = Hashtbl.create 64 in
      let next_emit = ref 0 in
      let live_workers = ref jobs in
      let release () =
        let rec go () =
          match Hashtbl.find_opt pending !next_emit with
          | None -> ()
          | Some (arr, arrived) ->
            Hashtbl.remove pending !next_emit;
            if profile && arrived > 0.0 then
              reorder_stall :=
                !reorder_stall +. Float.max 0.0 (Unix.gettimeofday () -. arrived);
            let lo = !next_emit in
            Array.iteri (fun j r -> record (lo + j) points_arr.(lo + j) r) arr;
            next_emit := lo + Array.length arr;
            go ()
        in
        go ()
      in
      (* The collector's own telemetry (recv-wait samples, checkpoint
         spans, progress ticks) goes through a track-0 domain buffer too,
         so it never contends with worker flushes mid-sweep. *)
      Obs.with_domain_buffer ~track:0 (fun () ->
          let wait = if profile then Some recv_block else None in
          while !live_workers > 0 do
            let before = !recv_block in
            let m = Chan.pop ?wait chan in
            if obs_prof then Obs.observe "dse.chan.recv_wait_us" ((!recv_block -. before) *. 1e6);
            match m with
            | Worker_done -> decr live_workers
            | Chunk (lo, arr) ->
              Hashtbl.replace pending lo
                (arr, if profile then Unix.gettimeofday () else 0.0);
              if profile then max_pending := max !max_pending (Hashtbl.length pending);
              release ()
          done;
          List.iter Domain.join domains;
          (* A tripped deadline can leave completed chunks beyond a gap (a
             truncated chunk whose successors finished whole). Release
             them too, still in index order: the checkpoint format
             addresses entries by index, so a resumed sweep reuses every
             one of them. *)
          Hashtbl.fold (fun lo (arr, _) acc -> (lo, arr) :: acc) pending []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.iter (fun (lo, arr) ->
                 Array.iteri (fun j r -> record (lo + j) points_arr.(lo + j) r) arr));
      let attribution =
        if not profile then None
        else begin
          let c_wall = Unix.gettimeofday () -. t_col0 in
          if obs_prof then begin
            Obs.gauge "dse.chan.max_queue_depth" (float_of_int chan.Chan.max_depth);
            Obs.gauge "dse.reorder.max_occupancy" (float_of_int !max_pending)
          end;
          Some
            {
              Profile.jobs;
              wall_s = c_wall;
              workers =
                List.init jobs (fun k ->
                    let a = stage_slots.(k) in
                    let accounted =
                      a.Eval.s_generate +. a.Eval.s_probe +. a.Eval.s_analyze
                      +. a.Eval.s_estimate +. send_slots.(k)
                    in
                    {
                      Profile.w_domain = k;
                      w_points = claim_slots.(k);
                      w_wall_s = wall_slots.(k);
                      w_generate_s = a.Eval.s_generate;
                      w_probe_s = a.Eval.s_probe;
                      w_analyze_s = a.Eval.s_analyze;
                      w_estimate_s = a.Eval.s_estimate;
                      w_send_block_s = send_slots.(k);
                      w_idle_s = Float.max 0.0 (wall_slots.(k) -. accounted);
                    });
              collector =
                {
                  Profile.c_wall_s = c_wall;
                  c_recv_block_s = !recv_block;
                  c_reorder_stall_s = !reorder_stall;
                  c_write_s = !write_seconds;
                  c_merge_s =
                    Float.max 0.0 (c_wall -. !recv_block -. !write_seconds);
                };
              max_queue_depth = chan.Chan.max_depth;
              max_reorder_occupancy = !max_pending;
            }
        end
      in
      (Atomic.get stop, attribution)
    end
  in
  if checkpoint <> None then write_checkpoint ();
  let evaluations =
    List.rev_map (function _, Outcome.Evaluated e -> Some e | _ -> None) !entries
    |> List.filter_map Fun.id
  in
  let pareto = Obs.span "dse.pareto" (fun () -> pareto_of evaluations) in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats1 = Eval.stats ev in
  if Obs.enabled () then begin
    Obs.count ~by:(List.length (List.filter (fun e -> not e.valid) evaluations)) "dse.unfit";
    Obs.gauge "dse.points_per_sec"
      (if elapsed > 0.0 then float_of_int !processed /. elapsed else 0.0)
  end;
  {
    space_name = Space.name space;
    param_names;
    evaluations;
    pareto;
    failures = List.rev !failures;
    raw_space = Space.raw_size space;
    sampled = total;
    processed = !processed;
    lint_pruned = !lint_pruned;
    absint_pruned = !absint_pruned;
    dep_pruned = !dep_pruned;
    sym_pruned = !sym_pruned;
    resumed = !resumed;
    truncated;
    jobs;
    elapsed_seconds = elapsed;
    cpu_seconds = !cpu_seconds;
    cache_hits = stats1.Eval.hits - stats0.Eval.hits;
    cache_misses = stats1.Eval.misses - stats0.Eval.misses;
    attribution;
  }

let unfit_count r = List.length (List.filter (fun e -> not e.valid) r.evaluations)
let failed_count r = List.length r.failures

let failure_counts r =
  List.map
    (fun stage -> (stage, List.length (List.filter (fun f -> f.f_stage = stage) r.failures)))
    [ Generator_error; Lint_error; Estimator_error; Non_finite_estimate ]

let best r =
  match r.pareto with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc e -> if e.estimate.Estimator.cycles < acc.estimate.Estimator.cycles then e else acc)
         first rest)

(* Lint-pruned and failed points never produce an estimate, so the paper's
   ms/design metric (Table IV) divides by the evaluations that actually
   came back from the estimator. Wall-clock and aggregate-CPU variants are
   separate on purpose: with [jobs] > 1 wall-clock seconds/design shrinks
   with the core count while CPU seconds/design stays comparable with
   sequential (and older BENCH) numbers. *)
let seconds_per_design r =
  let estimated = List.length r.evaluations in
  if estimated <= 0 then 0.0 else r.elapsed_seconds /. float_of_int estimated

let cpu_seconds_per_design r =
  let estimated = List.length r.evaluations in
  if estimated <= 0 then 0.0 else r.cpu_seconds /. float_of_int estimated

let to_csv r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," r.param_names);
  Buffer.add_string buf ",cycles,alm_pct,dsp_pct,bram_pct,valid,pareto\n";
  let pareto_set = Hashtbl.create (2 * List.length r.pareto) in
  List.iter (fun e -> Hashtbl.replace pareto_set e.point ()) r.pareto;
  List.iter
    (fun e ->
      List.iter (fun (_, v) -> Buffer.add_string buf (string_of_int v ^ ",")) e.point;
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.3f,%.3f,%.3f,%d,%d\n" e.estimate.Estimator.cycles e.alm_pct
           e.dsp_pct e.bram_pct
           (if e.valid then 1 else 0)
           (if Hashtbl.mem pareto_set e.point then 1 else 0)))
    r.evaluations;
  Buffer.contents buf
