module Estimator = Dhdl_model.Estimator
module Lint = Dhdl_lint.Lint
module Pareto = Dhdl_util.Pareto

type evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type result = {
  space_name : string;
  evaluations : evaluation list;
  pareto : evaluation list;
  raw_space : int;
  sampled : int;
  lint_pruned : int;
  elapsed_seconds : float;
}

let evaluate est point design =
  let e = Estimator.estimate est design in
  let alm_pct, dsp_pct, bram_pct = Estimator.utilization est e.Estimator.area in
  {
    point;
    estimate = e;
    valid = Estimator.fits est e.Estimator.area;
    alm_pct;
    dsp_pct;
    bram_pct;
  }

let pareto_of evals =
  let valid = List.filter (fun e -> e.valid) evals in
  Pareto.frontier (fun e -> (e.estimate.Estimator.cycles, e.alm_pct)) valid

let run ?(seed = 2016) ?(max_points = 75_000) ?(lint = true) est ~space ~generate () =
  let t0 = Unix.gettimeofday () in
  let points = Space.sample space ~seed ~max_points in
  let dev = Estimator.device est in
  let lint_pruned = ref 0 in
  let evaluations =
    List.filter_map
      (fun p ->
        let design = generate p in
        (* Error-level diagnostics (races, hazards, provable capacity
           overflow) mean the point can never produce working hardware, so
           skip the estimator entirely — the paper's pre-estimation pruning
           (Section IV.C). *)
        if lint && Lint.has_errors (Lint.check ~dev design) then begin
          incr lint_pruned;
          None
        end
        else Some (evaluate est p design))
      points
  in
  let pareto = pareto_of evaluations in
  {
    space_name = Space.name space;
    evaluations;
    pareto;
    raw_space = Space.raw_size space;
    sampled = List.length points;
    lint_pruned = !lint_pruned;
    elapsed_seconds = Unix.gettimeofday () -. t0;
  }

let unfit_count r = List.length (List.filter (fun e -> not e.valid) r.evaluations)

let best r =
  match r.pareto with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc e -> if e.estimate.Estimator.cycles < acc.estimate.Estimator.cycles then e else acc)
         first rest)

let seconds_per_design r =
  if r.sampled = 0 then 0.0 else r.elapsed_seconds /. float_of_int r.sampled

let to_csv r =
  let buf = Buffer.create 4096 in
  let param_names =
    match r.evaluations with
    | [] -> []
    | e :: _ -> List.map fst e.point
  in
  Buffer.add_string buf (String.concat "," param_names);
  Buffer.add_string buf ",cycles,alm_pct,dsp_pct,bram_pct,valid,pareto\n";
  let pareto_set = List.map (fun e -> e.point) r.pareto in
  List.iter
    (fun e ->
      List.iter (fun (_, v) -> Buffer.add_string buf (string_of_int v ^ ",")) e.point;
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.3f,%.3f,%.3f,%d,%d\n" e.estimate.Estimator.cycles e.alm_pct
           e.dsp_pct e.bram_pct
           (if e.valid then 1 else 0)
           (if List.mem e.point pareto_set then 1 else 0)))
    r.evaluations;
  Buffer.contents buf
