module Estimator = Dhdl_model.Estimator
module Lint = Dhdl_lint.Lint
module Pareto = Dhdl_util.Pareto
module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs

type evaluation = Outcome.evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type failure_stage = Outcome.failure_stage =
  | Generator_error
  | Lint_error
  | Estimator_error
  | Non_finite_estimate

type failure = Outcome.failure = {
  f_index : int;
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;
}

type result = {
  space_name : string;
  param_names : string list;
  evaluations : evaluation list;
  pareto : evaluation list;
  failures : failure list;
  raw_space : int;
  sampled : int;
  processed : int;
  lint_pruned : int;
  resumed : int;
  truncated : bool;
  elapsed_seconds : float;
}

let evaluate est point design =
  let e = Estimator.estimate est design in
  let alm_pct, dsp_pct, bram_pct = Estimator.utilization est e.Estimator.area in
  {
    point;
    estimate = e;
    valid = Estimator.fits est e.Estimator.area;
    alm_pct;
    dsp_pct;
    bram_pct;
  }

let pareto_of evals =
  let valid = List.filter (fun e -> e.valid) evals in
  Pareto.frontier (fun e -> (e.estimate.Estimator.cycles, e.alm_pct)) valid

let stage_counter stage = "dse.failed." ^ Outcome.stage_name stage

(* Render the exception behind a barrier without letting one bad message
   take the sweep down too. *)
let describe exn = try Printexc.to_string exn with _ -> "<unprintable exception>"

let finite_evaluation (e : evaluation) =
  let ok f = Float.is_finite f && f >= 0.0 in
  ok e.estimate.Estimator.cycles && ok e.estimate.Estimator.seconds && ok e.alm_pct
  && ok e.dsp_pct && ok e.bram_pct

let non_finite_detail (e : evaluation) =
  Printf.sprintf "cycles=%h seconds=%h alm_pct=%h dsp_pct=%h bram_pct=%h"
    e.estimate.Estimator.cycles e.estimate.Estimator.seconds e.alm_pct e.dsp_pct e.bram_pct

(* The exception barrier around one point's generate -> lint -> estimate
   pipeline: every failure mode becomes a classified entry instead of
   killing the sweep. [Faults.inject] sites (keyed by point index so a
   resumed sweep replays the same faults) let tests exercise each arm. *)
let process ~est ~dev ~lint i point ~generate =
  match
    try Faults.inject ~key:i "dse.generator"; Ok (generate point)
    with exn -> Error (Generator_error, describe exn)
  with
  | Error (stage, msg) -> Outcome.Failed (stage, msg)
  | Ok design -> (
    match
      try
        Faults.inject ~key:i "dse.lint";
        Ok (lint && Lint.has_errors (Lint.check ~dev design))
      with exn -> Error (Lint_error, describe exn)
    with
    | Error (stage, msg) -> Outcome.Failed (stage, msg)
    | Ok true -> Outcome.Pruned
    | Ok false -> (
      try
        Faults.inject ~key:i "dse.estimator";
        let e = evaluate est point design in
        let e =
          if Faults.fires ~key:i "dse.non_finite" then
            { e with estimate = { e.estimate with Estimator.cycles = Float.nan } }
          else e
        in
        if finite_evaluation e then Outcome.Evaluated e
        else Outcome.Failed (Non_finite_estimate, "estimate not finite: " ^ non_finite_detail e)
      with exn -> Outcome.Failed (Estimator_error, describe exn)))

let load_resume ~path ~space ~seed ~max_points ~total ~param_names =
  if not (Sys.file_exists path) then Hashtbl.create 1
  else
    match Checkpoint.load ~path with
    | Error msg -> failwith ("cannot resume: " ^ msg)
    | Ok c ->
      if
        c.Checkpoint.space_name <> Space.name space
        || c.Checkpoint.seed <> seed
        || c.Checkpoint.max_points <> max_points
        || c.Checkpoint.total <> total
        || c.Checkpoint.params <> param_names
      then
        failwith
          (Printf.sprintf
             "cannot resume: checkpoint %s was taken for sweep (space=%s seed=%d max_points=%d \
              total=%d), not (space=%s seed=%d max_points=%d total=%d)"
             path c.Checkpoint.space_name c.Checkpoint.seed c.Checkpoint.max_points
             c.Checkpoint.total (Space.name space) seed max_points total)
      else begin
        let tbl = Hashtbl.create (2 * List.length c.Checkpoint.entries) in
        List.iter (fun (i, e) -> Hashtbl.replace tbl i e) c.Checkpoint.entries;
        tbl
      end

let run ?(seed = 2016) ?(max_points = 75_000) ?(lint = true) ?(span_every = 100)
    ?(tick_every = 1000) ?checkpoint ?(checkpoint_every = 500) ?(resume = false)
    ?deadline_seconds est ~space ~generate () =
  Obs.span "dse.run" ~attrs:[ ("space", Space.name space) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let points = Obs.span "dse.sample" (fun () -> Space.sample space ~seed ~max_points) in
  let total = List.length points in
  let param_names = List.map fst (Space.dims space) in
  if Obs.enabled () then begin
    (* Register every counter up front so reports show the full set at
       zero even for clean or empty sweeps. *)
    Obs.count ~by:total "dse.points_sampled";
    Obs.count ~by:0 "dse.lint_pruned";
    Obs.count ~by:0 "dse.estimated";
    Obs.count ~by:0 "dse.unfit";
    List.iter
      (fun stage -> Obs.count ~by:0 (stage_counter stage))
      [ Generator_error; Lint_error; Estimator_error; Non_finite_estimate ]
  end;
  let prior =
    match checkpoint with
    | Some path when resume ->
      load_resume ~path ~space ~seed ~max_points ~total ~param_names
    | _ -> Hashtbl.create 1
  in
  let dev = Estimator.device est in
  let entries = ref [] (* (index, entry), newest first *) in
  let lint_pruned = ref 0 in
  let resumed = ref 0 in
  let failures = ref [] in
  let processed = ref 0 in
  let truncated = ref false in
  let write_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Obs.span "dse.checkpoint" @@ fun () ->
      Checkpoint.save ~path
        {
          Checkpoint.space_name = Space.name space;
          seed;
          max_points;
          total;
          params = param_names;
          entries = List.rev !entries;
        }
  in
  let past_deadline () =
    match deadline_seconds with
    | None -> false
    | Some d -> Unix.gettimeofday () -. t0 >= d
  in
  List.iteri
    (fun i p ->
      if not !truncated then begin
        Obs.tick ~every:tick_every ~label:("dse " ^ Space.name space) ~total i;
        let entry =
          match Hashtbl.find_opt prior i with
          | Some e ->
            incr resumed;
            if Obs.enabled () then Obs.count "dse.resumed";
            e
          | None ->
            Obs.span_sampled ~every:span_every ~i "dse.point" @@ fun () ->
            if Obs.enabled () then begin
              let t0 = Unix.gettimeofday () in
              let e = process ~est ~dev ~lint i p ~generate in
              (match e with
              | Outcome.Evaluated _ ->
                Obs.count "dse.estimated";
                Obs.observe "dse.ms_per_design" ((Unix.gettimeofday () -. t0) *. 1000.0)
              | Outcome.Pruned -> Obs.count "dse.lint_pruned"
              | Outcome.Failed (stage, _) -> Obs.count (stage_counter stage));
              e
            end
            else process ~est ~dev ~lint i p ~generate
        in
        (match entry with
        | Outcome.Pruned -> incr lint_pruned
        | Outcome.Failed (f_stage, f_message) ->
          failures := { f_index = i; f_point = p; f_stage; f_message } :: !failures
        | Outcome.Evaluated _ -> ());
        entries := (i, entry) :: !entries;
        incr processed;
        if checkpoint_every > 0 && !processed mod checkpoint_every = 0 then write_checkpoint ();
        if past_deadline () then truncated := true
      end)
    points;
  if checkpoint <> None then write_checkpoint ();
  let evaluations =
    List.rev_map (function _, Outcome.Evaluated e -> Some e | _ -> None) !entries
    |> List.filter_map Fun.id
  in
  let pareto = Obs.span "dse.pareto" (fun () -> pareto_of evaluations) in
  let elapsed = Unix.gettimeofday () -. t0 in
  if Obs.enabled () then begin
    Obs.count ~by:(List.length (List.filter (fun e -> not e.valid) evaluations)) "dse.unfit";
    Obs.gauge "dse.points_per_sec"
      (if elapsed > 0.0 then float_of_int !processed /. elapsed else 0.0)
  end;
  {
    space_name = Space.name space;
    param_names;
    evaluations;
    pareto;
    failures = List.rev !failures;
    raw_space = Space.raw_size space;
    sampled = total;
    processed = !processed;
    lint_pruned = !lint_pruned;
    resumed = !resumed;
    truncated = !truncated;
    elapsed_seconds = elapsed;
  }

let unfit_count r = List.length (List.filter (fun e -> not e.valid) r.evaluations)
let failed_count r = List.length r.failures

let failure_counts r =
  List.map
    (fun stage -> (stage, List.length (List.filter (fun f -> f.f_stage = stage) r.failures)))
    [ Generator_error; Lint_error; Estimator_error; Non_finite_estimate ]

let best r =
  match r.pareto with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc e -> if e.estimate.Estimator.cycles < acc.estimate.Estimator.cycles then e else acc)
         first rest)

(* Lint-pruned and failed points never produce an estimate, so the paper's
   ms/design metric (Table IV) divides by the evaluations that actually
   came back from the estimator. *)
let seconds_per_design r =
  let estimated = List.length r.evaluations in
  if estimated <= 0 then 0.0 else r.elapsed_seconds /. float_of_int estimated

let to_csv r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," r.param_names);
  Buffer.add_string buf ",cycles,alm_pct,dsp_pct,bram_pct,valid,pareto\n";
  let pareto_set = Hashtbl.create (2 * List.length r.pareto) in
  List.iter (fun e -> Hashtbl.replace pareto_set e.point ()) r.pareto;
  List.iter
    (fun e ->
      List.iter (fun (_, v) -> Buffer.add_string buf (string_of_int v ^ ",")) e.point;
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.3f,%.3f,%.3f,%d,%d\n" e.estimate.Estimator.cycles e.alm_pct
           e.dsp_pct e.bram_pct
           (if e.valid then 1 else 0)
           (if Hashtbl.mem pareto_set e.point then 1 else 0)))
    r.evaluations;
  Buffer.contents buf
