module Texttable = Dhdl_util.Texttable

type worker = {
  w_domain : int;
  w_points : int;
  w_wall_s : float;
  w_generate_s : float;
  w_probe_s : float;
  w_analyze_s : float;
  w_estimate_s : float;
  w_send_block_s : float;
  w_idle_s : float;
}

type collector = {
  c_wall_s : float;
  c_recv_block_s : float;
  c_reorder_stall_s : float;
  c_write_s : float;
  c_merge_s : float;
}

type t = {
  jobs : int;
  wall_s : float;
  workers : worker list;
  collector : collector;
  max_queue_depth : int;
  max_reorder_occupancy : int;
}

let worker_seconds t = List.fold_left (fun acc w -> acc +. w.w_wall_s) 0.0 t.workers

(* Fractions are taken over the sum of the six accounted categories (not
   raw wall) so that work + contention + stall = 1 exactly even when clock
   granularity makes the categories sum to slightly more or less than the
   measured wall time. Cache probes count as work: they replace the
   analysis/estimation they memoize. *)
let accounted t =
  List.fold_left
    (fun acc w ->
      acc +. w.w_generate_s +. w.w_probe_s +. w.w_analyze_s +. w.w_estimate_s +. w.w_send_block_s
      +. w.w_idle_s)
    0.0 t.workers

let frac t part = if accounted t > 0.0 then part /. accounted t else 0.0

let work_fraction t =
  frac t
    (List.fold_left
       (fun acc w -> acc +. w.w_generate_s +. w.w_probe_s +. w.w_analyze_s +. w.w_estimate_s)
       0.0 t.workers)

let contention_fraction t =
  frac t (List.fold_left (fun acc w -> acc +. w.w_send_block_s) 0.0 t.workers)

let stall_fraction t = frac t (List.fold_left (fun acc w -> acc +. w.w_idle_s) 0.0 t.workers)

(* The resources a sweep can contend on, with the seconds lost to each:
   the worker side of the collector channel (send block), the collector
   side (recv block counts only against scaling when the collector is the
   bottleneck, but it is the number to watch), and the checkpoint write. *)
let contenders t =
  [
    ("collector-channel send", List.fold_left (fun a w -> a +. w.w_send_block_s) 0.0 t.workers);
    ("collector-channel recv", t.collector.c_recv_block_s);
    ("reorder buffer", t.collector.c_reorder_stall_s);
    ("checkpoint write", t.collector.c_write_s);
  ]

let top_contender t =
  List.fold_left (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
    ("none", 0.0) (contenders t)

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "profile: jobs=%d, wall %.3f s, worker-seconds %.3f\n" t.jobs t.wall_s
       (worker_seconds t));
  Buffer.add_string buf
    (Printf.sprintf "  attribution: work %s  contention %s  stall %s\n" (pct (work_fraction t))
       (pct (contention_fraction t))
       (pct (stall_fraction t)));
  let name, secs = top_contender t in
  Buffer.add_string buf (Printf.sprintf "  top contended resource: %s (%.4f s)\n" name secs);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Texttable.render
       ~header:
         [ "worker"; "points"; "wall s"; "generate s"; "cache-probe s"; "lint/absint s";
           "estimate s"; "send-block s"; "idle s" ]
       (List.map
          (fun w ->
            [ Printf.sprintf "w%d" w.w_domain; string_of_int w.w_points;
              Printf.sprintf "%.4f" w.w_wall_s; Printf.sprintf "%.4f" w.w_generate_s;
              Printf.sprintf "%.4f" w.w_probe_s; Printf.sprintf "%.4f" w.w_analyze_s;
              Printf.sprintf "%.4f" w.w_estimate_s; Printf.sprintf "%.4f" w.w_send_block_s;
              Printf.sprintf "%.4f" w.w_idle_s ])
          t.workers));
  let c = t.collector in
  Buffer.add_string buf
    (Printf.sprintf
       "  collector: wall %.4f s — recv-block %.4f s, checkpoint write %.4f s, merge %.4f s\n"
       c.c_wall_s c.c_recv_block_s c.c_write_s c.c_merge_s);
  Buffer.add_string buf
    (Printf.sprintf
       "  reorder buffer: %.4f s total parked latency (overlaps recv-block), max occupancy %d; \
        channel max depth %d\n"
       c.c_reorder_stall_s t.max_reorder_occupancy t.max_queue_depth);
  Buffer.contents buf

let worker_json w =
  Printf.sprintf
    "{\"domain\":%d,\"points\":%d,\"wall_s\":%.6f,\"generate_s\":%.6f,\"probe_s\":%.6f,\"analyze_s\":%.6f,\"estimate_s\":%.6f,\"send_block_s\":%.6f,\"idle_s\":%.6f}"
    w.w_domain w.w_points w.w_wall_s w.w_generate_s w.w_probe_s w.w_analyze_s w.w_estimate_s
    w.w_send_block_s w.w_idle_s

let to_json t =
  let c = t.collector in
  let top_name, top_s = top_contender t in
  Printf.sprintf
    "{\"jobs\":%d,\"wall_s\":%.6f,\"worker_seconds\":%.6f,\"work_frac\":%.6f,\"contention_frac\":%.6f,\"stall_frac\":%.6f,\"top_contender\":\"%s\",\"top_contender_s\":%.6f,\"workers\":[%s],\"collector\":{\"wall_s\":%.6f,\"recv_block_s\":%.6f,\"reorder_stall_s\":%.6f,\"write_s\":%.6f,\"merge_s\":%.6f},\"max_queue_depth\":%d,\"max_reorder_occupancy\":%d}"
    t.jobs t.wall_s (worker_seconds t) (work_fraction t) (contention_fraction t)
    (stall_fraction t) top_name top_s
    (String.concat "," (List.map worker_json t.workers))
    c.c_wall_s c.c_recv_block_s c.c_reorder_stall_s c.c_write_s c.c_merge_s t.max_queue_depth
    t.max_reorder_occupancy
