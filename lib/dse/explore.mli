(** Design-space exploration driver (steps 2-4 of the paper's Figure 1).

    Walks a parameter space, instantiates the design generator at each legal
    point, runs the estimator, classifies validity against the device, and
    extracts the Pareto frontier in the (cycles, ALM-utilization) plane used
    throughout Figure 5.

    The sweep is fault-tolerant: each point's generate → lint → estimate
    pipeline runs inside an exception barrier, so one bad point becomes a
    classified {!failure} in the result instead of killing a 75,000-point
    run. Sweeps can checkpoint to disk and resume after a crash, and a
    deadline turns a too-long run into a flagged partial result.

    Sweeps are configured through a {!Config.t} record (defaults +
    [with_*] builders) and, with [Config.jobs] > 1, run on a pool of
    worker domains that claim contiguous index {e chunks} and whose
    outcome chunks a collector merges back in sampling-index order —
    results and checkpoint files are bit-identical across every jobs
    level, chunk size, and {!Eval} cache temperature.

    Per-point evaluation itself — generate → lint/absint → estimate
    behind the design-key caches — lives in {!Eval}; [run] takes the
    {!Eval.t} so concurrent and consecutive sweeps can share one
    memo. *)

module Estimator = Dhdl_model.Estimator

type evaluation = Outcome.evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;  (** Fits on the target device. *)
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

(** Which pipeline stage a failed point died in (see {!Outcome}). *)
type failure_stage = Outcome.failure_stage =
  | Generator_error
  | Lint_error
  | Estimator_error
  | Non_finite_estimate

type failure = Outcome.failure = {
  f_index : int;  (** Index of the point in sampling order. *)
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;
}

type result = {
  space_name : string;
  param_names : string list;  (** Parameter names in point order. *)
  evaluations : evaluation list;  (** Every point that estimated successfully. *)
  pareto : evaluation list;  (** Pareto-optimal valid designs. *)
  failures : failure list;  (** Classified per-point failures, in index order. *)
  raw_space : int;  (** Cardinality before pruning/sampling. *)
  sampled : int;  (** Sampled points, including pruned and failed ones. *)
  processed : int;  (** Points actually consumed; < [sampled] iff [truncated]. *)
  lint_pruned : int;  (** Points dropped before estimation by lint errors. *)
  absint_pruned : int;
      (** Points whose error-level diagnostics included an abstract-
          interpretation proof (L009 out-of-bounds / L010 bank conflict,
          each with a concrete witness) — provably broken hardware dropped
          before estimation. *)
  dep_pruned : int;
      (** Points whose only error-level diagnostics were dependence
          refutations of the chosen parallelization (L013: a proven
          same-cycle lane conflict with a concrete witness) — the design
          is sound sequentially but the sampled [par] is illegal. *)
  sym_pruned : int;
      (** Points refuted {e before elaboration} by the symbolic legality
          predicate ({!Dhdl_absint.Symbolic} via {!Symgate}): the derived
          constraint system proved concrete analysis would refute them, so
          they were never generated. Disjoint from [absint_pruned] /
          [dep_pruned] — a point counts there only when it reached the
          concrete passes. *)
  resumed : int;  (** Points reused from a checkpoint instead of recomputed. *)
  truncated : bool;  (** The deadline stopped the sweep early. *)
  jobs : int;  (** Worker domains the sweep ran with (1 = sequential). *)
  elapsed_seconds : float;  (** Wall-clock duration of the whole sweep. *)
  cpu_seconds : float;
      (** Aggregate CPU seconds spent inside point pipelines, summed over
          all workers — equals roughly [elapsed_seconds] when [jobs = 1]
          and up to [jobs ×] it when parallel. *)
  cache_hits : int;
      (** {!Eval} cache hits (analysis + estimate) during this sweep: the
          delta of {!Eval.stats} across the run. With a shared [Eval.t]
          under concurrent sweeps the attribution of a hit to one sweep
          is approximate; totals across sweeps are exact. *)
  cache_misses : int;  (** Counterpart of [cache_hits]. *)
  attribution : Profile.t option;
      (** Where every worker- and collector-second went ([Some] iff
          [Config.profile] was set): per-worker
          {generate, analyze, estimate, send-block, idle} and collector
          {recv-block, reorder-stall, write, merge} accounting, plus peak
          channel queue depth and reorder-buffer occupancy. See
          {!Profile}. *)
}

(** Sweep configuration: one validated record instead of the
    labelled-optional-argument signature [run] used to have. Start from
    {!Config.default} (the paper's settings: seed 2016, up to 75,000
    sampled points, lint pruning on, sequential) and refine with the
    [with_*] builders, or construct in one call with {!Config.make}. *)
module Config : sig
  type t = {
    seed : int;  (** Sampling seed (the paper uses 2016). *)
    max_points : int;  (** Sampling budget (the paper's cap is 75,000). *)
    lint : bool;  (** Prune error-level heuristic lint diagnostics. *)
    absint : bool;
        (** Prune points the proof-backed passes refute: L009/L010
            abstract-interpretation errors count as [absint_pruned],
            L013 dependence refutations as [dep_pruned]. Runs the proof
            passes alone when [lint] is off. *)
    symbolic : bool;
        (** Gate points through the pre-elaboration symbolic legality
            predicate (default on). Effective only when [lint] and
            [absint] are both on (otherwise pruning would change the
            result set) and fault injection is not armed. Symbolically
            refuted points count as [sym_pruned] and are never
            generated; proved-legal points skip the concrete absint
            re-proof; everything else runs the full pipeline. *)
    jobs : int;  (** Worker domains; 1 (default) = sequential. *)
    chunk : int;
        (** Points per cursor claim and per worker→collector message when
            [jobs > 1] (default 16). Larger chunks cut channel traffic
            and wakeups; smaller chunks balance load better near the end
            of a sweep. No effect on results: the collector releases
            chunks in index order, so entries and checkpoints stay
            bit-identical across chunk sizes. Ignored when [jobs = 1]. *)
    span_every : int;  (** Record a [dse.point] span every N points; 0 off. *)
    tick_every : int;  (** Progress tick on stderr every N points; 0 off. *)
    checkpoint : string option;  (** JSONL checkpoint path. *)
    checkpoint_every : int;  (** Periodic write cadence; 0 = only at end. *)
    resume : bool;  (** Reuse entries from [checkpoint] before computing. *)
    deadline_seconds : float option;  (** Stop consuming points after this. *)
    profile : bool;
        (** Attribute worker/collector time (see {!Profile}); fills
            [result.attribution]. Independent of the Obs sink — when both
            are on, wait histograms and per-domain claim counters are also
            recorded. Off (the default) the sweep pays only a per-stage
            branch, keeping jobs=1 throughput within noise of unprofiled
            builds. *)
    stop_requested : (unit -> bool) option;
        (** Cooperative cancellation hook, polled after every consumed
            point (all jobs levels). Returning [true] stops the sweep
            exactly like an expired deadline: the result is flagged
            [truncated] and the final checkpoint is still written, so a
            cancelled sweep resumes where it stopped. The DSE server's
            [dse_cancel] and graceful shutdown both ride this hook. A hook
            that raises is treated as a stop request. *)
  }

  val max_jobs : int
  (** Upper bound accepted for [jobs] (64). *)

  val max_chunk : int
  (** Upper bound accepted for [chunk] (65536). *)

  val default : t

  val make :
    ?seed:int ->
    ?max_points:int ->
    ?lint:bool ->
    ?absint:bool ->
    ?symbolic:bool ->
    ?jobs:int ->
    ?chunk:int ->
    ?span_every:int ->
    ?tick_every:int ->
    ?checkpoint:string ->
    ?checkpoint_every:int ->
    ?resume:bool ->
    ?deadline_seconds:float ->
    ?profile:bool ->
    ?stop_requested:(unit -> bool) ->
    unit ->
    t
  (** Smart constructor: every field defaults to {!default}'s value and the
      result is validated (raises [Failure] with a CLI-renderable message
      on [jobs] outside [1, max_jobs], negative budgets or cadences, a
      non-finite/negative deadline, or [resume] without [checkpoint]). *)

  val with_seed : int -> t -> t
  val with_max_points : int -> t -> t
  val with_lint : bool -> t -> t
  val with_absint : bool -> t -> t
  val with_symbolic : bool -> t -> t

  val with_jobs : int -> t -> t
  (** Raises [Failure] unless [1 <= jobs <= max_jobs]. *)

  val with_chunk : int -> t -> t
  (** Raises [Failure] unless [1 <= chunk <= max_chunk]. *)

  val with_span_every : int -> t -> t
  val with_tick_every : int -> t -> t

  val with_checkpoint : ?every:int -> string -> t -> t
  (** Set the checkpoint path and (optionally) the periodic write cadence. *)

  val with_resume : bool -> t -> t
  (** The [resume]/[checkpoint] pairing is checked when the config is
      consumed by {!run} (or built by {!make}), so builder order between
      [with_resume] and [with_checkpoint] does not matter. *)

  val with_deadline : float -> t -> t

  val with_profile : bool -> t -> t
  (** Toggle time attribution; see {!Profile} and [result.attribution]. *)

  val with_stop_check : (unit -> bool) -> t -> t
  (** Install a cooperative cancellation hook (see [stop_requested]). *)
end

val run :
  Config.t ->
  Eval.t ->
  space:Space.t ->
  generate:(Space.point -> Dhdl_ir.Ir.design) ->
  result
(** [run config ev ~space ~generate] — the single sweep entry point.
    Each point goes through {!Eval.evaluate} on [ev], so designs already
    proven or estimated — by an earlier sweep, a resumed session, or a
    concurrent server request sharing the same [Eval.t] — skip those
    stages via the design-key caches ([cache_hits]/[cache_misses] in the
    result account for both).
    When [config.lint] is [true] (the default), each generated design runs
    through {!Dhdl_lint.Lint.check} against the estimator's device and
    points with error-level diagnostics are pruned before estimation.
    Errors split by origin: points with heuristic lint errors count in
    [lint_pruned]; points whose errors include an abstract-interpretation
    proof ({!Dhdl_lint.Lint.proof_codes}: L009 out-of-bounds, L010 bank
    conflict) count in [absint_pruned]; points whose only errors are
    dependence refutations of the chosen parallelization (L013) count in
    [dep_pruned]. With [config.absint] off the proof passes are skipped;
    with [config.lint] off but [config.absint] on, only the proof passes
    run (no validator, no heuristics).

    {b Symbolic gate.} When [config.symbolic], [config.lint] and
    [config.absint] are all on and fault injection is idle, the sweep
    first derives one symbolic constraint system per design-family
    skeleton from a small fixed-seed probe sample ({!Symgate.derive},
    recorded under the [dse.symgate] span) and consults it before each
    point's pipeline: symbolically refuted points become
    {!Outcome.Sym_pruned} without ever being generated, proved-legal
    points skip the concrete absint re-proof, and unknown points are
    unaffected. The gate is derived once, before any worker starts, so
    parallel and resumed sweeps keep their bit-identity guarantees; a
    checkpoint written with the gate on differs from one written with it
    off only in entries' pruned kind ([sym_pruned] vs
    [absint_pruned]/[dep_pruned]).

    {b Parallel sweeps.} With [config.jobs = n > 1], [n] worker domains
    claim contiguous runs of [config.chunk] point indices from a shared
    atomic cursor, evaluate each chunk into a buffer only they own, and
    send the collector (the calling domain) one message per chunk; the
    collector merges whole chunks back in sampling-index order through a
    chunk-granular reorder buffer. Because sampling is seeded, fault
    sites are keyed per point index ({!Dhdl_util.Faults.with_key}) and
    the pipeline shares no mutable per-sweep state (the {!Eval} caches
    memoize pure functions of the design key), the parallel result —
    evaluations, failures, Pareto set, counters — and its checkpoint file
    are {e bit-identical} to the sequential run's at any chunk size and
    cache temperature; only [elapsed_seconds]/[cpu_seconds] differ. The
    estimator and generator must not hide process-global mutable state for
    this to hold (every in-tree app and the estimator satisfy this).
    Worker telemetry lands in per-domain scratch buffers
    ({!Dhdl_obs.Obs.with_domain_buffer}), and only the collector writes
    the checkpoint file.

    {b Fault isolation.} Each point runs inside an exception barrier: an
    exception from the generator, the lint pass, or the estimator — or an
    estimate containing non-finite or negative values — is recorded as a
    {!failure} (classified by {!failure_stage}) and the sweep continues.
    The {!Dhdl_util.Faults} sites [dse.generator] / [dse.lint] /
    [dse.estimator] / [dse.non_finite], keyed by point index, inject
    deterministic faults into each barrier for testing.

    {b Checkpoint / resume.} With [config.checkpoint = Some path] the
    sweep atomically rewrites [path] (JSONL, see {!Checkpoint}) every
    [checkpoint_every] processed points (default 500; [0] disables
    periodic writes) and once at the end. With [config.resume = true] it
    first loads [path] (if present), validates that the checkpoint belongs
    to this exact sweep (space, seed, max_points, sample count, parameter
    names — raising [Failure] otherwise), and reuses its entries instead
    of recomputing them ([resumed] counts reuses). Because sampling is
    seeded and fault sites are keyed by index, a resumed sweep produces
    evaluations structurally identical to an uninterrupted one — at any
    jobs level, including resuming a sequential checkpoint in parallel or
    vice versa.

    {b Deadline.} With [config.deadline_seconds = Some d] the sweep stops
    consuming points once [d] seconds have elapsed, flags the result
    [truncated], and still writes a final checkpoint — so a later resume
    finishes the job. Under [jobs > 1] the deadline stops every worker
    from pulling further indices; already-completed points beyond a
    truncation gap are kept (the checkpoint addresses entries by index,
    so a resume reuses them all).

    When the {!Dhdl_obs.Obs} sink is enabled the sweep records counters
    ([dse.points_sampled] / [dse.lint_pruned] / [dse.absint_pruned] /
    [dse.dep_pruned] / [dse.sym_pruned] / [dse.estimated] /
    [dse.unfit] / [dse.cache.hit] / [dse.cache.miss] / [dse.cache.evict]
    / [dse.failed.generator] / [dse.failed.lint] /
    [dse.failed.estimator] / [dse.failed.non_finite] — all pre-registered
    at zero — plus [dse.resumed] on resume), a [dse.ms_per_design]
    histogram over estimator calls, a per-point [dse.point] span for every
    [span_every]-th point (default 100; 0 disables), and a progress tick
    on stderr every [tick_every] points (default 1000). With the sink
    disabled (the default) none of this costs anything.

    {b Profiling.} With [config.profile = true] the sweep additionally
    attributes every worker-second to
    {generate, cache-probe, analyze, estimate, send-block, idle} and every
    collector-second to {recv-block, reorder-stall, write, merge},
    returning the breakdown in [result.attribution] (see {!Profile}).
    Attribution accumulators are owned by exactly one domain each, so
    profiling adds no cross-domain contention and — because it never
    touches the point pipeline's inputs — leaves results and checkpoints
    bit-identical to unprofiled runs at every jobs level. When the Obs
    sink is {e also} enabled, the sweep records [dse.chan.send_wait_us] /
    [dse.chan.recv_wait_us] wait histograms, [dse.chan.max_queue_depth] /
    [dse.reorder.max_occupancy] gauges, and per-domain [dse.claims.w<k>]
    cursor-claim counters. *)

val unfit_count : result -> int
(** Evaluated points that do not fit the device ([valid = false]) —
    distinct from [lint_pruned], which never reached the estimator. *)

val failed_count : result -> int
(** [List.length r.failures]. *)

val failure_counts : result -> (failure_stage * int) list
(** Failures bucketed by stage, every stage present (possibly at 0). *)

val best : result -> evaluation option
(** Fastest valid design (first Pareto point by cycles). *)

val pareto_of : evaluation list -> evaluation list
(** Frontier minimizing (cycles, ALM%) over valid evaluations. *)

val seconds_per_design : result -> float
(** Average {e wall-clock} time per design point that actually produced an
    estimate — lint-pruned and failed points skip or abort the estimator
    and would deflate the metric (Table IV's metric). With [jobs > 1] this
    shrinks with the worker count; use {!cpu_seconds_per_design} for a
    number comparable across jobs levels. *)

val cpu_seconds_per_design : result -> float
(** Average {e aggregate-CPU} time per estimated design point
    ([cpu_seconds] over successful evaluations) — invariant to [jobs], so
    throughput stays comparable with sequential and historical BENCH
    entries. *)

val to_csv : result -> string
(** The successful evaluations as CSV (one row per estimated point:
    parameters, estimated cycles, ALM/DSP/BRAM utilization, validity,
    Pareto membership) — the raw data behind a Figure 5 panel, ready for
    external plotting. *)
