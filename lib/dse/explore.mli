(** Design-space exploration driver (steps 2-4 of the paper's Figure 1).

    Walks a parameter space, instantiates the design generator at each legal
    point, runs the estimator, classifies validity against the device, and
    extracts the Pareto frontier in the (cycles, ALM-utilization) plane used
    throughout Figure 5.

    The sweep is fault-tolerant: each point's generate → lint → estimate
    pipeline runs inside an exception barrier, so one bad point becomes a
    classified {!failure} in the result instead of killing a 75,000-point
    run. Sweeps can checkpoint to disk and resume after a crash, and a
    deadline turns a too-long run into a flagged partial result. *)

module Estimator = Dhdl_model.Estimator

type evaluation = Outcome.evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;  (** Fits on the target device. *)
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

(** Which pipeline stage a failed point died in (see {!Outcome}). *)
type failure_stage = Outcome.failure_stage =
  | Generator_error
  | Lint_error
  | Estimator_error
  | Non_finite_estimate

type failure = Outcome.failure = {
  f_index : int;  (** Index of the point in sampling order. *)
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;
}

type result = {
  space_name : string;
  param_names : string list;  (** Parameter names in point order. *)
  evaluations : evaluation list;  (** Every point that estimated successfully. *)
  pareto : evaluation list;  (** Pareto-optimal valid designs. *)
  failures : failure list;  (** Classified per-point failures, in index order. *)
  raw_space : int;  (** Cardinality before pruning/sampling. *)
  sampled : int;  (** Sampled points, including pruned and failed ones. *)
  processed : int;  (** Points actually consumed; < [sampled] iff [truncated]. *)
  lint_pruned : int;  (** Points dropped before estimation by lint errors. *)
  resumed : int;  (** Points reused from a checkpoint instead of recomputed. *)
  truncated : bool;  (** The deadline stopped the sweep early. *)
  elapsed_seconds : float;
}

val run :
  ?seed:int ->
  ?max_points:int ->
  ?lint:bool ->
  ?span_every:int ->
  ?tick_every:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?deadline_seconds:float ->
  Estimator.t ->
  space:Space.t ->
  generate:(Space.point -> Dhdl_ir.Ir.design) ->
  unit ->
  result
(** Defaults: seed 2016, up to 75,000 sampled points (the paper's cap).
    When [lint] is [true] (the default), each generated design runs through
    {!Dhdl_lint.Lint.check} against the estimator's device and points with
    error-level diagnostics are pruned before estimation; [lint_pruned]
    counts them.

    {b Fault isolation.} Each point runs inside an exception barrier: an
    exception from the generator, the lint pass, or the estimator — or an
    estimate containing non-finite or negative values — is recorded as a
    {!failure} (classified by {!failure_stage}) and the sweep continues.
    The {!Dhdl_util.Faults} sites [dse.generator] / [dse.lint] /
    [dse.estimator] / [dse.non_finite], keyed by point index, inject
    deterministic faults into each barrier for testing.

    {b Checkpoint / resume.} With [~checkpoint:path] the sweep atomically
    rewrites [path] (JSONL, see {!Checkpoint}) every [checkpoint_every]
    processed points (default 500; [0] disables periodic writes) and once
    at the end. With [~resume:true] it first loads [path] (if present),
    validates that the checkpoint belongs to this exact sweep (space,
    seed, max_points, sample count, parameter names — raising [Failure]
    otherwise), and reuses its entries instead of recomputing them
    ([resumed] counts reuses). Because sampling is seeded and fault sites
    are keyed by index, a resumed sweep produces evaluations structurally
    identical to an uninterrupted one.

    {b Deadline.} With [~deadline_seconds:d] the sweep stops consuming
    points once [d] seconds have elapsed, flags the result [truncated],
    and still writes a final checkpoint — so a later [~resume:true] run
    finishes the job.

    When the {!Dhdl_obs.Obs} sink is enabled the sweep records counters
    ([dse.points_sampled] / [dse.lint_pruned] / [dse.estimated] /
    [dse.unfit] / [dse.failed.generator] / [dse.failed.lint] /
    [dse.failed.estimator] / [dse.failed.non_finite] — all pre-registered
    at zero — plus [dse.resumed] on resume), a [dse.ms_per_design]
    histogram over estimator calls, a per-point [dse.point] span for every
    [span_every]-th point (default 100; 0 disables), and a progress tick
    on stderr every [tick_every] points (default 1000). With the sink
    disabled (the default) none of this costs anything. *)

val unfit_count : result -> int
(** Evaluated points that do not fit the device ([valid = false]) —
    distinct from [lint_pruned], which never reached the estimator. *)

val failed_count : result -> int
(** [List.length r.failures]. *)

val failure_counts : result -> (failure_stage * int) list
(** Failures bucketed by stage, every stage present (possibly at 0). *)

val best : result -> evaluation option
(** Fastest valid design (first Pareto point by cycles). *)

val pareto_of : evaluation list -> evaluation list
(** Frontier minimizing (cycles, ALM%) over valid evaluations. *)

val seconds_per_design : result -> float
(** Average estimation time per design point that actually produced an
    estimate — lint-pruned and failed points skip or abort the estimator
    and would deflate the metric (Table IV's metric). *)

val to_csv : result -> string
(** The successful evaluations as CSV (one row per estimated point:
    parameters, estimated cycles, ALM/DSP/BRAM utilization, validity,
    Pareto membership) — the raw data behind a Figure 5 panel, ready for
    external plotting. *)
