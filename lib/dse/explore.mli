(** Design-space exploration driver (steps 2-4 of the paper's Figure 1).

    Walks a parameter space, instantiates the design generator at each legal
    point, runs the estimator, classifies validity against the device, and
    extracts the Pareto frontier in the (cycles, ALM-utilization) plane used
    throughout Figure 5. *)

module Estimator = Dhdl_model.Estimator

type evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;  (** Fits on the target device. *)
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

type result = {
  space_name : string;
  param_names : string list;  (** Parameter names in point order. *)
  evaluations : evaluation list;  (** Every sampled point that passed lint. *)
  pareto : evaluation list;  (** Pareto-optimal valid designs. *)
  raw_space : int;  (** Cardinality before pruning/sampling. *)
  sampled : int;  (** Sampled points, including lint-pruned ones. *)
  lint_pruned : int;  (** Points dropped before estimation by lint errors. *)
  elapsed_seconds : float;
}

val run :
  ?seed:int ->
  ?max_points:int ->
  ?lint:bool ->
  ?span_every:int ->
  ?tick_every:int ->
  Estimator.t ->
  space:Space.t ->
  generate:(Space.point -> Dhdl_ir.Ir.design) ->
  unit ->
  result
(** Defaults: seed 2016, up to 75,000 sampled points (the paper's cap).
    When [lint] is [true] (the default), each generated design runs through
    {!Dhdl_lint.Lint.check} against the estimator's device and points with
    error-level diagnostics are pruned before estimation; [lint_pruned]
    counts them.

    When the {!Dhdl_obs.Obs} sink is enabled the sweep records counters
    ([dse.points_sampled] / [dse.lint_pruned] / [dse.estimated] /
    [dse.unfit]), a [dse.ms_per_design] histogram over estimator calls, a
    per-point [dse.point] span for every [span_every]-th point (default
    100; 0 disables), and a progress tick on stderr every [tick_every]
    points (default 1000). With the sink disabled (the default) none of
    this costs anything. *)

val unfit_count : result -> int
(** Evaluated points that do not fit the device ([valid = false]) —
    distinct from [lint_pruned], which never reached the estimator. *)

val best : result -> evaluation option
(** Fastest valid design (first Pareto point by cycles). *)

val pareto_of : evaluation list -> evaluation list
(** Frontier minimizing (cycles, ALM%) over valid evaluations. *)

val seconds_per_design : result -> float
(** Average estimation time per design point actually estimated, i.e.
    [sampled - lint_pruned] — lint-pruned points skip the estimator and
    would deflate the metric (Table IV's metric). *)

val to_csv : result -> string
(** The full evaluation set as CSV (one row per sampled point: parameters,
    estimated cycles, ALM/DSP/BRAM utilization, validity, Pareto
    membership) — the raw data behind a Figure 5 panel, ready for external
    plotting. *)
