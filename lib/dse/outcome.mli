(** Per-point sweep outcomes shared by {!Explore} and {!Checkpoint}.

    One sampled design point ends the pipeline in exactly one terminal
    state: successfully evaluated, pruned by an error-level lint
    diagnostic (heuristic, proof-backed, or dependence-refuted), or failed
    in a classified stage. Keeping these types in
    their own module lets the checkpoint serializer and the explorer agree
    on them without a dependency cycle; {!Explore} re-exports them so
    existing [Explore.evaluation] users are unaffected. *)

module Estimator = Dhdl_model.Estimator

(** Which stage of the generate → lint → estimate pipeline failed. *)
type failure_stage =
  | Generator_error  (** The design generator raised. *)
  | Lint_error  (** The lint pass itself raised (not a diagnostic). *)
  | Estimator_error  (** The estimator raised. *)
  | Non_finite_estimate
      (** The estimator returned, but with NaN/infinite or negative
          cycles, seconds, or utilization — a poisoned value that must not
          enter the Pareto computation. *)

type failure = {
  f_index : int;  (** Index of the point in sampling order. *)
  f_point : Space.point;
  f_stage : failure_stage;
  f_message : string;  (** Rendered exception or validation detail. *)
}

type evaluation = {
  point : Space.point;
  estimate : Estimator.estimate;
  valid : bool;  (** Fits on the target device. *)
  alm_pct : float;
  dsp_pct : float;
  bram_pct : float;
}

(** Terminal state of one processed point. [Pruned] means an error-level
    heuristic lint diagnostic stopped it before estimation; [Absint_pruned]
    means the only errors were abstract-interpretation proofs (L009/L010 —
    an out-of-bounds access or bank conflict with a concrete witness);
    [Dep_pruned] means the only errors were dependence-analysis refutations
    of the chosen parallelization (L013 — a proven same-cycle lane
    conflict); [Sym_pruned] means the symbolic legality predicate
    ([Symbolic] over the design parameters) refuted the point {e before
    elaboration} — the design was never generated, and the predicate's
    soundness guarantee is that concrete analysis would have refuted it
    with the same diagnostic code. *)
type entry =
  | Evaluated of evaluation
  | Pruned
  | Absint_pruned
  | Dep_pruned
  | Sym_pruned
  | Failed of failure_stage * string

val stage_name : failure_stage -> string
(** Stable lowercase tag used in checkpoints, counters and CLI output:
    [generator | lint | estimator | non_finite]. *)

val stage_of_name : string -> failure_stage option
