module Texttable = Dhdl_util.Texttable
module Rng = Dhdl_util.Rng

type attrs = (string * string) list

type span = {
  sp_name : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;
  sp_seq : int;
  sp_track : int;
  sp_attrs : attrs;
}

type snapshot = {
  snap_spans : span list;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * float array) list;
  snap_hist_totals : (string * int) list;
}

(* Capped reservoir for histogram samples: up to [hcap] kept samples drawn
   uniformly (algorithm R) from the full stream, with the true stream
   length in [htotal]. The per-histogram RNG is seeded from the histogram
   name, so a fixed recording sequence always keeps the same samples. *)
type hist = {
  mutable hdata : float array;
  mutable hlen : int;
  mutable htotal : int;
  hcap : int;
  hrng : Rng.t;
}

type sink = {
  mutex : Mutex.t;
  clock : unit -> float;
  epoch : float;
  hist_cap : int;
  mutable spans : span list;  (* reverse completion order *)
  mutable depth : int;
  mutable seq : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

(* The ambient sink. [live] mirrors [current <> None] so the disabled fast
   path is a single immediate-bool load with no option allocation. *)
let current : sink option ref = ref None
let live = ref false

let default_hist_cap = 8192

(* Per-domain scratch buffer. A worker domain that records telemetry
   through the global sink would serialize every counter bump and span on
   the sink mutex — on the DSE hot path that contention is paid per point.
   [with_domain_buffer] installs a domain-local buffer instead: recording
   entry points write to it lock-free, and the buffer is merged into the
   global sink under a single lock acquisition when the scope exits. The
   buffer carries a [track] identity so the Chrome exporter can render one
   lane per worker domain. *)
type local = {
  l_counters : (string, int ref) Hashtbl.t;
  l_hists : (string, hist) Hashtbl.t;
  l_track : int;
  mutable l_spans : span list;  (* reverse completion order, local seq *)
  mutable l_depth : int;
  mutable l_seq : int;
}

let local_key : local option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let local_buffer () = !(Domain.DLS.get local_key)

(* Request lanes: tracks handed out by [fresh_track] start at 100, far
   above any realistic worker-domain count, so the exporters can tell
   "request 3" lanes apart from "worker 3" lanes by range alone. *)
let request_track_base = 100
let next_request_track = Atomic.make request_track_base

let fresh_track () = Atomic.fetch_and_add next_request_track 1

let enable ?(clock = Unix.gettimeofday) ?(hist_cap = default_hist_cap) () =
  Atomic.set next_request_track request_track_base;
  current :=
    Some
      {
        mutex = Mutex.create ();
        clock;
        epoch = clock ();
        hist_cap = max 1 hist_cap;
        spans = [];
        depth = 0;
        seq = 0;
        counters = Hashtbl.create 32;
        gauges = Hashtbl.create 16;
        hists = Hashtbl.create 16;
      };
  live := true

let disable () =
  live := false;
  current := None

let enabled () = !live

let now_us s = (s.clock () -. s.epoch) *. 1e6

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some s -> (
    match local_buffer () with
    | Some l ->
      (* Lock-free: depth/seq are domain-local; global sequence numbers are
         assigned when the buffer flushes. *)
      let start = now_us s in
      let depth = l.l_depth and seq = l.l_seq in
      l.l_depth <- depth + 1;
      l.l_seq <- seq + 1;
      Fun.protect
        ~finally:(fun () ->
          let dur = now_us s -. start in
          l.l_depth <- l.l_depth - 1;
          l.l_spans <-
            { sp_name = name; sp_start_us = start; sp_dur_us = dur; sp_depth = depth;
              sp_seq = seq; sp_track = l.l_track; sp_attrs = attrs }
            :: l.l_spans)
        f
    | None ->
      let start = now_us s in
      let depth, seq =
        locked s (fun () ->
            let d = s.depth and q = s.seq in
            s.depth <- d + 1;
            s.seq <- q + 1;
            (d, q))
      in
      Fun.protect
        ~finally:(fun () ->
          let dur = now_us s -. start in
          locked s (fun () ->
              s.depth <- s.depth - 1;
              s.spans <-
                { sp_name = name; sp_start_us = start; sp_dur_us = dur; sp_depth = depth;
                  sp_seq = seq; sp_track = 0; sp_attrs = attrs }
                :: s.spans))
        f)

let span_sampled ~every ~i ?attrs name f =
  if !live && every > 0 && i mod every = 0 then span ?attrs name f else f ()

let bump counters name by =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace counters name (ref by)

let count ?(by = 1) name =
  match !current with
  | None -> ()
  | Some s -> (
    match local_buffer () with
    | Some l -> bump l.l_counters name by
    | None -> locked s (fun () -> bump s.counters name by))

let counter_value name =
  match !current with
  | None -> 0
  | Some s -> locked s (fun () -> match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let gauge name v =
  match !current with
  | None -> ()
  | Some s -> locked s (fun () -> Hashtbl.replace s.gauges name v)

let find_hist ~cap hists name =
  match Hashtbl.find_opt hists name with
  | Some h -> h
  | None ->
    let h =
      { hdata = Array.make (min 64 cap) 0.0; hlen = 0; htotal = 0; hcap = cap;
        hrng = Rng.create (Hashtbl.hash name) }
    in
    Hashtbl.replace hists name h;
    h

(* One reservoir step: the sample is the [htotal]-th of the stream; keep it
   outright while under the cap, otherwise replace a uniformly chosen kept
   sample with probability cap/htotal (algorithm R). *)
let hist_step h v =
  h.htotal <- h.htotal + 1;
  if h.hlen < h.hcap then begin
    if h.hlen = Array.length h.hdata then begin
      let bigger = Array.make (min h.hcap (2 * h.hlen)) 0.0 in
      Array.blit h.hdata 0 bigger 0 h.hlen;
      h.hdata <- bigger
    end;
    h.hdata.(h.hlen) <- v;
    h.hlen <- h.hlen + 1
  end
  else begin
    let j = Rng.int h.hrng h.htotal in
    if j < h.hcap then h.hdata.(j) <- v
  end

let hist_observe ~cap hists name v = hist_step (find_hist ~cap hists name) v

let observe name v =
  match !current with
  | None -> ()
  | Some s -> (
    match local_buffer () with
    | Some l -> hist_observe ~cap:s.hist_cap l.l_hists name v
    | None -> locked s (fun () -> hist_observe ~cap:s.hist_cap s.hists name v))

(* Histogram name for the sink-mutex acquisition wait measured at each
   domain-buffer flush — the only point where profiled domains contend on
   the sink itself, kept visible so "the profiler adds no contention" is a
   measured claim rather than an assumption. *)
let flush_wait_hist = "obs.flush_wait_us"

let with_domain_buffer ?(track = 0) f =
  match !current with
  | None -> f ()
  | Some s ->
    let slot = Domain.DLS.get local_key in
    let saved = !slot in
    let l =
      {
        l_counters = Hashtbl.create 16;
        l_hists = Hashtbl.create 8;
        l_track = track;
        l_spans = [];
        l_depth = 0;
        l_seq = 0;
      }
    in
    slot := Some l;
    let flush () =
      slot := saved;
      (* One lock acquisition merges everything the domain recorded. Spans
         get fresh global sequence numbers in their local completion order,
         so the snapshot's seq sort keeps each domain's spans coherent. The
         time spent waiting for the merge lock is itself recorded. *)
      let t0 = now_us s in
      Mutex.lock s.mutex;
      let waited = now_us s -. t0 in
      Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) @@ fun () ->
      Hashtbl.iter (fun name r -> bump s.counters name !r) l.l_counters;
      Hashtbl.iter
        (fun name h ->
          let g = find_hist ~cap:s.hist_cap s.hists name in
          for idx = 0 to h.hlen - 1 do
            hist_step g h.hdata.(idx)
          done;
          (* Samples the local reservoir dropped still count toward the
             true stream length. *)
          g.htotal <- g.htotal + (h.htotal - h.hlen))
        l.l_hists;
      List.iter
        (fun sp ->
          let seq = s.seq in
          s.seq <- seq + 1;
          s.spans <- { sp with sp_seq = seq } :: s.spans)
        (List.rev l.l_spans);
      hist_observe ~cap:s.hist_cap s.hists flush_wait_hist waited
    in
    Fun.protect ~finally:flush f

let with_request_track ?attrs name f =
  match !current with
  | None -> f ()
  | Some _ ->
    let track = fresh_track () in
    with_domain_buffer ~track (fun () -> span ?attrs name f)

let tick ?(every = 1000) ~label ~total i =
  if !live && every > 0 && i > 0 && i mod every = 0 then
    Printf.eprintf "[obs] %s: %d/%d points\n%!" label i total

(* ---------------- snapshot + aggregates ------------------------------- *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  match !current with
  | None ->
    { snap_spans = []; snap_counters = []; snap_gauges = []; snap_hists = [];
      snap_hist_totals = [] }
  | Some s ->
    locked s (fun () ->
        {
          snap_spans = List.sort (fun a b -> compare a.sp_seq b.sp_seq) s.spans;
          snap_counters = sorted_bindings s.counters (fun r -> !r);
          snap_gauges = sorted_bindings s.gauges Fun.id;
          snap_hists = sorted_bindings s.hists (fun h -> Array.sub h.hdata 0 h.hlen);
          snap_hist_totals = sorted_bindings s.hists (fun h -> h.htotal);
        })

let hist_total snap name =
  match List.assoc_opt name snap.snap_hist_totals with
  | Some n -> n
  | None -> (
    match List.assoc_opt name snap.snap_hists with
    | Some vs -> Array.length vs
    | None -> 0)

let percentile values q =
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let s = Array.copy values in
    Array.sort compare s;
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let mean values =
  let n = Array.length values in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 values /. float_of_int n

let maximum values = Array.fold_left Float.max 0.0 values

(* ---------------- exporters ------------------------------------------- *)

let fmt_us = Printf.sprintf "%.3f"

(* Shared summary renderer: the live snapshot path feeds it samples, the
   JSONL re-import path feeds it pre-aggregated histogram rows. *)
type hist_row = {
  hr_name : string;
  hr_count : int;
  hr_sampled : int;
  hr_mean : float;
  hr_p50 : float;
  hr_p95 : float;
  hr_max : float;
}

let render_summary_parts ~counters ~gauges ~hist_rows ~span_durs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "telemetry summary\n";
  let empty = counters = [] && gauges = [] && hist_rows = [] && span_durs = [] in
  if empty then Buffer.add_string buf "(no events recorded)\n"
  else begin
    if counters <> [] then begin
      Buffer.add_string buf "\ncounters\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "counter"; "value" ]
           (List.map (fun (n, v) -> [ n; Texttable.fmt_int_commas v ]) counters))
    end;
    if gauges <> [] then begin
      Buffer.add_string buf "\ngauges\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "gauge"; "value" ]
           (List.map (fun (n, v) -> [ n; Texttable.fmt_float ~decimals:3 v ]) gauges))
    end;
    if hist_rows <> [] then begin
      Buffer.add_string buf "\nhistograms\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "histogram"; "count"; "sampled"; "mean"; "p50"; "p95"; "max" ]
           (List.map
              (fun r ->
                [ r.hr_name; string_of_int r.hr_count; string_of_int r.hr_sampled;
                  Texttable.fmt_float ~decimals:3 r.hr_mean;
                  Texttable.fmt_float ~decimals:3 r.hr_p50;
                  Texttable.fmt_float ~decimals:3 r.hr_p95;
                  Texttable.fmt_float ~decimals:3 r.hr_max ])
              hist_rows))
    end;
    if span_durs <> [] then begin
      (* Roll spans up by name, preserving first-appearance order. *)
      let order = ref [] in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (name, dur_us) ->
          match Hashtbl.find_opt tbl name with
          | Some samples -> samples := dur_us :: !samples
          | None ->
            Hashtbl.replace tbl name (ref [ dur_us ]);
            order := name :: !order)
        span_durs;
      Buffer.add_string buf "\nspans\n";
      Buffer.add_string buf
        (Texttable.render
           ~header:[ "span"; "count"; "total ms"; "mean ms"; "p50 ms"; "p95 ms"; "max ms" ]
           (List.rev_map
              (fun name ->
                let vs = Array.of_list !(Hashtbl.find tbl name) in
                let ms = Array.map (fun us -> us /. 1000.0) vs in
                [ name; string_of_int (Array.length ms);
                  Texttable.fmt_float ~decimals:3 (Array.fold_left ( +. ) 0.0 ms);
                  Texttable.fmt_float ~decimals:3 (mean ms);
                  Texttable.fmt_float ~decimals:3 (percentile ms 50.0);
                  Texttable.fmt_float ~decimals:3 (percentile ms 95.0);
                  Texttable.fmt_float ~decimals:3 (maximum ms) ])
              !order))
    end
  end;
  Buffer.contents buf

let render_summary snap =
  render_summary_parts ~counters:snap.snap_counters ~gauges:snap.snap_gauges
    ~hist_rows:
      (List.map
         (fun (n, vs) ->
           { hr_name = n; hr_count = hist_total snap n; hr_sampled = Array.length vs;
             hr_mean = mean vs; hr_p50 = percentile vs 50.0; hr_p95 = percentile vs 95.0;
             hr_max = maximum vs })
         snap.snap_hists)
    ~span_durs:(List.map (fun sp -> (sp.sp_name, sp.sp_dur_us)) snap.snap_spans)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_attrs attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) attrs)
  ^ "}"

let to_jsonl snap =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":\"%s\",\"start_us\":%s,\"dur_us\":%s,\"depth\":%d,\"track\":%d,\"attrs\":%s}\n"
           (json_escape sp.sp_name) (fmt_us sp.sp_start_us) (fmt_us sp.sp_dur_us) sp.sp_depth
           sp.sp_track (json_attrs sp.sp_attrs)))
    snap.snap_spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n" (json_escape n) v))
    snap.snap_counters;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n" (json_escape n)
           (fmt_us v)))
    snap.snap_gauges;
  List.iter
    (fun (n, vs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sampled\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}\n"
           (json_escape n) (hist_total snap n) (Array.length vs) (fmt_us (mean vs))
           (fmt_us (percentile vs 50.0))
           (fmt_us (percentile vs 95.0))
           (fmt_us (maximum vs))))
    snap.snap_hists;
  Buffer.contents buf

let track_name t =
  if t = 0 then "main"
  else if t >= request_track_base then Printf.sprintf "request %d" (t - request_track_base)
  else Printf.sprintf "worker %d" t

let to_chrome_trace snap =
  let end_ts =
    List.fold_left (fun acc sp -> Float.max acc (sp.sp_start_us +. sp.sp_dur_us)) 0.0
      snap.snap_spans
  in
  let tracks =
    List.sort_uniq compare (0 :: List.map (fun sp -> sp.sp_track) snap.snap_spans)
  in
  let events = Buffer.create 4096 in
  Buffer.add_string events
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dhdl\"}}";
  List.iter
    (fun t ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           t (track_name t)))
    tracks;
  List.iter
    (fun sp ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
           (json_escape sp.sp_name) sp.sp_track (fmt_us sp.sp_start_us) (fmt_us sp.sp_dur_us)
           (json_attrs sp.sp_attrs)))
    snap.snap_spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%s,\"args\":{\"value\":%d}}"
           (json_escape n) (fmt_us end_ts) v))
    snap.snap_counters;
  List.iter
    (fun (n, v) ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%s,\"args\":{\"value\":%s}}"
           (json_escape n) (fmt_us end_ts) (fmt_us v)))
    snap.snap_gauges;
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n" (Buffer.contents events)

(* ---------------- JSONL re-import ------------------------------------- *)

(* Minimal parser for the flat JSON objects [to_jsonl] emits: one object
   per line, string / number / nested-object values (nested objects are
   kept as raw text — only the exporter's own [attrs] use them). Not a
   general JSON parser; it exists so traces recorded on another machine
   can be summarized without re-running the workload. *)

exception Parse of string

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 5 >= n then fail "short \\u escape";
            let hex = String.sub line (!pos + 2) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | c -> fail (Printf.sprintf "unknown escape \\%c" c));
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_raw_object () =
    (* Capture a balanced {...} as raw text, respecting strings. *)
    let start = !pos in
    let depth = ref 0 in
    let in_str = ref false in
    let fin = ref (-1) in
    while !fin < 0 && !pos < n do
      (match line.[!pos] with
      | '"' when not (!pos > start && line.[!pos - 1] = '\\') -> in_str := not !in_str
      | '{' when not !in_str -> incr depth
      | '}' when not !in_str ->
        decr depth;
        if !depth = 0 then fin := !pos
      | _ -> ());
      incr pos
    done;
    if !fin < 0 then fail "unterminated object";
    String.sub line start (!fin - start + 1)
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' -> parse_raw_object ()
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match line.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 'a' .. 'd' | 'f' .. 'z' -> true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail "expected a value";
      String.sub line start (!pos - start)
    | None -> fail "expected a value"
  in
  expect '{';
  skip_ws ();
  if peek () = Some '}' then []
  else begin
    let fields = ref [] in
    let rec go () =
      let k = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        go ()
      | Some '}' -> ()
      | _ -> fail "expected ',' or '}'"
    in
    go ();
    List.rev !fields
  end

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Parse (Printf.sprintf "missing field %S" k))

let float_field fields k =
  match float_of_string_opt (field fields k) with
  | Some f -> f
  | None -> raise (Parse (Printf.sprintf "field %S is not a number" k))

let int_field fields k =
  match int_of_string_opt (field fields k) with
  | Some i -> i
  | None -> raise (Parse (Printf.sprintf "field %S is not an integer" k))

let summary_of_jsonl text =
  let counters = ref [] and gauges = ref [] and hist_rows = ref [] and span_durs = ref [] in
  let line_no = ref 0 in
  try
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           incr line_no;
           if String.trim line <> "" then begin
             let fields = parse_object line in
             match field fields "type" with
             | "span" -> span_durs := (field fields "name", float_field fields "dur_us") :: !span_durs
             | "counter" -> counters := (field fields "name", int_field fields "value") :: !counters
             | "gauge" -> gauges := (field fields "name", float_field fields "value") :: !gauges
             | "histogram" ->
               let sampled =
                 match List.assoc_opt "sampled" fields with
                 | Some s -> (
                   match int_of_string_opt s with
                   | Some i -> i
                   | None -> raise (Parse "field \"sampled\" is not an integer"))
                 | None -> int_field fields "count"
               in
               hist_rows :=
                 {
                   hr_name = field fields "name";
                   hr_count = int_field fields "count";
                   hr_sampled = sampled;
                   hr_mean = float_field fields "mean";
                   hr_p50 = float_field fields "p50";
                   hr_p95 = float_field fields "p95";
                   hr_max = float_field fields "max";
                 }
                 :: !hist_rows
             | t -> raise (Parse (Printf.sprintf "unknown record type %S" t))
           end);
    Ok
      (render_summary_parts
         ~counters:(List.sort compare !counters)
         ~gauges:(List.sort compare !gauges)
         ~hist_rows:(List.sort (fun a b -> compare a.hr_name b.hr_name) !hist_rows)
         ~span_durs:(List.rev !span_durs))
  with Parse msg -> Error (Printf.sprintf "line %d: %s" !line_no msg)
