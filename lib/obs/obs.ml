module Texttable = Dhdl_util.Texttable

type attrs = (string * string) list

type span = {
  sp_name : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;
  sp_seq : int;
  sp_attrs : attrs;
}

type snapshot = {
  snap_spans : span list;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * float array) list;
}

(* Growable sample buffer for histograms. *)
type hist = { mutable hdata : float array; mutable hlen : int }

type sink = {
  mutex : Mutex.t;
  clock : unit -> float;
  epoch : float;
  mutable spans : span list;  (* reverse completion order *)
  mutable depth : int;
  mutable seq : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

(* The ambient sink. [live] mirrors [current <> None] so the disabled fast
   path is a single immediate-bool load with no option allocation. *)
let current : sink option ref = ref None
let live = ref false

(* Per-domain scratch buffer. A worker domain that records telemetry
   through the global sink would serialize every counter bump and span on
   the sink mutex — on the DSE hot path that contention is paid per point.
   [with_domain_buffer] installs a domain-local buffer instead: recording
   entry points write to it lock-free, and the buffer is merged into the
   global sink under a single lock acquisition when the scope exits. *)
type local = {
  l_counters : (string, int ref) Hashtbl.t;
  l_hists : (string, hist) Hashtbl.t;
  mutable l_spans : span list;  (* reverse completion order, local seq *)
  mutable l_depth : int;
  mutable l_seq : int;
}

let local_key : local option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let local_buffer () = !(Domain.DLS.get local_key)

let enable ?(clock = Unix.gettimeofday) () =
  current :=
    Some
      {
        mutex = Mutex.create ();
        clock;
        epoch = clock ();
        spans = [];
        depth = 0;
        seq = 0;
        counters = Hashtbl.create 32;
        gauges = Hashtbl.create 16;
        hists = Hashtbl.create 16;
      };
  live := true

let disable () =
  live := false;
  current := None

let enabled () = !live

let now_us s = (s.clock () -. s.epoch) *. 1e6

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some s -> (
    match local_buffer () with
    | Some l ->
      (* Lock-free: depth/seq are domain-local; global sequence numbers are
         assigned when the buffer flushes. *)
      let start = now_us s in
      let depth = l.l_depth and seq = l.l_seq in
      l.l_depth <- depth + 1;
      l.l_seq <- seq + 1;
      Fun.protect
        ~finally:(fun () ->
          let dur = now_us s -. start in
          l.l_depth <- l.l_depth - 1;
          l.l_spans <-
            { sp_name = name; sp_start_us = start; sp_dur_us = dur; sp_depth = depth;
              sp_seq = seq; sp_attrs = attrs }
            :: l.l_spans)
        f
    | None ->
      let start = now_us s in
      let depth, seq =
        locked s (fun () ->
            let d = s.depth and q = s.seq in
            s.depth <- d + 1;
            s.seq <- q + 1;
            (d, q))
      in
      Fun.protect
        ~finally:(fun () ->
          let dur = now_us s -. start in
          locked s (fun () ->
              s.depth <- s.depth - 1;
              s.spans <-
                { sp_name = name; sp_start_us = start; sp_dur_us = dur; sp_depth = depth;
                  sp_seq = seq; sp_attrs = attrs }
                :: s.spans))
        f)

let span_sampled ~every ~i ?attrs name f =
  if !live && every > 0 && i mod every = 0 then span ?attrs name f else f ()

let bump counters name by =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace counters name (ref by)

let count ?(by = 1) name =
  match !current with
  | None -> ()
  | Some s -> (
    match local_buffer () with
    | Some l -> bump l.l_counters name by
    | None -> locked s (fun () -> bump s.counters name by))

let counter_value name =
  match !current with
  | None -> 0
  | Some s -> locked s (fun () -> match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let gauge name v =
  match !current with
  | None -> ()
  | Some s -> locked s (fun () -> Hashtbl.replace s.gauges name v)

let hist_append hists name v =
  let h =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
      let h = { hdata = Array.make 64 0.0; hlen = 0 } in
      Hashtbl.replace hists name h;
      h
  in
  if h.hlen = Array.length h.hdata then begin
    let bigger = Array.make (2 * h.hlen) 0.0 in
    Array.blit h.hdata 0 bigger 0 h.hlen;
    h.hdata <- bigger
  end;
  h.hdata.(h.hlen) <- v;
  h.hlen <- h.hlen + 1

let observe name v =
  match !current with
  | None -> ()
  | Some s -> (
    match local_buffer () with
    | Some l -> hist_append l.l_hists name v
    | None -> locked s (fun () -> hist_append s.hists name v))

let with_domain_buffer f =
  match !current with
  | None -> f ()
  | Some s ->
    let slot = Domain.DLS.get local_key in
    let saved = !slot in
    let l =
      {
        l_counters = Hashtbl.create 16;
        l_hists = Hashtbl.create 8;
        l_spans = [];
        l_depth = 0;
        l_seq = 0;
      }
    in
    slot := Some l;
    let flush () =
      slot := saved;
      (* One lock acquisition merges everything the domain recorded. Spans
         get fresh global sequence numbers in their local completion order,
         so the snapshot's seq sort keeps each domain's spans coherent. *)
      locked s (fun () ->
          Hashtbl.iter (fun name r -> bump s.counters name !r) l.l_counters;
          Hashtbl.iter
            (fun name h -> Array.iter (hist_append s.hists name) (Array.sub h.hdata 0 h.hlen))
            l.l_hists;
          List.iter
            (fun sp ->
              let seq = s.seq in
              s.seq <- seq + 1;
              s.spans <- { sp with sp_seq = seq } :: s.spans)
            (List.rev l.l_spans))
    in
    Fun.protect ~finally:flush f

let tick ?(every = 1000) ~label ~total i =
  if !live && every > 0 && i > 0 && i mod every = 0 then
    Printf.eprintf "[obs] %s: %d/%d points\n%!" label i total

(* ---------------- snapshot + aggregates ------------------------------- *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  match !current with
  | None -> { snap_spans = []; snap_counters = []; snap_gauges = []; snap_hists = [] }
  | Some s ->
    locked s (fun () ->
        {
          snap_spans = List.sort (fun a b -> compare a.sp_seq b.sp_seq) s.spans;
          snap_counters = sorted_bindings s.counters (fun r -> !r);
          snap_gauges = sorted_bindings s.gauges Fun.id;
          snap_hists = sorted_bindings s.hists (fun h -> Array.sub h.hdata 0 h.hlen);
        })

let percentile values q =
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let s = Array.copy values in
    Array.sort compare s;
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let mean values =
  let n = Array.length values in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 values /. float_of_int n

let maximum values = Array.fold_left Float.max 0.0 values

(* ---------------- exporters ------------------------------------------- *)

let fmt_us = Printf.sprintf "%.3f"

let render_summary snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "telemetry summary\n";
  let empty =
    snap.snap_spans = [] && snap.snap_counters = [] && snap.snap_gauges = []
    && snap.snap_hists = []
  in
  if empty then Buffer.add_string buf "(no events recorded)\n"
  else begin
    if snap.snap_counters <> [] then begin
      Buffer.add_string buf "\ncounters\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "counter"; "value" ]
           (List.map (fun (n, v) -> [ n; Texttable.fmt_int_commas v ]) snap.snap_counters))
    end;
    if snap.snap_gauges <> [] then begin
      Buffer.add_string buf "\ngauges\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "gauge"; "value" ]
           (List.map (fun (n, v) -> [ n; Texttable.fmt_float ~decimals:3 v ]) snap.snap_gauges))
    end;
    if snap.snap_hists <> [] then begin
      Buffer.add_string buf "\nhistograms\n";
      Buffer.add_string buf
        (Texttable.render ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "max" ]
           (List.map
              (fun (n, vs) ->
                [ n; string_of_int (Array.length vs);
                  Texttable.fmt_float ~decimals:3 (mean vs);
                  Texttable.fmt_float ~decimals:3 (percentile vs 50.0);
                  Texttable.fmt_float ~decimals:3 (percentile vs 95.0);
                  Texttable.fmt_float ~decimals:3 (maximum vs) ])
              snap.snap_hists))
    end;
    if snap.snap_spans <> [] then begin
      (* Roll spans up by name, preserving first-start order. *)
      let order = ref [] in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun sp ->
          match Hashtbl.find_opt tbl sp.sp_name with
          | Some samples -> samples := sp.sp_dur_us :: !samples
          | None ->
            Hashtbl.replace tbl sp.sp_name (ref [ sp.sp_dur_us ]);
            order := sp.sp_name :: !order)
        snap.snap_spans;
      Buffer.add_string buf "\nspans\n";
      Buffer.add_string buf
        (Texttable.render
           ~header:[ "span"; "count"; "total ms"; "mean ms"; "p50 ms"; "p95 ms"; "max ms" ]
           (List.rev_map
              (fun name ->
                let vs = Array.of_list !(Hashtbl.find tbl name) in
                let ms = Array.map (fun us -> us /. 1000.0) vs in
                [ name; string_of_int (Array.length ms);
                  Texttable.fmt_float ~decimals:3 (Array.fold_left ( +. ) 0.0 ms);
                  Texttable.fmt_float ~decimals:3 (mean ms);
                  Texttable.fmt_float ~decimals:3 (percentile ms 50.0);
                  Texttable.fmt_float ~decimals:3 (percentile ms 95.0);
                  Texttable.fmt_float ~decimals:3 (maximum ms) ])
              !order))
    end
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_attrs attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) attrs)
  ^ "}"

let to_jsonl snap =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":\"%s\",\"start_us\":%s,\"dur_us\":%s,\"depth\":%d,\"attrs\":%s}\n"
           (json_escape sp.sp_name) (fmt_us sp.sp_start_us) (fmt_us sp.sp_dur_us) sp.sp_depth
           (json_attrs sp.sp_attrs)))
    snap.snap_spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n" (json_escape n) v))
    snap.snap_counters;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n" (json_escape n)
           (fmt_us v)))
    snap.snap_gauges;
  List.iter
    (fun (n, vs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}\n"
           (json_escape n) (Array.length vs) (fmt_us (mean vs))
           (fmt_us (percentile vs 50.0))
           (fmt_us (percentile vs 95.0))
           (fmt_us (maximum vs))))
    snap.snap_hists;
  Buffer.contents buf

let to_chrome_trace snap =
  let end_ts =
    List.fold_left (fun acc sp -> Float.max acc (sp.sp_start_us +. sp.sp_dur_us)) 0.0
      snap.snap_spans
  in
  let events = Buffer.create 4096 in
  Buffer.add_string events
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"dhdl\"}}";
  List.iter
    (fun sp ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"cat\":\"dhdl\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%s,\"dur\":%s,\"args\":%s}"
           (json_escape sp.sp_name) (fmt_us sp.sp_start_us) (fmt_us sp.sp_dur_us)
           (json_attrs sp.sp_attrs)))
    snap.snap_spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":%s,\"args\":{\"value\":%d}}"
           (json_escape n) (fmt_us end_ts) v))
    snap.snap_counters;
  List.iter
    (fun (n, v) ->
      Buffer.add_string events
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":%s,\"args\":{\"value\":%s}}"
           (json_escape n) (fmt_us end_ts) (fmt_us v)))
    snap.snap_gauges;
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n" (Buffer.contents events)
