(** Telemetry core: hierarchical spans, counters / gauges / histograms, and
    three exporters (summary table, JSONL event log, Chrome [trace_event]
    JSON loadable in chrome://tracing or Perfetto).

    The sink is a process-global ambient singleton so hot paths can be
    instrumented without threading a handle through every signature. It is
    disabled by default: every recording entry point first checks one
    mutable flag and returns immediately, so instrumented code pays no
    allocation and no lock when telemetry is off. When enabled, mutation of
    the sink is serialized by a mutex (safe under domains; span nesting
    depth is tracked globally, so spans from concurrent domains interleave
    their depths but never corrupt the sink).

    Spans carry a {e track} identity (an integer lane, 0 = the main
    domain) assigned by {!with_domain_buffer}, so the Chrome exporter
    renders one lane per worker domain instead of a single interleaved
    track. Histogram sample buffers are bounded: each histogram keeps at
    most [hist_cap] samples, drawn uniformly from the full stream by a
    deterministic per-histogram seeded reservoir (algorithm R), while the
    true stream length is tracked exactly and exported alongside the
    sampled percentiles. *)

type attrs = (string * string) list

type span = {
  sp_name : string;
  sp_start_us : float;  (** Start, microseconds since [enable]. *)
  sp_dur_us : float;  (** Duration in microseconds. *)
  sp_depth : int;  (** Nesting depth; 0 for root spans. *)
  sp_seq : int;  (** Start-order sequence number (stable sort key). *)
  sp_track : int;
      (** Lane identity: 0 for spans recorded on the calling domain's
          global path, the [track] given to {!with_domain_buffer} for
          buffered spans. Rendered as the Chrome trace [tid]. *)
  sp_attrs : attrs;
}

type snapshot = {
  snap_spans : span list;  (** In start order. *)
  snap_counters : (string * int) list;  (** Sorted by name. *)
  snap_gauges : (string * float) list;  (** Sorted by name. *)
  snap_hists : (string * float array) list;
      (** Sorted by name; the {e kept} (reservoir-sampled) samples in
          insertion order. *)
  snap_hist_totals : (string * int) list;
      (** Sorted by name; the true number of [observe] calls per
          histogram, [>=] the kept sample count. *)
}

(** {1 Lifecycle} *)

val default_hist_cap : int
(** Default bound on kept samples per histogram (8192). *)

val enable : ?clock:(unit -> float) -> ?hist_cap:int -> unit -> unit
(** Install a fresh live sink (discarding any previous one). [clock]
    defaults to [Unix.gettimeofday]; tests inject a deterministic clock.
    [hist_cap] (default {!default_hist_cap}, clamped to [>= 1]) bounds the
    kept samples per histogram. Timestamps are recorded relative to the
    moment of [enable]. *)

val disable : unit -> unit
(** Drop the sink; instrumented paths return to the no-op fast path. *)

val enabled : unit -> bool

(** {1 Recording} *)

val span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f] and records a completed span (also on
    exception). When disabled this is exactly [f ()]. *)

val span_sampled : every:int -> i:int -> ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Record the span only for every [every]-th index ([i mod every = 0],
    [every > 0]); otherwise just run [f]. For per-point spans in long DSE
    sweeps where tracing every point would swamp the sink. *)

val count : ?by:int -> string -> unit
(** Increment a named counter. [count ~by:0 name] registers the counter at
    zero without incrementing (so reports show it even when never hit). *)

val counter_value : string -> int
(** Current value, 0 when absent or disabled. *)

val gauge : string -> float -> unit
(** Set a named gauge to its latest value. *)

val observe : string -> float -> unit
(** Append a sample to a named histogram (e.g. per-design estimation ms).
    Past [hist_cap] samples the histogram keeps a uniform reservoir and
    the exact total count; percentiles become sampled estimates. *)

val tick : ?every:int -> label:string -> total:int -> int -> unit
(** [tick ~label ~total i] prints a progress line to stderr every [every]
    (default 1000) increments while enabled; no-op when disabled. *)

val with_domain_buffer : ?track:int -> (unit -> 'a) -> 'a
(** [with_domain_buffer ?track f] runs [f] with a domain-local scratch
    buffer installed: {!span}, {!count} and {!observe} from the calling
    domain record into the buffer without touching the sink mutex, and the
    buffer is merged into the global sink under a single lock acquisition
    when [f] returns (also on exception). Parallel DSE worker domains wrap
    their whole work loop in this so per-point telemetry never contends
    on the hot path. [track] (default 0) tags the buffered spans' lane
    identity: the parallel DSE engine passes worker index [+ 1], keeping
    track 0 for the collector/main domain. Counter totals merge exactly;
    histogram reservoirs merge by replaying the kept samples into the
    global reservoir with the dropped remainder added to the true count;
    buffered spans receive fresh global sequence numbers at flush time, so
    they sort after spans already in the sink. The time the flush spends
    waiting for the sink mutex is recorded in the [obs.flush_wait_us]
    histogram — the only self-contention the profiler can add, kept
    measurable on purpose. {!counter_value} and {!snapshot} only see the
    buffer's contents after the flush. Scopes nest (inner flushes restore
    the outer buffer); with the sink disabled this is exactly [f ()]. *)

val fresh_track : unit -> int
(** Allocate a fresh {e request} lane: a track id from a process-wide
    counter starting at 100 (reset by {!enable}), a range the exporters
    render as ["request N"] instead of ["worker N"]. Safe from any
    domain. *)

val with_request_track : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [with_request_track name f] runs [f] under {!with_domain_buffer} on a
    {!fresh_track} lane with one root {!span} [name] covering all of it —
    the per-request wrapper the DSE server puts around each handler, so a
    single Chrome trace shows every request on its own lane. Exactly
    [f ()] when the sink is disabled. *)

(** {1 Export} *)

val snapshot : unit -> snapshot
(** Copy of the sink's current contents; empty when disabled. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile (argument in percent, e.g. [95.0]) over a copy
    of the samples; 0 on empty input. *)

val render_summary : snapshot -> string
(** Human-readable tables: counters, gauges, histogram aggregates
    (true count / kept samples / mean / p50 / p95 / max) and per-name
    span rollups. *)

val to_jsonl : snapshot -> string
(** One JSON object per line: spans in start order (with their [track]),
    then counters, gauges, and histogram aggregates ([count] is the true
    total, [sampled] the kept reservoir size). *)

val to_chrome_trace : snapshot -> string
(** Chrome [trace_event] JSON ("X" complete events for spans, "C" counter
    events), loadable in chrome://tracing and Perfetto. Each span track
    becomes its own [tid] lane with a [thread_name] metadata record
    ("main" for track 0, "worker N" for low tracks, "request N" for
    {!fresh_track} lanes); counters and gauges render on track 0. *)

val summary_of_jsonl : string -> (string, string) result
(** Re-render the {!render_summary} tables from a previously exported
    {!to_jsonl} event log (e.g. recorded by [dhdl dse --jsonl] on a CI
    box), without re-running the workload. Histogram rows reuse the
    recorded aggregates. [Error msg] names the first malformed line. *)
