(** Telemetry core: hierarchical spans, counters / gauges / histograms, and
    three exporters (summary table, JSONL event log, Chrome [trace_event]
    JSON loadable in chrome://tracing or Perfetto).

    The sink is a process-global ambient singleton so hot paths can be
    instrumented without threading a handle through every signature. It is
    disabled by default: every recording entry point first checks one
    mutable flag and returns immediately, so instrumented code pays no
    allocation and no lock when telemetry is off. When enabled, mutation of
    the sink is serialized by a mutex (safe under domains; span nesting
    depth is tracked globally, so spans from concurrent domains interleave
    their depths but never corrupt the sink). *)

type attrs = (string * string) list

type span = {
  sp_name : string;
  sp_start_us : float;  (** Start, microseconds since [enable]. *)
  sp_dur_us : float;  (** Duration in microseconds. *)
  sp_depth : int;  (** Nesting depth; 0 for root spans. *)
  sp_seq : int;  (** Start-order sequence number (stable sort key). *)
  sp_attrs : attrs;
}

type snapshot = {
  snap_spans : span list;  (** In start order. *)
  snap_counters : (string * int) list;  (** Sorted by name. *)
  snap_gauges : (string * float) list;  (** Sorted by name. *)
  snap_hists : (string * float array) list;
      (** Sorted by name; samples in insertion order. *)
}

(** {1 Lifecycle} *)

val enable : ?clock:(unit -> float) -> unit -> unit
(** Install a fresh live sink (discarding any previous one). [clock]
    defaults to [Unix.gettimeofday]; tests inject a deterministic clock.
    Timestamps are recorded relative to the moment of [enable]. *)

val disable : unit -> unit
(** Drop the sink; instrumented paths return to the no-op fast path. *)

val enabled : unit -> bool

(** {1 Recording} *)

val span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f] and records a completed span (also on
    exception). When disabled this is exactly [f ()]. *)

val span_sampled : every:int -> i:int -> ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Record the span only for every [every]-th index ([i mod every = 0],
    [every > 0]); otherwise just run [f]. For per-point spans in long DSE
    sweeps where tracing every point would swamp the sink. *)

val count : ?by:int -> string -> unit
(** Increment a named counter. [count ~by:0 name] registers the counter at
    zero without incrementing (so reports show it even when never hit). *)

val counter_value : string -> int
(** Current value, 0 when absent or disabled. *)

val gauge : string -> float -> unit
(** Set a named gauge to its latest value. *)

val observe : string -> float -> unit
(** Append a sample to a named histogram (e.g. per-design estimation ms). *)

val tick : ?every:int -> label:string -> total:int -> int -> unit
(** [tick ~label ~total i] prints a progress line to stderr every [every]
    (default 1000) increments while enabled; no-op when disabled. *)

val with_domain_buffer : (unit -> 'a) -> 'a
(** [with_domain_buffer f] runs [f] with a domain-local scratch buffer
    installed: {!span}, {!count} and {!observe} from the calling domain
    record into the buffer without touching the sink mutex, and the buffer
    is merged into the global sink under a single lock acquisition when
    [f] returns (also on exception). Parallel DSE worker domains wrap
    their whole work loop in this so per-point telemetry never contends
    on the hot path. Counter totals and histogram samples merge exactly;
    buffered spans receive fresh global sequence numbers at flush time, so
    they sort after spans already in the sink. {!counter_value} and
    {!snapshot} only see the buffer's contents after the flush. Scopes
    nest (inner flushes restore the outer buffer); with the sink disabled
    this is exactly [f ()]. *)

(** {1 Export} *)

val snapshot : unit -> snapshot
(** Copy of the sink's current contents; empty when disabled. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile (argument in percent, e.g. [95.0]) over a copy
    of the samples; 0 on empty input. *)

val render_summary : snapshot -> string
(** Human-readable tables: counters, gauges, histogram aggregates
    (count / mean / p50 / p95 / max) and per-name span rollups. *)

val to_jsonl : snapshot -> string
(** One JSON object per line: spans in start order, then counters, gauges,
    and histogram aggregates. *)

val to_chrome_trace : snapshot -> string
(** Chrome [trace_event] JSON ("X" complete events for spans, "C" counter
    events), loadable in chrome://tracing and Perfetto. *)
