module Ir = Dhdl_ir.Ir
module Dtype = Dhdl_ir.Dtype
module Op = Dhdl_ir.Op

type t = { skeleton : string; binding : string }

let skeleton t = t.skeleton
let binding t = t.binding
let to_string t = t.skeleton ^ ":" ^ t.binding
let equal a b = String.equal a.skeleton b.skeleton && String.equal a.binding b.binding

let compare a b =
  match String.compare a.skeleton b.skeleton with
  | 0 -> String.compare a.binding b.binding
  | c -> c

(* Serialization discipline: every field of the design lands in exactly one
   of two buffers, with a one-character tag before each record so that
   adjacent fields can never run together and alias a different design
   ("ab"+"c" vs "a"+"bc"). Shape goes to [sk], numbers to [bd]; the
   traversal order is the design's own structure, so equal graphs
   serialize identically without any sorting. *)
let of_design (d : Ir.design) =
  let sk = Buffer.create 512 in
  let bd = Buffer.create 256 in
  let str b s =
    Buffer.add_char b '|';
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let num v =
    Buffer.add_char bd '#';
    Buffer.add_string bd (string_of_int v)
  in
  let nums vs = List.iter num vs in
  let fnum v =
    Buffer.add_char bd '~';
    (* %h is exact for every float, unlike %g's default precision. *)
    Buffer.add_string bd (Printf.sprintf "%h" v)
  in
  let flag b = Buffer.add_char bd (if b then '1' else '0') in
  let mem_kind = function
    | Ir.Offchip -> 'O'
    | Ir.Bram -> 'B'
    | Ir.Reg -> 'R'
    | Ir.Queue -> 'Q'
  in
  let mem (m : Ir.mem) =
    Buffer.add_char sk 'm';
    Buffer.add_char sk (mem_kind m.Ir.mem_kind);
    str sk m.Ir.mem_name;
    str sk (Dtype.to_string m.Ir.mem_ty);
    Buffer.add_string sk (string_of_int (List.length m.Ir.mem_dims));
    nums m.Ir.mem_dims;
    num m.Ir.mem_banks;
    flag m.Ir.mem_double
  in
  let operand = function
    | Ir.Const f ->
      Buffer.add_char sk 'c';
      fnum f
    | Ir.Iter s ->
      Buffer.add_char sk 'i';
      str sk s
    | Ir.Value v ->
      Buffer.add_char sk 'v';
      Buffer.add_string sk (string_of_int v)
  in
  let operands args = List.iter operand args in
  let stmt = function
    | Ir.Sop { dst; op; args; ty } ->
      Buffer.add_string sk "Xop";
      Buffer.add_string sk (string_of_int dst);
      str sk (Op.name op);
      str sk (Dtype.to_string ty);
      operands args
    | Ir.Sload { dst; mem = m; addr; ty } ->
      Buffer.add_string sk "Xld";
      Buffer.add_string sk (string_of_int dst);
      str sk m.Ir.mem_name;
      str sk (Dtype.to_string ty);
      operands addr
    | Ir.Sstore { mem = m; addr; data } ->
      Buffer.add_string sk "Xst";
      str sk m.Ir.mem_name;
      operands addr;
      operand data
    | Ir.Sread_reg { dst; reg } ->
      Buffer.add_string sk "Xrr";
      Buffer.add_string sk (string_of_int dst);
      str sk reg.Ir.mem_name
    | Ir.Swrite_reg { reg; data } ->
      Buffer.add_string sk "Xwr";
      str sk reg.Ir.mem_name;
      operand data
    | Ir.Spush { queue; data } ->
      Buffer.add_string sk "Xqp";
      str sk queue.Ir.mem_name;
      operand data
    | Ir.Spop { dst; queue } ->
      Buffer.add_string sk "Xqo";
      Buffer.add_string sk (string_of_int dst);
      str sk queue.Ir.mem_name
  in
  let counter (c : Ir.counter) =
    Buffer.add_char sk 'k';
    str sk c.Ir.ctr_name;
    num c.Ir.ctr_start;
    num c.Ir.ctr_stop;
    num c.Ir.ctr_step
  in
  let loop (lp : Ir.loop_info) =
    str sk lp.Ir.lp_label;
    Buffer.add_char sk (match lp.Ir.lp_pattern with Ir.Map_pattern -> 'M' | Ir.Reduce_pattern -> 'R');
    Buffer.add_string sk (string_of_int (List.length lp.Ir.lp_counters));
    List.iter counter lp.Ir.lp_counters;
    num lp.Ir.lp_par
  in
  let rec ctrl = function
    | Ir.Pipe { loop = lp; body; reduce } ->
      Buffer.add_char sk 'P';
      loop lp;
      List.iter stmt body;
      (match reduce with
      | None -> Buffer.add_char sk '.'
      | Some r ->
        Buffer.add_char sk 'r';
        str sk (Op.name r.Ir.sr_op);
        str sk r.Ir.sr_out.Ir.mem_name;
        operand r.Ir.sr_value)
    | Ir.Loop { loop = lp; pipelined; stages; reduce } ->
      Buffer.add_char sk (if pipelined then 'L' else 'S');
      loop lp;
      Buffer.add_string sk (string_of_int (List.length stages));
      List.iter ctrl stages;
      (match reduce with
      | None -> Buffer.add_char sk '.'
      | Some r ->
        Buffer.add_char sk 'r';
        str sk (Op.name r.Ir.mr_op);
        str sk r.Ir.mr_src.Ir.mem_name;
        str sk r.Ir.mr_dst.Ir.mem_name)
    | Ir.Parallel { par_label; stages } ->
      Buffer.add_char sk 'F';
      str sk par_label;
      Buffer.add_string sk (string_of_int (List.length stages));
      List.iter ctrl stages
    | Ir.Tile_load { src; dst; offsets; tile; par } ->
      Buffer.add_string sk "TL";
      str sk src.Ir.mem_name;
      str sk dst.Ir.mem_name;
      operands offsets;
      Buffer.add_string sk (string_of_int (List.length tile));
      nums tile;
      num par
    | Ir.Tile_store { dst; src; offsets; tile; par } ->
      Buffer.add_string sk "TS";
      str sk dst.Ir.mem_name;
      str sk src.Ir.mem_name;
      operands offsets;
      Buffer.add_string sk (string_of_int (List.length tile));
      nums tile;
      num par
  in
  str sk d.Ir.d_name;
  Buffer.add_string sk (string_of_int (List.length d.Ir.d_mems));
  List.iter mem d.Ir.d_mems;
  ctrl d.Ir.d_top;
  Buffer.add_string sk (string_of_int (List.length d.Ir.d_params));
  List.iter
    (fun (k, v) ->
      str sk k;
      num v)
    d.Ir.d_params;
  {
    skeleton = Digest.to_hex (Digest.string (Buffer.contents sk));
    binding = Digest.to_hex (Digest.string (Buffer.contents bd));
  }

let skeleton_hash d = (of_design d).skeleton
