module Target = Dhdl_device.Target
module R = Dhdl_device.Resources
module Mlp = Dhdl_ml.Mlp
module Scaler = Dhdl_ml.Scaler
module Linreg = Dhdl_ml.Linreg
module Rng = Dhdl_util.Rng
module Toolchain = Dhdl_synth.Toolchain
module Obs = Dhdl_obs.Obs

(* Each P&R factor is predicted by a small bagged ensemble of identical
   11-6-1 networks trained from different initializations; averaging damps
   the initialization variance of such tiny models. *)
type ensemble = Mlp.t list

type t = {
  scaler : Scaler.t;
  route_net : ensemble;
  dup_regs_net : ensemble;
  unavail_net : ensemble;
  dup_brams_model : Linreg.t;
  mse_route : float;
  mse_regs : float;
  mse_unavail : float;
  n_samples : int;
}

let ensemble_size = 3

let ensemble_predict nets feats =
  List.fold_left (fun acc net -> acc +. Mlp.predict1 net feats) 0.0 nets
  /. float_of_int (List.length nets)

type corrections = {
  routing_luts : int;
  duplicated_regs : int;
  unavailable_luts : int;
  duplicated_brams : int;
}

(* Networks learn effect-to-base ratios rather than absolute counts: the
   ratios live in a narrow range the sigmoid hidden layer handles well. *)
let ratio num den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let train ?(seed = 1234) ?(samples = 200) ?(epochs = 400) char dev =
  Obs.count ~by:samples "train.corpus_designs";
  let designs = Obs.span "train.corpus" (fun () -> Design_gen.corpus ~seed samples) in
  let rows =
    Obs.span "train.ground_truth" @@ fun () ->
    List.map
      (fun d ->
        let raw = Area_model.raw_estimate char dev d in
        let rpt = Toolchain.synthesize ~dev d in
        (Area_model.features dev raw, raw, rpt))
      designs
  in
  let scaler = Scaler.fit (List.map (fun (f, _, _) -> f) rows) in
  let make_samples target =
    List.map (fun (f, raw, rpt) -> (Scaler.transform scaler f, [| target raw rpt |])) rows
  in
  let route_samples =
    make_samples (fun raw rpt ->
        ratio rpt.Dhdl_synth.Report.luts_routing (R.luts raw.Area_model.resources))
  in
  let regs_samples =
    make_samples (fun raw rpt ->
        ratio rpt.Dhdl_synth.Report.regs_duplicated raw.Area_model.resources.R.regs)
  in
  let unavail_samples =
    make_samples (fun raw rpt ->
        ratio rpt.Dhdl_synth.Report.luts_unavailable (R.luts raw.Area_model.resources))
  in
  let train_ensemble i samples =
    Obs.span "train.ensemble" ~attrs:[ ("target", string_of_int i) ] @@ fun () ->
    let nets =
      List.init ensemble_size (fun j ->
          Mlp.create
            ~rng:(Rng.create (seed + (31 * i) + (101 * j)))
            ~layer_sizes:[ Area_model.feature_count; 6; 1 ]
            ())
    in
    let mses = List.map (fun net -> Mlp.train_rprop ~epochs net samples) nets in
    (nets, Dhdl_util.Stats.mean mses)
  in
  let route_net, mse_route = train_ensemble 1 route_samples in
  let dup_regs_net, mse_regs = train_ensemble 2 regs_samples in
  let unavail_net, mse_unavail = train_ensemble 3 unavail_samples in
  (* BRAM duplication: a linear function of routing LUTs (Section IV.B.2),
     fitted in ratio space (duplicated fraction vs routing fraction) so the
     fit transfers across design sizes. *)
  let dup_brams_model =
    Linreg.fit
      (List.filter_map
         (fun (_, raw, rpt) ->
           let brams = raw.Area_model.resources.R.brams in
           if brams = 0 then None
           else
             Some
               ( [| ratio rpt.Dhdl_synth.Report.luts_routing (R.luts raw.Area_model.resources) |],
                 ratio rpt.Dhdl_synth.Report.brams_duplicated brams ))
         rows)
  in
  {
    scaler;
    route_net;
    dup_regs_net;
    unavail_net;
    dup_brams_model;
    mse_route;
    mse_regs;
    mse_unavail;
    n_samples = samples;
  }

let clamp_ratio r = Float.max 0.0 (Float.min 0.5 r)

let correct t (raw : Area_model.raw) =
  let feats = Scaler.transform t.scaler (Area_model.features Target.stratix_v raw) in
  let base_luts = R.luts raw.Area_model.resources in
  let base_regs = raw.Area_model.resources.R.regs in
  let route_ratio = clamp_ratio (ensemble_predict t.route_net feats) in
  let regs_ratio = clamp_ratio (ensemble_predict t.dup_regs_net feats) in
  let unavail_ratio = clamp_ratio (ensemble_predict t.unavail_net feats) in
  let routing_luts = int_of_float (route_ratio *. float_of_int base_luts) in
  let dup_bram_ratio = Float.max 0.0 (Linreg.predict t.dup_brams_model [| route_ratio |]) in
  let duplicated_brams =
    int_of_float (dup_bram_ratio *. float_of_int raw.Area_model.resources.R.brams)
  in
  {
    routing_luts;
    duplicated_regs = int_of_float (regs_ratio *. float_of_int base_regs);
    unavailable_luts = int_of_float (unavail_ratio *. float_of_int base_luts);
    duplicated_brams;
  }

let training_mse t = (t.mse_route, t.mse_regs, t.mse_unavail)
let samples_used t = t.n_samples
