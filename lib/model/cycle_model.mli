(** Closed-form cycle-count estimation (Section IV.B.1).

    A recursive pass over the hierarchical IR: Pipe cycles come from the
    body's critical path (depth-first search with primitive propagation
    delays) plus one initiation interval per vectorized iteration; the total
    for a MetaPipe with N iterations is
    [(N-1) * max(cycles(n)) + sum(cycles(n))] over its stage nodes;
    Sequential multiplies by the iteration count; off-chip transfers are
    modeled from command count and length against the board's achievable
    bandwidth with a whole-design contention factor. Unlike the performance
    simulator, the model does not see burst-boundary rounding or per-stream
    efficiency jitter — the sources of its ~6% average error. *)

module Target = Dhdl_device.Target

val pipe_ii : Dhdl_ir.Ir.ctrl -> int
(** The initiation interval charged per vectorized Pipe iteration; 0 for
    non-Pipe controllers. An alias for {!Dhdl_absint.Dependence.ii} — the
    performance simulator routes through the same function, keeping the
    estimator and the simulator consistent by construction. *)

val transfer_estimate :
  Target.board ->
  contention:int ->
  offchip:Dhdl_ir.Ir.mem ->
  ty:Dhdl_ir.Dtype.t ->
  tile:int list ->
  float
(** Cycles for one tile transfer against [offchip]. Commands fetch
    contiguous rows: innermost tile dimensions coalesce into one run only
    while they cover the full off-chip extent; the first ragged (partial)
    dimension stops the run. *)

val estimate : ?dev:Target.t -> ?board:Target.board -> Dhdl_ir.Ir.design -> float
(** Estimated fabric cycles for one execution of the design. *)

val estimate_seconds : ?dev:Target.t -> ?board:Target.board -> Dhdl_ir.Ir.design -> float

val ctrl_estimate :
  ?board:Target.board -> design:Dhdl_ir.Ir.design -> Dhdl_ir.Ir.ctrl -> float
(** Estimate for one controller subtree (contention from the whole design). *)
