module Target = Dhdl_device.Target
module R = Dhdl_device.Resources
module Obs = Dhdl_obs.Obs
module Faults = Dhdl_util.Faults

let log_src = Logs.Src.create "dhdl.estimator" ~doc:"DHDL estimator setup and queries"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  dev : Target.t;
  brd : Target.board;
  char : Characterization.t;
  nn : Nn_correction.t;
}

type area = {
  alms : int;
  luts : int;
  regs : int;
  dsps : int;
  brams : int;
  routing_luts : int;
  unavailable_luts : int;
  duplicated_regs : int;
  duplicated_brams : int;
}

type estimate = { area : area; cycles : float; seconds : float; raw : Area_model.raw }

let create ?(dev = Target.stratix_v) ?(board = Target.max4_maia) ?(seed = 1234)
    ?(train_samples = 200) ?epochs () =
  Obs.span "setup" ~attrs:[ ("device", dev.Target.dev_name) ] @@ fun () ->
  Log.info (fun m -> m "characterizing templates for %s" dev.Target.dev_name);
  let char = Obs.span "setup.characterize" (fun () -> Characterization.default ~dev ()) in
  Log.info (fun m ->
      m "characterization used %d toolchain runs" char.Characterization.microdesigns_synthesized);
  Log.info (fun m -> m "training P&R correction networks on %d samples (seed %d)" train_samples seed);
  let nn =
    Obs.span "setup.train_nn" (fun () -> Nn_correction.train ~seed ~samples:train_samples ?epochs char dev)
  in
  let r, g, u = Nn_correction.training_mse nn in
  Log.info (fun m -> m "training MSE: route %.2e, dup-regs %.2e, unavailable %.2e" r g u);
  { dev; brd = board; char; nn }

let of_parts ?(dev = Target.stratix_v) ?(board = Target.max4_maia) char nn =
  { dev; brd = board; char; nn }

(* Final assembly (Section IV.B.2): add the NN-estimated corrections to the
   raw counts, pack the characterized ~80% of packable LUTs pairwise
   (Section IV.A measured the toolchain packing "about 80% of the functions
   in each design in pairs"), and let each compute unit absorb two registers
   on average. *)
let pack_fraction = 0.80

let assemble dev raw (c : Nn_correction.corrections) =
  let res = raw.Area_model.resources in
  let packable = res.R.lut_packable + c.Nn_correction.routing_luts in
  let unpackable = res.R.lut_unpackable in
  let luts = packable + unpackable + c.Nn_correction.unavailable_luts in
  let packed = pack_fraction *. float_of_int packable in
  let compute_units =
    float_of_int unpackable
    +. (float_of_int packable -. packed)
    +. (packed /. 2.0)
    +. float_of_int c.Nn_correction.unavailable_luts
  in
  let regs = res.R.regs + c.Nn_correction.duplicated_regs in
  let leftover = Float.max 0.0 (float_of_int regs -. (2.0 *. compute_units)) in
  let alms =
    int_of_float (ceil (compute_units +. (leftover /. float_of_int dev.Target.regs_per_alm)))
  in
  {
    alms;
    luts;
    regs;
    dsps = res.R.dsps;
    brams = res.R.brams + c.Nn_correction.duplicated_brams;
    routing_luts = c.Nn_correction.routing_luts;
    unavailable_luts = c.Nn_correction.unavailable_luts;
    duplicated_regs = c.Nn_correction.duplicated_regs;
    duplicated_brams = c.Nn_correction.duplicated_brams;
  }

(* Graceful degradation: a correction network whose prediction comes back
   negative (or a poisoned assembly) must not leak a nonsense area into a
   75,000-point sweep. When the NN-corrected numbers fail validation the
   point falls back to the raw analytical model (zero corrections) and the
   [estimator.nn_fallback] counter records the downgrade. The
   [estimator.nn_correction] fault site lets tests force the poisoned
   path deterministically. *)
let no_corrections =
  {
    Nn_correction.routing_luts = 0;
    duplicated_regs = 0;
    unavailable_luts = 0;
    duplicated_brams = 0;
  }

let corrections_sane (c : Nn_correction.corrections) =
  c.Nn_correction.routing_luts >= 0
  && c.Nn_correction.duplicated_regs >= 0
  && c.Nn_correction.unavailable_luts >= 0
  && c.Nn_correction.duplicated_brams >= 0

let area_sane a =
  a.alms >= 0 && a.luts >= 0 && a.regs >= 0 && a.dsps >= 0 && a.brams >= 0

let corrected_area t raw =
  let corrections =
    if Faults.fires "estimator.nn_correction" then
      { no_corrections with Nn_correction.routing_luts = min_int }
    else Nn_correction.correct t.nn raw
  in
  if corrections_sane corrections then
    let area = assemble t.dev raw corrections in
    if area_sane area then area
    else begin
      Obs.count "estimator.nn_fallback";
      assemble t.dev raw no_corrections
    end
  else begin
    Obs.count "estimator.nn_fallback";
    assemble t.dev raw no_corrections
  end

(* The untraced path stays free of telemetry closures so a disabled sink
   adds nothing to the paper's headline ms-per-design metric; the traced
   path breaks the estimate into its three per-phase spans (area model, NN
   correction, cycle model). *)
let estimate t design =
  if not (Obs.enabled ()) then
    let raw = Area_model.raw_estimate t.char t.dev design in
    let area = corrected_area t raw in
    let cycles = Cycle_model.estimate ~board:t.brd design in
    { area; cycles; seconds = cycles /. (t.brd.Target.fabric_mhz *. 1e6); raw }
  else
    Obs.span "estimate" ~attrs:[ ("design", design.Dhdl_ir.Ir.d_name) ] @@ fun () ->
    let raw = Obs.span "estimate.area_model" (fun () -> Area_model.raw_estimate t.char t.dev design) in
    let area = Obs.span "estimate.nn_correction" (fun () -> corrected_area t raw) in
    let cycles = Obs.span "estimate.cycle_model" (fun () -> Cycle_model.estimate ~board:t.brd design) in
    Obs.count "estimator.estimates";
    { area; cycles; seconds = cycles /. (t.brd.Target.fabric_mhz *. 1e6); raw }

let estimate_area t design = (estimate t design).area
let estimate_cycles t design = Cycle_model.estimate ~board:t.brd design

let estimate_area_uncorrected t design =
  let raw = Area_model.raw_estimate t.char t.dev design in
  assemble t.dev raw no_corrections

let fits t a = a.alms <= t.dev.Target.alms && a.dsps <= t.dev.Target.dsps && a.brams <= t.dev.Target.brams

let utilization t a =
  let pct used avail = 100.0 *. float_of_int used /. float_of_int avail in
  (pct a.alms t.dev.Target.alms, pct a.dsps t.dev.Target.dsps, pct a.brams t.dev.Target.brams)

let device t = t.dev
let board t = t.brd
let characterization t = t.char
let corrections t = t.nn

let timed_estimate t design =
  let start = Unix.gettimeofday () in
  let e = estimate t design in
  (e, Unix.gettimeofday () -. start)

(* Persistence: marshal the whole estimator with a magic tag so stale files
   from other builds are rejected instead of misbehaving. *)
let magic = "dhdl-estimator-v1:" ^ string_of_int (Hashtbl.hash Sys.ocaml_version)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      Marshal.to_channel oc t [ Marshal.Closures ])

let load path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let line = input_line ic in
          if line <> magic then None else Some (Marshal.from_channel ic : t)
        with _ -> None)
