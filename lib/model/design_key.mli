(** Canonical identity for an elaborated DHDL design.

    A key names a design by content, not by provenance: two designs with
    the same graph get the same key no matter which app generator, sweep,
    request or process produced them. That property is what lets the
    evaluation layer memoize analysis verdicts and estimates across
    sweeps, resumed sessions and server requests ([Eval] in lib/dse), and
    what gives a surrogate model a stable per-design identity.

    The key is split into two digests:

    - the {b skeleton} covers everything about the graph's {e shape} —
      controller tree, statement opcodes, operand kinds, memory names /
      kinds / element types / dimensionality, counter and loop labels,
      patterns and pipelining — but none of the numeric values a design
      point binds. Every point of one app's parameter sweep shares a
      skeleton.
    - the {b binding} covers exactly those numbers: parameter values,
      memory dimensions, inferred banking and double-buffering, counter
      bounds and strides, parallelization factors, tile sizes and
      offsets, and literal constants.

    Unlike [Ir.design_hash] (a non-cryptographic [Hashtbl.hash] of a
    partial serialization, kept for cheap fingerprinting), a key digests
    the {e full} canonical serialization — including tile offsets, memory
    kinds, inferred banks/double flags, counter names and loop patterns —
    through MD5, so collisions are not a practical concern for cache
    keying. Keys are only meaningful for elaborated designs: banking and
    double-buffering inference ([Builder] / [Transform]) must already
    have run, which is true of every design an app generator returns. *)

type t = {
  skeleton : string;  (** hex digest of the parameter-free graph shape *)
  binding : string;  (** hex digest of the numeric parameter binding *)
}

val of_design : Dhdl_ir.Ir.design -> t

val skeleton : t -> string
val binding : t -> string

(** The skeleton digest alone — the family identity shared by every point
    of one app's parameter sweep. This is the key the symbolic legality
    layer ([Symbolic] in lib/absint, [Symgate] in lib/dse) derives and
    routes constraint systems by. *)
val skeleton_hash : Dhdl_ir.Ir.design -> string

(** ["<skeleton>:<binding>"] — the full key, suitable as a cache key or a
    stable external identifier for one design instance. *)
val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
