module Ir = Dhdl_ir.Ir
module Dtype = Dhdl_ir.Dtype
module Traverse = Dhdl_ir.Traverse
module Target = Dhdl_device.Target
module Primitives = Dhdl_device.Primitives
module Intmath = Dhdl_util.Intmath

let word_bytes ty = max 1 (Dtype.bits ty / 8)

(* The proved initiation interval from the loop-carried dependence
   analysis. The performance simulator calls the same function, so the
   estimator and the simulator agree bit-for-bit by construction. *)
let pipe_ii = Dhdl_absint.Dependence.ii

(* Contention: the model assumes concurrently active off-chip streams split
   the channel evenly, approximating concurrency by the stream count of the
   innermost parallel/pipelined region (a static, structure-only view). *)

(* A tile dimension coalesces with the next-inner one into a single
   contiguous run only when that inner dimension covers the full off-chip
   extent; the first mismatch (a ragged, partial-extent dimension) stops
   the run. *)
let rec coalesced_row tile dims =
  match (tile, dims) with
  | [], _ | _, [] -> 1
  | t :: ts, d :: ds -> if t = d then t * coalesced_row ts ds else t

let transfer_estimate board ~contention ~(offchip : Ir.mem) ~ty ~tile =
  let words = Intmath.prod tile in
  let wb = word_bytes ty in
  let row_words =
    match tile with [] -> words | _ -> coalesced_row (List.rev tile) (List.rev offchip.Ir.mem_dims)
  in
  let row_words = max 1 (min words row_words) in
  let ncmds = Intmath.ceil_div words row_words in
  let bytes = float_of_int (words * wb) in
  let bw = Target.bytes_per_cycle board /. float_of_int (max 1 contention) in
  float_of_int board.Target.dram_latency_cycles +. (4.0 *. float_of_int ncmds) +. (bytes /. bw)

let mem_reduce_estimate (loop : Ir.loop_info) (r : Ir.mem_reduce) =
  let words = Ir.mem_words r.Ir.mr_dst in
  let lanes =
    max (max 1 loop.Ir.lp_par)
      (max (max 1 r.Ir.mr_src.Ir.mem_banks) (max 1 r.Ir.mr_dst.Ir.mem_banks))
  in
  let lat = Primitives.latency r.Ir.mr_op r.Ir.mr_dst.Ir.mem_ty in
  float_of_int (Intmath.ceil_div words lanes + lat + 6)

let contains_transfer ctrl =
  Traverse.fold_ctrl
    (fun acc c -> acc || match c with Ir.Tile_load _ | Ir.Tile_store _ -> true | _ -> false)
    false ctrl

let rec estimate_ctrl board ~contention ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let trip_vec = Ir.loop_trip_vectorized loop in
    let depth = max 1 (Area_model.critical_path body) in
    let depth =
      match reduce with
      | None -> depth
      | Some r ->
        let lat = Primitives.latency r.Ir.sr_op r.Ir.sr_out.Ir.mem_ty in
        depth + (Intmath.ilog2_ceil (max 2 loop.Ir.lp_par) * lat) + lat
    in
    float_of_int (depth + ((trip_vec - 1) * pipe_ii ctrl) + 4)
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    let trip_vec = Ir.loop_trip_vectorized loop in
    let inner_contention = contention * max 1 loop.Ir.lp_par in
    let transfer_stages = List.length (List.filter contains_transfer stages) in
    let c = if pipelined then inner_contention * max 1 transfer_stages else inner_contention in
    let costs = List.map (estimate_ctrl board ~contention:c) stages in
    let costs = costs @ (match reduce with None -> [] | Some r -> [ mem_reduce_estimate loop r ]) in
    if pipelined then
      (* The paper's MetaPipe formula: (N-1) * max(stage) + sum(stages). *)
      let slowest = List.fold_left max 0.0 costs in
      let total = List.fold_left ( +. ) 0.0 costs in
      (float_of_int (trip_vec - 1) *. slowest) +. total
    else
      let per_iter = List.fold_left ( +. ) 0.0 costs in
      float_of_int trip_vec *. per_iter
  | Ir.Parallel { stages; _ } ->
    let transfer_stages = List.length (List.filter contains_transfer stages) in
    let c = contention * max 1 transfer_stages in
    List.fold_left (fun acc st -> Float.max acc (estimate_ctrl board ~contention:c st)) 0.0 stages
  | Ir.Tile_load { src; dst; tile; _ } ->
    transfer_estimate board ~contention ~offchip:src ~ty:dst.Ir.mem_ty ~tile
  | Ir.Tile_store { dst; src; tile; _ } ->
    transfer_estimate board ~contention ~offchip:dst ~ty:src.Ir.mem_ty ~tile

let estimate ?dev:_ ?(board = Target.max4_maia) (d : Ir.design) =
  estimate_ctrl board ~contention:1 d.Ir.d_top

let estimate_seconds ?dev ?(board = Target.max4_maia) d =
  ignore dev;
  estimate ~board d /. (board.Target.fabric_mhz *. 1e6)

let ctrl_estimate ?(board = Target.max4_maia) ~design:_ ctrl =
  estimate_ctrl board ~contention:1 ctrl
