module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Linreg = Dhdl_ml.Linreg
module Target = Dhdl_device.Target
module R = Dhdl_device.Resources
module Primitives = Dhdl_device.Primitives
module Toolchain = Dhdl_synth.Toolchain
module Obs = Dhdl_obs.Obs

type t = {
  pipe_overhead : Linreg.t;
  pipe_overhead_regs : Linreg.t;
  seq_overhead : Linreg.t;
  seq_overhead_regs : Linreg.t;
  metapipe_overhead : Linreg.t;
  metapipe_overhead_regs : Linreg.t;
  parallel_overhead : Linreg.t;
  parallel_overhead_regs : Linreg.t;
  tile_luts : Linreg.t;
  tile_regs : Linreg.t;
  tile_brams : Linreg.t;
  microdesigns_synthesized : int;
}

let runs = ref 0

let raw_of dev design =
  incr runs;
  Obs.count "characterize.toolchain_runs";
  (Toolchain.netlist ~dev design).Dhdl_synth.Netlist.raw

(* One trivial integer pipe: the unit of measure for controller overheads. *)
let micro_pipe ?(nctr = 1) ?(par = 1) label =
  let counters = List.init nctr (fun i -> (Printf.sprintf "i%d" i, 0, 16, 1)) in
  B.pipe ~label ~counters ~par (fun pb ->
      let x = B.op pb ~ty:Dtype.int32 Op.Add [ B.iter "i0"; B.const 1.0 ] in
      ignore x)

let micro_pipe_design ~nctr ~par =
  let b = B.create (Printf.sprintf "char_pipe_%d_%d" nctr par) in
  B.finish b ~top:(micro_pipe ~nctr ~par "p0")

let body_compute_luts ~par =
  (* What the body itself costs, straight from the primitive library. *)
  let r = R.scale par (Primitives.area Op.Add Dtype.int32) in
  (float_of_int (R.luts r), float_of_int r.R.regs)

let characterize ?(dev = Target.stratix_v) () =
  Obs.span "characterize" ~attrs:[ ("device", dev.Target.dev_name) ] @@ fun () ->
  runs := 0;
  (* --- Pipe: overhead(counters, par) --------------------------------- *)
  let pipe_samples =
    Obs.span "characterize.pipes" @@ fun () ->
    List.concat_map
      (fun nctr ->
        List.map
          (fun par ->
            let raw = raw_of dev (micro_pipe_design ~nctr ~par) in
            let body_luts, body_regs = body_compute_luts ~par in
            let feats = [| float_of_int nctr; float_of_int par |] in
            ( (feats, float_of_int (R.luts raw) -. body_luts),
              (feats, float_of_int raw.R.regs -. body_regs) ))
          [ 1; 2; 4 ])
      [ 1; 2; 3 ]
  in
  let pipe_overhead = Linreg.fit (List.map fst pipe_samples) in
  let pipe_overhead_regs = Linreg.fit (List.map snd pipe_samples) in
  let est_pipe_luts ~nctr ~par =
    let body_luts, _ = body_compute_luts ~par in
    body_luts +. Linreg.predict pipe_overhead [| float_of_int nctr; float_of_int par |]
  in
  let est_pipe_regs ~nctr ~par =
    let _, body_regs = body_compute_luts ~par in
    body_regs +. Linreg.predict pipe_overhead_regs [| float_of_int nctr; float_of_int par |]
  in
  (* --- Loop controllers: overhead(stages, counters) ------------------- *)
  let loop_samples ~pipelined =
    List.concat_map
      (fun nstages ->
        List.map
          (fun nctr ->
            let b =
              B.create (Printf.sprintf "char_loop_%b_%d_%d" pipelined nstages nctr)
            in
            let stages =
              List.init nstages (fun i -> micro_pipe (Printf.sprintf "s%d" i))
            in
            let counters = List.init nctr (fun i -> (Printf.sprintf "o%d" i, 0, 8, 1)) in
            let top = B.metapipe ~label:"L" ~counters ~pipelined stages in
            let raw = raw_of dev (B.finish b ~top) in
            let stage_luts = float_of_int nstages *. est_pipe_luts ~nctr:1 ~par:1 in
            let stage_regs = float_of_int nstages *. est_pipe_regs ~nctr:1 ~par:1 in
            let feats = [| float_of_int nstages; float_of_int nctr |] in
            ( (feats, float_of_int (R.luts raw) -. stage_luts),
              (feats, float_of_int raw.R.regs -. stage_regs) ))
          [ 0; 1; 2 ])
      [ 1; 2; 4 ]
  in
  let seq_s = Obs.span "characterize.sequentials" (fun () -> loop_samples ~pipelined:false) in
  let meta_s = Obs.span "characterize.metapipes" (fun () -> loop_samples ~pipelined:true) in
  let seq_overhead = Linreg.fit (List.map fst seq_s) in
  let seq_overhead_regs = Linreg.fit (List.map snd seq_s) in
  let metapipe_overhead = Linreg.fit (List.map fst meta_s) in
  let metapipe_overhead_regs = Linreg.fit (List.map snd meta_s) in
  (* --- Parallel ------------------------------------------------------- *)
  let par_samples =
    Obs.span "characterize.parallels" @@ fun () ->
    List.map
      (fun nstages ->
        let b = B.create (Printf.sprintf "char_par_%d" nstages) in
        let stages = List.init nstages (fun i -> micro_pipe (Printf.sprintf "s%d" i)) in
        let raw = raw_of dev (B.finish b ~top:(B.parallel ~label:"F" stages)) in
        let stage_luts = float_of_int nstages *. est_pipe_luts ~nctr:1 ~par:1 in
        let stage_regs = float_of_int nstages *. est_pipe_regs ~nctr:1 ~par:1 in
        let feats = [| float_of_int nstages |] in
        ( (feats, float_of_int (R.luts raw) -. stage_luts),
          (feats, float_of_int raw.R.regs -. stage_regs) ))
      [ 1; 2; 3; 4 ]
  in
  let parallel_overhead = Linreg.fit (List.map fst par_samples) in
  let parallel_overhead_regs = Linreg.fit (List.map snd par_samples) in
  (* --- Tile transfers: cost(par, word bits, rank) --------------------- *)
  let tile_samples =
    Obs.span "characterize.tiles" @@ fun () ->
    List.concat_map
      (fun (ty, dims, tile) ->
        List.map
          (fun par ->
            let b = B.create (Printf.sprintf "char_tile_%d_%d" (Dtype.bits ty) par) in
            let src = B.offchip b "src" ty dims in
            let dst = B.bram b "buf" ty tile in
            let offsets = List.map (fun _ -> B.const 0.0) dims in
            let top =
              B.sequential_block ~label:"T" [ B.tile_load ~src ~dst ~offsets ~par () ]
            in
            let design = B.finish b ~top in
            let raw = raw_of dev design in
            (* Subtract the parts the estimator models analytically: the
               sequential wrapper and the buffer's banks/blocks. *)
            let buf = Ir.find_mem design "buf" in
            let banks = max 1 buf.Ir.mem_banks in
            let bank_luts = float_of_int (10 * banks) in
            let blocks = Dhdl_synth.Netlist.bram_blocks_of_mem dev buf in
            let wrapper_luts = Linreg.predict seq_overhead [| 1.0; 0.0 |] in
            let wrapper_regs = Linreg.predict seq_overhead_regs [| 1.0; 0.0 |] in
            let feats =
              [| float_of_int par; float_of_int (Dtype.bits ty); float_of_int (List.length dims) |]
            in
            ( (feats, float_of_int (R.luts raw) -. wrapper_luts -. bank_luts),
              ((feats, float_of_int raw.R.regs -. wrapper_regs),
               (feats, float_of_int (raw.R.brams - blocks))) ))
          [ 1; 2; 4; 8 ])
      [
        (Dtype.float32, [ 1024 ], [ 64 ]);
        (Dtype.float32, [ 256; 64 ], [ 16; 64 ]);
        (Dtype.float64, [ 1024 ], [ 64 ]);
      ]
  in
  let tile_luts = Linreg.fit (List.map fst tile_samples) in
  let tile_regs = Linreg.fit (List.map (fun (_, (r, _)) -> r) tile_samples) in
  let tile_brams = Linreg.fit (List.map (fun (_, (_, b)) -> b) tile_samples) in
  {
    pipe_overhead;
    pipe_overhead_regs;
    seq_overhead;
    seq_overhead_regs;
    metapipe_overhead;
    metapipe_overhead_regs;
    parallel_overhead;
    parallel_overhead_regs;
    tile_luts;
    tile_regs;
    tile_brams;
    microdesigns_synthesized = !runs;
  }

let memo : (string, t) Hashtbl.t = Hashtbl.create 4

let default ?(dev = Target.stratix_v) () =
  match Hashtbl.find_opt memo dev.Target.dev_name with
  | Some t -> t
  | None ->
    let t = characterize ~dev () in
    Hashtbl.replace memo dev.Target.dev_name t;
    t
