(** The hybrid estimator: the paper's complete estimation flow.

    Combines the fitted template models ({!Characterization}), the raw
    analytical pass ({!Area_model}), the neural-network place-and-route
    corrections ({!Nn_correction}) and LUT-packing arithmetic into final
    post-P&R-comparable area numbers, plus the closed-form cycle model.

    Build one with {!create} (characterizes and trains once — the
    "only once per device and toolchain" setup cost), then call
    {!estimate} per design point; each call is a few graph walks and some
    arithmetic, which is what makes design space exploration feasible. *)

module Target = Dhdl_device.Target

type t

type area = {
  alms : int;
  luts : int;
  regs : int;
  dsps : int;
  brams : int;
  routing_luts : int;
  unavailable_luts : int;
  duplicated_regs : int;
  duplicated_brams : int;
}

type estimate = {
  area : area;
  cycles : float;
  seconds : float;
  raw : Area_model.raw;  (** The pre-correction analytical pass. *)
}

val create :
  ?dev:Target.t -> ?board:Target.board -> ?seed:int -> ?train_samples:int -> ?epochs:int -> unit -> t
(** Characterize templates and train the correction networks. *)

val of_parts : ?dev:Target.t -> ?board:Target.board -> Characterization.t -> Nn_correction.t -> t

val estimate : t -> Dhdl_ir.Ir.design -> estimate
(** Estimate one design point. Degrades gracefully: when the NN correction
    yields an insane area (negative corrections or a negative assembled
    count), the point falls back to the raw analytical model (zero
    corrections) instead of poisoning the caller, and the
    [estimator.nn_fallback] {!Dhdl_obs.Obs} counter is bumped. The
    {!Dhdl_util.Faults} site [estimator.nn_correction] forces the poisoned
    path for testing. *)

val estimate_area : t -> Dhdl_ir.Ir.design -> area
val estimate_cycles : t -> Dhdl_ir.Ir.design -> float

val estimate_area_uncorrected : t -> Dhdl_ir.Ir.design -> area
(** Raw template counts assembled without the neural-network P&R
    corrections — the ablation baseline showing what the hybrid scheme
    buys (routing, duplication and packing-loss effects are simply
    missing). *)

val fits : t -> area -> bool
(** Whether the estimated design fits the target device. *)

val utilization : t -> area -> float * float * float
(** (ALM, DSP, BRAM) percentages of the device. *)

val device : t -> Target.t
val board : t -> Target.board
val characterization : t -> Characterization.t
val corrections : t -> Nn_correction.t

val timed_estimate : t -> Dhdl_ir.Ir.design -> estimate * float
(** The estimate plus the wall-clock seconds it took — the quantity Table IV
    compares against high-level synthesis. *)

val save : t -> string -> unit
(** Persist a trained estimator (characterization + networks) so the
    once-per-toolchain setup cost is paid once per machine, not per run.
    Uses OCaml marshalling; the file is only valid for the same build. *)

val load : string -> t option
(** Reload a saved estimator; [None] when the file is missing or from a
    different build. *)
