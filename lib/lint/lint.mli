(** Static-analysis (lint) framework for DHDL designs.

    Diagnostics are the shared {!Dhdl_ir.Diag} type also emitted by
    {!Dhdl_ir.Analysis.validate_diags}; lint passes add hazard, race,
    capacity and dead-code checks on top of well-formedness. Each pass is a
    pure [Ir.design -> Diagnostic.t list] function registered in
    {!passes}; {!check} runs the whole registry (plus the validator) and
    returns a sorted, deduplicated report. *)

module Ir = Dhdl_ir.Ir
module Diagnostic = Dhdl_ir.Diag
module Target = Dhdl_device.Target

type pass = {
  code : string;  (** Stable diagnostic code, e.g. ["L001"]. *)
  title : string;  (** Short kebab-case name, e.g. ["parallel-race"]. *)
  doc : string;  (** One-line description of what the pass flags. *)
  run : Ir.design -> Diagnostic.t list;
}

val passes : ?dev:Target.t -> unit -> pass list
(** The registry, in code order (L001–L013). [dev] parameterizes the
    device-fit pass; defaults to {!Target.stratix_v}. L009–L011 are backed
    by the abstract-interpretation framework in {!Dhdl_absint}; L012 and
    L013 by its loop-carried dependence analysis
    ({!Dhdl_absint.Dependence}), which also settles L001's race
    candidates. *)

val proof_codes : string list
(** The codes of the proof-backed passes (L009–L013): every error they emit
    cites a concrete counterexample, so error-level pruning on them alone
    is sound even when the heuristic passes are disabled. *)

val heuristic_codes : string list
(** The complement of {!proof_codes} over the registry: the heuristic
    passes that still run when a caller (the evaluation layer's lint-only
    path, or the symbolic gate's proved-[Legal] shortcut) skips the
    proof-backed re-analysis. *)

val check : ?dev:Target.t -> ?validate:bool -> ?only:string list -> Ir.design -> Diagnostic.t list
(** Run the validator ([validate] defaults to [true]) and every registered
    pass; the result is sorted by severity then code and deduplicated.
    [only] restricts the registry to the passes with the given codes (the
    validator is still controlled by [validate]). *)

val errors : Diagnostic.t list -> Diagnostic.t list
val has_errors : Diagnostic.t list -> bool

val summary : Diagnostic.t list -> string
(** ["N error(s), M warning(s), K info(s)"]. *)

val render_text : design:Ir.design -> Diagnostic.t list -> string
(** Human-readable report: a summary header plus one line per diagnostic
    (["<design>: clean"] when empty). *)

val render_json : design:Ir.design -> Diagnostic.t list -> string
(** Machine-readable report: one JSON object with severity counts and the
    diagnostic array. *)

val exit_code : ?fail_on:Diagnostic.severity -> Diagnostic.t list -> int
(** Process exit code: 2 when errors are present, 1 when the most severe
    diagnostic is at or above [fail_on] (default [Error]) without being an
    error, 0 otherwise. *)
