(* The individual lint passes. Each is a pure function from a design to a
   list of diagnostics; Lint.passes assembles them into the registry. *)

module Ir = Dhdl_ir.Ir
module Diag = Dhdl_ir.Diag
module Analysis = Dhdl_ir.Analysis
module Traverse = Dhdl_ir.Traverse
module Target = Dhdl_device.Target
module Area_model = Dhdl_model.Area_model
module Absint = Dhdl_absint.Absint
module Liveness = Dhdl_absint.Liveness
module Dependence = Dhdl_absint.Dependence

let fold_with_path f init (d : Ir.design) =
  let rec go path acc ctrl =
    let path = path @ [ Ir.ctrl_label ctrl ] in
    let acc = f path ctrl acc in
    List.fold_left (go path) acc (Traverse.children ctrl)
  in
  go [] init d.Ir.d_top

(* L001: concurrent stages of a Parallel run with no ordering between them,
   so any shared memory with at least one writer is a race candidate.
   Queues are the sanctioned cross-stage channel and are exempt. The
   dependence analysis settles each candidate: proved-disjoint accesses
   are dropped, proved overlaps carry a concrete witness index, and
   anything it cannot decide keeps the conservative error. *)
let race_pass (d : Ir.design) = Dependence.race_diags (Dependence.report_cached d)

(* L002: in a MetaPipe, consecutive outer iterations occupy adjacent stages
   simultaneously, so a buffer flowing between stages must be double
   buffered or stage N+1 reads data stage N is overwriting. The crossing
   facts come from the liveness analysis, which cites the exact writer and
   reader stages. *)
let metapipe_pass (d : Ir.design) =
  List.map
    (fun (c : Liveness.crossing) ->
      let m = c.Liveness.cr_mem in
      match c.Liveness.cr_reader with
      | Liveness.Combine ->
        Diag.makef ~path:c.Liveness.cr_loop ~mem:m.Ir.mem_name ~code:"L002" ~severity:Diag.Error
          "reduce source %s feeds the combine stage of a pipelined loop without double buffering"
          m.Ir.mem_name
      | Liveness.Stage _ ->
        Diag.makef ~path:c.Liveness.cr_loop ~mem:m.Ir.mem_name ~code:"L002" ~severity:Diag.Error
          "buffer %s crosses pipelined stages without double buffering" m.Ir.mem_name)
    (Liveness.missing d)

(* L003: an access vector wider than the memory's banking cannot be served
   in one cycle; the paper couples banking to the widest access precisely
   to rule this out. The access facts come from the abstract-interpretation
   report (one per static access, deduplicated per controller). *)
let banking_pass (d : Ir.design) =
  let r = Absint.report_cached d in
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (mi : Absint.mem_info) ->
      let m = mi.Absint.mi_mem in
      let banks = max 1 m.Ir.mem_banks in
      List.filter_map
        (fun (a : Absint.access_info) ->
          let label = match List.rev a.Absint.ai_path with l :: _ -> l | [] -> "" in
          if
            m.Ir.mem_kind = Ir.Bram
            && a.Absint.ai_par > banks
            && not (Hashtbl.mem seen (m.Ir.mem_id, label))
          then begin
            Hashtbl.add seen (m.Ir.mem_id, label) ();
            Some
              (Diag.makef ~path:[ label ] ~mem:m.Ir.mem_name ~code:"L003" ~severity:Diag.Error
                 "access vector width %d exceeds the %d bank(s) of %s" a.Absint.ai_par banks
                 m.Ir.mem_name)
          end
          else None)
        mi.Absint.mi_accesses)
    r.Absint.r_mems

(* L004: dead memories waste BRAM and usually indicate a generator bug.
   Off-chip memories are the design's I/O surface and exempt; registers may
   legitimately hold the final result, so written-never-read only applies
   to BRAMs (queue protocol issues are L007's). *)
let dead_mem_pass (d : Ir.design) =
  let accs = Analysis.accesses d in
  List.filter_map
    (fun m ->
      let mine = List.filter (fun a -> Ir.mem_equal a.Analysis.acc_mem m) accs in
      let read = List.exists (fun a -> not a.Analysis.acc_write) mine in
      match m.Ir.mem_kind with
      | Ir.Offchip -> None
      | _ when mine = [] ->
        Some
          (Diag.makef ~mem:m.Ir.mem_name ~code:"L004" ~severity:Diag.Warning
             "memory %s is declared but never accessed" m.Ir.mem_name)
      | Ir.Bram when not read ->
        Some
          (Diag.makef ~mem:m.Ir.mem_name ~code:"L004" ~severity:Diag.Warning
             "buffer %s is written but never read" m.Ir.mem_name)
      | _ -> None)
    d.Ir.d_mems

(* L005: an Sop/Sload result nobody consumes is dead hardware. Sread_reg
   and Spop are exempt: a pop has the side effect of dequeuing. *)
let dead_value_pass (d : Ir.design) =
  fold_with_path
    (fun path ctrl diags ->
      match ctrl with
      | Ir.Pipe { body; reduce; _ } ->
        let used = Hashtbl.create 16 in
        let use = function Ir.Value v -> Hashtbl.replace used v () | Ir.Const _ | Ir.Iter _ -> () in
        List.iter
          (fun stmt ->
            match stmt with
            | Ir.Sop { args; _ } -> List.iter use args
            | Ir.Sload { addr; _ } -> List.iter use addr
            | Ir.Sstore { addr; data; _ } -> List.iter use (data :: addr)
            | Ir.Swrite_reg { data; _ } -> use data
            | Ir.Spush { data; _ } -> use data
            | Ir.Sread_reg _ | Ir.Spop _ -> ())
          body;
        (match reduce with Some r -> use r.Ir.sr_value | None -> ());
        let dead =
          List.filter_map
            (fun stmt ->
              match stmt with
              | Ir.Sop { dst; _ } when not (Hashtbl.mem used dst) ->
                Some
                  (Diag.makef ~path ~code:"L005" ~severity:Diag.Warning
                     "op result v%d is never consumed" dst)
              | Ir.Sload { dst; mem; _ } when not (Hashtbl.mem used dst) ->
                Some
                  (Diag.makef ~path ~mem:mem.Ir.mem_name ~code:"L005" ~severity:Diag.Warning
                     "value v%d loaded from %s is never consumed" dst mem.Ir.mem_name)
              | _ -> None)
            body
        in
        dead @ diags
      | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> diags)
    [] d

let mem_limit_words = 65_536

(* L006: device fit. The per-memory block count mirrors the area model's
   bram_blocks_estimate times the controller replication factor, so it is a
   lower bound on what the estimator will charge — a design flagged here can
   never fit, which makes error-level pruning in Explore.run sound. *)
let capacity_pass dev (d : Ir.design) =
  let blocks m = Traverse.mem_replication d m * Area_model.bram_blocks_estimate dev m in
  let total = List.fold_left (fun acc m -> acc + blocks m) 0 d.Ir.d_mems in
  let big =
    List.filter_map
      (fun m ->
        if m.Ir.mem_kind <> Ir.Offchip && Ir.mem_words m > mem_limit_words then
          Some
            (Diag.makef ~mem:m.Ir.mem_name ~code:"L006" ~severity:Diag.Warning
               "on-chip memory %s holds %d words; consider tiling below %d" m.Ir.mem_name
               (Ir.mem_words m) mem_limit_words)
        else None)
      d.Ir.d_mems
  in
  let fit =
    if total > dev.Target.brams then
      [
        Diag.makef ~code:"L006" ~severity:Diag.Error
          "on-chip memories need at least %d BRAM blocks; %s has %d" total dev.Target.dev_name
          dev.Target.brams;
      ]
    else if total * 10 > dev.Target.brams * 8 then
      [
        Diag.makef ~code:"L006" ~severity:Diag.Info
          "on-chip memories use %d of %d BRAM blocks (over 80%%) before logic overheads" total
          dev.Target.brams;
      ]
    else []
  in
  fit @ big

(* L007: queue protocol. A popped-never-pushed queue provably returns only
   +infinity; a pushed-never-popped queue is write-only storage; a
   zero-capacity queue can hold nothing. *)
let queue_pass (d : Ir.design) =
  let pushes = Hashtbl.create 4 and pops = Hashtbl.create 4 in
  List.iter
    (fun ctrl ->
      match ctrl with
      | Ir.Pipe { body; _ } ->
        List.iter
          (fun stmt ->
            match stmt with
            | Ir.Spush { queue; _ } -> Hashtbl.replace pushes queue.Ir.mem_id ()
            | Ir.Spop { queue; _ } -> Hashtbl.replace pops queue.Ir.mem_id ()
            | Ir.Sop _ | Ir.Sload _ | Ir.Sstore _ | Ir.Sread_reg _ | Ir.Swrite_reg _ -> ())
          body
      | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ())
    (Traverse.all_ctrls d);
  List.concat_map
    (fun m ->
      if m.Ir.mem_kind <> Ir.Queue then []
      else begin
        let pushed = Hashtbl.mem pushes m.Ir.mem_id in
        let popped = Hashtbl.mem pops m.Ir.mem_id in
        let zero =
          if Ir.mem_words m <= 0 then
            [
              Diag.makef ~mem:m.Ir.mem_name ~code:"L007" ~severity:Diag.Error
                "queue %s has zero capacity" m.Ir.mem_name;
            ]
          else []
        in
        let proto =
          if pushed && not popped then
            [
              Diag.makef ~mem:m.Ir.mem_name ~code:"L007" ~severity:Diag.Warning
                "queue %s is pushed but never popped" m.Ir.mem_name;
            ]
          else if popped && not pushed then
            [
              Diag.makef ~mem:m.Ir.mem_name ~code:"L007" ~severity:Diag.Error
                "queue %s is popped but never pushed (pops only ever return +inf)" m.Ir.mem_name;
            ]
          else []
        in
        zero @ proto
      end)
    d.Ir.d_mems

(* [Ir.counter_trip] clamps degenerate counters (non-positive step, empty
   range) to zero, so the product is already safe. *)
let safe_trip counters = List.fold_left (fun acc c -> acc * Ir.counter_trip c) 1 counters

(* L008: degenerate loops. Zero-trip loops synthesize dead control logic;
   par > trip leaves lanes permanently idle; a non-divisor par wastes lanes
   only in the final vector, worth an info note. *)
let loop_pass (d : Ir.design) =
  fold_with_path
    (fun path ctrl diags ->
      match ctrl with
      | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } ->
        if loop.Ir.lp_counters = [] then diags
        else begin
          let trip = safe_trip loop.Ir.lp_counters in
          let par = max 1 loop.Ir.lp_par in
          if trip = 0 then
            Diag.makef ~path ~code:"L008" ~severity:Diag.Warning
              "loop never executes (zero-trip counter chain)"
            :: diags
          else begin
            let over =
              if par > trip then
                [
                  Diag.makef ~path ~code:"L008" ~severity:Diag.Warning
                    "parallelization %d exceeds trip count %d; %d lane(s) are always idle" par
                    trip (par - trip);
                ]
              else if trip mod par <> 0 then
                [
                  Diag.makef ~path ~code:"L008" ~severity:Diag.Info
                    "trip count %d is not divisible by par %d; the final vector wastes %d lane(s)"
                    trip par (par - (trip mod par));
                ]
              else []
            in
            over @ diags
          end
        end
      | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> diags)
    [] d

(* L009: proven out-of-bounds accesses, with a concrete witness iteration
   vector from the abstract-interpretation bounds checker. *)
let oob_pass (d : Ir.design) = Absint.oob_diags (Absint.report_cached d)

(* L010: proven same-cycle bank conflicts: a concrete pair of vector lanes
   that hit the same bank under every candidate banking scheme. *)
let bank_conflict_pass (d : Ir.design) = Absint.conflict_diags (Absint.report_cached d)

(* L011: double buffers no stage crossing requires; single buffering them
   recovers half their BRAM. *)
let spurious_double_pass (d : Ir.design) = Absint.buffer_diags (Absint.report_cached d)

(* L012: the old syntactic recurrence heuristic would have charged a higher
   II than the dependence analysis proves — cycles previously left on the
   table. *)
let pessimistic_ii_pass (d : Ir.design) =
  Dependence.pessimistic_diags (Dependence.report_cached d)

(* L013: proven-illegal vectorization: two lanes of the same vector touch
   the same word with a write between them, with the concrete lane pair
   and iteration vectors as witness. *)
let unsafe_pipelining_pass (d : Ir.design) =
  Dependence.unsafe_diags (Dependence.report_cached d)
