module Ir = Dhdl_ir.Ir
module Diagnostic = Dhdl_ir.Diag
module Analysis = Dhdl_ir.Analysis
module Target = Dhdl_device.Target

type pass = {
  code : string;
  title : string;
  doc : string;
  run : Ir.design -> Diagnostic.t list;
}

let passes ?(dev = Target.stratix_v) () =
  [
    {
      code = "L001";
      title = "parallel-race";
      doc = "write-write or read-write race between concurrent Parallel stages";
      run = Passes.race_pass;
    };
    {
      code = "L002";
      title = "metapipe-hazard";
      doc = "buffer crosses pipelined stages without double buffering";
      run = Passes.metapipe_pass;
    };
    {
      code = "L003";
      title = "banking-mismatch";
      doc = "access vector wider than the memory's banking";
      run = Passes.banking_pass;
    };
    {
      code = "L004";
      title = "dead-memory";
      doc = "memory never accessed, or buffer written but never read";
      run = Passes.dead_mem_pass;
    };
    {
      code = "L005";
      title = "dead-value";
      doc = "op or load result never consumed";
      run = Passes.dead_value_pass;
    };
    {
      code = "L006";
      title = "device-fit";
      doc = "on-chip memory demand exceeds (or crowds) the target device";
      run = Passes.capacity_pass dev;
    };
    {
      code = "L007";
      title = "queue-protocol";
      doc = "push without pop, pop without push, zero-capacity queue";
      run = Passes.queue_pass;
    };
    {
      code = "L008";
      title = "degenerate-loop";
      doc = "zero-trip loop, par > trip, or non-divisor par";
      run = Passes.loop_pass;
    };
    {
      code = "L009";
      title = "out-of-bounds";
      doc = "proven out-of-bounds access with a witness iteration vector";
      run = Passes.oob_pass;
    };
    {
      code = "L010";
      title = "bank-conflict";
      doc = "proven same-cycle bank conflict with a concrete lane pair";
      run = Passes.bank_conflict_pass;
    };
    {
      code = "L011";
      title = "spurious-double-buffer";
      doc = "double buffer no pipelined stage crossing requires";
      run = Passes.spurious_double_pass;
    };
    {
      code = "L012";
      title = "pessimistic-ii";
      doc = "syntactic heuristic charges a higher II than dependence analysis proves";
      run = Passes.pessimistic_ii_pass;
    };
    {
      code = "L013";
      title = "unsafe-pipelining";
      doc = "proven-illegal vectorization with a concrete same-cycle lane conflict";
      run = Passes.unsafe_pipelining_pass;
    };
  ]

let proof_codes = [ "L009"; "L010"; "L011"; "L012"; "L013" ]

let heuristic_codes =
  List.filter_map
    (fun p -> if List.mem p.code proof_codes then None else Some p.code)
    (passes ())

let check ?dev ?(validate = true) ?only d =
  let ps = passes ?dev () in
  let ps =
    match only with None -> ps | Some codes -> List.filter (fun p -> List.mem p.code codes) ps
  in
  let base = if validate then Analysis.validate_diags d else [] in
  let lint = List.concat_map (fun p -> p.run d) ps in
  List.sort_uniq Diagnostic.compare (base @ lint)

let errors diags = List.filter (fun g -> g.Diagnostic.severity = Diagnostic.Error) diags
let has_errors diags = errors diags <> []

let summary diags =
  Printf.sprintf "%d error(s), %d warning(s), %d info(s)"
    (Diagnostic.count Diagnostic.Error diags)
    (Diagnostic.count Diagnostic.Warning diags)
    (Diagnostic.count Diagnostic.Info diags)

let render_text ~design diags =
  match diags with
  | [] -> Printf.sprintf "%s: clean" design.Ir.d_name
  | _ ->
    String.concat "\n"
      (Printf.sprintf "%s: %s" design.Ir.d_name (summary diags)
      :: List.map Diagnostic.to_string diags)

let render_json ~design diags =
  Printf.sprintf
    "{\"design\": \"%s\", \"errors\": %d, \"warnings\": %d, \"infos\": %d, \"diagnostics\": [%s]}"
    (Diagnostic.json_escape design.Ir.d_name)
    (Diagnostic.count Diagnostic.Error diags)
    (Diagnostic.count Diagnostic.Warning diags)
    (Diagnostic.count Diagnostic.Info diags)
    (String.concat ", " (List.map Diagnostic.to_json diags))

let exit_code ?(fail_on = Diagnostic.Error) diags =
  match Diagnostic.max_severity diags with
  | None -> 0
  | Some s ->
    if Diagnostic.severity_rank s > Diagnostic.severity_rank fail_on then 0
    else if s = Diagnostic.Error then 2
    else 1
