(** The individual lint passes. Use {!Lint.passes} / {!Lint.check} for the
    assembled registry; these are exposed so tests can exercise one pass in
    isolation. *)

module Ir = Dhdl_ir.Ir
module Diag = Dhdl_ir.Diag
module Target = Dhdl_device.Target

val race_pass : Ir.design -> Diag.t list
(** L001: write-write / read-write races across concurrent [Parallel]
    stages (queues exempt). Candidates come from read/write-set overlap;
    the loop-carried dependence analysis drops pairs it proves disjoint
    and attaches a concrete overlap witness when it proves a collision. *)

val metapipe_pass : Ir.design -> Diag.t list
(** L002: buffers crossing pipelined [Loop] stages without [mem_double]. *)

val banking_pass : Ir.design -> Diag.t list
(** L003: BRAM access vectors wider than the inferred banking. *)

val dead_mem_pass : Ir.design -> Diag.t list
(** L004: never-accessed on-chip memories; BRAMs written but never read. *)

val dead_value_pass : Ir.design -> Diag.t list
(** L005: [Sop]/[Sload] results never consumed (and not reduce inputs). *)

val capacity_pass : Target.t -> Ir.design -> Diag.t list
(** L006: device fit. Errors when the replication-scaled BRAM-block lower
    bound already exceeds the device; warns on very large single memories. *)

val queue_pass : Ir.design -> Diag.t list
(** L007: queue protocol — push without pop, pop without push,
    zero-capacity queues. *)

val loop_pass : Ir.design -> Diag.t list
(** L008: zero-trip loops, par > trip, non-divisor par remainder waste. *)

val oob_pass : Ir.design -> Diag.t list
(** L009: proven out-of-bounds accesses (witness iteration vector in the
    message), from {!Dhdl_absint.Absint}. *)

val bank_conflict_pass : Ir.design -> Diag.t list
(** L010: proven same-cycle bank conflicts (concrete lane pair in the
    message), from {!Dhdl_absint.Absint}. *)

val spurious_double_pass : Ir.design -> Diag.t list
(** L011: double buffers no pipelined stage crossing requires. *)

val pessimistic_ii_pass : Ir.design -> Diag.t list
(** L012: pipes where the old syntactic recurrence heuristic charges a
    higher II than {!Dhdl_absint.Dependence} proves (warning). *)

val unsafe_pipelining_pass : Ir.design -> Diag.t list
(** L013: pipes whose vectorization is proven illegal — two lanes of one
    vector touch the same word with a write between them; the message
    carries the concrete lane pair, iteration vectors and index. *)

val mem_limit_words : int
(** Single-memory word-count threshold for the L006 tiling warning. *)

val safe_trip : Ir.counter list -> int
(** Trip count that tolerates degenerate counters (returns 0 instead of
    asserting like {!Ir.counter_trip}); delegates to {!Ir.counter_trip},
    which clamps degenerate counters to zero. *)
