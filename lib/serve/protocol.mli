(** Wire protocol of the DSE server: newline-delimited JSON requests and
    replies over a Unix domain socket.

    One request per line, one reply per line. A request is an object
    carrying a client-chosen [id] (echoed in the reply, and the key for
    idempotent retries and quarantine accounting), a [verb], an optional
    [deadline_ms] budget, and verb-specific fields:

    {v
    {"id":"r1","verb":"estimate","deadline_ms":2000,
     "app":"dotproduct","params":{"tileSize":1200,"par":4}}
    {"id":"r2","verb":"dse_start","app":"dotproduct","session":"s1",
     "seed":2016,"max_points":500}
    {"id":"r4","verb":"estimate_batch","deadline_ms":5000,
     "specs":[{"app":"dotproduct","params":{"tileSize":1200}},
              {"app":"gemm"}]}
    {"id":"r3","verb":"dse_status","session":"s1"}
    v}

    A reply either succeeds —
    [{"id":"r1","ok":{...}}] (estimate payloads carry ["degraded":true]
    when the server answered from the raw analytical model) — or fails
    with a typed error:
    [{"id":"r2","error":{"code":"overloaded","message":"...",
    "retry_after_ms":75}}]. Every admitted request gets exactly one
    reply; overload, expiry, drain, and handler crashes are replies
    ({!error_code}), never silence. *)

type verb =
  | Ping  (** Liveness probe; replies [{"pong":true}]. *)
  | Estimate
  | Estimate_batch
      (** N estimate specs in one request under one deadline; the reply
          carries one typed entry per spec, in order (see [q_specs]). *)
  | Lint
  | Analyze
  | Dse_start
  | Dse_status
  | Dse_cancel
  | Shutdown  (** Ask the server to drain and exit (like SIGTERM). *)

val verb_name : verb -> string
val verb_of_name : string -> verb option

type request = {
  q_id : string;  (** Client-chosen id; reuse it when retrying. *)
  q_verb : verb;
  q_deadline_ms : int option;
      (** Whole-request budget in milliseconds, measured from admission;
          expired work answers [deadline_exceeded]. *)
  q_app : string option;  (** Benchmark name (estimate/lint/analyze/dse_start). *)
  q_params : (string * int) list;  (** Design parameters; [[]] = defaults. *)
  q_session : string option;  (** Session id (dse_* verbs). *)
  q_seed : int option;  (** Sweep seed (dse_start; default 2016). *)
  q_max_points : int option;  (** Sweep budget (dse_start). *)
  q_specs : (string * (string * int) list) list;
      (** [estimate_batch] items, in reply order: [(app, params)] pairs
          carried as [{"specs":[{"app":"...","params":{...}},...]}]. The
          whole batch shares the request's single [deadline_ms]; items
          reached after expiry answer per-item [deadline_exceeded]
          entries inside the (successful) batch reply. *)
}

val request :
  ?deadline_ms:int ->
  ?app:string ->
  ?params:(string * int) list ->
  ?session:string ->
  ?seed:int ->
  ?max_points:int ->
  ?specs:(string * (string * int) list) list ->
  id:string ->
  verb ->
  request

val parse_request : string -> (request, string) result
(** Decode one wire line. The error is a human message (the server turns
    it into a [bad_request] reply). *)

val render_request : request -> string
(** One wire line, no trailing newline. *)

(** Typed reply errors. [Overloaded] and [Draining] are {e pre-admission}
    rejections — retryable, never cached against the request id. The rest
    are final. *)
type error_code =
  | Overloaded  (** Pending queue full; honor [retry_after_ms]. *)
  | Draining  (** Server is shutting down; try another instance. *)
  | Deadline_exceeded
  | Quarantined
      (** The request crashed its handler [quarantine_threshold] times
          and was parked; [err_chain] is the per-attempt error chain. *)
  | Bad_request
  | Unknown_session
  | Internal

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type err = {
  err_code : error_code;
  err_message : string;
  err_retry_after_ms : int option;  (** Only on [Overloaded]. *)
  err_chain : string list;  (** Only on [Quarantined]: one message per crash. *)
}

type reply = {
  r_id : string;
  r_body : (Json.t, err) result;  (** [Ok payload] or a typed error. *)
}

val ok : id:string -> Json.t -> reply
val error : ?retry_after_ms:int -> ?chain:string list -> id:string -> error_code -> string -> reply
val render_reply : reply -> string
val parse_reply : string -> (reply, string) result

val is_retryable : reply -> bool
(** [Overloaded] or [Draining] — safe to resend with the same id. *)
