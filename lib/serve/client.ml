module P = Protocol
module Rng = Dhdl_util.Rng

type t = {
  socket_path : string;
  timeout_s : float;
  max_attempts : int;
  backoff_ms : int;
  rng : Rng.t;  (* jitter stream; deterministic per client *)
}

let create ?(timeout_s = 10.0) ?(max_attempts = 5) ?(backoff_ms = 25) ?(seed = 42) ~socket_path ()
    =
  { socket_path; timeout_s; max_attempts; backoff_ms; rng = Rng.create seed }

(* One connection, one request line, one reply line (or a timeout). *)
let try_once t req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "connect %s: %s" t.socket_path (Unix.error_message e))
      | () -> (
        let line = P.render_request req ^ "\n" in
        let data = Bytes.of_string line in
        match
          let sent = ref 0 in
          while !sent < Bytes.length data do
            sent := !sent + Unix.write fd data !sent (Bytes.length data - !sent)
          done
        with
        | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
        | () ->
          let deadline = Unix.gettimeofday () +. t.timeout_s in
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let rec read_reply () =
            let line_done = String.index_opt (Buffer.contents buf) '\n' in
            match line_done with
            | Some i -> (
              let line = String.sub (Buffer.contents buf) 0 i in
              match P.parse_reply line with
              | Ok reply -> Ok reply
              | Error msg -> Error ("bad reply: " ^ msg))
            | None ->
              let left = deadline -. Unix.gettimeofday () in
              if left <= 0.0 then Error "timeout waiting for reply"
              else (
                match Unix.select [ fd ] [] [] left with
                | [], _, _ -> Error "timeout waiting for reply"
                | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Error "connection closed before reply"
                  | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    read_reply ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_reply ()
                  | exception Unix.Unix_error (e, _, _) ->
                    Error ("recv: " ^ Unix.error_message e))
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_reply ())
          in
          read_reply ()))

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

(* Exponential backoff with multiplicative jitter in [0.5, 1.5), seeded —
   retries decorrelate across clients but replay identically per seed. *)
let backoff_delay t ~attempt ~hint =
  let base =
    match hint with
    | Some ms -> ms
    | None -> t.backoff_ms * (1 lsl min attempt 10)
  in
  int_of_float (float_of_int base *. Rng.float_in t.rng 0.5 1.5)

let call t req =
  let rec go attempt last_err =
    if attempt > t.max_attempts then Error last_err
    else
      match try_once t req with
      | Ok reply when P.is_retryable reply && attempt < t.max_attempts ->
        let hint =
          match reply.P.r_body with
          | Error e -> e.P.err_retry_after_ms
          | Ok _ -> None
        in
        sleep_ms (backoff_delay t ~attempt ~hint);
        go (attempt + 1) "retries exhausted on overloaded/draining replies"
      | Ok reply -> Ok reply
      | Error msg ->
        if attempt < t.max_attempts then begin
          sleep_ms (backoff_delay t ~attempt ~hint:None);
          go (attempt + 1) msg
        end
        else Error msg
  in
  go 1 "no attempt made"

let wait_ready ?(timeout_s = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let quick = { t with timeout_s = 0.5; max_attempts = 1 } in
  let rec go n =
    if Unix.gettimeofday () > deadline then false
    else
      match try_once quick (P.request ~id:(Printf.sprintf "ready-%d" n) P.Ping) with
      | Ok { P.r_body = Ok _; _ } -> true
      | _ ->
        sleep_ms 50;
        go (n + 1)
  in
  go 0
