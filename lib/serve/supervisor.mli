(** The DSE server's supervisor: session table, admission control, and
    the single worker that executes requests.

    The supervisor owns a bounded pending queue fed by {!submit} (called
    from the socket event loop or directly by in-process tests) and
    drained by one worker domain ({!start}); long-running sweeps run on
    their own domains, tracked in the session table and cancellable
    through the {!Dhdl_dse.Explore} [stop_requested] hook. The robustness
    contract, layer by layer:

    - {b Admission control}: when the pending queue holds
      [queue_capacity] requests, {!submit} sheds the request with a typed
      [overloaded] reply carrying a [retry_after_ms] hint — it never
      blocks the event loop and never drops silently.
    - {b Deadlines}: a request's [deadline_ms] is measured from
      admission. Work still queued when it expires answers
      [deadline_exceeded]; a [dse_start]'s remaining budget becomes the
      sweep's deadline, so an over-budget sweep truncates, checkpoints,
      and stays resumable.
    - {b Degradation}: when the queue is [degrade_depth] deep at
      dispatch time, or the [estimator.nn_fallback] counter has tripped
      [nn_fallback_limit] times since startup, estimate requests answer
      from the raw analytical model and flag [degraded: true].
    - {b Idempotent retries}: final replies are cached by request id, so
      a client resending an id (after a timeout it cannot distinguish
      from loss) gets the original reply, not a re-execution.
      [overloaded]/[draining] rejections are not cached.
    - {b Quarantine}: a request whose handler crashes
      [quarantine_threshold] times (each attempt re-rolled via the
      [serve.handler] fault site keyed by (id, attempt)) is parked with a
      [quarantined] reply carrying its full error chain.
    - {b Crash-only sessions}: all sweep state lives in {!Session}
      directories; {!drain} cancels running sweeps so they checkpoint,
      and a [kill -9] loses at most the entries since the last periodic
      checkpoint write.

    Expected handler errors ([Failure] from bad arguments, unknown
    benchmarks, missing fields) are [bad_request] replies, not crashes —
    only escaping exceptions count toward quarantine.

    Every estimate — the [estimate] verb, each [estimate_batch] item, and
    every point of every sweep the supervisor starts — goes through one
    shared {!Dhdl_dse.Eval.t} wrapping [config.estimator], so its
    design-key caches are {e cross-request}: a design proved or estimated
    for one client answers the next client (or the next sweep) from the
    cache. Degraded estimates bypass it by design. *)

type config = {
  sessions_root : string;  (** Directory holding {!Session} state. *)
  estimator : Dhdl_model.Estimator.t Lazy.t;
      (** Forced on first use, from the worker domain only. *)
  queue_capacity : int;  (** Pending-queue bound; over it = [overloaded]. *)
  degrade_depth : int;  (** Queue depth at dispatch that degrades estimates. *)
  quarantine_threshold : int;  (** Handler crashes before a request is parked. *)
  nn_fallback_limit : int;
      (** [estimator.nn_fallback] trips (measured via the Obs counter,
          so only meaningful with the sink enabled) after which estimates
          degrade; [0] disables this trigger. *)
  dse_jobs : int;  (** Worker domains per sweep. *)
  dse_checkpoint_every : int;  (** Sweep checkpoint cadence (points). *)
}

val default_config :
  sessions_root:string -> estimator:Dhdl_model.Estimator.t Lazy.t -> config
(** [queue_capacity 64], [degrade_depth 16], [quarantine_threshold 3],
    [nn_fallback_limit 25], [dse_jobs 1], [dse_checkpoint_every 8]. *)

type t

val create : config -> t
(** Build the supervisor without starting the worker — requests submitted
    before {!start} queue up (the admission tests rely on this). *)

val start : t -> unit
(** Spawn the worker domain. Idempotent. *)

val submit : t -> Protocol.request -> reply_to:(Protocol.reply -> unit) -> unit
(** Admit one request. [reply_to] is invoked exactly once per call —
    immediately for cached/[overloaded]/[draining] outcomes, from the
    worker otherwise. It may be called from the worker domain and must
    not raise (a raise is swallowed so a dead connection cannot kill the
    worker). *)

val draining : t -> bool
(** Set by a [shutdown] request or {!drain}; new submissions answer
    [draining]. *)

val queue_depth : t -> int

val drain : t -> unit
(** Graceful shutdown: refuse new work, finish every queued request,
    stop the worker, cancel running sweeps (they truncate and write a
    final checkpoint), and join every domain. Safe to call twice. *)
