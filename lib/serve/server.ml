module P = Protocol
module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* partial line; reads happen only on the event loop *)
  wmutex : Mutex.t;  (* serializes writers: event loop + worker domain *)
  mutable closed : bool;
}

(* The socket fault sites model transient I/O errors: each probe that
   fires burns one bounded retry (visible as a counter) before the real
   syscall runs — injected faults cost latency, never replies. *)
let rec retrying ?(attempts = 8) site f =
  if attempts > 1 && Faults.fires site then begin
    Obs.count (site ^ ".retry");
    retrying ~attempts:(attempts - 1) site f
  end
  else f ()

let send conn line =
  Mutex.lock conn.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmutex)
    (fun () ->
      if not conn.closed then
        let data = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length data in
        try
          retrying "serve.sock_write" (fun () ->
              let sent = ref 0 in
              while !sent < len do
                sent := !sent + Unix.write conn.fd data !sent (len - !sent)
              done)
        with Unix.Unix_error _ ->
          (* Peer is gone (EPIPE etc.); the reply is undeliverable, the
             worker must not care. The event loop reaps the fd. *)
          conn.closed <- true)

let handle_line sup conn line =
  match P.parse_request line with
  | Error msg ->
    (* Unparseable request: we cannot know its id, but the client still
       gets a typed reply on its connection rather than silence. *)
    send conn (P.render_reply (P.error ~id:"?" P.Bad_request msg))
  | Ok req -> Supervisor.submit sup req ~reply_to:(fun r -> send conn (P.render_reply r))

let on_readable sup conn =
  let chunk = Bytes.create 4096 in
  match retrying "serve.sock_read" (fun () -> Unix.read conn.fd chunk 0 (Bytes.length chunk)) with
  | 0 -> conn.closed <- true
  | n ->
    Buffer.add_subbytes conn.rbuf chunk 0 n;
    let data = Buffer.contents conn.rbuf in
    Buffer.clear conn.rbuf;
    let rec dispatch = function
      | [] -> ()
      | [ tail ] -> Buffer.add_string conn.rbuf tail  (* incomplete line *)
      | line :: rest ->
        if String.trim line <> "" then handle_line sup conn line;
        dispatch rest
    in
    dispatch (String.split_on_char '\n' data)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> conn.closed <- true

let run ?(install_signals = true) ~socket_path sup_cfg =
  let sup = Supervisor.create sup_cfg in
  Supervisor.start sup;
  (* Writes to a vanished peer must surface as EPIPE, not kill us. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop_sig = Atomic.make false in
  if install_signals then begin
    let drain_on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop_sig true) in
    Sys.set_signal Sys.sigterm drain_on_signal;
    Sys.set_signal Sys.sigint drain_on_signal
  end;
  (* A leftover socket file is the normal crash-only residue. *)
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 16;
  Printf.eprintf "[serve] listening on %s\n%!" socket_path;
  (* All connections ever accepted; fds stay open (merely flagged closed)
     until after the drain, so a worker-held reply callback can never
     write into a recycled descriptor. *)
  let conns = ref [] in
  let draining () = Atomic.get stop_sig || Supervisor.draining sup in
  let rec loop () =
    if not (draining ()) then begin
      let live = List.filter (fun c -> not c.closed) !conns in
      let fds = listen_fd :: List.map (fun c -> c.fd) live in
      (match Unix.select fds [] [] 0.2 with
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              let cfd, _ = Unix.accept listen_fd in
              Obs.count "serve.connections";
              conns :=
                { fd = cfd; rbuf = Buffer.create 256; wmutex = Mutex.create (); closed = false }
                :: !conns
            end
            else
              match List.find_opt (fun c -> c.fd = fd) live with
              | Some conn -> on_readable sup conn
              | None -> ())
          readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove socket_path with Sys_error _ -> ());
      (* Finish queued work and checkpoint sweeps before hanging up:
         in-flight replies still have live connections here. *)
      Supervisor.drain sup;
      List.iter
        (fun c ->
          Mutex.lock c.wmutex;
          c.closed <- true;
          Mutex.unlock c.wmutex;
          try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns;
      Printf.eprintf "[serve] drained, bye\n%!")
    loop
