type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ---------------- rendering ---------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec render = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int n -> string_of_int n
  | Float f -> render_float f
  | Str s -> "\"" ^ escape s ^ "\""
  | List xs -> "[" ^ String.concat "," (List.map render xs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ render v) fields)
    ^ "}"
  | Raw s -> s

(* ---------------- parsing ------------------------------------------ *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\r' || s.[!pos] = '\n') do
      incr pos
    done
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let h = String.init 4 (fun _ -> next ()) in
          let code = try int_of_string ("0x" ^ h) with _ -> fail "bad \\u escape" in
          (* Non-ASCII code points degrade to '?'; the protocol never
             produces them. *)
          Buffer.add_char buf (if code < 128 then Char.chr code else '?')
        | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then (incr pos; List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elements (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some c when is_num_char c ->
      let start = !pos in
      while !pos < n && is_num_char s.[!pos] do incr pos done;
      let raw = String.sub s start (!pos - start) in
      (match int_of_string_opt raw with
      | Some n -> Int n
      | None -> (
        match float_of_string_opt raw with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" raw)))
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    Ok v
  with Bad msg -> Error msg

(* ---------------- accessors ---------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let obj_or_empty = function Obj fields -> fields | _ -> []
