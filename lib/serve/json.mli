(** Minimal JSON values for the serve wire protocol.

    The server speaks newline-delimited JSON, one value per line; this
    module is the shared reader/writer for both ends. It covers the full
    JSON grammar (minus float exponent edge cases beyond
    [float_of_string]) and adds one non-standard constructor, {!Raw},
    which splices an already-rendered JSON fragment verbatim — used to
    embed reports the lint/absint passes render themselves. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** Pre-rendered JSON, emitted verbatim by {!render}; never produced
          by {!parse}. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; anything after
    the value is an error). [Error] carries a message with an offset. *)

val render : t -> string
(** Compact single-line rendering (never contains ['\n'], so a rendered
    value is always one wire line). *)

(** {1 Accessors} — total lookups used by the protocol decoders. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_string : t -> string option
val to_int : t -> int option
(** [Int] directly; a [Float] with an integral value also converts. *)

val to_bool : t -> bool option
val to_list : t -> t list option

val obj_or_empty : t -> (string * t) list
(** The fields of an object, [[]] for anything else. *)
