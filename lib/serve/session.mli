(** Crash-only DSE session store.

    A session is a directory under the server's sessions root whose {e
    files are the state} — there is no in-memory truth to lose:

    - [spec.json] — the sweep identity ([app], [seed], [max_points],
      [jobs]), written once at [dse_start] and validated on every
      restart/resume;
    - [checkpoint.jsonl] — the {!Dhdl_dse.Checkpoint} file the sweep
      itself maintains (atomic temp-file + rename, bit-identical across
      jobs levels and resume boundaries);
    - [done.json] — the result summary, written atomically when the sweep
      runs to completion;
    - [error.json] — a classified failure, written when the sweep domain
      dies (the error chain, so a poisoned sweep is diagnosable).

    Recovery after [kill -9] is therefore a directory scan: [done.json]
    present → finished; otherwise a checkpoint → interrupted at its entry
    count (resume continues bit-identically); otherwise fresh. Writes go
    through a bounded-retry wrapper probing the [serve.session_store]
    fault site, so the soak tests can exercise transient-store behavior
    deterministically. *)

exception Store_error of string
(** A session file could not be written (wraps the [Sys_error]). *)

type spec = {
  s_app : string;
  s_seed : int;
  s_max_points : int;
  s_jobs : int;
}

(** Disk-derived session state (never cached across requests). *)
type status =
  | Unknown  (** No such session directory. *)
  | Fresh of spec  (** Spec written, sweep not yet checkpointed. *)
  | Interrupted of spec * int * bool
      (** Sweep stopped (crash, cancel, or deadline) with [n] checkpoint
          entries; the [bool] is the checkpoint's [truncated_tail] flag. *)
  | Failed of spec * string  (** The sweep domain died; the message. *)
  | Done of spec * Json.t  (** Completed; the [done.json] summary. *)

val id_ok : string -> bool
(** Valid session ids: nonempty, [[A-Za-z0-9._-]] only (no path
    tricks), at most 64 chars. *)

val dir : root:string -> string -> string
val checkpoint_path : root:string -> string -> string

val write_spec : root:string -> string -> spec -> unit
(** Create the session directory and write [spec.json] atomically.
    Raises {!Store_error}. *)

val load_spec : root:string -> string -> spec option

val mark_done : root:string -> string -> Json.t -> unit
(** Write [done.json] atomically. Raises {!Store_error}. *)

val mark_failed : root:string -> string -> string -> unit
(** Write [error.json] atomically. Raises {!Store_error}. *)

val status : root:string -> string -> status
(** Derive the session's state from its files alone. *)

val list : root:string -> string list
(** Session ids present under [root], sorted. *)
