(** Client for the DSE server: one-shot connections with timeouts,
    jittered exponential backoff, and idempotent retries.

    Each {!call} opens a fresh connection, sends one request line, and
    waits up to [timeout_s] for the reply line. Retryable outcomes —
    connection refused (server restarting), timeout (reply lost), and
    typed [overloaded]/[draining] rejections — are retried up to
    [max_attempts] times {e with the same request id}: the server caches
    final replies by id, so a retry after a lost reply returns the
    original result instead of re-executing, and a retry after
    [overloaded] honors the server's [retry_after_ms] hint. Backoff is
    exponential with deterministic multiplicative jitter drawn from a
    seeded {!Dhdl_util.Rng}, so a thundering herd of restarted clients
    decorrelates yet every test run replays identically. *)

type t

val create :
  ?timeout_s:float ->
  ?max_attempts:int ->
  ?backoff_ms:int ->
  ?seed:int ->
  socket_path:string ->
  unit ->
  t
(** Defaults: [timeout_s 10.], [max_attempts 5], [backoff_ms 25] (the
    first retry's base delay; doubles each attempt), [seed 42] (jitter
    stream). *)

val call : t -> Protocol.request -> (Protocol.reply, string) result
(** Send one request, retrying as described above. [Ok] is the server's
    reply (which may itself be a typed error such as [quarantined] —
    retryable rejections are only surfaced once attempts are exhausted);
    [Error] means no reply was obtained (server unreachable, or every
    attempt timed out / was shed). *)

val wait_ready : ?timeout_s:float -> t -> bool
(** Poll [ping] until the server answers (true) or the timeout elapses
    (false). Used by tests and by [dhdl client --wait]. *)
