type verb =
  | Ping
  | Estimate
  | Estimate_batch
  | Lint
  | Analyze
  | Dse_start
  | Dse_status
  | Dse_cancel
  | Shutdown

let verb_name = function
  | Ping -> "ping"
  | Estimate -> "estimate"
  | Estimate_batch -> "estimate_batch"
  | Lint -> "lint"
  | Analyze -> "analyze"
  | Dse_start -> "dse_start"
  | Dse_status -> "dse_status"
  | Dse_cancel -> "dse_cancel"
  | Shutdown -> "shutdown"

let all_verbs =
  [ Ping; Estimate; Estimate_batch; Lint; Analyze; Dse_start; Dse_status; Dse_cancel; Shutdown ]

let verb_of_name name = List.find_opt (fun v -> verb_name v = name) all_verbs

type request = {
  q_id : string;
  q_verb : verb;
  q_deadline_ms : int option;
  q_app : string option;
  q_params : (string * int) list;
  q_session : string option;
  q_seed : int option;
  q_max_points : int option;
  q_specs : (string * (string * int) list) list;
}

let request ?deadline_ms ?app ?(params = []) ?session ?seed ?max_points ?(specs = []) ~id verb =
  {
    q_id = id;
    q_verb = verb;
    q_deadline_ms = deadline_ms;
    q_app = app;
    q_params = params;
    q_session = session;
    q_seed = seed;
    q_max_points = max_points;
    q_specs = specs;
  }

let parse_request line =
  match Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> (
    match Json.(member "id" j |> Option.map to_string) with
    | None | Some None -> Error "missing string field \"id\""
    | Some (Some id) -> (
      match Json.(member "verb" j |> Option.map to_string) with
      | None | Some None -> Error "missing string field \"verb\""
      | Some (Some name) -> (
        match verb_of_name name with
        | None ->
          Error
            (Printf.sprintf "unknown verb %S (have: %s)" name
               (String.concat ", " (List.map verb_name all_verbs)))
        | Some verb ->
          let int_field name = Option.bind (Json.member name j) Json.to_int in
          let str_field name = Option.bind (Json.member name j) Json.to_string in
          let params_of p =
            List.fold_left
              (fun acc (k, v) ->
                match (acc, Json.to_int v) with
                | Error e, _ -> Error e
                | Ok _, None -> Error (Printf.sprintf "parameter %S is not an integer" k)
                | Ok acc, Some n -> Ok ((k, n) :: acc))
              (Ok []) (Json.obj_or_empty p)
            |> Result.map List.rev
          in
          let params =
            match Json.member "params" j with None -> Ok [] | Some p -> params_of p
          in
          let specs =
            match Json.member "specs" j with
            | None -> Ok []
            | Some p -> (
              match Json.to_list p with
              | None -> Error "\"specs\" must be a list"
              | Some items ->
                List.fold_left
                  (fun acc item ->
                    match acc with
                    | Error e -> Error e
                    | Ok acc -> (
                      match Json.(member "app" item |> Fun.flip Option.bind to_string) with
                      | None -> Error "every spec needs a string field \"app\""
                      | Some app -> (
                        match
                          match Json.member "params" item with
                          | None -> Ok []
                          | Some sp -> params_of sp
                        with
                        | Error e -> Error e
                        | Ok sp -> Ok ((app, sp) :: acc))))
                  (Ok []) items
                |> Result.map List.rev)
          in
          (match (params, specs) with
          | Error e, _ | _, Error e -> Error e
          | Ok q_params, Ok q_specs ->
            (match int_field "deadline_ms" with
            | Some d when d < 0 -> Error "deadline_ms must be >= 0"
            | deadline ->
              Ok
                {
                  q_id = id;
                  q_verb = verb;
                  q_deadline_ms = deadline;
                  q_app = str_field "app";
                  q_params;
                  q_session = str_field "session";
                  q_seed = int_field "seed";
                  q_max_points = int_field "max_points";
                  q_specs;
                })))))

let render_request r =
  let opt name f v = Option.map (fun v -> (name, f v)) v in
  Json.render
    (Json.Obj
       (List.filter_map Fun.id
          [
            Some ("id", Json.Str r.q_id);
            Some ("verb", Json.Str (verb_name r.q_verb));
            opt "deadline_ms" (fun n -> Json.Int n) r.q_deadline_ms;
            opt "app" (fun s -> Json.Str s) r.q_app;
            (if r.q_params = [] then None
             else Some ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.q_params)));
            opt "session" (fun s -> Json.Str s) r.q_session;
            opt "seed" (fun n -> Json.Int n) r.q_seed;
            opt "max_points" (fun n -> Json.Int n) r.q_max_points;
            (if r.q_specs = [] then None
             else
               Some
                 ( "specs",
                   Json.List
                     (List.map
                        (fun (app, params) ->
                          Json.Obj
                            (("app", Json.Str app)
                            ::
                            (if params = [] then []
                             else
                               [
                                 ( "params",
                                   Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) params) );
                               ])))
                        r.q_specs) ));
          ]))

(* ---------------- replies ------------------------------------------ *)

type error_code =
  | Overloaded
  | Draining
  | Deadline_exceeded
  | Quarantined
  | Bad_request
  | Unknown_session
  | Internal

let error_code_name = function
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Deadline_exceeded -> "deadline_exceeded"
  | Quarantined -> "quarantined"
  | Bad_request -> "bad_request"
  | Unknown_session -> "unknown_session"
  | Internal -> "internal"

let all_error_codes =
  [ Overloaded; Draining; Deadline_exceeded; Quarantined; Bad_request; Unknown_session; Internal ]

let error_code_of_name name =
  List.find_opt (fun c -> error_code_name c = name) all_error_codes

type err = {
  err_code : error_code;
  err_message : string;
  err_retry_after_ms : int option;
  err_chain : string list;
}

type reply = {
  r_id : string;
  r_body : (Json.t, err) result;
}

let ok ~id payload = { r_id = id; r_body = Ok payload }

let error ?retry_after_ms ?(chain = []) ~id code message =
  {
    r_id = id;
    r_body =
      Error
        {
          err_code = code;
          err_message = message;
          err_retry_after_ms = retry_after_ms;
          err_chain = chain;
        };
  }

let render_reply r =
  let body =
    match r.r_body with
    | Ok payload -> ("ok", payload)
    | Error e ->
      ( "error",
        Json.Obj
          (List.filter_map Fun.id
             [
               Some ("code", Json.Str (error_code_name e.err_code));
               Some ("message", Json.Str e.err_message);
               Option.map (fun ms -> ("retry_after_ms", Json.Int ms)) e.err_retry_after_ms;
               (if e.err_chain = [] then None
                else Some ("chain", Json.List (List.map (fun m -> Json.Str m) e.err_chain)));
             ]) )
  in
  Json.render (Json.Obj [ ("id", Json.Str r.r_id); body ])

let parse_reply line =
  match Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> (
    match Json.(member "id" j |> Option.map to_string) with
    | None | Some None -> Error "missing string field \"id\""
    | Some (Some id) -> (
      match (Json.member "ok" j, Json.member "error" j) with
      | Some payload, None -> Ok { r_id = id; r_body = Ok payload }
      | None, Some e -> (
        let str name = Option.bind (Json.member name e) Json.to_string in
        match Option.bind (str "code") error_code_of_name with
        | None -> Error "error reply with missing or unknown \"code\""
        | Some code ->
          Ok
            {
              r_id = id;
              r_body =
                Error
                  {
                    err_code = code;
                    err_message = Option.value (str "message") ~default:"";
                    err_retry_after_ms = Option.bind (Json.member "retry_after_ms" e) Json.to_int;
                    err_chain =
                      (match Option.bind (Json.member "chain" e) Json.to_list with
                      | None -> []
                      | Some xs -> List.filter_map Json.to_string xs);
                  };
            })
      | _ -> Error "reply must have exactly one of \"ok\" / \"error\""))

let is_retryable r =
  match r.r_body with
  | Ok _ -> false
  | Error e -> ( match e.err_code with Overloaded | Draining -> true | _ -> false)
