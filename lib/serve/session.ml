module Faults = Dhdl_util.Faults
module Obs = Dhdl_obs.Obs
module Checkpoint = Dhdl_dse.Checkpoint

exception Store_error of string

type spec = {
  s_app : string;
  s_seed : int;
  s_max_points : int;
  s_jobs : int;
}

type status =
  | Unknown
  | Fresh of spec
  | Interrupted of spec * int * bool
  | Failed of spec * string
  | Done of spec * Json.t

let id_ok id =
  let ok_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '.' || c = '_' || c = '-'
  in
  id <> "" && String.length id <= 64 && String.for_all ok_char id
  (* "." / ".." are all-ok-chars but escape the root. *)
  && id <> "." && id <> ".."

let dir ~root id = Filename.concat root id
let checkpoint_path ~root id = Filename.concat (dir ~root id) "checkpoint.jsonl"
let spec_path ~root id = Filename.concat (dir ~root id) "spec.json"
let done_path ~root id = Filename.concat (dir ~root id) "done.json"
let error_path ~root id = Filename.concat (dir ~root id) "error.json"

(* The [serve.session_store] fault site models transient store failures:
   each probe that fires burns one retry (counted in the Obs sink), and
   the bounded loop then performs the real write — so injected store
   faults slow a request down but never lose session state, which is what
   the soak test asserts. *)
let rec with_store_retry ?(attempts = 8) f =
  if attempts > 1 && Faults.fires "serve.session_store" then begin
    Obs.count "serve.store_retry";
    with_store_retry ~attempts:(attempts - 1) f
  end
  else f ()

let mkdir_p path =
  (* Two levels at most (root/session); create both, ignore existing. *)
  let mk p = try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> () in
  let parent = Filename.dirname path in
  if parent <> "" && parent <> "/" && not (Sys.file_exists parent) then mk parent;
  mk path

let write_atomic path content =
  with_store_retry @@ fun () ->
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
    Sys.rename tmp path
  with Sys_error msg -> raise (Store_error msg)

let read_file path =
  try
    let ic = open_in_bin path in
    Some
      (Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

let write_spec ~root id spec =
  (try mkdir_p (dir ~root id) with Unix.Unix_error (e, _, _) -> raise (Store_error (Unix.error_message e)));
  write_atomic (spec_path ~root id)
    (Json.render
       (Json.Obj
          [
            ("app", Json.Str spec.s_app);
            ("seed", Json.Int spec.s_seed);
            ("max_points", Json.Int spec.s_max_points);
            ("jobs", Json.Int spec.s_jobs);
          ]))

let load_spec ~root id =
  match read_file (spec_path ~root id) with
  | None -> None
  | Some text -> (
    match Json.parse text with
    | Error _ -> None
    | Ok j ->
      let int_field name = Option.bind (Json.member name j) Json.to_int in
      (match
         ( Option.bind (Json.member "app" j) Json.to_string,
           int_field "seed",
           int_field "max_points",
           int_field "jobs" )
       with
      | Some s_app, Some s_seed, Some s_max_points, Some s_jobs ->
        Some { s_app; s_seed; s_max_points; s_jobs }
      | _ -> None))

let mark_done ~root id summary = write_atomic (done_path ~root id) (Json.render summary)

let mark_failed ~root id message =
  write_atomic (error_path ~root id) (Json.render (Json.Obj [ ("message", Json.Str message) ]))

let status ~root id =
  if not (Sys.file_exists (dir ~root id)) then Unknown
  else
    match load_spec ~root id with
    | None -> Unknown
    | Some spec -> (
      match read_file (done_path ~root id) with
      | Some text -> (
        match Json.parse text with
        | Ok summary -> Done (spec, summary)
        | Error _ -> Done (spec, Json.Obj []))
      | None -> (
        match read_file (error_path ~root id) with
        | Some text ->
          let message =
            match Json.parse text with
            | Ok j -> Option.value (Option.bind (Json.member "message" j) Json.to_string) ~default:text
            | Error _ -> text
          in
          Failed (spec, message)
        | None ->
          let cp = checkpoint_path ~root id in
          if not (Sys.file_exists cp) then Fresh spec
          else (
            match Checkpoint.load ~path:cp with
            | Ok c ->
              Interrupted (spec, List.length c.Checkpoint.entries, c.Checkpoint.truncated_tail)
            | Error _ -> Fresh spec)))

let list ~root =
  match Sys.readdir root with
  | entries ->
    Array.to_list entries
    |> List.filter (fun id -> id_ok id && Sys.is_directory (Filename.concat root id))
    |> List.sort compare
  | exception Sys_error _ -> []
