module P = Protocol
module App = Dhdl_apps.App
module Registry = Dhdl_apps.Registry
module Estimator = Dhdl_model.Estimator
module Target = Dhdl_device.Target
module Explore = Dhdl_dse.Explore
module Eval = Dhdl_dse.Eval
module Checkpoint = Dhdl_dse.Checkpoint
module Lint = Dhdl_lint.Lint
module Absint = Dhdl_absint.Absint
module Dependence = Dhdl_absint.Dependence
module Obs = Dhdl_obs.Obs
module Faults = Dhdl_util.Faults

type config = {
  sessions_root : string;
  estimator : Estimator.t Lazy.t;
  queue_capacity : int;
  degrade_depth : int;
  quarantine_threshold : int;
  nn_fallback_limit : int;
  dse_jobs : int;
  dse_checkpoint_every : int;
}

let default_config ~sessions_root ~estimator =
  {
    sessions_root;
    estimator;
    queue_capacity = 64;
    degrade_depth = 16;
    quarantine_threshold = 3;
    nn_fallback_limit = 25;
    dse_jobs = 1;
    dse_checkpoint_every = 8;
  }

type pending = {
  p_req : P.request;
  p_arrival : float;
  p_reply : P.reply -> unit;
}

type item = Req of pending | Quit

(* A running sweep. [sw_finished] flips (in the sweep domain's last act)
   before the domain exits, so the worker can poll it without blocking;
   the domain handle is joined from the worker once finished, or by
   [drain]. All durable state is in the session directory — this record
   is only bookkeeping for cancellation and joining. *)
type sweep = {
  sw_stop : bool Atomic.t;
  sw_finished : bool Atomic.t;
  mutable sw_domain : unit Domain.t option;
}

type t = {
  cfg : config;
  (* The one evaluation pipeline every handler shares: estimate and
     estimate_batch replies, and every sweep the supervisor starts, go
     through this [Eval.t], so its design-key caches are cross-request —
     a design estimated for one client answers the next client (or the
     next sweep) from the cache. Forced lazily like the estimator it
     wraps, and from the worker domain only. *)
  eval : Eval.t Lazy.t;
  q : item Queue.t;
  q_mutex : Mutex.t;
  q_nonempty : Condition.t;
  drain_flag : bool Atomic.t;
  lock : Mutex.t;  (* guards cache, crashes, sweeps *)
  cache : (string, P.reply) Hashtbl.t;  (* request id -> final reply *)
  crashes : (string, string list) Hashtbl.t;  (* request id -> errors, newest first *)
  sweeps : (string, sweep) Hashtbl.t;  (* session id -> running sweep *)
  nn_base : int;  (* estimator.nn_fallback counter at startup *)
  mutable worker : unit Domain.t option;
}

let create cfg =
  {
    cfg;
    eval = lazy (Eval.create (Lazy.force cfg.estimator));
    q = Queue.create ();
    q_mutex = Mutex.create ();
    q_nonempty = Condition.create ();
    drain_flag = Atomic.make false;
    lock = Mutex.create ();
    cache = Hashtbl.create 64;
    crashes = Hashtbl.create 8;
    sweeps = Hashtbl.create 8;
    nn_base = Obs.counter_value "estimator.nn_fallback";
    worker = None;
  }

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let draining t = Atomic.get t.drain_flag
let queue_depth t = locked t.q_mutex (fun () -> Queue.length t.q)
let cached t id = locked t.lock (fun () -> Hashtbl.find_opt t.cache id)

(* ---------------- helpers shared by the handlers -------------------- *)

let lookup_app name =
  try Registry.find name
  with Not_found ->
    failwith
      (Printf.sprintf "unknown benchmark %S (available: %s)" name
         (String.concat ", " Registry.names))

let need req field value =
  match value with
  | Some v -> v
  | None ->
    failwith
      (Printf.sprintf "verb %S requires field %S" (P.verb_name req.P.q_verb) field)

let need_app req = lookup_app (need req "app" req.P.q_app)

let need_session req =
  let sid = need req "session" req.P.q_session in
  if not (Session.id_ok sid) then
    failwith (Printf.sprintf "bad session id %S (use [A-Za-z0-9._-], <= 64 chars)" sid);
  sid

let design_of (app : App.t) params =
  let sizes = app.App.paper_sizes in
  let params = if params = [] then app.App.default_params sizes else params in
  (params, app.App.generate ~sizes ~params)

let params_json params = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) params)

let expired p =
  match p.p_req.P.q_deadline_ms with
  | None -> false
  | Some ms -> Unix.gettimeofday () -. p.p_arrival > float_of_int ms /. 1000.0

(* Remaining deadline budget, as the [deadline_seconds] a sweep accepts
   (strictly positive — an expired request never reaches here). *)
let remaining_seconds p =
  Option.map
    (fun ms ->
      Float.max 0.001 (p.p_arrival +. (float_of_int ms /. 1000.0) -. Unix.gettimeofday ()))
    p.p_req.P.q_deadline_ms

let nn_fallback_tripped t =
  t.cfg.nn_fallback_limit > 0
  && Obs.counter_value "estimator.nn_fallback" - t.nn_base >= t.cfg.nn_fallback_limit

(* ---------------- estimate / lint / analyze ------------------------- *)

let area_json (a : Estimator.area) =
  Json.Obj
    [
      ("alms", Json.Int a.Estimator.alms);
      ("luts", Json.Int a.Estimator.luts);
      ("regs", Json.Int a.Estimator.regs);
      ("dsps", Json.Int a.Estimator.dsps);
      ("brams", Json.Int a.Estimator.brams);
    ]

(* One estimate item's payload, shared by the estimate verb and every
   estimate_batch entry. The corrected path goes through the shared
   [Eval.t], so repeated specs — within one batch, across requests, or
   against designs a sweep already visited — answer from the estimate
   cache. The degraded path stays on the raw analytical model: it is the
   cheap fallback for an overloaded or NN-suspect server, and must not
   depend on what happens to be cached. *)
let estimate_payload t ev ~depth (app : App.t) req_params =
  let est = Eval.estimator ev in
  let params, design = design_of app req_params in
  let degraded = depth >= t.cfg.degrade_depth || nn_fallback_tripped t in
  let area, cycles, seconds =
    if degraded then begin
      (* Raw analytical model: no NN corrections, no routing/duplication
         effects — cheaper and immune to a misbehaving correction net. *)
      Obs.count "serve.degraded";
      let area = Estimator.estimate_area_uncorrected est design in
      let cycles = Estimator.estimate_cycles est design in
      let mhz = (Estimator.board est).Target.fabric_mhz in
      (area, cycles, cycles /. (mhz *. 1e6))
    end
    else
      let e = Eval.estimate ev design in
      (e.Estimator.area, e.Estimator.cycles, e.Estimator.seconds)
  in
  let alm, dsp, bram = Estimator.utilization est area in
  Json.Obj
    [
      ("app", Json.Str app.App.name);
      ("params", params_json params);
      ("degraded", Json.Bool degraded);
      ("cycles", Json.Float cycles);
      ("seconds", Json.Float seconds);
      ("area", area_json area);
      ("alm_pct", Json.Float alm);
      ("dsp_pct", Json.Float dsp);
      ("bram_pct", Json.Float bram);
      ("fits", Json.Bool (Estimator.fits est area));
    ]

let estimate_reply t req ~depth =
  let id = req.P.q_id in
  let ev = Lazy.force t.eval in
  let app = need_app req in
  P.ok ~id (estimate_payload t ev ~depth app req.P.q_params)

(* The whole batch runs under the request's one deadline, checked before
   each item: items reached in time estimate (through the shared cache),
   later ones answer per-item [deadline_exceeded] — the batch reply
   itself still succeeds, carrying one typed entry per spec in request
   order. A bad spec (unknown benchmark, bad parameters) poisons only its
   own entry. *)
let estimate_batch_reply t p ~depth =
  let req = p.p_req in
  let id = req.P.q_id in
  if req.P.q_specs = [] then
    failwith "verb \"estimate_batch\" requires a non-empty \"specs\" list";
  let ev = Lazy.force t.eval in
  let item_error code msg =
    Json.Obj
      [
        ( "error",
          Json.Obj
            [ ("code", Json.Str (P.error_code_name code)); ("message", Json.Str msg) ] );
      ]
  in
  let failed = ref 0 in
  let items =
    List.map
      (fun (app_name, params) ->
        if expired p then begin
          incr failed;
          item_error P.Deadline_exceeded "batch deadline expired before this item"
        end
        else
          match
            try Ok (estimate_payload t ev ~depth (lookup_app app_name) params)
            with Failure msg -> Error msg
          with
          | Ok payload -> Json.Obj [ ("ok", payload) ]
          | Error msg ->
            incr failed;
            item_error P.Bad_request msg)
      req.P.q_specs
  in
  P.ok ~id
    (Json.Obj
       [
         ("count", Json.Int (List.length items));
         ("failed", Json.Int !failed);
         ("items", Json.List items);
       ])

let lint_reply req =
  let id = req.P.q_id in
  let app = need_app req in
  let _, design = design_of app req.P.q_params in
  let diags = Lint.check design in
  P.ok ~id
    (Json.Obj
       [
         ("clean", Json.Bool (diags = []));
         ("errors", Json.Int (List.length (Lint.errors diags)));
         ("report", Json.Raw (Lint.render_json ~design diags));
       ])

let analyze_reply req =
  let id = req.P.q_id in
  let app = need_app req in
  let _, design = design_of app req.P.q_params in
  let report = Absint.analyze design in
  let deps = Dependence.analyze design in
  P.ok ~id
    (Json.Obj
       [
         ("clean", Json.Bool (Absint.clean report && Dependence.clean deps));
         ("absint", Json.Raw (Absint.render_json report));
         ("dependence", Json.Raw (Dependence.render_json deps));
       ])

(* ---------------- sessions ------------------------------------------ *)

let summary_json (r : Explore.result) =
  Json.Obj
    [
      ("state", Json.Str "done");
      ("sampled", Json.Int r.Explore.sampled);
      ("processed", Json.Int r.Explore.processed);
      ("evaluated", Json.Int (List.length r.Explore.evaluations));
      ("pareto", Json.Int (List.length r.Explore.pareto));
      ("failures", Json.Int (List.length r.Explore.failures));
      ("lint_pruned", Json.Int r.Explore.lint_pruned);
      ("absint_pruned", Json.Int r.Explore.absint_pruned);
      ("dep_pruned", Json.Int r.Explore.dep_pruned);
      ("sym_pruned", Json.Int r.Explore.sym_pruned);
      ("resumed", Json.Int r.Explore.resumed);
      ( "best_cycles",
        match Explore.best r with
        | Some ev -> Json.Float ev.Explore.estimate.Estimator.cycles
        | None -> Json.Null );
    ]

let run_sweep cfg ~sid ~(spec : Session.spec) ~(app : App.t) ~ev ?deadline_seconds ~stop () =
  let root = cfg.sessions_root in
  try
    let sweep_cfg =
      Explore.Config.make ~seed:spec.Session.s_seed ~max_points:spec.Session.s_max_points
        ~jobs:spec.Session.s_jobs
        ~checkpoint:(Session.checkpoint_path ~root sid)
        ~checkpoint_every:cfg.dse_checkpoint_every ~resume:true ?deadline_seconds
        ~stop_requested:(fun () -> Atomic.get stop)
        ~tick_every:0 ()
    in
    let sizes = app.App.paper_sizes in
    let r =
      Explore.run sweep_cfg ev
        ~space:(app.App.space sizes)
        ~generate:(fun pt -> app.App.generate ~sizes ~params:pt)
    in
    (* A truncated sweep (cancel, drain, or deadline) is not done: its
       state is the checkpoint, and a later dse_start resumes it. *)
    if not r.Explore.truncated then Session.mark_done ~root sid (summary_json r)
  with e -> ( try Session.mark_failed ~root sid (Printexc.to_string e) with _ -> ())

(* Reap a finished sweep's domain. Caller holds [t.lock]. *)
let reap t sid =
  match Hashtbl.find_opt t.sweeps sid with
  | Some sw when Atomic.get sw.sw_finished ->
    Option.iter Domain.join sw.sw_domain;
    sw.sw_domain <- None;
    Hashtbl.remove t.sweeps sid
  | _ -> ()

let sweep_running t sid =
  locked t.lock (fun () ->
      reap t sid;
      Hashtbl.mem t.sweeps sid)

let checkpoint_entries cfg sid =
  match Checkpoint.load ~path:(Session.checkpoint_path ~root:cfg.sessions_root sid) with
  | Ok c -> List.length c.Checkpoint.entries
  | Error _ -> 0

let status_json cfg sid ~running =
  let root = cfg.sessions_root in
  if running then
    Some
      (Json.Obj
         [
           ("session", Json.Str sid);
           ("state", Json.Str "running");
           ("entries", Json.Int (checkpoint_entries cfg sid));
         ])
  else
    match Session.status ~root sid with
    | Session.Unknown -> None
    | Session.Fresh _ ->
      Some
        (Json.Obj
           [ ("session", Json.Str sid); ("state", Json.Str "fresh"); ("entries", Json.Int 0) ])
    | Session.Interrupted (_, entries, torn) ->
      Some
        (Json.Obj
           [
             ("session", Json.Str sid);
             ("state", Json.Str "interrupted");
             ("entries", Json.Int entries);
             ("truncated_tail", Json.Bool torn);
           ])
    | Session.Failed (_, msg) ->
      Some
        (Json.Obj
           [ ("session", Json.Str sid); ("state", Json.Str "failed"); ("message", Json.Str msg) ])
    | Session.Done (_, summary) ->
      Some (Json.Obj [ ("session", Json.Str sid); ("summary", summary); ("state", Json.Str "done") ])

let dse_start t p =
  let req = p.p_req in
  let id = req.P.q_id in
  let sid = need_session req in
  let root = t.cfg.sessions_root in
  let app = need_app req in
  let spec =
    {
      Session.s_app = app.App.name;
      s_seed = Option.value req.P.q_seed ~default:2016;
      s_max_points = Option.value req.P.q_max_points ~default:2000;
      s_jobs = t.cfg.dse_jobs;
    }
  in
  if sweep_running t sid then
    P.ok ~id
      (Json.Obj [ ("session", Json.Str sid); ("state", Json.Str "running"); ("started", Json.Bool false) ])
  else begin
    (* Validate the spec before any reply from disk — a finished session
       must not answer a request that names a different sweep. *)
    (match Session.load_spec ~root sid with
    | Some existing when existing <> spec ->
      failwith
        (Printf.sprintf
           "session %S already exists for sweep (app=%s seed=%d max_points=%d), not (app=%s \
            seed=%d max_points=%d)"
           sid existing.Session.s_app existing.Session.s_seed existing.Session.s_max_points
           spec.Session.s_app spec.Session.s_seed spec.Session.s_max_points)
    | Some _ | None -> ());
    match Session.status ~root sid with
    | Session.Done (_, summary) ->
      P.ok ~id
        (Json.Obj
           [ ("session", Json.Str sid); ("summary", summary); ("state", Json.Str "done");
             ("started", Json.Bool false) ])
    | (Session.Unknown | Session.Fresh _ | Session.Interrupted _ | Session.Failed _) as st ->
      (match Session.load_spec ~root sid with
      | Some _ -> ()
      | None -> Session.write_spec ~root sid spec);
      (* Re-running a failed session clears the failure record first so
         the crash-only state machine goes back to fresh/interrupted. *)
      (match st with
      | Session.Failed _ -> ( try Sys.remove (Filename.concat (Session.dir ~root sid) "error.json") with Sys_error _ -> ())
      | _ -> ());
      let resumed_entries =
        match st with Session.Interrupted (_, n, _) -> n | _ -> 0
      in
      (* Force outside the sweep domain: Lazy.t is not safe to force from
         two domains, and the worker is the only other forcer. The sweep
         shares the supervisor's [Eval.t], so designs this server already
         proved or estimated (for any client) skip those stages. *)
      let ev = Lazy.force t.eval in
      let stop = Atomic.make false in
      let sw = { sw_stop = stop; sw_finished = Atomic.make false; sw_domain = None } in
      locked t.lock (fun () -> Hashtbl.replace t.sweeps sid sw);
      let deadline_seconds = remaining_seconds p in
      let cfg = t.cfg in
      let finished = sw.sw_finished in
      let dom =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.set finished true)
              (fun () -> run_sweep cfg ~sid ~spec ~app ~ev ?deadline_seconds ~stop ()))
      in
      sw.sw_domain <- Some dom;
      Obs.count "serve.sweeps_started";
      P.ok ~id
        (Json.Obj
           [
             ("session", Json.Str sid);
             ("state", Json.Str "running");
             ("started", Json.Bool true);
             ("resumed_entries", Json.Int resumed_entries);
           ])
  end

let dse_status t req =
  let id = req.P.q_id in
  let sid = need_session req in
  let running = sweep_running t sid in
  match status_json t.cfg sid ~running with
  | Some payload -> P.ok ~id payload
  | None -> P.error ~id P.Unknown_session (Printf.sprintf "no session %S" sid)

let dse_cancel t req =
  let id = req.P.q_id in
  let sid = need_session req in
  let cancelled =
    match locked t.lock (fun () -> reap t sid; Hashtbl.find_opt t.sweeps sid) with
    | Some sw ->
      Atomic.set sw.sw_stop true;
      (* The sweep notices within one point; join so the final checkpoint
         is on disk before we report the post-cancel state. *)
      Option.iter Domain.join sw.sw_domain;
      sw.sw_domain <- None;
      locked t.lock (fun () -> Hashtbl.remove t.sweeps sid);
      true
    | None -> false
  in
  match status_json t.cfg sid ~running:false with
  | Some (Json.Obj fields) -> P.ok ~id (Json.Obj (("cancelled", Json.Bool cancelled) :: fields))
  | Some payload -> P.ok ~id payload
  | None -> P.error ~id P.Unknown_session (Printf.sprintf "no session %S" sid)

(* ---------------- dispatch ------------------------------------------ *)

let exec t p ~depth =
  let req = p.p_req in
  let id = req.P.q_id in
  try
    match req.P.q_verb with
    | P.Ping -> P.ok ~id (Json.Obj [ ("pong", Json.Bool true) ])
    | P.Shutdown ->
      Atomic.set t.drain_flag true;
      P.ok ~id (Json.Obj [ ("draining", Json.Bool true) ])
    | P.Estimate -> estimate_reply t req ~depth
    | P.Estimate_batch -> estimate_batch_reply t p ~depth
    | P.Lint -> lint_reply req
    | P.Analyze -> analyze_reply req
    | P.Dse_start -> dse_start t p
    | P.Dse_status -> dse_status t req
    | P.Dse_cancel -> dse_cancel t req
  with
  | Failure msg -> P.error ~id P.Bad_request msg
  | Session.Store_error msg -> P.error ~id P.Internal ("session store: " ^ msg)

let finalize t id reply =
  locked t.lock (fun () ->
      Hashtbl.replace t.cache id reply;
      Hashtbl.remove t.crashes id);
  reply

(* Execute one pending request to a final reply: serve from the reply
   cache, expire, or attempt the handler — retrying a crash (including
   faults injected at [serve.handler]) until [quarantine_threshold], at
   which point the request is parked with its error chain. Every path
   returns exactly one reply. *)
let rec process t p ~depth =
  let id = p.p_req.P.q_id in
  match cached t id with
  | Some r -> r
  | None ->
    if expired p then
      finalize t id
        (P.error ~id P.Deadline_exceeded
           (Printf.sprintf "deadline of %d ms expired before execution"
              (Option.value p.p_req.P.q_deadline_ms ~default:0)))
    else begin
      let attempt = locked t.lock (fun () -> List.length (Option.value (Hashtbl.find_opt t.crashes id) ~default:[])) in
      match
        (* Key every fault decision of this attempt by (id, attempt), so
           retries re-roll instead of replaying the same crash forever. *)
        Faults.with_key (Hashtbl.hash (id, attempt)) (fun () ->
            Faults.inject "serve.handler";
            exec t p ~depth)
      with
      | reply -> finalize t id reply
      | exception e ->
        let msg = Printexc.to_string e in
        Obs.count "serve.handler_crash";
        let crashes =
          locked t.lock (fun () ->
              let prev = Option.value (Hashtbl.find_opt t.crashes id) ~default:[] in
              let now = msg :: prev in
              Hashtbl.replace t.crashes id now;
              now)
        in
        if List.length crashes >= t.cfg.quarantine_threshold then begin
          Obs.count "serve.quarantined";
          finalize t id
            (P.error ~chain:(List.rev crashes) ~id P.Quarantined
               (Printf.sprintf "handler crashed %d time(s); request parked" (List.length crashes)))
        end
        else process t p ~depth
    end

let rec worker_loop t =
  Mutex.lock t.q_mutex;
  while Queue.is_empty t.q do
    Condition.wait t.q_nonempty t.q_mutex
  done;
  let item = Queue.pop t.q in
  let depth = Queue.length t.q in
  Mutex.unlock t.q_mutex;
  match item with
  | Quit -> ()
  | Req p ->
    let verb = P.verb_name p.p_req.P.q_verb in
    let reply =
      Obs.with_request_track
        ~attrs:[ ("id", p.p_req.P.q_id); ("verb", verb) ]
        ("serve." ^ verb)
        (fun () -> process t p ~depth)
    in
    (try p.p_reply reply with _ -> ());
    worker_loop t

let start t =
  match t.worker with
  | Some _ -> ()
  | None -> t.worker <- Some (Domain.spawn (fun () -> worker_loop t))

let submit t req ~reply_to =
  let id = req.P.q_id in
  let deliver r = try reply_to r with _ -> () in
  match cached t id with
  | Some r -> deliver r
  | None ->
    if Atomic.get t.drain_flag then
      deliver (P.error ~id P.Draining "server is draining; retry against another instance")
    else begin
      Mutex.lock t.q_mutex;
      let depth = Queue.length t.q in
      if depth >= t.cfg.queue_capacity then begin
        Mutex.unlock t.q_mutex;
        Obs.count "serve.shed";
        deliver
          (P.error
             ~retry_after_ms:(25 * (depth + 1))
             ~id P.Overloaded
             (Printf.sprintf "pending queue is full (%d request(s))" depth))
      end
      else begin
        Queue.push (Req { p_req = req; p_arrival = Unix.gettimeofday (); p_reply = reply_to }) t.q;
        Condition.signal t.q_nonempty;
        Mutex.unlock t.q_mutex;
        Obs.count "serve.admitted"
      end
    end

let drain t =
  Atomic.set t.drain_flag true;
  (* FIFO: Quit lands behind every admitted request, so the worker drains
     all in-flight work first. *)
  (match t.worker with
  | Some d ->
    Mutex.lock t.q_mutex;
    Queue.push Quit t.q;
    Condition.signal t.q_nonempty;
    Mutex.unlock t.q_mutex;
    Domain.join d;
    t.worker <- None
  | None -> ());
  (* Cancel any sweep still running; each truncates at its next point and
     writes a final checkpoint, leaving the session resumable. *)
  let sweeps = locked t.lock (fun () -> Hashtbl.fold (fun _ sw acc -> sw :: acc) t.sweeps []) in
  List.iter (fun sw -> Atomic.set sw.sw_stop true) sweeps;
  List.iter
    (fun sw ->
      Option.iter Domain.join sw.sw_domain;
      sw.sw_domain <- None)
    sweeps;
  locked t.lock (fun () -> Hashtbl.reset t.sweeps)
