(** The socket front end: a select-based event loop speaking the
    newline-delimited JSON {!Protocol} over a Unix domain socket.

    The loop owns all reads; replies are written by whichever domain
    produced them (the supervisor's worker), serialized per connection by
    a mutex — so a slow client never blocks request intake, and the event
    loop never blocks on the estimator.

    Robustness at this layer:
    - transient socket faults (the [serve.sock_read] / [serve.sock_write]
      sites) are absorbed by bounded retry;
    - a line that fails to parse answers a [bad_request] reply instead of
      dropping the connection;
    - a peer that disappears is reaped; replies to it are discarded
      without disturbing the worker (SIGPIPE is ignored);
    - SIGTERM / SIGINT (or a [shutdown] request) flip the drain flag: the
      listener closes, queued work finishes, running sweeps cancel and
      checkpoint ({!Supervisor.drain}), and [run] returns. A [kill -9]
      instead loses nothing but the uncheckpointed tail — sessions are
      crash-only ({!Session}). *)

val run : ?install_signals:bool -> socket_path:string -> Supervisor.config -> unit
(** Bind [socket_path] (an existing socket file is replaced — crash
    leftovers are expected), serve until drained, clean up, return.
    [install_signals] (default [true]) installs the SIGTERM/SIGINT drain
    handlers; in-process test servers run with it [false] so they don't
    steal the host's handlers. SIGPIPE is always ignored. *)
