module Intmath = Dhdl_util.Intmath

type mem_kind = Offchip | Bram | Reg | Queue

type mem = {
  mem_id : int;
  mem_name : string;
  mem_kind : mem_kind;
  mem_ty : Dtype.t;
  mem_dims : int list;
  mutable mem_banks : int;
  mutable mem_double : bool;
}

let mem_words m = Intmath.prod m.mem_dims
let mem_bits m = mem_words m * Dtype.bits m.mem_ty
let mem_equal a b = a.mem_id = b.mem_id

type operand = Const of float | Iter of string | Value of int

type stmt =
  | Sop of { dst : int; op : Op.t; args : operand list; ty : Dtype.t }
  | Sload of { dst : int; mem : mem; addr : operand list; ty : Dtype.t }
  | Sstore of { mem : mem; addr : operand list; data : operand }
  | Sread_reg of { dst : int; reg : mem }
  | Swrite_reg of { reg : mem; data : operand }
  | Spush of { queue : mem; data : operand }
  | Spop of { dst : int; queue : mem }

type counter = { ctr_name : string; ctr_start : int; ctr_stop : int; ctr_step : int }

(* Degenerate counters (non-positive step, or stop at/before start) describe
   a loop that never runs: clamp the trip to 0 instead of asserting or
   returning a negative count, so downstream cycle/area math stays sane.
   [Analysis.validate_diags] still reports them as V004 errors. *)
let counter_trip c =
  if c.ctr_step <= 0 || c.ctr_stop <= c.ctr_start then 0
  else Intmath.ceil_div (c.ctr_stop - c.ctr_start) c.ctr_step

type pattern = Map_pattern | Reduce_pattern

type scalar_reduce = { sr_op : Op.t; sr_out : mem; sr_value : operand }
type mem_reduce = { mr_op : Op.t; mr_src : mem; mr_dst : mem }

type loop_info = {
  lp_label : string;
  lp_counters : counter list;
  lp_par : int;
  lp_pattern : pattern;
}

type ctrl =
  | Pipe of { loop : loop_info; body : stmt list; reduce : scalar_reduce option }
  | Loop of { loop : loop_info; pipelined : bool; stages : ctrl list; reduce : mem_reduce option }
  | Parallel of { par_label : string; stages : ctrl list }
  | Tile_load of { src : mem; dst : mem; offsets : operand list; tile : int list; par : int }
  | Tile_store of { dst : mem; src : mem; offsets : operand list; tile : int list; par : int }

let loop_trip lp = List.fold_left (fun acc c -> acc * counter_trip c) 1 lp.lp_counters

let loop_trip_vectorized lp =
  let trip = loop_trip lp in
  Intmath.ceil_div trip (max 1 lp.lp_par)

let ctrl_label = function
  | Pipe { loop; _ } | Loop { loop; _ } -> loop.lp_label
  | Parallel { par_label; _ } -> par_label
  | Tile_load { dst; _ } -> "load_" ^ dst.mem_name
  | Tile_store { dst; _ } -> "store_" ^ dst.mem_name

type design = {
  d_name : string;
  d_mems : mem list;
  d_top : ctrl;
  d_params : (string * int) list;
}

(* A structural fingerprint: fold controller shapes, parameters and memory
   geometry into a string, then hash it. Stable across runs because it never
   touches physical addresses. *)
let design_hash d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf d.d_name;
  List.iter
    (fun m ->
      Buffer.add_string buf m.mem_name;
      Buffer.add_string buf (Dtype.to_string m.mem_ty);
      List.iter (fun dim -> Buffer.add_string buf (string_of_int dim)) m.mem_dims)
    d.d_mems;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf (string_of_int v))
    d.d_params;
  let operand_str = function
    | Const f -> Printf.sprintf "c%g" f
    | Iter s -> "i" ^ s
    | Value v -> Printf.sprintf "v%d" v
  in
  let add_stmt = function
    | Sop { dst; op; args; _ } ->
      Buffer.add_string buf (Printf.sprintf "op%d%s" dst (Op.name op));
      List.iter (fun a -> Buffer.add_string buf (operand_str a)) args
    | Sload { dst; mem; addr; _ } ->
      Buffer.add_string buf (Printf.sprintf "ld%d%s" dst mem.mem_name);
      List.iter (fun a -> Buffer.add_string buf (operand_str a)) addr
    | Sstore { mem; addr; data } ->
      Buffer.add_string buf ("st" ^ mem.mem_name);
      List.iter (fun a -> Buffer.add_string buf (operand_str a)) addr;
      Buffer.add_string buf (operand_str data)
    | Sread_reg { dst; reg } -> Buffer.add_string buf (Printf.sprintf "rr%d%s" dst reg.mem_name)
    | Swrite_reg { reg; data } ->
      Buffer.add_string buf ("wr" ^ reg.mem_name);
      Buffer.add_string buf (operand_str data)
    | Spush { queue; data } ->
      Buffer.add_string buf ("qp" ^ queue.mem_name);
      Buffer.add_string buf (operand_str data)
    | Spop { dst; queue } -> Buffer.add_string buf (Printf.sprintf "qo%d%s" dst queue.mem_name)
  in
  let rec add_ctrl = function
    | Pipe { loop; body; reduce } ->
      Buffer.add_string buf (Printf.sprintf "P%s%d" loop.lp_label loop.lp_par);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%d:%d:%d" c.ctr_start c.ctr_stop c.ctr_step)) loop.lp_counters;
      List.iter add_stmt body;
      Option.iter (fun r -> Buffer.add_string buf ("R" ^ Op.name r.sr_op ^ r.sr_out.mem_name)) reduce
    | Loop { loop; pipelined; stages; reduce } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s%d" (if pipelined then "M" else "S") loop.lp_label loop.lp_par);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%d:%d:%d" c.ctr_start c.ctr_stop c.ctr_step)) loop.lp_counters;
      List.iter add_ctrl stages;
      Option.iter (fun r -> Buffer.add_string buf ("R" ^ Op.name r.mr_op ^ r.mr_dst.mem_name)) reduce
    | Parallel { par_label; stages } ->
      Buffer.add_string buf ("F" ^ par_label);
      List.iter add_ctrl stages
    | Tile_load { src; dst; tile; par; _ } ->
      Buffer.add_string buf (Printf.sprintf "TL%s%s%d" src.mem_name dst.mem_name par);
      List.iter (fun t -> Buffer.add_string buf (string_of_int t)) tile
    | Tile_store { dst; src; tile; par; _ } ->
      Buffer.add_string buf (Printf.sprintf "TS%s%s%d" dst.mem_name src.mem_name par);
      List.iter (fun t -> Buffer.add_string buf (string_of_int t)) tile
  in
  add_ctrl d.d_top;
  Hashtbl.hash (Buffer.contents buf)

let param d name = List.assoc name d.d_params

let find_mem d name =
  match List.find_opt (fun m -> m.mem_name = name) d.d_mems with
  | Some m -> m
  | None -> raise Not_found
