type access = {
  acc_mem : Ir.mem;
  acc_write : bool;
  acc_par : int;
  acc_ctrl : string;
}

let stmt_accesses ~par ~label stmts =
  List.filter_map
    (fun stmt ->
      match stmt with
      | Ir.Sload { mem; _ } -> Some { acc_mem = mem; acc_write = false; acc_par = par; acc_ctrl = label }
      | Ir.Sstore { mem; _ } -> Some { acc_mem = mem; acc_write = true; acc_par = par; acc_ctrl = label }
      | Ir.Sread_reg { reg; _ } -> Some { acc_mem = reg; acc_write = false; acc_par = 1; acc_ctrl = label }
      | Ir.Swrite_reg { reg; _ } -> Some { acc_mem = reg; acc_write = true; acc_par = 1; acc_ctrl = label }
      | Ir.Spush { queue; _ } -> Some { acc_mem = queue; acc_write = true; acc_par = 1; acc_ctrl = label }
      | Ir.Spop { queue; _ } -> Some { acc_mem = queue; acc_write = false; acc_par = 1; acc_ctrl = label }
      | Ir.Sop _ -> None)
    stmts

let ctrl_accesses ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let base = stmt_accesses ~par:loop.Ir.lp_par ~label:loop.Ir.lp_label body in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [ { acc_mem = r.Ir.sr_out; acc_write = true; acc_par = 1; acc_ctrl = loop.Ir.lp_label } ]
    in
    base @ red
  | Ir.Loop { loop; reduce; _ } -> begin
    match reduce with
    | None -> []
    | Some r ->
      (* The implicit reduction stage streams src into dst element-wise,
         with the loop's parallelization as its vector width. *)
      let par = max 1 loop.Ir.lp_par in
      [
        { acc_mem = r.Ir.mr_src; acc_write = false; acc_par = par; acc_ctrl = loop.Ir.lp_label };
        { acc_mem = r.Ir.mr_dst; acc_write = true; acc_par = par; acc_ctrl = loop.Ir.lp_label };
        { acc_mem = r.Ir.mr_dst; acc_write = false; acc_par = par; acc_ctrl = loop.Ir.lp_label };
      ]
  end
  | Ir.Parallel _ -> []
  | Ir.Tile_load { src; dst; par; _ } ->
    let label = Ir.ctrl_label ctrl in
    [
      { acc_mem = src; acc_write = false; acc_par = par; acc_ctrl = label };
      { acc_mem = dst; acc_write = true; acc_par = par; acc_ctrl = label };
    ]
  | Ir.Tile_store { dst; src; par; _ } ->
    let label = Ir.ctrl_label ctrl in
    [
      { acc_mem = src; acc_write = false; acc_par = par; acc_ctrl = label };
      { acc_mem = dst; acc_write = true; acc_par = par; acc_ctrl = label };
    ]

let accesses (d : Ir.design) =
  List.concat_map ctrl_accesses (Traverse.all_ctrls d)

let accesses_of_mem d mem =
  List.filter (fun a -> Ir.mem_equal a.acc_mem mem) (accesses d)

let infer_banking (d : Ir.design) =
  let accs = accesses d in
  List.iter
    (fun m ->
      match m.Ir.mem_kind with
      | Ir.Offchip -> m.Ir.mem_banks <- 1
      | Ir.Bram | Ir.Reg | Ir.Queue ->
        let width =
          List.fold_left
            (fun acc a -> if Ir.mem_equal a.acc_mem m then max acc a.acc_par else acc)
            1 accs
        in
        m.Ir.mem_banks <- width)
    d.d_mems;
  (* Element-wise reductions stream at the width of their source buffer, so
     the accumulator needs matching banks; propagate along reduce chains
     (e.g. GDA's sigmaTile -> sigmaBlk -> sigT) to a fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Traverse.iter_ctrl
      (fun ctrl ->
        match ctrl with
        | Ir.Loop { reduce = Some r; _ } ->
          let src = r.Ir.mr_src and dst = r.Ir.mr_dst in
          if dst.Ir.mem_kind <> Ir.Offchip && dst.Ir.mem_banks < src.Ir.mem_banks then begin
            dst.Ir.mem_banks <- src.Ir.mem_banks;
            changed := true
          end
        | Ir.Loop _ | Ir.Pipe _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ())
      d.d_top
  done

let dedup_mems mems =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m.Ir.mem_id then false
      else begin
        Hashtbl.add seen m.Ir.mem_id ();
        true
      end)
    mems

let mems_by ~write ctrl =
  let collected =
    Traverse.fold_ctrl
      (fun acc c ->
        List.fold_left
          (fun acc a -> if a.acc_write = write then a.acc_mem :: acc else acc)
          acc (ctrl_accesses c))
      [] ctrl
  in
  dedup_mems collected

let written_mems ctrl = mems_by ~write:true ctrl
let read_mems ctrl = mems_by ~write:false ctrl

let infer_double_buffering (d : Ir.design) =
  List.iter (fun m -> m.Ir.mem_double <- false) d.d_mems;
  let mark_cross_stage stages extra_reads =
    (* A buffer written in one stage and read in a later (or earlier —
       loop-carried) stage of a pipelined controller needs double buffering
       so consecutive outer iterations can overlap. *)
    let tagged =
      List.mapi (fun i st -> (i, written_mems st, read_mems st)) stages
    in
    List.iter
      (fun (i, writes, _) ->
        List.iter
          (fun m ->
            let read_elsewhere =
              List.exists
                (fun (j, _, reads) -> j <> i && List.exists (Ir.mem_equal m) reads)
                tagged
              || List.exists (Ir.mem_equal m) extra_reads
            in
            if read_elsewhere && m.Ir.mem_kind <> Ir.Offchip then m.Ir.mem_double <- true)
          writes)
      tagged
  in
  Traverse.iter_ctrl
    (fun ctrl ->
      match ctrl with
      | Ir.Loop { pipelined = true; stages; reduce; _ } ->
        let extra = match reduce with None -> [] | Some r -> [ r.Ir.mr_src ] in
        mark_cross_stage stages extra;
        (* The reduction's source buffer feeds the implicit combine stage. *)
        Option.iter (fun r -> r.Ir.mr_src.Ir.mem_double <- true) reduce
      | Ir.Loop _ | Ir.Pipe _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ())
    d.d_top

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_diags (d : Ir.design) =
  let diags = ref [] in
  let emit ?mem ~code ~path fmt =
    Printf.ksprintf
      (fun message -> diags := Diag.make ~code ~severity:Diag.Error ~path ?mem message :: !diags)
      fmt
  in
  let declared = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace declared m.Ir.mem_id m) d.d_mems;
  let check_declared ~path m =
    if not (Hashtbl.mem declared m.Ir.mem_id) then
      emit ~code:"V003" ~path ~mem:m.Ir.mem_name "memory %s is not declared in the design"
        m.Ir.mem_name
  in
  (* Duplicate ids or names make [Ir.find_mem] and every id-keyed analysis
     silently pick one of the two, so they are structural errors. *)
  let seen_ids = Hashtbl.create 16 and seen_names = Hashtbl.create 16 in
  List.iter
    (fun m ->
      (match Hashtbl.find_opt seen_ids m.Ir.mem_id with
      | Some other ->
        emit ~code:"V002" ~path:[] ~mem:m.Ir.mem_name
          "duplicate memory id %d shared by %s and %s" m.Ir.mem_id other m.Ir.mem_name
      | None -> Hashtbl.add seen_ids m.Ir.mem_id m.Ir.mem_name);
      if Hashtbl.mem seen_names m.Ir.mem_name then
        emit ~code:"V002" ~path:[] ~mem:m.Ir.mem_name "duplicate memory name %s" m.Ir.mem_name
      else Hashtbl.add seen_names m.Ir.mem_name ())
    d.d_mems;
  List.iter
    (fun m ->
      if List.exists (fun dim -> dim <= 0) m.Ir.mem_dims then
        emit ~code:"V001" ~path:[] ~mem:m.Ir.mem_name "memory %s has a non-positive dimension"
          m.Ir.mem_name;
      match m.Ir.mem_kind with
      | Ir.Reg ->
        if m.Ir.mem_dims <> [] then
          emit ~code:"V001" ~path:[] ~mem:m.Ir.mem_name "register %s must be scalar" m.Ir.mem_name
      | Ir.Offchip | Ir.Bram ->
        if m.Ir.mem_dims = [] then
          emit ~code:"V001" ~path:[] ~mem:m.Ir.mem_name "memory %s needs at least one dimension"
            m.Ir.mem_name
      | Ir.Queue -> ())
    d.d_mems;
  let check_counters path counters =
    List.iter
      (fun c ->
        if c.Ir.ctr_step <= 0 then
          emit ~code:"V004" ~path "counter %s has non-positive step" c.Ir.ctr_name;
        if c.Ir.ctr_stop <= c.Ir.ctr_start then
          emit ~code:"V004" ~path "counter %s is empty (start %d, stop %d)" c.Ir.ctr_name
            c.Ir.ctr_start c.Ir.ctr_stop)
      counters
  in
  let check_operand ~path ~bound_iters ~defined = function
    | Ir.Const _ -> ()
    | Ir.Iter name ->
      if not (List.mem name bound_iters) then
        emit ~code:"V006" ~path "iterator %s is not in scope" name
    | Ir.Value v ->
      if not (Hashtbl.mem defined v) then
        emit ~code:"V006" ~path "value v%d used before definition" v
  in
  let check_pipe ~path ~bound_iters loop body reduce =
    if loop.Ir.lp_par < 1 then emit ~code:"V005" ~path "parallelization factor must be >= 1";
    check_counters path loop.Ir.lp_counters;
    let defined = Hashtbl.create 16 in
    let check_addr mem addr =
      let want = List.length mem.Ir.mem_dims in
      if List.length addr <> want then
        emit ~code:"V009" ~path ~mem:mem.Ir.mem_name
          "address arity %d does not match %d-dimensional memory %s" (List.length addr) want
          mem.Ir.mem_name
    in
    List.iter
      (fun stmt ->
        match stmt with
        | Ir.Sop { dst; op; args; _ } ->
          if List.length args <> Op.arity op then
            emit ~code:"V007" ~path "op %s applied to %d args (arity %d)" (Op.name op)
              (List.length args) (Op.arity op);
          List.iter (check_operand ~path ~bound_iters ~defined) args;
          if Hashtbl.mem defined dst then emit ~code:"V006" ~path "value v%d defined twice" dst;
          Hashtbl.replace defined dst ()
        | Ir.Sload { dst; mem; addr; _ } ->
          check_declared ~path mem;
          if mem.Ir.mem_kind <> Ir.Bram then
            emit ~code:"V008" ~path ~mem:mem.Ir.mem_name "Ld targets BRAM, not %s" mem.Ir.mem_name;
          check_addr mem addr;
          List.iter (check_operand ~path ~bound_iters ~defined) addr;
          if Hashtbl.mem defined dst then emit ~code:"V006" ~path "value v%d defined twice" dst;
          Hashtbl.replace defined dst ()
        | Ir.Sstore { mem; addr; data } ->
          check_declared ~path mem;
          if mem.Ir.mem_kind <> Ir.Bram then
            emit ~code:"V008" ~path ~mem:mem.Ir.mem_name "St targets BRAM, not %s" mem.Ir.mem_name;
          check_addr mem addr;
          List.iter (check_operand ~path ~bound_iters ~defined) (data :: addr)
        | Ir.Sread_reg { dst; reg } ->
          check_declared ~path reg;
          if reg.Ir.mem_kind <> Ir.Reg then
            emit ~code:"V008" ~path ~mem:reg.Ir.mem_name "reg read of non-register %s"
              reg.Ir.mem_name;
          if Hashtbl.mem defined dst then emit ~code:"V006" ~path "value v%d defined twice" dst;
          Hashtbl.replace defined dst ()
        | Ir.Swrite_reg { reg; data } ->
          check_declared ~path reg;
          if reg.Ir.mem_kind <> Ir.Reg then
            emit ~code:"V008" ~path ~mem:reg.Ir.mem_name "reg write of non-register %s"
              reg.Ir.mem_name;
          check_operand ~path ~bound_iters ~defined data
        | Ir.Spush { queue; data } ->
          check_declared ~path queue;
          if queue.Ir.mem_kind <> Ir.Queue then
            emit ~code:"V008" ~path ~mem:queue.Ir.mem_name "push into non-queue %s"
              queue.Ir.mem_name;
          check_operand ~path ~bound_iters ~defined data
        | Ir.Spop { dst; queue } ->
          check_declared ~path queue;
          if queue.Ir.mem_kind <> Ir.Queue then
            emit ~code:"V008" ~path ~mem:queue.Ir.mem_name "pop from non-queue %s"
              queue.Ir.mem_name;
          if Hashtbl.mem defined dst then emit ~code:"V006" ~path "value v%d defined twice" dst;
          Hashtbl.replace defined dst ())
      body;
    match reduce with
    | None -> ()
    | Some r ->
      check_declared ~path r.Ir.sr_out;
      if r.Ir.sr_out.Ir.mem_kind <> Ir.Reg then
        emit ~code:"V011" ~path ~mem:r.Ir.sr_out.Ir.mem_name
          "scalar reduce target %s must be a register" r.Ir.sr_out.Ir.mem_name;
      if not (Op.is_reduction_op r.Ir.sr_op) then
        emit ~code:"V011" ~path "%s is not a reduction operator" (Op.name r.Ir.sr_op);
      check_operand ~path ~bound_iters ~defined r.Ir.sr_value
  in
  let check_tile ~path ~offchip ~onchip ~offsets ~tile ~par ~bound_iters =
    check_declared ~path offchip;
    check_declared ~path onchip;
    if offchip.Ir.mem_kind <> Ir.Offchip then
      emit ~code:"V010" ~path ~mem:offchip.Ir.mem_name "%s must be an OffChipMem"
        offchip.Ir.mem_name;
    if onchip.Ir.mem_kind <> Ir.Bram then
      emit ~code:"V010" ~path ~mem:onchip.Ir.mem_name "%s must be a BRAM" onchip.Ir.mem_name;
    if List.length offsets <> List.length offchip.Ir.mem_dims then
      emit ~code:"V010" ~path ~mem:offchip.Ir.mem_name "offset arity does not match %s"
        offchip.Ir.mem_name;
    if List.length tile <> List.length offchip.Ir.mem_dims then
      emit ~code:"V010" ~path ~mem:offchip.Ir.mem_name "tile rank does not match %s"
        offchip.Ir.mem_name;
    if tile <> onchip.Ir.mem_dims then
      emit ~code:"V010" ~path ~mem:onchip.Ir.mem_name "tile shape does not match buffer %s"
        onchip.Ir.mem_name;
    if par < 1 then emit ~code:"V005" ~path "parallelization factor must be >= 1";
    let defined = Hashtbl.create 1 in
    List.iter (check_operand ~path ~bound_iters ~defined) offsets
  in
  let rec walk path bound_iters ctrl =
    let path = path @ [ Ir.ctrl_label ctrl ] in
    let bound_iters =
      match ctrl with
      | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } ->
        bound_iters @ List.map (fun c -> c.Ir.ctr_name) loop.Ir.lp_counters
      | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> bound_iters
    in
    (match ctrl with
    | Ir.Pipe { loop; body; reduce } -> check_pipe ~path ~bound_iters loop body reduce
    | Ir.Loop { loop; stages; reduce; _ } ->
      if loop.Ir.lp_par < 1 then emit ~code:"V005" ~path "parallelization factor must be >= 1";
      check_counters path loop.Ir.lp_counters;
      if stages = [] then emit ~code:"V012" ~path "controller has no stages";
      (match reduce with
      | None -> ()
      | Some r ->
        check_declared ~path r.Ir.mr_src;
        check_declared ~path r.Ir.mr_dst;
        if not (Op.is_reduction_op r.Ir.mr_op) then
          emit ~code:"V011" ~path "%s is not a reduction operator" (Op.name r.Ir.mr_op);
        if r.Ir.mr_src.Ir.mem_dims <> r.Ir.mr_dst.Ir.mem_dims then
          emit ~code:"V011" ~path "reduce buffers %s and %s have different shapes"
            r.Ir.mr_src.Ir.mem_name r.Ir.mr_dst.Ir.mem_name)
    | Ir.Parallel { stages; _ } ->
      if stages = [] then emit ~code:"V012" ~path "parallel container has no stages"
    | Ir.Tile_load { src; dst; offsets; tile; par } ->
      check_tile ~path ~offchip:src ~onchip:dst ~offsets ~tile ~par ~bound_iters
    | Ir.Tile_store { dst; src; offsets; tile; par } ->
      check_tile ~path ~offchip:dst ~onchip:src ~offsets ~tile ~par ~bound_iters);
    List.iter (walk path bound_iters) (Traverse.children ctrl)
  in
  walk [] [] d.d_top;
  List.rev !diags

(* Compatibility shim: the historical flat-string interface, rendered from
   the typed diagnostics as "innermost-label: message" (design-level
   diagnostics stay bare). *)
let validate (d : Ir.design) =
  List.map
    (fun g ->
      match List.rev g.Diag.path with
      | [] -> g.Diag.message
      | label :: _ -> label ^ ": " ^ g.Diag.message)
    (validate_diags d)

let validate_exn d =
  match validate d with
  | [] -> ()
  | errs -> failwith (Printf.sprintf "invalid design %s:\n%s" d.d_name (String.concat "\n" errs))
