(* The typed diagnostic core shared by the well-formedness validator
   (Analysis.validate) and the lint pass framework (Dhdl_lint). It lives in
   dhdl_ir so both layers can emit the same type without a dependency
   cycle. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  path : string list;
  mem : string option;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let make ?(path = []) ?mem ~code ~severity message = { code; severity; path; mem; message }

let makef ?path ?mem ~code ~severity fmt =
  Printf.ksprintf (fun message -> make ?path ?mem ~code ~severity message) fmt

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else Stdlib.compare (a.path, a.mem, a.message) (b.path, b.mem, b.message)

let count severity diags = List.length (List.filter (fun d -> d.severity = severity) diags)

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s -> if severity_rank d.severity < severity_rank s then Some d.severity else acc)
    None diags

let to_string d =
  let where = match d.path with [] -> "" | p -> String.concat "/" p ^ ": " in
  let mem = match d.mem with None -> "" | Some m -> Printf.sprintf " [mem %s]" m in
  Printf.sprintf "%s[%s] %s%s%s" (severity_name d.severity) d.code where d.message mem

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let path = String.concat ", " (List.map (fun p -> "\"" ^ json_escape p ^ "\"") d.path) in
  let mem = match d.mem with None -> "null" | Some m -> "\"" ^ json_escape m ^ "\"" in
  Printf.sprintf
    "{\"code\": \"%s\", \"severity\": \"%s\", \"path\": [%s], \"mem\": %s, \"message\": \"%s\"}"
    (json_escape d.code) (severity_name d.severity) path mem (json_escape d.message)
