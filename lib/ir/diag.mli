(** Typed diagnostics shared by {!Analysis.validate} and the [Dhdl_lint]
    pass framework. A diagnostic pins a machine-readable code (["V..."] for
    well-formedness, ["L..."] for lint passes), a severity, the controller
    path from the design root, the memory involved (when one is), and a
    human-readable message. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** Stable diagnostic code, e.g. ["L001"]. *)
  severity : severity;
  path : string list;  (** Controller labels from the root to the site. *)
  mem : string option;  (** Memory involved, when the diagnostic has one. *)
  message : string;
}

val make : ?path:string list -> ?mem:string -> code:string -> severity:severity -> string -> t

val makef :
  ?path:string list ->
  ?mem:string ->
  code:string ->
  severity:severity ->
  ('a, unit, string, t) format4 ->
  'a
(** [Printf]-style constructor. *)

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_rank : severity -> int
(** [Error] = 0 (most severe), [Warning] = 1, [Info] = 2. *)

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then site. *)

val count : severity -> t list -> int

val max_severity : t list -> severity option
(** Most severe level present; [None] on an empty list. *)

val to_string : t -> string
(** One human-readable line: [severity[code] path: message [mem m]]. *)

val to_json : t -> string
(** One JSON object (hand-rolled, no external dependency). *)

val json_escape : string -> string
