(** The DHDL intermediate representation.

    A design is a hierarchical dataflow graph of architectural templates
    (paper, Table I): primitive nodes inside [Pipe] bodies, on-chip and
    off-chip memories, controllers ([Pipe], [MetaPipe], [Sequential],
    [Parallel], [Counter]) and memory command generators ([TileLd]/[TileSt]).
    Every template is parameterized; a design value here is one *instance*
    of the parameterized program, produced by applying an application's
    generator (see {!module:Dhdl_apps}) to concrete parameter values —
    exactly the metaprogramming flow of the paper. *)

(** {1 Memories} *)

type mem_kind =
  | Offchip  (** [OffChipMem]: N-dimensional DRAM region, tile-accessed. *)
  | Bram  (** On-chip scratchpad built from M20K blocks. *)
  | Reg  (** Non-pipeline register. *)
  | Queue  (** Hardware (priority) queue. *)

type mem = {
  mem_id : int;  (** Unique within a design; identity for analyses. *)
  mem_name : string;
  mem_kind : mem_kind;
  mem_ty : Dtype.t;
  mem_dims : int list;  (** Concrete dimensions; [\[\]] for Reg. *)
  mutable mem_banks : int;  (** Inferred by {!Analysis.infer_banking}. *)
  mutable mem_double : bool;  (** Double-buffered (inferred). *)
}

val mem_words : mem -> int
(** Total element count (product of dimensions; 1 for registers). *)

val mem_bits : mem -> int
(** Total storage bits. *)

val mem_equal : mem -> mem -> bool
(** Identity comparison by [mem_id]. *)

(** {1 Dataflow inside Pipe bodies} *)

type operand =
  | Const of float
  | Iter of string  (** A named loop iterator from an enclosing counter. *)
  | Value of int  (** Result of an earlier statement in the same body. *)

type stmt =
  | Sop of { dst : int; op : Op.t; args : operand list; ty : Dtype.t }
  | Sload of { dst : int; mem : mem; addr : operand list; ty : Dtype.t }
      (** Banked on-chip load ([Ld] in Table I). *)
  | Sstore of { mem : mem; addr : operand list; data : operand }
      (** Banked on-chip store ([St]). *)
  | Sread_reg of { dst : int; reg : mem }
  | Swrite_reg of { reg : mem; data : operand }
  | Spush of { queue : mem; data : operand }
      (** Insert into a priority queue; when full, the largest element is
          evicted (a bounded min-queue, the hardware sorting structure of
          Table I). *)
  | Spop of { dst : int; queue : mem }
      (** Remove and return the smallest element (+infinity when empty). *)

(** {1 Controllers} *)

type counter = {
  ctr_name : string;  (** Iterator name bound in nested bodies. *)
  ctr_start : int;
  ctr_stop : int;  (** Exclusive bound. *)
  ctr_step : int;
}

val counter_trip : counter -> int
(** Number of iterations: ceil((stop - start) / step), clamped to 0 for
    degenerate counters (non-positive step, or stop at/before start) — those
    are reported by {!Analysis.validate_diags} as V004 but must not leak
    negative trip counts into cycle or area math. *)

type pattern = Map_pattern | Reduce_pattern
(** The parallel pattern a controller was generated from; maps replicate in
    parallel, reduces replicate into balanced combine trees (Section III.B.3). *)

type scalar_reduce = {
  sr_op : Op.t;
  sr_out : mem;  (** A [Reg] accumulator. *)
  sr_value : operand;  (** Per-iteration value produced by the body. *)
}

type mem_reduce = {
  mr_op : Op.t;
  mr_src : mem;  (** BRAM produced by the final stage of each iteration. *)
  mr_dst : mem;  (** BRAM accumulator (e.g. [sigT] in the GDA example). *)
}

type loop_info = {
  lp_label : string;
  lp_counters : counter list;  (** Empty list = a one-shot block. *)
  lp_par : int;  (** Parallelization factor (vector width). *)
  lp_pattern : pattern;
}

type ctrl =
  | Pipe of { loop : loop_info; body : stmt list; reduce : scalar_reduce option }
      (** Innermost dataflow pipeline of primitive nodes. *)
  | Loop of { loop : loop_info; pipelined : bool; stages : ctrl list; reduce : mem_reduce option }
      (** [pipelined = true] is a MetaPipe (coarse-grain pipeline across
          stages with handshaking and double buffers), [false] a Sequential.
          The MetaPipe toggle of the paper flips this flag. *)
  | Parallel of { par_label : string; stages : ctrl list }
      (** Fork-join container with a synchronizing barrier. *)
  | Tile_load of { src : mem; dst : mem; offsets : operand list; tile : int list; par : int }
      (** [TileLd]: burst-load a tile of an [Offchip] into a [Bram]. *)
  | Tile_store of { dst : mem; src : mem; offsets : operand list; tile : int list; par : int }
      (** [TileSt]: burst-store a [Bram] tile back to an [Offchip]. *)

val loop_trip : loop_info -> int
(** Total iteration count (product over counters; 1 when empty). *)

val loop_trip_vectorized : loop_info -> int
(** Iteration count after parallelization: ceil(trip / par). *)

val ctrl_label : ctrl -> string

(** {1 Designs} *)

type design = {
  d_name : string;
  d_mems : mem list;  (** Every memory, on- and off-chip. *)
  d_top : ctrl;
  d_params : (string * int) list;  (** Instantiation parameters, for reports. *)
}

val design_hash : design -> int
(** Structural hash (stable across runs); seeds the synthesis-noise model. *)

val param : design -> string -> int
(** Look up an instantiation parameter. Raises [Not_found]. *)

val find_mem : design -> string -> mem
(** Find a memory by name. Raises [Not_found]. *)
