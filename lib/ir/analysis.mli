(** Static analyses over DHDL designs: memory access collection, automatic
    banking, double-buffer inference and well-formedness validation. *)

type access = {
  acc_mem : Ir.mem;
  acc_write : bool;
  acc_par : int;  (** Vector width of the accessing controller. *)
  acc_ctrl : string;  (** Label of the accessing controller. *)
}

val accesses : Ir.design -> access list
(** Every on-chip or off-chip access in the design, including implicit ones:
    tile transfers touch both endpoints, scalar reductions write their
    output register, memory reductions read [mr_src]/read-modify-write
    [mr_dst]. *)

val accesses_of_mem : Ir.design -> Ir.mem -> access list

val infer_banking : Ir.design -> unit
(** Set [mem_banks] of every on-chip memory to the maximum access vector
    width, so on-chip bandwidth matches the parallelization (the paper prunes
    banking as an independent design variable this way, Section IV.C). *)

val infer_double_buffering : Ir.design -> unit
(** Set [mem_double] on buffers communicating between different stages of a
    pipelined [Loop] (MetaPipe), including the per-iteration result buffer of
    a memory reduction. Clears the flag everywhere else. *)

val written_mems : Ir.ctrl -> Ir.mem list
(** Memories written anywhere under the controller (deduplicated). *)

val read_mems : Ir.ctrl -> Ir.mem list

val validate_diags : Ir.design -> Diag.t list
(** Well-formedness diagnostics (all [Diag.Error], codes ["V001"]–["V012"]);
    the empty list means the design is valid. Checks cover: memory shapes
    and duplicate ids/names, declared memories, operand scoping, operator
    arity, address arity vs. dimensionality, counter sanity, parallelization
    factors, tile shapes, reduction legality and iterator scoping. *)

val validate : Ir.design -> string list
(** {!validate_diags} rendered to the historical flat strings
    (["label: message"]); the empty list means the design is valid. *)

val validate_exn : Ir.design -> unit
(** Raises [Failure] with a joined message when {!validate} is non-empty. *)
