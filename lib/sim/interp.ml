module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Obs = Dhdl_obs.Obs

type env = {
  design : Ir.design;
  storage : (int, float array) Hashtbl.t;  (** mem_id -> flat contents *)
  queues : (int, float list ref) Hashtbl.t;  (** mem_id -> sorted contents *)
}

let queue_state env (m : Ir.mem) =
  match Hashtbl.find_opt env.queues m.Ir.mem_id with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace env.queues m.Ir.mem_id q;
    q

let mem_storage env (m : Ir.mem) =
  match Hashtbl.find_opt env.storage m.Ir.mem_id with
  | Some a -> a
  | None ->
    let a = Array.make (max 1 (Ir.mem_words m)) 0.0 in
    Hashtbl.replace env.storage m.Ir.mem_id a;
    a

(* Row-major flattening with bounds checking on every dimension. *)
let flatten_index (m : Ir.mem) idx =
  let rec go dims idx acc =
    match (dims, idx) with
    | [], [] -> acc
    | d :: dims, i :: idx ->
      if i < 0 || i >= d then
        failwith
          (Printf.sprintf "interp: index %d out of bounds [0,%d) in %s" i d m.Ir.mem_name)
      else go dims idx ((acc * d) + i)
    | _ -> failwith (Printf.sprintf "interp: address arity mismatch for %s" m.Ir.mem_name)
  in
  go m.Ir.mem_dims idx 0

type iter_env = (string * int) list

let eval_operand (iters : iter_env) values = function
  | Ir.Const f -> f
  | Ir.Iter name -> (
    match List.assoc_opt name iters with
    | Some i -> float_of_int i
    | None -> failwith (Printf.sprintf "interp: unbound iterator %s" name))
  | Ir.Value v -> (
    match Hashtbl.find_opt values v with
    | Some f -> f
    | None -> failwith (Printf.sprintf "interp: undefined value v%d" v))

let eval_addr iters values addr =
  List.map (fun o -> int_of_float (eval_operand iters values o)) addr

(* Iterate a counter chain, invoking [f] with iterator bindings appended. *)
let iterate_counters counters (iters : iter_env) f =
  let rec go counters iters =
    match counters with
    | [] -> f iters
    | c :: rest ->
      let i = ref c.Ir.ctr_start in
      while !i < c.Ir.ctr_stop do
        go rest (iters @ [ (c.Ir.ctr_name, !i) ]);
        i := !i + c.Ir.ctr_step
      done
  in
  go counters iters

let exec_stmt env iters values stmt =
  match stmt with
  | Ir.Sop { dst; op; args; _ } ->
    let xs = List.map (eval_operand iters values) args in
    Hashtbl.replace values dst (Op.eval op xs)
  | Ir.Sload { dst; mem; addr; _ } ->
    let data = mem_storage env mem in
    let i = flatten_index mem (eval_addr iters values addr) in
    Hashtbl.replace values dst data.(i)
  | Ir.Sstore { mem; addr; data } ->
    let arr = mem_storage env mem in
    let i = flatten_index mem (eval_addr iters values addr) in
    arr.(i) <- eval_operand iters values data
  | Ir.Sread_reg { dst; reg } ->
    let data = mem_storage env reg in
    Hashtbl.replace values dst data.(0)
  | Ir.Swrite_reg { reg; data } ->
    let arr = mem_storage env reg in
    arr.(0) <- eval_operand iters values data
  | Ir.Spush { queue; data } ->
    (* Bounded min-queue: keep contents sorted; evict the largest overflow. *)
    let q = queue_state env queue in
    let v = eval_operand iters values data in
    let sorted = List.sort compare (v :: !q) in
    let depth = max 1 (Ir.mem_words queue) in
    q :=
      (if List.length sorted > depth then List.filteri (fun i _ -> i < depth) sorted else sorted)
  | Ir.Spop { dst; queue } ->
    let q = queue_state env queue in
    (match !q with
    | [] -> Hashtbl.replace values dst infinity
    | smallest :: rest ->
      q := rest;
      Hashtbl.replace values dst smallest)

let exec_pipe env iters (loop : Ir.loop_info) body reduce =
  let acc = ref (match reduce with Some r -> Op.identity_element r.Ir.sr_op | None -> 0.0) in
  let nstmts = List.length body in
  iterate_counters loop.Ir.lp_counters iters (fun iters ->
      if Obs.enabled () then Obs.count ~by:nstmts "interp.stmts";
      let values = Hashtbl.create 16 in
      List.iter (exec_stmt env iters values) body;
      match reduce with
      | None -> ()
      | Some r -> acc := Op.eval r.Ir.sr_op [ !acc; eval_operand iters values r.Ir.sr_value ]);
  match reduce with
  | None -> ()
  | Some r -> (mem_storage env r.Ir.sr_out).(0) <- !acc

let tile_region_iter (offchip : Ir.mem) offsets tile f =
  (* Walk the N-d tile region in row-major order, producing (off-chip flat
     index, on-chip flat index) pairs. *)
  let rec go dims offs tiles pos_off pos_on =
    match (dims, offs, tiles) with
    | [], [], [] -> f pos_off pos_on
    | d :: dims, o :: offs, t :: tiles ->
      for i = 0 to t - 1 do
        let coord = o + i in
        if coord < 0 || coord >= d then
          failwith
            (Printf.sprintf "interp: tile coordinate %d out of bounds [0,%d) in %s" coord d
               offchip.Ir.mem_name);
        go dims offs tiles ((pos_off * d) + coord) ((pos_on * t) + i)
      done
    | _ -> failwith "interp: tile rank mismatch"
  in
  go offchip.Ir.mem_dims offsets tile 0 0

let rec exec_ctrl env (iters : iter_env) ctrl =
  (* Per-controller activation counters: one per entry into the controller,
     matching the performance simulator's breakdown labels. *)
  if Obs.enabled () then Obs.count ("interp.act." ^ Ir.ctrl_label ctrl);
  match ctrl with
  | Ir.Pipe { loop; body; reduce } -> exec_pipe env iters loop body reduce
  | Ir.Loop { loop; stages; reduce; _ } ->
    (* A loop-level reduction accumulates across this loop's iterations
       only: the first iteration initializes the accumulator so each
       execution of the loop (e.g. per output tile in gemm) starts fresh. *)
    let first = ref true in
    iterate_counters loop.Ir.lp_counters iters (fun iters ->
        List.iter (exec_ctrl env iters) stages;
        match reduce with
        | None -> ()
        | Some r ->
          let src = mem_storage env r.Ir.mr_src in
          let dst = mem_storage env r.Ir.mr_dst in
          if !first then Array.blit src 0 dst 0 (Array.length src)
          else Array.iteri (fun i s -> dst.(i) <- Op.eval r.Ir.mr_op [ dst.(i); s ]) src;
          first := false)
  | Ir.Parallel { stages; _ } -> List.iter (exec_ctrl env iters) stages
  | Ir.Tile_load { src; dst; offsets; tile; _ } ->
    let offs = List.map (fun o -> int_of_float (eval_operand iters (Hashtbl.create 1) o)) offsets in
    let src_data = mem_storage env src in
    let dst_data = mem_storage env dst in
    tile_region_iter src offs tile (fun i_off i_on -> dst_data.(i_on) <- src_data.(i_off))
  | Ir.Tile_store { dst; src; offsets; tile; _ } ->
    let offs = List.map (fun o -> int_of_float (eval_operand iters (Hashtbl.create 1) o)) offsets in
    let src_data = mem_storage env src in
    let dst_data = mem_storage env dst in
    tile_region_iter dst offs tile (fun i_off i_on -> dst_data.(i_off) <- src_data.(i_on))

let run design ~inputs =
  Obs.span "interp.run" ~attrs:[ ("design", design.Ir.d_name) ] @@ fun () ->
  let env = { design; storage = Hashtbl.create 16; queues = Hashtbl.create 4 } in
  List.iter
    (fun (name, data) ->
      let m = Ir.find_mem design name in
      if Array.length data <> Ir.mem_words m then
        failwith
          (Printf.sprintf "interp: input %s has %d words, memory expects %d" name
             (Array.length data) (Ir.mem_words m));
      Hashtbl.replace env.storage m.Ir.mem_id (Array.copy data))
    inputs;
  exec_ctrl env [] design.Ir.d_top;
  env

let offchip env name =
  let m = Ir.find_mem env.design name in
  if m.Ir.mem_kind <> Ir.Offchip then raise Not_found;
  Array.copy (mem_storage env m)

let bram env name =
  let m = Ir.find_mem env.design name in
  if m.Ir.mem_kind <> Ir.Bram then raise Not_found;
  Array.copy (mem_storage env m)

let reg env name =
  let m = Ir.find_mem env.design name in
  if m.Ir.mem_kind <> Ir.Reg then raise Not_found;
  (mem_storage env m).(0)

let queue env name =
  let m = Ir.find_mem env.design name in
  if m.Ir.mem_kind <> Ir.Queue then raise Not_found;
  !(queue_state env m)
