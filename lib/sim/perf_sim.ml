module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module Target = Dhdl_device.Target
module Primitives = Dhdl_device.Primitives
module Netlist = Dhdl_synth.Netlist
module Intmath = Dhdl_util.Intmath
module Rng = Dhdl_util.Rng
module Obs = Dhdl_obs.Obs

type result = { cycles : float; seconds : float; dram_bytes : float }

type ctx = {
  dev : Target.t;
  board : Target.board;
  seed : int;
  mutable dram_bytes : float;
}

let word_bytes ty = max 1 (Dtype.bits ty / 8)

(* The proved initiation interval of a Pipe (0 for other controllers),
   from the loop-carried dependence analysis. The cycle estimator calls
   the same function, so estimator and simulator agree by construction. *)
let initiation_interval = Dhdl_absint.Dependence.ii

let contains_transfer ctrl =
  Dhdl_ir.Traverse.fold_ctrl
    (fun acc c -> acc || match c with Ir.Tile_load _ | Ir.Tile_store _ -> true | _ -> false)
    false ctrl

(* Deterministic per-stream efficiency jitter in [1.0, 1.06]: bank conflicts
   and refresh interference the closed-form estimator does not see. *)
let stream_jitter ctx ~key =
  let rng = Rng.create (ctx.seed lxor Hashtbl.hash key) in
  1.0 +. Rng.float rng 0.06

let transfer_cycles ctx ~overlap ~trips ~(offchip : Ir.mem) ~(ty : Dtype.t) ~tile ~label =
  let words = Intmath.prod tile in
  let wb = word_bytes ty in
  let bytes = float_of_int (words * wb) in
  ctx.dram_bytes <- ctx.dram_bytes +. (bytes *. trips);
  (* Commands fetch contiguous rows: the innermost tile dimension if the
     tile spans part of a row, or larger contiguous runs when inner
     dimensions cover the full off-chip extent. *)
  let row_words =
    match (List.rev tile, List.rev offchip.Ir.mem_dims) with
    | [], _ | _, [] -> words
    | t_last :: _, d_last :: _ -> if t_last = d_last then min words (t_last * max 1 (words / t_last)) else t_last
  in
  let row_words = max 1 row_words in
  let ncmds = Intmath.ceil_div words row_words in
  let bytes_per_cmd = row_words * wb in
  let burst = ctx.board.Target.burst_bytes in
  let eff_bytes = float_of_int (ncmds * Intmath.round_up bytes_per_cmd burst) in
  let bw = Target.bytes_per_cycle ctx.board /. float_of_int (max 1 overlap) in
  let jitter = stream_jitter ctx ~key:label in
  float_of_int ctx.board.Target.dram_latency_cycles
  +. (4.0 *. float_of_int ncmds)
  +. (eff_bytes /. bw *. jitter)

let mem_reduce_cycles (loop : Ir.loop_info) (r : Ir.mem_reduce) =
  let words = Ir.mem_words r.Ir.mr_dst in
  (* Lanes match the accumulator's banking (see Netlist.mem_reduce_lanes). *)
  let lanes =
    max (max 1 loop.Ir.lp_par)
      (max (max 1 r.Ir.mr_src.Ir.mem_banks) (max 1 r.Ir.mr_dst.Ir.mem_banks))
  in
  let lat = Primitives.latency r.Ir.mr_op r.Ir.mr_dst.Ir.mem_ty in
  float_of_int (Intmath.ceil_div words lanes + lat + 6)

let rec ctrl_cycles_rec ctx ~overlap ~trips ctrl =
  if Obs.enabled () then Obs.count "sim.ctrl_model_evals";
  match ctrl with
  | Ir.Pipe { loop; reduce; _ } ->
    let trip_vec = Ir.loop_trip_vectorized loop in
    let depth = max 1 (Netlist.pipe_critical_path ctrl) in
    let depth =
      match reduce with
      | None -> depth
      | Some r ->
        (* Balanced combine tree plus the pipelined accumulator. *)
        let lat = Primitives.latency r.Ir.sr_op r.Ir.sr_out.Ir.mem_ty in
        depth + (Intmath.ilog2_ceil (max 2 loop.Ir.lp_par) * lat) + lat
    in
    let ii = initiation_interval ctrl in
    (* Banked parallel access occasionally conflicts (vector lanes hitting
       the same bank), stretching the achieved initiation interval by a few
       percent — visible in measurement, not in the closed-form model. *)
    let stall =
      if loop.Ir.lp_par > 1 then
        let rng = Rng.create (ctx.seed lxor Hashtbl.hash loop.Ir.lp_label) in
        Rng.float rng 0.04
      else 0.0
    in
    float_of_int (depth + 4)
    +. (float_of_int ((trip_vec - 1) * ii) *. (1.0 +. stall))
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    let trip_vec = Ir.loop_trip_vectorized loop in
    let inner_overlap = overlap * max 1 loop.Ir.lp_par in
    let stage_cost =
      let transfer_stages = List.length (List.filter contains_transfer stages) in
      let o = if pipelined then inner_overlap * max 1 transfer_stages else inner_overlap in
      let inner_trips = trips *. float_of_int (Ir.loop_trip loop) in
      List.map (fun st -> ctrl_cycles_rec ctx ~overlap:o ~trips:inner_trips st) stages
    in
    let red = match reduce with None -> [] | Some r -> [ mem_reduce_cycles loop r ] in
    let all_stages = stage_cost @ red in
    let per_stage_sync = 2.0 *. float_of_int (List.length all_stages) in
    if pipelined then begin
      (* Fill the coarse-grain pipeline once, then each further iteration
         costs the slowest stage (the recursive MetaPipe model of IV.B). *)
      let fill = List.fold_left ( +. ) 0.0 all_stages in
      let slowest = List.fold_left max 0.0 all_stages in
      fill +. (float_of_int (trip_vec - 1) *. slowest) +. (2.0 *. float_of_int trip_vec) +. 4.0
    end
    else begin
      let per_iter = List.fold_left ( +. ) 0.0 all_stages +. per_stage_sync in
      (float_of_int trip_vec *. per_iter) +. 4.0
    end
  | Ir.Parallel { stages; _ } ->
    let transfer_stages = List.length (List.filter contains_transfer stages) in
    let o = overlap * max 1 transfer_stages in
    let costs = List.map (fun st -> ctrl_cycles_rec ctx ~overlap:o ~trips st) stages in
    List.fold_left max 0.0 costs +. 3.0
  | Ir.Tile_load { src; dst; tile; _ } ->
    transfer_cycles ctx ~overlap ~trips ~offchip:src ~ty:dst.Ir.mem_ty ~tile
      ~label:("ld_" ^ src.Ir.mem_name ^ dst.Ir.mem_name)
  | Ir.Tile_store { dst; src; tile; _ } ->
    transfer_cycles ctx ~overlap ~trips ~offchip:dst ~ty:src.Ir.mem_ty ~tile
      ~label:("st_" ^ dst.Ir.mem_name ^ src.Ir.mem_name)

let make_ctx dev board design =
  { dev; board; seed = Ir.design_hash design; dram_bytes = 0.0 }

let ctrl_cycles ?(dev = Target.stratix_v) ?(board = Target.max4_maia) ~design ctrl =
  let ctx = make_ctx dev board design in
  ctrl_cycles_rec ctx ~overlap:1 ~trips:1.0 ctrl

(* Per-controller totals: walk like the cycle recursion, but accumulate
   each controller's contribution to the end-to-end total. In a pipelined
   loop only the slowest stage accumulates steady-state weight; the others
   contribute their (hidden) single activation. *)
let breakdown ?(dev = Target.stratix_v) ?(board = Target.max4_maia) design =
  let ctx = make_ctx dev board design in
  let rows = ref [] in
  let rec walk ~overlap ~weight ctrl =
    let own = ctrl_cycles_rec ctx ~overlap ~trips:0.0 ctrl in
    rows := (Ir.ctrl_label ctrl, own, own *. weight) :: !rows;
    (* Per-controller activation counters: [weight] is the steady-state
       activation count this controller contributes to the end-to-end
       total, so the metrics report mirrors the breakdown table. *)
    if Obs.enabled () then
      Obs.count ~by:(max 1 (int_of_float weight)) ("sim.act." ^ Ir.ctrl_label ctrl);
    match ctrl with
    | Ir.Pipe _ | Ir.Tile_load _ | Ir.Tile_store _ -> ()
    | Ir.Parallel { stages; _ } ->
      let transfer_stages = List.length (List.filter contains_transfer stages) in
      List.iter (walk ~overlap:(overlap * max 1 transfer_stages) ~weight) stages
    | Ir.Loop { loop; stages; pipelined; _ } ->
      let trip_vec = float_of_int (Ir.loop_trip_vectorized loop) in
      let inner_overlap = overlap * max 1 loop.Ir.lp_par in
      let o =
        if pipelined then inner_overlap * max 1 (List.length (List.filter contains_transfer stages))
        else inner_overlap
      in
      if pipelined then begin
        (* Steady state repeats only the slowest stage. *)
        let costs = List.map (fun st -> ctrl_cycles_rec ctx ~overlap:o ~trips:0.0 st) stages in
        let slowest = List.fold_left max 0.0 costs in
        List.iter2
          (fun st cost ->
            let w = if cost >= slowest -. 1e-9 then weight *. trip_vec else weight in
            walk ~overlap:o ~weight:w st)
          stages costs
      end
      else List.iter (walk ~overlap:o ~weight:(weight *. trip_vec)) stages
  in
  walk ~overlap:1 ~weight:1.0 design.Ir.d_top;
  let total = List.fold_left (fun acc (_, _, w) -> Float.max acc w) 1.0 !rows in
  List.rev_map (fun (label, own, w) -> (label, own, 100.0 *. w /. total)) !rows

let simulate ?(dev = Target.stratix_v) ?(board = Target.max4_maia) design =
  Obs.span "sim.perf" ~attrs:[ ("design", design.Ir.d_name) ] @@ fun () ->
  let ctx = make_ctx dev board design in
  let cycles = ctrl_cycles_rec ctx ~overlap:1 ~trips:1.0 design.Ir.d_top in
  if Obs.enabled () then Obs.gauge "sim.dram_mb" (ctx.dram_bytes /. 1e6);
  { cycles; seconds = cycles /. (board.Target.fabric_mhz *. 1e6); dram_bytes = ctx.dram_bytes }
