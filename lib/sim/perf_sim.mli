(** Cycle-level performance simulator — the "measured FPGA runtime" of the
    reproduction.

    Walks the controller hierarchy the way the generated hardware executes:
    Pipes fill their pipeline depth then stream one vector of iterations per
    initiation interval; Sequential loops run stage after stage; MetaPipes
    overlap stages with handshaking (fill + (N-1) x slowest stage); Parallel
    containers take the slowest branch plus a barrier. Off-chip transfers
    see a DRAM channel model with command latency, burst-granularity
    rounding, bandwidth sharing between concurrently active streams, and a
    small deterministic per-stream efficiency jitter — the second-order
    effects responsible for the paper's ~6% runtime estimation error. *)

module Target = Dhdl_device.Target

type result = {
  cycles : float;  (** Fabric cycles for one execution of the design. *)
  seconds : float;  (** At the board's fabric clock. *)
  dram_bytes : float;  (** Total off-chip traffic. *)
}

val simulate : ?dev:Target.t -> ?board:Target.board -> Dhdl_ir.Ir.design -> result

val ctrl_cycles :
  ?dev:Target.t -> ?board:Target.board -> design:Dhdl_ir.Ir.design -> Dhdl_ir.Ir.ctrl -> float
(** Cycles of a single controller subtree (used by template characterization
    and by tests). Contention is evaluated within the subtree only. *)

val breakdown :
  ?dev:Target.t -> ?board:Target.board -> Dhdl_ir.Ir.design -> (string * float * float) list
(** Per-controller profile: [(label, cycles of one activation, share of the
    design's total cycles in percent)]. The share weights each controller's
    activation cost by how many times it runs and how much of it is hidden
    by coarse-grained pipelining, so a MetaPipe's dominant stage shows up
    with the largest share — the quantity Section V.C reasons about when it
    identifies each benchmark's bottleneck. *)

val initiation_interval : Dhdl_ir.Ir.ctrl -> int
(** The II the simulator charges a [Pipe] — an alias for
    {!Dhdl_absint.Dependence.ii}, the proved minimal recurrence II: 1 for
    proved-independent bodies, [ceil(latency / distance)] for a carried
    read-modify-write at that dependence distance, the full chain latency
    when the addresses are not analyzable. 0 for non-Pipes. The cycle
    estimator routes through the same function. *)
