(* Loop-carried dependence analysis over the hierarchical DHDL graph.

   Two questions decide how aggressively a Pipe may be scheduled, and both
   reduce to dependence distances between memory accesses:

   - {b Initiation interval}: if iteration [x] stores a word that iteration
     [y > x] loads, the pipeline cannot issue [y] until the read-modify-
     write chain launched at [x] has retired. With the flattened distance
     [d = y - x], the proved initiation interval is [ceil(latency / d)]:
     distance-1 recurrences serialize on the full chain latency, proved-
     independent bodies issue every cycle (II = 1), and non-affine
     addresses fall back to the conservative distance-1 charge. Only
     true (RAW) dependences stall an in-order pipeline — writes retire in
     program order, so WAR and WAW never reorder — but all three kinds are
     computed and reported, and all three gate parallelization.

   - {b Pipelining/parallelization legality}: vectorizing by [par] issues
     [par] consecutive iterations in the same cycle. If two of those lanes
     touch the same word and one writes, the transformation is illegal; the
     checker enumerates the vectors and returns the concrete lane pair and
     iteration vectors as a witness.

   The per-Pipe analysis is body-local and needs no fixpoint: addresses
   are classified into an affine mini-domain over the pipe's own iteration
   indices, with loop-invariant values (outer iterators, registers the
   body never writes, loads at invariant addresses from memories the body
   never stores) tracked as symbolic keys — two accesses with the same key
   provably read the same runtime value, so equal keys cancel when two
   addresses are compared.

   Across [Parallel] stages the same machinery (via the {!Affine} fixpoint
   engine's access facts) proves shared-memory accesses disjoint, upgrades
   them to concrete overlap witnesses, or stays conservative; the L001
   race pass consumes these verdicts.

   This module is the single source of truth for initiation intervals:
   {!Dhdl_model.Cycle_model} and {!Dhdl_sim.Perf_sim} both call {!ii}, so
   the estimator and the simulator agree bit-for-bit by construction. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Diag = Dhdl_ir.Diag
module Analysis = Dhdl_ir.Analysis
module Traverse = Dhdl_ir.Traverse
module Primitives = Dhdl_device.Primitives
module Intmath = Dhdl_util.Intmath

module AE = Engine.Make (Affine)

let delta_cap = 131072 (* max distance-vector box we enumerate *)
let grid_cap = 16384 (* max linearized nest / stage box we enumerate *)

(* ------------------------------------------------------------------ *)
(* The body-local affine domain                                        *)
(* ------------------------------------------------------------------ *)

(* Value of a body expression as a function of the owning pipe's iteration
   indices: [c0 + sum coef * idx(counter) + sum coef * sym], where [terms]
   range over the pipe's own counters (by position, outer->inner, in
   iteration-index space: index 0..trip-1, the counter's start and step
   already folded in) and [base] over loop-invariant symbolic keys. Keys
   are constructed so that equal keys denote equal runtime values. *)
type dform =
  | Aff of { c0 : int; terms : (int * int) list; base : (string * int) list }
  | Unk of string

(* Sorted association lists with duplicate keys merged and zeros dropped. *)
let combine l =
  let l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let rec go = function
    | (k1, c1) :: (k2, c2) :: rest when k1 = k2 -> go ((k1, c1 + c2) :: rest)
    | (_, 0) :: rest -> go rest
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go l

let aff_const k = Aff { c0 = k; terms = []; base = [] }

let aff_add a b =
  match (a, b) with
  | Aff x, Aff y ->
    Aff { c0 = x.c0 + y.c0; terms = combine (x.terms @ y.terms); base = combine (x.base @ y.base) }
  | (Unk _ as u), _ | _, (Unk _ as u) -> u

let aff_scale k = function
  | Aff x ->
    Aff
      {
        c0 = k * x.c0;
        terms = combine (List.map (fun (p, c) -> (p, k * c)) x.terms);
        base = combine (List.map (fun (s, c) -> (s, k * c)) x.base);
      }
  | Unk _ as u -> u

let aff_neg f = aff_scale (-1) f
let invariant = function Aff { terms = []; _ } -> true | Aff _ | Unk _ -> false
let const_of = function Aff { c0; terms = []; base = [] } -> Some c0 | Aff _ | Unk _ -> None

let render_form names = function
  | Unk _ -> "?"
  | Aff { c0; terms; base } ->
    let parts =
      (if c0 <> 0 || (terms = [] && base = []) then [ string_of_int c0 ] else [])
      @ List.map
          (fun (p, c) ->
            if c = 1 then names.(p) else Printf.sprintf "%d*%s" c names.(p))
          terms
      @ List.map (fun (s, c) -> if c = 1 then s else Printf.sprintf "%d*%s" c s) base
    in
    String.concat "+" parts

(* ------------------------------------------------------------------ *)
(* Body classification                                                 *)
(* ------------------------------------------------------------------ *)

type body_access = {
  ba_stmt : int;  (* statement position in the body, for labeling *)
  ba_write : bool;
  ba_mem : Ir.mem;
  ba_forms : dform list;  (* per-dimension abstract address *)
}

(* One forward pass over the (SSA-like) body: classify every value and
   record every word access with its abstract address. *)
let body_accesses (loop : Ir.loop_info) body =
  let counters = Array.of_list loop.Ir.lp_counters in
  let names = Array.map (fun (c : Ir.counter) -> c.Ir.ctr_name) counters in
  let pos = Hashtbl.create 8 in
  (* innermost binding wins, matching the engine's scoping *)
  Array.iteri (fun i c -> Hashtbl.replace pos c.Ir.ctr_name i) counters;
  let stored = Hashtbl.create 4 in
  let written_regs = Hashtbl.create 4 in
  List.iter
    (fun stmt ->
      match stmt with
      | Ir.Sstore { mem; _ } -> Hashtbl.replace stored mem.Ir.mem_id ()
      | Ir.Swrite_reg { reg; _ } -> Hashtbl.replace written_regs reg.Ir.mem_id ()
      | Ir.Sop _ | Ir.Sload _ | Ir.Sread_reg _ | Ir.Spush _ | Ir.Spop _ -> ())
    body;
  let vals = Hashtbl.create 16 in
  let operand = function
    | Ir.Const f ->
      if Float.is_integer f && Float.abs f < 1e9 then aff_const (int_of_float f)
      else Unk "non-integer constant"
    | Ir.Iter nm -> (
      match Hashtbl.find_opt pos nm with
      | Some i ->
        let c = counters.(i) in
        Aff
          {
            c0 = c.Ir.ctr_start;
            terms = (if c.Ir.ctr_step = 0 then [] else [ (i, c.Ir.ctr_step) ]);
            base = [];
          }
      | None -> Aff { c0 = 0; terms = []; base = [ ("it:" ^ nm, 1) ] })
    | Ir.Value v -> (
      match Hashtbl.find_opt vals v with Some f -> f | None -> Unk "undefined value")
  in
  let accs = ref [] in
  List.iteri
    (fun i stmt ->
      match stmt with
      | Ir.Sop { dst; op; args; _ } ->
        let fs = List.map operand args in
        (* A deterministic op over loop-invariant operands is itself
           invariant: its rendered application is the symbolic key. *)
        let composite () =
          if List.exists (function Unk _ -> true | Aff _ -> false) fs then
            Unk (Printf.sprintf "result of %s is not analyzable" (Op.name op))
          else if List.for_all invariant fs then
            Aff
              {
                c0 = 0;
                terms = [];
                base =
                  [
                    ( Printf.sprintf "op:%s(%s)" (Op.name op)
                        (String.concat "," (List.map (render_form names) fs)),
                      1 );
                  ];
              }
          else Unk (Printf.sprintf "result of %s is not affine in the loop counters" (Op.name op))
        in
        let f =
          match (op, fs) with
          | Op.Add, [ a; b ] -> aff_add a b
          | Op.Sub, [ a; b ] -> aff_add a (aff_neg b)
          | Op.Neg, [ a ] -> aff_neg a
          | Op.Mul, [ a; b ] -> (
            match (const_of a, const_of b) with
            | Some k, _ -> aff_scale k b
            | _, Some k -> aff_scale k a
            | None, None -> composite ())
          (* integer affine combination of counters: floor is the identity *)
          | Op.Floor, [ (Aff { base = []; _ } as a) ] -> a
          | _ -> composite ()
        in
        Hashtbl.replace vals dst f
      | Ir.Sload { dst; mem; addr; _ } ->
        let fs = List.map operand addr in
        accs := { ba_stmt = i; ba_write = false; ba_mem = mem; ba_forms = fs } :: !accs;
        let f =
          if Hashtbl.mem stored mem.Ir.mem_id then
            Unk (Printf.sprintf "value loaded from %s, which the body also stores" mem.Ir.mem_name)
          else if List.for_all invariant fs then
            Aff
              {
                c0 = 0;
                terms = [];
                base =
                  [
                    ( Printf.sprintf "ld:%s[%s]" mem.Ir.mem_name
                        (String.concat ";" (List.map (render_form names) fs)),
                      1 );
                  ];
              }
          else
            Unk
              (Printf.sprintf "value loaded from %s at an iteration-dependent address"
                 mem.Ir.mem_name)
        in
        Hashtbl.replace vals dst f
      | Ir.Sstore { mem; addr; _ } ->
        let fs = List.map operand addr in
        accs := { ba_stmt = i; ba_write = true; ba_mem = mem; ba_forms = fs } :: !accs
      | Ir.Sread_reg { dst; reg } ->
        Hashtbl.replace vals dst
          (if Hashtbl.mem written_regs reg.Ir.mem_id then
             Unk (Printf.sprintf "register %s is written in the same body" reg.Ir.mem_name)
           else Aff { c0 = 0; terms = []; base = [ ("reg:" ^ reg.Ir.mem_name, 1) ] })
      | Ir.Spop { dst; _ } -> Hashtbl.replace vals dst (Unk "queue pop")
      | Ir.Swrite_reg _ | Ir.Spush _ -> ())
    body;
  (counters, List.rev !accs)

(* ------------------------------------------------------------------ *)
(* Distance solving                                                    *)
(* ------------------------------------------------------------------ *)

type kind = Raw | War | Waw

let kind_str = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

type witness = {
  wt_mem : string;
  wt_kind : kind;
  wt_src_iters : (string * int) list;  (* counter values at the earlier iteration *)
  wt_dst_iters : (string * int) list;  (* ... and at the later, dependent one *)
  wt_index : int list option;  (* concrete colliding word when fully affine *)
  wt_distance : int;  (* flattened iteration distance *)
}

type status =
  | Independent  (* proved: distinct iterations never touch the same word *)
  | Carried of { distance : int; witness : witness }
  | Unknown of string

(* Weight of counter i in the flattened iteration order: the product of
   the trips strictly inner to it. *)
let weights trips =
  let n = Array.length trips in
  let w = Array.make (max n 1) 1 in
  for i = n - 2 downto 0 do
    w.(i) <- w.(i + 1) * trips.(i + 1)
  done;
  w

type solve_result = Solved of (int * int array) option | Too_large

(* Minimal positive flattened distance [delta . w] over the distance box
   [prod [-(t_i - 1), t_i - 1]] subject to every per-dimension constraint
   [sum coefs_i * delta_i = rhs]. Any in-box [delta] admits a concrete
   iteration pair (x, x + delta), so a solution is a real dependence. *)
let solve_delta ~trips constraints =
  let n = Array.length trips in
  if Array.exists (fun t -> t <= 0) trips then Solved None
  else begin
    let size = Array.fold_left (fun acc t -> acc * ((2 * t) - 1)) 1 trips in
    if size > delta_cap then Too_large
    else begin
      let w = weights trips in
      let delta = Array.make n 0 in
      let best = ref None in
      let rec go i =
        if i = n then begin
          let flat = ref 0 in
          Array.iteri (fun j dj -> flat := !flat + (dj * w.(j))) delta;
          if
            !flat > 0
            && List.for_all
                 (fun (coefs, rhs) ->
                   let s = ref 0 in
                   Array.iteri (fun j dj -> s := !s + (coefs.(j) * dj)) delta;
                   !s = rhs)
                 constraints
          then
            match !best with
            | Some (f0, _) when f0 <= !flat -> ()
            | _ -> best := Some (!flat, Array.copy delta)
        end
        else
          for dj = -(trips.(i) - 1) to trips.(i) - 1 do
            delta.(i) <- dj;
            go (i + 1)
          done
      in
      go 0;
      Solved !best
    end
  end

(* Per-dimension equality constraint between a source access at iteration
   x and a destination access at iteration x + delta. Equal invariant
   parts cancel; equal counter coefficients make the constraint a function
   of delta alone. *)
let dim_constraint nctr fa fb =
  match (fa, fb) with
  | Unk r, _ | _, Unk r -> Error r
  | Aff a, Aff b ->
    if a.base <> b.base then Error "loop-invariant address parts differ"
    else if a.terms <> b.terms then Error "address coefficients differ between the paired accesses"
    else begin
      let coefs = Array.make (max nctr 1) 0 in
      List.iter (fun (p, c) -> coefs.(p) <- c) a.terms;
      Ok (coefs, a.c0 - b.c0)
    end

let eval_dims dims x =
  List.map
    (fun f ->
      match f with
      | Aff { c0; terms; _ } ->
        List.fold_left (fun acc (p, c) -> acc + (c * x.(p))) c0 terms
      | Unk _ -> 0)
    dims

let iter_values counters x =
  Array.to_list
    (Array.mapi
       (fun i (c : Ir.counter) -> (c.Ir.ctr_name, c.Ir.ctr_start + (c.Ir.ctr_step * x.(i))))
       counters)

let pair_status ~counters ~trips ~kind src dst =
  if List.length src.ba_forms <> List.length dst.ba_forms then
    Unknown "address arity differs between the paired accesses"
  else begin
    let n = Array.length trips in
    let rec build acc fas fbs =
      match (fas, fbs) with
      | [], [] -> Ok (List.rev acc)
      | fa :: ra, fb :: rb -> (
        match dim_constraint n fa fb with Error r -> Error r | Ok c -> build (c :: acc) ra rb)
      | _ -> Error "address arity differs"
    in
    match build [] src.ba_forms dst.ba_forms with
    | Error r -> Unknown r
    | Ok constraints -> (
      match solve_delta ~trips constraints with
      | Too_large -> Unknown "iteration space too large to enumerate"
      | Solved None -> Independent
      | Solved (Some (flat, delta)) ->
        let x = Array.mapi (fun i _ -> max 0 (-delta.(i))) delta in
        let y = Array.mapi (fun i xi -> xi + delta.(i)) x in
        let index =
          if List.for_all (function Aff { base = []; _ } -> true | _ -> false) src.ba_forms
          then Some (eval_dims src.ba_forms x)
          else None
        in
        Carried
          {
            distance = flat;
            witness =
              {
                wt_mem = src.ba_mem.Ir.mem_name;
                wt_kind = kind;
                wt_src_iters = iter_values counters x;
                wt_dst_iters = iter_values counters y;
                wt_index = index;
                wt_distance = flat;
              };
          })
  end

(* Order two verdicts about the same unordered pair: a proved dependence
   beats an unknown beats a proved-independent direction. *)
let merge_sym s1 s2 =
  match (s1, s2) with
  | Carried a, Carried b -> if a.distance <= b.distance then s1 else s2
  | (Carried _ as c), _ | _, (Carried _ as c) -> c
  | (Unknown _ as u), _ | _, (Unknown _ as u) -> u
  | Independent, Independent -> Independent

(* ------------------------------------------------------------------ *)
(* Pairs of one Pipe body                                              *)
(* ------------------------------------------------------------------ *)

type pair = {
  p_mem : Ir.mem;
  p_kind : kind;
  p_src : int;  (* body statement index of the source access *)
  p_dst : int;
  p_status : status;
  p_src_affine : (int * (string * int) list) list option;
  p_dst_affine : (int * (string * int) list) list option;
      (* Per-dimension [(c0, [(counter, coef); ...])] in iteration-index
         space, exposed when both accesses are affine with identical
         invariant parts (which then cancel) — the differential oracle
         test replays these against enumerated concrete iterations. *)
}

let exposed_dims (counters : Ir.counter array) src dst =
  let comparable =
    List.length src.ba_forms = List.length dst.ba_forms
    && List.for_all2
         (fun fa fb ->
           match (fa, fb) with Aff a, Aff b -> a.base = b.base | _ -> false)
         src.ba_forms dst.ba_forms
  in
  if not comparable then (None, None)
  else begin
    let expose forms =
      Some
        (List.map
           (function
             | Aff { c0; terms; _ } ->
               (c0, List.map (fun (p, c) -> (counters.(p).Ir.ctr_name, c)) terms)
             | Unk _ -> assert false)
           forms)
    in
    (expose src.ba_forms, expose dst.ba_forms)
  end

let mk_pair ~counters ~trips kind src dst =
  let src_affine, dst_affine = exposed_dims counters src dst in
  let status =
    match kind with
    | Raw | War -> pair_status ~counters ~trips ~kind src dst
    | Waw ->
      if src.ba_stmt = dst.ba_stmt then pair_status ~counters ~trips ~kind src dst
      else
        merge_sym
          (pair_status ~counters ~trips ~kind src dst)
          (pair_status ~counters ~trips ~kind dst src)
  in
  {
    p_mem = src.ba_mem;
    p_kind = kind;
    p_src = src.ba_stmt;
    p_dst = dst.ba_stmt;
    p_status = status;
    p_src_affine = src_affine;
    p_dst_affine = dst_affine;
  }

let group_by_mem accs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let l = try Hashtbl.find tbl a.ba_mem.Ir.mem_id with Not_found -> [] in
      Hashtbl.replace tbl a.ba_mem.Ir.mem_id (a :: l))
    accs;
  Hashtbl.fold (fun _ l acc -> List.rev l :: acc) tbl []

(* RAW pairs only: what the initiation interval needs. *)
let raw_pairs ~counters ~trips accs =
  List.concat_map
    (fun group ->
      let writes = List.filter (fun a -> a.ba_write) group in
      let reads = List.filter (fun a -> not a.ba_write) group in
      List.concat_map (fun w -> List.map (fun r -> mk_pair ~counters ~trips Raw w r) reads) writes)
    (group_by_mem accs)

(* All three kinds, for reporting and legality. *)
let all_pairs ~counters ~trips accs =
  List.concat_map
    (fun group ->
      let writes = List.filter (fun a -> a.ba_write) group in
      let reads = List.filter (fun a -> not a.ba_write) group in
      let raw =
        List.concat_map
          (fun w -> List.map (fun r -> mk_pair ~counters ~trips Raw w r) reads)
          writes
      in
      let war =
        List.concat_map
          (fun r -> List.map (fun w -> mk_pair ~counters ~trips War r w) writes)
          reads
      in
      let rec waw = function
        | [] -> []
        | w :: rest ->
          mk_pair ~counters ~trips Waw w w
          :: (List.map (fun w2 -> mk_pair ~counters ~trips Waw w w2) rest @ waw rest)
      in
      raw @ war @ waw writes)
    (group_by_mem accs)

(* ------------------------------------------------------------------ *)
(* Initiation interval                                                 *)
(* ------------------------------------------------------------------ *)

(* The read-modify-write chain occupies the pipeline for the operand
   fetch/writeback plus the slowest arithmetic stage. *)
let recurrence_latency body =
  2
  + List.fold_left
      (fun acc s ->
        match s with Ir.Sop { op; ty; _ } -> max acc (Primitives.latency op ty) | _ -> acc)
      1 body

let ii_of ~latency pairs =
  List.fold_left
    (fun acc p ->
      match (p.p_kind, p.p_status) with
      | Raw, Carried { distance; _ } -> max acc (Intmath.ceil_div latency distance)
      | Raw, Unknown _ -> max acc latency
      | _ -> acc)
    1 pairs

(* The proved initiation interval of a Pipe; 0 for every other controller
   (they issue no iterations themselves). The single II implementation
   behind both the cycle estimator and the performance simulator. *)
let ii = function
  | Ir.Pipe { loop; body; _ } ->
    let counters, accs = body_accesses loop body in
    let trips = Array.map Ir.counter_trip counters in
    ii_of ~latency:(recurrence_latency body) (raw_pairs ~counters ~trips accs)
  | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> 0

(* The pre-analysis syntactic rule (rotating-address updates pipeline at
   II = 1, every other read-modify-write charges the chain latency), kept
   only to flag pipes where it was pessimistic (L012). *)
let heuristic_ii (loop : Ir.loop_info) body =
  let innermost =
    match List.rev loop.Ir.lp_counters with c :: _ -> Some c.Ir.ctr_name | [] -> None
  in
  let rotating addr =
    match innermost with
    | None -> false
    | Some name -> List.exists (function Ir.Iter n -> n = name | _ -> false) addr
  in
  let stores =
    List.filter_map
      (function Ir.Sstore { mem; addr; _ } -> Some (mem.Ir.mem_id, rotating addr) | _ -> None)
      body
  in
  let unsafe_rmw =
    List.exists
      (function
        | Ir.Sload { mem; addr; _ } ->
          List.exists (fun (id, st_rot) -> id = mem.Ir.mem_id && not (st_rot && rotating addr)) stores
        | _ -> false)
      body
  in
  if unsafe_rmw then recurrence_latency body else 1

(* ------------------------------------------------------------------ *)
(* Vectorization legality                                              *)
(* ------------------------------------------------------------------ *)

type conflict = {
  lc_mem : string;
  lc_kind : kind;
  lc_lane_a : int;
  lc_lane_b : int;
  lc_iters_a : (string * int) list;
  lc_iters_b : (string * int) list;
  lc_index : int list;  (* shared word (loop-invariant offsets cancel) *)
}

let decompose trips flat =
  let n = Array.length trips in
  let x = Array.make n 0 in
  let r = ref flat in
  for i = n - 1 downto 0 do
    if trips.(i) > 0 then begin
      x.(i) <- !r mod trips.(i);
      r := !r / trips.(i)
    end
  done;
  x

(* Search one access pair for two distinct lanes of one vector touching
   the same word. Vector [v] issues the [par] consecutive flattened
   iterations starting at [v * par]; the pair's invariant address parts
   are equal (checked by the caller), so comparing the affine parts is
   exact. A hit is a concrete scheduling violation: two lanes issued in
   the same cycle with a dependence between them. *)
let pair_conflict ~counters ~trips ~par src dst =
  let total = Array.fold_left ( * ) 1 trips in
  if total <= 1 || par <= 1 || total > grid_cap then None
  else begin
    let nvec = (total + par - 1) / par in
    let res = ref None in
    let v = ref 0 in
    while !res = None && !v < nvec do
      let tbl = Hashtbl.create 16 in
      let l = ref 0 in
      while !l < par && (!v * par) + !l < total do
        let x = decompose trips ((!v * par) + !l) in
        let idx = eval_dims src.ba_forms x in
        if not (Hashtbl.mem tbl idx) then Hashtbl.add tbl idx (!l, x);
        incr l
      done;
      let l' = ref 0 in
      while !res = None && !l' < par && (!v * par) + !l' < total do
        let x' = decompose trips ((!v * par) + !l') in
        let idx' = eval_dims dst.ba_forms x' in
        (match Hashtbl.find_opt tbl idx' with
        | Some (l0, x0) when l0 <> !l' ->
          res :=
            Some
              ( l0,
                !l',
                iter_values counters x0,
                iter_values counters x',
                idx' )
        | _ -> ());
        incr l'
      done;
      incr v
    done;
    !res
  end

(* ------------------------------------------------------------------ *)
(* Per-pipe analysis                                                   *)
(* ------------------------------------------------------------------ *)

type pipe_dep = {
  pd_label : string;
  pd_path : string list;
  pd_par : int;
  pd_trip : int;
  pd_latency : int;
  pd_pairs : pair list;
  pd_ii : int;
  pd_heuristic_ii : int;
  pd_conflict : conflict option;
}

let analyze_pipe ~path (loop : Ir.loop_info) body =
  let counters, accs = body_accesses loop body in
  let trips = Array.map Ir.counter_trip counters in
  let pairs = all_pairs ~counters ~trips accs in
  let latency = recurrence_latency body in
  let par = max 1 loop.Ir.lp_par in
  (* Legality: re-pair the raw accesses (the [pair] list only keeps the
     exposed forms) and search each comparable pair for a same-cycle
     collision. *)
  let conflict =
    if par <= 1 then None
    else begin
      let groups = group_by_mem accs in
      let comparable a b =
        List.length a.ba_forms = List.length b.ba_forms
        && List.for_all2
             (fun fa fb -> match (fa, fb) with Aff x, Aff y -> x.base = y.base | _ -> false)
             a.ba_forms b.ba_forms
      in
      List.fold_left
        (fun acc group ->
          match acc with
          | Some _ -> acc
          | None ->
            let writes = List.filter (fun a -> a.ba_write) group in
            let candidates =
              List.concat_map
                (fun w ->
                  List.filter_map
                    (fun other ->
                      if comparable w other then
                        let k =
                          if other.ba_write then Waw
                          else if w.ba_stmt < other.ba_stmt then Raw
                          else War
                        in
                        Some (w, other, k)
                      else None)
                    group)
                writes
            in
            List.fold_left
              (fun acc (w, other, k) ->
                match acc with
                | Some _ -> acc
                | None -> (
                  (* same access, same lane is the same iteration; skip
                     pairing an access with itself only when scalar *)
                  match pair_conflict ~counters ~trips ~par w other with
                  | Some (la, lb, ia, ib, idx) when not (w == other && la = lb) ->
                    Some
                      {
                        lc_mem = w.ba_mem.Ir.mem_name;
                        lc_kind = k;
                        lc_lane_a = la;
                        lc_lane_b = lb;
                        lc_iters_a = ia;
                        lc_iters_b = ib;
                        lc_index = idx;
                      }
                  | _ -> None))
              acc candidates)
        None groups
    end
  in
  {
    pd_label = loop.Ir.lp_label;
    pd_path = path;
    pd_par = par;
    pd_trip = Ir.loop_trip loop;
    pd_latency = latency;
    pd_pairs = pairs;
    pd_ii = ii_of ~latency pairs;
    pd_heuristic_ii = heuristic_ii loop body;
    pd_conflict = conflict;
  }

(* ------------------------------------------------------------------ *)
(* Cross-stage (Parallel) dependences                                  *)
(* ------------------------------------------------------------------ *)

type race_status =
  | Race_disjoint  (* proved: the stages touch disjoint words *)
  | Race_overlap of {
      ro_index : int list;
      ro_iters_a : (string * int) list;
      ro_iters_b : (string * int) list;
    }
  | Race_unknown of string

type race = {
  rc_path : string list;  (* path to the Parallel node *)
  rc_mem : Ir.mem;
  rc_stage_a : string;
  rc_stage_b : string;
  rc_kind : string;  (* "write-write" or "read-write" *)
  rc_status : race_status;
}

let has_prefix prefix path =
  let rec go p q =
    match (p, q) with [], _ -> true | _, [] -> false | a :: p, b :: q -> a = b && go p q
  in
  go prefix path

(* Counter names bound anywhere inside a stage subtree. *)
let stage_bound_names st =
  Traverse.fold_ctrl
    (fun acc c ->
      match c with
      | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } ->
        List.fold_left (fun a (cc : Ir.counter) -> cc.Ir.ctr_name :: a) acc loop.Ir.lp_counters
      | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> acc)
    [] st

(* name -> counter, innermost binding winning. *)
let scope_table scope =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (c : Ir.counter) -> Hashtbl.replace tbl c.Ir.ctr_name c) scope;
  tbl

(* One side of a cross-stage pair: the exact affine address of an access,
   split per dimension into constant + local terms (iterators bound inside
   the stage) and shared terms (outer iterators, equal in both stages at
   any instant the Parallel is active). *)
type side = {
  sd_dims : (int * (string * int) list * (string * int) list) list;
      (* (c0, local terms, shared terms), term coefficients in iterator-value space *)
  sd_scope : (string, Ir.counter) Hashtbl.t;
}

let side_of ~bound ~outer (acc : AE.access) =
  match acc.AE.acc_addr with
  | AE.Stream | AE.Tile _ -> Error "non-word access"
  | AE.Word avs ->
    let rec build acc_dims = function
      | [] -> Ok { sd_dims = List.rev acc_dims; sd_scope = scope_table acc.AE.acc_scope }
      | av :: rest -> (
        match Affine.exact av with
        | None -> Error "non-affine address"
        | Some (c0, terms) ->
          let classify nm =
            let b = List.mem nm bound and o = List.mem nm outer in
            if b && o then `Ambiguous else if b then `Local else if o then `Shared else `Ambiguous
          in
          let rec split locals shareds = function
            | [] -> Ok (List.sort compare locals, List.sort compare shareds)
            | (nm, c) :: ts -> (
              match classify nm with
              | `Ambiguous -> Error ("iterator " ^ nm ^ " is bound both inside and outside the stage")
              | `Local -> split ((nm, c) :: locals) shareds ts
              | `Shared -> split locals ((nm, c) :: shareds) ts)
          in
          match split [] [] terms with
          | Error r -> Error r
          | Ok (locals, shareds) -> build ((c0, locals, shareds) :: acc_dims) rest)
    in
    build [] avs

(* Enumerate the concrete index tuples one side can produce, as a map from
   tuple to the (local) iteration reaching it. Only called when neither
   side has shared terms, so the tuples are exact. *)
let side_tuples side =
  let used =
    List.sort_uniq compare (List.concat_map (fun (_, ls, _) -> List.map fst ls) side.sd_dims)
  in
  let ctrs =
    List.filter_map (fun nm -> Hashtbl.find_opt side.sd_scope nm) used
  in
  if List.length ctrs <> List.length used then None
  else begin
    let ctrs = Array.of_list ctrs in
    let trips = Array.map Ir.counter_trip ctrs in
    let total = Array.fold_left ( * ) 1 trips in
    if total > grid_cap || Array.exists (fun t -> t <= 0) trips then None
    else begin
      let tbl = Hashtbl.create (2 * total) in
      let n = Array.length ctrs in
      let x = Array.make n 0 in
      let rec go i =
        if i = n then begin
          let env = Hashtbl.create 8 in
          Array.iteri
            (fun j (c : Ir.counter) ->
              Hashtbl.replace env c.Ir.ctr_name (c.Ir.ctr_start + (c.Ir.ctr_step * x.(j))))
            ctrs;
          let tup =
            List.map
              (fun (c0, ls, _) ->
                List.fold_left
                  (fun acc (nm, coef) ->
                    acc + (coef * Option.value ~default:0 (Hashtbl.find_opt env nm)))
                  c0 ls)
              side.sd_dims
          in
          if not (Hashtbl.mem tbl tup) then
            Hashtbl.add tbl tup
              (Array.to_list
                 (Array.mapi
                    (fun j (c : Ir.counter) ->
                      (c.Ir.ctr_name, c.Ir.ctr_start + (c.Ir.ctr_step * x.(j))))
                    ctrs))
        end
        else
          for xi = 0 to trips.(i) - 1 do
            x.(i) <- xi;
            go (i + 1)
          done
      in
      go 0;
      Some tbl
    end
  end

(* Value range of the constant + local part of one dimension. *)
let local_range side (c0, locals, _) =
  List.fold_left
    (fun acc (nm, coef) ->
      match acc with
      | None -> None
      | Some (lo, hi) -> (
        match Hashtbl.find_opt side.sd_scope nm with
        | None -> None
        | Some c ->
          let trip = Ir.counter_trip c in
          if trip <= 0 then None
          else begin
            let v1 = c.Ir.ctr_start and v2 = c.Ir.ctr_start + ((trip - 1) * c.Ir.ctr_step) in
            let vlo = min v1 v2 and vhi = max v1 v2 in
            let e1 = coef * vlo and e2 = coef * vhi in
            Some (lo + min e1 e2, hi + max e1 e2)
          end))
    (Some (c0, c0)) locals

(* Verdict for one (write, other) access pair across two stages. *)
let cross_pair_status sa sb =
  if List.length sa.sd_dims <> List.length sb.sd_dims then
    Race_unknown "address arity differs"
  else begin
    let shared_mismatch =
      List.exists2 (fun (_, _, sha) (_, _, shb) -> sha <> shb) sa.sd_dims sb.sd_dims
    in
    if shared_mismatch then Race_unknown "addresses depend on different outer iterators"
    else begin
      let any_shared = List.exists (fun (_, _, sh) -> sh <> []) sa.sd_dims in
      if any_shared then begin
        (* Shared outer terms cancel dimension-wise: interval-disjoint
           local parts in any dimension prove the stages apart. *)
        let disjoint_dim =
          List.exists2
            (fun da db ->
              match (local_range sa da, local_range sb db) with
              | Some (lo_a, hi_a), Some (lo_b, hi_b) -> hi_a < lo_b || hi_b < lo_a
              | _ -> false)
            sa.sd_dims sb.sd_dims
        in
        if disjoint_dim then Race_disjoint
        else Race_unknown "accesses share outer iterators"
      end
      else begin
        match (side_tuples sa, side_tuples sb) with
        | Some ta, Some tb ->
          let hit = ref None in
          Hashtbl.iter
            (fun tup iters_b ->
              if !hit = None then
                match Hashtbl.find_opt ta tup with
                | Some iters_a -> hit := Some (tup, iters_a, iters_b)
                | None -> ())
            tb;
          (match !hit with
          | Some (tup, ia, ib) ->
            Race_overlap { ro_index = tup; ro_iters_a = ia; ro_iters_b = ib }
          | None -> Race_disjoint)
        | _ -> Race_unknown "iteration space too large to enumerate"
      end
    end
  end

(* Combine the pair verdicts for one (stage pair, memory) candidate. *)
let combine_statuses statuses =
  let overlap = List.find_opt (function Race_overlap _ -> true | _ -> false) statuses in
  match overlap with
  | Some o -> o
  | None ->
    if statuses <> [] && List.for_all (function Race_disjoint -> true | _ -> false) statuses
    then Race_disjoint
    else (
      match List.find_opt (function Race_unknown _ -> true | _ -> false) statuses with
      | Some u -> u
      | None -> Race_unknown "no analyzable accesses")

let parallel_races ~(ae : AE.result Lazy.t) ~path ~outer stages =
  let tagged =
    List.mapi
      (fun i st ->
        ( i,
          Ir.ctrl_label st,
          Analysis.written_mems st,
          Analysis.read_mems st,
          stage_bound_names st ))
      stages
  in
  let overlap a b = List.filter (fun m -> List.exists (Ir.mem_equal m) b) a in
  let dedup mems =
    let seen = Hashtbl.create 4 in
    List.filter
      (fun (m : Ir.mem) ->
        if Hashtbl.mem seen m.Ir.mem_id then false
        else begin
          Hashtbl.add seen m.Ir.mem_id ();
          true
        end)
      mems
  in
  let facts_for ~stage_label (m : Ir.mem) =
    List.filter
      (fun (a : AE.access) ->
        a.AE.acc_mem.Ir.mem_id = m.Ir.mem_id && has_prefix (path @ [ stage_label ]) a.AE.acc_path)
      (Lazy.force ae).AE.accesses
  in
  let status_for ~la ~ba ~lb ~bb ~kind (m : Ir.mem) =
    if m.Ir.mem_kind <> Ir.Bram then
      Race_unknown "shared memory is not a word-addressed buffer"
    else begin
      let fa = facts_for ~stage_label:la m and fb = facts_for ~stage_label:lb m in
      let writes l = List.filter (fun (a : AE.access) -> a.AE.acc_write) l in
      let reads l = List.filter (fun (a : AE.access) -> not a.AE.acc_write) l in
      let pairs =
        match kind with
        | `Ww -> List.concat_map (fun w -> List.map (fun w2 -> (w, w2)) (writes fb)) (writes fa)
        | `Rw ->
          List.concat_map (fun w -> List.map (fun r -> (w, r)) (reads fb)) (writes fa)
          @ List.concat_map (fun r -> List.map (fun w -> (r, w)) (writes fb)) (reads fa)
      in
      if pairs = [] then Race_unknown "no analyzable accesses"
      else
        combine_statuses
          (List.map
             (fun (a, b) ->
               match (side_of ~bound:ba ~outer a, side_of ~bound:bb ~outer b) with
               | Ok sa, Ok sb -> cross_pair_status sa sb
               | Error r, _ | _, Error r -> Race_unknown r)
             pairs)
    end
  in
  let races = ref [] in
  List.iter
    (fun (i, li, wi, ri, bi) ->
      List.iter
        (fun (j, lj, wj, rj, bj) ->
          if j > i then begin
            let ww = overlap wi wj in
            let rw =
              List.filter
                (fun m -> not (List.exists (Ir.mem_equal m) ww))
                (overlap wi rj @ overlap ri wj)
            in
            let emit kind_name kind m =
              if m.Ir.mem_kind <> Ir.Queue then
                races :=
                  {
                    rc_path = path;
                    rc_mem = m;
                    rc_stage_a = li;
                    rc_stage_b = lj;
                    rc_kind = kind_name;
                    rc_status = status_for ~la:li ~ba:bi ~lb:lj ~bb:bj ~kind m;
                  }
                  :: !races
            in
            List.iter (emit "write-write" `Ww) (dedup ww);
            List.iter (emit "read-write" `Rw) (dedup rw)
          end)
        tagged)
    tagged;
  List.rev !races

(* ------------------------------------------------------------------ *)
(* Whole-design analysis                                               *)
(* ------------------------------------------------------------------ *)

type report = {
  r_design : string;
  r_pipes : pipe_dep list;
  r_races : race list;
}

let analyze (d : Ir.design) : report =
  let ae = lazy (AE.analyze d) in
  let pipes = ref [] in
  let races = ref [] in
  let rec go path outer ctrl =
    let path = path @ [ Ir.ctrl_label ctrl ] in
    (match ctrl with
    | Ir.Pipe { loop; body; _ } -> pipes := analyze_pipe ~path loop body :: !pipes
    | Ir.Parallel { stages; _ } -> races := !races @ parallel_races ~ae ~path ~outer stages
    | Ir.Loop _ | Ir.Tile_load _ | Ir.Tile_store _ -> ());
    let outer =
      match ctrl with
      | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } ->
        outer @ List.map (fun (c : Ir.counter) -> c.Ir.ctr_name) loop.Ir.lp_counters
      | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> outer
    in
    List.iter (go path outer) (Traverse.children ctrl)
  in
  go [] [] d.Ir.d_top;
  { r_design = d.Ir.d_name; r_pipes = List.rev !pipes; r_races = !races }

(* One-slot cache so the lint passes (L001/L012/L013) and repeated DSE
   probes share a single analysis of the same design value. Domain-local,
   hence safe under the parallel DSE runner. *)
let dls_slot : (Ir.design * report) option ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref None)

let report_cached d =
  let slot = Stdlib.Domain.DLS.get dls_slot in
  match !slot with
  | Some (d0, r) when d0 == d -> r
  | _ ->
    let r = analyze d in
    slot := Some (d, r);
    r

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let iters_str = function
  | [] -> ""
  | ws ->
    Printf.sprintf " at (%s)"
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) ws))

let idx_str l = String.concat ";" (List.map string_of_int l)

(* L012: the syntactic heuristic would have charged a longer II than the
   proved one — cycles the old estimator left on the table. *)
let pessimistic_diags (r : report) =
  List.filter_map
    (fun p ->
      if p.pd_heuristic_ii > p.pd_ii then
        Some
          (Diag.makef ~path:p.pd_path ~code:"L012" ~severity:Diag.Warning
             "pessimistic II on %s: the syntactic recurrence heuristic charges II=%d but the dependence analysis proves II=%d"
             p.pd_label p.pd_heuristic_ii p.pd_ii)
      else None)
    r.r_pipes

(* L013: vectorization proved illegal, with the concrete lane pair. *)
let unsafe_diags (r : report) =
  List.filter_map
    (fun p ->
      match p.pd_conflict with
      | Some k ->
        Some
          (Diag.makef ~path:p.pd_path ~mem:k.lc_mem ~code:"L013" ~severity:Diag.Error
             "unsafe pipelining on %s: par=%d issues lanes %d%s and %d%s in the same cycle but both touch %s[%s] (%s dependence)"
             p.pd_label p.pd_par k.lc_lane_a (iters_str k.lc_iters_a) k.lc_lane_b
             (iters_str k.lc_iters_b) k.lc_mem (idx_str k.lc_index) (kind_str k.lc_kind))
      | None -> None)
    r.r_pipes

(* L001: cross-stage races, now with proved-disjoint pairs dropped and
   proved overlaps carrying a witness. *)
let race_diags (r : report) =
  List.filter_map
    (fun rc ->
      let base =
        Printf.sprintf "%s race on %s between concurrent stages %s and %s" rc.rc_kind
          rc.rc_mem.Ir.mem_name rc.rc_stage_a rc.rc_stage_b
      in
      match rc.rc_status with
      | Race_disjoint -> None
      | Race_overlap o ->
        Some
          (Diag.makef ~path:rc.rc_path ~mem:rc.rc_mem.Ir.mem_name ~code:"L001"
             ~severity:Diag.Error "%s: proved overlap on %s[%s]%s and%s" base
             rc.rc_mem.Ir.mem_name (idx_str o.ro_index) (iters_str o.ro_iters_a)
             (iters_str o.ro_iters_b))
      | Race_unknown _ ->
        Some
          (Diag.makef ~path:rc.rc_path ~mem:rc.rc_mem.Ir.mem_name ~code:"L001"
             ~severity:Diag.Error "%s" base))
    r.r_races

(* ------------------------------------------------------------------ *)
(* Summary and rendering                                               *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_pipes : int;
  s_pairs : int;
  s_independent : int;
  s_carried : int;
  s_unknown : int;
  s_refuted : int;  (* pipes whose vectorization is proved illegal *)
  s_pessimistic : int;  (* pipes where the heuristic overcharged II *)
  s_races_proved : int;
  s_races_disjoint : int;
  s_races_unknown : int;
}

let summarize (r : report) =
  let pairs = ref 0 and ind = ref 0 and car = ref 0 and unk = ref 0 in
  let refuted = ref 0 and pess = ref 0 in
  List.iter
    (fun p ->
      if p.pd_conflict <> None then incr refuted;
      if p.pd_heuristic_ii > p.pd_ii then incr pess;
      List.iter
        (fun pr ->
          incr pairs;
          match pr.p_status with
          | Independent -> incr ind
          | Carried _ -> incr car
          | Unknown _ -> incr unk)
        p.pd_pairs)
    r.r_pipes;
  let rp = ref 0 and rd = ref 0 and ru = ref 0 in
  List.iter
    (fun rc ->
      match rc.rc_status with
      | Race_overlap _ -> incr rp
      | Race_disjoint -> incr rd
      | Race_unknown _ -> incr ru)
    r.r_races;
  {
    s_pipes = List.length r.r_pipes;
    s_pairs = !pairs;
    s_independent = !ind;
    s_carried = !car;
    s_unknown = !unk;
    s_refuted = !refuted;
    s_pessimistic = !pess;
    s_races_proved = !rp;
    s_races_disjoint = !rd;
    s_races_unknown = !ru;
  }

(* No proven violation (unknown pairs are allowed; they are not errors). *)
let clean r =
  let s = summarize r in
  s.s_refuted = 0 && s.s_races_proved = 0

let status_str = function
  | Independent -> "independent"
  | Carried { distance; witness } ->
    Printf.sprintf "carried distance %d (%s%s ->%s)" distance
      (match witness.wt_index with Some idx -> Printf.sprintf "on [%s]" (idx_str idx) | None -> "")
      (iters_str witness.wt_src_iters) (iters_str witness.wt_dst_iters)
  | Unknown reason -> "unknown: " ^ reason

let render_text (r : report) =
  let b = Buffer.create 1024 in
  let s = summarize r in
  Buffer.add_string b (Printf.sprintf "design %s: dependence analysis\n" r.r_design);
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "pipe %s par=%d trip=%d: II=%d (heuristic %d, latency %d)%s\n"
           (String.concat "/" p.pd_path) p.pd_par p.pd_trip p.pd_ii p.pd_heuristic_ii p.pd_latency
           (match p.pd_conflict with
           | Some k ->
             Printf.sprintf " UNSAFE PIPELINING: lanes %d/%d on %s[%s] (%s)" k.lc_lane_a
               k.lc_lane_b k.lc_mem (idx_str k.lc_index) (kind_str k.lc_kind)
           | None -> ""));
      List.iter
        (fun pr ->
          Buffer.add_string b
            (Printf.sprintf "  %s s%d -> s%d on %s: %s\n" (kind_str pr.p_kind) pr.p_src pr.p_dst
               pr.p_mem.Ir.mem_name (status_str pr.p_status)))
        p.pd_pairs)
    r.r_pipes;
  List.iter
    (fun rc ->
      Buffer.add_string b
        (Printf.sprintf "parallel %s: %s race candidate on %s (%s vs %s): %s\n"
           (String.concat "/" rc.rc_path) rc.rc_kind rc.rc_mem.Ir.mem_name rc.rc_stage_a
           rc.rc_stage_b
           (match rc.rc_status with
           | Race_disjoint -> "proved disjoint"
           | Race_overlap o ->
             Printf.sprintf "PROVED OVERLAP on [%s]%s and%s" (idx_str o.ro_index)
               (iters_str o.ro_iters_a) (iters_str o.ro_iters_b)
           | Race_unknown reason -> "unknown: " ^ reason)))
    r.r_races;
  Buffer.add_string b
    (Printf.sprintf
       "summary: %d pipe(s); %d pair(s): %d independent / %d carried / %d unknown; %d unsafe vectorization(s); %d pessimistic II(s); races %d proved / %d disjoint / %d unknown\n"
       s.s_pipes s.s_pairs s.s_independent s.s_carried s.s_unknown s.s_refuted s.s_pessimistic
       s.s_races_proved s.s_races_disjoint s.s_races_unknown);
  Buffer.contents b

let render_json (r : report) =
  let b = Buffer.create 1024 in
  let str s = "\"" ^ Diag.json_escape s ^ "\"" in
  let iters ws =
    "{" ^ String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s:%d" (str n) v) ws) ^ "}"
  in
  let s = summarize r in
  Buffer.add_string b (Printf.sprintf "{\"design\":%s,\"summary\":{" (str r.r_design));
  Buffer.add_string b
    (Printf.sprintf
       "\"pipes\":%d,\"pairs\":%d,\"independent\":%d,\"carried\":%d,\"unknown\":%d,\"unsafe_vectorizations\":%d,\"pessimistic_ii\":%d,\"races_proved\":%d,\"races_disjoint\":%d,\"races_unknown\":%d},"
       s.s_pipes s.s_pairs s.s_independent s.s_carried s.s_unknown s.s_refuted s.s_pessimistic
       s.s_races_proved s.s_races_disjoint s.s_races_unknown);
  Buffer.add_string b "\"pipes\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"label\":%s,\"path\":[%s],\"par\":%d,\"trip\":%d,\"ii\":%d,\"heuristic_ii\":%d,\"latency\":%d,\"pairs\":["
           (str p.pd_label)
           (String.concat "," (List.map str p.pd_path))
           p.pd_par p.pd_trip p.pd_ii p.pd_heuristic_ii p.pd_latency);
      List.iteri
        (fun j pr ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"mem\":%s,\"kind\":%s,\"src\":%d,\"dst\":%d,"
               (str pr.p_mem.Ir.mem_name)
               (str (kind_str pr.p_kind))
               pr.p_src pr.p_dst);
          (match pr.p_status with
          | Independent -> Buffer.add_string b "\"status\":\"independent\"}"
          | Carried { distance; witness } ->
            Buffer.add_string b
              (Printf.sprintf
                 "\"status\":\"carried\",\"distance\":%d,\"witness\":{\"src\":%s,\"dst\":%s%s}}"
                 distance (iters witness.wt_src_iters) (iters witness.wt_dst_iters)
                 (match witness.wt_index with
                 | Some idx -> Printf.sprintf ",\"index\":[%s]" (idx_str idx)
                 | None -> ""))
          | Unknown reason ->
            Buffer.add_string b
              (Printf.sprintf "\"status\":\"unknown\",\"reason\":%s}" (str reason))))
        p.pd_pairs;
      Buffer.add_string b "]";
      (match p.pd_conflict with
      | Some k ->
        Buffer.add_string b
          (Printf.sprintf
             ",\"conflict\":{\"mem\":%s,\"kind\":%s,\"lane_a\":%d,\"lane_b\":%d,\"iters_a\":%s,\"iters_b\":%s,\"index\":[%s]}"
             (str k.lc_mem)
             (str (kind_str k.lc_kind))
             k.lc_lane_a k.lc_lane_b (iters k.lc_iters_a) (iters k.lc_iters_b)
             (idx_str k.lc_index))
      | None -> ());
      Buffer.add_string b "}")
    r.r_pipes;
  Buffer.add_string b "],\"races\":[";
  List.iteri
    (fun i rc ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"path\":[%s],\"mem\":%s,\"kind\":%s,\"stage_a\":%s,\"stage_b\":%s,"
           (String.concat "," (List.map str rc.rc_path))
           (str rc.rc_mem.Ir.mem_name) (str rc.rc_kind) (str rc.rc_stage_a) (str rc.rc_stage_b));
      match rc.rc_status with
      | Race_disjoint -> Buffer.add_string b "\"status\":\"disjoint\"}"
      | Race_overlap o ->
        Buffer.add_string b
          (Printf.sprintf "\"status\":\"overlap\",\"index\":[%s],\"iters_a\":%s,\"iters_b\":%s}"
             (idx_str o.ro_index) (iters o.ro_iters_a) (iters o.ro_iters_b))
      | Race_unknown reason ->
        Buffer.add_string b (Printf.sprintf "\"status\":\"unknown\",\"reason\":%s}" (str reason)))
    r.r_races;
  Buffer.add_string b "]}";
  Buffer.contents b
