(* Top of the abstract-interpretation subsystem: runs the fixpoint engine
   under the interval and affine domains, checks every recorded memory
   access, and packages the results as a per-memory report that the lint
   passes (L009/L010/L011), the DSE pruner and the [dhdl analyze] CLI all
   consume.

   Three checks per design:

   - {b Bounds}: every BRAM word access must stay inside the memory's
     dimensions, and every tile transfer must fit the off-chip extents
     (offsets in range, tile dividing the extent). Proofs come from the
     interval domain, or from exact affine forms evaluated over the
     iteration box (which also yields a concrete witness iteration vector
     on refutation).

   - {b Banking}: for each vectorized access, the parallel lanes must hit
     pairwise-distinct banks each cycle (reads of the same word broadcast).
     The checker searches a family of bankings — flat cyclic with an
     optional block factor, and per-dimension block-cyclic factorizations
     of the bank count (the paper's multidimensional banking) — for one
     scheme serving every access of the memory. Failure under the
     canonical flat cyclic scheme yields a concrete conflicting lane pair.

   - {b Buffering}: {!Liveness} crossings say exactly which memories must
     be double-buffered; memories buffered without a crossing are
     recoverable area.

   Lane analysis is per vector: outer-loop replication (Loop [lp_par])
   duplicates whole datapaths and is charged by the area model, not by the
   banking model (same assumption as {!Dhdl_ir.Analysis.infer_banking}). *)

module Ir = Dhdl_ir.Ir
module Diag = Dhdl_ir.Diag
module Intmath = Dhdl_util.Intmath

module IE = Engine.Make (Interval)
module AE = Engine.Make (Affine)

(* ------------------------------------------------------------------ *)
(* Report types                                                        *)
(* ------------------------------------------------------------------ *)

type witness = {
  w_dim : int;  (* which address/offset/tile dimension *)
  w_value : int;  (* the offending index, offset or tile size *)
  w_lo : int;
  w_hi : int;  (* the valid range for that dimension *)
  w_iters : (string * int) list;  (* iteration vector reaching it *)
  w_desc : string;  (* rendered one-line description *)
}

type bounds_status = Bounds_proved | Bounds_refuted of witness | Bounds_unknown of string

type conflict = {
  k_lane_a : int;
  k_lane_b : int;
  k_index_a : int list;  (* per-dimension indices the two lanes address *)
  k_index_b : int list;
  k_bank : int;  (* the shared bank *)
}

type bank_status =
  | Bank_scalar  (* access is not vectorized; nothing to prove *)
  | Bank_proved of string  (* the banking scheme serving it *)
  | Bank_conflict of conflict
  | Bank_unknown of string

type access_kind = Word | Stream | Tile

type access_info = {
  ai_path : string list;
  ai_write : bool;
  ai_par : int;
  ai_kind : access_kind;
  ai_interval : string list;  (* rendered per-dimension interval *)
  ai_affine : string list;  (* rendered per-dimension affine form *)
  ai_bounds : bounds_status;
  ai_banks : bank_status;
}

type mem_info = {
  mi_mem : Ir.mem;
  mi_accesses : access_info list;
  mi_scheme : string option;  (* banking scheme proving every access *)
  mi_double_required : bool;
  mi_crossing : Liveness.crossing option;  (* why double buffering is needed *)
  mi_spurious_double : bool;  (* buffered without a crossing: wasted area *)
}

type report = {
  r_design : string;
  r_mems : mem_info list;
  r_rounds : int;  (* fixpoint rounds (max of the two domains) *)
}

(* ------------------------------------------------------------------ *)
(* Bounds checking                                                     *)
(* ------------------------------------------------------------------ *)

let counter_values (c : Ir.counter) =
  let trip = Ir.counter_trip c in
  if trip <= 0 then None
  else Some (c.Ir.ctr_start, c.Ir.ctr_start + ((trip - 1) * c.Ir.ctr_step))

(* Iterator name -> value range, innermost binding winning (matches the
   engine's scoping). *)
let scope_ranges scope =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match counter_values c with Some r -> Hashtbl.replace tbl c.Ir.ctr_name r | None -> ())
    scope;
  tbl

(* Extreme of an exact affine form over the iteration box, with the
   assignment reaching it. None if some iterator's range is unavailable. *)
let affine_extreme ~ranges ~maximize (c0, terms) =
  List.fold_left
    (fun acc (n, coef) ->
      match acc with
      | None -> None
      | Some (v, asg) -> (
        match Hashtbl.find_opt ranges n with
        | None -> None
        | Some (lo, hi) ->
          let x = if coef > 0 = maximize then hi else lo in
          Some (v + (coef * x), (n, x) :: asg)))
    (Some (c0, [])) terms
  |> Option.map (fun (v, asg) -> (v, List.rev asg))

let iters_str = function
  | [] -> ""
  | ws ->
    Printf.sprintf " at (%s)"
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) ws))

(* One address dimension against [lo, hi]; [what] phrases the message. *)
let check_dim ~ranges ~what ~lo ~hi ~dim iv av =
  let refute value iters =
    let desc =
      Printf.sprintf "%s %d of dimension %d lies outside [%d..%d]%s" what value dim lo hi
        (iters_str iters)
    in
    Bounds_refuted
      { w_dim = dim; w_value = value; w_lo = lo; w_hi = hi; w_iters = iters; w_desc = desc }
  in
  if Interval.within ~lo ~hi iv then Bounds_proved
  else
    match Affine.exact av with
    | Some form -> (
      match
        (affine_extreme ~ranges ~maximize:true form, affine_extreme ~ranges ~maximize:false form)
      with
      | Some (mx, amx), Some (mn, amn) ->
        if mx > hi then refute mx amx
        else if mn < lo then refute mn amn
        else Bounds_proved
      | _ ->
        Bounds_unknown
          (Printf.sprintf "dimension %d: iterator range unavailable for affine form" dim))
    | None ->
      Bounds_unknown
        (Printf.sprintf "dimension %d: non-affine address with interval %s" dim
           (Interval.to_string iv))

let first_failure checks =
  match List.find_opt (function Bounds_refuted _ -> true | _ -> false) checks with
  | Some r -> r
  | None -> (
    match List.find_opt (function Bounds_unknown _ -> true | _ -> false) checks with
    | Some u -> u
    | None -> Bounds_proved)

(* Word access against the BRAM's dimensions. *)
let check_word_bounds ~ranges (m : Ir.mem) ivs avs =
  if m.Ir.mem_kind <> Ir.Bram then Bounds_proved
  else if List.length ivs <> List.length m.Ir.mem_dims then
    Bounds_unknown "address arity does not match the memory (V009)"
  else
    List.mapi
      (fun dim ((iv, av), n) -> check_dim ~ranges ~what:"index" ~lo:0 ~hi:(n - 1) ~dim iv av)
      (List.combine (List.combine ivs avs) m.Ir.mem_dims)
    |> first_failure

(* Tile transfer against the off-chip extents: the tile must divide the
   extent (the paper's divisor-tile rule, so tiles never overhang) and
   every offset must leave room for a full tile. *)
let check_tile_bounds ~ranges (m : Ir.mem) ~tile ivs avs =
  if List.length ivs <> List.length m.Ir.mem_dims || List.length tile <> List.length m.Ir.mem_dims
  then Bounds_unknown "offset/tile arity does not match the memory (V010)"
  else
    List.mapi
      (fun dim ((iv, av), (extent, t)) ->
        if t <= 0 || extent mod t <> 0 then
          Bounds_refuted
            {
              w_dim = dim;
              w_value = t;
              w_lo = 0;
              w_hi = extent;
              w_iters = [];
              w_desc =
                Printf.sprintf
                  "tile size %d does not divide the off-chip extent %d in dimension %d" t extent
                  dim;
            }
        else check_dim ~ranges ~what:"tile offset" ~lo:0 ~hi:(extent - t) ~dim iv av)
      (List.combine (List.combine ivs avs) (List.combine m.Ir.mem_dims tile))
    |> first_failure

(* ------------------------------------------------------------------ *)
(* Banking: lane patterns                                              *)
(* ------------------------------------------------------------------ *)

(* How the active lanes of one vectorized access spread over the memory,
   as a function of the lane id l. *)
type pattern =
  | P_broadcast  (* every lane addresses the same word *)
  | P_flat  (* element-wise stream: flat addresses base + l *)
  | P_linear of int array  (* per-dim index: base_d + delta_d * l *)
  | P_grid of { coeffs : int array array; trips : int array }
      (* per-dim index: base_d + sum_i coeffs.(d).(i) * x_i(l) with x the
         mixed-radix decomposition of the linearized iteration index *)

type vec = {
  v_write : bool;
  v_par : int;  (* lanes per vector (issue width) *)
  v_eff : int;  (* active lanes: min par (vector trip) *)
  v_pattern : pattern;
  v_base : int array;  (* per-dim index at the iteration-box origin *)
}

type classified = C_scalar | C_vec of vec | C_opaque of string

let grid_cap = 16384 (* max linearized nest size we enumerate *)

(* Classify one explicit word access of memory [m] issued at [par] lanes
   under the owning pipe's [counters] (outer->inner), with the abstract
   affine address [avs]. *)
let classify_word ~ranges (m : Ir.mem) ~counters ~par ~write avs =
  let cs = counters in
  let trips = Array.of_list (List.map Ir.counter_trip cs) in
  let n = Array.length trips in
  let total = Array.fold_left ( * ) 1 trips in
  let ndims = List.length m.Ir.mem_dims in
  if par <= 1 || total <= 1 then C_scalar
  else if List.length avs <> ndims then C_opaque "address arity does not match the memory"
  else begin
    let eff = min par total in
    let steps = Array.of_list (List.map (fun c -> c.Ir.ctr_step) cs) in
    let starts = Array.of_list (List.map (fun c -> c.Ir.ctr_start) cs) in
    (* name -> counter position; later (inner) bindings shadow earlier
       ones, matching the engine's environment *)
    let pos = Hashtbl.create 8 in
    List.iteri (fun i c -> Hashtbl.replace pos c.Ir.ctr_name i) cs;
    (* weight of counter i: product of the trips strictly inner to it *)
    let w = Array.make (max n 1) 1 in
    for i = n - 2 downto 0 do
      w.(i) <- w.(i + 1) * trips.(i + 1)
    done;
    (* counter i takes several values within one vector of [par] lanes iff
       its weight is not a multiple of par (and it runs more than once) *)
    let varying = Array.init n (fun i -> w.(i) mod par <> 0 && trips.(i) > 1) in
    let vnames = List.filteri (fun i _ -> varying.(i)) (List.map (fun c -> c.Ir.ctr_name) cs) in
    let coeffs = Array.make_matrix ndims (max n 1) 0 in
    let base = Array.make ndims 0 in
    let opaque = ref None in
    List.iteri
      (fun d av ->
        match Affine.exact av with
        | Some (c0, terms) ->
          base.(d) <- base.(d) + c0;
          List.iter
            (fun (nm, coef) ->
              match Hashtbl.find_opt pos nm with
              | Some i ->
                (* per-digit coefficient: the iterator advances by its step
                   for each increment of the mixed-radix digit *)
                coeffs.(d).(i) <- coeffs.(d).(i) + (coef * steps.(i));
                base.(d) <- base.(d) + (coef * starts.(i))
              | None -> (
                (* outer iterator: lane-invariant; fold its origin into the
                   base so witnesses are concrete *)
                match Hashtbl.find_opt ranges nm with
                | Some (lo, _) -> base.(d) <- base.(d) + (coef * lo)
                | None -> ()))
            terms
        | None ->
          (* Non-affine index: harmless for banking as long as it cannot
             vary across the lanes of one vector (e.g. kmeans' cluster
             register is fixed while the dimension counter vectorizes). *)
          if Affine.depends_on_any vnames av then
            opaque :=
              Some
                (Printf.sprintf "dimension %d: data-dependent address varies across vector lanes"
                   d))
      avs;
    match !opaque with
    | Some reason -> C_opaque reason
    | None ->
      if eff <= 1 then C_scalar
      else begin
        let lane_varying d =
          Array.exists Fun.id (Array.init n (fun i -> varying.(i) && coeffs.(d).(i) <> 0))
        in
        let any = List.exists lane_varying (List.init ndims Fun.id) in
        if not any then
          C_vec
            { v_write = write; v_par = par; v_eff = eff; v_pattern = P_broadcast; v_base = base }
        else begin
          let inner_only =
            Array.for_all Fun.id (Array.init n (fun i -> (not varying.(i)) || i = n - 1))
          in
          if inner_only && (total <= par || trips.(n - 1) mod par = 0) then
            (* contiguous window of the innermost counter: index is affine
               in the lane id *)
            C_vec
              {
                v_write = write;
                v_par = par;
                v_eff = eff;
                v_pattern = P_linear (Array.init ndims (fun d -> coeffs.(d).(n - 1)));
                v_base = base;
              }
          else if total <= grid_cap then
            C_vec
              {
                v_write = write;
                v_par = par;
                v_eff = eff;
                v_pattern = P_grid { coeffs; trips };
                v_base = base;
              }
          else C_opaque (Printf.sprintf "iteration nest too large to enumerate (%d points)" total)
        end
      end
  end

let classify_stream (m : Ir.mem) ~par ~write =
  let words = Intmath.prod m.Ir.mem_dims in
  if par <= 1 || words <= 1 then C_scalar
  else
    C_vec
      {
        v_write = write;
        v_par = par;
        v_eff = min par words;
        v_pattern = P_flat;
        v_base = Array.make (List.length m.Ir.mem_dims) 0;
      }

(* ------------------------------------------------------------------ *)
(* Banking: schemes                                                    *)
(* ------------------------------------------------------------------ *)

(* A banking scheme maps a word to a bank:
   - [Cyclic]: bank = (flat_address / block) mod banks;
   - [Blocked]: per-dimension factors with product [banks];
     bank tuple component d = (index_d / block_d) mod banks_d. *)
type scheme = Cyclic of { banks : int; block : int } | Blocked of (int * int) array

let scheme_to_string = function
  | Cyclic { banks; block } ->
    if block = 1 then Printf.sprintf "cyclic(%d)" banks
    else Printf.sprintf "block-cyclic(%d, block %d)" banks block
  | Blocked bs ->
    Printf.sprintf "dims(%s)"
      (String.concat " x "
         (Array.to_list
            (Array.map
               (fun (b, s) -> if s = 1 then string_of_int b else Printf.sprintf "%d/%d" b s)
               bs)))

let posmod a b = if b <= 0 then 0 else ((a mod b) + b) mod b

let strides_of dims =
  let n = Array.length dims in
  let s = Array.make (max n 1) 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

let flat_of strides idx =
  let acc = ref 0 in
  Array.iteri (fun d x -> acc := !acc + (x * strides.(d))) idx;
  !acc

let decompose dims flat =
  let n = Array.length dims in
  let idx = Array.make n 0 in
  let r = ref flat in
  for d = n - 1 downto 0 do
    if dims.(d) > 0 then begin
      idx.(d) <- !r mod dims.(d);
      r := !r / dims.(d)
    end
  done;
  idx

(* Bank id of an absolute index tuple under a scheme (for display). *)
let bank_disp ~strides scheme idx =
  match scheme with
  | Cyclic { banks; block } -> posmod (flat_of strides idx / max 1 block) banks
  | Blocked bs ->
    let acc = ref 0 in
    Array.iteri (fun d (b, s) -> acc := (!acc * b) + posmod (idx.(d) / max 1 s) b) bs;
    !acc

(* Translation-invariant bank key of an index tuple, valid for comparing
   lanes of one vector (which share the unknown base): requires block = 1
   so the floor is linear in the index. *)
let bank_key ~strides scheme idx =
  match scheme with
  | Cyclic { banks; _ } -> [ posmod (flat_of strides idx) banks ]
  | Blocked bs -> Array.to_list (Array.mapi (fun d x -> posmod x (fst bs.(d))) idx)

(* Can a run of [p] flat-consecutive words always land on distinct bank
   tuples? Sufficient per-dimension criterion, last dimension first:
   either the whole run fits in the last dimension's banks (needs
   banks | dim so the run's phase never matters), or the run covers whole
   rows (needs a bank per column) and the row count recurses outward. *)
let rec flat_served rev_spec p =
  p <= 1
  ||
  match rev_spec with
  | [] -> false
  | (n, b, s) :: rest ->
    s = 1
    && ((p <= b && n mod b = 0) || (n > 0 && p mod n = 0 && b >= n && flat_served rest (p / n)))

type serve = Served | Unserved of conflict option

let mk_conflict la lb ia ib bank =
  Unserved
    (Some
       {
         k_lane_a = la;
         k_lane_b = lb;
         k_index_a = Array.to_list ia;
         k_index_b = Array.to_list ib;
         k_bank = bank;
       })

(* Enumerate the vectors of a grid pattern under a block = 1 scheme and
   return the first conflicting lane pair (same bank key, and either a
   write or two different words). *)
let grid_search ~write ~par ~base ~coeffs ~trips ~key =
  let n = Array.length trips in
  let ndims = Array.length base in
  let total = Array.fold_left ( * ) 1 trips in
  let w = Array.make (max n 1) 1 in
  for i = n - 2 downto 0 do
    w.(i) <- w.(i + 1) * trips.(i + 1)
  done;
  let index_of l =
    Array.init ndims (fun d ->
        let acc = ref base.(d) in
        for i = 0 to n - 1 do
          acc := !acc + (coeffs.(d).(i) * (l / w.(i) mod trips.(i)))
        done;
        !acc)
  in
  let nvec = (total + par - 1) / par in
  let res = ref None in
  let v = ref 0 in
  while !res = None && !v < nvec do
    let tbl = Hashtbl.create 32 in
    let l = ref 0 in
    while !res = None && !l < par && (!v * par) + !l < total do
      let idx = index_of ((!v * par) + !l) in
      let k = key idx in
      (match Hashtbl.find_opt tbl k with
      | Some (l0, idx0) when write || idx0 <> idx -> res := Some (l0, !l, idx0, idx)
      | Some _ -> () (* same word, read: broadcast *)
      | None -> Hashtbl.add tbl k (!l, idx));
      incr l
    done;
    incr v
  done;
  !res

(* Does [scheme] serve the lanes of [v]? [Unserved (Some k)] is a proven
   conflict; [Unserved None] is a conservative failure. *)
let serves ~dims ~strides scheme (v : vec) : serve =
  let disp = bank_disp ~strides scheme in
  match v.v_pattern with
  | P_broadcast ->
    if not v.v_write then Served else mk_conflict 0 1 v.v_base v.v_base (disp v.v_base)
  | P_flat -> (
    match scheme with
    | Cyclic { banks; block } ->
      if block <> 1 then
        (* adjacent words share a bank: lanes 0 and 1 collide *)
        mk_conflict 0 1 (decompose dims 0) (decompose dims 1) (disp (decompose dims 0))
      else if banks >= v.v_eff then Served
      else mk_conflict 0 banks (decompose dims 0) (decompose dims banks) 0
    | Blocked bs ->
      let spec =
        List.rev (List.mapi (fun d n -> (n, fst bs.(d), snd bs.(d))) (Array.to_list dims))
      in
      if flat_served spec v.v_eff then Served
      else begin
        (* witness from the first run: absolute addresses, any block *)
        let words = Array.fold_left ( * ) 1 dims in
        let tbl = Hashtbl.create 32 in
        let res = ref None in
        let l = ref 0 in
        while !res = None && !l < min v.v_eff words do
          let idx = decompose dims !l in
          let k =
            Array.to_list
              (Array.mapi (fun d x -> posmod (x / max 1 (snd bs.(d))) (fst bs.(d))) idx)
          in
          (match Hashtbl.find_opt tbl k with
          | Some (l0, idx0) -> res := Some (mk_conflict l0 !l idx0 idx (disp idx0))
          | None -> Hashtbl.add tbl k (!l, idx));
          incr l
        done;
        match !res with Some c -> c | None -> Unserved None
      end)
  | P_linear deltas -> (
    match scheme with
    | Cyclic { banks; block } ->
      let c = flat_of strides deltas in
      if c = 0 then
        (* every lane addresses the same word *)
        if v.v_write then mk_conflict 0 1 v.v_base v.v_base (disp v.v_base) else Served
      else if c mod block <> 0 then Unserved None
      else begin
        let m = banks / Intmath.gcd (abs (c / block)) banks in
        if m >= v.v_eff then Served
        else
          let ib = Array.mapi (fun d x -> x + (m * deltas.(d))) v.v_base in
          mk_conflict 0 m v.v_base ib (disp v.v_base)
      end
    | Blocked bs ->
      let usable =
        Array.for_all Fun.id (Array.mapi (fun d (_, s) -> deltas.(d) mod s = 0) bs)
      in
      let period =
        Array.to_list
          (Array.mapi
             (fun d (b, s) ->
               let dl = deltas.(d) in
               if dl = 0 || dl mod s <> 0 then 1 else b / Intmath.gcd (abs (dl / s)) b)
             bs)
        |> List.fold_left Intmath.lcm 1
      in
      if period >= v.v_eff then Served
      else if usable then
        let ib = Array.mapi (fun d x -> x + (period * deltas.(d))) v.v_base in
        mk_conflict 0 period v.v_base ib (disp v.v_base)
      else Unserved None)
  | P_grid { coeffs; trips } ->
    let blocks_one =
      match scheme with
      | Cyclic { block; _ } -> block = 1
      | Blocked bs -> Array.for_all (fun (_, s) -> s = 1) bs
    in
    if not blocks_one then Unserved None
    else (
      match
        grid_search ~write:v.v_write ~par:v.v_par ~base:v.v_base ~coeffs ~trips
          ~key:(bank_key ~strides scheme)
      with
      | None -> Served
      | Some (la, lb, ia, ib) -> mk_conflict la lb ia ib (disp ia))

(* Candidate schemes for a memory, cheapest first: flat cyclic, flat
   block-cyclic at the linear accesses' flat strides, then per-dimension
   factorizations of the bank count crossed with per-dimension blocks. *)
let candidates ~ndims ~strides ~banks vecs =
  let take n l = List.filteri (fun i _ -> i < n) l in
  let lin =
    List.filter_map (fun v -> match v.v_pattern with P_linear d -> Some d | _ -> None) vecs
  in
  let flat_blocks =
    List.map (fun d -> abs (flat_of strides d)) lin
    |> List.filter (fun c -> c > 1 && c <= 65536)
    |> List.sort_uniq compare |> take 4
  in
  let dim_blocks d =
    1
    :: (List.filter_map
          (fun ds ->
            let x = abs ds.(d) in
            if x > 1 && x <= 4096 then Some x else None)
          lin
       |> List.sort_uniq compare |> take 2)
  in
  let cyclics =
    Cyclic { banks; block = 1 } :: List.map (fun c -> Cyclic { banks; block = c }) flat_blocks
  in
  let rec factor k b =
    if k = 0 then if b = 1 then [ [] ] else []
    else
      List.concat_map
        (fun d -> List.map (fun rest -> d :: rest) (factor (k - 1) (b / d)))
        (Intmath.divisors b)
  in
  let rec cart = function
    | [] -> [ [] ]
    | xs :: rest ->
      let r = cart rest in
      List.concat_map (fun x -> List.map (fun t -> x :: t) r) xs
  in
  let blocked =
    if ndims = 0 || banks <= 0 then []
    else
      factor ndims banks
      |> List.concat_map (fun f ->
             cart (List.init ndims dim_blocks)
             |> List.map (fun ss -> Blocked (Array.of_list (List.map2 (fun b s -> (b, s)) f ss))))
  in
  take 256 (cyclics @ blocked)

(* Assign a bank status to every classified access of one memory: find one
   scheme serving all vectorized accesses, or fall back to the canonical
   cyclic scheme for per-access verdicts and witnesses. *)
let solve_mem (m : Ir.mem) entries =
  let dims = Array.of_list m.Ir.mem_dims in
  let strides = strides_of dims in
  let banks = max 1 m.Ir.mem_banks in
  let vecs = List.filter_map (function i, C_vec v -> Some (i, v) | _ -> None) entries in
  let rest =
    List.filter_map
      (function
        | i, C_scalar -> Some (i, Bank_scalar)
        | i, C_opaque r -> Some (i, Bank_unknown r)
        | _, C_vec _ -> None)
      entries
  in
  if vecs = [] then (None, rest)
  else begin
    let cands = candidates ~ndims:(Array.length dims) ~strides ~banks (List.map snd vecs) in
    let all_served s =
      List.for_all
        (fun (_, v) -> match serves ~dims ~strides s v with Served -> true | Unserved _ -> false)
        vecs
    in
    match List.find_opt all_served cands with
    | Some s ->
      let str = scheme_to_string s in
      (Some str, rest @ List.map (fun (i, _) -> (i, Bank_proved str)) vecs)
    | None ->
      let canon = Cyclic { banks; block = 1 } in
      let statuses =
        List.map
          (fun (i, v) ->
            match serves ~dims ~strides canon v with
            | Served -> (i, Bank_proved (scheme_to_string canon))
            | Unserved (Some k) -> (i, Bank_conflict k)
            | Unserved None -> (i, Bank_unknown "no conflict-free banking scheme found"))
          vecs
      in
      (None, rest @ statuses)
  end

(* ------------------------------------------------------------------ *)
(* Whole-design analysis                                               *)
(* ------------------------------------------------------------------ *)

let analyze (d : Ir.design) : report =
  let ie = IE.analyze d in
  let ae = AE.analyze d in
  let ia = Array.of_list ie.IE.accesses in
  let aa = Array.of_list ae.AE.accesses in
  assert (Array.length ia = Array.length aa);
  let n = Array.length ia in
  (* First pass: bounds, rendering, and banking classification. *)
  let partial = Array.make n None in
  let by_mem : (int, (int * classified) list ref) Hashtbl.t = Hashtbl.create 16 in
  let classify_for i (m : Ir.mem) cls =
    let r =
      match Hashtbl.find_opt by_mem m.Ir.mem_id with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add by_mem m.Ir.mem_id r;
        r
    in
    r := (i, cls) :: !r
  in
  for i = 0 to n - 1 do
    let iacc = ia.(i) and aacc = aa.(i) in
    let m = iacc.IE.acc_mem in
    let ranges = scope_ranges aacc.AE.acc_scope in
    let write = iacc.IE.acc_write in
    let par = iacc.IE.acc_par in
    let kind, ivl, afl, bounds, cls =
      match (iacc.IE.acc_addr, aacc.AE.acc_addr) with
      | IE.Word ivs, AE.Word avs ->
        let cls =
          if m.Ir.mem_kind = Ir.Bram then
            classify_word ~ranges m ~counters:aacc.AE.acc_counters ~par ~write avs
          else C_scalar
        in
        ( Word,
          List.map Interval.to_string ivs,
          List.map Affine.to_string avs,
          check_word_bounds ~ranges m ivs avs,
          cls )
      | IE.Stream, AE.Stream ->
        let cls = if m.Ir.mem_kind = Ir.Bram then classify_stream m ~par ~write else C_scalar in
        (Stream, [], [], Bounds_proved, cls)
      | IE.Tile { offsets = ivs; tile }, AE.Tile { offsets = avs; _ } ->
        ( Tile,
          List.map Interval.to_string ivs,
          List.map Affine.to_string avs,
          check_tile_bounds ~ranges m ~tile ivs avs,
          C_scalar )
      | _ -> assert false (* both engines walk the same graph *)
    in
    classify_for i m cls;
    partial.(i) <-
      Some
        {
          ai_path = iacc.IE.acc_path;
          ai_write = write;
          ai_par = par;
          ai_kind = kind;
          ai_interval = ivl;
          ai_affine = afl;
          ai_bounds = bounds;
          ai_banks = Bank_scalar;
        }
  done;
  (* Second pass: per-memory banking proofs. *)
  let schemes = Hashtbl.create 16 in
  let statuses = Hashtbl.create 16 in
  List.iter
    (fun (m : Ir.mem) ->
      match Hashtbl.find_opt by_mem m.Ir.mem_id with
      | None -> ()
      | Some entries ->
        let scheme, sts = solve_mem m (List.rev !entries) in
        Hashtbl.replace schemes m.Ir.mem_id scheme;
        List.iter (fun (i, st) -> Hashtbl.replace statuses i st) sts)
    d.Ir.d_mems;
  let infos =
    Array.mapi
      (fun i p ->
        let p = Option.get p in
        match Hashtbl.find_opt statuses i with Some st -> { p with ai_banks = st } | None -> p)
      partial
  in
  (* Liveness facts. *)
  let required = Liveness.required d in
  let spurious_ids = List.map (fun (m : Ir.mem) -> m.Ir.mem_id) (Liveness.spurious d) in
  let mems =
    List.map
      (fun (m : Ir.mem) ->
        let accs = ref [] in
        for i = n - 1 downto 0 do
          if ia.(i).IE.acc_mem.Ir.mem_id = m.Ir.mem_id then accs := infos.(i) :: !accs
        done;
        {
          mi_mem = m;
          mi_accesses = !accs;
          mi_scheme = Option.join (Hashtbl.find_opt schemes m.Ir.mem_id);
          mi_double_required = Hashtbl.mem required m.Ir.mem_id;
          mi_crossing = Hashtbl.find_opt required m.Ir.mem_id;
          mi_spurious_double = List.mem m.Ir.mem_id spurious_ids;
        })
      d.Ir.d_mems
  in
  { r_design = d.Ir.d_name; r_mems = mems; r_rounds = max ie.IE.rounds ae.AE.rounds }

(* One-slot per-domain cache so the three lint passes (and repeated DSE
   pruning probes) share a single analysis of the same design value.
   Domain-local, hence safe under the parallel DSE runner. *)
let dls_slot : (Ir.design * report) option ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref None)

let report_cached d =
  let slot = Stdlib.Domain.DLS.get dls_slot in
  match !slot with
  | Some (d0, r) when d0 == d -> r
  | _ ->
    let r = analyze d in
    slot := Some (d, r);
    r

(* ------------------------------------------------------------------ *)
(* Summaries and diagnostics                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_accesses : int;
  s_bounds_proved : int;
  s_bounds_refuted : int;
  s_bounds_unknown : int;
  s_banks_proved : int;  (* proved or trivially scalar *)
  s_banks_conflict : int;
  s_banks_unknown : int;
  s_double_required : int;
  s_double_missing : int;
  s_double_spurious : int;
}

let summarize (r : report) =
  let acc = ref 0
  and bp = ref 0
  and br = ref 0
  and bu = ref 0
  and kp = ref 0
  and kc = ref 0
  and ku = ref 0
  and dr = ref 0
  and dm = ref 0
  and ds = ref 0 in
  List.iter
    (fun mi ->
      if mi.mi_double_required then begin
        incr dr;
        if not mi.mi_mem.Ir.mem_double then incr dm
      end;
      if mi.mi_spurious_double then incr ds;
      List.iter
        (fun a ->
          incr acc;
          (match a.ai_bounds with
          | Bounds_proved -> incr bp
          | Bounds_refuted _ -> incr br
          | Bounds_unknown _ -> incr bu);
          match a.ai_banks with
          | Bank_scalar | Bank_proved _ -> incr kp
          | Bank_conflict _ -> incr kc
          | Bank_unknown _ -> incr ku)
        mi.mi_accesses)
    r.r_mems;
  {
    s_accesses = !acc;
    s_bounds_proved = !bp;
    s_bounds_refuted = !br;
    s_bounds_unknown = !bu;
    s_banks_proved = !kp;
    s_banks_conflict = !kc;
    s_banks_unknown = !ku;
    s_double_required = !dr;
    s_double_missing = !dm;
    s_double_spurious = !ds;
  }

(* No proven violation (unknowns are allowed; they are not errors). *)
let clean r =
  let s = summarize r in
  s.s_bounds_refuted = 0 && s.s_banks_conflict = 0

let idx_str l = String.concat ";" (List.map string_of_int l)

(* L009: proven out-of-bounds accesses. *)
let oob_diags (r : report) =
  List.concat_map
    (fun mi ->
      List.filter_map
        (fun a ->
          match a.ai_bounds with
          | Bounds_refuted w ->
            Some
              (Diag.makef ~path:a.ai_path ~mem:mi.mi_mem.Ir.mem_name ~code:"L009"
                 ~severity:Diag.Error "out-of-bounds access on %s: %s" mi.mi_mem.Ir.mem_name
                 w.w_desc)
          | Bounds_proved | Bounds_unknown _ -> None)
        mi.mi_accesses)
    r.r_mems

(* L010: proven same-cycle bank conflicts. *)
let conflict_diags (r : report) =
  List.concat_map
    (fun mi ->
      List.filter_map
        (fun a ->
          match a.ai_banks with
          | Bank_conflict k ->
            Some
              (Diag.makef ~path:a.ai_path ~mem:mi.mi_mem.Ir.mem_name ~code:"L010"
                 ~severity:Diag.Error
                 "bank conflict on %s: lanes %d and %d both hit bank %d of %d (indices [%s] and [%s])"
                 mi.mi_mem.Ir.mem_name k.k_lane_a k.k_lane_b k.k_bank
                 (max 1 mi.mi_mem.Ir.mem_banks) (idx_str k.k_index_a) (idx_str k.k_index_b))
          | Bank_scalar | Bank_proved _ | Bank_unknown _ -> None)
        mi.mi_accesses)
    r.r_mems

(* L011: double buffers no stage crossing requires. *)
let buffer_diags (r : report) =
  List.filter_map
    (fun mi ->
      if mi.mi_spurious_double then
        Some
          (Diag.makef ~mem:mi.mi_mem.Ir.mem_name ~code:"L011" ~severity:Diag.Warning
             "buffer %s is double-buffered but no value crosses a pipelined stage boundary; single buffering halves its BRAM"
             mi.mi_mem.Ir.mem_name)
      else None)
    r.r_mems

let diags r = List.sort Diag.compare (oob_diags r @ conflict_diags r @ buffer_diags r)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let kind_str = function
  | Ir.Offchip -> "offchip"
  | Ir.Bram -> "bram"
  | Ir.Reg -> "reg"
  | Ir.Queue -> "queue"

let access_kind_str = function Word -> "word" | Stream -> "stream" | Tile -> "tile"

let bounds_str = function
  | Bounds_proved -> "in bounds"
  | Bounds_refuted w -> "OUT OF BOUNDS: " ^ w.w_desc
  | Bounds_unknown r -> "bounds unknown: " ^ r

let banks_str = function
  | Bank_scalar -> "scalar"
  | Bank_proved s -> "banks ok: " ^ s
  | Bank_conflict k ->
    Printf.sprintf "BANK CONFLICT: lanes %d/%d on bank %d ([%s] vs [%s])" k.k_lane_a k.k_lane_b
      k.k_bank (idx_str k.k_index_a) (idx_str k.k_index_b)
  | Bank_unknown r -> "banks unknown: " ^ r

let render_text (r : report) =
  let b = Buffer.create 1024 in
  let s = summarize r in
  Buffer.add_string b
    (Printf.sprintf "design %s: abstract interpretation converged in %d round(s)\n" r.r_design
       r.r_rounds);
  List.iter
    (fun mi ->
      let m = mi.mi_mem in
      Buffer.add_string b
        (Printf.sprintf "%s %s[%s] banks=%d%s%s%s\n" (kind_str m.Ir.mem_kind) m.Ir.mem_name
           (String.concat "x" (List.map string_of_int m.Ir.mem_dims))
           m.Ir.mem_banks
           (if m.Ir.mem_double then " double" else "")
           (match mi.mi_scheme with Some sc -> " scheme=" ^ sc | None -> "")
           (if mi.mi_double_required && not m.Ir.mem_double then " MISSING DOUBLE BUFFER"
            else if mi.mi_spurious_double then " spurious double buffer"
            else ""));
      List.iter
        (fun a ->
          Buffer.add_string b
            (Printf.sprintf "  %s %s @ %s par=%d%s: %s; %s\n"
               (if a.ai_write then "store" else "load")
               (access_kind_str a.ai_kind)
               (String.concat "/" a.ai_path) a.ai_par
               (match a.ai_affine with [] -> "" | l -> " [" ^ String.concat " | " l ^ "]")
               (bounds_str a.ai_bounds) (banks_str a.ai_banks)))
        mi.mi_accesses)
    r.r_mems;
  Buffer.add_string b
    (Printf.sprintf
       "summary: %d access(es); bounds %d proved / %d refuted / %d unknown; banking %d ok / %d conflicts / %d unknown; double buffers %d required / %d missing / %d spurious\n"
       s.s_accesses s.s_bounds_proved s.s_bounds_refuted s.s_bounds_unknown s.s_banks_proved
       s.s_banks_conflict s.s_banks_unknown s.s_double_required s.s_double_missing
       s.s_double_spurious);
  Buffer.contents b

let render_json (r : report) =
  let b = Buffer.create 1024 in
  let str s = "\"" ^ Diag.json_escape s ^ "\"" in
  let s = summarize r in
  Buffer.add_string b
    (Printf.sprintf "{\"design\":%s,\"rounds\":%d,\"summary\":{" (str r.r_design) r.r_rounds);
  Buffer.add_string b
    (Printf.sprintf
       "\"accesses\":%d,\"bounds_proved\":%d,\"bounds_refuted\":%d,\"bounds_unknown\":%d,\"banks_ok\":%d,\"bank_conflicts\":%d,\"banks_unknown\":%d,\"double_required\":%d,\"double_missing\":%d,\"double_spurious\":%d},"
       s.s_accesses s.s_bounds_proved s.s_bounds_refuted s.s_bounds_unknown s.s_banks_proved
       s.s_banks_conflict s.s_banks_unknown s.s_double_required s.s_double_missing
       s.s_double_spurious);
  Buffer.add_string b "\"mems\":[";
  List.iteri
    (fun i mi ->
      if i > 0 then Buffer.add_char b ',';
      let m = mi.mi_mem in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"kind\":%s,\"dims\":[%s],\"banks\":%d,\"double\":%b,\"double_required\":%b,\"spurious_double\":%b,"
           (str m.Ir.mem_name) (str (kind_str m.Ir.mem_kind))
           (String.concat "," (List.map string_of_int m.Ir.mem_dims))
           m.Ir.mem_banks m.Ir.mem_double mi.mi_double_required mi.mi_spurious_double);
      (match mi.mi_scheme with
      | Some sc -> Buffer.add_string b (Printf.sprintf "\"scheme\":%s," (str sc))
      | None -> ());
      Buffer.add_string b "\"accesses\":[";
      List.iteri
        (fun j a ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"path\":[%s],\"write\":%b,\"kind\":%s,\"par\":%d,\"address\":[%s],"
               (String.concat "," (List.map str a.ai_path))
               a.ai_write
               (str (access_kind_str a.ai_kind))
               a.ai_par
               (String.concat "," (List.map str a.ai_affine)));
          (match a.ai_bounds with
          | Bounds_proved -> Buffer.add_string b "\"bounds\":{\"status\":\"proved\"},"
          | Bounds_refuted w ->
            Buffer.add_string b
              (Printf.sprintf
                 "\"bounds\":{\"status\":\"refuted\",\"dim\":%d,\"value\":%d,\"range\":[%d,%d],\"iters\":{%s},\"detail\":%s},"
                 w.w_dim w.w_value w.w_lo w.w_hi
                 (String.concat ","
                    (List.map (fun (nm, v) -> Printf.sprintf "%s:%d" (str nm) v) w.w_iters))
                 (str w.w_desc))
          | Bounds_unknown reason ->
            Buffer.add_string b
              (Printf.sprintf "\"bounds\":{\"status\":\"unknown\",\"reason\":%s}," (str reason)));
          match a.ai_banks with
          | Bank_scalar -> Buffer.add_string b "\"banking\":{\"status\":\"scalar\"}}"
          | Bank_proved sc ->
            Buffer.add_string b
              (Printf.sprintf "\"banking\":{\"status\":\"proved\",\"scheme\":%s}}" (str sc))
          | Bank_conflict k ->
            Buffer.add_string b
              (Printf.sprintf
                 "\"banking\":{\"status\":\"conflict\",\"lane_a\":%d,\"lane_b\":%d,\"index_a\":[%s],\"index_b\":[%s],\"bank\":%d}}"
                 k.k_lane_a k.k_lane_b (idx_str k.k_index_a) (idx_str k.k_index_b) k.k_bank)
          | Bank_unknown reason ->
            Buffer.add_string b
              (Printf.sprintf "\"banking\":{\"status\":\"unknown\",\"reason\":%s}}" (str reason)))
        mi.mi_accesses;
      Buffer.add_string b "]}")
    r.r_mems;
  Buffer.add_string b "]}";
  Buffer.contents b
