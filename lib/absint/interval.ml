(* Integer intervals with +/- infinity sentinels. Addresses and iterator
   values in DHDL designs are integral; non-integral constants are rounded
   outward, which keeps the domain sound for bounds checking. Arithmetic
   saturates well below [max_int] so products at paper sizes (hundreds of
   millions of words) can never wrap. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op

type t = Bot | Itv of int * int
(* Invariant: in [Itv (lo, hi)], lo <= hi; lo = min_int means -inf and
   hi = max_int means +inf. Finite bounds satisfy |b| <= big. *)

let name = "interval"
let top = Itv (min_int, max_int)
let bottom = Bot
let is_bottom v = v = Bot
let equal (a : t) b = a = b

(* Any finite bound beyond [big] is treated as infinite; since
   big * big-safe products are checked explicitly, no computation on
   in-invariant values can overflow. *)
let big = max_int / 16
let norm x = if x > big then max_int else if x < -big then min_int else x
let is_pinf x = x = max_int
let is_ninf x = x = min_int

(* Bound addition: same-signed infinities only (lo+lo / hi+hi in adds of
   well-formed intervals), but defend against mixed forms anyway. *)
let addb a b =
  if is_ninf a || is_ninf b then min_int
  else if is_pinf a || is_pinf b then max_int
  else norm (a + b)

let negb a = if is_ninf a then max_int else if is_pinf a then min_int else -a

let mulb a b =
  if a = 0 || b = 0 then 0
  else begin
    let pos = a > 0 = (b > 0) in
    if is_pinf a || is_ninf a || is_pinf b || is_ninf b then
      if pos then max_int else min_int
    else if abs a > big / abs b then if pos then max_int else min_int
    else norm (a * b)
  end

let make lo hi = if lo > hi then Bot else Itv (lo, hi)
let of_bounds lo hi = make (norm lo) (norm hi)

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Itv (al, ah), Itv (bl, bh) -> Itv (min al bl, max ah bh)

let widen old incoming =
  match (old, join old incoming) with
  | Bot, v -> v
  | v, Bot -> v
  | Itv (ol, oh), Itv (jl, jh) ->
    Itv ((if jl < ol then min_int else ol), if jh > oh then max_int else oh)

let of_const f =
  if Float.is_nan f then top
  else begin
    let clampf x = Float.min (Float.of_int big) (Float.max (Float.of_int (-big)) x) in
    let lo = int_of_float (clampf (Float.floor f)) in
    let hi = int_of_float (clampf (Float.ceil f)) in
    of_bounds lo hi
  end

let of_counter (c : Ir.counter) =
  let trip = Ir.counter_trip c in
  if trip <= 0 then Bot
  else Itv (norm c.Ir.ctr_start, norm (c.Ir.ctr_start + ((trip - 1) * c.Ir.ctr_step)))

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> Itv (addb al bl, addb ah bh)

let neg = function Bot -> Bot | Itv (lo, hi) -> Itv (negb hi, negb lo)
let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) ->
    let cs = [ mulb al bl; mulb al bh; mulb ah bl; mulb ah bh ] in
    Itv (List.fold_left min max_int cs, List.fold_left max min_int cs)

let meet_min a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> Itv (min al bl, min ah bh)

let meet_max a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> Itv (max al bl, max ah bh)

let abs_ = function
  | Bot -> Bot
  | Itv (lo, hi) when lo >= 0 -> Itv (lo, hi)
  | Itv (lo, hi) when hi <= 0 -> neg (Itv (lo, hi))
  | Itv (lo, hi) -> Itv (0, max (negb lo) hi)

let bool_itv = Itv (0, 1)

let transfer op args =
  match (op, args) with
  | _, _ when List.exists is_bottom args -> Bot
  | Op.Add, [ a; b ] -> add a b
  | Op.Sub, [ a; b ] -> sub a b
  | Op.Mul, [ a; b ] -> mul a b
  | Op.Neg, [ a ] -> neg a
  | Op.Abs, [ a ] -> abs_ a
  | Op.Min, [ a; b ] -> meet_min a b
  | Op.Max, [ a; b ] -> meet_max a b
  | Op.Floor, [ a ] -> a (* bounds are already integral *)
  | Op.Mux, [ _; a; b ] -> join a b
  | (Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Neq | Op.And | Op.Or | Op.Not), _ -> bool_itv
  | Op.Sqrt, [ Itv (lo, _) ] when lo >= 0 -> Itv (0, max_int)
  | (Op.Div | Op.Sqrt | Op.Exp | Op.Log), _ -> top
  | _ -> top

let load ~addr:_ ~content = content
let pop = top

let bound_str b =
  if is_ninf b then "-inf" else if is_pinf b then "+inf" else string_of_int b

let to_string = function
  | Bot -> "_|_"
  | Itv (lo, hi) when lo = min_int && hi = max_int -> "T"
  | Itv (lo, hi) -> Printf.sprintf "[%s,%s]" (bound_str lo) (bound_str hi)

(* Queries used by the bounds checker. *)

let bounds = function Bot -> None | Itv (lo, hi) -> Some (lo, hi)

(* Is every concrete value within [lo, hi]? Bot is vacuously within. *)
let within ~lo ~hi = function
  | Bot -> true
  | Itv (l, h) -> l >= lo && h <= hi
