(* Stage liveness across pipelined (MetaPipe) loops.

   In a MetaPipe, consecutive outer iterations occupy adjacent stages
   simultaneously, so a value written in one stage and read in another
   (including an earlier stage — a loop-carried read) lives across a stage
   boundary and its memory must be double-buffered. The def/use facts per
   stage come from {!Dhdl_ir.Analysis.written_mems}/[read_mems]; this module
   turns them into explicit crossing witnesses (which loop, which writer
   stage, which reader stage) so the lint passes can cite them, and derives
   the exact set of memories that *require* [mem_double]. The source buffer
   of a mem-reduce feeds the loop's implicit combine stage and always
   crosses. *)

module Ir = Dhdl_ir.Ir
module Analysis = Dhdl_ir.Analysis

type reader = Stage of int * string | Combine

type crossing = {
  cr_loop : string list;  (* path to the pipelined loop *)
  cr_mem : Ir.mem;
  cr_writer : int * string;  (* stage index and label of a writer *)
  cr_reader : reader;
  cr_carried : bool;  (* reader stage precedes the writer (loop-carried) *)
}

let reader_label = function Stage (_, l) -> l | Combine -> "<combine>"

let crossings (d : Ir.design) =
  let out = ref [] in
  let rec go path ctrl =
    let path = path @ [ Ir.ctrl_label ctrl ] in
    (match ctrl with
    | Ir.Loop { pipelined = true; stages; reduce; _ } ->
      let tagged =
        List.mapi
          (fun i st -> (i, Ir.ctrl_label st, Analysis.written_mems st, Analysis.read_mems st))
          stages
      in
      let emit m writer reader carried =
        if m.Ir.mem_kind <> Ir.Offchip then
          out :=
            { cr_loop = path; cr_mem = m; cr_writer = writer; cr_reader = reader;
              cr_carried = carried }
            :: !out
      in
      List.iter
        (fun (i, li, writes, _) ->
          List.iter
            (fun m ->
              List.iter
                (fun (j, lj, _, reads) ->
                  if j <> i && List.exists (Ir.mem_equal m) reads then
                    emit m (i, li) (Stage (j, lj)) (j < i))
                tagged;
              match reduce with
              | Some r when Ir.mem_equal m r.Ir.mr_src -> emit m (i, li) Combine false
              | _ -> ())
            writes)
        tagged;
      (* A reduce source crosses into the combine stage even when no
         explicit stage of this loop writes it (defensive: generators
         always write it in some stage). *)
      (match reduce with
      | Some r
        when not
               (List.exists
                  (fun (_, _, writes, _) -> List.exists (Ir.mem_equal r.Ir.mr_src) writes)
                  tagged) ->
        emit r.Ir.mr_src (-1, "<body>") Combine false
      | _ -> ())
    | Ir.Loop _ | Ir.Pipe _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ());
    List.iter (go path) (Dhdl_ir.Traverse.children ctrl)
  in
  go [] d.Ir.d_top;
  List.rev !out

(* mem_id -> one witness crossing (the first found) for every memory that
   must be double-buffered. *)
let required (d : Ir.design) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c -> if not (Hashtbl.mem tbl c.cr_mem.Ir.mem_id) then Hashtbl.add tbl c.cr_mem.Ir.mem_id c)
    (crossings d);
  tbl

(* Memories with [mem_double] set that no crossing requires: recoverable
   area. Queues are exempt (they are the sanctioned cross-stage channel and
   their buffering is their capacity, not a double buffer). *)
let spurious (d : Ir.design) =
  let req = required d in
  List.filter
    (fun m ->
      m.Ir.mem_double
      && (not (Hashtbl.mem req m.Ir.mem_id))
      && (match m.Ir.mem_kind with Ir.Bram | Ir.Reg -> true | Ir.Offchip | Ir.Queue -> false))
    d.Ir.d_mems

(* Memories a crossing requires but whose [mem_double] is unset: a hazard. *)
let missing (d : Ir.design) =
  let req = required d in
  Hashtbl.fold
    (fun _ c acc ->
      if (not c.cr_mem.Ir.mem_double) && c.cr_mem.Ir.mem_kind <> Ir.Queue then c :: acc else acc)
    req []
  |> List.sort (fun a b -> compare a.cr_mem.Ir.mem_id b.cr_mem.Ir.mem_id)
