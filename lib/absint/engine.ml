(* Generic forward fixpoint engine over the hierarchical DHDL graph.

   The engine is flow-sensitive inside a Pipe body (SSA-like value table
   per interpretation of the body) and flow-insensitive across the control
   hierarchy: every memory (Reg/Bram/Queue/Offchip) gets one abstract cell
   holding the join of its initial value and everything ever stored, and
   the whole design is re-interpreted until the cells stop moving, with
   widening applied from round [widen_round] on. Registers start at their
   hardware reset value (0); all other memories start at top (unknown
   contents).

   Along the way the engine records one access fact per static memory
   access: explicit Sload/Sstore word accesses with their abstract
   per-dimension addresses, the implicit element-wise streams of Loop
   mem-reduces and tile-transfer BRAM endpoints, and the off-chip side of
   tile transfers with the abstract values of its offsets. The checkers in
   {!Absint} consume these facts. *)

module Ir = Dhdl_ir.Ir

module Make (D : Domain.S) = struct
  type addr_form =
    | Word of D.t list  (* explicit per-dimension address *)
    | Stream  (* element-wise sweep of the whole memory, flat stride 1 *)
    | Tile of { offsets : D.t list; tile : int list }
        (* off-chip tile transfer: abstract offsets and the tile shape *)

  type access = {
    acc_path : string list;  (* controller labels from the root *)
    acc_mem : Ir.mem;
    acc_write : bool;
    acc_par : int;  (* vector lanes issuing this access each cycle *)
    acc_addr : addr_form;
    acc_counters : Ir.counter list;  (* vectorized (owning-pipe) counters, outer->inner *)
    acc_scope : Ir.counter list;  (* every counter in scope, outer->inner *)
  }

  type result = {
    accesses : access list;  (* in traversal order *)
    cells : (int, D.t) Hashtbl.t;  (* mem_id -> final abstract content *)
    rounds : int;  (* interpretation rounds to reach the fixpoint *)
  }

  let cell_of result (m : Ir.mem) =
    match Hashtbl.find_opt result.cells m.Ir.mem_id with Some v -> v | None -> D.top

  let widen_round = 3
  let max_rounds = 50

  let analyze (d : Ir.design) =
    let cells = Hashtbl.create 16 in
    let init m =
      match m.Ir.mem_kind with Ir.Reg -> D.of_const 0.0 | Ir.Offchip | Ir.Bram | Ir.Queue -> D.top
    in
    List.iter (fun m -> Hashtbl.replace cells m.Ir.mem_id (init m)) d.Ir.d_mems;
    let cell (m : Ir.mem) =
      match Hashtbl.find_opt cells m.Ir.mem_id with
      | Some v -> v
      | None -> D.top (* undeclared memory: V003's problem, stay sound *)
    in
    let changed = ref false in
    let store_cell ~widen m v =
      let old = cell m in
      let v' = if widen then D.widen old v else D.join old v in
      if not (D.equal old v') then begin
        Hashtbl.replace cells m.Ir.mem_id v';
        changed := true
      end
    in
    let recorded = ref [] in
    let pass ~widen ~collect =
      let record a = if collect then recorded := a :: !recorded in
      (* [scope] accumulates counters root->here; iterator bindings are
         resolved innermost-last so shadowing matches lexical scope. *)
      let bind_env scope =
        let env = Hashtbl.create 16 in
        List.iter (fun c -> Hashtbl.replace env c.Ir.ctr_name (D.of_counter c)) scope;
        env
      in
      let rec go path scope ctrl =
        let path = path @ [ Ir.ctrl_label ctrl ] in
        match ctrl with
        | Ir.Pipe { loop; body; reduce } ->
          let scope = scope @ loop.Ir.lp_counters in
          let env = bind_env scope in
          let vals = Hashtbl.create 16 in
          let operand = function
            | Ir.Const f -> D.of_const f
            | Ir.Iter n -> (match Hashtbl.find_opt env n with Some v -> v | None -> D.top)
            | Ir.Value v -> (match Hashtbl.find_opt vals v with Some x -> x | None -> D.top)
          in
          List.iter
            (fun stmt ->
              match stmt with
              | Ir.Sop { dst; op; args; _ } ->
                Hashtbl.replace vals dst (D.transfer op (List.map operand args))
              | Ir.Sload { dst; mem; addr; _ } ->
                let a = List.map operand addr in
                record
                  {
                    acc_path = path;
                    acc_mem = mem;
                    acc_write = false;
                    acc_par = max 1 loop.Ir.lp_par;
                    acc_addr = Word a;
                    acc_counters = loop.Ir.lp_counters;
                    acc_scope = scope;
                  };
                Hashtbl.replace vals dst (D.load ~addr:a ~content:(cell mem))
              | Ir.Sstore { mem; addr; data } ->
                let a = List.map operand addr in
                record
                  {
                    acc_path = path;
                    acc_mem = mem;
                    acc_write = true;
                    acc_par = max 1 loop.Ir.lp_par;
                    acc_addr = Word a;
                    acc_counters = loop.Ir.lp_counters;
                    acc_scope = scope;
                  };
                store_cell ~widen mem (operand data)
              | Ir.Sread_reg { dst; reg } -> Hashtbl.replace vals dst (cell reg)
              | Ir.Swrite_reg { reg; data } -> store_cell ~widen reg (operand data)
              | Ir.Spush { queue; data } -> store_cell ~widen queue (operand data)
              | Ir.Spop { dst; _ } -> Hashtbl.replace vals dst D.pop)
            body;
          (match reduce with
          | None -> ()
          | Some r ->
            (* out = op(out, value), folded over every iteration. *)
            store_cell ~widen r.Ir.sr_out
              (D.transfer r.Ir.sr_op [ cell r.Ir.sr_out; operand r.Ir.sr_value ]))
        | Ir.Loop { loop; stages; reduce; _ } ->
          let scope = scope @ loop.Ir.lp_counters in
          List.iter (go path scope) stages;
          (match reduce with
          | None -> ()
          | Some r ->
            (* The implicit combine stage streams src into dst
               element-wise at the loop's parallelization. *)
            let par = max 1 loop.Ir.lp_par in
            let fact mem write =
              {
                acc_path = path;
                acc_mem = mem;
                acc_write = write;
                acc_par = par;
                acc_addr = Stream;
                acc_counters = [];
                acc_scope = scope;
              }
            in
            record (fact r.Ir.mr_src false);
            record (fact r.Ir.mr_dst true);
            store_cell ~widen r.Ir.mr_dst
              (D.transfer r.Ir.mr_op [ cell r.Ir.mr_dst; cell r.Ir.mr_src ]))
        | Ir.Parallel { stages; _ } -> List.iter (go path scope) stages
        | Ir.Tile_load { src; dst; offsets; tile; par; _ }
        | Ir.Tile_store { dst = src; src = dst; offsets; tile; par; _ } ->
          (* [src] is the off-chip side, [dst] the BRAM side, for both
             directions (the pattern above swaps Tile_store's fields). *)
          let write_onchip = match ctrl with Ir.Tile_load _ -> true | _ -> false in
          let env = bind_env scope in
          let operand = function
            | Ir.Const f -> D.of_const f
            | Ir.Iter n -> (match Hashtbl.find_opt env n with Some v -> v | None -> D.top)
            | Ir.Value _ -> D.top (* offsets cannot reference pipe values *)
          in
          let offs = List.map operand offsets in
          record
            {
              acc_path = path;
              acc_mem = src;
              acc_write = not write_onchip;
              acc_par = max 1 par;
              acc_addr = Tile { offsets = offs; tile };
              acc_counters = [];
              acc_scope = scope;
            };
          record
            {
              acc_path = path;
              acc_mem = dst;
              acc_write = write_onchip;
              acc_par = max 1 par;
              acc_addr = Stream;
              acc_counters = [];
              acc_scope = scope;
            };
          (* Transferred data has unknown shape either way. *)
          store_cell ~widen (if write_onchip then dst else src) D.top
      in
      go [] [] d.Ir.d_top
    in
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !rounds < max_rounds do
      incr rounds;
      changed := false;
      pass ~widen:(!rounds >= widen_round) ~collect:false;
      continue_ := !changed
    done;
    (* Cells are stable; one more pass records the access facts. *)
    pass ~widen:true ~collect:true;
    { accesses = List.rev !recorded; cells; rounds = !rounds }
end
