(* Parametric abstract interpretation: symbolic legality predicates.

   The concrete passes (Absint bounds/banking, Dependence pipelining)
   prove or refute one *elaborated* design at a time, so a cold sweep
   pays generate+analyze for every sampled point even though every point
   of one app shares a graph skeleton and differs only in the numbers a
   binding pins. This module lifts those checks to the *parameter vector*
   once per skeleton:

   - values are affine expressions with exact rational coefficients over
     the named design parameters ({!Expr});
   - each check the concrete passes perform becomes a {!check}: an
     optional conjunction of linear inequalities / divisibility atoms
     whose truth implies the concrete check is clean, plus a list of
     refutation clauses whose truth implies the concrete pass refutes
     with the same diagnostic code;
   - {!Predicate.eval} decides a fresh binding in microseconds, without
     elaborating the design: [Refuted] points skip generation entirely,
     [Legal] points skip the concrete absint re-proof, and anything the
     symbolic domain cannot settle stays [Unknown] and falls back to the
     full pipeline.

   Derivation is empirical-but-validated rather than re-implemented: a
   handful of *probe* designs (concrete points of the same skeleton) are
   elaborated and run through the very same {!Engine}/{!Absint}/
   {!Dependence} code the per-point pipeline uses, numeric slots (counter
   bounds, address constants, memory extents, par factors, tile sizes)
   are fitted as exact affine functions of the parameters by rational
   Gaussian elimination validated against every probe, and the closed
   forms of the checks are rebuilt over those expressions. Anything that
   does not fit the affine model — data-dependent addresses, banking's
   scheme search, parameter-dependent loop nests — is never guessed at:
   refutation clauses are only emitted where the concrete checker's
   decision is reproduced exactly, and the [Legal] side additionally
   requires a probe-certified residual check per diagnostic code (marked
   [assumed]) plus a demotion pass that strikes any clause a probe
   contradicts. Soundness is pinned end-to-end by the differential
   oracle in test/test_symbolic.ml. *)

module Ir = Dhdl_ir.Ir
module Traverse = Dhdl_ir.Traverse

module AE = Engine.Make (Affine)

(* ------------------------------------------------------------------ *)
(* Exact rationals.  Coefficients stay tiny (design parameters are small
   ints and pivots are normalized), so native ints never overflow. *)

module Q = struct
  type t = { num : int; den : int }  (* den > 0, reduced *)

  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let make num den =
    if den = 0 then invalid_arg "Q.make: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = max 1 (abs (gcd num den)) in
    { num = num / g; den = den / g }

  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }
  let of_int n = { num = n; den = 1 }
  let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
  let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
  let mul a b = make (a.num * b.num) (a.den * b.den)
  let div a b = if b.num = 0 then invalid_arg "Q.div: by zero" else make (a.num * b.den) (a.den * b.num)
  let neg a = { a with num = -a.num }
  let is_zero a = a.num = 0
  let equal a b = a.num = b.num && a.den = b.den
  let leq a b = a.num * b.den <= b.num * a.den
  let to_int a = if a.den = 1 then Some a.num else None

  let to_string a =
    if a.den = 1 then string_of_int a.num else Printf.sprintf "%d/%d" a.num a.den
end

(* ------------------------------------------------------------------ *)
(* Affine expressions over named design parameters.                     *)

module Expr = struct
  type t = { c0 : Q.t; terms : (string * Q.t) list }  (* terms sorted, no zeros *)

  let norm terms =
    List.sort (fun (a, _) (b, _) -> String.compare a b) terms
    |> List.filter (fun (_, c) -> not (Q.is_zero c))

  let const q = { c0 = q; terms = [] }
  let of_int n = const (Q.of_int n)
  let zero = of_int 0
  let one = of_int 1
  let var name = { c0 = Q.zero; terms = [ (name, Q.one) ] }
  let is_const e = e.terms = []

  let map2 f a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], [] -> []
      | (n, c) :: xs', [] -> (n, f c Q.zero) :: go xs' []
      | [], (n, c) :: ys' -> (n, f Q.zero c) :: go [] ys'
      | (n1, c1) :: xs', (n2, c2) :: ys' ->
        let k = String.compare n1 n2 in
        if k = 0 then (n1, f c1 c2) :: go xs' ys'
        else if k < 0 then (n1, f c1 Q.zero) :: go xs' ys
        else (n2, f Q.zero c2) :: go xs ys'
    in
    norm (go a b)

  let add a b = { c0 = Q.add a.c0 b.c0; terms = map2 Q.add a.terms b.terms }
  let sub a b = { c0 = Q.sub a.c0 b.c0; terms = map2 Q.sub a.terms b.terms }

  let scale q e =
    if Q.is_zero q then zero
    else { c0 = Q.mul q e.c0; terms = norm (List.map (fun (n, c) -> (n, Q.mul q c)) e.terms) }

  let equal a b =
    Q.equal a.c0 b.c0
    && List.length a.terms = List.length b.terms
    && List.for_all2 (fun (n1, c1) (n2, c2) -> String.equal n1 n2 && Q.equal c1 c2) a.terms b.terms

  let eval e bindings =
    let rec go acc = function
      | [] -> Some acc
      | (n, c) :: rest -> (
        match List.assoc_opt n bindings with
        | None -> None
        | Some v -> go (Q.add acc (Q.mul c (Q.of_int v))) rest)
    in
    go e.c0 e.terms

  let eval_int e bindings = Option.bind (eval e bindings) Q.to_int

  let to_string e =
    let term (n, c) =
      if Q.equal c Q.one then n
      else if Q.equal c (Q.of_int (-1)) then "-" ^ n
      else Q.to_string c ^ "*" ^ n
    in
    match (e.terms, Q.is_zero e.c0) with
    | [], _ -> Q.to_string e.c0
    | ts, true -> String.concat " + " (List.map term ts)
    | ts, false -> String.concat " + " (List.map term ts) ^ " + " ^ Q.to_string e.c0
end

(* ------------------------------------------------------------------ *)
(* Atoms, literals, clauses, checks.                                    *)

type atom =
  | Le of Expr.t * Expr.t  (* lhs <= rhs over the integers *)
  | Divides of Expr.t * Expr.t  (* lhs | rhs; false when lhs = 0 *)

type literal = Pos of atom | Neg of atom

type clause = {
  cl_desc : string;  (* what the clause witnesses, for diagnostics *)
  cl_lits : literal list;  (* conjunction *)
}

type check = {
  ck_code : string;  (* the diagnostic code it mirrors: L009/L010/L013 *)
  ck_site : string;  (* where in the design, human-readable *)
  ck_legal : literal list option;
      (* a conjunction whose truth implies the concrete check is clean;
         [None] when the symbolic domain cannot express the legal side *)
  ck_refutes : clause list;
      (* any clause true ==> the concrete pass emits an error with
         [ck_code]; each clause reproduces one concrete failure mode *)
  ck_assumed : bool;
      (* the legal side rests on probe certification (validated on the
         probe set and re-checked by the differential oracle), not on a
         closed form *)
}

type system = {
  sy_skeleton : string;  (* Design_key skeleton hash of the family *)
  sy_params : string list;  (* parameters that vary across the probes *)
  sy_pinned : (string * int) list;
      (* parameters constant across every probe: routing guards — a
         binding that disagrees is outside this family, hence Unknown *)
  sy_checks : check list;
  sy_legal_capable : bool;
      (* [Legal] may be granted; false when derivation could not certify
         the residual checks or a probe contradicted a derived fact *)
  sy_probes : int;  (* probe designs the derivation was fitted against *)
  sy_note : string;  (* why capability is limited, for diagnostics *)
}

type verdict = Legal | Refuted of { code : string; witness : string } | Unknown of string

let atom_to_string = function
  | Le (a, b) -> Expr.to_string a ^ " <= " ^ Expr.to_string b
  | Divides (a, b) -> Expr.to_string a ^ " | " ^ Expr.to_string b

let literal_to_string = function
  | Pos a -> atom_to_string a
  | Neg a -> "!(" ^ atom_to_string a ^ ")"

let conj_to_string = function
  | [] -> "true"
  | lits -> String.concat "  &&  " (List.map literal_to_string lits)

(* ------------------------------------------------------------------ *)
(* The per-point evaluator.                                             *)

module Predicate = struct
  let atom_holds bindings = function
    | Le (a, b) -> (
      match (Expr.eval a bindings, Expr.eval b bindings) with
      | Some x, Some y -> Some (Q.leq x y)
      | _ -> None)
    | Divides (d, e) -> (
      match (Expr.eval_int d bindings, Expr.eval_int e bindings) with
      | Some 0, _ -> Some false
      | Some dv, Some ev -> Some (ev mod dv = 0)
      | _ -> None)

  let literal_holds bindings = function
    | Pos a -> atom_holds bindings a
    | Neg a -> Option.map not (atom_holds bindings a)

  let conj_holds bindings lits =
    List.for_all (fun l -> literal_holds bindings l = Some true) lits

  let applies sys bindings =
    List.for_all (fun (k, v) -> List.assoc_opt k bindings = Some v) sys.sy_pinned

  (* Decide one binding: any refutation clause that evaluates to true
     wins (the concrete pass provably errors with that code); otherwise
     [Legal] requires the system to be capable and every check's legal
     conjunction to hold. Atoms that cannot be evaluated (missing
     parameter, non-integral divisor) make their clause not-fire and
     their legal side not-hold — both fall toward [Unknown], never toward
     an unsound verdict. *)
  let eval sys bindings =
    if not (applies sys bindings) then
      Unknown "binding disagrees with the family's pinned parameters"
    else begin
      let fired = ref None in
      List.iter
        (fun ck ->
          if !fired = None then
            List.iter
              (fun cl ->
                if !fired = None && conj_holds bindings cl.cl_lits then
                  fired :=
                    Some
                      (Refuted
                         {
                           code = ck.ck_code;
                           witness =
                             Printf.sprintf "%s: %s [%s]" ck.ck_site cl.cl_desc
                               (conj_to_string cl.cl_lits);
                         }))
              ck.ck_refutes)
        sys.sy_checks;
      match !fired with
      | Some v -> v
      | None ->
        if not sys.sy_legal_capable then Unknown sys.sy_note
        else if
          List.for_all
            (fun ck ->
              match ck.ck_legal with
              | Some lits -> conj_holds bindings lits
              | None -> false)
            sys.sy_checks
        then Legal
        else Unknown "a legality conjunction does not hold for this binding"
    end
end

(* ------------------------------------------------------------------ *)
(* Fitting: exact affine regression over the probe set.                 *)

(* Solve the (usually overdetermined) system [c0 + sum coef_i * p_i = v]
   for each observation by Gauss-Jordan elimination over Q; free
   unknowns go to zero and the candidate is validated against *every*
   observation, so a successful fit is exact on the whole probe set —
   never a least-squares approximation. *)
let fit ~params (obs : ((string * int) list * int) list) : Expr.t option =
  match obs with
  | [] -> None
  | _ ->
    let params = Array.of_list params in
    let k = Array.length params in
    let n = k + 1 in
    let rows =
      Array.of_list
        (List.filter_map
           (fun (b, v) ->
             let arr = Array.make (n + 1) Q.zero in
             arr.(0) <- Q.one;
             arr.(n) <- Q.of_int v;
             let ok = ref true in
             Array.iteri
               (fun i p ->
                 match List.assoc_opt p b with
                 | Some pv -> arr.(i + 1) <- Q.of_int pv
                 | None -> ok := false)
               params;
             if !ok then Some arr else None)
           obs)
    in
    let m = Array.length rows in
    if m = 0 then None
    else begin
      let piv = Array.make n (-1) in
      let row = ref 0 in
      for col = 0 to n - 1 do
        if !row < m then begin
          let p = ref (-1) in
          for r = !row to m - 1 do
            if !p = -1 && not (Q.is_zero rows.(r).(col)) then p := r
          done;
          if !p >= 0 then begin
            let tmp = rows.(!row) in
            rows.(!row) <- rows.(!p);
            rows.(!p) <- tmp;
            let inv = rows.(!row).(col) in
            for c = col to n do
              rows.(!row).(c) <- Q.div rows.(!row).(c) inv
            done;
            for r = 0 to m - 1 do
              if r <> !row && not (Q.is_zero rows.(r).(col)) then begin
                let f = rows.(r).(col) in
                for c = col to n do
                  rows.(r).(c) <- Q.sub rows.(r).(c) (Q.mul f rows.(!row).(c))
                done
              end
            done;
            piv.(col) <- !row;
            incr row
          end
        end
      done;
      let sol = Array.init n (fun c -> match piv.(c) with -1 -> Q.zero | r -> rows.(r).(n)) in
      let expr =
        {
          Expr.c0 = sol.(0);
          terms =
            Array.to_list (Array.mapi (fun i p -> (p, sol.(i + 1))) params)
            |> List.filter (fun (_, c) -> not (Q.is_zero c))
            |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        }
      in
      if
        List.for_all
          (fun (b, v) ->
            match Expr.eval expr b with Some q -> Q.equal q (Q.of_int v) | None -> false)
          obs
      then Some expr
      else None
    end

(* ------------------------------------------------------------------ *)
(* Probe elaboration.                                                   *)

type probe = {
  pb_bindings : (string * int) list;
  pb_accs : AE.access array;  (* affine-engine access facts, traversal order *)
  pb_pipes : (string list * Ir.loop_info * Ir.stmt list) list;
  pb_l009 : bool;  (* concrete bounds refutation present *)
  pb_l010 : bool;  (* concrete bank conflict present *)
  pb_l013 : bool;  (* concrete pipelining refutation present *)
}

let collect_pipes (d : Ir.design) =
  let out = ref [] in
  let rec go path ctrl =
    let path = path @ [ Ir.ctrl_label ctrl ] in
    (match ctrl with
    | Ir.Pipe { loop; body; _ } -> out := (path, loop, body) :: !out
    | Ir.Loop _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ());
    List.iter (go path) (Traverse.children ctrl)
  in
  go [] d.Ir.d_top;
  List.rev !out

let elaborate_probe (bindings, design) =
  let ae = AE.analyze design in
  let ar = Absint.analyze design in
  let asum = Absint.summarize ar in
  let dr = Dependence.analyze design in
  let dsum = Dependence.summarize dr in
  {
    pb_bindings = bindings;
    pb_accs = Array.of_list ae.AE.accesses;
    pb_pipes = collect_pipes design;
    pb_l009 = asum.Absint.s_bounds_refuted > 0;
    pb_l010 = asum.Absint.s_banks_conflict > 0;
    pb_l013 = dsum.Dependence.s_refuted > 0;
  }

(* ------------------------------------------------------------------ *)
(* Derivation.                                                          *)

let min_cert_probes = 5

(* Space.par_candidates caps par factors at 64, so scanning the par axis
   a little past that decides every binding a space can produce while
   bounding derivation cost on large iteration grids. *)
let par_scan_cap = 96

let degenerate ~skeleton ~params ~probes note =
  {
    sy_skeleton = skeleton;
    sy_params = params;
    sy_pinned = [];
    sy_checks = [];
    sy_legal_capable = false;
    sy_probes = probes;
    sy_note = note;
  }

exception Give_up of string

let site_of_access (a : AE.access) =
  Printf.sprintf "%s %s @ %s"
    (if a.AE.acc_write then "store" else "load")
    a.AE.acc_mem.Ir.mem_name
    (String.concat "/" a.AE.acc_path)

(* Innermost binding wins, matching the engine's counter scoping. *)
let scope_counter scope name =
  List.fold_left
    (fun acc (c : Ir.counter) -> if String.equal c.Ir.ctr_name name then Some c else acc)
    None scope

(* --- L009, word accesses -------------------------------------------- *)

(* One BRAM word access, one dimension. The concrete checker refutes via
   the affine extreme over the box of in-scope counter ranges (which is
   reachable: counters are independent and step through every value), so
   with the form's counter coefficients constant across probes and each
   used counter a unit-step range with fitted start/stop, the min/max
   index are themselves affine in the parameters:

     max = c0 + sum_{coef>0} coef*(stop-1) + sum_{coef<0} coef*start
     min = c0 + sum_{coef>0} coef*start  + sum_{coef<0} coef*(stop-1)

   legal: 0 <= min  &&  max <= extent-1 (empty ranges fail the atoms and
   fall to Unknown — the concrete checker reports those unknown, not
   refuted, so conservatism is the correct direction); refuted: the
   margin provably overruns AND every used counter provably iterates
   (start+1 <= stop), making the extreme reachable. *)
let derive_word_dim ~varying ~probes ~acc_idx ~dim =
  let forms =
    List.map
      (fun pb ->
        match pb.pb_accs.(acc_idx).AE.acc_addr with
        | AE.Word fs -> Affine.exact (List.nth fs dim)
        | _ -> None)
      probes
  in
  match forms with
  | Some (_, terms0) :: _ when List.for_all (function Some (_, t) -> t = terms0 | None -> false) forms
    ->
    let c0s = List.map (function Some (c0, _) -> c0 | None -> assert false) forms in
    let obs_of vals = List.map2 (fun pb v -> (pb.pb_bindings, v)) probes vals in
    let counters_of pb name = scope_counter pb.pb_accs.(acc_idx).AE.acc_scope name in
    let fits = ref [] in
    let fit_slot vals =
      match fit ~params:varying (obs_of vals) with
      | Some e ->
        fits := e :: !fits;
        e
      | None -> raise (Give_up "slot not affine in the parameters")
    in
    (try
       let c0_e = fit_slot c0s in
       let n_e =
         fit_slot
           (List.map (fun pb -> List.nth pb.pb_accs.(acc_idx).AE.acc_mem.Ir.mem_dims dim) probes)
       in
       let ranges =
         List.map
           (fun (name, coef) ->
             let cs =
               List.map
                 (fun pb ->
                   match counters_of pb name with
                   | Some c when c.Ir.ctr_step = 1 -> c
                   | Some _ -> raise (Give_up "non-unit counter step")
                   | None -> raise (Give_up "counter not in scope"))
                 probes
             in
             let start_e = fit_slot (List.map (fun (c : Ir.counter) -> c.Ir.ctr_start) cs) in
             let stop_e = fit_slot (List.map (fun (c : Ir.counter) -> c.Ir.ctr_stop) cs) in
             (coef, start_e, stop_e))
           terms0
       in
       let hi_sum, lo_sum =
         List.fold_left
           (fun (hi, lo) (coef, start_e, stop_e) ->
             let q = Q.of_int coef in
             let stop1 = Expr.sub stop_e Expr.one in
             if coef > 0 then
               (Expr.add hi (Expr.scale q stop1), Expr.add lo (Expr.scale q start_e))
             else (Expr.add hi (Expr.scale q start_e), Expr.add lo (Expr.scale q stop1)))
           (c0_e, c0_e) ranges
       in
       let margin_hi = Expr.sub (Expr.sub n_e Expr.one) hi_sum in
       let margin_lo = lo_sum in
       let guards =
         List.map
           (fun (_, start_e, stop_e) -> Pos (Le (Expr.add start_e Expr.one, stop_e)))
           ranges
       in
       let legal = [ Pos (Le (Expr.zero, margin_lo)); Pos (Le (Expr.zero, margin_hi)) ] in
       let refutes =
         [
           {
             cl_desc = Printf.sprintf "max index exceeds extent in dim %d" dim;
             cl_lits = guards @ [ Pos (Le (margin_hi, Expr.of_int (-1))) ];
           };
           {
             cl_desc = Printf.sprintf "min index below zero in dim %d" dim;
             cl_lits = guards @ [ Pos (Le (margin_lo, Expr.of_int (-1))) ];
           };
         ]
       in
       (Some legal, refutes)
     with Give_up _ -> (None, []))
  | _ -> (None, [])

let derive_word_check ~varying ~probes acc_idx =
  let a0 = (List.hd probes).pb_accs.(acc_idx) in
  match a0.AE.acc_addr with
  | AE.Word forms when a0.AE.acc_mem.Ir.mem_kind = Ir.Bram ->
    let dims = List.length forms in
    let per_dim =
      List.init dims (fun d -> derive_word_dim ~varying ~probes ~acc_idx ~dim:d)
    in
    let refutes = List.concat_map snd per_dim in
    let legal =
      if List.for_all (fun (l, _) -> l <> None) per_dim then
        Some (List.concat_map (fun (l, _) -> Option.value l ~default:[]) per_dim)
      else None
    in
    if legal = None && refutes = [] then None
    else
      Some
        {
          ck_code = "L009";
          ck_site = site_of_access a0;
          ck_legal = legal;
          ck_refutes = refutes;
          ck_assumed = false;
        }
  | _ -> None

(* --- L009, tile transfers ------------------------------------------- *)

(* The off-chip side of a tile transfer. The concrete checker tests, per
   dimension and in this order: (1) tile size positive, (2) tile divides
   the off-chip extent, (3) every offset within [0, extent - tile]. (1)
   and (2) are direct divisibility atoms over the fitted tile/extent
   expressions — and because the concrete checker tests them *before*
   the offsets, their refutation clauses are sound unconditionally. The
   legal side additionally needs the offsets bounded; that is closed-form
   only for the two shapes app generators produce (a constant offset, or
   a unit-coefficient counter running 0..extent step tile — whose last
   value is extent - tile exactly when tile | extent). *)
let derive_tile_dim ~varying ~probes ~acc_idx ~dim =
  let obs_of vals = List.map2 (fun pb v -> (pb.pb_bindings, v)) probes vals in
  let tile_vals =
    List.map
      (fun pb ->
        match pb.pb_accs.(acc_idx).AE.acc_addr with
        | AE.Tile { tile; _ } -> List.nth tile dim
        | _ -> raise (Give_up "addr shape drift"))
      probes
  in
  let extent_vals =
    List.map (fun pb -> List.nth pb.pb_accs.(acc_idx).AE.acc_mem.Ir.mem_dims dim) probes
  in
  match (fit ~params:varying (obs_of tile_vals), fit ~params:varying (obs_of extent_vals)) with
  | Some t_e, Some ext_e ->
    let refutes =
      [
        {
          cl_desc = Printf.sprintf "tile size non-positive in dim %d" dim;
          cl_lits = [ Pos (Le (t_e, Expr.zero)) ];
        };
        {
          cl_desc = Printf.sprintf "tile size does not divide the off-chip extent in dim %d" dim;
          cl_lits = [ Pos (Le (Expr.one, t_e)); Neg (Divides (t_e, ext_e)) ];
        };
      ]
    in
    let base_legal = [ Pos (Le (Expr.one, t_e)); Pos (Divides (t_e, ext_e)) ] in
    let off_forms =
      List.map
        (fun pb ->
          match pb.pb_accs.(acc_idx).AE.acc_addr with
          | AE.Tile { offsets; _ } -> Affine.exact (List.nth offsets dim)
          | _ -> None)
        probes
    in
    let legal =
      match off_forms with
      | Some (_, []) :: _ when List.for_all (function Some (_, []) -> true | _ -> false) off_forms
        -> (
        (* Constant offset: bounded iff 0 <= c <= extent - tile. *)
        let cs = List.map (function Some (c, _) -> c | None -> assert false) off_forms in
        match fit ~params:varying (obs_of cs) with
        | Some c_e ->
          Some
            (base_legal
            @ [ Pos (Le (Expr.zero, c_e)); Pos (Le (c_e, Expr.sub ext_e t_e)) ])
        | None -> None)
      | Some (0, [ (name0, 1) ]) :: _
        when List.for_all
               (function Some (0, [ (_, 1) ]) -> true | _ -> false)
               off_forms -> (
        (* The canonical tiling loop: offset = counter, 0..extent step
           tile. Under tile | extent its last value is extent - tile. *)
        let cs =
          List.map2
            (fun pb f ->
              let name = match f with Some (_, [ (n, _) ]) -> n | _ -> name0 in
              match scope_counter pb.pb_accs.(acc_idx).AE.acc_scope name with
              | Some c -> c
              | None -> raise (Give_up "tiling counter not in scope"))
            probes off_forms
        in
        let starts = List.map (fun (c : Ir.counter) -> c.Ir.ctr_start) cs in
        let fits_as e vals =
          match fit ~params:varying (obs_of vals) with
          | Some e' -> Expr.equal e e'
          | None -> false
        in
        if
          List.for_all (fun s -> s = 0) starts
          && fits_as ext_e (List.map (fun (c : Ir.counter) -> c.Ir.ctr_stop) cs)
          && fits_as t_e (List.map (fun (c : Ir.counter) -> c.Ir.ctr_step) cs)
        then Some base_legal
        else None)
      | _ -> None
    in
    (legal, refutes)
  | _ -> (None, [])

let derive_tile_check ~varying ~probes acc_idx =
  let a0 = (List.hd probes).pb_accs.(acc_idx) in
  match a0.AE.acc_addr with
  | AE.Tile { tile; _ } when a0.AE.acc_mem.Ir.mem_kind = Ir.Offchip ->
    let dims = List.length tile in
    let per_dim =
      List.init dims (fun d ->
          try derive_tile_dim ~varying ~probes ~acc_idx ~dim:d with Give_up _ -> (None, []))
    in
    let refutes = List.concat_map snd per_dim in
    let legal =
      if List.for_all (fun (l, _) -> l <> None) per_dim then
        Some (List.concat_map (fun (l, _) -> Option.value l ~default:[]) per_dim)
      else None
    in
    if legal = None && refutes = [] then None
    else
      Some
        {
          ck_code = "L009";
          ck_site = site_of_access a0;
          ck_legal = legal;
          ck_refutes = refutes;
          ck_assumed = false;
        }
  | _ -> None

(* --- L013, pipelined vectorization ---------------------------------- *)

let dform_equal (a : Dependence.dform) (b : Dependence.dform) =
  match (a, b) with
  | ( Dependence.Aff { c0 = xc; terms = xt; base = xb },
      Dependence.Aff { c0 = yc; terms = yt; base = yb } ) -> xc = yc && xt = yt && xb = yb
  | Dependence.Unk _, Dependence.Unk _ -> true
  | _ -> false

let body_acc_equal (a : Dependence.body_access) (b : Dependence.body_access) =
  a.Dependence.ba_stmt = b.Dependence.ba_stmt
  && a.Dependence.ba_write = b.Dependence.ba_write
  && String.equal a.Dependence.ba_mem.Ir.mem_name b.Dependence.ba_mem.Ir.mem_name
  && List.length a.Dependence.ba_forms = List.length b.Dependence.ba_forms
  && List.for_all2 dform_equal a.Dependence.ba_forms b.Dependence.ba_forms

(* Would the concrete checker find a same-cycle lane conflict at [par]?
   This mirrors [Dependence.analyze_pipe]'s candidate loop exactly —
   same grouping, same comparability test, same self-pair skip — and
   reuses [Dependence.pair_conflict] itself, so the scan cannot drift
   from the checker it predicts. *)
let conflict_at ~counters ~trips ~groups par =
  par > 1
  && List.exists
       (fun group ->
         let comparable (a : Dependence.body_access) (b : Dependence.body_access) =
           List.length a.Dependence.ba_forms = List.length b.Dependence.ba_forms
           && List.for_all2
                (fun fa fb ->
                  match (fa, fb) with
                  | Dependence.Aff { base = xb; _ }, Dependence.Aff { base = yb; _ } -> xb = yb
                  | _ -> false)
                a.Dependence.ba_forms b.Dependence.ba_forms
         in
         let writes = List.filter (fun a -> a.Dependence.ba_write) group in
         List.exists
           (fun w ->
             List.exists
               (fun other ->
                 comparable w other
                 &&
                 match Dependence.pair_conflict ~counters ~trips ~par w other with
                 | Some (la, lb, _, _, _) -> not (w == other && la = lb)
                 | None -> false)
               group)
           writes)
       groups

(* One Pipe. With the counter nest constant across probes (the common
   case: pipes iterate problem-sized grids; parameters set par) and the
   body's abstract addresses probe-invariant, the only free coordinate is
   the par factor itself. Scan it: every par in [2, cap] is decided by
   the concrete checker's own collision search, conflicting runs become
   interval refutation clauses, and the largest conflict-free prefix
   becomes the legal bound. A run that reaches the full iteration count
   extends to infinity — at par >= trip the window covers every
   iteration, so the verdict is par-independent from there up. *)
let derive_pipe_check ~varying ~probes pipe_idx =
  let datum pb =
    let _, loop, body = List.nth pb.pb_pipes pipe_idx in
    let counters, accs = Dependence.body_accesses loop body in
    (loop, counters, accs)
  in
  let loop0, counters0, accs0 = datum (List.hd probes) in
  let constant =
    List.for_all
      (fun pb ->
        let _, counters, accs = datum pb in
        counters = counters0
        && List.length accs = List.length accs0
        && List.for_all2 body_acc_equal accs accs0)
      probes
  in
  let has_write = List.exists (fun a -> a.Dependence.ba_write) accs0 in
  if not (constant && has_write) then None
  else begin
    let trips = Array.map Ir.counter_trip counters0 in
    let total = Array.fold_left ( * ) 1 trips in
    if total <= 1 || total > Dependence.grid_cap then
      (* The concrete checker declines these grids for every par; there
         is nothing to refute and nothing it would ever error on. *)
      None
    else
      let pars =
        List.map
          (fun pb ->
            let _, l, _ = List.nth pb.pb_pipes pipe_idx in
            max 1 l.Ir.lp_par)
          probes
      in
      let obs = List.map2 (fun pb v -> (pb.pb_bindings, v)) probes pars in
      match fit ~params:varying obs with
      | None -> None
      | Some p_e ->
        let groups = Dependence.group_by_mem accs0 in
        let cap = min total par_scan_cap in
        let bad = ref [] in
        for p = cap downto 2 do
          if conflict_at ~counters:counters0 ~trips ~groups p then bad := p :: !bad
        done;
        let site =
          Printf.sprintf "pipe %s (grid %d iterations)" loop0.Ir.lp_label total
        in
        let rec runs = function
          | [] -> []
          | p :: rest ->
            let rec extend hi = function
              | q :: qs when q = hi + 1 -> extend q qs
              | qs -> (hi, qs)
            in
            let hi, rest = extend p rest in
            (p, hi) :: runs rest
        in
        let refutes =
          List.map
            (fun (lo, hi) ->
              if hi = total then
                {
                  cl_desc =
                    Printf.sprintf "par >= %d issues conflicting lanes in the same cycle" lo;
                  cl_lits = [ Pos (Le (Expr.of_int lo, p_e)) ];
                }
              else
                {
                  cl_desc =
                    Printf.sprintf "par in [%d, %d] issues conflicting lanes in the same cycle"
                      lo hi;
                  cl_lits =
                    [ Pos (Le (Expr.of_int lo, p_e)); Pos (Le (p_e, Expr.of_int hi)) ];
                })
            (runs !bad)
        in
        let legal =
          match !bad with
          | [] -> if cap = total then Some [] else Some [ Pos (Le (p_e, Expr.of_int cap)) ]
          | first :: _ -> Some [ Pos (Le (p_e, Expr.of_int (first - 1))) ]
        in
        Some
          {
            ck_code = "L013";
            ck_site = site;
            ck_legal = legal;
            ck_refutes = refutes;
            ck_assumed = false;
          }
  end

(* --- assembling the system ------------------------------------------ *)

let shape_consistent probes =
  let p0 = List.hd probes in
  let n = Array.length p0.pb_accs in
  let np = List.length p0.pb_pipes in
  List.for_all
    (fun pb ->
      Array.length pb.pb_accs = n
      && List.length pb.pb_pipes = np
      && Array.for_all2
           (fun (a : AE.access) (b : AE.access) ->
             String.equal a.AE.acc_mem.Ir.mem_name b.AE.acc_mem.Ir.mem_name
             && a.AE.acc_write = b.AE.acc_write
             &&
             match (a.AE.acc_addr, b.AE.acc_addr) with
             | AE.Word x, AE.Word y -> List.length x = List.length y
             | AE.Stream, AE.Stream -> true
             | AE.Tile { tile = xt; _ }, AE.Tile { tile = yt; _ } ->
               List.length xt = List.length yt
             | _ -> false)
           p0.pb_accs pb.pb_accs)
    probes

let concrete_has pb = function
  | "L009" -> pb.pb_l009
  | "L010" -> pb.pb_l010
  | "L013" -> pb.pb_l013
  | _ -> false

let derive_exn ~skeleton ~params ~probes:raw_probes =
  let probes = List.map elaborate_probe raw_probes in
  let nprobes = List.length probes in
  if not (shape_consistent probes) then
    degenerate ~skeleton ~params ~probes:nprobes
      "probe designs disagree on access shape despite a shared skeleton"
  else begin
    let value_sets =
      List.map
        (fun p ->
          let vs =
            List.sort_uniq compare
              (List.filter_map (fun pb -> List.assoc_opt p pb.pb_bindings) probes)
          in
          (p, vs))
        params
    in
    let pinned =
      List.filter_map (fun (p, vs) -> match vs with [ v ] -> Some (p, v) | _ -> None) value_sets
    in
    let varying = List.filter (fun p -> not (List.mem_assoc p pinned)) params in
    let p0 = List.hd probes in
    let naccs = Array.length p0.pb_accs in
    let npipes = List.length p0.pb_pipes in
    let word_checks =
      List.filter_map (fun i -> derive_word_check ~varying ~probes i) (List.init naccs Fun.id)
    in
    let tile_checks =
      List.filter_map (fun i -> derive_tile_check ~varying ~probes i) (List.init naccs Fun.id)
    in
    let pipe_checks =
      List.filter_map (fun i -> derive_pipe_check ~varying ~probes i) (List.init npipes Fun.id)
    in
    let checks = word_checks @ tile_checks @ pipe_checks in
    (* Demotion: strike every refutation clause some probe contradicts
       (the clause fired but the concrete pass reported no such error).
       A strike means a fitted slot lied outside its validation set, so
       the whole [Legal] side is forfeited too — the surviving clauses
       remain sound because each fired-and-confirmed or never-fired
       clause is exactly the concrete checker's own decision. *)
    let contradicted = ref false in
    let checks =
      List.map
        (fun ck ->
          let keep =
            List.filter
              (fun cl ->
                let ok =
                  List.for_all
                    (fun pb ->
                      (not (Predicate.conj_holds pb.pb_bindings cl.cl_lits))
                      || concrete_has pb ck.ck_code)
                    probes
                in
                if not ok then contradicted := true;
                ok)
              ck.ck_refutes
          in
          { ck with ck_refutes = keep })
        checks
    in
    (* Certification of the residual: inside the region where every
       derived legality conjunction holds and no refutation fires, every
       probe must be concretely clean for all three codes — that is what
       licenses [Legal] to vouch for the checks (banking, non-affine
       dimensions, parameter-shaped loop nests) that have no closed
       form. The claim is inductive from the probe set, so the checks it
       adds are marked [assumed] and the differential oracle replays
       them against fresh bindings. *)
    let in_region pb =
      List.for_all
        (fun ck ->
          (match ck.ck_legal with
          | Some lits -> Predicate.conj_holds pb.pb_bindings lits
          | None -> true)
          && List.for_all
               (fun cl -> not (Predicate.conj_holds pb.pb_bindings cl.cl_lits))
               ck.ck_refutes)
        checks
    in
    let region = List.filter in_region probes in
    let region_dirty =
      List.exists (fun pb -> pb.pb_l009 || pb.pb_l010 || pb.pb_l013) region
    in
    let capable, cert_checks, note =
      if !contradicted then
        (false, [], "a probe contradicted a derived refutation clause")
      else if List.length region < min_cert_probes then
        ( false,
          [],
          Printf.sprintf "only %d probe(s) fall in the derived legal region (need %d)"
            (List.length region) min_cert_probes )
      else if region_dirty then
        (false, [], "a probe inside the derived legal region is concretely unclean")
      else
        ( true,
          List.map
            (fun code ->
              {
                ck_code = code;
                ck_site = "residual (probe-certified)";
                ck_legal = Some [];
                ck_refutes = [];
                ck_assumed = true;
              })
            [ "L009"; "L010"; "L013" ],
          "" )
    in
    {
      sy_skeleton = skeleton;
      sy_params = varying;
      sy_pinned = pinned;
      sy_checks = checks @ cert_checks;
      sy_legal_capable = capable;
      sy_probes = nprobes;
      sy_note = (if capable then "" else note);
    }
  end

let derive ~skeleton ~params ~probes =
  match probes with
  | [] -> degenerate ~skeleton ~params ~probes:0 "no probe designs survived generation"
  | _ -> (
    try derive_exn ~skeleton ~params ~probes
    with e ->
      degenerate ~skeleton ~params ~probes:(List.length probes)
        ("derivation failed: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let short_hash s = if String.length s > 12 then String.sub s 0 12 else s

let render_text sys =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "symbolic system %s: %d probe(s), params [%s]%s\n" (short_hash sys.sy_skeleton)
       sys.sy_probes
       (String.concat ", " sys.sy_params)
       (match sys.sy_pinned with
       | [] -> ""
       | ps ->
         ", pinned "
         ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ps)));
  Buffer.add_string b
    (if sys.sy_legal_capable then "  verdicts: Legal / Refuted / Unknown\n"
     else Printf.sprintf "  verdicts: Refuted / Unknown only (%s)\n" sys.sy_note);
  List.iter
    (fun ck ->
      Buffer.add_string b (Printf.sprintf "  [%s] %s\n" ck.ck_code ck.ck_site);
      (match ck.ck_legal with
      | Some lits ->
        Buffer.add_string b
          (Printf.sprintf "    legal iff %s%s\n" (conj_to_string lits)
             (if ck.ck_assumed then "  (assumed: certified on the probe set)" else ""))
      | None -> Buffer.add_string b "    legal: not expressible symbolically\n");
      List.iter
        (fun cl ->
          Buffer.add_string b
            (Printf.sprintf "    refuted iff %s  -- %s\n" (conj_to_string cl.cl_lits) cl.cl_desc))
        ck.ck_refutes)
    sys.sy_checks;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json sys =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"skeleton\":\"%s\",\"probes\":%d,\"legal_capable\":%b,\"params\":[%s],"
       (json_escape sys.sy_skeleton) sys.sy_probes sys.sy_legal_capable
       (String.concat "," (List.map (fun p -> "\"" ^ json_escape p ^ "\"") sys.sy_params)));
  Buffer.add_string b
    (Printf.sprintf "\"pinned\":{%s},\"checks\":["
       (String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) sys.sy_pinned)));
  List.iteri
    (fun i ck ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"code\":\"%s\",\"site\":\"%s\",\"assumed\":%b,\"legal\":%s,\"refutes\":[%s]}"
           (json_escape ck.ck_code) (json_escape ck.ck_site) ck.ck_assumed
           (match ck.ck_legal with
           | None -> "null"
           | Some lits -> "\"" ^ json_escape (conj_to_string lits) ^ "\"")
           (String.concat ","
              (List.map
                 (fun cl ->
                   Printf.sprintf "{\"desc\":\"%s\",\"when\":\"%s\"}" (json_escape cl.cl_desc)
                     (json_escape (conj_to_string cl.cl_lits)))
                 ck.ck_refutes))))
    sys.sy_checks;
  Buffer.add_string b "]}";
  Buffer.contents b
