(** Abstract-domain signature for the forward fixpoint engine.

    A domain abstracts the float values flowing through a DHDL design:
    iterator values (from counter bounds), [Sop] arithmetic, and the
    contents of memory cells (registers, BRAMs, queues). The engine
    ({!Engine.Make}) is parametric in the domain; {!Interval} tracks
    numeric ranges and {!Affine} tracks [c0 + sum ci*iter_i] shapes with
    iterator-dependence sets. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op

module type S = sig
  type t

  val name : string

  val top : t
  (** No information: any value. *)

  val bottom : t
  (** Unreachable / no value. *)

  val is_bottom : t -> bool
  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound (control-flow merge, repeated writes to a cell). *)

  val widen : t -> t -> t
  (** [widen old incoming] accelerates convergence on loop-carried cells;
      must satisfy [widen old v] ⊒ [join old v] and stabilize any
      ascending chain in finitely many steps. *)

  val of_const : float -> t
  val of_counter : Ir.counter -> t
  (** Abstract value of the counter's iterator over all its iterations
      ([bottom] for a zero-trip counter). *)

  val transfer : Op.t -> t list -> t
  (** Abstract [Op.eval]. Must be sound for any argument count (return
      [top] on arity mismatch rather than raising). *)

  val load : addr:t list -> content:t -> t
  (** Value produced by [Sload]: [content] is the memory cell's abstract
      content (the join of everything stored plus its initial value),
      [addr] the abstract per-dimension address. *)

  val pop : t
  (** Value produced by [Spop] (order-dependent, typically [top]). *)

  val to_string : t -> string
end
