(* Affine forms over loop iterators. An element abstracts a value as

     c0 + sum_i ci * iter_i + U

   where U is an opaque (non-affine) residue that may vary only with the
   iterators in [opaque]. The exact affine case is [opaque = Names []];
   [opaque = All] makes the element top (and c0/terms are normalized away).
   The dependence set is what the banking checker consumes: a value whose
   dependence set is disjoint from a pipe's vectorized counters is
   lane-invariant even when it is not affine (e.g. kmeans' data-dependent
   cluster index), so only the affine part decides which bank each lane
   hits. *)

module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op

type deps = Names of string list | All
(* [Names l]: sorted, deduplicated iterator names. *)

type t = Bot | Aff of { c0 : int; terms : (string * int) list; opaque : deps }
(* Invariant: [terms] sorted by name with non-zero coefficients; when
   [opaque = All] the element is exactly [top]. *)

let name = "affine"
let top = Aff { c0 = 0; terms = []; opaque = All }
let bottom = Bot
let is_bottom v = v = Bot

let union_deps a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Names xs, Names ys -> Names (List.sort_uniq compare (xs @ ys))

let mk c0 terms opaque =
  match opaque with
  | All -> top
  | Names _ ->
    let terms =
      List.sort (fun (a, _) (b, _) -> compare a b) (List.filter (fun (_, c) -> c <> 0) terms)
    in
    Aff { c0; terms; opaque }

let equal (a : t) b = a = b

(* Iterators the value may vary with: affine term names plus the opaque
   residue's dependences. *)
let deps = function
  | Bot -> Names []
  | Aff { terms; opaque; _ } -> union_deps (Names (List.map fst terms)) opaque

(* Collapse to a pure residue varying with everything the value varies with
   (used when an operation destroys the affine shape). *)
let blur v = match v with Bot -> Bot | Aff _ -> mk 0 [] (deps v)

let blur2 a b =
  match (a, b) with Bot, _ | _, Bot -> Bot | _ -> mk 0 [] (union_deps (deps a) (deps b))

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | _ when equal a b -> a
  | _ -> blur2 a b

(* The ascending chain Bot -> exact -> residue-with-growing-deps -> All is
   bounded by the (finite) iterator-name population of the design, so join
   itself is a terminating widening. *)
let widen old incoming = join old incoming

let of_const f =
  if Float.is_integer f && Float.abs f <= 1e15 then
    Aff { c0 = int_of_float f; terms = []; opaque = Names [] }
  else mk 0 [] (Names [])

let of_counter (c : Ir.counter) =
  if Ir.counter_trip c <= 0 then Bot
  else Aff { c0 = 0; terms = [ (c.Ir.ctr_name, 1) ]; opaque = Names [] }

let merge_terms f xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest -> List.map (fun (n, c) -> (n, f 0 c)) rest
    | rest, [] -> List.map (fun (n, c) -> (n, f c 0)) rest
    | (nx, cx) :: xs', (ny, cy) :: ys' ->
      if nx = ny then (nx, f cx cy) :: go xs' ys'
      else if nx < ny then (nx, f cx 0) :: go xs' ys'
      else (ny, f 0 cy) :: go xs ys'
  in
  go xs ys

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Aff x, Aff y ->
    mk (x.c0 + y.c0) (merge_terms ( + ) x.terms y.terms) (union_deps x.opaque y.opaque)

let neg = function
  | Bot -> Bot
  | Aff x -> mk (-x.c0) (List.map (fun (n, c) -> (n, -c)) x.terms) x.opaque

let sub a b = add a (neg b)

let as_int_const = function
  | Aff { c0; terms = []; opaque = Names [] } -> Some c0
  | _ -> None

let scale k = function
  | Bot -> Bot
  | Aff x ->
    if k = 0 then Aff { c0 = 0; terms = []; opaque = Names [] }
    else mk (k * x.c0) (List.map (fun (n, c) -> (n, k * c)) x.terms) x.opaque

let mul a b =
  match (as_int_const a, as_int_const b) with
  | Some k, _ -> scale k b
  | _, Some k -> scale k a
  | None, None -> blur2 a b

let transfer op args =
  match (op, args) with
  | _, _ when List.exists is_bottom args -> Bot
  | Op.Add, [ a; b ] -> add a b
  | Op.Sub, [ a; b ] -> sub a b
  | Op.Neg, [ a ] -> neg a
  | Op.Mul, [ a; b ] -> mul a b
  | Op.Floor, [ a ] -> a (* affine over integer iterators is integral *)
  | (Op.Min | Op.Max), [ a; b ] when equal a b -> a
  | Op.Mux, [ c; a; b ] ->
    if equal a b then a else mk 0 [] (union_deps (deps c) (union_deps (deps a) (deps b)))
  | _, _ ->
    (match args with
    | [] -> top
    | _ -> List.fold_left (fun acc v -> blur2 acc v) (blur (List.hd args)) (List.tl args))

(* The value loaded from a memory is a fixed function of the address at the
   time of the read (memory contents don't change mid-access), so it varies
   with exactly what the address varies with; the stored contents' shape is
   irrelevant for dependence tracking. *)
let load ~addr ~content:_ =
  match addr with
  | [] -> mk 0 [] (Names [])
  | _ ->
    if List.exists is_bottom addr then Bot
    else mk 0 [] (List.fold_left (fun acc v -> union_deps acc (deps v)) (Names []) addr)

(* Queue pops are order-dependent: no usable shape. *)
let pop = top

let to_string = function
  | Bot -> "_|_"
  | Aff { opaque = All; _ } -> "T"
  | Aff { c0; terms; opaque } ->
    let term (n, c) =
      if c = 1 then n else if c = -1 then "-" ^ n else Printf.sprintf "%d*%s" c n
    in
    let parts =
      (if c0 <> 0 || terms = [] then [ string_of_int c0 ] else []) @ List.map term terms
    in
    let u = match opaque with Names [] -> [] | Names _ -> [ "U" ] | All -> [] in
    String.concat "+" (parts @ u)

(* Queries used by the access checkers. *)

(* Exact affine form: Some (c0, [(iter, coeff); ...]) with no residue. *)
let exact = function
  | Aff { c0; terms; opaque = Names [] } -> Some (c0, terms)
  | _ -> None

let dep_names = function All -> None | Names l -> Some l

let depends_on_any names v =
  match deps v with
  | All -> true
  | Names ds -> List.exists (fun n -> List.mem n names) ds
