exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some ("injected fault at " ^ site)
    | _ -> None)

type state = {
  seed : int;
  default_p : float;
  site_p : (string, float) Hashtbl.t;
  calls : (string, int) Hashtbl.t;
  mutable fired : int;
}

let state : state option ref = ref None

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let configure ?(seed = 42) ~p () =
  state :=
    Some
      {
        seed;
        default_p = clamp01 p;
        site_p = Hashtbl.create 8;
        calls = Hashtbl.create 8;
        fired = 0;
      }

let set_site site p =
  (match !state with None -> configure ~p:0.0 () | Some _ -> ());
  match !state with
  | None -> assert false
  | Some s -> Hashtbl.replace s.site_p site (clamp01 p)

let reset () = state := None
let active () = !state <> None
let injected_total () = match !state with None -> 0 | Some s -> s.fired

(* splitmix64 finalizer over a structural hash of (seed, site, key): cheap,
   stateless, and well-distributed enough for probability thresholds. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let uniform ~seed ~site ~key =
  let h = Int64.of_int (Hashtbl.hash (seed, site, key)) in
  let m = mix64 (Int64.add h 0x9e3779b97f4a7c15L) in
  Int64.to_float (Int64.shift_right_logical m 11) /. 9007199254740992.0 (* / 2^53 *)

let fires ?key site =
  match !state with
  | None -> false
  | Some s ->
    let p = match Hashtbl.find_opt s.site_p site with Some p -> p | None -> s.default_p in
    let key =
      match key with
      | Some k -> k
      | None ->
        let n = match Hashtbl.find_opt s.calls site with Some n -> n | None -> 0 in
        Hashtbl.replace s.calls site (n + 1);
        n
    in
    let hit = p > 0.0 && uniform ~seed:s.seed ~site ~key < p in
    if hit then s.fired <- s.fired + 1;
    hit

let inject ?key site = if fires ?key site then raise (Injected site)
