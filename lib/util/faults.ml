exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some ("injected fault at " ^ site)
    | _ -> None)

type state = {
  seed : int;
  default_p : float;
  site_p : (string, float) Hashtbl.t;
  calls : (string, int) Hashtbl.t;
  fired : int Atomic.t;
}

let state : state option ref = ref None

(* Ambient per-domain key, installed by [with_key] around a unit of work
   (e.g. one DSE point). Sites probed without an explicit key inside that
   scope use it instead of the per-site call counter, which keeps their
   decisions a pure function of the point index — the property that makes
   parallel sweeps order-independent and resumed sweeps replayable. The
   key is domain-local, so concurrent worker domains each see their own. *)
let ambient : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_key key f =
  let slot = Domain.DLS.get ambient in
  let saved = !slot in
  slot := Some key;
  Fun.protect ~finally:(fun () -> slot := saved) f

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let configure ?(seed = 42) ~p () =
  state :=
    Some
      {
        seed;
        default_p = clamp01 p;
        site_p = Hashtbl.create 8;
        calls = Hashtbl.create 8;
        fired = Atomic.make 0;
      }

let set_site site p =
  (match !state with None -> configure ~p:0.0 () | Some _ -> ());
  match !state with
  | None -> assert false
  | Some s -> Hashtbl.replace s.site_p site (clamp01 p)

let reset () = state := None
let active () = !state <> None
let injected_total () = match !state with None -> 0 | Some s -> Atomic.get s.fired

(* splitmix64 finalizer over a structural hash of (seed, site, key): cheap,
   stateless, and well-distributed enough for probability thresholds. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let uniform ~seed ~site ~key =
  let h = Int64.of_int (Hashtbl.hash (seed, site, key)) in
  let m = mix64 (Int64.add h 0x9e3779b97f4a7c15L) in
  Int64.to_float (Int64.shift_right_logical m 11) /. 9007199254740992.0 (* / 2^53 *)

let fires ?key site =
  match !state with
  | None -> false
  | Some s ->
    let p = match Hashtbl.find_opt s.site_p site with Some p -> p | None -> s.default_p in
    let key =
      match key with
      | Some k -> k
      | None -> (
        match !(Domain.DLS.get ambient) with
        | Some k -> k
        | None ->
          (* Call-counter fallback: only reachable outside a [with_key]
             scope, i.e. on a single domain — the Hashtbl is safe here. *)
          let n = match Hashtbl.find_opt s.calls site with Some n -> n | None -> 0 in
          Hashtbl.replace s.calls site (n + 1);
          n)
    in
    let hit = p > 0.0 && uniform ~seed:s.seed ~site ~key < p in
    if hit then Atomic.incr s.fired;
    hit

let inject ?key site = if fires ?key site then raise (Injected site)
