(** Deterministic fault injection for robustness testing.

    A process-global registry of named fault sites. Injection is off by
    default and costs one flag check per probe; tests and the
    [dhdl dse --inject-faults P] dev flag turn it on with a seed and a
    default per-site firing probability, optionally overridden per site.

    Decisions are a pure function of [(seed, site, key)], where [key] is
    either supplied by the caller (e.g. the DSE point index, so a resumed
    sweep sees the same faults as an uninterrupted one) or a per-site call
    counter. Two runs with the same configuration and the same keys observe
    the same faults — which is what makes checkpoint/resume and golden-file
    tests of the failure paths possible.

    Site names are ad-hoc strings owned by the guarded code. In-tree sites:
    [dse.generator] / [dse.lint] / [dse.estimator] / [dse.non_finite] (the
    sweep's per-point barriers, keyed by point index),
    [estimator.nn_correction] (forces the analytical-fallback path), and
    the DSE server's [serve.sock_read] / [serve.sock_write] (transient
    socket I/O, absorbed by bounded retry), [serve.session_store] (session
    spec/summary writes, retried), and [serve.handler] (a handler crash,
    keyed by (request id, attempt) so retries re-roll — drives the
    quarantine path). *)

exception Injected of string
(** Raised by {!inject} when the site fires; the payload is the site name.
    A [Printexc] printer is registered, so [Printexc.to_string] renders it
    as ["injected fault at <site>"]. *)

val configure : ?seed:int -> p:float -> unit -> unit
(** Enable injection: every site fires with probability [p] (clamped to
    [\[0, 1\]]) unless overridden by {!set_site}. [seed] defaults to 42.
    Replaces any previous configuration and clears call counters. *)

val set_site : string -> float -> unit
(** Override the firing probability of one site. Implicitly configures
    with [p = 0] (and the default seed) when injection was off, so
    [set_site "dse.generator" 1.0] alone targets exactly one site. *)

val reset : unit -> unit
(** Disable injection and drop all per-site state. *)

val active : unit -> bool

val with_key : int -> (unit -> 'a) -> 'a
(** [with_key k f] runs [f] with [k] as the ambient key for the calling
    domain: sites probed without an explicit [?key] inside [f] use [k]
    instead of their call counter, making their decisions a pure function
    of [(seed, site, k)]. Scopes nest (the previous ambient key is
    restored on exit) and are domain-local, so concurrent worker domains
    keyed by different point indices never interfere — the DSE sweep wraps
    each point's pipeline in [with_key index] so even fault sites buried
    inside the estimator replay identically under resume and under any
    [--jobs] level. *)

val fires : ?key:int -> string -> bool
(** Decide (deterministically) whether the site fires this time. Without
    [key], the ambient {!with_key} key is used when one is installed;
    otherwise an internal per-site call counter, so successive calls walk
    a fixed pseudo-random sequence. Always [false] when inactive. *)

val inject : ?key:int -> string -> unit
(** [inject site] raises {!Injected} when [fires site] — the one-liner to
    drop at the top of a guarded stage. No-op when inactive. *)

val injected_total : unit -> int
(** Faults fired (via {!fires} or {!inject}) since the last
    {!configure}/{!reset}. *)
