module Intmath = Dhdl_util.Intmath
module Rng = Dhdl_util.Rng

type point = (string * int) list

type t = {
  sp_name : string;
  sp_dims : (string * int list) list;
  sp_legal : point -> bool;
}

let make ~name ~dims ?(legal = fun _ -> true) () =
  assert (dims <> []);
  List.iter (fun (n, vs) -> if vs = [] then invalid_arg ("Space.make: empty domain " ^ n)) dims;
  { sp_name = name; sp_dims = dims; sp_legal = legal }

let name t = t.sp_name
let dims t = t.sp_dims

let raw_size t = List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 t.sp_dims

let enumerate t =
  let rec go dims acc =
    match dims with
    | [] -> [ List.rev acc ]
    | (n, vs) :: rest -> List.concat_map (fun v -> go rest ((n, v) :: acc)) vs
  in
  List.filter t.sp_legal (go t.sp_dims [])

let point_at t idx =
  (* Mixed-radix decoding of a flat index into a point. *)
  let _, point =
    List.fold_left
      (fun (i, acc) (n, vs) ->
        let k = List.length vs in
        (i / k, (n, List.nth vs (i mod k)) :: acc))
      (idx, []) (List.rev t.sp_dims)
  in
  point

let sample t ~seed ~max_points =
  let total = raw_size t in
  if total <= max_points * 2 then begin
    let all = enumerate t in
    if List.length all <= max_points then all
    else Dhdl_util.Rng.sample (Rng.create seed) all max_points
  end
  else begin
    let rng = Rng.create seed in
    let seen = Hashtbl.create (max_points * 2) in
    let out = ref [] in
    let count = ref 0 in
    (* Cap the draw attempts so heavily-illegal spaces still terminate. *)
    let attempts = ref 0 in
    let max_attempts = max_points * 50 in
    while !count < max_points && !attempts < max_attempts do
      incr attempts;
      let idx = Rng.int rng total in
      if not (Hashtbl.mem seen idx) then begin
        Hashtbl.replace seen idx ();
        let p = point_at t idx in
        if t.sp_legal p then begin
          out := p :: !out;
          incr count
        end
      end
    done;
    List.rev !out
  end

let mem_limit_words = 65_536

let divisors_for extent = Intmath.divisors extent

let par_candidates extent = List.filter (fun d -> d <= 64) (Intmath.divisors extent)
