lib/dse/explore.mli: Dhdl_ir Dhdl_model Space
