lib/dse/space.ml: Dhdl_util Hashtbl List
