lib/dse/explore.ml: Buffer Dhdl_model Dhdl_util List Printf Space String Unix
