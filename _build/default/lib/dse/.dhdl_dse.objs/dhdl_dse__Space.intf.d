lib/dse/space.mli:
