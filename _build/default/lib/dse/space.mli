(** Design parameter spaces and the paper's pruning heuristics.

    A space is a named cartesian product of integer parameter domains plus a
    legality predicate. Section IV.C prunes the raw space to a "legal"
    subspace: parallelization factors that divide iteration counts, tile
    sizes that divide data dimensions, banking folded into parallelization,
    and bounded on-chip memory sizes. *)

type point = (string * int) list
(** One assignment of every parameter, in declaration order. *)

type t

val make :
  name:string -> dims:(string * int list) list -> ?legal:(point -> bool) -> unit -> t
(** [dims] gives each parameter its candidate values (already pruned to
    divisors where applicable); [legal] rejects cross-parameter illegal
    combinations (e.g. tile buffers exceeding the on-chip budget). *)

val name : t -> string
val dims : t -> (string * int list) list

val raw_size : t -> int
(** Cartesian-product cardinality before the legality predicate. *)

val enumerate : t -> point list
(** All legal points (intended for spaces that fit in memory). *)

val sample : t -> seed:int -> max_points:int -> point list
(** Up to [max_points] distinct legal points, uniformly sampled with a
    deterministic seed; falls back to full enumeration when the raw space
    is not much larger than the request. Illegal points are discarded
    immediately, as in the paper. *)

val mem_limit_words : int
(** Default cap on each on-chip memory (words), the "total size of each
    local memory is limited to a fixed maximum value" heuristic. *)

val divisors_for : int -> int list
(** Candidate tile sizes / parallelization factors for an extent: its
    divisors (capped at the extent). *)

val par_candidates : int -> int list
(** Divisors of the extent that are <= 64 — sensible vector widths. *)
