let operand = function
  | Ir.Const f -> Printf.sprintf "%g" f
  | Ir.Iter name -> name
  | Ir.Value v -> Printf.sprintf "v%d" v

let addr_str addr = String.concat ", " (List.map operand addr)

let stmt = function
  | Ir.Sop { dst; op; args; ty } ->
    Printf.sprintf "v%d : %s = %s(%s)" dst (Dtype.to_string ty) (Op.name op)
      (String.concat ", " (List.map operand args))
  | Ir.Sload { dst; mem; addr; _ } ->
    Printf.sprintf "v%d = %s(%s)" dst mem.Ir.mem_name (addr_str addr)
  | Ir.Sstore { mem; addr; data } ->
    Printf.sprintf "%s(%s) = %s" mem.Ir.mem_name (addr_str addr) (operand data)
  | Ir.Sread_reg { dst; reg } -> Printf.sprintf "v%d = %s" dst reg.Ir.mem_name
  | Ir.Swrite_reg { reg; data } -> Printf.sprintf "%s := %s" reg.Ir.mem_name (operand data)
  | Ir.Spush { queue; data } -> Printf.sprintf "%s.push(%s)" queue.Ir.mem_name (operand data)
  | Ir.Spop { dst; queue } -> Printf.sprintf "v%d = %s.pop()" dst queue.Ir.mem_name

let mem_kind_str = function
  | Ir.Offchip -> "OffChipMem"
  | Ir.Bram -> "BRAM"
  | Ir.Reg -> "Reg"
  | Ir.Queue -> "Queue"

let mem m =
  let dims =
    match m.Ir.mem_dims with
    | [] -> ""
    | dims -> "(" ^ String.concat ", " (List.map string_of_int dims) ^ ")"
  in
  let extras =
    (if m.Ir.mem_banks > 1 then [ Printf.sprintf "banks=%d" m.Ir.mem_banks ] else [])
    @ if m.Ir.mem_double then [ "double" ] else []
  in
  let extras = match extras with [] -> "" | xs -> "  // " ^ String.concat ", " xs in
  Printf.sprintf "val %s = %s[%s]%s%s" m.Ir.mem_name (mem_kind_str m.Ir.mem_kind)
    (Dtype.to_string m.Ir.mem_ty) dims extras

let counters_str counters =
  String.concat ", "
    (List.map
       (fun c ->
         if c.Ir.ctr_start = 0 && c.Ir.ctr_step = 1 then
           Printf.sprintf "%s < %d" c.Ir.ctr_name c.Ir.ctr_stop
         else
           Printf.sprintf "%s in %d until %d by %d" c.Ir.ctr_name c.Ir.ctr_start c.Ir.ctr_stop
             c.Ir.ctr_step)
       counters)

let rec ctrl_lines indent ctrl =
  let pad = String.make indent ' ' in
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let head =
      Printf.sprintf "%sPipe %s(%s) par=%d {" pad loop.Ir.lp_label
        (counters_str loop.Ir.lp_counters) loop.Ir.lp_par
    in
    let stmts = List.map (fun s -> pad ^ "  " ^ stmt s) body in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [
          Printf.sprintf "%s  reduce(%s) into %s: %s" pad (Op.name r.Ir.sr_op)
            r.Ir.sr_out.Ir.mem_name (operand r.Ir.sr_value);
        ]
    in
    (head :: stmts) @ red @ [ pad ^ "}" ]
  | Ir.Loop { loop; pipelined; stages; reduce } ->
    let kind = if pipelined then "MetaPipe" else "Sequential" in
    let head =
      if loop.Ir.lp_counters = [] then Printf.sprintf "%s%s %s {" pad kind loop.Ir.lp_label
      else
        Printf.sprintf "%s%s %s(%s) par=%d {" pad kind loop.Ir.lp_label
          (counters_str loop.Ir.lp_counters) loop.Ir.lp_par
    in
    let inner = List.concat_map (ctrl_lines (indent + 2)) stages in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [
          Printf.sprintf "%s  reduce(%s): %s -> %s" pad (Op.name r.Ir.mr_op)
            r.Ir.mr_src.Ir.mem_name r.Ir.mr_dst.Ir.mem_name;
        ]
    in
    (head :: inner) @ red @ [ pad ^ "}" ]
  | Ir.Parallel { par_label; stages } ->
    let head = Printf.sprintf "%sParallel %s {" pad par_label in
    (head :: List.concat_map (ctrl_lines (indent + 2)) stages) @ [ pad ^ "}" ]
  | Ir.Tile_load { src; dst; offsets; tile; par } ->
    [
      Printf.sprintf "%s%s := %s(%s :: tile %s) par=%d" pad dst.Ir.mem_name src.Ir.mem_name
        (addr_str offsets)
        (String.concat "x" (List.map string_of_int tile))
        par;
    ]
  | Ir.Tile_store { dst; src; offsets; tile; par } ->
    [
      Printf.sprintf "%s%s(%s :: tile %s) := %s par=%d" pad dst.Ir.mem_name (addr_str offsets)
        (String.concat "x" (List.map string_of_int tile))
        src.Ir.mem_name par;
    ]

let ctrl c = String.concat "\n" (ctrl_lines 0 c)

let design (d : Ir.design) =
  let params =
    match d.d_params with
    | [] -> []
    | ps ->
      [
        "// parameters: "
        ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ps);
      ]
  in
  let mems = List.map mem d.d_mems in
  String.concat "\n"
    ((Printf.sprintf "design %s {" d.d_name :: List.map (fun s -> "  " ^ s) (params @ mems))
    @ List.map (fun s -> "  " ^ s) (ctrl_lines 0 d.d_top)
    @ [ "}" ])
