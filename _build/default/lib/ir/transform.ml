(* The passes run in sequence over the ANF body: constant folding, CSE,
   then dead-value elimination. A substitution environment maps value ids
   to replacement operands; every operand is resolved through it before
   use, so the passes compose in one forward walk. *)

let resolve subst o =
  match o with
  | Ir.Value v -> ( match Hashtbl.find_opt subst v with Some o' -> o' | None -> o)
  | Ir.Const _ | Ir.Iter _ -> o

let stmt_operands = function
  | Ir.Sop { args; _ } -> args
  | Ir.Sload { addr; _ } -> addr
  | Ir.Sstore { addr; data; _ } -> data :: addr
  | Ir.Sread_reg _ | Ir.Spop _ -> []
  | Ir.Swrite_reg { data; _ } | Ir.Spush { data; _ } -> [ data ]

let optimize_body ?(keep = []) body =
  let subst : (int, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
  (* Memories that are stored (or registers written) anywhere in this body:
     their loads are not safe to merge or reorder past each other, so CSE
     and folding skip them. *)
  let stored = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s with
      | Ir.Sstore { mem; _ } -> Hashtbl.replace stored mem.Ir.mem_id ()
      | Ir.Swrite_reg { reg; _ } -> Hashtbl.replace stored reg.Ir.mem_id ()
      | Ir.Spush { queue; _ } | Ir.Spop { queue; _ } -> Hashtbl.replace stored queue.Ir.mem_id ()
      | Ir.Sop _ | Ir.Sload _ | Ir.Sread_reg _ -> ())
    body;
  let cse : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let key_of_operand = function
    | Ir.Const f -> Printf.sprintf "c%h" f
    | Ir.Iter s -> "i" ^ s
    | Ir.Value v -> Printf.sprintf "v%d" v
  in
  let forward =
    List.filter_map
      (fun stmt ->
        match stmt with
        | Ir.Sop { dst; op; args; ty } -> (
          let args = List.map (resolve subst) args in
          let all_const =
            List.for_all (function Ir.Const _ -> true | _ -> false) args
          in
          if all_const then begin
            (* Constant folding. *)
            let folded =
              Op.eval op (List.map (function Ir.Const f -> f | _ -> assert false) args)
            in
            Hashtbl.replace subst dst (Ir.Const folded);
            None
          end
          else
            let key =
              Printf.sprintf "op:%s:%s:%s" (Op.name op) (Dtype.to_string ty)
                (String.concat "," (List.map key_of_operand args))
            in
            match Hashtbl.find_opt cse key with
            | Some prev ->
              Hashtbl.replace subst dst (Ir.Value prev);
              None
            | None ->
              Hashtbl.replace cse key dst;
              Some (Ir.Sop { dst; op; args; ty }))
        | Ir.Sload { dst; mem; addr; ty } -> (
          let addr = List.map (resolve subst) addr in
          if Hashtbl.mem stored mem.Ir.mem_id then Some (Ir.Sload { dst; mem; addr; ty })
          else
            let key =
              Printf.sprintf "ld:%d:%s" mem.Ir.mem_id
                (String.concat "," (List.map key_of_operand addr))
            in
            match Hashtbl.find_opt cse key with
            | Some prev ->
              Hashtbl.replace subst dst (Ir.Value prev);
              None
            | None ->
              Hashtbl.replace cse key dst;
              Some (Ir.Sload { dst; mem; addr; ty }))
        | Ir.Sstore { mem; addr; data } ->
          Some
            (Ir.Sstore
               { mem; addr = List.map (resolve subst) addr; data = resolve subst data })
        | Ir.Sread_reg _ | Ir.Spop _ -> Some stmt
        | Ir.Swrite_reg { reg; data } -> Some (Ir.Swrite_reg { reg; data = resolve subst data })
        | Ir.Spush { queue; data } -> Some (Ir.Spush { queue; data = resolve subst data }))
      body
  in
  (* Dead-value elimination: work backwards from effects and kept values. *)
  let live = Hashtbl.create 16 in
  let mark o =
    match o with Ir.Value v -> Hashtbl.replace live v () | Ir.Const _ | Ir.Iter _ -> ()
  in
  List.iter (fun o -> mark (resolve subst o)) keep;
  let backward =
    List.fold_left
      (fun acc stmt ->
        let is_effect =
          match stmt with
          | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ | Ir.Spop _ -> true
          | Ir.Sop _ | Ir.Sload _ | Ir.Sread_reg _ -> false
        in
        let defines =
          match stmt with
          | Ir.Sop { dst; _ } | Ir.Sload { dst; _ } | Ir.Sread_reg { dst; _ } | Ir.Spop { dst; _ } ->
            Some dst
          | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ -> None
        in
        let needed =
          is_effect || match defines with Some d -> Hashtbl.mem live d | None -> false
        in
        if needed then begin
          List.iter mark (stmt_operands stmt);
          stmt :: acc
        end
        else acc)
      [] (List.rev forward)
  in
  (backward, resolve subst)

let optimize_ctrl ctrl =
  let rec go = function
    | Ir.Pipe { loop; body; reduce } ->
      let keep = match reduce with Some r -> [ r.Ir.sr_value ] | None -> [] in
      let body, subst = optimize_body ~keep body in
      let reduce =
        Option.map (fun r -> { r with Ir.sr_value = subst r.Ir.sr_value }) reduce
      in
      Ir.Pipe { loop; body; reduce }
    | Ir.Loop l -> Ir.Loop { l with stages = List.map go l.stages }
    | Ir.Parallel p -> Ir.Parallel { p with stages = List.map go p.stages }
    | (Ir.Tile_load _ | Ir.Tile_store _) as leaf -> leaf
  in
  go ctrl

let optimize (d : Ir.design) =
  let optimized = { d with Ir.d_top = optimize_ctrl d.Ir.d_top } in
  Analysis.infer_banking optimized;
  Analysis.infer_double_buffering optimized;
  optimized

let body_size = function Ir.Pipe { body; _ } -> List.length body | _ -> 0
