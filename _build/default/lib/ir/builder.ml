type t = {
  name : string;
  params : (string * int) list;
  mutable next_mem : int;
  mutable mems : Ir.mem list;
}

let create ?(params = []) name = { name; params; next_mem = 0; mems = [] }

let add_mem t kind name ty dims =
  let m =
    {
      Ir.mem_id = t.next_mem;
      mem_name = name;
      mem_kind = kind;
      mem_ty = ty;
      mem_dims = dims;
      mem_banks = 1;
      mem_double = false;
    }
  in
  t.next_mem <- t.next_mem + 1;
  t.mems <- m :: t.mems;
  m

let offchip t name ty dims = add_mem t Ir.Offchip name ty dims
let bram t name ty dims = add_mem t Ir.Bram name ty dims
let reg t name ty = add_mem t Ir.Reg name ty []
let queue t name ty ~depth = add_mem t Ir.Queue name ty [ depth ]

let const f = Ir.Const f
let iter name = Ir.Iter name

type pipe = { mutable next_value : int; mutable stmts : Ir.stmt list }

let fresh_pipe () = { next_value = 0; stmts = [] }

let fresh_value pb =
  let v = pb.next_value in
  pb.next_value <- v + 1;
  v

let push pb stmt = pb.stmts <- stmt :: pb.stmts

let op pb ?ty o args =
  let ty =
    match ty with
    | Some ty -> ty
    | None ->
      if Op.is_comparison o || Op.is_logical o then Dtype.bool_t else Dtype.float32
  in
  let dst = fresh_value pb in
  push pb (Ir.Sop { dst; op = o; args; ty });
  Ir.Value dst

let load pb mem addr =
  let dst = fresh_value pb in
  push pb (Ir.Sload { dst; mem; addr; ty = mem.Ir.mem_ty });
  Ir.Value dst

let store pb mem addr data = push pb (Ir.Sstore { mem; addr; data })

let read_reg pb r =
  let dst = fresh_value pb in
  push pb (Ir.Sread_reg { dst; reg = r });
  Ir.Value dst

let write_reg pb r data = push pb (Ir.Swrite_reg { reg = r; data })

let push pb q data = push pb (Ir.Spush { queue = q; data })

let pop pb q =
  let dst = fresh_value pb in
  (fun stmt -> pb.stmts <- stmt :: pb.stmts) (Ir.Spop { dst; queue = q });
  Ir.Value dst

let add pb a b = op pb Op.Add [ a; b ]
let sub pb a b = op pb Op.Sub [ a; b ]
let mul pb a b = op pb Op.Mul [ a; b ]
let div pb a b = op pb Op.Div [ a; b ]
let mux pb c a b = op pb Op.Mux [ c; a; b ]

type counters = (string * int * int * int) list

let to_counters specs =
  List.map
    (fun (ctr_name, ctr_start, ctr_stop, ctr_step) ->
      { Ir.ctr_name; ctr_start; ctr_stop; ctr_step })
    specs

let pipe ~label ~counters ?(par = 1) build =
  let pb = fresh_pipe () in
  build pb;
  Ir.Pipe
    {
      loop =
        { lp_label = label; lp_counters = to_counters counters; lp_par = par; lp_pattern = Ir.Map_pattern };
      body = List.rev pb.stmts;
      reduce = None;
    }

let reduce_pipe ~label ~counters ?(par = 1) ~op:red_op ~out build =
  let pb = fresh_pipe () in
  let value = build pb in
  Ir.Pipe
    {
      loop =
        {
          lp_label = label;
          lp_counters = to_counters counters;
          lp_par = par;
          lp_pattern = Ir.Reduce_pattern;
        };
      body = List.rev pb.stmts;
      reduce = Some { Ir.sr_op = red_op; sr_out = out; sr_value = value };
    }

let metapipe ~label ~counters ?(par = 1) ?(pipelined = true) ?reduce stages =
  let reduce =
    Option.map (fun (mr_op, mr_src, mr_dst) -> { Ir.mr_op; mr_src; mr_dst }) reduce
  in
  let pattern = match reduce with Some _ -> Ir.Reduce_pattern | None -> Ir.Map_pattern in
  Ir.Loop
    {
      loop =
        { lp_label = label; lp_counters = to_counters counters; lp_par = par; lp_pattern = pattern };
      pipelined;
      stages;
      reduce;
    }

let sequential_block ~label stages =
  Ir.Loop
    {
      loop = { lp_label = label; lp_counters = []; lp_par = 1; lp_pattern = Ir.Map_pattern };
      pipelined = false;
      stages;
      reduce = None;
    }

let parallel ~label stages = Ir.Parallel { par_label = label; stages }

let tile_load ~src ~dst ~offsets ?(par = 1) () =
  Ir.Tile_load { src; dst; offsets; tile = dst.Ir.mem_dims; par }

let tile_store ~dst ~src ~offsets ?(par = 1) () =
  Ir.Tile_store { dst; src; offsets; tile = src.Ir.mem_dims; par }

let finish t ~top =
  let design =
    { Ir.d_name = t.name; d_mems = List.rev t.mems; d_top = top; d_params = t.params }
  in
  Analysis.infer_banking design;
  Analysis.infer_double_buffering design;
  design
