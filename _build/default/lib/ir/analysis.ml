type access = {
  acc_mem : Ir.mem;
  acc_write : bool;
  acc_par : int;
  acc_ctrl : string;
}

let stmt_accesses ~par ~label stmts =
  List.filter_map
    (fun stmt ->
      match stmt with
      | Ir.Sload { mem; _ } -> Some { acc_mem = mem; acc_write = false; acc_par = par; acc_ctrl = label }
      | Ir.Sstore { mem; _ } -> Some { acc_mem = mem; acc_write = true; acc_par = par; acc_ctrl = label }
      | Ir.Sread_reg { reg; _ } -> Some { acc_mem = reg; acc_write = false; acc_par = 1; acc_ctrl = label }
      | Ir.Swrite_reg { reg; _ } -> Some { acc_mem = reg; acc_write = true; acc_par = 1; acc_ctrl = label }
      | Ir.Spush { queue; _ } -> Some { acc_mem = queue; acc_write = true; acc_par = 1; acc_ctrl = label }
      | Ir.Spop { queue; _ } -> Some { acc_mem = queue; acc_write = false; acc_par = 1; acc_ctrl = label }
      | Ir.Sop _ -> None)
    stmts

let ctrl_accesses ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let base = stmt_accesses ~par:loop.Ir.lp_par ~label:loop.Ir.lp_label body in
    let red =
      match reduce with
      | None -> []
      | Some r ->
        [ { acc_mem = r.Ir.sr_out; acc_write = true; acc_par = 1; acc_ctrl = loop.Ir.lp_label } ]
    in
    base @ red
  | Ir.Loop { loop; reduce; _ } -> begin
    match reduce with
    | None -> []
    | Some r ->
      (* The implicit reduction stage streams src into dst element-wise,
         with the loop's parallelization as its vector width. *)
      let par = max 1 loop.Ir.lp_par in
      [
        { acc_mem = r.Ir.mr_src; acc_write = false; acc_par = par; acc_ctrl = loop.Ir.lp_label };
        { acc_mem = r.Ir.mr_dst; acc_write = true; acc_par = par; acc_ctrl = loop.Ir.lp_label };
        { acc_mem = r.Ir.mr_dst; acc_write = false; acc_par = par; acc_ctrl = loop.Ir.lp_label };
      ]
  end
  | Ir.Parallel _ -> []
  | Ir.Tile_load { src; dst; par; _ } ->
    let label = Ir.ctrl_label ctrl in
    [
      { acc_mem = src; acc_write = false; acc_par = par; acc_ctrl = label };
      { acc_mem = dst; acc_write = true; acc_par = par; acc_ctrl = label };
    ]
  | Ir.Tile_store { dst; src; par; _ } ->
    let label = Ir.ctrl_label ctrl in
    [
      { acc_mem = src; acc_write = false; acc_par = par; acc_ctrl = label };
      { acc_mem = dst; acc_write = true; acc_par = par; acc_ctrl = label };
    ]

let accesses (d : Ir.design) =
  List.concat_map ctrl_accesses (Traverse.all_ctrls d)

let accesses_of_mem d mem =
  List.filter (fun a -> Ir.mem_equal a.acc_mem mem) (accesses d)

let infer_banking (d : Ir.design) =
  let accs = accesses d in
  List.iter
    (fun m ->
      match m.Ir.mem_kind with
      | Ir.Offchip -> m.Ir.mem_banks <- 1
      | Ir.Bram | Ir.Reg | Ir.Queue ->
        let width =
          List.fold_left
            (fun acc a -> if Ir.mem_equal a.acc_mem m then max acc a.acc_par else acc)
            1 accs
        in
        m.Ir.mem_banks <- width)
    d.d_mems;
  (* Element-wise reductions stream at the width of their source buffer, so
     the accumulator needs matching banks; propagate along reduce chains
     (e.g. GDA's sigmaTile -> sigmaBlk -> sigT) to a fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Traverse.iter_ctrl
      (fun ctrl ->
        match ctrl with
        | Ir.Loop { reduce = Some r; _ } ->
          let src = r.Ir.mr_src and dst = r.Ir.mr_dst in
          if dst.Ir.mem_kind <> Ir.Offchip && dst.Ir.mem_banks < src.Ir.mem_banks then begin
            dst.Ir.mem_banks <- src.Ir.mem_banks;
            changed := true
          end
        | Ir.Loop _ | Ir.Pipe _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ())
      d.d_top
  done

let dedup_mems mems =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m.Ir.mem_id then false
      else begin
        Hashtbl.add seen m.Ir.mem_id ();
        true
      end)
    mems

let mems_by ~write ctrl =
  let collected =
    Traverse.fold_ctrl
      (fun acc c ->
        List.fold_left
          (fun acc a -> if a.acc_write = write then a.acc_mem :: acc else acc)
          acc (ctrl_accesses c))
      [] ctrl
  in
  dedup_mems collected

let written_mems ctrl = mems_by ~write:true ctrl
let read_mems ctrl = mems_by ~write:false ctrl

let infer_double_buffering (d : Ir.design) =
  List.iter (fun m -> m.Ir.mem_double <- false) d.d_mems;
  let mark_cross_stage stages extra_reads =
    (* A buffer written in one stage and read in a later (or earlier —
       loop-carried) stage of a pipelined controller needs double buffering
       so consecutive outer iterations can overlap. *)
    let tagged =
      List.mapi (fun i st -> (i, written_mems st, read_mems st)) stages
    in
    List.iter
      (fun (i, writes, _) ->
        List.iter
          (fun m ->
            let read_elsewhere =
              List.exists
                (fun (j, _, reads) -> j <> i && List.exists (Ir.mem_equal m) reads)
                tagged
              || List.exists (Ir.mem_equal m) extra_reads
            in
            if read_elsewhere && m.Ir.mem_kind <> Ir.Offchip then m.Ir.mem_double <- true)
          writes)
      tagged
  in
  Traverse.iter_ctrl
    (fun ctrl ->
      match ctrl with
      | Ir.Loop { pipelined = true; stages; reduce; _ } ->
        let extra = match reduce with None -> [] | Some r -> [ r.Ir.mr_src ] in
        mark_cross_stage stages extra;
        (* The reduction's source buffer feeds the implicit combine stage. *)
        Option.iter (fun r -> r.Ir.mr_src.Ir.mem_double <- true) reduce
      | Ir.Loop _ | Ir.Pipe _ | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> ())
    d.d_top

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate (d : Ir.design) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let declared = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace declared m.Ir.mem_id m) d.d_mems;
  let check_declared ~where m =
    if not (Hashtbl.mem declared m.Ir.mem_id) then
      err "%s: memory %s is not declared in the design" where m.Ir.mem_name
  in
  List.iter
    (fun m ->
      if List.exists (fun dim -> dim <= 0) m.Ir.mem_dims then
        err "memory %s has a non-positive dimension" m.Ir.mem_name;
      match m.Ir.mem_kind with
      | Ir.Reg ->
        if m.Ir.mem_dims <> [] then err "register %s must be scalar" m.Ir.mem_name
      | Ir.Offchip | Ir.Bram ->
        if m.Ir.mem_dims = [] then err "memory %s needs at least one dimension" m.Ir.mem_name
      | Ir.Queue -> ())
    d.d_mems;
  let check_counters label counters =
    List.iter
      (fun c ->
        if c.Ir.ctr_step <= 0 then err "%s: counter %s has non-positive step" label c.Ir.ctr_name;
        if c.Ir.ctr_stop <= c.Ir.ctr_start then
          err "%s: counter %s is empty (start %d, stop %d)" label c.Ir.ctr_name c.Ir.ctr_start
            c.Ir.ctr_stop)
      counters
  in
  let check_operand ~where ~bound_iters ~defined = function
    | Ir.Const _ -> ()
    | Ir.Iter name ->
      if not (List.mem name bound_iters) then err "%s: iterator %s is not in scope" where name
    | Ir.Value v ->
      if not (Hashtbl.mem defined v) then err "%s: value v%d used before definition" where v
  in
  let check_pipe ~bound_iters loop body reduce =
    let label = loop.Ir.lp_label in
    if loop.Ir.lp_par < 1 then err "%s: parallelization factor must be >= 1" label;
    check_counters label loop.Ir.lp_counters;
    let defined = Hashtbl.create 16 in
    let check_addr ~where mem addr =
      let want = List.length mem.Ir.mem_dims in
      if List.length addr <> want then
        err "%s: address arity %d does not match %d-dimensional memory %s" where
          (List.length addr) want mem.Ir.mem_name
    in
    List.iter
      (fun stmt ->
        match stmt with
        | Ir.Sop { dst; op; args; _ } ->
          if List.length args <> Op.arity op then
            err "%s: op %s applied to %d args (arity %d)" label (Op.name op) (List.length args)
              (Op.arity op);
          List.iter (check_operand ~where:label ~bound_iters ~defined) args;
          if Hashtbl.mem defined dst then err "%s: value v%d defined twice" label dst;
          Hashtbl.replace defined dst ()
        | Ir.Sload { dst; mem; addr; _ } ->
          check_declared ~where:label mem;
          if mem.Ir.mem_kind <> Ir.Bram then
            err "%s: Ld targets BRAM, not %s" label mem.Ir.mem_name;
          check_addr ~where:label mem addr;
          List.iter (check_operand ~where:label ~bound_iters ~defined) addr;
          if Hashtbl.mem defined dst then err "%s: value v%d defined twice" label dst;
          Hashtbl.replace defined dst ()
        | Ir.Sstore { mem; addr; data } ->
          check_declared ~where:label mem;
          if mem.Ir.mem_kind <> Ir.Bram then
            err "%s: St targets BRAM, not %s" label mem.Ir.mem_name;
          check_addr ~where:label mem addr;
          List.iter (check_operand ~where:label ~bound_iters ~defined) (data :: addr)
        | Ir.Sread_reg { dst; reg } ->
          check_declared ~where:label reg;
          if reg.Ir.mem_kind <> Ir.Reg then err "%s: reg read of non-register %s" label reg.Ir.mem_name;
          if Hashtbl.mem defined dst then err "%s: value v%d defined twice" label dst;
          Hashtbl.replace defined dst ()
        | Ir.Swrite_reg { reg; data } ->
          check_declared ~where:label reg;
          if reg.Ir.mem_kind <> Ir.Reg then
            err "%s: reg write of non-register %s" label reg.Ir.mem_name;
          check_operand ~where:label ~bound_iters ~defined data
        | Ir.Spush { queue; data } ->
          check_declared ~where:label queue;
          if queue.Ir.mem_kind <> Ir.Queue then
            err "%s: push into non-queue %s" label queue.Ir.mem_name;
          check_operand ~where:label ~bound_iters ~defined data
        | Ir.Spop { dst; queue } ->
          check_declared ~where:label queue;
          if queue.Ir.mem_kind <> Ir.Queue then
            err "%s: pop from non-queue %s" label queue.Ir.mem_name;
          if Hashtbl.mem defined dst then err "%s: value v%d defined twice" label dst;
          Hashtbl.replace defined dst ())
      body;
    match reduce with
    | None -> ()
    | Some r ->
      check_declared ~where:label r.Ir.sr_out;
      if r.Ir.sr_out.Ir.mem_kind <> Ir.Reg then
        err "%s: scalar reduce target %s must be a register" label r.Ir.sr_out.Ir.mem_name;
      if not (Op.is_reduction_op r.Ir.sr_op) then
        err "%s: %s is not a reduction operator" label (Op.name r.Ir.sr_op);
      check_operand ~where:label ~bound_iters ~defined r.Ir.sr_value
  in
  let check_tile ~where ~offchip ~onchip ~offsets ~tile ~par ~bound_iters =
    check_declared ~where offchip;
    check_declared ~where onchip;
    if offchip.Ir.mem_kind <> Ir.Offchip then
      err "%s: %s must be an OffChipMem" where offchip.Ir.mem_name;
    if onchip.Ir.mem_kind <> Ir.Bram then err "%s: %s must be a BRAM" where onchip.Ir.mem_name;
    if List.length offsets <> List.length offchip.Ir.mem_dims then
      err "%s: offset arity does not match %s" where offchip.Ir.mem_name;
    if List.length tile <> List.length offchip.Ir.mem_dims then
      err "%s: tile rank does not match %s" where offchip.Ir.mem_name;
    if tile <> onchip.Ir.mem_dims then
      err "%s: tile shape does not match buffer %s" where onchip.Ir.mem_name;
    if par < 1 then err "%s: parallelization factor must be >= 1" where;
    let defined = Hashtbl.create 1 in
    List.iter (check_operand ~where ~bound_iters ~defined) offsets
  in
  let rec walk bound_iters ctrl =
    let bound_iters =
      match ctrl with
      | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } ->
        bound_iters @ List.map (fun c -> c.Ir.ctr_name) loop.Ir.lp_counters
      | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> bound_iters
    in
    (match ctrl with
    | Ir.Pipe { loop; body; reduce } -> check_pipe ~bound_iters loop body reduce
    | Ir.Loop { loop; stages; reduce; _ } ->
      if loop.Ir.lp_par < 1 then err "%s: parallelization factor must be >= 1" loop.Ir.lp_label;
      check_counters loop.Ir.lp_label loop.Ir.lp_counters;
      if stages = [] then err "%s: controller has no stages" loop.Ir.lp_label;
      (match reduce with
      | None -> ()
      | Some r ->
        check_declared ~where:loop.Ir.lp_label r.Ir.mr_src;
        check_declared ~where:loop.Ir.lp_label r.Ir.mr_dst;
        if not (Op.is_reduction_op r.Ir.mr_op) then
          err "%s: %s is not a reduction operator" loop.Ir.lp_label (Op.name r.Ir.mr_op);
        if r.Ir.mr_src.Ir.mem_dims <> r.Ir.mr_dst.Ir.mem_dims then
          err "%s: reduce buffers %s and %s have different shapes" loop.Ir.lp_label
            r.Ir.mr_src.Ir.mem_name r.Ir.mr_dst.Ir.mem_name)
    | Ir.Parallel { par_label; stages } ->
      if stages = [] then err "%s: parallel container has no stages" par_label
    | Ir.Tile_load { src; dst; offsets; tile; par } ->
      check_tile ~where:(Ir.ctrl_label ctrl) ~offchip:src ~onchip:dst ~offsets ~tile ~par
        ~bound_iters
    | Ir.Tile_store { dst; src; offsets; tile; par } ->
      check_tile ~where:(Ir.ctrl_label ctrl) ~offchip:dst ~onchip:src ~offsets ~tile ~par
        ~bound_iters);
    List.iter (walk bound_iters) (Traverse.children ctrl)
  in
  walk [] d.d_top;
  List.rev !errors

let validate_exn d =
  match validate d with
  | [] -> ()
  | errs -> failwith (Printf.sprintf "invalid design %s:\n%s" d.d_name (String.concat "\n" errs))
