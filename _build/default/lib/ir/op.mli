(** Primitive operations — the leaf compute nodes of Table I.

    Every primitive node represents a vector computation; the vector width is
    the parallelization factor of the enclosing Pipe. Besides arity and
    naming, this module supplies the reference semantics used by the
    functional interpreter (booleans are encoded as 0.0 / 1.0). *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Neg
  | Abs
  | Sqrt
  | Exp
  | Log
  | Floor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Neq
  | And
  | Or
  | Not
  | Mux  (** [Mux(cond, a, b)] = if cond then a else b *)

val arity : t -> int
val name : t -> string
val all : t list

val is_comparison : t -> bool
val is_logical : t -> bool
val is_multi_cycle : t -> bool
(** Complex primitives (sqrt, log, exp, division) implemented as multi-cycle
    units (paper, Section III.B.1). *)

val eval : t -> float list -> float
(** Reference semantics. Raises [Invalid_argument] on arity mismatch. *)

val is_reduction_op : t -> bool
(** Ops usable as reduction combiners (associative, with identity). *)

val identity_element : t -> float
(** Identity of a reduction op: 0 for Add/Or/Max(-inf)... Raises
    [Invalid_argument] when [is_reduction_op] is false. *)
