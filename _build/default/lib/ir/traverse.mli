(** Generic walks over the controller hierarchy. *)

val children : Ir.ctrl -> Ir.ctrl list
(** Direct sub-controllers (empty for leaves). *)

val iter_ctrl : (Ir.ctrl -> unit) -> Ir.ctrl -> unit
(** Pre-order traversal including the root. *)

val fold_ctrl : ('a -> Ir.ctrl -> 'a) -> 'a -> Ir.ctrl -> 'a
(** Pre-order fold including the root. *)

val all_ctrls : Ir.design -> Ir.ctrl list
(** Every controller in the design, pre-order. *)

val ctrls_with_replication : Ir.design -> (Ir.ctrl * int) list
(** Every controller paired with its hardware replication factor: the
    product of the parallelization factors of its ancestor [Loop]
    controllers. An outer loop with par = p instantiates p copies of its
    stage subtree (Section III.B.3). The loop node itself is not replicated
    by its own factor. *)

val mem_replication : Ir.design -> Ir.mem -> int
(** Max replication factor over all controllers accessing the memory: the
    number of duplicated buffer instances the hardware needs. 1 when the
    memory is only touched at top level. *)

val pipes : Ir.design -> Ir.ctrl list
(** Just the [Pipe] nodes. *)

val tile_transfers : Ir.design -> Ir.ctrl list
(** The [Tile_load]/[Tile_store] nodes (off-chip memory streams). *)

val depth : Ir.ctrl -> int
(** Height of the controller tree (a lone Pipe has depth 1). *)

val count : (Ir.ctrl -> bool) -> Ir.design -> int

val stmt_count : Ir.design -> int
(** Total primitive statements across all Pipe bodies (pre-replication). *)

val body_stmts : Ir.ctrl -> Ir.stmt list
(** Statements of a [Pipe]; empty for other controllers. *)

val iterators_in_scope : Ir.design -> Ir.ctrl -> string list
(** Counter names bound by the controller itself and all its ancestors.
    Raises [Not_found] when the controller is not part of the design. *)
