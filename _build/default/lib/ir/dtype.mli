(** DHDL data types.

    DHDL supports variable bit-width fixed-point types, variable-precision
    floating point types, and booleans (paper, Section III.B). Bit widths
    drive both BRAM geometry and primitive resource characterization. *)

type t =
  | Fix of { signed : bool; int_bits : int; frac_bits : int }
  | Flt of { exp_bits : int; sig_bits : int }
  | Bool

val float32 : t
(** IEEE-754 single precision (8-bit exponent, 24-bit significand). *)

val float64 : t
val int32 : t
val int16 : t
val int8 : t
val uint32 : t
val bool_t : t

val fixed : ?signed:bool -> int_bits:int -> frac_bits:int -> unit -> t

val bits : t -> int
(** Total storage width in bits. *)

val is_float : t -> bool
val is_fixed : t -> bool
val is_bool : t -> bool

val to_string : t -> string
(** E.g. "Float(8,24)", "Fix(32.0)", "Bool". *)

val equal : t -> t -> bool
