lib/ir/builder.ml: Analysis Dtype Ir List Op Option
