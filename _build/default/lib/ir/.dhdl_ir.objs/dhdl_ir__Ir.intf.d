lib/ir/ir.mli: Dtype Op
