lib/ir/op.mli:
