lib/ir/traverse.ml: Ir List
