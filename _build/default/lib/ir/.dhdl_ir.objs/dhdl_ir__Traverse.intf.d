lib/ir/traverse.mli: Ir
