lib/ir/analysis.ml: Hashtbl Ir List Op Option Printf String Traverse
