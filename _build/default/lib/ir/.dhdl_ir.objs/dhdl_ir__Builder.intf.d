lib/ir/builder.mli: Dtype Ir Op
