lib/ir/op.ml: Float Printf
