lib/ir/transform.mli: Ir
