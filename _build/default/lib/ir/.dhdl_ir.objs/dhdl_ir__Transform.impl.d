lib/ir/transform.ml: Analysis Dtype Hashtbl Ir List Op Option Printf String
