lib/ir/pretty.ml: Dtype Ir List Op Printf String
