lib/ir/dtype.ml: Printf
