lib/ir/ir.ml: Buffer Dhdl_util Dtype Hashtbl List Op Option Printf
