lib/ir/dtype.mli:
