let children = function
  | Ir.Pipe _ | Ir.Tile_load _ | Ir.Tile_store _ -> []
  | Ir.Loop { stages; _ } -> stages
  | Ir.Parallel { stages; _ } -> stages

let rec iter_ctrl f ctrl =
  f ctrl;
  List.iter (iter_ctrl f) (children ctrl)

let rec fold_ctrl f acc ctrl =
  let acc = f acc ctrl in
  List.fold_left (fold_ctrl f) acc (children ctrl)

let all_ctrls (d : Ir.design) = List.rev (fold_ctrl (fun acc c -> c :: acc) [] d.d_top)

let ctrls_with_replication (d : Ir.design) =
  let rec walk factor acc ctrl =
    let acc = (ctrl, factor) :: acc in
    let child_factor =
      match ctrl with Ir.Loop { loop; _ } -> factor * max 1 loop.Ir.lp_par | _ -> factor
    in
    List.fold_left (walk child_factor) acc (children ctrl)
  in
  List.rev (walk 1 [] d.d_top)

(* Memories referenced anywhere under a controller (loads, stores, tile
   endpoints, reductions). *)
let ctrl_touches ctrl (m : Ir.mem) =
  let touches_stmt = function
    | Ir.Sload { mem; _ } | Ir.Sstore { mem; _ } -> Ir.mem_equal mem m
    | Ir.Sread_reg { reg; _ } | Ir.Swrite_reg { reg; _ } -> Ir.mem_equal reg m
    | Ir.Spush { queue; _ } | Ir.Spop { queue; _ } -> Ir.mem_equal queue m
    | Ir.Sop _ -> false
  in
  match ctrl with
  | Ir.Pipe { body; reduce; _ } ->
    List.exists touches_stmt body
    || (match reduce with Some r -> Ir.mem_equal r.Ir.sr_out m | None -> false)
  | Ir.Loop { reduce; _ } -> (
    match reduce with
    | Some r -> Ir.mem_equal r.Ir.mr_src m || Ir.mem_equal r.Ir.mr_dst m
    | None -> false)
  | Ir.Parallel _ -> false
  | Ir.Tile_load { src; dst; _ } -> Ir.mem_equal src m || Ir.mem_equal dst m
  | Ir.Tile_store { dst; src; _ } -> Ir.mem_equal dst m || Ir.mem_equal src m

let mem_replication d m =
  List.fold_left
    (fun acc (c, factor) -> if ctrl_touches c m then max acc factor else acc)
    1 (ctrls_with_replication d)

let pipes d = List.filter (function Ir.Pipe _ -> true | _ -> false) (all_ctrls d)

let tile_transfers d =
  List.filter (function Ir.Tile_load _ | Ir.Tile_store _ -> true | _ -> false) (all_ctrls d)

let rec depth ctrl =
  match children ctrl with
  | [] -> 1
  | kids -> 1 + List.fold_left (fun acc k -> max acc (depth k)) 0 kids

let count pred d = List.length (List.filter pred (all_ctrls d))

let body_stmts = function Ir.Pipe { body; _ } -> body | _ -> []

let stmt_count d =
  List.fold_left (fun acc c -> acc + List.length (body_stmts c)) 0 (all_ctrls d)

let ctrl_counters = function
  | Ir.Pipe { loop; _ } | Ir.Loop { loop; _ } -> loop.Ir.lp_counters
  | Ir.Parallel _ | Ir.Tile_load _ | Ir.Tile_store _ -> []

let iterators_in_scope (d : Ir.design) target =
  (* Search the tree for the target, accumulating counters along the path. *)
  let rec search bound ctrl =
    let bound = bound @ List.map (fun c -> c.Ir.ctr_name) (ctrl_counters ctrl) in
    if ctrl == target then Some bound
    else
      List.fold_left
        (fun acc kid -> match acc with Some _ -> acc | None -> search bound kid)
        None (children ctrl)
  in
  match search [] d.d_top with Some names -> names | None -> raise Not_found
