(** Textual rendering of DHDL designs, in a style close to the paper's
    Figure 4 source listing. *)

val operand : Ir.operand -> string
val stmt : Ir.stmt -> string
val mem : Ir.mem -> string
val ctrl : Ir.ctrl -> string
(** Multi-line, indented controller tree. *)

val design : Ir.design -> string
(** Full design listing: parameters, memory declarations, controller tree. *)
