type t =
  | Fix of { signed : bool; int_bits : int; frac_bits : int }
  | Flt of { exp_bits : int; sig_bits : int }
  | Bool

let float32 = Flt { exp_bits = 8; sig_bits = 24 }
let float64 = Flt { exp_bits = 11; sig_bits = 53 }
let int32 = Fix { signed = true; int_bits = 32; frac_bits = 0 }
let int16 = Fix { signed = true; int_bits = 16; frac_bits = 0 }
let int8 = Fix { signed = true; int_bits = 8; frac_bits = 0 }
let uint32 = Fix { signed = false; int_bits = 32; frac_bits = 0 }
let bool_t = Bool

let fixed ?(signed = true) ~int_bits ~frac_bits () =
  assert (int_bits >= 0 && frac_bits >= 0 && int_bits + frac_bits > 0);
  Fix { signed; int_bits; frac_bits }

let bits = function
  | Fix { int_bits; frac_bits; _ } -> int_bits + frac_bits
  | Flt { exp_bits; sig_bits } -> exp_bits + sig_bits
  | Bool -> 1

let is_float = function Flt _ -> true | Fix _ | Bool -> false
let is_fixed = function Fix _ -> true | Flt _ | Bool -> false
let is_bool = function Bool -> true | Fix _ | Flt _ -> false

let to_string = function
  | Fix { signed; int_bits; frac_bits } ->
    Printf.sprintf "%sFix(%d.%d)" (if signed then "" else "U") int_bits frac_bits
  | Flt { exp_bits; sig_bits } -> Printf.sprintf "Float(%d,%d)" exp_bits sig_bits
  | Bool -> "Bool"

let equal a b =
  match (a, b) with
  | Fix x, Fix y -> x.signed = y.signed && x.int_bits = y.int_bits && x.frac_bits = y.frac_bits
  | Flt x, Flt y -> x.exp_bits = y.exp_bits && x.sig_bits = y.sig_bits
  | Bool, Bool -> true
  | (Fix _ | Flt _ | Bool), _ -> false
