(** Dataflow optimizations over Pipe bodies.

    The paper's step 1 performs high-level optimizations before handing
    designs to estimation (Figure 1). These passes run on the DHDL IR
    itself, cleaning up machine-generated bodies (e.g. from the parallel-
    pattern frontend, which duplicates loads per use site):

    - constant folding of primitive nodes with constant operands,
    - common-subexpression elimination (loads are only merged when the
      memory is never stored in the same body),
    - dead-value elimination (values that reach no store, register write,
      queue operation or reduction).

    All passes preserve the interpreter semantics; the property tests check
    this on random designs. *)

val optimize_body :
  ?keep:Ir.operand list -> Ir.stmt list -> Ir.stmt list * (Ir.operand -> Ir.operand)
(** Optimize one body. [keep] lists externally observed operands (e.g. a
    reduction's value). Returns the new statements and the substitution to
    apply to external operand references. *)

val optimize_ctrl : Ir.ctrl -> Ir.ctrl
(** Apply {!optimize_body} to every [Pipe] in a controller tree. *)

val optimize : Ir.design -> Ir.design
(** Optimize every Pipe and re-run banking and double-buffering inference
    (accesses may have disappeared). *)

val body_size : Ir.ctrl -> int
(** Statement count of a [Pipe] (0 otherwise) — for measuring shrinkage. *)
