(** Embedded construction language for DHDL designs.

    Mirrors the surface syntax of the paper's Figure 4: declare memories,
    build Pipe bodies with primitive operations, and compose controllers.
    The host language (OCaml here, Scala in the paper) provides the
    metaprogramming: an application is an OCaml function from parameter
    values to a [Ir.design] instance. *)

type t
(** A design under construction; owns memory-id allocation. *)

val create : ?params:(string * int) list -> string -> t

(** {1 Memory declaration} *)

val offchip : t -> string -> Dtype.t -> int list -> Ir.mem
val bram : t -> string -> Dtype.t -> int list -> Ir.mem
val reg : t -> string -> Dtype.t -> Ir.mem
val queue : t -> string -> Dtype.t -> depth:int -> Ir.mem

(** {1 Operands} *)

val const : float -> Ir.operand
val iter : string -> Ir.operand
(** Reference an enclosing counter's iterator by name. *)

(** {1 Pipe bodies} *)

type pipe
(** Accumulates the statements of one Pipe body. *)

val op : pipe -> ?ty:Dtype.t -> Op.t -> Ir.operand list -> Ir.operand
(** Append a primitive node; comparisons and logical ops get type [Bool],
    everything else defaults to [ty] (float32 when omitted). *)

val load : pipe -> Ir.mem -> Ir.operand list -> Ir.operand
val store : pipe -> Ir.mem -> Ir.operand list -> Ir.operand -> unit
val read_reg : pipe -> Ir.mem -> Ir.operand
val write_reg : pipe -> Ir.mem -> Ir.operand -> unit

val push : pipe -> Ir.mem -> Ir.operand -> unit
(** Insert into a priority queue (bounded; evicts the largest when full). *)

val pop : pipe -> Ir.mem -> Ir.operand
(** Remove and return the smallest queue element. *)

(** Convenience arithmetic wrappers over {!op}. *)

val add : pipe -> Ir.operand -> Ir.operand -> Ir.operand
val sub : pipe -> Ir.operand -> Ir.operand -> Ir.operand
val mul : pipe -> Ir.operand -> Ir.operand -> Ir.operand
val div : pipe -> Ir.operand -> Ir.operand -> Ir.operand
val mux : pipe -> Ir.operand -> Ir.operand -> Ir.operand -> Ir.operand

(** {1 Controllers} *)

type counters = (string * int * int * int) list
(** [(name, start, stop, step)] — e.g. [("r", 0, rows, tile)] reads as the
    paper's "rows by tile". *)

val pipe :
  label:string -> counters:counters -> ?par:int -> (pipe -> unit) -> Ir.ctrl
(** Map-patterned inner pipeline. *)

val reduce_pipe :
  label:string ->
  counters:counters ->
  ?par:int ->
  op:Op.t ->
  out:Ir.mem ->
  (pipe -> Ir.operand) ->
  Ir.ctrl
(** Reduce-patterned pipeline folding each iteration's value into the [out]
    register with combiner [op] (realized in hardware as a balanced tree of
    width [par] plus an accumulator). *)

val metapipe :
  label:string ->
  counters:counters ->
  ?par:int ->
  ?pipelined:bool ->
  ?reduce:Op.t * Ir.mem * Ir.mem ->
  Ir.ctrl list ->
  Ir.ctrl
(** Outer loop controller. [pipelined] (default true) is the MetaPipe toggle:
    true executes stages as a coarse-grained pipeline, false sequentially.
    [reduce (op, src, dst)] folds the BRAM [src] produced per iteration into
    accumulator [dst]. *)

val sequential_block : label:string -> Ir.ctrl list -> Ir.ctrl
(** One-shot Sequential {...} region. *)

val parallel : label:string -> Ir.ctrl list -> Ir.ctrl
(** Fork-join of independent stages with a barrier. *)

val tile_load :
  src:Ir.mem -> dst:Ir.mem -> offsets:Ir.operand list -> ?par:int -> unit -> Ir.ctrl
(** Load the [dst.mem_dims]-shaped tile at [offsets] from [src]. *)

val tile_store :
  dst:Ir.mem -> src:Ir.mem -> offsets:Ir.operand list -> ?par:int -> unit -> Ir.ctrl
(** Store the [src.mem_dims]-shaped tile to [dst] at [offsets]. *)

(** {1 Finalization} *)

val finish : t -> top:Ir.ctrl -> Ir.design
(** Seal the design; runs banking and double-buffering inference
    ({!Analysis.infer_banking}, {!Analysis.infer_double_buffering}). *)
