type t =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Neg
  | Abs
  | Sqrt
  | Exp
  | Log
  | Floor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Neq
  | And
  | Or
  | Not
  | Mux

let arity = function
  | Neg | Abs | Sqrt | Exp | Log | Floor | Not -> 1
  | Add | Sub | Mul | Div | Min | Max | Lt | Le | Gt | Ge | Eq | Neq | And | Or -> 2
  | Mux -> 3

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Min -> "min"
  | Max -> "max"
  | Neg -> "neg"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Floor -> "floor"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Neq -> "neq"
  | And -> "and"
  | Or -> "or"
  | Not -> "not"
  | Mux -> "mux"

let all =
  [ Add; Sub; Mul; Div; Min; Max; Neg; Abs; Sqrt; Exp; Log; Floor;
    Lt; Le; Gt; Ge; Eq; Neq; And; Or; Not; Mux ]

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Neq -> true
  | Add | Sub | Mul | Div | Min | Max | Neg | Abs | Sqrt | Exp | Log | Floor | And | Or | Not | Mux ->
    false

let is_logical = function
  | And | Or | Not -> true
  | Add | Sub | Mul | Div | Min | Max | Neg | Abs | Sqrt | Exp | Log | Floor | Lt | Le | Gt | Ge
  | Eq | Neq | Mux ->
    false

let is_multi_cycle = function
  | Div | Sqrt | Exp | Log -> true
  | Add | Sub | Mul | Min | Max | Neg | Abs | Floor | Lt | Le | Gt | Ge | Eq | Neq | And | Or
  | Not | Mux ->
    false

let truth x = if x then 1.0 else 0.0
let as_bool x = x <> 0.0

let eval op args =
  match (op, args) with
  | Add, [ a; b ] -> a +. b
  | Sub, [ a; b ] -> a -. b
  | Mul, [ a; b ] -> a *. b
  | Div, [ a; b ] -> a /. b
  | Min, [ a; b ] -> Float.min a b
  | Max, [ a; b ] -> Float.max a b
  | Neg, [ a ] -> -.a
  | Abs, [ a ] -> Float.abs a
  | Sqrt, [ a ] -> sqrt a
  | Exp, [ a ] -> exp a
  | Log, [ a ] -> log a
  | Floor, [ a ] -> Float.of_int (int_of_float (floor a))
  | Lt, [ a; b ] -> truth (a < b)
  | Le, [ a; b ] -> truth (a <= b)
  | Gt, [ a; b ] -> truth (a > b)
  | Ge, [ a; b ] -> truth (a >= b)
  | Eq, [ a; b ] -> truth (a = b)
  | Neq, [ a; b ] -> truth (a <> b)
  | And, [ a; b ] -> truth (as_bool a && as_bool b)
  | Or, [ a; b ] -> truth (as_bool a || as_bool b)
  | Not, [ a ] -> truth (not (as_bool a))
  | Mux, [ c; a; b ] -> if as_bool c then a else b
  | _ -> invalid_arg (Printf.sprintf "Op.eval: %s expects %d args" (name op) (arity op))

let is_reduction_op = function
  | Add | Mul | Min | Max | And | Or -> true
  | Sub | Div | Neg | Abs | Sqrt | Exp | Log | Floor | Lt | Le | Gt | Ge | Eq | Neq | Not | Mux ->
    false

let identity_element = function
  | Add -> 0.0
  | Mul -> 1.0
  | Min -> infinity
  | Max -> neg_infinity
  | And -> 1.0
  | Or -> 0.0
  | op -> invalid_arg (Printf.sprintf "Op.identity_element: %s is not a reduction op" (name op))
