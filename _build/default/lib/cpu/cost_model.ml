type machine = {
  cores : int;
  ghz : float;
  flops_per_cycle_per_core : float;
  mem_bw_gbs : float;
}

(* Sandy-Bridge class: 8-wide SP AVX add + mul issue per cycle. *)
let xeon_e5_2630 = { cores = 6; ghz = 2.3; flops_per_cycle_per_core = 16.0; mem_bw_gbs = 42.6 }

type workload = {
  wl_name : string;
  flops : float;
  bytes : float;
  compute_eff : float;
  bw_eff : float;
}

let peak_flops m = float_of_int m.cores *. m.ghz *. 1e9 *. m.flops_per_cycle_per_core

let seconds ?(machine = xeon_e5_2630) wl =
  let compute = wl.flops /. (peak_flops machine *. wl.compute_eff) in
  let memory = wl.bytes /. (machine.mem_bw_gbs *. 1e9 *. wl.bw_eff) in
  Float.max compute memory

let f = float_of_int

(* Streaming reduction: bandwidth bound, near-peak streaming. *)
let dotproduct ~n =
  { wl_name = "dotproduct"; flops = 2.0 *. f n; bytes = 8.0 *. f n; compute_eff = 0.50; bw_eff = 0.78 }

(* Output-bound: write-allocate makes every output word cost a read and a
   write; thread synchronization on the wide output lowers efficiency. *)
let outerprod ~n ~m =
  {
    wl_name = "outerprod";
    flops = f n *. f m;
    bytes = (8.0 *. f n *. f m) +. (4.0 *. (f n +. f m));
    compute_eff = 0.50;
    bw_eff = 0.45;
  }

(* OpenBLAS sustains ~89 GFLOP/s single precision on this part (paper,
   Section V.D) = ~40% of the 220.8 GFLOP/s peak. *)
let gemm ~n ~m ~k =
  {
    wl_name = "gemm";
    flops = 2.0 *. f n *. f m *. f k;
    bytes = 4.0 *. ((f n *. f k) +. (f k *. f m) +. (2.0 *. f n *. f m));
    compute_eff = 0.40;
    bw_eff = 0.80;
  }

(* Data-dependent branches stall the frontend (Section V.D), cutting the
   sustainable streaming rate roughly in half. *)
let tpchq6 ~n =
  { wl_name = "tpchq6"; flops = 6.0 *. f n; bytes = 16.0 *. f n; compute_eff = 0.30; bw_eff = 0.70 }

(* ~200 flops per option, dominated by exp/log/div chains that neither
   vectorize nor pipeline well on the CPU (compute bound in PARSEC). *)
let blackscholes ~n =
  {
    wl_name = "blackscholes";
    flops = 200.0 *. f n;
    bytes = 20.0 *. f n;
    compute_eff = 0.060;
    bw_eff = 0.80;
  }

(* Row-streamed scatter update: the rank-1 accumulation reuses the C x C
   matrix from cache but its read-modify-write chain limits ILP. *)
let gda ~rows ~cols =
  {
    wl_name = "gda";
    flops = f rows *. ((2.0 *. f cols *. f cols) +. f cols);
    bytes = 4.0 *. f rows *. f cols;
    compute_eff = 0.048;
    bw_eff = 0.85;
  }

(* Distance computation vectorizes well; the argmin reduction and scatter
   accumulation cost the rest. *)
let kmeans ~points ~dims ~k =
  {
    wl_name = "kmeans";
    flops = 3.0 *. f points *. f dims *. f k;
    bytes = 4.0 *. f points *. f dims;
    compute_eff = 0.18;
    bw_eff = 0.85;
  }
