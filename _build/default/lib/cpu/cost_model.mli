(** Execution-time model of the paper's CPU baseline: a 6-core Intel Xeon
    E5-2630 (32 nm, 2.30 GHz, 15 MB LLC, 42.6 GB/s) running optimized
    multi-threaded C++ (OptiML-generated; OpenBLAS for gemm), 6 threads.

    A roofline model: each benchmark is characterized by its flop and DRAM
    byte counts plus an efficiency factor reflecting how well the published
    implementations exploit the machine (vectorization of transcendentals,
    branch behaviour, BLAS-3 blocking). Efficiencies are derived from the
    paper's own observations — e.g. OpenBLAS sustaining ~89 GFLOP/s on gemm
    — and from the PARSEC characterization of blackscholes. *)

type machine = {
  cores : int;
  ghz : float;
  flops_per_cycle_per_core : float;  (** SP with AVX fused ops. *)
  mem_bw_gbs : float;
}

val xeon_e5_2630 : machine

type workload = {
  wl_name : string;
  flops : float;  (** Total floating-point operations. *)
  bytes : float;  (** DRAM traffic (streaming footprint). *)
  compute_eff : float;  (** Fraction of peak flops the code sustains. *)
  bw_eff : float;  (** Fraction of peak bandwidth sustained. *)
}

val seconds : ?machine:machine -> workload -> float
(** Roofline: max of compute time and memory time. *)

(** Workload characterizations at given dataset sizes. *)

val dotproduct : n:int -> workload
val outerprod : n:int -> m:int -> workload
val gemm : n:int -> m:int -> k:int -> workload
val tpchq6 : n:int -> workload
val blackscholes : n:int -> workload
val gda : rows:int -> cols:int -> workload
val kmeans : points:int -> dims:int -> k:int -> workload
