(** Reference CPU implementations of the seven evaluation benchmarks
    (Table II). These are the functional ground truth the DHDL designs are
    checked against, and the implementations behind the CPU-comparison
    experiments (Figure 6). All data is dense row-major [float array]. *)

val dotproduct : float array -> float array -> float
(** Inner product of two equal-length vectors. *)

val outerprod : float array -> float array -> float array
(** [outerprod a b] is the |a| x |b| outer-product matrix, row-major. *)

val gemm : n:int -> m:int -> k:int -> float array -> float array -> float array
(** [gemm ~n ~m ~k a b]: (n x k) times (k x m), row-major result (n x m). *)

val tpchq6 :
  prices:float array ->
  discounts:float array ->
  quantities:float array ->
  dates:float array ->
  float
(** TPC-H query 6: revenue = sum(price * discount) over rows with
    [5 <= date < 6], [discount in [0.05, 0.07]] and [quantity < 24]. *)

val blackscholes :
  spot:float array ->
  strike:float array ->
  time:float array ->
  rate:float ->
  volatility:float ->
  otype:float array ->
  float array
(** Black-Scholes-Merton option pricing; [otype] is 1 for puts, 0 for calls. *)

val cndf : float -> float
(** Cumulative normal distribution (the polynomial approximation used by the
    PARSEC benchmark), exposed for accuracy tests. *)

val gda :
  rows:int ->
  cols:int ->
  x:float array ->
  y:float array ->
  mu0:float array ->
  mu1:float array ->
  float array
(** Gaussian discriminant analysis scatter matrix (cols x cols):
    sigma += sub sub^T with sub = x_i - mu_{y_i} (Figure 2). *)

val kmeans_step :
  points:int ->
  dims:int ->
  k:int ->
  data:float array ->
  centroids:float array ->
  float array
(** One Lloyd iteration: assign each point to its nearest centroid
    (Euclidean) and return the k x dims matrix of new centroids. Empty
    clusters keep their previous centroid. *)

val kmeans_sums :
  points:int ->
  dims:int ->
  k:int ->
  data:float array ->
  centroids:float array ->
  float array * float array
(** The accumulation phase only: per-cluster coordinate sums (k x dims) and
    per-cluster counts (k). This matches what the FPGA design computes
    on-chip before the final divide. *)
