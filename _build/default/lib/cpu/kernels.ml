let dotproduct a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let outerprod a b =
  let n = Array.length a and m = Array.length b in
  let out = Array.make (n * m) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      out.((i * m) + j) <- a.(i) *. b.(j)
    done
  done;
  out

let gemm ~n ~m ~k a b =
  assert (Array.length a = n * k);
  assert (Array.length b = k * m);
  let c = Array.make (n * m) 0.0 in
  for i = 0 to n - 1 do
    for kk = 0 to k - 1 do
      let aik = a.((i * k) + kk) in
      if aik <> 0.0 then
        for j = 0 to m - 1 do
          c.((i * m) + j) <- c.((i * m) + j) +. (aik *. b.((kk * m) + j))
        done
    done
  done;
  c

let tpchq6 ~prices ~discounts ~quantities ~dates =
  let n = Array.length prices in
  assert (Array.length discounts = n && Array.length quantities = n && Array.length dates = n);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if
      dates.(i) >= 5.0 && dates.(i) < 6.0
      && discounts.(i) >= 0.05
      && discounts.(i) <= 0.07
      && quantities.(i) < 24.0
    then acc := !acc +. (prices.(i) *. discounts.(i))
  done;
  !acc

(* PARSEC's polynomial CNDF approximation. *)
let cndf x =
  let sign_negative = x < 0.0 in
  let x = Float.abs x in
  let exp_term = exp (-0.5 *. x *. x) in
  let n_prime = 0.39894228040143270286 *. exp_term in
  let k = 1.0 /. (1.0 +. (0.2316419 *. x)) in
  let k_sum =
    k
    *. (0.319381530
       +. (k
          *. (-0.356563782
             +. (k *. (1.781477937 +. (k *. (-1.821255978 +. (k *. 1.330274429))))))))
  in
  let v = 1.0 -. (n_prime *. k_sum) in
  if sign_negative then 1.0 -. v else v

let blackscholes ~spot ~strike ~time ~rate ~volatility ~otype =
  let n = Array.length spot in
  assert (Array.length strike = n && Array.length time = n && Array.length otype = n);
  Array.init n (fun i ->
      let s = spot.(i) and k = strike.(i) and t = time.(i) in
      let sqrt_t = sqrt t in
      let d1 =
        (log (s /. k) +. ((rate +. (0.5 *. volatility *. volatility)) *. t))
        /. (volatility *. sqrt_t)
      in
      let d2 = d1 -. (volatility *. sqrt_t) in
      let discounted = k *. exp (-.rate *. t) in
      if otype.(i) <> 0.0 then (discounted *. (1.0 -. cndf d2)) -. (s *. (1.0 -. cndf d1))
      else (s *. cndf d1) -. (discounted *. cndf d2))

let gda ~rows ~cols ~x ~y ~mu0 ~mu1 =
  assert (Array.length x = rows * cols);
  assert (Array.length y = rows);
  assert (Array.length mu0 = cols && Array.length mu1 = cols);
  let sigma = Array.make (cols * cols) 0.0 in
  let sub = Array.make cols 0.0 in
  for r = 0 to rows - 1 do
    let mu = if y.(r) <> 0.0 then mu1 else mu0 in
    for c = 0 to cols - 1 do
      sub.(c) <- x.((r * cols) + c) -. mu.(c)
    done;
    for i = 0 to cols - 1 do
      for j = 0 to cols - 1 do
        sigma.((i * cols) + j) <- sigma.((i * cols) + j) +. (sub.(i) *. sub.(j))
      done
    done
  done;
  sigma

let nearest_centroid ~dims ~k ~centroids point_off data =
  let best = ref 0 and best_d = ref infinity in
  for c = 0 to k - 1 do
    let d = ref 0.0 in
    for j = 0 to dims - 1 do
      let diff = data.(point_off + j) -. centroids.((c * dims) + j) in
      d := !d +. (diff *. diff)
    done;
    if !d < !best_d then begin
      best_d := !d;
      best := c
    end
  done;
  !best

let kmeans_sums ~points ~dims ~k ~data ~centroids =
  assert (Array.length data = points * dims);
  assert (Array.length centroids = k * dims);
  let sums = Array.make (k * dims) 0.0 in
  let counts = Array.make k 0.0 in
  for p = 0 to points - 1 do
    let c = nearest_centroid ~dims ~k ~centroids (p * dims) data in
    counts.(c) <- counts.(c) +. 1.0;
    for j = 0 to dims - 1 do
      sums.((c * dims) + j) <- sums.((c * dims) + j) +. data.((p * dims) + j)
    done
  done;
  (sums, counts)

let kmeans_step ~points ~dims ~k ~data ~centroids =
  let sums, counts = kmeans_sums ~points ~dims ~k ~data ~centroids in
  Array.init (k * dims) (fun i ->
      let c = i / dims in
      if counts.(c) > 0.0 then sums.(i) /. counts.(c) else centroids.(i))
