lib/cpu/kernels.ml: Array Float
