lib/cpu/cost_model.ml: Float
