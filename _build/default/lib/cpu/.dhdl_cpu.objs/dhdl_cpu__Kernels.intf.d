lib/cpu/kernels.mli:
