module Intmath = Dhdl_util.Intmath

type t = {
  dev_name : string;
  alms : int;
  regs : int;
  dsps : int;
  brams : int;
  bram_bits : int;
  bram_max_width : int;
  bram_min_depth : int;
  luts_per_alm : int;
  regs_per_alm : int;
}

type board = {
  board_name : string;
  fabric_mhz : float;
  dram_gb : int;
  peak_bw_gbs : float;
  achievable_bw_gbs : float;
  dram_latency_cycles : int;
  burst_bytes : int;
  num_channels : int;
}

let stratix_v =
  {
    dev_name = "Stratix V GS D8";
    alms = 262_400;
    regs = 1_049_600;
    dsps = 1_963;
    brams = 2_567;
    bram_bits = 20_480;
    bram_max_width = 40;
    bram_min_depth = 512;
    luts_per_alm = 2;
    regs_per_alm = 4;
  }

(* A mid-size part from the same family: used by the device-sensitivity
   ablation to show the representation is target-agnostic — re-running DSE
   against a smaller device shifts validity and the Pareto frontier without
   touching any design source. *)
let stratix_v_d5 =
  {
    dev_name = "Stratix V GS D5";
    alms = 172_600;
    regs = 690_400;
    dsps = 1_590;
    brams = 2_014;
    bram_bits = 20_480;
    bram_max_width = 40;
    bram_min_depth = 512;
    luts_per_alm = 2;
    regs_per_alm = 4;
  }

let max4_maia =
  {
    board_name = "Maxeler Max4 MAIA";
    fabric_mhz = 150.0;
    dram_gb = 48;
    peak_bw_gbs = 76.8;
    achievable_bw_gbs = 37.5;
    dram_latency_cycles = 64;
    burst_bytes = 384;
    num_channels = 6;
  }

let bytes_per_cycle board = board.achievable_bw_gbs *. 1e9 /. (board.fabric_mhz *. 1e6)

(* An M20K can trade depth for width (512x40, 1Kx20, 2Kx10, 4Kx5, 8Kx2,
   16Kx1). Words wider than 40 bits need ceil(width/40) blocks side by side;
   deeper banks need rows of blocks at the chosen configuration. *)
let m20k_configs = [ (16_384, 1); (8_192, 2); (4_096, 5); (2_048, 10); (1_024, 20); (512, 40) ]

let bram_blocks_for dev ~width_bits ~depth =
  assert (width_bits > 0 && depth > 0);
  let columns = Intmath.ceil_div width_bits dev.bram_max_width in
  let width_per_column = Intmath.ceil_div width_bits columns in
  let depth_at_width =
    match List.find_opt (fun (_, w) -> w >= width_per_column) m20k_configs with
    | Some (d, _) -> d
    | None -> dev.bram_min_depth
  in
  let rows = Intmath.ceil_div depth depth_at_width in
  columns * rows
