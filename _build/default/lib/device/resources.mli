(** FPGA resource vectors.

    LUT requirements are split into "packable" and "unpackable" populations
    to support LUT-packing estimation (paper, Section IV.B): vendor tools
    pack pairs of small independent functions into one fracturable 8-input
    unit, and the paper models this by assuming every packable LUT packs. *)

type t = {
  lut_packable : int;  (** Small functions eligible for pairwise packing. *)
  lut_unpackable : int;  (** Wide functions occupying a full compute unit. *)
  regs : int;
  dsps : int;
  brams : int;  (** M20K blocks. *)
}

val zero : t
val make : ?packable:int -> ?unpackable:int -> ?regs:int -> ?dsps:int -> ?brams:int -> unit -> t
val add : t -> t -> t
val sum : t list -> t
val scale : int -> t -> t
val luts : t -> int
(** Total LUTs, both populations. *)

val to_string : t -> string
val equal : t -> t -> bool
