type t = {
  lut_packable : int;
  lut_unpackable : int;
  regs : int;
  dsps : int;
  brams : int;
}

let zero = { lut_packable = 0; lut_unpackable = 0; regs = 0; dsps = 0; brams = 0 }

let make ?(packable = 0) ?(unpackable = 0) ?(regs = 0) ?(dsps = 0) ?(brams = 0) () =
  { lut_packable = packable; lut_unpackable = unpackable; regs; dsps; brams }

let add a b =
  {
    lut_packable = a.lut_packable + b.lut_packable;
    lut_unpackable = a.lut_unpackable + b.lut_unpackable;
    regs = a.regs + b.regs;
    dsps = a.dsps + b.dsps;
    brams = a.brams + b.brams;
  }

let sum = List.fold_left add zero

let scale k r =
  {
    lut_packable = k * r.lut_packable;
    lut_unpackable = k * r.lut_unpackable;
    regs = k * r.regs;
    dsps = k * r.dsps;
    brams = k * r.brams;
  }

let luts r = r.lut_packable + r.lut_unpackable

let to_string r =
  Printf.sprintf "{luts=%d (p%d/u%d) regs=%d dsps=%d brams=%d}" (luts r) r.lut_packable
    r.lut_unpackable r.regs r.dsps r.brams

let equal a b =
  a.lut_packable = b.lut_packable && a.lut_unpackable = b.lut_unpackable && a.regs = b.regs
  && a.dsps = b.dsps && a.brams = b.brams
