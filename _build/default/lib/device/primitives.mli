(** Characterized primitive library for the target device.

    One row per (operation, data type class): FPGA resources (with the
    packable/unpackable LUT split), pipelined latency in fabric cycles at
    150 MHz, and the throughput of the unit. In the paper this data comes
    from synthesizing each template a handful of times per parameter
    combination; here it is the device library both the synthesis simulator
    and the estimator consume, so estimates and "ground truth" share the
    same primitive characterization — exactly the paper's setup, where both
    flowed through the same vendor library. *)

val area : Dhdl_ir.Op.t -> Dhdl_ir.Dtype.t -> Resources.t
(** Resources of one scalar instance of the operation at this type. *)

val latency : Dhdl_ir.Op.t -> Dhdl_ir.Dtype.t -> int
(** Pipelined latency in cycles (>= 1 for registered units). *)

val load_store_area : Dhdl_ir.Dtype.t -> Resources.t
(** Address mux / write port logic of a banked Ld or St node (per lane). *)

val load_store_latency : int

val counter_area : bits:int -> Resources.t
(** One counter in a counter chain. *)

val fifo_area : width_bits:int -> depth:int -> Target.t -> Resources.t
(** Data/command queue as used by memory command generators. *)

val delay_regs_threshold : int
(** Slack depth (cycles) above which delay balancing uses a BRAM-based
    shift register instead of flip-flops (Section IV.B.2). *)
