(** Target device and board descriptions.

    The paper's experiments run on an Altera 28nm Stratix V on a Maxeler
    Max4 MAIA board at a 150 MHz fabric clock, with 48 GB of DDR3 delivering
    37.5 GB/s in practice. *)

type t = {
  dev_name : string;
  alms : int;  (** Adaptive logic modules; each holds a fracturable LUT pair. *)
  regs : int;  (** Flip-flops (roughly 4 per ALM on Stratix V). *)
  dsps : int;
  brams : int;  (** M20K blocks. *)
  bram_bits : int;  (** Usable bits per block (512 x 40). *)
  bram_max_width : int;  (** Widest port configuration in bits. *)
  bram_min_depth : int;  (** Depth at the widest configuration. *)
  luts_per_alm : int;  (** Pairwise packing: 2 packable LUTs per ALM. *)
  regs_per_alm : int;
}

type board = {
  board_name : string;
  fabric_mhz : float;
  dram_gb : int;
  peak_bw_gbs : float;  (** Datasheet DRAM bandwidth. *)
  achievable_bw_gbs : float;  (** Realized bandwidth (memory clock limited). *)
  dram_latency_cycles : int;  (** Fabric cycles for an open-page burst round trip. *)
  burst_bytes : int;  (** DRAM burst granularity. *)
  num_channels : int;
}

val stratix_v : t
(** Stratix V GS D8-class part: 262,400 ALMs / 1,963 DSPs / 2,567 M20Ks. *)

val stratix_v_d5 : t
(** A smaller part from the same family (172,600 ALMs / 1,590 DSPs /
    2,014 M20Ks) for device-sensitivity experiments. *)

val max4_maia : board

val bytes_per_cycle : board -> float
(** Achievable DRAM bytes per fabric clock cycle. *)

val bram_blocks_for : t -> width_bits:int -> depth:int -> int
(** M20K blocks needed for one logical bank of the given geometry, honoring
    the block's width/depth configuration trade-off. *)
