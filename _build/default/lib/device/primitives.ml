module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module R = Resources

(* Three characterization classes: single-precision-style floats, fixed
   point (scaled by width), and booleans. The numbers below are the
   device-library truth for our simulated toolchain; they are in the range
   published for 28 nm Altera floating point megafunctions. *)

type type_class = Float_class | Fixed_class of int | Bool_class

let classify = function
  | Dtype.Flt _ -> Float_class
  | Dtype.Fix { int_bits; frac_bits; _ } -> Fixed_class (int_bits + frac_bits)
  | Dtype.Bool -> Bool_class

let float_area = function
  | Op.Add | Op.Sub -> R.make ~packable:380 ~unpackable:170 ~regs:540 ()
  | Op.Mul -> R.make ~packable:90 ~unpackable:40 ~regs:170 ~dsps:1 ()
  | Op.Div -> R.make ~packable:1100 ~unpackable:520 ~regs:1450 ()
  | Op.Sqrt -> R.make ~packable:430 ~unpackable:190 ~regs:520 ()
  | Op.Exp -> R.make ~packable:900 ~unpackable:410 ~regs:980 ~dsps:7 ()
  | Op.Log -> R.make ~packable:1380 ~unpackable:610 ~regs:1320 ~dsps:7 ()
  | Op.Min | Op.Max -> R.make ~packable:48 ~unpackable:16 ~regs:40 ()
  | Op.Neg | Op.Abs -> R.make ~packable:8 ~unpackable:2 ~regs:34 ()
  | Op.Floor -> R.make ~packable:64 ~unpackable:28 ~regs:70 ()
  | Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Neq -> R.make ~packable:42 ~unpackable:14 ~regs:36 ()
  | Op.Mux -> R.make ~packable:20 ~unpackable:12 ~regs:34 ()
  | Op.And | Op.Or | Op.Not -> R.make ~packable:2 ~unpackable:0 ~regs:2 ()

let fixed_area bits op =
  let w = max 1 bits in
  let per_bit n = max 1 (n * w / 32) in
  match op with
  | Op.Add | Op.Sub -> R.make ~packable:(per_bit 22) ~unpackable:(per_bit 10) ~regs:(per_bit 34) ()
  | Op.Mul ->
    (* 27x27 DSP slices: one per 27-bit operand chunk pair. *)
    let chunks = max 1 ((w + 26) / 27) in
    R.make ~packable:(per_bit 18) ~unpackable:(per_bit 8) ~regs:(per_bit 40) ~dsps:(chunks * chunks) ()
  | Op.Div -> R.make ~packable:(per_bit 420) ~unpackable:(per_bit 200) ~regs:(per_bit 600) ()
  | Op.Sqrt -> R.make ~packable:(per_bit 180) ~unpackable:(per_bit 80) ~regs:(per_bit 240) ()
  | Op.Exp | Op.Log -> R.make ~packable:(per_bit 500) ~unpackable:(per_bit 240) ~regs:(per_bit 520) ~dsps:2 ()
  | Op.Min | Op.Max -> R.make ~packable:(per_bit 30) ~unpackable:(per_bit 8) ~regs:(per_bit 34) ()
  | Op.Neg | Op.Abs -> R.make ~packable:(per_bit 18) ~unpackable:(per_bit 4) ~regs:(per_bit 32) ()
  | Op.Floor -> R.make ~packable:2 ~unpackable:0 ~regs:2 ()
  | Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Neq ->
    R.make ~packable:(per_bit 16) ~unpackable:(per_bit 6) ~regs:4 ()
  | Op.Mux -> R.make ~packable:(per_bit 16) ~unpackable:(per_bit 4) ~regs:(per_bit 32) ()
  | Op.And | Op.Or | Op.Not -> R.make ~packable:(per_bit 8) ~unpackable:0 ~regs:(per_bit 8) ()

let bool_area = function
  | Op.Mux -> R.make ~packable:2 ~unpackable:0 ~regs:1 ()
  | _ -> R.make ~packable:1 ~unpackable:0 ~regs:1 ()

let area op ty =
  match classify ty with
  | Float_class -> float_area op
  | Fixed_class bits -> fixed_area bits op
  | Bool_class -> bool_area op

let float_latency = function
  | Op.Add | Op.Sub -> 7
  | Op.Mul -> 6
  | Op.Div -> 28
  | Op.Sqrt -> 28
  | Op.Exp -> 17
  | Op.Log -> 21
  | Op.Floor -> 2
  | Op.Min | Op.Max | Op.Neg | Op.Abs -> 1
  | Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Neq -> 2
  | Op.Mux | Op.And | Op.Or | Op.Not -> 1

let fixed_latency bits op =
  let deep = if bits > 32 then 2 else 1 in
  match op with
  | Op.Add | Op.Sub | Op.Min | Op.Max | Op.Neg | Op.Abs -> deep
  | Op.Mul -> 3
  | Op.Div -> max 8 (bits / 2)
  | Op.Sqrt -> max 8 (bits / 2)
  | Op.Exp | Op.Log -> 12
  | Op.Floor -> 1
  | Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Neq -> 1
  | Op.Mux | Op.And | Op.Or | Op.Not -> 1

let latency op ty =
  match classify ty with
  | Float_class -> float_latency op
  | Fixed_class bits -> fixed_latency bits op
  | Bool_class -> 1

let load_store_area ty =
  let w = Dtype.bits ty in
  R.make ~packable:(max 2 (w / 4)) ~unpackable:(max 1 (w / 8)) ~regs:(max 2 (w / 2)) ()

let load_store_latency = 1

let counter_area ~bits =
  R.make ~packable:(bits + 4) ~unpackable:(bits / 2) ~regs:(bits + 2) ()

let fifo_area ~width_bits ~depth dev =
  (* Shallow FIFOs live in registers; deep ones spill into M20Ks. *)
  if depth * width_bits <= 640 then
    R.make ~packable:(width_bits + 16) ~unpackable:8 ~regs:((depth * width_bits) + 16) ()
  else
    let brams = Target.bram_blocks_for dev ~width_bits ~depth in
    R.make ~packable:(width_bits + 24) ~unpackable:12 ~regs:(width_bits + 32) ~brams ()

let delay_regs_threshold = 16
