lib/device/primitives.ml: Dhdl_ir Resources Target
