lib/device/target.mli:
