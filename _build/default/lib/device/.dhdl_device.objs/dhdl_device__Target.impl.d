lib/device/target.ml: Dhdl_util List
