lib/device/resources.mli:
