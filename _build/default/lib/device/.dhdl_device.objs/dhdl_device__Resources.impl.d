lib/device/resources.ml: List Printf
