lib/device/primitives.mli: Dhdl_ir Resources Target
