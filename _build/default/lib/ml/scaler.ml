type t = { mins : float array; ranges : float array }

let fit samples =
  match samples with
  | [] -> invalid_arg "Scaler.fit: empty sample list"
  | first :: _ ->
    let dim = Array.length first in
    let mins = Array.make dim infinity in
    let maxs = Array.make dim neg_infinity in
    List.iter
      (fun row ->
        assert (Array.length row = dim);
        Array.iteri
          (fun i v ->
            if v < mins.(i) then mins.(i) <- v;
            if v > maxs.(i) then maxs.(i) <- v)
          row)
      samples;
    { mins; ranges = Array.init dim (fun i -> maxs.(i) -. mins.(i)) }

let transform t row =
  Array.mapi
    (fun i v ->
      if t.ranges.(i) <= 0.0 then 0.5 else (v -. t.mins.(i)) /. t.ranges.(i))
    row

let transform_value ~lo ~hi v =
  if hi -. lo <= 0.0 then 0.5 else (v -. lo) /. (hi -. lo)

let inverse_value ~lo ~hi v = lo +. (v *. (hi -. lo))

let dim t = Array.length t.mins
