lib/ml/linreg.ml: Array Dhdl_util List
