lib/ml/scaler.ml: Array List
