lib/ml/mlp.ml: Array Dhdl_util List
