lib/ml/linreg.mli:
