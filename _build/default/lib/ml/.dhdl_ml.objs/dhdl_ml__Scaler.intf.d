lib/ml/scaler.mli:
