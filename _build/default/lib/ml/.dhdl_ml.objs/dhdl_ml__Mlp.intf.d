lib/ml/mlp.mli: Dhdl_util
