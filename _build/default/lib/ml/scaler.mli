(** Per-feature min-max normalization into [0, 1], the standard preprocessing
    for sigmoid networks on resource-count features of wildly different
    magnitudes (LUT counts vs. average fanout). *)

type t

val fit : float array list -> t
(** Learn per-column minimum and range from a non-empty sample list. Columns
    with zero range map to 0.5. *)

val transform : t -> float array -> float array
val transform_value : lo:float -> hi:float -> float -> float
val inverse_value : lo:float -> hi:float -> float -> float

val dim : t -> int
