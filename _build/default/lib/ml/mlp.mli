(** Small fully connected feed-forward neural network.

    The paper (Section IV.B) models place-and-route effects with three-layer
    networks — eleven inputs, six hidden nodes, one output — trained with the
    Encog library. This module provides the same model class: dense layers,
    sigmoid hidden activations, linear output, trained with resilient
    backpropagation (RPROP, Encog's default trainer). *)

type t

type activation = Sigmoid | Tanh | Linear

val create : ?rng:Dhdl_util.Rng.t -> layer_sizes:int list -> ?hidden:activation -> unit -> t
(** [create ~layer_sizes:[inputs; hidden1; ...; outputs] ()] builds a network
    with small random initial weights. At least two sizes are required. *)

val inputs : t -> int
val outputs : t -> int

val predict : t -> float array -> float array
(** Forward pass; the input length must equal [inputs t]. *)

val predict1 : t -> float array -> float
(** Forward pass of a single-output network. *)

val mse : t -> (float array * float array) list -> float
(** Mean squared error over a sample set. *)

val train_rprop : ?epochs:int -> ?target_mse:float -> t -> (float array * float array) list -> float
(** Batch RPROP training; returns the final MSE. Mutates the network.
    Defaults: 400 epochs, stop early below [target_mse] (1e-6). *)

val train_sgd :
  ?epochs:int -> ?rate:float -> ?rng:Dhdl_util.Rng.t -> t -> (float array * float array) list -> float
(** Stochastic gradient descent alternative (used in ablation tests). *)
