module Matrix = Dhdl_util.Matrix

type t = { coeffs : float array; intercept : float }

let fit samples =
  match samples with
  | [] -> invalid_arg "Linreg.fit: empty sample list"
  | (first, _) :: _ ->
    let dim = Array.length first in
    let rows =
      List.map
        (fun (x, _) ->
          assert (Array.length x = dim);
          Array.append x [| 1.0 |])
        samples
    in
    let a = Matrix.of_rows (Array.of_list rows) in
    let b = Array.of_list (List.map snd samples) in
    let sol = Matrix.least_squares a b in
    { coeffs = Array.sub sol 0 dim; intercept = sol.(dim) }

let predict t x =
  assert (Array.length x = Array.length t.coeffs);
  let acc = ref t.intercept in
  Array.iteri (fun i xi -> acc := !acc +. (t.coeffs.(i) *. xi)) x;
  !acc

let coefficients t = t.coeffs
let intercept t = t.intercept

let r_squared t samples =
  match samples with
  | [] -> 1.0
  | _ ->
    let ys = List.map snd samples in
    let mean_y = Dhdl_util.Stats.mean ys in
    let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. mean_y) ** 2.0)) 0.0 ys in
    let ss_res =
      List.fold_left (fun acc (x, y) -> acc +. ((y -. predict t x) ** 2.0)) 0.0 samples
    in
    if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)
