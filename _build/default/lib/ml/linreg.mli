(** Ordinary least-squares linear regression with intercept.

    The paper fits BRAM duplication as a linear function of routing LUTs and
    fits per-template analytical area models from characterization runs;
    both use this module. *)

type t

val fit : (float array * float) list -> t
(** [fit samples] learns coefficients minimizing squared error; samples must
    be non-empty and share one feature dimension. *)

val predict : t -> float array -> float

val coefficients : t -> float array
(** Feature coefficients, without the intercept. *)

val intercept : t -> float

val r_squared : t -> (float array * float) list -> float
(** Coefficient of determination on a sample set (1.0 = perfect). *)
