module Rng = Dhdl_util.Rng

type activation = Sigmoid | Tanh | Linear

type layer = {
  weights : float array array; (* [out][in] *)
  biases : float array;
  act : activation;
}

type t = { layers : layer array }

let apply_act act x =
  match act with
  | Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
  | Tanh -> tanh x
  | Linear -> x

(* Derivative expressed in terms of the activation output. *)
let act_deriv act y =
  match act with
  | Sigmoid -> y *. (1.0 -. y)
  | Tanh -> 1.0 -. (y *. y)
  | Linear -> 1.0

let create ?rng ~layer_sizes ?(hidden = Sigmoid) () =
  let rng = match rng with Some r -> r | None -> Rng.create 42 in
  let sizes = Array.of_list layer_sizes in
  assert (Array.length sizes >= 2);
  let nlayers = Array.length sizes - 1 in
  let make_layer i =
    let n_in = sizes.(i) and n_out = sizes.(i + 1) in
    let scale = 1.0 /. sqrt (float_of_int n_in) in
    {
      weights =
        Array.init n_out (fun _ -> Array.init n_in (fun _ -> Rng.float_in rng (-.scale) scale));
      biases = Array.init n_out (fun _ -> Rng.float_in rng (-0.1) 0.1);
      act = (if i = nlayers - 1 then Linear else hidden);
    }
  in
  { layers = Array.init nlayers make_layer }

let inputs t = Array.length t.layers.(0).weights.(0)
let outputs t = Array.length t.layers.(Array.length t.layers - 1).biases

let layer_forward layer input =
  Array.mapi
    (fun o row ->
      let acc = ref layer.biases.(o) in
      for i = 0 to Array.length row - 1 do
        acc := !acc +. (row.(i) *. input.(i))
      done;
      apply_act layer.act !acc)
    layer.weights

let predict t input =
  assert (Array.length input = inputs t);
  Array.fold_left (fun acc layer -> layer_forward layer acc) input t.layers

let predict1 t input =
  let out = predict t input in
  assert (Array.length out = 1);
  out.(0)

let mse t samples =
  match samples with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left
        (fun acc (x, target) ->
          let y = predict t x in
          let e = ref 0.0 in
          Array.iteri (fun i yi -> e := !e +. (((yi -. target.(i)) ** 2.0) /. 2.0)) y;
          acc +. !e)
        0.0 samples
    in
    total /. float_of_int (List.length samples)

(* Forward pass remembering every layer's activations, then standard
   backpropagation. Gradients are accumulated into [gw]/[gb]. *)
let accumulate_gradients t (input, target) gw gb =
  let nlayers = Array.length t.layers in
  let acts = Array.make (nlayers + 1) input in
  for l = 0 to nlayers - 1 do
    acts.(l + 1) <- layer_forward t.layers.(l) acts.(l)
  done;
  let out = acts.(nlayers) in
  let delta = ref (Array.mapi (fun i y -> (y -. target.(i)) *. act_deriv t.layers.(nlayers - 1).act y) out) in
  for l = nlayers - 1 downto 0 do
    let layer = t.layers.(l) in
    let a_in = acts.(l) in
    let d = !delta in
    Array.iteri
      (fun o dv ->
        gb.(l).(o) <- gb.(l).(o) +. dv;
        let wrow = gw.(l).(o) in
        Array.iteri (fun i ai -> wrow.(i) <- wrow.(i) +. (dv *. ai)) a_in)
      d;
    if l > 0 then begin
      let prev = t.layers.(l - 1) in
      let n_in = Array.length a_in in
      let nd =
        Array.init n_in (fun i ->
            let acc = ref 0.0 in
            Array.iteri (fun o dv -> acc := !acc +. (dv *. layer.weights.(o).(i))) d;
            !acc *. act_deriv prev.act a_in.(i))
      in
      delta := nd
    end
  done

let zero_grads t =
  let gw =
    Array.map (fun l -> Array.map (fun row -> Array.make (Array.length row) 0.0) l.weights) t.layers
  in
  let gb = Array.map (fun l -> Array.make (Array.length l.biases) 0.0) t.layers in
  (gw, gb)

(* iRPROP-: per-parameter adaptive steps, sign-based updates. *)
type rprop_state = { steps : float array array array; bsteps : float array array; mutable prev_gw : float array array array; mutable prev_gb : float array array }

let rprop_init t =
  let init = 0.1 in
  {
    steps = Array.map (fun l -> Array.map (fun row -> Array.make (Array.length row) init) l.weights) t.layers;
    bsteps = Array.map (fun l -> Array.make (Array.length l.biases) init) t.layers;
    prev_gw = (let gw, _ = zero_grads t in gw);
    prev_gb = (let _, gb = zero_grads t in gb);
  }

let eta_plus = 1.2
let eta_minus = 0.5
let step_max = 50.0
let step_min = 1e-8

let rprop_update_param value grad prev_grad step =
  let sign = grad *. prev_grad in
  if sign > 0.0 then begin
    let s = min (step *. eta_plus) step_max in
    let dv = if grad > 0.0 then -.s else s in
    (value +. dv, grad, s)
  end
  else if sign < 0.0 then
    (* Overshoot: shrink the step and skip the update this epoch. *)
    (value, 0.0, max (step *. eta_minus) step_min)
  else begin
    let dv = if grad > 0.0 then -.step else if grad < 0.0 then step else 0.0 in
    (value +. dv, grad, step)
  end

let train_rprop ?(epochs = 400) ?(target_mse = 1e-6) t samples =
  assert (samples <> []);
  let st = rprop_init t in
  let rec epoch k =
    if k >= epochs then mse t samples
    else begin
      let gw, gb = zero_grads t in
      List.iter (fun s -> accumulate_gradients t s gw gb) samples;
      Array.iteri
        (fun l layer ->
          Array.iteri
            (fun o row ->
              Array.iteri
                (fun i w ->
                  let v, pg, s = rprop_update_param w gw.(l).(o).(i) st.prev_gw.(l).(o).(i) st.steps.(l).(o).(i) in
                  row.(i) <- v;
                  st.prev_gw.(l).(o).(i) <- pg;
                  st.steps.(l).(o).(i) <- s)
                row;
              let v, pg, s = rprop_update_param layer.biases.(o) gb.(l).(o) st.prev_gb.(l).(o) st.bsteps.(l).(o) in
              layer.biases.(o) <- v;
              st.prev_gb.(l).(o) <- pg;
              st.bsteps.(l).(o) <- s)
            layer.weights)
        t.layers;
      let e = mse t samples in
      if e <= target_mse then e else epoch (k + 1)
    end
  in
  epoch 0

let train_sgd ?(epochs = 200) ?(rate = 0.05) ?rng t samples =
  assert (samples <> []);
  let rng = match rng with Some r -> r | None -> Rng.create 7 in
  let arr = Array.of_list samples in
  for _ = 1 to epochs do
    Rng.shuffle rng arr;
    Array.iter
      (fun s ->
        let gw, gb = zero_grads t in
        accumulate_gradients t s gw gb;
        Array.iteri
          (fun l layer ->
            Array.iteri
              (fun o row ->
                Array.iteri (fun i w -> row.(i) <- w -. (rate *. gw.(l).(o).(i))) row;
                layer.biases.(o) <- layer.biases.(o) -. (rate *. gb.(l).(o)))
              layer.weights)
          t.layers)
      arr
  done;
  mse t samples
