(** Figure 2: the GDA kernel as high-level-synthesis C, with the design
    knobs the paper sweeps for Table IV — per-loop unroll factors and
    pipeline directives. The restricted space never pipelines the outer
    loop L1; the full space includes points that do, which forces complete
    unrolling of L11/L121/L122 during scheduling. *)

type directives = {
  pipeline_l1 : bool;  (** Outer-loop pipeline (the expensive one). *)
  pipeline_l11 : bool;
  pipeline_l121 : bool;  (** Pipelining L121 fully unrolls L122. *)
  pipeline_l122 : bool;
  unroll_l11 : int;
  unroll_l122 : int;
}

let default =
  {
    pipeline_l1 = false;
    pipeline_l11 = true;
    pipeline_l121 = false;
    pipeline_l122 = true;
    unroll_l11 = 1;
    unroll_l122 = 1;
  }

(* L1: rows; L11: mean subtraction; L121/L122: sigma accumulation. *)
let build ?(rows = 360_000) ?(cols = 96) (d : directives) =
  let open Cir in
  let sub_body =
    [
      Assign
        {
          arr = "sub";
          idx = [ Var "j" ];
          rhs =
            Ternary
              ( Bin (Gt, Load ("y", [ Var "i" ]), Const 0.0),
                Bin (Sub, Load ("x", [ Var "i"; Var "j" ]), Load ("mu1", [ Var "j" ])),
                Bin (Sub, Load ("x", [ Var "i"; Var "j" ]), Load ("mu0", [ Var "j" ])) );
        };
    ]
  in
  let accum_body =
    [
      Accum
        {
          arr = "sigma";
          idx = [ Var "j1"; Var "j2" ];
          rhs = Bin (Mul, Load ("sub", [ Var "j1" ]), Load ("sub", [ Var "j2" ]));
        };
    ]
  in
  let l11 = for_ ~pipeline:d.pipeline_l11 ~unroll:d.unroll_l11 "j" cols sub_body in
  let l122 = for_ ~pipeline:d.pipeline_l122 ~unroll:d.unroll_l122 "j2" cols accum_body in
  let l121 = for_ ~pipeline:d.pipeline_l121 "j1" cols [ l122 ] in
  let l1 = for_ ~pipeline:d.pipeline_l1 "i" rows [ l11; l121 ] in
  { fn_name = "gda"; fn_body = [ l1 ] }

(* The 250-point sweep of Section V.C.2: unroll factors and pipeline
   toggles; [restricted] excludes outer-loop pipelining. *)
let design_points ~restricted =
  let unrolls = [ 1; 2; 4; 8; 16 ] in
  let bools = [ false; true ] in
  let points =
    List.concat_map
      (fun u11 ->
        List.concat_map
          (fun u122 ->
            List.concat_map
              (fun p11 ->
                List.concat_map
                  (fun p121 ->
                    List.concat_map
                      (fun p122 ->
                        List.filter_map
                          (fun p1 ->
                            if restricted && p1 then None
                            else
                              Some
                                {
                                  pipeline_l1 = p1;
                                  pipeline_l11 = p11;
                                  pipeline_l121 = p121;
                                  pipeline_l122 = p122;
                                  unroll_l11 = u11;
                                  unroll_l122 = u122;
                                })
                          bools)
                      bools)
                  bools)
              bools)
          unrolls)
      unrolls
  in
  points
