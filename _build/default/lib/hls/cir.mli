(** A miniature C-like loop IR — the input language of the simulated
    high-level synthesis tool used as the Table IV baseline. It is just
    expressive enough for Figure 2's GDA kernel: perfectly/imperfectly
    nested counted loops over array expressions, with HLS directives
    (PIPELINE / UNROLL) attached to loops. *)

type expr =
  | Const of float
  | Var of string  (** Loop induction variable or scalar. *)
  | Load of string * expr list  (** Array element read. *)
  | Bin of binop * expr * expr
  | Ternary of expr * expr * expr

and binop = Add | Sub | Mul | Div | Lt | Gt | Eq

type stmt =
  | Assign of { arr : string; idx : expr list; rhs : expr }
  | Accum of { arr : string; idx : expr list; rhs : expr }  (** arr[idx] += rhs *)
  | For of loop

and loop = {
  var : string;
  extent : int;
  pipeline : bool;  (** #pragma HLS PIPELINE II=1 *)
  unroll : int;  (** #pragma HLS UNROLL factor=n (1 = none). *)
  body : stmt list;
}

type func = { fn_name : string; fn_body : stmt list }

val for_ : ?pipeline:bool -> ?unroll:int -> string -> int -> stmt list -> stmt
val loop_count : func -> int
val to_string : func -> string
(** C-like listing with pragmas, for documentation output. *)

val binop_str : binop -> string
