(** The simulated high-level synthesis estimation flow (Table IV baseline).

    Mirrors how a commercial HLS tool evaluates one design point: elaborate
    the C loop nest (fully unrolling every loop nested inside a PIPELINE
    directive, which is what makes outer-loop pipelining explode — Section
    V.C.2), run quadratic memory-dependence analysis over each unrolled
    region, list-schedule under resource constraints, search for a feasible
    initiation interval, and iterate binding refinement. All of that work is
    *real computation* here, so wall-clock per design point scales the same
    way the paper measured: milliseconds for the restricted space, orders
    of magnitude more once an outer loop is pipelined. *)

type report = {
  latency_cycles : float;  (** Estimated design latency. *)
  nodes_scheduled : int;  (** DFG nodes across all scheduled regions. *)
  dependence_checks : int;  (** Pairwise alias queries performed. *)
  regions : int;
  elapsed_seconds : float;  (** Wall-clock time this estimation took. *)
}

val estimate : Cir.func -> report
(** Estimate one design point. *)
