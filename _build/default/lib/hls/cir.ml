type expr =
  | Const of float
  | Var of string
  | Load of string * expr list
  | Bin of binop * expr * expr
  | Ternary of expr * expr * expr

and binop = Add | Sub | Mul | Div | Lt | Gt | Eq

type stmt =
  | Assign of { arr : string; idx : expr list; rhs : expr }
  | Accum of { arr : string; idx : expr list; rhs : expr }
  | For of loop

and loop = {
  var : string;
  extent : int;
  pipeline : bool;
  unroll : int;
  body : stmt list;
}

type func = { fn_name : string; fn_body : stmt list }

let for_ ?(pipeline = false) ?(unroll = 1) var extent body =
  assert (extent > 0 && unroll >= 1);
  For { var; extent; pipeline; unroll; body }

let rec count_stmt = function
  | Assign _ | Accum _ -> 0
  | For l -> 1 + List.fold_left (fun acc s -> acc + count_stmt s) 0 l.body

let loop_count f = List.fold_left (fun acc s -> acc + count_stmt s) 0 f.fn_body

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="

let rec expr_str = function
  | Const f -> Printf.sprintf "%g" f
  | Var v -> v
  | Load (a, idx) -> a ^ String.concat "" (List.map (fun e -> "[" ^ expr_str e ^ "]") idx)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Ternary (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)

let rec stmt_lines indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign { arr; idx; rhs } ->
    [ Printf.sprintf "%s%s%s = %s;" pad arr
        (String.concat "" (List.map (fun e -> "[" ^ expr_str e ^ "]") idx))
        (expr_str rhs) ]
  | Accum { arr; idx; rhs } ->
    [ Printf.sprintf "%s%s%s += %s;" pad arr
        (String.concat "" (List.map (fun e -> "[" ^ expr_str e ^ "]") idx))
        (expr_str rhs) ]
  | For l ->
    let pragmas =
      (if l.pipeline then [ Printf.sprintf "%s#pragma HLS PIPELINE II=1" pad ] else [])
      @ if l.unroll > 1 then [ Printf.sprintf "%s#pragma HLS UNROLL factor=%d" pad l.unroll ] else []
    in
    (Printf.sprintf "%sfor (int %s = 0; %s < %d; %s++) {" pad l.var l.var l.extent l.var :: pragmas)
    @ List.concat_map (stmt_lines (indent + 2)) l.body
    @ [ pad ^ "}" ]

let to_string f =
  String.concat "\n"
    ((Printf.sprintf "void %s(...) {" f.fn_name :: List.concat_map (stmt_lines 2) f.fn_body)
    @ [ "}" ])
