lib/hls/cir.ml: List Printf String
