lib/hls/scheduler.ml: Array Cir Hashtbl List Option Printf String Unix
