lib/hls/gda_c.ml: Cir List
