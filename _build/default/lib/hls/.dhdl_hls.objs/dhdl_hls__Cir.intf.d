lib/hls/cir.mli:
