lib/hls/scheduler.mli: Cir
