(* Node kinds with the same latency class the DHDL primitive library uses,
   so the two tools price the same hardware. *)
type nkind = Fadd | Fsub | Fmul | Fdiv | Cmp | Sel | Ld | St

type node = {
  id : int;
  kind : nkind;
  arr : string;  (** Array touched; "" for pure compute. *)
  key : string;  (** Concrete index key after unrolling; "?" if symbolic. *)
  writes : bool;
  mutable deps : int list;
}

type report = {
  latency_cycles : float;
  nodes_scheduled : int;
  dependence_checks : int;
  regions : int;
  elapsed_seconds : float;
}

let latency_of = function
  | Fadd | Fsub -> 7
  | Fmul -> 6
  | Fdiv -> 28
  | Cmp -> 1
  | Sel -> 1
  | Ld -> 2
  | St -> 1

(* Resource limits per schedulable region: the HLS tool binds operations to
   a bounded pool of units and dual-ported memories. *)
let limit_of = function
  | Fadd | Fsub -> 4
  | Fmul -> 4
  | Fdiv -> 1
  | Cmp | Sel -> 8
  | Ld -> 2
  | St -> 1

type region_builder = {
  mutable nodes : node list;  (** Reverse order. *)
  mutable count : int;
  mutable last_result : int;  (** Most recent value-producing node. *)
}

let new_region () = { nodes = []; count = 0; last_result = -1 }

let push rb kind ~arr ~key ~writes deps =
  let n = { id = rb.count; kind; arr; key; writes; deps } in
  rb.count <- rb.count + 1;
  rb.nodes <- n :: rb.nodes;
  rb.last_result <- n.id;
  n.id

(* Render an index expression under the unrolling environment: fully
   concrete indices produce distinct keys the dependence test can
   disambiguate; anything symbolic stays "?" (conservative aliasing). *)
let rec key_of env (e : Cir.expr) =
  match e with
  | Cir.Const f -> Printf.sprintf "%g" f
  | Cir.Var v -> (
    match List.assoc_opt v env with Some i -> string_of_int i | None -> "?")
  | Cir.Bin (op, a, b) ->
    let ka = key_of env a and kb = key_of env b in
    if String.contains ka '?' || String.contains kb '?' then "?"
    else begin
      match (op, int_of_string_opt ka, int_of_string_opt kb) with
      | Cir.Add, Some x, Some y -> string_of_int (x + y)
      | Cir.Mul, Some x, Some y -> string_of_int (x * y)
      | Cir.Sub, Some x, Some y -> string_of_int (x - y)
      | _ -> ka ^ Cir.binop_str op ^ kb
    end
  | Cir.Load _ | Cir.Ternary _ -> "?"

let keys_of env idx = String.concat "," (List.map (key_of env) idx)

let rec emit_expr rb env (e : Cir.expr) =
  match e with
  | Cir.Const _ | Cir.Var _ -> -1
  | Cir.Load (arr, idx) ->
    List.iter (fun i -> ignore (emit_expr rb env i)) idx;
    push rb Ld ~arr ~key:(keys_of env idx) ~writes:false []
  | Cir.Bin (op, a, b) ->
    let da = emit_expr rb env a and db = emit_expr rb env b in
    let deps = List.filter (fun d -> d >= 0) [ da; db ] in
    let kind =
      match op with
      | Cir.Add -> Fadd
      | Cir.Sub -> Fsub
      | Cir.Mul -> Fmul
      | Cir.Div -> Fdiv
      | Cir.Lt | Cir.Gt | Cir.Eq -> Cmp
    in
    push rb kind ~arr:"" ~key:"" ~writes:false deps
  | Cir.Ternary (c, a, b) ->
    let dc = emit_expr rb env c and da = emit_expr rb env a and db = emit_expr rb env b in
    push rb Sel ~arr:"" ~key:"" ~writes:false (List.filter (fun d -> d >= 0) [ dc; da; db ])

let emit_assign rb env ~accum ~arr ~idx ~rhs =
  let key = keys_of env idx in
  let drhs = emit_expr rb env rhs in
  let value =
    if accum then begin
      let ld = push rb Ld ~arr ~key ~writes:false [] in
      push rb Fadd ~arr:"" ~key:"" ~writes:false (List.filter (fun d -> d >= 0) [ ld; drhs ])
    end
    else drhs
  in
  ignore (push rb St ~arr ~key ~writes:true (List.filter (fun d -> d >= 0) [ value ]))

(* Fully unroll a statement list into one region (what PIPELINE does to
   everything nested beneath it). *)
let rec emit_unrolled rb env stmts =
  List.iter
    (fun stmt ->
      match stmt with
      | Cir.Assign { arr; idx; rhs } -> emit_assign rb env ~accum:false ~arr ~idx ~rhs
      | Cir.Accum { arr; idx; rhs } -> emit_assign rb env ~accum:true ~arr ~idx ~rhs
      | Cir.For l ->
        for i = 0 to l.extent - 1 do
          emit_unrolled rb ((l.var, i) :: env) l.body
        done)
    stmts

(* ---------------------------------------------------------------- *)
(* Dependence analysis: pairwise within each array.                  *)
(* ---------------------------------------------------------------- *)

let add_memory_deps nodes =
  let checks = ref 0 in
  let by_array = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if n.arr <> "" then
        Hashtbl.replace by_array n.arr (n :: Option.value ~default:[] (Hashtbl.find_opt by_array n.arr)))
    nodes;
  Hashtbl.iter
    (fun _ ns ->
      let arr = Array.of_list (List.rev ns) in
      let len = Array.length arr in
      for j = 1 to len - 1 do
        for i = 0 to j - 1 do
          incr checks;
          let a = arr.(i) and b = arr.(j) in
          if a.writes || b.writes then begin
            (* Distinct fully-concrete keys cannot alias; anything symbolic
               is a conservative dependence. *)
            let may_alias =
              a.key = b.key || String.contains a.key '?' || String.contains b.key '?'
            in
            if may_alias then b.deps <- a.id :: b.deps
          end
        done
      done)
    by_array;
  !checks

(* ---------------------------------------------------------------- *)
(* Resource-constrained list scheduling.                             *)
(* ---------------------------------------------------------------- *)

let list_schedule ?(priority = `Depth) nodes =
  let n = Array.length nodes in
  if n = 0 then 0
  else begin
    (* Critical-path-length priority (computed once). *)
    let height = Array.make n 0 in
    let users = Array.make n [] in
    Array.iter (fun nd -> List.iter (fun d -> users.(d) <- nd.id :: users.(d)) nd.deps) nodes;
    for i = n - 1 downto 0 do
      let h =
        List.fold_left (fun acc u -> max acc (height.(u) + latency_of nodes.(u).kind)) 0 users.(i)
      in
      height.(i) <- h
    done;
    let prio i =
      match priority with
      | `Depth -> height.(i)
      | `Id -> n - i
      | `Fanout -> List.length users.(i)
    in
    let ready_time = Array.make n 0 in
    let scheduled = Array.make n (-1) in
    let indeg = Array.make n 0 in
    Array.iter (fun nd -> indeg.(nd.id) <- List.length nd.deps) nodes;
    (* Binary max-heap of ready nodes keyed by priority. *)
    let heap = Array.make (n + 1) 0 in
    let heap_size = ref 0 in
    let better a b = prio a > prio b || (prio a = prio b && ready_time.(a) < ready_time.(b)) in
    let heap_push id =
      incr heap_size;
      heap.(!heap_size) <- id;
      let i = ref !heap_size in
      while !i > 1 && better heap.(!i) heap.(!i / 2) do
        let tmp = heap.(!i / 2) in
        heap.(!i / 2) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !i / 2
      done
    in
    let heap_pop () =
      assert (!heap_size > 0);
      let top = heap.(1) in
      heap.(1) <- heap.(!heap_size);
      decr heap_size;
      let i = ref 1 in
      let continue = ref true in
      while !continue do
        let l = 2 * !i and r = (2 * !i) + 1 in
        let best = ref !i in
        if l <= !heap_size && better heap.(l) heap.(!best) then best := l;
        if r <= !heap_size && better heap.(r) heap.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = heap.(!best) in
          heap.(!best) <- heap.(!i);
          heap.(!i) <- tmp;
          i := !best
        end
      done;
      top
    in
    Array.iter (fun nd -> if indeg.(nd.id) = 0 then heap_push nd.id) nodes;
    let usage : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let kind_tag = function
      | Fadd | Fsub -> 0
      | Fmul -> 1
      | Fdiv -> 2
      | Cmp | Sel -> 3
      | Ld -> 4
      | St -> 5
    in
    let finish = ref 0 in
    let remaining = ref n in
    while !remaining > 0 do
      if !heap_size = 0 then failwith "hls scheduler: cyclic dependence graph";
      let id = heap_pop () in
      let nd = nodes.(id) in
      let tag = kind_tag nd.kind in
      let limit = limit_of nd.kind in
      let t = ref ready_time.(id) in
      while Option.value ~default:0 (Hashtbl.find_opt usage (!t, tag)) >= limit do
        incr t
      done;
      Hashtbl.replace usage (!t, tag) (1 + Option.value ~default:0 (Hashtbl.find_opt usage (!t, tag)));
      scheduled.(id) <- !t;
      let fin = !t + latency_of nd.kind in
      finish := max !finish fin;
      decr remaining;
      List.iter
        (fun u ->
          ready_time.(u) <- max ready_time.(u) fin;
          indeg.(u) <- indeg.(u) - 1;
          if indeg.(u) = 0 then heap_push u)
        users.(id)
    done;
    !finish
  end

(* Initiation interval: lower-bounded by resource pressure and by the
   longest memory recurrence (load -> op chain -> store to the same key). *)
let find_ii nodes =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      let k = limit_of nd.kind in
      Hashtbl.replace counts nd.kind (1 + Option.value ~default:0 (Hashtbl.find_opt counts nd.kind)) |> ignore;
      ignore k)
    nodes;
  let res_bound =
    Hashtbl.fold
      (fun kind count acc -> max acc ((count + limit_of kind - 1) / limit_of kind))
      counts 1
  in
  (* Recurrence: a store whose key is also loaded implies a loop-carried
     read-modify-write through an adder. *)
  let stored = Hashtbl.create 64 in
  Array.iter (fun nd -> if nd.writes then Hashtbl.replace stored (nd.arr, nd.key) ()) nodes;
  let recurrence =
    Array.exists (fun nd -> (not nd.writes) && nd.arr <> "" && Hashtbl.mem stored (nd.arr, nd.key)) nodes
  in
  let rec_bound = if recurrence then latency_of Fadd + latency_of Ld + 1 else 1 in
  max res_bound rec_bound

(* Binding refinement: the tool retries the schedule under several priority
   heuristics and keeps the best (stand-in for Vivado's binding/retiming
   iterations; genuine work proportional to the region size). *)
let schedule_region nodes_list =
  let nodes = Array.of_list (List.rev nodes_list) in
  let checks = add_memory_deps nodes in
  let depth =
    List.fold_left
      (fun best p -> min best (list_schedule ~priority:p nodes))
      max_int [ `Depth; `Id; `Fanout ]
  in
  let ii = find_ii nodes in
  (Array.length nodes, checks, depth, ii)

(* ---------------------------------------------------------------- *)
(* Whole-function latency                                            *)
(* ---------------------------------------------------------------- *)

type ctx = { mutable total_nodes : int; mutable total_checks : int; mutable total_regions : int }

let rec latency_of_stmts ctx env stmts =
  (* Straight-line statements between loops form their own small region. *)
  let straight = new_region () in
  let lat = ref 0.0 in
  let flush () =
    if straight.count > 0 then begin
      let n, checks, depth, _ = schedule_region straight.nodes in
      ctx.total_nodes <- ctx.total_nodes + n;
      ctx.total_checks <- ctx.total_checks + checks;
      ctx.total_regions <- ctx.total_regions + 1;
      lat := !lat +. float_of_int depth;
      straight.nodes <- [];
      straight.count <- 0
    end
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Cir.Assign { arr; idx; rhs } -> emit_assign straight env ~accum:false ~arr ~idx ~rhs
      | Cir.Accum { arr; idx; rhs } -> emit_assign straight env ~accum:true ~arr ~idx ~rhs
      | Cir.For l ->
        flush ();
        lat := !lat +. latency_of_loop ctx env l)
    stmts;
  flush ();
  !lat

and latency_of_loop ctx env (l : Cir.loop) =
  if l.pipeline then begin
    (* PIPELINE: completely unroll all loops below, schedule the single
       unrolled region, then stream iterations at the found II. *)
    let rb = new_region () in
    emit_unrolled rb (("" ^ l.var, 0) :: env) l.body;
    let n, checks, depth, ii = schedule_region rb.nodes in
    ctx.total_nodes <- ctx.total_nodes + n;
    ctx.total_checks <- ctx.total_checks + checks;
    ctx.total_regions <- ctx.total_regions + 1;
    float_of_int depth +. (float_of_int ((l.extent - 1) * ii)) +. 2.0
  end
  else begin
    let u = max 1 l.unroll in
    let has_inner = List.exists (function Cir.For _ -> true | _ -> false) l.body in
    if has_inner || u = 1 then begin
      let body_lat = latency_of_stmts ctx ((l.var, 0) :: env) l.body in
      (float_of_int l.extent *. (body_lat +. 2.0)) +. 2.0
    end
    else begin
      (* UNROLL factor u: u copies of the body in one region. *)
      let rb = new_region () in
      for i = 0 to u - 1 do
        emit_unrolled rb ((l.var, i) :: env) l.body
      done;
      let n, checks, depth, _ = schedule_region rb.nodes in
      ctx.total_nodes <- ctx.total_nodes + n;
      ctx.total_checks <- ctx.total_checks + checks;
      ctx.total_regions <- ctx.total_regions + 1;
      let trips = (l.extent + u - 1) / u in
      (float_of_int trips *. (float_of_int depth +. 2.0)) +. 2.0
    end
  end

let estimate (f : Cir.func) =
  let t0 = Unix.gettimeofday () in
  let ctx = { total_nodes = 0; total_checks = 0; total_regions = 0 } in
  let latency = latency_of_stmts ctx [] f.Cir.fn_body in
  {
    latency_cycles = latency;
    nodes_scheduled = ctx.total_nodes;
    dependence_checks = ctx.total_checks;
    regions = ctx.total_regions;
    elapsed_seconds = Unix.gettimeofday () -. t0;
  }
