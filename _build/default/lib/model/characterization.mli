(** One-time template characterization against the target toolchain.

    Section IV.B: "We obtain characterization data by synthesizing multiple
    instances of each template instantiated for combinations of its
    parameters... Using this data, we create analytical models of each DHDL
    template's resource requirements... Most templates require about six
    synthesized designs to characterize."

    This module builds those microdesigns, pushes them through the simulated
    toolchain ({!Dhdl_synth.Toolchain}), and fits per-template linear models
    for the controller overheads and memory-stream costs that the estimator
    cannot read off the primitive library. Characterization is independent
    of any application and is done once per (device, toolchain) pair. *)

module Linreg = Dhdl_ml.Linreg
module Target = Dhdl_device.Target

type t = {
  pipe_overhead : Linreg.t;  (** features [#counters; par] -> LUTs *)
  pipe_overhead_regs : Linreg.t;
  seq_overhead : Linreg.t;  (** features [#stages; #counters] -> LUTs *)
  seq_overhead_regs : Linreg.t;
  metapipe_overhead : Linreg.t;  (** features [#stages; #counters] -> LUTs *)
  metapipe_overhead_regs : Linreg.t;
  parallel_overhead : Linreg.t;  (** features [#stages] -> LUTs *)
  parallel_overhead_regs : Linreg.t;
  tile_luts : Linreg.t;  (** features [par; word_bits; #dims] -> LUTs *)
  tile_regs : Linreg.t;
  tile_brams : Linreg.t;
  microdesigns_synthesized : int;  (** How many toolchain runs it took. *)
}

val characterize : ?dev:Target.t -> unit -> t

val default : ?dev:Target.t -> unit -> t
(** Memoized {!characterize} for the default device. *)
