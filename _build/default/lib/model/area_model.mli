(** Analytical (pre-place-and-route) area estimation from template models.

    First half of the hybrid estimator (Section IV.B.2): walk the design's
    hierarchical IR once, counting each node's resources from the primitive
    library and the fitted per-template overhead models, including
    delay-matching registers/BRAMs under ASAP scheduling, reduction trees,
    automatic banking and double buffering. The output also carries the
    graph-level statistics that feed the neural-network corrections. *)

module Target = Dhdl_device.Target
module Resources = Dhdl_device.Resources

type raw = {
  resources : Resources.t;  (** Estimated pre-P&R counts. *)
  nets : int;
  avg_fanout : float;
  tree_depth : int;
  streams : int;
  ctrl_count : int;
  double_buffers : int;
  prim_count : int;
}

val raw_estimate : Characterization.t -> Target.t -> Dhdl_ir.Ir.design -> raw

val features : Target.t -> raw -> float array
(** The eleven neural-network inputs (Section IV.B.2): packable LUTs,
    unpackable LUTs, registers, DSPs, BRAMs, nets, average fanout, tree
    depth, off-chip streams, controller count, double-buffer count. *)

val feature_count : int
(** 11, matching the paper's network topology. *)

val critical_path : Dhdl_ir.Ir.stmt list -> int
(** Depth in cycles of a Pipe body under ASAP scheduling with the primitive
    library's latencies (depth-first search of Section IV.B.1). *)

val bram_blocks_estimate : Target.t -> Dhdl_ir.Ir.mem -> int
(** The estimator's approximation of M20K blocks for an on-chip memory.
    Deliberately simpler than the toolchain's exact geometry (fixed
    512-deep, 40-wide block arithmetic), one documented source of the
    paper's higher BRAM error. *)
