module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module B = Dhdl_ir.Builder
module Rng = Dhdl_util.Rng

let binary_ops = [| Op.Add; Op.Sub; Op.Mul; Op.Mul; Op.Add; Op.Min; Op.Max; Op.Div |]
let unary_ops = [| Op.Abs; Op.Sqrt; Op.Exp; Op.Log; Op.Neg |]

(* Emit [n] random primitive statements reading from a growing pool of
   available operands, and return one live operand. *)
let random_body rng pb ~seeds ~n =
  let pool = ref seeds in
  let pick () = Rng.choice_list rng !pool in
  for _ = 1 to n do
    let v =
      if Rng.int rng 4 = 0 then B.op pb (Rng.choice rng unary_ops) [ pick () ]
      else B.op pb (Rng.choice rng binary_ops) [ pick (); pick () ]
    in
    pool := v :: !pool
  done;
  pick ()

let sizes = [| 4_096; 16_384; 65_536; 262_144 |]
let tiles = [| 16; 32; 64; 128; 256; 512; 1_024; 4_096; 16_384 |]
let pars = [| 1; 1; 2; 2; 4; 8; 16; 32; 64; 128 |]

(* Shape 1: tiled streaming reduction (dotproduct-like). *)
let gen_stream_reduce rng idx =
  let n = Rng.choice rng sizes in
  let tile = Rng.choice rng tiles in
  let par = Rng.choice rng pars in
  let nops = 1 + Rng.int rng 6 in
  let b =
    B.create
      ~params:[ ("tile", tile); ("par", par) ]
      (Printf.sprintf "gen_reduce_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let partial = B.reg b "partial" Dtype.float32 in
  let acc = B.reg b "acc" Dtype.float32 in
  let inner =
    B.reduce_pipe ~label:"rp" ~counters:[ ("i", 0, tile, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        random_body rng pb ~seeds:[ v; B.const 2.0 ] ~n:nops)
  in
  let top =
    B.metapipe ~label:"outer"
      ~counters:[ ("t", 0, n, tile) ]
      ~pipelined:(Rng.bool rng)
      ~reduce:(Op.Add, partial, acc)
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par (); inner ]
  in
  B.finish b ~top

(* Shape 2: tiled elementwise map (blackscholes-like). *)
let gen_stream_map rng idx =
  let n = Rng.choice rng sizes in
  let tile = Rng.choice rng tiles in
  let par = Rng.choice rng pars in
  let nops = 2 + Rng.int rng 10 in
  let b =
    B.create ~params:[ ("tile", tile); ("par", par) ] (Printf.sprintf "gen_map_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let y = B.offchip b "y" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let yt = B.bram b "yT" Dtype.float32 [ tile ] in
  let compute =
    B.pipe ~label:"map" ~counters:[ ("i", 0, tile, 1) ] ~par (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        let r = random_body rng pb ~seeds:[ v; B.const 0.5 ] ~n:nops in
        B.store pb yt [ B.iter "i" ] r)
  in
  let top =
    B.metapipe ~label:"outer"
      ~counters:[ ("t", 0, n, tile) ]
      ~pipelined:(Rng.bool rng)
      [
        B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par ();
        compute;
        B.tile_store ~dst:y ~src:yt ~offsets:[ B.iter "t" ] ~par ();
      ]
  in
  B.finish b ~top

(* Shape 3: 2-D tile compute with nested loops (gda-like). *)
let gen_tile2d rng idx =
  let rows = 4_096 in
  let cols = Rng.choice rng [| 32; 64; 96; 128; 192 |] in
  let rtile = Rng.choice rng [| 16; 32; 64 |] in
  let par = Rng.choice rng [| 1; 2; 4; 8; 16; 48 |] in
  let nops = 1 + Rng.int rng 4 in
  let b =
    B.create ~params:[ ("rtile", rtile); ("par", par) ] (Printf.sprintf "gen_2d_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ rows; cols ] in
  let out = B.offchip b "out" Dtype.float32 [ cols; cols ] in
  let xt = B.bram b "xT" Dtype.float32 [ rtile; cols ] in
  let acc = B.bram b "accT" Dtype.float32 [ cols; cols ] in
  let work = B.bram b "workT" Dtype.float32 [ cols; cols ] in
  let compute =
    B.pipe ~label:"outerprod"
      ~counters:[ ("i", 0, cols, 1); ("j", 0, cols, 1) ]
      ~par
      (fun pb ->
        let a = B.load pb xt [ B.const 0.0; B.iter "i" ] in
        let c = B.load pb xt [ B.const 0.0; B.iter "j" ] in
        let r = random_body rng pb ~seeds:[ a; c ] ~n:nops in
        B.store pb work [ B.iter "i"; B.iter "j" ] r)
  in
  let top =
    B.sequential_block ~label:"main"
      [
        B.metapipe ~label:"rowloop"
          ~counters:[ ("r", 0, rows, rtile) ]
          ~pipelined:(Rng.bool rng) ~reduce:(Op.Add, work, acc)
          [
            B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "r"; B.const 0.0 ] ~par ();
            compute;
          ];
        B.tile_store ~dst:out ~src:acc ~offsets:[ B.const 0.0; B.const 0.0 ] ~par ();
      ]
  in
  B.finish b ~top

(* Shape 4: two-stage MetaPipe with an intermediate buffer. *)
let gen_two_stage rng idx =
  let n = Rng.choice rng sizes in
  let tile = Rng.choice rng tiles in
  let par = Rng.choice rng pars in
  let b =
    B.create ~params:[ ("tile", tile); ("par", par) ] (Printf.sprintf "gen_stage_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ n ] in
  let y = B.offchip b "y" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile ] in
  let mid = B.bram b "midT" Dtype.float32 [ tile ] in
  let outt = B.bram b "outT" Dtype.float32 [ tile ] in
  let stage1 =
    B.pipe ~label:"s1" ~counters:[ ("i", 0, tile, 1) ] ~par (fun pb ->
        let v = B.load pb xt [ B.iter "i" ] in
        let r = random_body rng pb ~seeds:[ v ] ~n:(1 + Rng.int rng 5) in
        B.store pb mid [ B.iter "i" ] r)
  in
  let stage2 =
    B.pipe ~label:"s2" ~counters:[ ("i", 0, tile, 1) ] ~par (fun pb ->
        let v = B.load pb mid [ B.iter "i" ] in
        let r = random_body rng pb ~seeds:[ v; B.const 1.5 ] ~n:(1 + Rng.int rng 5) in
        B.store pb outt [ B.iter "i" ] r)
  in
  let top =
    B.metapipe ~label:"outer" ~counters:[ ("t", 0, n, tile) ] ~pipelined:true
      [
        B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t" ] ~par ();
        stage1;
        stage2;
        B.tile_store ~dst:y ~src:outt ~offsets:[ B.iter "t" ] ~par ();
      ]
  in
  B.finish b ~top

(* Shape 5: replicated sequential inner loop (kmeans-like outer-loop
   parallelization exercising whole-subtree replication). *)
let gen_replicated rng idx =
  let n = Rng.choice rng sizes in
  let tile = Rng.choice rng [| 64; 128; 256 |] in
  let inner = Rng.choice rng [| 32; 64; 128 |] in
  let par = Rng.choice rng [| 1; 2; 4; 8; 16 |] in
  let pp = Rng.choice rng [| 1; 2; 4; 8; 16; 32 |] in
  let b =
    B.create ~params:[ ("tile", tile); ("par", par); ("pp", pp) ]
      (Printf.sprintf "gen_repl_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ n; inner ] in
  let out = B.offchip b "out" Dtype.float32 [ n ] in
  let xt = B.bram b "xT" Dtype.float32 [ tile; inner ] in
  let outt = B.bram b "outT" Dtype.float32 [ tile ] in
  let partial = B.reg b "partial" Dtype.float32 in
  let per_row =
    B.reduce_pipe ~label:"rowred" ~counters:[ ("j", 0, inner, 1) ] ~par ~op:Op.Add ~out:partial
      (fun pb ->
        let v = B.load pb xt [ B.iter "rr"; B.iter "j" ] in
        random_body rng pb ~seeds:[ v ] ~n:(1 + Rng.int rng 4))
  in
  let writeback =
    B.pipe ~label:"wb" ~counters:[] (fun pb ->
        let v = B.read_reg pb partial in
        B.store pb outt [ B.iter "rr" ] v)
  in
  let row_loop =
    B.metapipe ~label:"rows" ~counters:[ ("rr", 0, tile, 1) ] ~par:pp ~pipelined:false
      [ per_row; writeback ]
  in
  let top =
    B.metapipe ~label:"tiles" ~counters:[ ("t", 0, n, tile) ] ~pipelined:(Rng.bool rng)
      [
        B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "t"; B.const 0.0 ] ~par ();
        row_loop;
        B.tile_store ~dst:out ~src:outt ~offsets:[ B.iter "t" ] ~par ();
      ]
  in
  B.finish b ~top

(* Shape 6: two-level element-wise reduction chain over 2-D buffers at high
   parallelism (gda-like): stresses banking, double buffering and the wide
   combine units. *)
let gen_reduce_chain rng idx =
  let rows = Rng.choice rng [| 65_536; 262_144 |] in
  let cols = Rng.choice rng [| 32; 64; 96; 128; 192 |] in
  let rtile = Rng.choice rng [| 32; 64; 128; 256 |] in
  let p1 = Rng.choice rng [| 1; 2; 4; 8; 16; 32 |] in
  let p2 = Rng.choice rng [| 4; 16; 48; 96; 144; 192 |] in
  let b =
    B.create ~params:[ ("rtile", rtile); ("p1", p1); ("p2", p2) ]
      (Printf.sprintf "gen_chain_%d" idx)
  in
  let x = B.offchip b "x" Dtype.float32 [ rows; cols ] in
  let out = B.offchip b "out" Dtype.float32 [ cols; cols ] in
  let xt = B.bram b "xT" Dtype.float32 [ rtile; cols ] in
  let vec = B.bram b "vecT" Dtype.float32 [ cols ] in
  let work = B.bram b "workT" Dtype.float32 [ cols; cols ] in
  let blk = B.bram b "blkT" Dtype.float32 [ cols; cols ] in
  let acc = B.bram b "accT" Dtype.float32 [ cols; cols ] in
  let stage1 =
    B.pipe ~label:"prep" ~counters:[ ("cc", 0, cols, 1) ] ~par:p1 (fun pb ->
        let v = B.load pb xt [ B.iter "rr"; B.iter "cc" ] in
        let r = random_body rng pb ~seeds:[ v; B.const 1.0 ] ~n:(1 + Rng.int rng 3) in
        B.store pb vec [ B.iter "cc" ] r)
  in
  let stage2 =
    B.pipe ~label:"outer2"
      ~counters:[ ("i2", 0, cols, 1); ("j2", 0, cols, 1) ]
      ~par:p2
      (fun pb ->
        let a = B.load pb vec [ B.iter "i2" ] in
        let c = B.load pb vec [ B.iter "j2" ] in
        B.store pb work [ B.iter "i2"; B.iter "j2" ] (B.mul pb a c))
  in
  let inner =
    B.metapipe ~label:"rowsIn"
      ~counters:[ ("rr", 0, rtile, 1) ]
      ~pipelined:(Rng.bool rng)
      ~reduce:(Op.Add, work, blk)
      [ stage1; stage2 ]
  in
  let outer =
    B.metapipe ~label:"tilesOut"
      ~counters:[ ("r", 0, rows, rtile) ]
      ~pipelined:(Rng.bool rng)
      ~reduce:(Op.Add, blk, acc)
      [ B.tile_load ~src:x ~dst:xt ~offsets:[ B.iter "r"; B.const 0.0 ] ~par:p1 (); inner ]
  in
  let top =
    B.sequential_block ~label:"main"
      [ outer; B.tile_store ~dst:out ~src:acc ~offsets:[ B.const 0.0; B.const 0.0 ] ~par:p2 () ]
  in
  B.finish b ~top

let generate rng idx =
  match Rng.int rng 6 with
  | 0 -> gen_stream_reduce rng idx
  | 1 -> gen_stream_map rng idx
  | 2 -> gen_tile2d rng idx
  | 3 -> gen_replicated rng idx
  | 4 -> gen_reduce_chain rng idx
  | _ -> gen_two_stage rng idx

let corpus ~seed n =
  let rng = Rng.create seed in
  List.init n (fun i -> generate rng i)
