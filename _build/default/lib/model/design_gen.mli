(** Random DHDL design generator.

    Produces the "common set of 200 design samples with varying levels of
    resource usage" the paper trains its neural networks on (Section IV.B.2),
    and doubles as a fuzzer for property-based tests: every generated design
    passes {!Dhdl_ir.Analysis.validate}. *)

val generate : Dhdl_util.Rng.t -> int -> Dhdl_ir.Ir.design
(** [generate rng i] builds the [i]-th random design: a controller tree of
    bounded depth with random tile transfers, pipes over random float/fixed
    bodies, optional reductions, random tile sizes and parallelization
    factors. *)

val corpus : seed:int -> int -> Dhdl_ir.Ir.design list
(** [corpus ~seed n] generates [n] designs deterministically. *)
