(** Design-level neural-network corrections for place-and-route effects.

    Section IV.B.2: "We model LUT routing usage, register duplication, and
    unavailable LUTs using a set of small artificial neural networks...
    Each network has three fully connected layers with eleven input nodes,
    six hidden layer nodes, and a single output node. One network is trained
    for each factor on a common set of 200 design samples... Duplicated
    block RAMs are estimated as a linear function of the number of routing
    LUTs... Like the template models, these neural networks are application
    independent and only need to be trained once for a given target device
    and toolchain." *)

module Target = Dhdl_device.Target

type t

type corrections = {
  routing_luts : int;
  duplicated_regs : int;
  unavailable_luts : int;
  duplicated_brams : int;
}

val train :
  ?seed:int ->
  ?samples:int ->
  ?epochs:int ->
  Characterization.t ->
  Target.t ->
  t
(** Generate the training corpus with {!Design_gen}, synthesize every sample
    with the simulated toolchain, and train the three 11-6-1 networks (on
    effect-to-LUT ratios, min-max normalized inputs) plus the BRAM
    duplication linear model. Defaults: 200 samples, 400 RPROP epochs. *)

val correct : t -> Area_model.raw -> corrections
(** Predict the four P&R corrections for a design's raw estimate. *)

val training_mse : t -> float * float * float
(** Final training MSE of (routing, duplicated-regs, unavailable) networks. *)

val samples_used : t -> int
