lib/model/cycle_model.mli: Dhdl_device Dhdl_ir
