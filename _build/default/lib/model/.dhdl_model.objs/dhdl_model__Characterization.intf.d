lib/model/characterization.mli: Dhdl_device Dhdl_ml
