lib/model/estimator.mli: Area_model Characterization Dhdl_device Dhdl_ir Nn_correction
