lib/model/cycle_model.ml: Area_model Dhdl_device Dhdl_ir Dhdl_util Float List
