lib/model/design_gen.ml: Dhdl_ir Dhdl_util List Printf
