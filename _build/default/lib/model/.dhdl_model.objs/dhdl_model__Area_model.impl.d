lib/model/area_model.ml: Characterization Dhdl_device Dhdl_ir Dhdl_ml Dhdl_util Float Hashtbl List Option
