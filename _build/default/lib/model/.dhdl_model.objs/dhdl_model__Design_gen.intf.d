lib/model/design_gen.mli: Dhdl_ir Dhdl_util
