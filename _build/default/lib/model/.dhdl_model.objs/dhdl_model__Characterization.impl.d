lib/model/characterization.ml: Dhdl_device Dhdl_ir Dhdl_ml Dhdl_synth Hashtbl List Printf
