lib/model/area_model.mli: Characterization Dhdl_device Dhdl_ir
