lib/model/nn_correction.ml: Area_model Design_gen Dhdl_device Dhdl_ml Dhdl_synth Dhdl_util Float List
