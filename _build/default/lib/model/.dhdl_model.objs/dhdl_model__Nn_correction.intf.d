lib/model/nn_correction.mli: Area_model Characterization Dhdl_device
