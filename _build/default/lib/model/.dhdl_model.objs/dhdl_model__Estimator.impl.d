lib/model/estimator.ml: Area_model Characterization Cycle_model Dhdl_device Float Fun Hashtbl Logs Marshal Nn_correction Sys Unix
