module Ir = Dhdl_ir.Ir
module Op = Dhdl_ir.Op
module Dtype = Dhdl_ir.Dtype
module Traverse = Dhdl_ir.Traverse
module Target = Dhdl_device.Target
module Resources = Dhdl_device.Resources
module Primitives = Dhdl_device.Primitives
module Linreg = Dhdl_ml.Linreg
module Intmath = Dhdl_util.Intmath
module R = Resources

type raw = {
  resources : Resources.t;
  nets : int;
  avg_fanout : float;
  tree_depth : int;
  streams : int;
  ctrl_count : int;
  double_buffers : int;
  prim_count : int;
}

(* The estimator approximates every block as the base 512 x 40
   configuration instead of the fitter's exact width/depth trade-off
   table — slightly pessimistic for narrow memories. *)
let bram_blocks_estimate dev (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip | Ir.Reg -> 0
  | Ir.Bram ->
    let banks = max 1 m.Ir.mem_banks in
    let depth = Intmath.ceil_div (Ir.mem_words m) banks in
    let cols = Intmath.ceil_div (Dtype.bits m.Ir.mem_ty) dev.Target.bram_max_width in
    let rows = Intmath.ceil_div depth dev.Target.bram_min_depth in
    banks * cols * rows * if m.Ir.mem_double then 2 else 1
  | Ir.Queue ->
    let cols = Intmath.ceil_div (Dtype.bits m.Ir.mem_ty) dev.Target.bram_max_width in
    let rows = Intmath.ceil_div (Ir.mem_words m) dev.Target.bram_min_depth in
    cols * rows * if m.Ir.mem_double then 2 else 1

let mem_estimate dev (m : Ir.mem) =
  match m.Ir.mem_kind with
  | Ir.Offchip -> R.zero
  | Ir.Bram ->
    let banks = max 1 m.Ir.mem_banks in
    R.make ~packable:(8 * banks) ~unpackable:(2 * banks) ~regs:(4 * banks)
      ~brams:(bram_blocks_estimate dev m) ()
  | Ir.Reg ->
    let bits = Dtype.bits m.Ir.mem_ty in
    R.make ~packable:(bits / 2) ~regs:(bits * if m.Ir.mem_double then 2 else 1) ()
  | Ir.Queue ->
    let bits = Dtype.bits m.Ir.mem_ty in
    let levels = Intmath.ilog2_ceil (max 2 (Ir.mem_words m)) in
    R.add
      (R.scale levels (R.make ~packable:(bits * 2) ~unpackable:bits ~regs:bits ()))
      (R.make ~brams:(bram_blocks_estimate dev m) ~regs:(bits * 2) ())

(* Overheads predicted by the fitted template models, split into LUT
   populations with the estimator's fixed 70/30 packable assumption. *)
let split_luts luts =
  let l = max 0 (int_of_float luts) in
  let packable = l * 7 / 10 in
  R.make ~packable ~unpackable:(l - packable) ()

let with_regs res regs = R.add res (R.make ~regs:(max 0 (int_of_float regs)) ())

(* --- Pipe body modeling ------------------------------------------------ *)

let stmt_latency = function
  | Ir.Sop { op; ty; _ } -> Primitives.latency op ty
  | Ir.Sload _ -> Primitives.load_store_latency
  | Ir.Sread_reg _ -> 1
  | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ -> 1
  | Ir.Spop _ -> 2

let stmt_operands = function
  | Ir.Sop { args; _ } -> args
  | Ir.Sload { addr; _ } -> addr
  | Ir.Sstore { addr; data; _ } -> data :: addr
  | Ir.Sread_reg _ | Ir.Spop _ -> []
  | Ir.Swrite_reg { data; _ } | Ir.Spush { data; _ } -> [ data ]

let body_schedule body =
  let ends = Hashtbl.create 32 in
  let types = Hashtbl.create 32 in
  let ready o = match o with Ir.Value v -> Option.value ~default:0 (Hashtbl.find_opt ends v) | _ -> 0 in
  let deepest = ref 0 in
  List.iter
    (fun stmt ->
      let issue = List.fold_left (fun m o -> max m (ready o)) 0 (stmt_operands stmt) in
      let fin = issue + stmt_latency stmt in
      deepest := max !deepest fin;
      (match stmt with
      | Ir.Sop { dst; ty; _ } | Ir.Sload { dst; ty; _ } ->
        Hashtbl.replace ends dst fin;
        Hashtbl.replace types dst ty
      | Ir.Sread_reg { dst; reg } ->
        Hashtbl.replace ends dst fin;
        Hashtbl.replace types dst reg.Ir.mem_ty
      | Ir.Spop { dst; queue } ->
        Hashtbl.replace ends dst fin;
        Hashtbl.replace types dst queue.Ir.mem_ty
      | Ir.Sstore _ | Ir.Swrite_reg _ | Ir.Spush _ -> ()))
    body;
  (ends, types, !deepest)

let delay_estimate ~par body =
  let ends, types, _ = body_schedule body in
  let ready o = match o with Ir.Value v -> Option.value ~default:0 (Hashtbl.find_opt ends v) | _ -> 0 in
  let acc = ref R.zero in
  List.iter
    (fun stmt ->
      let issue = List.fold_left (fun m o -> max m (ready o)) 0 (stmt_operands stmt) in
      List.iter
        (fun o ->
          match o with
          | Ir.Value v ->
            let slack = issue - ready o in
            if slack > 0 then begin
              let bits =
                match Hashtbl.find_opt types v with Some ty -> Dtype.bits ty | None -> 32
              in
              let r =
                if slack > Primitives.delay_regs_threshold then
                  (* Bit-capacity approximation of a BRAM shift register. *)
                  R.make ~brams:(max 1 (Intmath.ceil_div (slack * bits) 20_480)) ()
                else R.make ~regs:(slack * bits) ()
              in
              acc := R.add !acc (R.scale par r)
            end
          | Ir.Const _ | Ir.Iter _ -> ())
        (stmt_operands stmt))
    body;
  !acc

let critical_path body =
  let _, _, d = body_schedule body in
  d

(* Multiply-add fusion heuristic: a float multiply consumed exactly once by
   a float add is assumed fused by the backend. (The backend additionally
   fuses reduction-tree inputs, which this model does not capture — the
   documented source of the gemm estimation error, Section V.B.) *)
let fma_area = R.make ~packable:400 ~unpackable:180 ~regs:580 ~dsps:1 ()

let count_fused_pairs body =
  let uses = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (function
          | Ir.Value v -> Hashtbl.replace uses v (1 + Option.value ~default:0 (Hashtbl.find_opt uses v))
          | _ -> ())
        (stmt_operands s))
    body;
  let muls = Hashtbl.create 16 in
  List.iter
    (function
      | Ir.Sop { dst; op = Op.Mul; ty = Dtype.Flt _; _ } -> Hashtbl.replace muls dst ()
      | _ -> ())
    body;
  let fused = Hashtbl.create 16 in
  List.iter
    (function
      | Ir.Sop { op = Op.Add; ty = Dtype.Flt _; args; _ } ->
        List.iter
          (function
            | Ir.Value v
              when Hashtbl.mem muls v && (not (Hashtbl.mem fused v)) && Hashtbl.find_opt uses v = Some 1
              ->
              Hashtbl.replace fused v ()
            | _ -> ())
          args
      | _ -> ())
    body;
  Hashtbl.length fused

let subtract_savings (saved : R.t) total =
  R.make
    ~packable:(max 0 (total.R.lut_packable - saved.R.lut_packable))
    ~unpackable:(max 0 (total.R.lut_unpackable - saved.R.lut_unpackable))
    ~regs:(max 0 (total.R.regs - saved.R.regs))
    ~dsps:(total.R.dsps + saved.R.dsps)
    ~brams:total.R.brams ()

let stmt_area ~par = function
  | Ir.Sop { op; ty; _ } -> R.scale par (Primitives.area op ty)
  | Ir.Sload { mem; _ } | Ir.Sstore { mem; _ } ->
    R.scale par (Primitives.load_store_area mem.Ir.mem_ty)
  | Ir.Sread_reg { reg; _ } | Ir.Swrite_reg { reg; _ } ->
    R.make ~packable:(Dtype.bits reg.Ir.mem_ty / 4) ()
  | Ir.Spush { queue; _ } | Ir.Spop { queue; _ } ->
    R.make ~packable:(Dtype.bits queue.Ir.mem_ty)
      ~unpackable:(Dtype.bits queue.Ir.mem_ty / 2)
      ~regs:(Dtype.bits queue.Ir.mem_ty / 2) ()

let scalar_reduce_area ~par (r : Ir.scalar_reduce) =
  let ty = r.Ir.sr_out.Ir.mem_ty in
  let combiner = Primitives.area r.Ir.sr_op ty in
  let tree = if par > 1 then R.scale (par - 1) combiner else R.zero in
  R.sum [ tree; combiner; R.make ~regs:(Dtype.bits ty) () ]

let mem_reduce_lanes ~par (r : Ir.mem_reduce) =
  max (max 1 par) (max (max 1 r.Ir.mr_src.Ir.mem_banks) (max 1 r.Ir.mr_dst.Ir.mem_banks))

let mem_reduce_area ~par (r : Ir.mem_reduce) =
  let ty = r.Ir.mr_dst.Ir.mem_ty in
  let lane = R.add (Primitives.area r.Ir.mr_op ty) (R.scale 3 (Primitives.load_store_area ty)) in
  R.add (R.scale (mem_reduce_lanes ~par r) lane) (Primitives.counter_area ~bits:16)

let counter_chain_area ~par counters =
  List.fold_left
    (fun acc c ->
      let bits = Intmath.ilog2_ceil (max 2 (abs c.Ir.ctr_stop + 1)) + 1 in
      let base = Primitives.counter_area ~bits in
      let vec = if par > 1 then R.scale (par - 1) (R.make ~packable:(bits / 2) ~regs:bits ()) else R.zero in
      R.add acc (R.add base vec))
    R.zero counters

let ctrl_estimate (char : Characterization.t) _dev ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    let par = loop.Ir.lp_par in
    let nctr = List.length loop.Ir.lp_counters in
    let compute = R.sum (List.map (stmt_area ~par) body) in
    let fused = count_fused_pairs body in
    let saved =
      let sep = R.add (Primitives.area Op.Mul Dtype.float32) (Primitives.area Op.Add Dtype.float32) in
      R.scale (fused * par)
        (R.make
           ~packable:(max 0 (sep.R.lut_packable - fma_area.R.lut_packable))
           ~unpackable:(max 0 (sep.R.lut_unpackable - fma_area.R.lut_unpackable))
           ~regs:(max 0 (sep.R.regs - fma_area.R.regs))
           ())
    in
    let compute = subtract_savings saved compute in
    let red = match reduce with None -> R.zero | Some r -> scalar_reduce_area ~par r in
    let overhead =
      with_regs
        (split_luts (Linreg.predict char.Characterization.pipe_overhead [| float_of_int nctr; float_of_int par |]))
        (Linreg.predict char.Characterization.pipe_overhead_regs [| float_of_int nctr; float_of_int par |])
    in
    R.sum [ compute; red; delay_estimate ~par body; overhead ]
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    let nstages = List.length stages in
    let nctr = List.length loop.Ir.lp_counters in
    let feats = [| float_of_int nstages; float_of_int nctr |] in
    let luts_model, regs_model =
      if pipelined then (char.Characterization.metapipe_overhead, char.Characterization.metapipe_overhead_regs)
      else (char.Characterization.seq_overhead, char.Characterization.seq_overhead_regs)
    in
    let overhead = with_regs (split_luts (Linreg.predict luts_model feats)) (Linreg.predict regs_model feats) in
    let red = match reduce with None -> R.zero | Some r -> mem_reduce_area ~par:loop.Ir.lp_par r in
    (* Outer counters beyond the characterized range. *)
    let counters = counter_chain_area ~par:1 loop.Ir.lp_counters in
    R.sum [ overhead; red; counters ]
  | Ir.Parallel { stages; _ } ->
    let feats = [| float_of_int (List.length stages) |] in
    with_regs
      (split_luts (Linreg.predict char.Characterization.parallel_overhead feats))
      (Linreg.predict char.Characterization.parallel_overhead_regs feats)
  | Ir.Tile_load { dst = buf; tile; par; _ } | Ir.Tile_store { src = buf; tile; par; _ } ->
    let feats =
      [| float_of_int par; float_of_int (Dtype.bits buf.Ir.mem_ty); float_of_int (List.length tile) |]
    in
    let luts = Linreg.predict char.Characterization.tile_luts feats in
    let regs = Linreg.predict char.Characterization.tile_regs feats in
    let brams = max 0 (int_of_float (Float.round (Linreg.predict char.Characterization.tile_brams feats))) in
    R.add (with_regs (split_luts luts) regs) (R.make ~brams ())

(* --- Net statistics ---------------------------------------------------- *)

let ctrl_nets ctrl =
  match ctrl with
  | Ir.Pipe { loop; body; reduce } ->
    List.fold_left
      (fun acc s -> acc + (loop.Ir.lp_par * (List.length (stmt_operands s) + 1)))
      0 body
    + (match reduce with None -> 0 | Some _ -> (2 * loop.Ir.lp_par) + 2)
    + (2 * List.length loop.Ir.lp_counters)
    + 4
  | Ir.Loop { loop; stages; pipelined; reduce } ->
    ((if pipelined then 4 else 2) * List.length stages)
    + (2 * List.length loop.Ir.lp_counters)
    + (match reduce with None -> 0 | Some _ -> (2 * loop.Ir.lp_par) + 4)
    + 4
  | Ir.Parallel { stages; _ } -> (2 * List.length stages) + 2
  | Ir.Tile_load { tile; par; _ } | Ir.Tile_store { tile; par; _ } ->
    30 + (2 * List.length tile) + (2 * par)

let raw_estimate char dev (d : Ir.design) =
  let tagged = Traverse.ctrls_with_replication d in
  let ctrls = List.map fst tagged in
  let ctrl_res =
    R.sum (List.map (fun (c, factor) -> R.scale factor (ctrl_estimate char dev c)) tagged)
  in
  let mem_res =
    R.sum (List.map (fun m -> R.scale (Traverse.mem_replication d m) (mem_estimate dev m)) d.d_mems)
  in
  let resources = R.add ctrl_res mem_res in
  let mem_nets (m : Ir.mem) =
    match m.Ir.mem_kind with
    | Ir.Offchip -> 8
    | Ir.Bram -> (2 * max 1 m.Ir.mem_banks) + (if m.Ir.mem_double then 4 else 0)
    | Ir.Reg -> 2
    | Ir.Queue -> 6
  in
  let nets =
    List.fold_left (fun acc (c, factor) -> acc + (factor * ctrl_nets c)) 0 tagged
    + List.fold_left (fun acc m -> acc + (Traverse.mem_replication d m * mem_nets m)) 0 d.d_mems
  in
  let prim_count =
    List.fold_left
      (fun acc (c, factor) ->
        match c with
        | Ir.Pipe { loop; body; _ } -> acc + (factor * List.length body * loop.Ir.lp_par)
        | _ -> acc)
      0 tagged
  in
  let node_count = max 1 (prim_count + List.length d.d_mems + (2 * List.length ctrls)) in
  {
    resources;
    nets;
    avg_fanout = float_of_int nets /. float_of_int node_count;
    tree_depth = Traverse.depth d.d_top;
    streams = List.length (Traverse.tile_transfers d);
    ctrl_count = List.length ctrls;
    double_buffers = List.length (List.filter (fun m -> m.Ir.mem_double) d.d_mems);
    prim_count;
  }

let feature_count = 11

(* Count-valued features are log-compressed before min-max scaling so the
   sigmoid hidden layer keeps resolution across four orders of magnitude of
   design sizes. *)
let features _dev raw =
  let lg n = log1p (float_of_int n) in
  [|
    lg raw.resources.R.lut_packable;
    lg raw.resources.R.lut_unpackable;
    lg raw.resources.R.regs;
    lg raw.resources.R.dsps;
    lg raw.resources.R.brams;
    lg raw.nets;
    raw.avg_fanout;
    float_of_int raw.tree_depth;
    float_of_int raw.streams;
    float_of_int raw.ctrl_count;
    lg raw.double_buffers;
  |]
