(** Graphviz export of a design's hierarchical dataflow graph.

    DHDL is "represented in-memory as a parameterized, hierarchical
    dataflow graph" (Section III); this renders that graph — controllers as
    clusters, primitive statements as nodes, data dependencies and memory
    accesses as edges — for papers, debugging, and documentation. *)

val emit : Dhdl_ir.Ir.design -> string
(** A complete [digraph] document. *)
