lib/codegen/dot.ml: Buffer Dhdl_ir Hashtbl List Option Printf String
