lib/codegen/maxj.mli: Dhdl_ir
