lib/codegen/maxj.ml: Dhdl_ir List Printf String
