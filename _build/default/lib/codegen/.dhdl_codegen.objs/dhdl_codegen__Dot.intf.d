lib/codegen/dot.mli: Dhdl_ir
